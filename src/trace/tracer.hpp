// The Tracer: one deterministic event recorder per simulated machine.
//
// A Tracer owns a fixed-capacity EventRing per component, a runtime enable
// bit, and the machine-wide monotonic sequence counter. Emission goes
// through a thread-local active pointer (the same pattern as
// ckpt::Context::active_ and the per-thread fi::Registry): an OsInstance
// installs its tracer on construction and restores the previous one on
// destruction, so every campaign worker records into its own tracer and a
// run's trace is byte-identical no matter how many workers share the
// process. Nothing in the emit path allocates once a component's ring
// reached capacity, and with no tracer installed (or tracing disabled) a
// probe is one thread-local load and a branch.
//
// Instrumented code must not include this header directly — it goes through
// the OSIRIS_TRACE_EVENT macro layer in trace/trace.hpp, which compiles to
// nothing when the build is configured with -DOSIRIS_TRACE=OFF.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/clock.hpp"
#include "trace/event.hpp"
#include "trace/ring.hpp"

namespace osiris::trace {

/// Default per-component ring size. Deliberately modest: the busiest ring
/// (the kernel's) is written cyclically on every IPC event, and at 1024
/// records (~48 KiB) it stays cache-resident — quadrupling it measurably
/// slows fork/exec-heavy workloads through pure cache pressure. Analyses
/// that need full retention pass an explicit capacity instead.
inline constexpr std::size_t kDefaultRingCapacity = 1024;

class Tracer {
 public:
  explicit Tracer(const VirtualClock& clock, std::size_t ring_capacity = kDefaultRingCapacity)
      : clock_(clock), ring_capacity_(ring_capacity) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // --- runtime enable bit ------------------------------------------------
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  // --- emission ----------------------------------------------------------
  /// Record one event, stamped with the virtual clock and the next sequence
  /// number. Events with a negative component id (unattributed standalone
  /// harness objects) are ignored.
  void emit(EventKind kind, std::int32_t comp, std::uint64_t a0 = 0, std::uint64_t a1 = 0,
            std::uint64_t a2 = 0) {
    if (!enabled_ || comp < 0) return;
    ring_for(comp).push(Event{seq_++, clock_.now(), comp, kind, a0, a1, a2});
  }

  // --- per-component rings ----------------------------------------------
  /// The ring of `comp`, or nullptr if it never emitted.
  [[nodiscard]] const EventRing* ring(std::int32_t comp) const {
    const auto i = static_cast<std::size_t>(comp);
    return comp >= 0 && i < rings_.size() ? rings_[i].get() : nullptr;
  }

  /// Visit every existing ring in component-id order (deterministic).
  template <typename Fn>
  void for_each_ring(Fn&& fn) const {
    for (std::size_t i = 0; i < rings_.size(); ++i) {
      if (rings_[i]) fn(static_cast<std::int32_t>(i), *rings_[i]);
    }
  }

  [[nodiscard]] std::uint64_t events_emitted() const noexcept { return seq_; }
  std::uint64_t total_dropped() const;

  // --- full-system merge -------------------------------------------------
  /// All retained records across every ring, sorted by sequence number:
  /// the totally ordered machine timeline.
  std::vector<Event> merged() const;

  // --- component labels (for exporters) ----------------------------------
  void set_component_name(std::int32_t comp, std::string name);
  /// "kernel", "pm", ... or "ep<N>" for unnamed components.
  [[nodiscard]] std::string comp_label(std::int32_t comp) const;

  // --- thread-local active tracer ---------------------------------------
  [[nodiscard]] static Tracer* active() noexcept { return active_; }
  static Tracer* exchange_active(Tracer* next) noexcept {
    Tracer* prev = active_;
    active_ = next;
    return prev;
  }

 private:
  /// Direct-indexed cache of ring pointers for the low component ids (which
  /// is all of them, in practice): the common emit resolves its ring with
  /// one load instead of two bounds checks and a unique_ptr chase.
  static constexpr std::size_t kFastComps = 64;

  EventRing& ring_for(std::int32_t comp) {
    const auto i = static_cast<std::size_t>(comp);
    if (i < kFastComps && fast_[i] != nullptr) return *fast_[i];
    return ring_for_slow(i);
  }
  EventRing& ring_for_slow(std::size_t i);

  const VirtualClock& clock_;
  std::size_t ring_capacity_;
  bool enabled_ = true;
  std::uint64_t seq_ = 0;
  EventRing* fast_[kFastComps] = {};
  std::vector<std::unique_ptr<EventRing>> rings_;  // indexed by component id
  std::vector<std::string> names_;                 // indexed by component id

  inline static thread_local Tracer* active_ = nullptr;
};

/// Emission entry point used by the OSIRIS_TRACE_EVENT macro: record into
/// the calling thread's active tracer, if any.
inline void emit_active(EventKind kind, std::int32_t comp, std::uint64_t a0 = 0,
                        std::uint64_t a1 = 0, std::uint64_t a2 = 0) {
  if (Tracer* t = Tracer::active()) t->emit(kind, comp, a0, a1, a2);
}

}  // namespace osiris::trace
