// Compile-out-able tracing macro layer.
//
// Instrumented modules (kernel, ckpt, seep, fi, recovery, servers) include
// this header — and only this header — to emit trace events:
//
//   OSIRIS_TRACE_EVENT(kIpcSend, /*comp=*/0, src, dst, type);
//
// The build option OSIRIS_TRACE (CMake, default ON) defines
// OSIRIS_TRACE_ENABLED. With -DOSIRIS_TRACE=OFF every macro expands to
// ((void)0), trace/tracer.hpp is never included, the osiris_trace library is
// not built, and the resulting binaries contain zero osiris::trace symbols
// (the compile-out guarantee, checked in CI with nm). With tracing compiled
// in, emission still costs only a thread-local load and a branch until an
// OsInstance installs an enabled tracer (the runtime enable bit).
#pragma once

#ifndef OSIRIS_TRACE_ENABLED
#define OSIRIS_TRACE_ENABLED 1
#endif

#if OSIRIS_TRACE_ENABLED

#include "trace/tracer.hpp"

#define OSIRIS_TRACE_EVENT(kind, comp, ...)                                 \
  ::osiris::trace::emit_active(::osiris::trace::EventKind::kind,            \
                               (comp)__VA_OPT__(, ) __VA_ARGS__)

#else  // OSIRIS_TRACE_ENABLED

#define OSIRIS_TRACE_EVENT(kind, comp, ...) ((void)0)

#endif  // OSIRIS_TRACE_ENABLED
