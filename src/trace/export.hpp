// Trace exporters: human-readable text and Chrome trace_event JSON.
//
// Both formats are pure functions of (events, component labels), and the
// text form is what golden-trace tests and the --jobs determinism test
// compare byte-for-byte, so every field is printed with a fixed format —
// no locale, no floating point, no pointers.
#pragma once

#include <string>
#include <vector>

#include "trace/tracer.hpp"

namespace osiris::trace {

/// One fixed-format line per event:
///   "<seq> @<tick> <comp> <kind> <a0> <a1> <a2>\n"
std::string format_text(const std::vector<Event>& events, const Tracer& tracer);

/// Like format_text but without the sequence column: golden files stay
/// stable when unrelated instrumentation elsewhere shifts global sequence
/// numbers (ordering is still the merge order).
std::string format_text_unsequenced(const std::vector<Event>& events, const Tracer& tracer);

/// Chrome trace_event JSON (open in chrome://tracing or Perfetto): one
/// virtual tick = one microsecond, components map to "threads", recovery
/// windows render as duration (B/E) spans, everything else as instants.
std::string to_chrome_json(const std::vector<Event>& events, const Tracer& tracer);

}  // namespace osiris::trace
