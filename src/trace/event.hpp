// Typed trace events (the tentpole of the deterministic-tracing subsystem).
//
// Every record is fixed-size and trivially copyable: a monotonic sequence
// number (assigned by the Tracer at emit time, so a full-system merge is
// totally ordered), the virtual-clock tick, the component the event belongs
// to, the event kind, and up to three small scalar arguments whose meaning
// depends on the kind (documented per enumerator). Events never carry
// pointers or strings — traces must be byte-identical across runs, worker
// threads, and --jobs settings.
#pragma once

#include <cstdint>

#include "support/clock.hpp"

namespace osiris::trace {

/// What happened. Argument conventions (a0/a1/a2) per kind:
enum class EventKind : std::uint8_t {
  // --- kernel IPC substrate (component 0 = kernel) -----------------------
  kIpcSend,     // a0=src ep, a1=dst ep, a2=message type
  kIpcNotify,   // a0=src ep, a1=dst ep, a2=notification type (without bit)
  kIpcCall,     // a0=src ep, a1=dst ep, a2=message type (nested sendrec)
  kIpcDeliver,  // a0=sender ep, a1=dst ep, a2=message type (dispatch entry)
  kGrantCopy,   // a0=grantee ep, a1=bytes, a2=0 read / 1 write

  // --- checkpointing (component = owning server) -------------------------
  kUndoAppend,    // a0=bytes captured, a1=entry count after the append
  kUndoTruncate,  // a0=entries discarded (checkpoint / log reset)
  kUndoRollback,  // a0=entries replayed

  // --- recovery windows (component = owning server) ----------------------
  kWindowOpen,   // no args
  kWindowClose,  // a0=CloseCause, a1=SeepClass for kSeep closes

  // --- fault injection (component = attributed server) -------------------
  kFaultFire,  // a0=site id, a1=fi::FaultType

  // --- recovery pipeline / escalation ladder (component = crashed server) -
  kCrash,               // a0=1 if hang-detected, a1=1 if classified recurring
  kRecoveryRestart,     // clone transfer (restart phase); no args
  kRecoveryRollback,    // undo-log replay; no args
  kRecoveryStateless,   // a0=park ticks (0 = policy stateless), a1=ladder rung
  kRecoveryQuarantine,  // a0=cooldown ticks, a1=1 if budget exhaustion
  kRecoveryReadmit,     // a0=rung the component was parked at

  // --- heartbeats --------------------------------------------------------
  kHeartbeatPing,  // component = RS; a0=pinged ep
  kHeartbeatPong,  // component = responding server; a0=RS ep

  // --- physiological health / storm rung (appended; component 0 = kernel
  // for fever events, the storming server for the rung) -------------------
  kFeverOnset,        // a0=fevered ep, a1=EWMA temperature, a2=1 if escalation
  kRecoveryThrottle,  // a0=detection latency (ticks since storm onset)

  // --- FOM executor (appended; component = owning server) ----------------
  kFomPark,    // a0=fom id, a1=missing block number, a2=retry count
  kFomResume,  // a0=fom id, a1=message type being re-run
  kFomAbort,   // a0=fom id, a1=1 if E_CRASH reconciliation was sent

  // --- page-tier checkpointing (appended; component = owning server) -----
  kPageCapture,   // a0=global page index, a1=page records after the capture
  kPageTruncate,  // a0=page records discarded (checkpoint)
  kPageRollback,  // a0=pages restored
  kRestartDelta,  // a0=bytes moved as dirty pages, a1=pages moved
};

/// Why a recovery window closed (kWindowClose a0).
enum class CloseCause : std::uint8_t {
  kSeep = 0,          // an outbound SEEP the policy forbids
  kYield = 1,         // cooperative thread yield (SIV-E)
  kEndOfRequest = 2,  // request completed with the window still open
  kFomPark = 3,       // FOM parked on a declared blocking point (resumable)
};

[[nodiscard]] constexpr const char* kind_name(EventKind k) {
  switch (k) {
    case EventKind::kIpcSend: return "IpcSend";
    case EventKind::kIpcNotify: return "IpcNotify";
    case EventKind::kIpcCall: return "IpcCall";
    case EventKind::kIpcDeliver: return "IpcDeliver";
    case EventKind::kGrantCopy: return "GrantCopy";
    case EventKind::kUndoAppend: return "UndoAppend";
    case EventKind::kUndoTruncate: return "UndoTruncate";
    case EventKind::kUndoRollback: return "UndoRollback";
    case EventKind::kWindowOpen: return "WindowOpen";
    case EventKind::kWindowClose: return "WindowClose";
    case EventKind::kFaultFire: return "FaultFire";
    case EventKind::kCrash: return "Crash";
    case EventKind::kRecoveryRestart: return "RecoveryRestart";
    case EventKind::kRecoveryRollback: return "RecoveryRollback";
    case EventKind::kRecoveryStateless: return "RecoveryStateless";
    case EventKind::kRecoveryQuarantine: return "RecoveryQuarantine";
    case EventKind::kRecoveryReadmit: return "RecoveryReadmit";
    case EventKind::kHeartbeatPing: return "HeartbeatPing";
    case EventKind::kHeartbeatPong: return "HeartbeatPong";
    case EventKind::kFeverOnset: return "FeverOnset";
    case EventKind::kRecoveryThrottle: return "RecoveryThrottle";
    case EventKind::kFomPark: return "FomPark";
    case EventKind::kFomResume: return "FomResume";
    case EventKind::kFomAbort: return "FomAbort";
    case EventKind::kPageCapture: return "PageCapture";
    case EventKind::kPageTruncate: return "PageTruncate";
    case EventKind::kPageRollback: return "PageRollback";
    case EventKind::kRestartDelta: return "RestartDelta";
  }
  return "?";
}

[[nodiscard]] constexpr const char* close_cause_name(CloseCause c) {
  switch (c) {
    case CloseCause::kSeep: return "seep";
    case CloseCause::kYield: return "yield";
    case CloseCause::kEndOfRequest: return "end";
    case CloseCause::kFomPark: return "fom-park";
  }
  return "?";
}

struct Event {
  std::uint64_t seq = 0;   // tracer-wide monotonic emission counter
  Tick tick = 0;           // virtual-clock stamp
  std::int32_t comp = -1;  // endpoint value; 0 = kernel substrate
  EventKind kind = EventKind::kIpcSend;
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
  std::uint64_t a2 = 0;
};

}  // namespace osiris::trace
