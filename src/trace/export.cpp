#include "trace/export.hpp"

#include <algorithm>
#include <cstdio>

#include "servers/msg_spec.hpp"

namespace osiris::trace {

EventRing& Tracer::ring_for_slow(std::size_t i) {
  if (i >= rings_.size()) rings_.resize(i + 1);
  if (!rings_[i]) rings_[i] = std::make_unique<EventRing>(ring_capacity_);
  if (i < kFastComps) fast_[i] = rings_[i].get();
  return *rings_[i];
}

std::uint64_t Tracer::total_dropped() const {
  std::uint64_t total = 0;
  for (const auto& r : rings_) {
    if (r) total += r->dropped();
  }
  return total;
}

std::vector<Event> Tracer::merged() const {
  std::vector<Event> out;
  for (const auto& r : rings_) {
    if (r) r->snapshot(out);
  }
  // Sequence numbers are unique (one machine-wide counter), so this is a
  // total order and the merge is identical however the rings are walked.
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return out;
}

void Tracer::set_component_name(std::int32_t comp, std::string name) {
  if (comp < 0) return;
  const auto i = static_cast<std::size_t>(comp);
  if (i >= names_.size()) names_.resize(i + 1);
  names_[i] = std::move(name);
}

std::string Tracer::comp_label(std::int32_t comp) const {
  const auto i = static_cast<std::size_t>(comp);
  if (comp >= 0 && i < names_.size() && !names_[i].empty()) return names_[i];
  return "ep" + std::to_string(comp);
}

namespace {

/// IPC events carry the message type in a2; everything else is plain numbers.
bool carries_msg_type(EventKind k) {
  return k == EventKind::kIpcSend || k == EventKind::kIpcNotify || k == EventKind::kIpcCall ||
         k == EventKind::kIpcDeliver;
}

void append_line(std::string& out, const Event& e, const Tracer& tracer, bool with_seq) {
  // Resolve the message type through the spec registry: goldens read
  // "IpcCall 1 2 PM_FORK" instead of a magic constant.
  const std::string a2 = carries_msg_type(e.kind)
                             ? servers::msg_label(static_cast<std::uint32_t>(e.a2))
                             : std::to_string(e.a2);
  char buf[192];
  if (with_seq) {
    std::snprintf(buf, sizeof(buf), "%6llu @%-8llu %-8s %-20s %llu %llu %s\n",
                  static_cast<unsigned long long>(e.seq),
                  static_cast<unsigned long long>(e.tick),
                  tracer.comp_label(e.comp).c_str(), kind_name(e.kind),
                  static_cast<unsigned long long>(e.a0),
                  static_cast<unsigned long long>(e.a1), a2.c_str());
  } else {
    std::snprintf(buf, sizeof(buf), "@%-8llu %-8s %-20s %llu %llu %s\n",
                  static_cast<unsigned long long>(e.tick),
                  tracer.comp_label(e.comp).c_str(), kind_name(e.kind),
                  static_cast<unsigned long long>(e.a0),
                  static_cast<unsigned long long>(e.a1), a2.c_str());
  }
  out += buf;
}

}  // namespace

std::string format_text(const std::vector<Event>& events, const Tracer& tracer) {
  std::string out;
  out.reserve(events.size() * 64);
  for (const Event& e : events) append_line(out, e, tracer, /*with_seq=*/true);
  return out;
}

std::string format_text_unsequenced(const std::vector<Event>& events, const Tracer& tracer) {
  std::string out;
  out.reserve(events.size() * 56);
  for (const Event& e : events) append_line(out, e, tracer, /*with_seq=*/false);
  return out;
}

std::string to_chrome_json(const std::vector<Event>& events, const Tracer& tracer) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto entry = [&](const std::string& body) {
    if (!first) out += ",\n";
    first = false;
    out += body;
  };

  // Thread-name metadata so chrome://tracing shows component names.
  std::vector<std::int32_t> comps;
  for (const Event& e : events) {
    if (std::find(comps.begin(), comps.end(), e.comp) == comps.end()) comps.push_back(e.comp);
  }
  std::sort(comps.begin(), comps.end());
  for (const std::int32_t c : comps) {
    entry("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(c) +
          ",\"args\":{\"name\":\"" + tracer.comp_label(c) + "\"}}");
  }

  for (const Event& e : events) {
    const std::string common = "\"pid\":1,\"tid\":" + std::to_string(e.comp) +
                               ",\"ts\":" + std::to_string(e.tick);
    std::string args = "\"args\":{\"seq\":" + std::to_string(e.seq) +
                       ",\"a0\":" + std::to_string(e.a0) +
                       ",\"a1\":" + std::to_string(e.a1) +
                       ",\"a2\":" + std::to_string(e.a2);
    if (carries_msg_type(e.kind)) {
      args += ",\"msg\":\"" + servers::msg_label(static_cast<std::uint32_t>(e.a2)) + "\"";
    }
    args += "}";
    switch (e.kind) {
      case EventKind::kWindowOpen:
        entry("{\"name\":\"recovery-window\",\"ph\":\"B\"," + common + "," + args + "}");
        break;
      case EventKind::kWindowClose:
        entry("{\"name\":\"recovery-window\",\"ph\":\"E\"," + common + ",\"args\":{\"cause\":\"" +
              std::string(close_cause_name(static_cast<CloseCause>(e.a0))) + "\"}}");
        break;
      default:
        entry("{\"name\":\"" + std::string(kind_name(e.kind)) + "\",\"ph\":\"i\",\"s\":\"t\"," +
              common + "," + args + "}");
        break;
    }
  }
  out += "\n]}\n";
  return out;
}

}  // namespace osiris::trace
