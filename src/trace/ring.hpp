// Fixed-capacity per-component event ring (flight-recorder semantics).
//
// push() never allocates past the configured capacity: once full, the oldest
// record is overwritten and the drop counter advances, so tracing cost is
// bounded no matter how long the simulation runs. Silent truncation is
// forbidden by design — dropped() and high_water() are surfaced through
// core::collect_metrics so a Table-VI-style memory report shows exactly what
// the ring held and what it lost. A zero-capacity ring is a valid "attached
// but recording nothing" configuration: every push is counted as dropped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/event.hpp"

namespace osiris::trace {

class EventRing {
 public:
  explicit EventRing(std::size_t capacity) : cap_(capacity) {}

  /// Append one event, overwriting the oldest when the ring is full.
  void push(const Event& e) {
    if (cap_ == 0) {
      ++dropped_;
      return;
    }
    if (buf_.size() < cap_) {
      buf_.push_back(e);
      if (buf_.size() > high_water_) high_water_ = buf_.size();
      return;
    }
    buf_[head_] = e;  // overwrite the oldest record
    if (++head_ == cap_) head_ = 0;  // conditional wrap: no division on the hot path
    ++dropped_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  [[nodiscard]] bool empty() const noexcept { return buf_.empty(); }

  /// Events overwritten (or rejected by a zero-capacity ring) so far.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Most events the ring ever held at once (ring memory = this * sizeof(Event)).
  [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }
  [[nodiscard]] std::size_t high_water_bytes() const noexcept {
    return high_water_ * sizeof(Event);
  }

  /// Copy the retained records out in emission order (oldest first).
  void snapshot(std::vector<Event>& out) const {
    for (std::size_t i = 0; i < buf_.size(); ++i) {
      out.push_back(buf_[(head_ + i) % buf_.size()]);
    }
  }

  /// Forget all retained records (drop and high-water accounting persists).
  void clear() noexcept {
    buf_.clear();
    head_ = 0;
  }

 private:
  std::size_t cap_;
  std::vector<Event> buf_;   // grows lazily up to cap_, then wraps
  std::size_t head_ = 0;     // index of the oldest record once wrapped
  std::uint64_t dropped_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace osiris::trace
