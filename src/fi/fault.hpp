// Fault model (paper SII-E, SVI-B).
//
// Two campaigns mirror the paper's: a *fail-stop* campaign injecting only
// immediate crashes (the model OSIRIS is designed for), and a *full EDFI*
// campaign adding realistic fail-silent software faults (corrupted values,
// flipped branches, off-by-one errors, hangs, delayed crashes) that violate
// the fail-stop assumption and measure the design's robustness beyond it.
#pragma once

#include <cstdint>

namespace osiris::fi {

enum class FaultType : std::uint8_t {
  kNone = 0,
  // --- fail-stop model -------------------------------------------------
  kNullDeref,     // immediate fail-stop trap (NULL-pointer dereference)
  // --- additional EDFI software fault types ------------------------------
  kCorruptValue,  // silently corrupts a computed value (fail-silent)
  kOffByOne,      // off-by-one on a size / index / count
  kBranchFlip,    // inverts a branch decision (wrong control flow)
  kHang,          // the component stops responding (heartbeat-detected)
  kDelayedCrash,  // silent at first, crashes a few executions later
  // --- liveness (storm) fault types --------------------------------------
  // Neither crashes nor hangs the component: it stays live — answering
  // heartbeats — while burning dispatches or flooding a peer, so only the
  // physiological health monitor can see it (Mira's "fever" class).
  kHandlerSpin,   // handler keeps re-dispatching itself with no useful work
  kChannelFlood,  // floods a victim endpoint with well-formed requests
};

[[nodiscard]] constexpr const char* fault_name(FaultType t) {
  switch (t) {
    case FaultType::kNone: return "none";
    case FaultType::kNullDeref: return "null-deref";
    case FaultType::kCorruptValue: return "corrupt-value";
    case FaultType::kOffByOne: return "off-by-one";
    case FaultType::kBranchFlip: return "branch-flip";
    case FaultType::kHang: return "hang";
    case FaultType::kDelayedCrash: return "delayed-crash";
    case FaultType::kHandlerSpin: return "handler-spin";
    case FaultType::kChannelFlood: return "channel-flood";
  }
  return "?";
}

/// What kind of program location a probe instruments; constrains which fault
/// types can be injected there (EDFI's "fault candidate" applicability).
enum class SiteKind : std::uint8_t {
  kBlock,   // plain basic block: null-deref, hang, delayed-crash
  kValue,   // a computed value: corrupt-value, off-by-one (plus block faults)
  kBranch,  // a branch condition: branch-flip (plus block faults)
};

[[nodiscard]] constexpr bool applicable(SiteKind kind, FaultType t) {
  switch (t) {
    case FaultType::kNone: return false;
    case FaultType::kNullDeref:
    case FaultType::kHang:
    case FaultType::kDelayedCrash:
    case FaultType::kHandlerSpin:
    case FaultType::kChannelFlood:
      return true;  // any site models an executable location
    case FaultType::kCorruptValue:
    case FaultType::kOffByOne:
      return kind == SiteKind::kValue;
    case FaultType::kBranchFlip:
      return kind == SiteKind::kBranch;
  }
  return false;
}

}  // namespace osiris::fi
