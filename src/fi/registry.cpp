#include "fi/registry.hpp"

#include "support/common.hpp"
#include "support/log.hpp"
#include "trace/trace.hpp"

namespace osiris::fi {

namespace {

/// Record a fault actually firing (not a mere probe hit), attributed to the
/// component executing the probe. `realized` is the fault as delivered — for
/// kDelayedCrash that is the silent-corruption phase now and the deferred
/// kNullDeref later, matching what the injected component experiences.
inline void trace_fire([[maybe_unused]] int endpoint, [[maybe_unused]] const Site* site,
                       [[maybe_unused]] FaultType realized) {
  OSIRIS_TRACE_EVENT(kFaultFire, endpoint, site->id, static_cast<std::uint64_t>(realized));
}

}  // namespace

Site::Site(const char* f, int l, const char* t, SiteKind k)
    : file(f), line(l), tag(t), kind(k) {
  id = SiteDirectory::instance().register_site(this);
}

std::uint64_t Site::hits() const { return Registry::instance().hits(this); }

std::uint64_t Site::boot_hits() const { return Registry::instance().boot_hits(this); }

// --- SiteDirectory --------------------------------------------------------

SiteDirectory& SiteDirectory::instance() {
  static SiteDirectory directory;
  return directory;
}

std::uint32_t SiteDirectory::register_site(Site* site) {
  const std::lock_guard<std::mutex> lock(mu_);
  sites_.push_back(site);
  return static_cast<std::uint32_t>(sites_.size() - 1);
}

std::vector<Site*> SiteDirectory::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sites_;
}

std::size_t SiteDirectory::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sites_.size();
}

// --- Registry -------------------------------------------------------------

Registry& Registry::instance() {
  // One registry per thread: campaign workers are isolated by construction,
  // and single-threaded callers (tests, examples, benches) see the classic
  // process-global behaviour.
  static thread_local Registry registry;
  return registry;
}

Registry::Counts& Registry::slot(const Site* site) const {
  if (site->id >= counts_.size()) counts_.resize(site->id + 1);
  return counts_[site->id];
}

std::uint64_t Registry::hits(const Site* site) const {
  return site->id < counts_.size() ? counts_[site->id].hits : 0;
}

std::uint64_t Registry::boot_hits(const Site* site) const {
  return site->id < counts_.size() ? counts_[site->id].boot_hits : 0;
}

void Registry::reset_counts() {
  counts_.assign(SiteDirectory::instance().size(), Counts{});
  delayed_pending_ = false;
  pending_storm_ = StormPlan{};
  storm_start_tick_ = 0;
  storm_fired_ = false;
}

void Registry::mark_boot_complete() {
  for (Counts& c : counts_) {
    c.boot_hits = c.hits;
    c.hits = 0;
  }
  delayed_pending_ = false;
}

void Registry::arm(const Site* site, FaultType type, std::uint64_t trigger_hit,
                   std::uint64_t delay) {
  OSIRIS_ASSERT(site != nullptr && type != FaultType::kNone && trigger_hit >= 1);
  OSIRIS_ASSERT(applicable(site->kind, type));
  armed_site_ = site;
  armed_type_ = type;
  trigger_hit_ = trigger_hit;
  delay_ = delay;
  delayed_pending_ = false;
}

void Registry::arm_persistent(const Site* site, FaultType type, std::uint64_t trigger_hit,
                              std::uint64_t shots) {
  OSIRIS_ASSERT(site != nullptr && type != FaultType::kNone && trigger_hit >= 1);
  OSIRIS_ASSERT(type != FaultType::kDelayedCrash);  // no delay bookkeeping here
  OSIRIS_ASSERT(applicable(site->kind, type));
  armed_site_ = site;
  armed_type_ = type;
  trigger_hit_ = trigger_hit;
  persistent_ = true;
  shots_ = shots;
  delayed_pending_ = false;
}

void Registry::arm_periodic_window_crash(const Site* site, std::uint64_t hit_interval) {
  OSIRIS_ASSERT(site != nullptr && hit_interval >= 1);
  periodic_site_ = site;
  periodic_interval_ = hit_interval;
  periodic_last_fire_ = 0;
}

void Registry::disarm() {
  armed_site_ = nullptr;
  armed_type_ = FaultType::kNone;
  delayed_pending_ = false;
  persistent_ = false;
  shots_ = 0;
  periodic_site_ = nullptr;
  periodic_interval_ = 0;
  storm_victim_ = -1;
  storm_burst_ = 0;
  storm_owner_ = -1;
  pending_storm_ = StormPlan{};
  storm_start_tick_ = 0;
  storm_fired_ = false;
}

bool Registry::disarm_storms_for(int endpoint) {
  const bool storm_armed =
      armed_site_ != nullptr && (armed_type_ == FaultType::kHandlerSpin ||
                                 armed_type_ == FaultType::kChannelFlood);
  if (!storm_armed || storm_owner_ != endpoint) return false;
  armed_site_ = nullptr;
  armed_type_ = FaultType::kNone;
  persistent_ = false;
  shots_ = 0;
  pending_storm_ = StormPlan{};
  return true;
}

FaultType Registry::deliver(FaultType t) {
  if (t == FaultType::kHandlerSpin || t == FaultType::kChannelFlood) {
    // Storm faults are realized *after* the dispatch returns (ServerBase
    // drains the pending slot), never by throwing out of the probe.
    pending_storm_ = StormPlan{t, storm_victim_,
                               storm_burst_ == 0 ? kDefaultStormBurst : storm_burst_};
    storm_owner_ = active_.endpoint;
  }
  return t;
}

FaultType Registry::on_hit(Site* site) {
  const std::uint64_t hits = ++slot(site).hits;
  // Coverage accounting for Table I.
  if (active_.window != nullptr) active_.window->probe_hit();

  if (site == periodic_site_) {
    if (hits >= periodic_last_fire_ + periodic_interval_ &&
        active_.window != nullptr && active_.window->is_open()) {
      periodic_last_fire_ = hits;
      ++fired_;
      trace_fire(active_.endpoint, site, FaultType::kNullDeref);
      return FaultType::kNullDeref;
    }
    return FaultType::kNone;
  }

  if (site != armed_site_) return FaultType::kNone;

  if (persistent_) {
    // Deterministic-bug model: the fault stays in the code path across
    // recoveries, so it re-fires on every execution from trigger_hit on
    // (until the optional shot budget drains).
    if (hits < trigger_hit_) return FaultType::kNone;
    if (shots_ > 0 && --shots_ == 0) {
      // N-shot budget drained: this firing is the last one.
      const FaultType last = armed_type_;
      armed_site_ = nullptr;
      armed_type_ = FaultType::kNone;
      persistent_ = false;
      ++fired_;
      trace_fire(active_.endpoint, site, last);
      return deliver(last);
    }
    ++fired_;
    trace_fire(active_.endpoint, site, armed_type_);
    return deliver(armed_type_);
  }

  if (delayed_pending_ && hits >= trigger_hit_ + delay_) {
    delayed_pending_ = false;
    ++fired_;
    trace_fire(active_.endpoint, site, FaultType::kNullDeref);
    return FaultType::kNullDeref;  // the deferred crash of kDelayedCrash
  }
  if (hits != trigger_hit_) return FaultType::kNone;

  if (armed_type_ == FaultType::kDelayedCrash) {
    delayed_pending_ = true;
    ++fired_;
    trace_fire(active_.endpoint, site, FaultType::kCorruptValue);
    return FaultType::kCorruptValue;  // silent damage now, crash later
  }
  ++fired_;
  trace_fire(active_.endpoint, site, armed_type_);
  return deliver(armed_type_);
}

namespace {

[[noreturn]] void realize_crash(const Site* site) {
  throw kernel::FailStopFault(
      std::string("injected null-deref at ") + site->tag + ":" + std::to_string(site->line),
      site->id);
}

}  // namespace

void block_probe(Site* site) {
  switch (Registry::instance().on_hit(site)) {
    case FaultType::kNone:
    case FaultType::kCorruptValue:  // silent damage has nothing to corrupt here
    case FaultType::kOffByOne:
    case FaultType::kBranchFlip:
    case FaultType::kHandlerSpin:   // parked in the registry; ServerBase
    case FaultType::kChannelFlood:  // realizes the storm post-dispatch
      return;
    case FaultType::kNullDeref:
      realize_crash(site);
    case FaultType::kHang:
      OSIRIS_DEBUG("fi", "injected hang at %s:%d", site->tag, site->line);
      throw kernel::HangSuspend{};
    case FaultType::kDelayedCrash:
      return;  // handled inside on_hit()
  }
}

std::int64_t value_probe(Site* site, std::int64_t v) {
  switch (Registry::instance().on_hit(site)) {
    case FaultType::kNone:
    case FaultType::kBranchFlip:
    case FaultType::kDelayedCrash:
    case FaultType::kHandlerSpin:
    case FaultType::kChannelFlood:
      return v;
    case FaultType::kCorruptValue:
      return v ^ 0x2A;  // silent corruption
    case FaultType::kOffByOne:
      return v + 1;
    case FaultType::kNullDeref:
      realize_crash(site);
    case FaultType::kHang:
      throw kernel::HangSuspend{};
  }
  return v;
}

bool branch_probe(Site* site, bool cond) {
  switch (Registry::instance().on_hit(site)) {
    case FaultType::kNone:
    case FaultType::kCorruptValue:
    case FaultType::kOffByOne:
    case FaultType::kDelayedCrash:
    case FaultType::kHandlerSpin:
    case FaultType::kChannelFlood:
      return cond;
    case FaultType::kBranchFlip:
      return !cond;
    case FaultType::kNullDeref:
      realize_crash(site);
    case FaultType::kHang:
      throw kernel::HangSuspend{};
  }
  return cond;
}

}  // namespace osiris::fi
