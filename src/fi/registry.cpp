#include "fi/registry.hpp"

#include "support/common.hpp"
#include "support/log.hpp"

namespace osiris::fi {

Site::Site(const char* f, int l, const char* t, SiteKind k)
    : file(f), line(l), tag(t), kind(k) {
  Registry::instance().register_site(this);
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::register_site(Site* site) {
  site->id = next_id_++;
  sites_.push_back(site);
}

void Registry::reset_counts() {
  for (Site* s : sites_) s->hits = 0;
  delayed_pending_ = false;
}

void Registry::mark_boot_complete() {
  for (Site* s : sites_) {
    s->boot_hits = s->hits;
    s->hits = 0;
  }
  delayed_pending_ = false;
}

void Registry::arm(const Site* site, FaultType type, std::uint64_t trigger_hit,
                   std::uint64_t delay) {
  OSIRIS_ASSERT(site != nullptr && type != FaultType::kNone && trigger_hit >= 1);
  OSIRIS_ASSERT(applicable(site->kind, type));
  armed_site_ = site;
  armed_type_ = type;
  trigger_hit_ = trigger_hit;
  delay_ = delay;
  delayed_pending_ = false;
}

void Registry::arm_periodic_window_crash(const Site* site, std::uint64_t hit_interval) {
  OSIRIS_ASSERT(site != nullptr && hit_interval >= 1);
  periodic_site_ = site;
  periodic_interval_ = hit_interval;
  periodic_last_fire_ = 0;
}

void Registry::disarm() {
  armed_site_ = nullptr;
  armed_type_ = FaultType::kNone;
  delayed_pending_ = false;
  periodic_site_ = nullptr;
  periodic_interval_ = 0;
}

FaultType Registry::on_hit(Site* site) {
  ++site->hits;
  // Coverage accounting for Table I.
  if (active_.window != nullptr) active_.window->probe_hit();

  if (site == periodic_site_) {
    if (site->hits >= periodic_last_fire_ + periodic_interval_ &&
        active_.window != nullptr && active_.window->is_open()) {
      periodic_last_fire_ = site->hits;
      ++fired_;
      return FaultType::kNullDeref;
    }
    return FaultType::kNone;
  }

  if (site != armed_site_) return FaultType::kNone;

  if (delayed_pending_ && site->hits >= trigger_hit_ + delay_) {
    delayed_pending_ = false;
    ++fired_;
    return FaultType::kNullDeref;  // the deferred crash of kDelayedCrash
  }
  if (site->hits != trigger_hit_) return FaultType::kNone;

  if (armed_type_ == FaultType::kDelayedCrash) {
    delayed_pending_ = true;
    ++fired_;
    return FaultType::kCorruptValue;  // silent damage now, crash later
  }
  ++fired_;
  return armed_type_;
}

namespace {

[[noreturn]] void realize_crash(const Site* site) {
  throw kernel::FailStopFault(
      std::string("injected null-deref at ") + site->tag + ":" + std::to_string(site->line),
      site->id);
}

}  // namespace

void block_probe(Site* site) {
  switch (Registry::instance().on_hit(site)) {
    case FaultType::kNone:
    case FaultType::kCorruptValue:  // silent damage has nothing to corrupt here
    case FaultType::kOffByOne:
    case FaultType::kBranchFlip:
      return;
    case FaultType::kNullDeref:
      realize_crash(site);
    case FaultType::kHang:
      OSIRIS_DEBUG("fi", "injected hang at %s:%d", site->tag, site->line);
      throw kernel::HangSuspend{};
    case FaultType::kDelayedCrash:
      return;  // handled inside on_hit()
  }
}

std::int64_t value_probe(Site* site, std::int64_t v) {
  switch (Registry::instance().on_hit(site)) {
    case FaultType::kNone:
    case FaultType::kBranchFlip:
    case FaultType::kDelayedCrash:
      return v;
    case FaultType::kCorruptValue:
      return v ^ 0x2A;  // silent corruption
    case FaultType::kOffByOne:
      return v + 1;
    case FaultType::kNullDeref:
      realize_crash(site);
    case FaultType::kHang:
      throw kernel::HangSuspend{};
  }
  return v;
}

bool branch_probe(Site* site, bool cond) {
  switch (Registry::instance().on_hit(site)) {
    case FaultType::kNone:
    case FaultType::kCorruptValue:
    case FaultType::kOffByOne:
    case FaultType::kDelayedCrash:
      return cond;
    case FaultType::kBranchFlip:
      return !cond;
    case FaultType::kNullDeref:
      realize_crash(site);
    case FaultType::kHang:
      throw kernel::HangSuspend{};
  }
  return cond;
}

}  // namespace osiris::fi
