// Fault-site registry and probe runtime.
//
// FI_BLOCK / FI_VALUE / FI_BRANCH probes are placed throughout the system
// servers (and nowhere in the RCB), standing in for EDFI's compile-time
// fault candidates. Each probe serves three roles:
//
//   1. coverage: it reports a basic-block execution to the current
//      component's recovery window (the Table I numerator/denominator);
//   2. profiling: it counts per-site executions, which the campaign driver
//      uses to select triggered, non-boot-time fault candidates (SVI-B);
//   3. injection: when the campaign has armed this site, the probe triggers
//      the planted fault at the configured execution number.
//
// Identity vs. state split (parallel campaigns): a Site is an immutable
// process-wide *descriptor* — function-local statics register once, under a
// mutex, with the global SiteDirectory, so identities are stable across the
// thousands of runs in a campaign and across worker threads. All *mutable*
// probe state (execution counters, armed-fault state, component attribution)
// lives in a per-thread Registry, mirroring how ckpt::Context::active_ is
// thread-scoped: every campaign worker owns a fully isolated simulator, so
// concurrent injection runs cannot observe each other's counters or faults.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "fi/fault.hpp"
#include "kernel/faults.hpp"
#include "seep/window.hpp"

namespace osiris::fi {

struct Site {
  const char* file;
  int line;
  const char* tag;    // subsystem tag, e.g. "pm", "vfs"
  SiteKind kind;
  std::uint32_t id = 0;  // dense index assigned by the SiteDirectory

  Site(const char* f, int l, const char* t, SiteKind k);

  /// Executions since the last reset — on the *calling thread's* registry.
  [[nodiscard]] std::uint64_t hits() const;
  /// Executions during boot (excluded fault candidates), same scoping.
  [[nodiscard]] std::uint64_t boot_hits() const;
};

/// Process-global, append-only directory of probe sites. Registration happens
/// on first execution of each probe, possibly from a campaign worker thread,
/// so the directory is the one piece of fi:: state that stays shared — and
/// the only one that needs a lock.
class SiteDirectory {
 public:
  static SiteDirectory& instance();

  std::uint32_t register_site(Site* site);

  /// Stable snapshot of all registered sites (copy taken under the lock:
  /// workers may be registering late-bound recovery-path probes).
  [[nodiscard]] std::vector<Site*> snapshot() const;

  [[nodiscard]] std::size_t size() const;

 private:
  SiteDirectory() = default;

  mutable std::mutex mu_;
  std::vector<Site*> sites_;
};

/// Per-component probe attribution, installed by ServerBase around dispatch.
struct ActiveComponent {
  seep::Window* window = nullptr;
  int endpoint = -1;
};

/// Per-thread probe runtime: execution counters, attribution, and the armed
/// injection. `instance()` returns the calling thread's registry, so each
/// campaign worker (one OS instance per thread) is isolated by construction.
class Registry {
 public:
  Registry() = default;

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The calling thread's registry (created on first use per thread).
  static Registry& instance();

  // --- site management --------------------------------------------------
  /// Snapshot of the global directory (identities are process-wide even
  /// though counters are per-thread).
  [[nodiscard]] static std::vector<Site*> sites() { return SiteDirectory::instance().snapshot(); }

  /// Zero all per-run execution counters (called between campaign runs).
  void reset_counts();

  /// Snapshot current counts into boot_hits and zero them: everything
  /// executed so far is boot-time and excluded from fault candidacy.
  void mark_boot_complete();

  [[nodiscard]] std::uint64_t hits(const Site* site) const;
  [[nodiscard]] std::uint64_t boot_hits(const Site* site) const;

  // --- probe attribution --------------------------------------------------
  void set_active(ActiveComponent ac) noexcept { active_ = ac; }
  [[nodiscard]] ActiveComponent active() const noexcept { return active_; }

  // --- injection plan -----------------------------------------------------
  /// Arm one fault: `site` triggers `type` on its `trigger_hit`-th execution
  /// (1-based, counted from the last reset). kDelayedCrash additionally
  /// crashes `delay` executions after triggering.
  void arm(const Site* site, FaultType type, std::uint64_t trigger_hit,
           std::uint64_t delay = 3);
  /// Persistent-bug model (escalation-ladder campaigns): the fault re-fires
  /// on *every* execution of `site` at or after `trigger_hit` — recovery
  /// does not clear it, exactly like a deterministic bug in a hot path.
  /// `shots` = 0 means unlimited; N > 0 fires at most N times (the N-shot
  /// variant, modelling a bug whose triggering input eventually drains).
  void arm_persistent(const Site* site, FaultType type, std::uint64_t trigger_hit,
                      std::uint64_t shots = 0);
  /// Figure 3 driver: realize a fail-stop fault at `site` every
  /// `hit_interval` executions, but only while the active component's
  /// recovery window is OPEN (the paper injects only inside the window so
  /// every fault is consistently recoverable and the benchmark completes).
  void arm_periodic_window_crash(const Site* site, std::uint64_t hit_interval);

  void disarm();
  [[nodiscard]] bool armed() const noexcept {
    return armed_site_ != nullptr || periodic_site_ != nullptr;
  }
  [[nodiscard]] std::uint64_t injections_fired() const noexcept { return fired_; }

  // --- storm faults (liveness campaigns) ---------------------------------
  /// A storm probe never throws: instead it *records* the firing here and
  /// ServerBase picks it up after the dispatch returns, turning it into a
  /// self-notification burst (kHandlerSpin) or a flood pump against
  /// `storm_victim` (kChannelFlood). `storm_owner` is the endpoint whose
  /// code hosts the armed probe — the component quarantine must silence.
  struct StormPlan {
    FaultType type = FaultType::kNone;
    int victim = -1;        // kChannelFlood target endpoint (-1 = unset)
    std::uint32_t burst = 0;  // spin notes per fire / flood notes per pump period
  };
  void set_storm_plan(int victim, std::uint32_t burst) noexcept {
    storm_victim_ = victim;
    storm_burst_ = burst;
  }
  /// Take the storm firing recorded by the last probe hit (if any); clears
  /// the pending slot so each firing activates at most once.
  [[nodiscard]] StormPlan take_pending_storm() noexcept {
    const StormPlan p = pending_storm_;
    pending_storm_ = StormPlan{};
    return p;
  }
  /// First virtual tick at which a storm fault fired this run (detection-
  /// latency zero point). A storm born before the clock's first advance
  /// legitimately starts at tick 0, so liveness is tracked by storm_fired(),
  /// not by a nonzero tick.
  [[nodiscard]] std::uint64_t storm_start_tick() const noexcept { return storm_start_tick_; }
  [[nodiscard]] bool storm_fired() const noexcept { return storm_fired_; }
  void note_storm_start(std::uint64_t tick) noexcept {
    if (!storm_fired_) {
      storm_fired_ = true;
      storm_start_tick_ = tick;
    }
  }
  /// Quarantine hook: if the armed fault is a storm type owned by
  /// `endpoint`, disarm it so readmission does not re-trigger the storm
  /// (satellite: quarantine must *end* infinite re-firing faults). Other
  /// persistent faults are left armed — recurring-crash campaigns depend on
  /// them surviving recovery. Returns true if something was disarmed.
  bool disarm_storms_for(int endpoint);
  [[nodiscard]] int storm_owner() const noexcept { return storm_owner_; }
  /// True while a storm fault armed at `endpoint`'s probe is still live —
  /// the flood pump polls this to know when to stop rescheduling itself.
  [[nodiscard]] bool storm_armed_for(int endpoint) const noexcept {
    return armed_site_ != nullptr && storm_owner_ == endpoint &&
           (armed_type_ == FaultType::kHandlerSpin ||
            armed_type_ == FaultType::kChannelFlood);
  }
  /// Narrower check for the spin sustain path: every FI_SPIN dispatch at the
  /// owner re-notes itself while this holds, independent of which probe site
  /// hosts the armed fault (the site only has to fire once to seed).
  [[nodiscard]] bool spin_armed_for(int endpoint) const noexcept {
    return armed_site_ != nullptr && storm_owner_ == endpoint &&
           armed_type_ == FaultType::kHandlerSpin;
  }

  // --- probe fast path ------------------------------------------------
  /// Called on every probe execution. Returns the fault type to realize at
  /// this execution (kNone almost always).
  FaultType on_hit(Site* site);

 private:
  struct Counts {
    std::uint64_t hits = 0;
    std::uint64_t boot_hits = 0;
  };

  /// Counter slot for `site`, growing the table for late-registered sites.
  Counts& slot(const Site* site) const;

  /// Post-process a fault about to be returned from on_hit(): storm types
  /// are parked in pending_storm_ (realized later by ServerBase), everything
  /// else passes through untouched.
  FaultType deliver(FaultType t);

  static constexpr std::uint32_t kDefaultStormBurst = 4;

  // Indexed by Site::id. Mutable so const accessors can lazily grow it.
  mutable std::vector<Counts> counts_;
  ActiveComponent active_;
  const Site* armed_site_ = nullptr;
  FaultType armed_type_ = FaultType::kNone;
  std::uint64_t trigger_hit_ = 0;
  std::uint64_t delay_ = 0;
  bool delayed_pending_ = false;
  bool persistent_ = false;     // re-fire on every hit >= trigger (deterministic bug)
  std::uint64_t shots_ = 0;     // persistent shot budget remaining; 0 = unlimited
  const Site* periodic_site_ = nullptr;
  std::uint64_t periodic_interval_ = 0;
  std::uint64_t periodic_last_fire_ = 0;
  std::uint64_t fired_ = 0;
  // Storm bookkeeping (see StormPlan above).
  int storm_victim_ = -1;
  std::uint32_t storm_burst_ = 0;
  int storm_owner_ = -1;  // endpoint whose probe hosts the armed storm fault
  StormPlan pending_storm_;
  std::uint64_t storm_start_tick_ = 0;
  bool storm_fired_ = false;
};

// --- probe implementation functions (called via the macros below) ---------

/// Plain basic-block probe: may realize kNullDeref / kHang / kDelayedCrash.
void block_probe(Site* site);

/// Value probe: returns `v`, possibly corrupted (kCorruptValue, kOffByOne).
std::int64_t value_probe(Site* site, std::int64_t v);

/// Branch probe: returns `cond`, possibly flipped (kBranchFlip).
bool branch_probe(Site* site, bool cond);

}  // namespace osiris::fi

// Probe macros. `tag` is the subsystem name; each expansion is one site.
#define FI_BLOCK(tag)                                                            \
  do {                                                                           \
    static ::osiris::fi::Site _fi_site(__FILE__, __LINE__, (tag),                \
                                       ::osiris::fi::SiteKind::kBlock);          \
    ::osiris::fi::block_probe(&_fi_site);                                        \
  } while (0)

#define FI_VALUE(tag, v)                                                         \
  ([&]() -> std::int64_t {                                                       \
    static ::osiris::fi::Site _fi_site(__FILE__, __LINE__, (tag),                \
                                       ::osiris::fi::SiteKind::kValue);          \
    return ::osiris::fi::value_probe(&_fi_site, static_cast<std::int64_t>(v));   \
  }())

#define FI_BRANCH(tag, cond)                                                     \
  ([&]() -> bool {                                                               \
    static ::osiris::fi::Site _fi_site(__FILE__, __LINE__, (tag),                \
                                       ::osiris::fi::SiteKind::kBranch);         \
    return ::osiris::fi::branch_probe(&_fi_site, static_cast<bool>(cond));       \
  }())
