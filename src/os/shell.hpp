// A small POSIX-style shell for the simulated OS.
//
// Supports the constructs the paper's recovery narrative revolves around
// (SIII-C: "the shell can handle [E_CRASH] just like other unexpected
// failures"):
//
//   cmd arg...            run /bin/cmd via fork+exec, wait, report status
//   cmd1 | cmd2           pipelines (pipe + fd passing via the data store)
//   cmd > path            redirect a builtin's output to a file
//   a ; b ; c             sequencing
//   builtins: echo, cat, ls, mkdir, rm, rmdir, mv, touch, stat, ps, meminfo,
//             publish, retrieve, true, false, crashinfo
//
// Any command failing with E_CRASH (a component was recovered underneath
// the shell) is reported and the script continues — the shell never dies
// with the server.
#pragma once

#include <string>
#include <vector>

#include "os/isys.hpp"
#include "os/programs.hpp"

namespace osiris::os {

struct ShellResult {
  int commands_run = 0;
  int failures = 0;           // nonzero exit status or builtin error
  int crash_errors = 0;       // commands that observed E_CRASH
  std::string transcript;     // everything the shell "printed"
};

/// Run a script (newline- or ';'-separated commands) on `sys`.
ShellResult run_shell_script(ISys& sys, std::string_view script);

/// Register the external programs the shell can exec (wc, rev, upper).
void register_shell_programs(ProgramRegistry& registry);

}  // namespace osiris::os
