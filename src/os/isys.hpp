// ISys: the system-call interface seen by simulated user programs.
//
// Every workload (the 89-program prototype test suite, the unixbench
// workloads, the shell) is written against this interface, so the same
// program runs unmodified on two system organisations:
//
//   - os::OsInstance — the OSIRIS multiserver system: syscalls are messages
//     through the microkernel, with SEEPs, checkpointing and recovery; and
//   - os::MonoOs    — a monolithic direct-call kernel (the "Linux" stand-in
//     of Table IV): same semantics, no isolation, no messages, no
//     instrumentation.
//
// Error returns are negative kernel::Errno values, E_CRASH included: a
// well-written program treats E_CRASH like any other failed call (paper
// SIII-C: "most well-written programs routinely deal with such error
// codes").
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>

#include "kernel/message.hpp"

namespace osiris::os {

/// Thrown by ISys::exit (and by falling off the end of a program body).
struct ProcExit {
  std::int64_t status;
};

/// Thrown inside a process that received kSigKill.
struct ProcKilled {};

struct StatResult {
  std::uint64_t size = 0;
  std::uint64_t type = 0;  // fs::FileType
  std::uint64_t nlinks = 0;
};

class ISys {
 public:
  virtual ~ISys() = default;

  using ProcBody = std::function<void(ISys&)>;

  // --- processes --------------------------------------------------------
  /// fork + the child's program: the child runs `body` in a new process
  /// (closure capture stands in for address-space duplication). Returns the
  /// child pid, or a negative error.
  virtual std::int64_t fork(ProcBody body) = 0;
  /// Replace this process's program with /bin/<leaf> of `path`. On success
  /// the new program runs and this call never returns; on failure an error
  /// is returned.
  virtual std::int64_t exec(std::string_view path) = 0;
  [[noreturn]] virtual void exit(std::int64_t status) = 0;
  /// Wait for a child (pid, or 0 = any). Fills status; returns reaped pid.
  virtual std::int64_t wait_pid(std::int64_t pid, std::int64_t* status) = 0;
  virtual std::int64_t getpid() = 0;
  virtual std::int64_t getppid() = 0;
  virtual std::int64_t kill(std::int64_t pid, std::uint64_t sig) = 0;
  /// Install (handle=true) or reset a signal disposition.
  virtual std::int64_t sigaction(std::uint64_t sig, bool handle) = 0;
  /// Fetch-and-clear the pending signal mask.
  virtual std::int64_t sigpending(std::uint64_t* mask) = 0;
  virtual std::int64_t procstat(std::int64_t pid) = 0;
  virtual std::int64_t getuid() = 0;
  virtual std::int64_t setuid(std::uint64_t uid) = 0;

  // --- memory ------------------------------------------------------------
  virtual std::int64_t brk(std::uint64_t addr) = 0;
  virtual std::int64_t mmap(std::uint64_t length) = 0;  // returns region id
  virtual std::int64_t munmap(std::int64_t region) = 0;
  virtual std::int64_t getmeminfo(std::uint64_t* free_pages, std::uint64_t* total_pages) = 0;

  // --- files ---------------------------------------------------------------
  virtual std::int64_t open(std::string_view path, std::uint64_t flags) = 0;
  virtual std::int64_t close(std::int64_t fd) = 0;
  virtual std::int64_t read(std::int64_t fd, std::span<std::byte> buf) = 0;
  virtual std::int64_t write(std::int64_t fd, std::span<const std::byte> buf) = 0;
  virtual std::int64_t lseek(std::int64_t fd, std::int64_t offset, int whence) = 0;
  virtual std::int64_t stat(std::string_view path, StatResult* out) = 0;
  virtual std::int64_t fstat(std::int64_t fd, StatResult* out) = 0;
  virtual std::int64_t unlink(std::string_view path) = 0;
  virtual std::int64_t mkdir(std::string_view path) = 0;
  virtual std::int64_t rmdir(std::string_view path) = 0;
  virtual std::int64_t rename(std::string_view path, std::string_view new_leaf) = 0;
  virtual std::int64_t readdir(std::string_view path, std::uint64_t index, std::string* name) = 0;
  virtual std::int64_t pipe(std::int64_t fds[2]) = 0;
  virtual std::int64_t dup(std::int64_t fd) = 0;
  virtual std::int64_t truncate(std::string_view path, std::uint64_t size) = 0;
  virtual std::int64_t fsync() = 0;
  virtual std::int64_t access(std::string_view path) = 0;

  // --- data store ----------------------------------------------------------
  virtual std::int64_t ds_publish(std::string_view key, std::uint64_t value) = 0;
  virtual std::int64_t ds_retrieve(std::string_view key, std::uint64_t* value) = 0;
  virtual std::int64_t ds_delete(std::string_view key) = 0;
  virtual std::int64_t ds_subscribe(std::string_view prefix) = 0;
  virtual std::int64_t ds_check(std::uint64_t* events) = 0;

  // --- misc -----------------------------------------------------------------
  virtual std::int64_t times(std::uint64_t* ticks) = 0;
  virtual std::int64_t uname(std::string* name) = 0;
  /// Query the Recovery Server for a component's restart count.
  virtual std::int64_t rs_status(std::int32_t endpoint) = 0;

  /// Convenience: write a string.
  std::int64_t write_str(std::int64_t fd, std::string_view s) {
    return write(fd, std::as_bytes(std::span<const char>(s.data(), s.size())));
  }
};

}  // namespace osiris::os
