// Sys: the ISys implementation for the OSIRIS multiserver system.
//
// Every call marshals a message, grants access to user buffers where bulk
// data is involved, performs a sendrec (suspending the calling fiber until
// the reply arrives), and demarshals the result. Signal handlers installed
// by the process run at syscall boundaries, and kSigKill interrupts any
// blocked call by unwinding the fiber with ProcKilled.
#pragma once

#include "kernel/kernel.hpp"
#include "os/isys.hpp"

namespace osiris::os {

class OsInstance;
class UserProc;

class Sys final : public ISys {
 public:
  Sys(OsInstance& os, UserProc& proc) : os_(os), proc_(proc) {}

  // processes
  std::int64_t fork(ProcBody body) override;
  std::int64_t exec(std::string_view path) override;
  [[noreturn]] void exit(std::int64_t status) override;
  std::int64_t wait_pid(std::int64_t pid, std::int64_t* status) override;
  std::int64_t getpid() override;
  std::int64_t getppid() override;
  std::int64_t kill(std::int64_t pid, std::uint64_t sig) override;
  std::int64_t sigaction(std::uint64_t sig, bool handle) override;
  std::int64_t sigpending(std::uint64_t* mask) override;
  std::int64_t procstat(std::int64_t pid) override;
  std::int64_t getuid() override;
  std::int64_t setuid(std::uint64_t uid) override;

  // memory
  std::int64_t brk(std::uint64_t addr) override;
  std::int64_t mmap(std::uint64_t length) override;
  std::int64_t munmap(std::int64_t region) override;
  std::int64_t getmeminfo(std::uint64_t* free_pages, std::uint64_t* total_pages) override;

  // files
  std::int64_t open(std::string_view path, std::uint64_t flags) override;
  std::int64_t close(std::int64_t fd) override;
  std::int64_t read(std::int64_t fd, std::span<std::byte> buf) override;
  std::int64_t write(std::int64_t fd, std::span<const std::byte> buf) override;
  std::int64_t lseek(std::int64_t fd, std::int64_t offset, int whence) override;
  std::int64_t stat(std::string_view path, StatResult* out) override;
  std::int64_t fstat(std::int64_t fd, StatResult* out) override;
  std::int64_t unlink(std::string_view path) override;
  std::int64_t mkdir(std::string_view path) override;
  std::int64_t rmdir(std::string_view path) override;
  std::int64_t rename(std::string_view path, std::string_view new_leaf) override;
  std::int64_t readdir(std::string_view path, std::uint64_t index, std::string* name) override;
  std::int64_t pipe(std::int64_t fds[2]) override;
  std::int64_t dup(std::int64_t fd) override;
  std::int64_t truncate(std::string_view path, std::uint64_t size) override;
  std::int64_t fsync() override;
  std::int64_t access(std::string_view path) override;

  // data store
  std::int64_t ds_publish(std::string_view key, std::uint64_t value) override;
  std::int64_t ds_retrieve(std::string_view key, std::uint64_t* value) override;
  std::int64_t ds_delete(std::string_view key) override;
  std::int64_t ds_subscribe(std::string_view prefix) override;
  std::int64_t ds_check(std::uint64_t* events) override;

  // misc
  std::int64_t times(std::uint64_t* ticks) override;
  std::int64_t uname(std::string* name) override;
  std::int64_t rs_status(std::int32_t endpoint) override;

  /// Install a user-side signal handler body (runs at syscall boundaries).
  void on_signal(std::uint64_t sig, std::function<void()> handler);

 private:
  /// Send a request and suspend the fiber until the reply arrives.
  kernel::Message sendrec(kernel::Endpoint dst, kernel::Message m);
  /// sendrec with one transparent retry on E_CRASH (idempotent calls only).
  kernel::Message sendrec_retry(kernel::Endpoint dst, kernel::Message m);
  void check_killed();
  void run_pending_handlers();

  OsInstance& os_;
  UserProc& proc_;
  std::unordered_map<std::uint64_t, std::function<void()>> handlers_;
  bool in_handler_ = false;
};

}  // namespace osiris::os
