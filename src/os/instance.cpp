#include "os/instance.hpp"

#include "fi/registry.hpp"
#include "fs/direct_store.hpp"
#include "kernel/faults.hpp"
#include "os/syscalls.hpp"
#include "support/log.hpp"

namespace osiris::os {

using kernel::Message;

// --- UserProc -----------------------------------------------------------

UserProc::UserProc(OsInstance& os, std::string name, ISys::ProcBody body)
    : os_(os), name_(std::move(name)), body_(std::move(body)) {
  sys_ = std::make_unique<Sys>(os_, *this);
  ep_ = os_.kern().register_client(this);
  fiber_ = std::make_unique<cothread::Fiber>([this] {
    std::int64_t rc = 0;
    bool killed = false;
    try {
      body_(*sys_);
    } catch (const ProcExit& e) {
      rc = e.status;
      run_state_ = RunState::kDone;
      return;  // exit() already performed the PM_EXIT syscall
    } catch (const ProcKilled&) {
      killed = true;
    }
    run_state_ = RunState::kDone;
    if (!killed && os_.kern().state() == kernel::SystemState::kRunning) {
      // Program body returned without calling exit(): exit(rc) implicitly.
      try {
        sys_->exit(rc);
      } catch (const ProcExit&) {
      } catch (const ProcKilled&) {
      }
    }
  });
}

UserProc::~UserProc() = default;

void UserProc::on_reply(const kernel::Message& reply) {
  has_reply_ = true;
  reply_ = reply;
  if (run_state_ == RunState::kBlocked) {
    run_state_ = RunState::kReady;
    os_.mark_ready(this);
  }
}

void UserProc::on_notify(const kernel::Message& msg) {
  if ((msg.type & ~kernel::kNotifyBit) == servers::PM_SIG_NOTIFY) {
    const std::uint64_t mask = msg.arg[0];
    pending_sig_mask_ |= mask;
    if ((mask & (1ULL << servers::kSigKill)) != 0) {
      killed_ = true;
      // Wake the fiber so it can unwind, even mid-sendrec.
      if (run_state_ == RunState::kBlocked) {
        run_state_ = RunState::kReady;
        os_.mark_ready(this);
      }
    }
  }
}

// --- OsInstance -----------------------------------------------------------

OsInstance::OsInstance(OsConfig cfg) : cfg_(cfg) {
#if OSIRIS_TRACE_ENABLED
  if (cfg_.trace_enabled) {
    tracer_ = std::make_unique<trace::Tracer>(clock_, cfg_.trace_ring_capacity);
    tracer_->set_component_name(kernel::kKernelEp.value, "kernel");
    tracer_->set_component_name(kernel::kRsEp.value, "rs");
    tracer_->set_component_name(kernel::kPmEp.value, "pm");
    tracer_->set_component_name(kernel::kVmEp.value, "vm");
    tracer_->set_component_name(kernel::kVfsEp.value, "vfs");
    tracer_->set_component_name(kernel::kDsEp.value, "ds");
    tracer_->set_component_name(servers::kSysEp.value, "sys");
    // Install as this thread's active tracer; the previous one (normally
    // nullptr, but OS instances may nest in harness code) is restored on
    // destruction, mirroring ckpt::Context::Scope.
    prev_tracer_ = trace::Tracer::exchange_active(tracer_.get());
  }
#endif
}

OsInstance::~OsInstance() {
#if OSIRIS_TRACE_ENABLED
  if (tracer_) trace::Tracer::exchange_active(prev_tracer_);
#endif
}

const char* OsInstance::outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kCompleted: return "completed";
    case Outcome::kShutdown: return "shutdown";
    case Outcome::kCrashed: return "crashed";
    case Outcome::kHung: return "hung";
  }
  return "?";
}

void OsInstance::boot() {
  OSIRIS_ASSERT(!booted_);
  booted_ = true;

  disk_ = std::make_unique<fs::BlockDevice>(clock_, cfg_.disk_blocks, cfg_.disk_read_latency,
                                            cfg_.disk_write_latency);
  fs::MiniFs::mkfs(*disk_);

  // Populate the filesystem before the servers come up: /bin with a marker
  // file per registered program, /tmp for the workloads.
  {
    fs::DirectStore direct(*disk_);
    fs::MiniFs boot_fs(direct);
    OSIRIS_ASSERT(boot_fs.mount() == kernel::OK);
    const std::int64_t bin = boot_fs.create(fs::kRootIno, "bin", fs::FileType::kDirectory);
    OSIRIS_ASSERT(bin > 0);
    OSIRIS_ASSERT(boot_fs.create(fs::kRootIno, "tmp", fs::FileType::kDirectory) > 0);
    OSIRIS_ASSERT(boot_fs.create(fs::kRootIno, "etc", fs::FileType::kDirectory) > 0);
    for (const auto& [name, body] : programs_.all()) {
      const std::int64_t ino =
          boot_fs.create(static_cast<fs::Ino>(bin), name, fs::FileType::kRegular);
      OSIRIS_ASSERT(ino > 0);
      // A tiny "image" so exec's binary check reads real file data.
      const std::string image = "#!osiris " + name;
      boot_fs.write(static_cast<fs::Ino>(ino), 0,
                    std::as_bytes(std::span<const char>(image.data(), image.size())));
    }
  }

  kernel_ = std::make_unique<kernel::Kernel>(clock_);
  kernel_->set_fastpath(cfg_.fastpath);
  // Batch eligibility is a pure derivation from the spec table's SEEP
  // classes; the kernel only sees the predicate.
  kernel_->set_batch_eligible(&servers::is_batch_eligible);
  kernel_->set_health(cfg_.health);
  kernel_->set_throttle_exempt(&servers::is_throttle_exempt);
  kernel_->set_dispatch_burst_cap(cfg_.max_dispatch_burst);

  const ckpt::Mode mode =
      seep::policy_uses_windows(cfg_.policy) ? cfg_.ckpt_mode : ckpt::Mode::kOff;
  classification_ = servers::build_classification();
  sys_ = std::make_unique<servers::SysTask>(*kernel_, classification_);
  pm_ = std::make_unique<servers::Pm>(*kernel_, classification_, cfg_.policy, mode);
  vm_ = std::make_unique<servers::Vm>(*kernel_, classification_, cfg_.policy, mode);
  vfs_ = std::make_unique<servers::Vfs>(*kernel_, classification_, cfg_.policy, mode, *disk_,
                                        cfg_.cache_blocks, cfg_.vfs_journal_slots,
                                        cfg_.ckpt_pages);
  vfs_->set_fom_enabled(cfg_.vfs_fom);
  ds_ = std::make_unique<servers::Ds>(*kernel_, classification_, cfg_.policy, mode,
                                      cfg_.ds_blob_slots, cfg_.ckpt_pages);
  rs_ = std::make_unique<servers::Rs>(*kernel_, classification_, cfg_.policy, mode);

  kernel_->register_server(servers::kSysEp, sys_.get());
  kernel_->register_server(kernel::kPmEp, pm_.get());
  kernel_->register_server(kernel::kVmEp, vm_.get());
  kernel_->register_server(kernel::kVfsEp, vfs_.get());
  kernel_->register_server(kernel::kDsEp, ds_.get());
  kernel_->register_server(kernel::kRsEp, rs_.get());

  vfs_->mount();

  if (cfg_.recovery_enabled) {
    engine_ = std::make_unique<recovery::Engine>(*kernel_, classification_, cfg_.policy,
                                                 cfg_.max_recoveries, cfg_.ladder);
    components_ = {pm_.get(), vm_.get(), vfs_.get(), ds_.get(), rs_.get()};
    for (recovery::Recoverable* c : components_) engine_->register_component(c);
    rs_->attach_engine(engine_.get());
    // Fever decisions route into the ladder's storm rung. The handler fires
    // only at the dispatch boundary (never nested), so the engine may park
    // the fevered component on the spot.
    kernel_->set_storm_handler(
        [this](kernel::Endpoint ep) { engine_->on_storm(ep); });
  }

  // RS watches every published key (component status publications), so DS
  // publishes always notify at least one subscriber early in the request.
  ds_->boot_subscribe(kernel::kRsEp, "");

  for (const kernel::Endpoint ep : {kernel::kPmEp, kernel::kVmEp, kernel::kVfsEp, kernel::kDsEp}) {
    const bool monitored = rs_->monitor(ep);
    OSIRIS_ASSERT(monitored);  // boot servers must never lose heartbeat coverage
  }
  if (cfg_.heartbeat_interval > 0) rs_->start_heartbeats(cfg_.heartbeat_interval);

  // Seed the data store with boot facts (consumed by uname and the suite).
  {
    Message m = servers::encode_text(servers::DS_PUBLISH, "sys.release", 316);
    kernel_->send(kernel::kKernelEp, kernel::kDsEp, m);
    kernel_->dispatch_pending();
  }

  // Everything up to here is boot: executed fault candidates are excluded
  // from injection campaigns (paper SVI-B), and campaigns arm faults only
  // after boot() returns.
  fi::Registry::instance().mark_boot_complete();
}

UserProc* OsInstance::create_proc(std::string name, ISys::ProcBody body) {
  procs_.push_back(std::make_unique<UserProc>(*this, std::move(name), std::move(body)));
  return procs_.back().get();
}

void OsInstance::mark_ready(UserProc* p) {
  if (!p->in_ready_queue_ && p->run_state_ != UserProc::RunState::kDone) {
    p->in_ready_queue_ = true;
    ready_.push_back(p);
  }
}

UserProc* OsInstance::pop_ready() {
  while (!ready_.empty()) {
    UserProc* p = ready_.front();
    ready_.pop_front();
    p->in_ready_queue_ = false;
    if (p->run_state_ != UserProc::RunState::kDone) return p;
  }
  return nullptr;
}

void OsInstance::resume_proc(UserProc* p) {
  p->run_state_ = UserProc::RunState::kRunning;
  p->fiber_->resume();
  if (auto e = p->fiber_->take_exception()) {
    // Nothing legitimate escapes a user fiber; this is a harness bug.
    std::rethrow_exception(e);
  }
  if (p->fiber_->finished()) {
    p->run_state_ = UserProc::RunState::kDone;
    kernel_->unregister_client(p->ep_);
  } else if (p->run_state_ == UserProc::RunState::kRunning) {
    p->run_state_ = UserProc::RunState::kBlocked;
  }
}

void OsInstance::reap_done() {
  std::erase_if(procs_, [this](const std::unique_ptr<UserProc>& p) {
    return p->run_state_ == UserProc::RunState::kDone && !p->in_ready_queue_;
  });
}

OsInstance::Outcome OsInstance::run(ISys::ProcBody init_body) {
  OSIRIS_ASSERT(booted_);
  UserProc* init = create_proc("init", std::move(init_body));
  init->pid_ = 1;
  pm_->register_boot_proc(1, init->ep(), "init");
  vm_->register_boot_proc(1);
  vfs_->register_boot_proc(1, init->ep());
  sys_->register_boot_proc(1);

  mark_ready(init);
  bool hung = false;
  std::uint64_t idle_iters = 0;
  try {
    while (kernel_->state() == kernel::SystemState::kRunning) {
      bool progress = false;
      if (kernel_->dispatch_pending()) progress = true;
      if (UserProc* p = pop_ready()) {
        resume_proc(p);
        progress = true;
        idle_iters = 0;  // only *user-process* progress counts: background
                         // heartbeat chatter must not mask a hung workload
      } else {
        ++idle_iters;
      }
      if (init->run_state_ == UserProc::RunState::kDone) break;
      if (!progress && !clock_.advance_to_next()) {
        hung = true;  // deadlock: nothing runnable, nothing pending
        break;
      }
      if (++steps_ > cfg_.max_steps || idle_iters > cfg_.max_idle_iters) {
        hung = true;
        break;
      }
    }
  } catch (const kernel::ControlledShutdown&) {
    // Unwound from deep inside a dispatch chain; kernel state is kShutdown.
  }
  reap_done();

  switch (kernel_->state()) {
    case kernel::SystemState::kShutdown:
      return Outcome::kShutdown;
    case kernel::SystemState::kCrashed:
      return Outcome::kCrashed;
    case kernel::SystemState::kRunning:
      return hung ? Outcome::kHung : Outcome::kCompleted;
  }
  return Outcome::kCrashed;
}

}  // namespace osiris::os
