// Program registry: named user programs available to exec().
//
// The simulated filesystem is populated at boot with /bin/<name> marker
// files; exec() verifies the binary exists through VFS (and PM's
// asynchronous exec pipeline) and then runs the registered body — the
// simulator's stand-in for loading an image.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>

#include "os/isys.hpp"

namespace osiris::os {

class ProgramRegistry {
 public:
  using Body = std::function<std::int64_t(ISys&)>;

  void add(std::string name, Body body) { programs_[std::move(name)] = std::move(body); }

  [[nodiscard]] const Body* find(std::string_view path) const {
    // exec paths are /bin/<name>; bare names are accepted too.
    std::string_view leaf = path;
    if (const auto slash = path.rfind('/'); slash != std::string_view::npos) {
      leaf = path.substr(slash + 1);
    }
    auto it = programs_.find(std::string(leaf));
    return it == programs_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const std::unordered_map<std::string, Body>& all() const { return programs_; }

 private:
  std::unordered_map<std::string, Body> programs_;
};

}  // namespace osiris::os
