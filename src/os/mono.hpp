// MonoOs: the monolithic direct-call baseline (Table IV's "Linux" stand-in).
//
// Implements the same ISys semantics as the OSIRIS multiserver system —
// processes, wait/exit, signals, files on the same MiniFS, pipes, a
// key-value store — but as ONE kernel: every syscall is a direct function
// call into shared data structures. No message passing, no MMU-style
// isolation, no SEEPs, no checkpointing, no recovery. Comparing unixbench
// scores across MonoOs and OsInstance measures exactly the cost the paper
// attributes to the compartmentalized design ("overhead incurred by
// context-switching between OS components"), holding the workload and the
// filesystem implementation constant.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cothread/fiber.hpp"
#include "fs/blockdev.hpp"
#include "fs/direct_store.hpp"
#include "fs/minifs.hpp"
#include "os/isys.hpp"
#include "os/programs.hpp"
#include "support/clock.hpp"

namespace osiris::os {

class MonoOs {
 public:
  MonoOs();
  ~MonoOs();

  MonoOs(const MonoOs&) = delete;
  MonoOs& operator=(const MonoOs&) = delete;

  ProgramRegistry& programs() noexcept { return programs_; }

  void boot();

  /// Run `init_body` as pid 1 until it exits; returns its exit status.
  std::int64_t run(ISys::ProcBody init_body);

 private:
  friend class MonoSys;

  struct OpenFile {
    bool used = false;
    bool is_pipe_read = false;
    bool is_pipe_write = false;
    fs::Ino ino = fs::kNoIno;
    std::uint32_t pos = 0;
    std::uint32_t flags = 0;
    std::int32_t refcnt = 0;
    std::int32_t pipe = -1;
  };

  struct Pipe {
    bool used = false;
    std::deque<std::byte> data;
    std::int32_t readers = 0;
    std::int32_t writers = 0;
  };

  struct Proc {
    std::int32_t pid = 0;
    std::int32_t parent = 0;
    bool zombie = false;
    bool killed = false;
    bool waiting = false;  // blocked in wait_pid
    std::int32_t wait_target = 0;
    std::int64_t exit_status = 0;
    std::uint64_t pending_sigs = 0;
    std::uint64_t handled_sigs = 0;
    std::uint64_t brk = 0x10000;
    std::uint32_t heap_pages = 0;
    std::string name;
    std::vector<std::int32_t> fds;  // open-file index or -1
    std::unique_ptr<cothread::Fiber> fiber;
    std::unique_ptr<class MonoSys> sys;
    bool ready = false;
    bool done = false;
  };

  Proc* proc_of_pid(std::int32_t pid);
  Proc* spawn(std::int32_t parent, std::string name, ISys::ProcBody body);
  void mark_ready(Proc* p);
  void terminate(Proc* p, std::int64_t status);
  void close_filei(std::size_t fidx);
  /// Wake every live process to re-check its blocking condition.
  void wake_all();

  VirtualClock clock_;  // virtual time for times(); no latency modelled
  std::unique_ptr<fs::BlockDevice> disk_;
  std::unique_ptr<fs::DirectStore> store_;
  std::unique_ptr<fs::MiniFs> fs_;
  ProgramRegistry programs_;

  std::vector<std::unique_ptr<Proc>> procs_;
  std::deque<Proc*> ready_;
  std::vector<OpenFile> files_;
  std::vector<Pipe> pipes_;
  std::map<std::string, std::uint64_t, std::less<>> ds_;
  std::int32_t next_pid_ = 2;
  std::uint32_t free_pages_ = 16384;
  bool booted_ = false;
};

}  // namespace osiris::os
