// OsInstance: one booted OSIRIS machine.
//
// Owns the virtual clock, the simulated microkernel, the five system servers
// plus the SYS task, the recovery engine, the block device, and the user
// processes (fibers). `run()` executes an init program to completion and
// classifies the machine's fate — the outcome classes of the survivability
// experiments (completed / controlled shutdown / crash / hang).
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cothread/fiber.hpp"
#include "fs/blockdev.hpp"
#include "kernel/kernel.hpp"
#include "os/config.hpp"
#include "os/isys.hpp"
#include "os/programs.hpp"
#include "recovery/engine.hpp"
#include "servers/ds.hpp"
#include "servers/pm.hpp"
#include "servers/rs.hpp"
#include "servers/sys_task.hpp"
#include "servers/vfs.hpp"
#include "servers/vm.hpp"
#include "trace/trace.hpp"
#if OSIRIS_TRACE_ENABLED
#include "trace/tracer.hpp"
#endif

namespace osiris::os {

class OsInstance;
class Sys;

/// A simulated user process: a fiber plus the kernel client mailbox.
class UserProc final : public kernel::IClient {
 public:
  enum class RunState : std::uint8_t { kReady, kRunning, kBlocked, kDone };

  UserProc(OsInstance& os, std::string name, ISys::ProcBody body);
  ~UserProc() override;

  // IClient
  void on_reply(const kernel::Message& reply) override;
  void on_notify(const kernel::Message& msg) override;

  [[nodiscard]] kernel::Endpoint ep() const noexcept { return ep_; }
  [[nodiscard]] std::int32_t pid() const noexcept { return pid_; }
  [[nodiscard]] RunState run_state() const noexcept { return run_state_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::int64_t exit_status() const noexcept { return exit_status_; }

 private:
  friend class OsInstance;
  friend class Sys;

  OsInstance& os_;
  std::string name_;
  ISys::ProcBody body_;
  std::unique_ptr<Sys> sys_;
  std::unique_ptr<cothread::Fiber> fiber_;
  kernel::Endpoint ep_;
  std::int32_t pid_ = -1;
  RunState run_state_ = RunState::kReady;
  bool in_ready_queue_ = false;

  bool has_reply_ = false;
  kernel::Message reply_;
  bool killed_ = false;
  std::uint64_t pending_sig_mask_ = 0;
  std::uint64_t handled_mask_ = 0;  // user-side handlers installed
  std::int64_t exit_status_ = 0;
};

class OsInstance {
 public:
  enum class Outcome : std::uint8_t { kCompleted, kShutdown, kCrashed, kHung };

  explicit OsInstance(OsConfig cfg = {});
  ~OsInstance();

  OsInstance(const OsInstance&) = delete;
  OsInstance& operator=(const OsInstance&) = delete;

  ProgramRegistry& programs() noexcept { return programs_; }

  /// Format + populate the disk, construct and wire all servers, start
  /// heartbeats, and mark boot complete for the fault-injection registry.
  void boot();

  /// Run `init_body` as pid 1 to completion. Returns the machine's fate.
  Outcome run(ISys::ProcBody init_body);

  // --- accessors for tests and benches ---------------------------------
  kernel::Kernel& kern() noexcept { return *kernel_; }
  [[nodiscard]] const seep::Classification& classification() const noexcept {
    return classification_;
  }
  VirtualClock& clock() noexcept { return clock_; }
  servers::Pm& pm() noexcept { return *pm_; }
  servers::Vm& vm() noexcept { return *vm_; }
  servers::Vfs& vfs() noexcept { return *vfs_; }
  servers::Ds& ds() noexcept { return *ds_; }
  servers::Rs& rs() noexcept { return *rs_; }
  servers::SysTask& sys_task() noexcept { return *sys_; }
  recovery::Engine& engine() noexcept { return *engine_; }
  fs::BlockDevice& disk() noexcept { return *disk_; }
#if OSIRIS_TRACE_ENABLED
  /// This machine's tracer, or nullptr when cfg.trace_enabled is false.
  [[nodiscard]] trace::Tracer* tracer() noexcept { return tracer_.get(); }
#endif
  [[nodiscard]] const OsConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }
  [[nodiscard]] const std::string& halt_reason() const { return kernel_->halt_reason(); }

  /// All recoverable components (registration order: PM, VM, VFS, DS, RS).
  [[nodiscard]] const std::vector<recovery::Recoverable*>& components() const {
    return components_;
  }

  static const char* outcome_name(Outcome o);

 private:
  friend class Sys;
  friend class UserProc;

  UserProc* create_proc(std::string name, ISys::ProcBody body);
  void mark_ready(UserProc* p);
  UserProc* pop_ready();
  void resume_proc(UserProc* p);
  void reap_done();

  OsConfig cfg_;
  VirtualClock clock_;
#if OSIRIS_TRACE_ENABLED
  std::unique_ptr<trace::Tracer> tracer_;
  trace::Tracer* prev_tracer_ = nullptr;
#endif
  std::unique_ptr<fs::BlockDevice> disk_;
  seep::Classification classification_;
  std::unique_ptr<kernel::Kernel> kernel_;
  std::unique_ptr<servers::SysTask> sys_;
  std::unique_ptr<servers::Pm> pm_;
  std::unique_ptr<servers::Vm> vm_;
  std::unique_ptr<servers::Vfs> vfs_;
  std::unique_ptr<servers::Ds> ds_;
  std::unique_ptr<servers::Rs> rs_;
  std::unique_ptr<recovery::Engine> engine_;
  ProgramRegistry programs_;
  std::vector<recovery::Recoverable*> components_;

  std::vector<std::unique_ptr<UserProc>> procs_;
  std::deque<UserProc*> ready_;
  std::uint64_t steps_ = 0;
  bool booted_ = false;
};

}  // namespace osiris::os
