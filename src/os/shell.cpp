#include "os/shell.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "servers/protocol.hpp"

namespace osiris::os {

using kernel::E_CRASH;
using kernel::OK;
using namespace osiris::servers;

namespace {

std::vector<std::string> tokenize(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : s) {
    if (ch == ' ' || ch == '\t') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : s) {
    if (ch == sep) {
      out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  out.push_back(std::move(cur));
  return out;
}

/// One pipeline stage: argv + the piped-in input; returns (status, output).
struct StageResult {
  std::int64_t status = 0;
  std::string output;
};

class Shell {
 public:
  Shell(ISys& sys, ShellResult& result) : sys_(sys), result_(result) {}

  void run_line(std::string_view line) {
    // Strip comments and blank lines.
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    if (tokenize(line).empty()) return;
    ++result_.commands_run;

    // Redirect: "pipeline > path" (last '>' wins).
    std::string redirect;
    std::string pipeline(line);
    if (const auto gt = pipeline.rfind('>'); gt != std::string::npos) {
      const auto toks = tokenize(std::string_view(pipeline).substr(gt + 1));
      if (toks.size() == 1) {
        redirect = toks[0];
        pipeline = pipeline.substr(0, gt);
      }
    }

    // Run the stages left to right, threading the output through.
    StageResult acc;
    for (const std::string& stage : split(pipeline, '|')) {
      const auto argv = tokenize(stage);
      if (argv.empty()) {
        acc = {kernel::E_INVAL, ""};
        break;
      }
      acc = run_stage(argv, acc.output);
      if (acc.status == E_CRASH) {
        ++result_.crash_errors;
        say(argv[0] + ": component recovered underneath us (E_CRASH) — continuing");
      }
      if (acc.status != 0) break;
    }

    if (acc.status != 0) {
      ++result_.failures;
      say("sh: command failed with status " + std::to_string(acc.status));
      return;
    }
    if (!redirect.empty()) {
      const std::int64_t fd = sys_.open(redirect, O_CREAT | O_WRONLY | O_TRUNC);
      if (fd < 0) {
        ++result_.failures;
        say("sh: cannot open " + redirect);
        return;
      }
      sys_.write_str(fd, acc.output);
      sys_.close(fd);
    } else if (!acc.output.empty()) {
      say(acc.output);
    }
  }

 private:
  void say(const std::string& s) {
    result_.transcript += s;
    if (s.empty() || s.back() != '\n') result_.transcript += '\n';
  }

  StageResult run_stage(const std::vector<std::string>& argv, const std::string& input) {
    const std::string& cmd = argv[0];
    if (cmd == "echo") {
      std::string out;
      for (std::size_t i = 1; i < argv.size(); ++i) {
        if (i > 1) out += ' ';
        out += argv[i];
      }
      return {0, out + "\n"};
    }
    if (cmd == "cat") {
      if (argv.size() < 2) return {0, input};  // passthrough
      const std::int64_t fd = sys_.open(argv[1], O_RDONLY);
      if (fd < 0) return {fd, ""};
      std::string out;
      char buf[256];
      std::int64_t n;
      while ((n = sys_.read(fd, std::as_writable_bytes(std::span<char>(buf, sizeof buf)))) > 0) {
        out.append(buf, static_cast<std::size_t>(n));
      }
      sys_.close(fd);
      return {n < 0 ? n : 0, out};
    }
    if (cmd == "upper") {
      std::string out = input;
      std::transform(out.begin(), out.end(), out.begin(),
                     [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
      return {0, out};
    }
    if (cmd == "rev") {
      std::string out(input.rbegin(), input.rend());
      return {0, out};
    }
    if (cmd == "wc") {
      const auto lines = static_cast<std::size_t>(std::count(input.begin(), input.end(), '\n'));
      return {0, std::to_string(lines) + " " + std::to_string(input.size()) + "\n"};
    }
    if (cmd == "ls") {
      const std::string path = argv.size() > 1 ? argv[1] : "/";
      std::string out;
      for (std::uint64_t i = 0;; ++i) {
        std::string name;
        const std::int64_t r = sys_.readdir(path, i, &name);
        if (r == kernel::E_NOENT) break;
        if (r < 0) return {r, ""};
        out += name + "\n";
      }
      return {0, out};
    }
    if (cmd == "mkdir" && argv.size() == 2) return {sys_.mkdir(argv[1]), ""};
    if (cmd == "rm" && argv.size() == 2) return {sys_.unlink(argv[1]), ""};
    if (cmd == "rmdir" && argv.size() == 2) return {sys_.rmdir(argv[1]), ""};
    if (cmd == "mv" && argv.size() == 3) return {sys_.rename(argv[1], argv[2]), ""};
    if (cmd == "touch" && argv.size() == 2) {
      const std::int64_t fd = sys_.open(argv[1], O_CREAT | O_WRONLY);
      if (fd < 0) return {fd, ""};
      sys_.close(fd);
      return {0, ""};
    }
    if (cmd == "stat" && argv.size() == 2) {
      StatResult st{};
      const std::int64_t r = sys_.stat(argv[1], &st);
      if (r != OK) return {r, ""};
      return {0, argv[1] + ": size=" + std::to_string(st.size) +
                     " type=" + (st.type == 2 ? "dir" : "file") + "\n"};
    }
    if (cmd == "ps") {
      return {0, "pid " + std::to_string(sys_.getpid()) + " ppid " +
                     std::to_string(sys_.getppid()) + "\n"};
    }
    if (cmd == "meminfo") {
      std::uint64_t free_pages = 0, total = 0;
      const std::int64_t r = sys_.getmeminfo(&free_pages, &total);
      if (r != OK) return {r, ""};
      return {0, std::to_string(free_pages) + "/" + std::to_string(total) + " pages free\n"};
    }
    if (cmd == "publish" && argv.size() == 3) {
      return {sys_.ds_publish(argv[1], std::strtoull(argv[2].c_str(), nullptr, 10)), ""};
    }
    if (cmd == "retrieve" && argv.size() == 2) {
      std::uint64_t v = 0;
      const std::int64_t r = sys_.ds_retrieve(argv[1], &v);
      if (r != OK) return {r, ""};
      return {0, std::to_string(v) + "\n"};
    }
    if (cmd == "crashinfo") {
      std::string out;
      for (std::int32_t ep : {2, 3, 4, 5}) {
        const std::int64_t n = sys_.rs_status(ep);
        out += "endpoint " + std::to_string(ep) + ": " +
               (n < 0 ? std::string("unavailable") : std::to_string(n) + " restarts") + "\n";
      }
      return {0, out};
    }

    // External command: fork + exec /bin/<cmd>, wait, report its status.
    const std::string path = "/bin/" + cmd;
    if (sys_.access(path) != OK) return {kernel::E_NOENT, ""};
    const std::int64_t pid = sys_.fork([path](ISys& c) {
      c.exec(path);
      c.exit(127);
    });
    if (pid < 0) return {pid, ""};
    std::int64_t status = -1;
    if (sys_.wait_pid(pid, &status) != pid) return {kernel::E_CHILD, ""};
    return {status, ""};
  }

  ISys& sys_;
  ShellResult& result_;
};

}  // namespace

ShellResult run_shell_script(ISys& sys, std::string_view script) {
  ShellResult result;
  Shell shell(sys, result);
  for (const std::string& raw_line : split(script, '\n')) {
    for (const std::string& cmd : split(raw_line, ';')) {
      shell.run_line(cmd);
    }
  }
  return result;
}

void register_shell_programs(ProgramRegistry& registry) {
  registry.add("sleepy", [](ISys& sys) -> std::int64_t {
    for (int i = 0; i < 25; ++i) sys.getpid();
    return 0;
  });
  registry.add("fail7", [](ISys&) -> std::int64_t { return 7; });
}

}  // namespace osiris::os
