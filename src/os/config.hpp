// OS instance configuration: the experiment axes of the paper's evaluation.
#pragma once

#include <cstdint>

#include "ckpt/context.hpp"
#include "ckpt/page_store.hpp"
#include "kernel/fastpath.hpp"
#include "kernel/health.hpp"
#include "recovery/ladder.hpp"
#include "seep/policy.hpp"
#include "support/clock.hpp"

namespace osiris::os {

struct OsConfig {
  /// Recovery policy (Tables I-III): stateless / naive / pessimistic / enhanced.
  seep::Policy policy = seep::Policy::kEnhanced;

  /// Instrumentation mode (Table V): kOff = uninstrumented baseline,
  /// kAlways = "without opt", kWindowOnly = optimized (default).
  ckpt::Mode ckpt_mode = ckpt::Mode::kWindowOnly;

  /// Register the recovery engine as the kernel's crash handler. When false
  /// (pure-performance baselines), any crash wedges the system.
  bool recovery_enabled = true;

  /// Heartbeat sweep interval in virtual ticks; 0 disables heartbeats.
  Tick heartbeat_interval = 400;

  /// Recovery budget per component: once exhausted, the escalation ladder
  /// forces the component straight into quarantine (degraded mode) instead
  /// of wedging the system.
  std::uint32_t max_recoveries = 8;

  /// Escalation-ladder tuning: crash-loop detection window, backoff curve,
  /// and quarantine cooldown (see recovery::LadderConfig).
  recovery::LadderConfig ladder;

  // Disk geometry and latency.
  std::size_t disk_blocks = 4096;
  std::size_t cache_blocks = 64;
  Tick disk_read_latency = 40;
  Tick disk_write_latency = 60;

  /// Structured event tracing (requires an OSIRIS_TRACE=ON build; ignored —
  /// at zero cost — otherwise). Off by default: tracing is opt-in per run.
  bool trace_enabled = false;
  /// Per-component ring capacity in events (flight-recorder semantics:
  /// oldest events are overwritten once a component's ring is full). The
  /// default keeps the busiest ring cache-resident; raise it for analyses
  /// that must retain a full run.
  std::size_t trace_ring_capacity = 1024;

  /// IPC fast path (DESIGN.md §14): arena-backed message queue, per-endpoint
  /// dispatch batching, and grant-based zero-copy for bulk payloads. All off
  /// by default; the serving benchmark reports before/after columns per
  /// flag, and golden traces pin observational equivalence.
  kernel::FastPath fastpath;

  /// FOM request executor for VFS (DESIGN.md §16): cache misses park the
  /// request as a resumable state machine instead of suspending a worker
  /// fiber, so the SEEP window machinery stays live across the disk wait.
  /// Off by default so every pre-existing scenario — and every golden
  /// trace — is bit-identical.
  bool vfs_fom = false;

  /// Two-tier checkpointing (DESIGN.md §17): stores into registered MB+
  /// regions take page-granular CoW snapshots in a ckpt::PageStore instead
  /// of element-granular arena records, and the Recovery Server's restart
  /// phase moves only transfer-dirty pages (delta restart). Off by default
  /// so every pre-existing scenario — and every golden trace — is
  /// bit-identical; only meaningful for components with an aux region
  /// (ds_blob_slots / vfs_journal_slots below).
  ckpt::PagesConfig ckpt_pages;

  /// Capacity of DS's heap-backed blob table (4 KiB payload slots behind
  /// DS_PUBLISH/RETRIEVE/DELETE). 0 = no blob tier; sized MB+ (e.g. 512
  /// slots = 2 MiB) for the large-state experiments.
  std::size_t ds_blob_slots = 0;

  /// Capacity of VFS's heap-backed op-journal ring (one 128-byte record per
  /// dispatched request). 0 = no journal.
  std::size_t vfs_journal_slots = 0;

  /// Physiological health monitor (DESIGN.md §15): per-endpoint fever
  /// detection feeding the ladder's storm rung. Off by default so every
  /// pre-existing scenario — and every golden trace — is bit-identical.
  kernel::HealthConfig health;

  /// Deliveries one kernel drain loop may make before the livelock valve
  /// trips (an undetected self-sustaining storm would otherwise spin the
  /// host forever: the virtual clock stands still while work is pending).
  /// Far above anything a legitimate workload produces. 0 disables.
  std::uint64_t max_dispatch_burst = 200'000;

  /// Scheduler-step budget: exceeded = the run is classified as hung.
  std::uint64_t max_steps = 20'000'000;
  /// Iterations without any user-process progress before declaring a hang.
  /// Disk completions and hang-recovery all resolve within tens of
  /// iterations; 2000 leaves two orders of magnitude of margin.
  std::uint64_t max_idle_iters = 2'000;
};

}  // namespace osiris::os
