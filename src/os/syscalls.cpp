#include "os/syscalls.hpp"

#include "cothread/fiber.hpp"
#include "os/instance.hpp"
#include "servers/protocol.hpp"
#include "support/log.hpp"

namespace osiris::os {

using kernel::Access;
using kernel::E_INVAL;
using kernel::E_NOENT;
using kernel::GrantId;
using kernel::Message;
using kernel::OK;
using namespace osiris::servers;  // message type constants + encode()

void Sys::check_killed() {
  if (proc_.killed_) throw ProcKilled{};
}

void Sys::run_pending_handlers() {
  if (in_handler_) return;
  const std::uint64_t pending = proc_.pending_sig_mask_ & proc_.handled_mask_;
  if (pending == 0) return;
  proc_.pending_sig_mask_ &= ~pending;
  in_handler_ = true;
  for (std::uint64_t sig = 1; sig < 64; ++sig) {
    if ((pending & (1ULL << sig)) != 0) {
      auto it = handlers_.find(sig);
      if (it != handlers_.end()) it->second();
    }
  }
  in_handler_ = false;
}

void Sys::on_signal(std::uint64_t sig, std::function<void()> handler) {
  handlers_[sig] = std::move(handler);
  proc_.handled_mask_ |= (1ULL << sig);
}

Message Sys::sendrec(kernel::Endpoint dst, Message m) {
  check_killed();
  proc_.has_reply_ = false;
  os_.kern().send(proc_.ep_, dst, m);
  proc_.run_state_ = UserProc::RunState::kBlocked;
  while (!proc_.has_reply_) {
    cothread::Fiber::suspend();
    check_killed();
    if (os_.kern().state() != kernel::SystemState::kRunning) {
      // The machine is halting: unwind this process.
      throw ProcKilled{};
    }
  }
  proc_.run_state_ = UserProc::RunState::kRunning;
  Message reply = proc_.reply_;
  proc_.has_reply_ = false;
  run_pending_handlers();
  return reply;
}

Message Sys::sendrec_retry(kernel::Endpoint dst, Message m) {
  // libc-style handling of error-virtualized replies for *idempotent*
  // read-only calls: after a component recovery the request was discarded
  // (E_CRASH); reissuing it is the "most appropriate action" (paper SIII-C)
  // and is transparent when the recovery succeeded.
  Message r = sendrec(dst, m);
  if (r.sarg(0) == kernel::E_CRASH) r = sendrec(dst, m);
  return r;
}

// --- processes -----------------------------------------------------------

std::int64_t Sys::fork(ProcBody body) {
  check_killed();
  UserProc* child = os_.create_proc(proc_.name_ + "+", std::move(body));
  Message r = sendrec(kernel::kPmEp, encode(PM_FORK, child->ep().value));
  const std::int64_t pid = r.sarg(0);
  if (pid < 0) {
    // fork failed: the child never existed.
    child->run_state_ = UserProc::RunState::kDone;
    return pid;
  }
  child->pid_ = static_cast<std::int32_t>(pid);
  os_.mark_ready(child);
  return pid;
}

std::int64_t Sys::exec(std::string_view path) {
  check_killed();
  const ProgramRegistry::Body* body = os_.programs().find(path);
  Message r = sendrec(kernel::kPmEp, encode_text(PM_EXEC, path));
  if (r.sarg(0) != OK) return r.sarg(0);
  if (body == nullptr) return E_NOENT;  // binary on disk but not registered
  // The image is loaded: run the new program on this fiber; it never returns.
  const std::int64_t rc = (*body)(*this);
  exit(rc);
}

void Sys::exit(std::int64_t status) {
  check_killed();
  proc_.exit_status_ = status;
  // exit() must not fail: if PM crashed while processing it (E_CRASH after
  // recovery), the rollback restored this process's entry, so the request
  // can simply be reissued.
  for (int attempt = 0; attempt < 64; ++attempt) {
    Message r = sendrec(kernel::kPmEp, encode(PM_EXIT, status));
    if (r.sarg(0) != kernel::E_CRASH) break;
  }
  throw ProcExit{status};
}

std::int64_t Sys::wait_pid(std::int64_t pid, std::int64_t* status) {
  // wait() is idempotent: an E_CRASH reply after a PM recovery means the
  // (rolled-back) request was discarded — re-issue it.
  Message r;
  for (int attempt = 0; attempt < 64; ++attempt) {
    r = sendrec(kernel::kPmEp, encode(PM_WAIT, pid));
    if (r.sarg(0) != kernel::E_CRASH) break;
  }
  if (r.sarg(0) < 0) return r.sarg(0);
  if (status != nullptr) *status = static_cast<std::int64_t>(r.arg[1]);
  return r.sarg(0);
}

std::int64_t Sys::getpid() { return sendrec_retry(kernel::kPmEp, encode(PM_GETPID)).sarg(0); }
std::int64_t Sys::getppid() { return sendrec_retry(kernel::kPmEp, encode(PM_GETPPID)).sarg(0); }

std::int64_t Sys::kill(std::int64_t pid, std::uint64_t sig) {
  return sendrec(kernel::kPmEp, encode(PM_KILL, pid, sig)).sarg(0);
}

std::int64_t Sys::sigaction(std::uint64_t sig, bool handle) {
  if (handle) proc_.handled_mask_ |= (1ULL << sig);
  else proc_.handled_mask_ &= ~(1ULL << sig);
  return sendrec(kernel::kPmEp, encode(PM_SIGACTION, sig, handle ? 1 : 0)).sarg(0);
}

std::int64_t Sys::sigpending(std::uint64_t* mask) {
  Message r = sendrec(kernel::kPmEp, encode(PM_SIGPENDING));
  if (r.sarg(0) != OK) return r.sarg(0);
  if (mask != nullptr) *mask = r.arg[1] | proc_.pending_sig_mask_;
  proc_.pending_sig_mask_ = 0;
  return OK;
}

std::int64_t Sys::procstat(std::int64_t pid) {
  Message r = sendrec_retry(kernel::kPmEp, encode(PM_PROCSTAT, pid));
  return r.sarg(0) == OK ? static_cast<std::int64_t>(r.arg[1]) : r.sarg(0);
}

std::int64_t Sys::getuid() { return sendrec_retry(kernel::kPmEp, encode(PM_GETUID)).sarg(0); }
std::int64_t Sys::setuid(std::uint64_t uid) {
  return sendrec(kernel::kPmEp, encode(PM_SETUID, uid)).sarg(0);
}

// --- memory ----------------------------------------------------------------

std::int64_t Sys::brk(std::uint64_t addr) {
  Message r = sendrec(kernel::kPmEp, encode(PM_BRK, addr));
  return r.sarg(0) == OK ? static_cast<std::int64_t>(r.arg[1]) : r.sarg(0);
}

std::int64_t Sys::mmap(std::uint64_t length) {
  Message r = sendrec(kernel::kVmEp, encode(VM_MMAP, proc_.pid_, length));
  return r.sarg(0) == OK ? static_cast<std::int64_t>(r.arg[1]) : r.sarg(0);
}

std::int64_t Sys::munmap(std::int64_t region) {
  return sendrec(kernel::kVmEp, encode(VM_MUNMAP, proc_.pid_, region)).sarg(0);
}

std::int64_t Sys::getmeminfo(std::uint64_t* free_pages, std::uint64_t* total_pages) {
  Message r = sendrec_retry(kernel::kPmEp, encode(PM_GETMEMINFO));
  if (r.sarg(0) != OK) return r.sarg(0);
  if (free_pages != nullptr) *free_pages = r.arg[1];
  if (total_pages != nullptr) *total_pages = r.arg[2];
  return OK;
}

// --- files -------------------------------------------------------------------

std::int64_t Sys::open(std::string_view path, std::uint64_t flags) {
  return sendrec(kernel::kVfsEp, encode_text(VFS_OPEN, path, flags)).sarg(0);
}

std::int64_t Sys::close(std::int64_t fd) {
  return sendrec(kernel::kVfsEp, encode(VFS_CLOSE, fd)).sarg(0);
}

std::int64_t Sys::read(std::int64_t fd, std::span<std::byte> buf) {
  const GrantId g = os_.kern().make_grant(proc_.ep_, kernel::kVfsEp, buf.data(), buf.size(),
                                          Access::kWrite);
  Message r = sendrec(kernel::kVfsEp, encode(VFS_READ, fd, g, buf.size()));
  os_.kern().revoke_grant(g);
  return r.sarg(0);
}

std::int64_t Sys::write(std::int64_t fd, std::span<const std::byte> buf) {
  const GrantId g =
      os_.kern().make_grant(proc_.ep_, kernel::kVfsEp,
                            const_cast<std::byte*>(buf.data()), buf.size(), Access::kRead);
  Message r = sendrec(kernel::kVfsEp, encode(VFS_WRITE, fd, g, buf.size()));
  os_.kern().revoke_grant(g);
  return r.sarg(0);
}

std::int64_t Sys::lseek(std::int64_t fd, std::int64_t offset, int whence) {
  return sendrec(kernel::kVfsEp, encode(VFS_LSEEK, fd, offset, whence)).sarg(0);
}

std::int64_t Sys::stat(std::string_view path, StatResult* out) {
  Message r = sendrec_retry(kernel::kVfsEp, encode_text(VFS_STAT, path));
  if (r.sarg(0) < 0) return r.sarg(0);
  if (out != nullptr) {
    out->size = r.arg[0];
    out->type = r.arg[1];
    out->nlinks = r.arg[2];
  }
  return OK;
}

std::int64_t Sys::fstat(std::int64_t fd, StatResult* out) {
  Message r = sendrec_retry(kernel::kVfsEp, encode(VFS_FSTAT, fd));
  if (r.sarg(0) < 0) return r.sarg(0);
  if (out != nullptr) {
    out->size = r.arg[0];
    out->type = r.arg[1];
    out->nlinks = r.arg[2];
  }
  return OK;
}

std::int64_t Sys::unlink(std::string_view path) {
  return sendrec(kernel::kVfsEp, encode_text(VFS_UNLINK, path)).sarg(0);
}

std::int64_t Sys::mkdir(std::string_view path) {
  return sendrec(kernel::kVfsEp, encode_text(VFS_MKDIR, path)).sarg(0);
}

std::int64_t Sys::rmdir(std::string_view path) {
  return sendrec(kernel::kVfsEp, encode_text(VFS_RMDIR, path)).sarg(0);
}

std::int64_t Sys::rename(std::string_view path, std::string_view new_leaf) {
  const std::string spec = std::string(path) + ":" + std::string(new_leaf);
  return sendrec(kernel::kVfsEp, encode_text(VFS_RENAME, spec)).sarg(0);
}

std::int64_t Sys::readdir(std::string_view path, std::uint64_t index, std::string* name) {
  Message r = sendrec_retry(kernel::kVfsEp, encode_text(VFS_READDIR, path, index));
  if (r.sarg(0) != OK) return r.sarg(0);
  if (name != nullptr) *name = r.text.str();
  return static_cast<std::int64_t>(r.arg[1]);
}

std::int64_t Sys::pipe(std::int64_t fds[2]) {
  Message r = sendrec(kernel::kVfsEp, encode(VFS_PIPE));
  if (r.sarg(0) < 0) return r.sarg(0);
  fds[0] = static_cast<std::int64_t>(r.arg[0]);
  fds[1] = static_cast<std::int64_t>(r.arg[1]);
  return OK;
}

std::int64_t Sys::dup(std::int64_t fd) {
  return sendrec(kernel::kVfsEp, encode(VFS_DUP, fd)).sarg(0);
}

std::int64_t Sys::truncate(std::string_view path, std::uint64_t size) {
  return sendrec(kernel::kVfsEp, encode_text(VFS_TRUNC, path, size)).sarg(0);
}

std::int64_t Sys::fsync() { return sendrec(kernel::kVfsEp, encode(VFS_SYNC)).sarg(0); }

std::int64_t Sys::access(std::string_view path) {
  return sendrec_retry(kernel::kVfsEp, encode_text(VFS_ACCESS, path)).sarg(0);
}

// --- data store ---------------------------------------------------------------

std::int64_t Sys::ds_publish(std::string_view key, std::uint64_t value) {
  return sendrec(kernel::kDsEp, encode_text(DS_PUBLISH, key, value)).sarg(0);
}

std::int64_t Sys::ds_retrieve(std::string_view key, std::uint64_t* value) {
  Message r = sendrec_retry(kernel::kDsEp, encode_text(DS_RETRIEVE, key));
  if (r.sarg(0) != OK) return r.sarg(0);
  if (value != nullptr) *value = r.arg[1];
  return OK;
}

std::int64_t Sys::ds_delete(std::string_view key) {
  return sendrec(kernel::kDsEp, encode_text(DS_DELETE, key)).sarg(0);
}

std::int64_t Sys::ds_subscribe(std::string_view prefix) {
  return sendrec(kernel::kDsEp, encode_text(DS_SUBSCRIBE, prefix)).sarg(0);
}

std::int64_t Sys::ds_check(std::uint64_t* events) {
  Message r = sendrec_retry(kernel::kDsEp, encode(DS_CHECK));
  if (r.sarg(0) != OK) return r.sarg(0);
  if (events != nullptr) *events = r.arg[1];
  return OK;
}

// --- misc ------------------------------------------------------------------

std::int64_t Sys::times(std::uint64_t* ticks) {
  Message r = sendrec_retry(kernel::kPmEp, encode(PM_TIMES));
  if (r.sarg(0) != OK) return r.sarg(0);
  if (ticks != nullptr) *ticks = r.arg[1];
  return OK;
}

std::int64_t Sys::uname(std::string* name) {
  Message r = sendrec_retry(kernel::kPmEp, encode(PM_UNAME));
  if (r.sarg(0) != OK) return r.sarg(0);
  if (name != nullptr) *name = r.text.str();
  return OK;
}

std::int64_t Sys::rs_status(std::int32_t endpoint) {
  Message r = sendrec_retry(kernel::kRsEp, encode(RS_STATUS, endpoint));
  return r.sarg(0) == OK ? static_cast<std::int64_t>(r.arg[1]) : r.sarg(0);
}

}  // namespace osiris::os
