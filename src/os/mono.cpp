#include "os/mono.hpp"

#include <algorithm>
#include <cstring>

#include "servers/protocol.hpp"
#include "support/common.hpp"

namespace osiris::os {

using kernel::E_AGAIN;
using kernel::E_BADF;
using kernel::E_CHILD;
using kernel::E_INVAL;
using kernel::E_ISDIR;
using kernel::E_MFILE;
using kernel::E_NFILE;
using kernel::E_NOENT;
using kernel::E_PIPE;
using kernel::E_SRCH;
using kernel::OK;

namespace {
constexpr std::size_t kMonoMaxFds = 16;
constexpr std::size_t kMonoPipeCap = 4096;
}  // namespace

/// Per-process ISys over the shared monolithic kernel state.
class MonoSys final : public ISys {
 public:
  MonoSys(MonoOs& os, MonoOs::Proc& proc) : os_(os), p_(proc) {}

  std::int64_t fork(ProcBody body) override {
    check_killed();
    MonoOs::Proc* child = os_.spawn(p_.pid, p_.name + "+", std::move(body));
    if (child == nullptr) return E_AGAIN;
    // Inherit fds.
    child->fds = p_.fds;
    for (std::int32_t fidx : child->fds) {
      if (fidx >= 0) {
        auto& f = os_.files_[fidx];
        ++f.refcnt;
        if (f.is_pipe_read) ++os_.pipes_[f.pipe].readers;
        if (f.is_pipe_write) ++os_.pipes_[f.pipe].writers;
      }
    }
    child->brk = p_.brk;
    os_.mark_ready(child);
    return child->pid;
  }

  std::int64_t exec(std::string_view path) override {
    check_killed();
    const ProgramRegistry::Body* body = os_.programs_.find(path);
    // Binary check against the same on-disk /bin as the multiserver system.
    std::int64_t ino = resolve(path);
    if (ino < 0) return ino;
    if (body == nullptr) return E_NOENT;
    p_.name = std::string(path);
    p_.brk = 0x10000;
    const std::int64_t rc = (*body)(*this);
    exit(rc);
  }

  void exit(std::int64_t status) override {
    check_killed();
    os_.terminate(&p_, status);
    throw ProcExit{status};
  }

  std::int64_t wait_pid(std::int64_t pid, std::int64_t* status) override {
    check_killed();
    for (;;) {
      bool have_children = false;
      for (auto& c : os_.procs_) {
        if (c->parent != p_.pid) continue;
        if (pid != 0 && c->pid != pid) continue;
        have_children = true;
        if (c->zombie) {
          if (status != nullptr) *status = c->exit_status;
          const std::int64_t got = c->pid;
          c->done = true;
          c->parent = -1;  // reaped
          return got;
        }
      }
      if (!have_children) return E_CHILD;
      p_.waiting = true;
      p_.wait_target = static_cast<std::int32_t>(pid);
      block();
      p_.waiting = false;
    }
  }

  std::int64_t getpid() override { return tick(), p_.pid; }
  std::int64_t getppid() override { return tick(), p_.parent; }

  std::int64_t kill(std::int64_t pid, std::uint64_t sig) override {
    tick();
    if (sig == 0 || sig >= 64) return E_INVAL;
    MonoOs::Proc* t = os_.proc_of_pid(static_cast<std::int32_t>(pid));
    if (t == nullptr || t->zombie) return E_SRCH;
    t->pending_sigs |= (1ULL << sig);
    if (sig == servers::kSigKill) {
      t->killed = true;
      os_.terminate(t, -static_cast<std::int64_t>(sig));
      os_.mark_ready(t);  // let it unwind
    }
    return OK;
  }

  std::int64_t sigaction(std::uint64_t sig, bool handle) override {
    tick();
    if (sig == 0 || sig >= 64 || sig == servers::kSigKill) return E_INVAL;
    if (handle) p_.handled_sigs |= (1ULL << sig);
    else p_.handled_sigs &= ~(1ULL << sig);
    return OK;
  }

  std::int64_t sigpending(std::uint64_t* mask) override {
    tick();
    if (mask != nullptr) *mask = p_.pending_sigs;
    p_.pending_sigs = 0;
    return OK;
  }

  std::int64_t procstat(std::int64_t pid) override {
    tick();
    MonoOs::Proc* t = os_.proc_of_pid(static_cast<std::int32_t>(pid));
    if (t == nullptr) return E_SRCH;
    return t->zombie ? 2 : 1;
  }

  std::int64_t getuid() override { return tick(), 0; }
  std::int64_t setuid(std::uint64_t) override { return tick(), OK; }

  std::int64_t brk(std::uint64_t addr) override {
    tick();
    if (addr < 0x10000) return E_INVAL;
    p_.brk = addr;
    return static_cast<std::int64_t>(addr);
  }
  std::int64_t mmap(std::uint64_t length) override {
    tick();
    return length == 0 ? E_INVAL : 1;
  }
  std::int64_t munmap(std::int64_t) override { return tick(), OK; }
  std::int64_t getmeminfo(std::uint64_t* free_pages, std::uint64_t* total) override {
    tick();
    if (free_pages != nullptr) *free_pages = os_.free_pages_;
    if (total != nullptr) *total = 16384;
    return OK;
  }

  // --- files ----------------------------------------------------------

  std::int64_t open(std::string_view path, std::uint64_t flags) override {
    tick();
    std::int64_t ino = resolve(path);
    if (ino == E_NOENT && (flags & servers::O_CREAT) != 0) {
      fs::Ino dir = fs::kNoIno;
      std::string_view leaf;
      std::int64_t r = resolve_parent(path, &dir, &leaf);
      if (r != OK) return r;
      ino = os_.fs_->create(dir, leaf, fs::FileType::kRegular);
    }
    if (ino < 0) return ino;
    fs::Attr attr{};
    std::int64_t r = os_.fs_->getattr(static_cast<fs::Ino>(ino), &attr);
    if (r != OK) return r;
    if (attr.type == fs::FileType::kDirectory &&
        (flags & (servers::O_WRONLY | servers::O_RDWR)) != 0) {
      return E_ISDIR;
    }
    if ((flags & servers::O_TRUNC) != 0 && attr.type == fs::FileType::kRegular) {
      os_.fs_->truncate(static_cast<fs::Ino>(ino), 0);
      attr.size = 0;
    }
    const std::int64_t fidx = alloc_file();
    if (fidx < 0) return E_NFILE;
    auto& f = os_.files_[fidx];
    f.used = true;
    f.ino = static_cast<fs::Ino>(ino);
    f.flags = static_cast<std::uint32_t>(flags);
    f.pos = (flags & servers::O_APPEND) != 0 ? attr.size : 0;
    f.refcnt = 1;
    const std::int64_t fd = alloc_fd(static_cast<std::int32_t>(fidx));
    if (fd < 0) {
      f.used = false;
      return E_MFILE;
    }
    return fd;
  }

  std::int64_t close(std::int64_t fd) override {
    tick();
    const std::int64_t fidx = file_of(fd);
    if (fidx < 0) return fidx;
    p_.fds[fd] = -1;
    os_.close_filei(static_cast<std::size_t>(fidx));
    return OK;
  }

  std::int64_t read(std::int64_t fd, std::span<std::byte> buf) override {
    tick();
    const std::int64_t fidx = file_of(fd);
    if (fidx < 0) return fidx;
    auto& f = os_.files_[fidx];
    if (f.is_pipe_read) return pipe_read(f, buf);
    if (f.is_pipe_write) return E_BADF;
    const std::int64_t n = os_.fs_->read(f.ino, f.pos, buf);
    if (n > 0) f.pos += static_cast<std::uint32_t>(n);
    return n;
  }

  std::int64_t write(std::int64_t fd, std::span<const std::byte> buf) override {
    tick();
    const std::int64_t fidx = file_of(fd);
    if (fidx < 0) return fidx;
    auto& f = os_.files_[fidx];
    if (f.is_pipe_write) return pipe_write(f, buf);
    if (f.is_pipe_read) return E_BADF;
    if ((f.flags & (servers::O_WRONLY | servers::O_RDWR)) == 0) return E_BADF;
    std::uint32_t pos = f.pos;
    if ((f.flags & servers::O_APPEND) != 0) {
      fs::Attr attr{};
      if (os_.fs_->getattr(f.ino, &attr) == OK) pos = attr.size;
    }
    const std::int64_t n = os_.fs_->write(f.ino, pos, buf);
    if (n > 0) f.pos = pos + static_cast<std::uint32_t>(n);
    return n;
  }

  std::int64_t lseek(std::int64_t fd, std::int64_t offset, int whence) override {
    tick();
    const std::int64_t fidx = file_of(fd);
    if (fidx < 0) return fidx;
    auto& f = os_.files_[fidx];
    if (f.is_pipe_read || f.is_pipe_write) return E_PIPE;
    const std::int64_t pos = whence == 1 ? static_cast<std::int64_t>(f.pos) + offset : offset;
    if (pos < 0) return E_INVAL;
    f.pos = static_cast<std::uint32_t>(pos);
    return pos;
  }

  std::int64_t stat(std::string_view path, StatResult* out) override {
    tick();
    const std::int64_t ino = resolve(path);
    if (ino < 0) return ino;
    fs::Attr attr{};
    const std::int64_t r = os_.fs_->getattr(static_cast<fs::Ino>(ino), &attr);
    if (r != OK) return r;
    if (out != nullptr) {
      out->size = attr.size;
      out->type = static_cast<std::uint64_t>(attr.type);
      out->nlinks = attr.nlinks;
    }
    return OK;
  }

  std::int64_t fstat(std::int64_t fd, StatResult* out) override {
    tick();
    const std::int64_t fidx = file_of(fd);
    if (fidx < 0) return fidx;
    auto& f = os_.files_[fidx];
    if (f.is_pipe_read || f.is_pipe_write) {
      if (out != nullptr) *out = StatResult{};
      return OK;
    }
    fs::Attr attr{};
    const std::int64_t r = os_.fs_->getattr(f.ino, &attr);
    if (r != OK) return r;
    if (out != nullptr) {
      out->size = attr.size;
      out->type = static_cast<std::uint64_t>(attr.type);
      out->nlinks = attr.nlinks;
    }
    return OK;
  }

  std::int64_t unlink(std::string_view path) override { return parent_op(path, 0); }
  std::int64_t mkdir(std::string_view path) override { return parent_op(path, 1); }
  std::int64_t rmdir(std::string_view path) override { return parent_op(path, 2); }

  std::int64_t rename(std::string_view path, std::string_view new_leaf) override {
    tick();
    fs::Ino dir = fs::kNoIno;
    std::string_view leaf;
    std::int64_t r = resolve_parent(path, &dir, &leaf);
    if (r != OK) return r;
    return os_.fs_->rename(dir, leaf, new_leaf);
  }

  std::int64_t readdir(std::string_view path, std::uint64_t index, std::string* name) override {
    tick();
    const std::int64_t ino = resolve(path);
    if (ino < 0) return ino;
    const auto e = os_.fs_->readdir(static_cast<fs::Ino>(ino), index);
    if (!e) return E_NOENT;
    if (name != nullptr) *name = e->name;
    return e->ino;
  }

  std::int64_t pipe(std::int64_t fds[2]) override {
    tick();
    std::size_t pidx = 0;
    for (; pidx < os_.pipes_.size(); ++pidx) {
      if (!os_.pipes_[pidx].used) break;
    }
    if (pidx == os_.pipes_.size()) os_.pipes_.emplace_back();
    auto& pp = os_.pipes_[pidx];
    pp.used = true;
    pp.data.clear();
    pp.readers = 1;
    pp.writers = 1;

    const std::int64_t rf = alloc_file();
    const std::int64_t wf = alloc_file();
    if (rf < 0 || wf < 0) {
      pp.used = false;
      return E_NFILE;
    }
    os_.files_[rf] = MonoOs::OpenFile{true, true, false, fs::kNoIno, 0, 0, 1,
                                      static_cast<std::int32_t>(pidx)};
    os_.files_[wf] = MonoOs::OpenFile{true, false, true, fs::kNoIno, 0, 0, 1,
                                      static_cast<std::int32_t>(pidx)};
    const std::int64_t rfd = alloc_fd(static_cast<std::int32_t>(rf));
    const std::int64_t wfd = alloc_fd(static_cast<std::int32_t>(wf));
    if (rfd < 0 || wfd < 0) return E_MFILE;
    fds[0] = rfd;
    fds[1] = wfd;
    return OK;
  }

  std::int64_t dup(std::int64_t fd) override {
    tick();
    const std::int64_t fidx = file_of(fd);
    if (fidx < 0) return fidx;
    const std::int64_t nfd = alloc_fd(static_cast<std::int32_t>(fidx));
    if (nfd < 0) return E_MFILE;
    auto& f = os_.files_[fidx];
    ++f.refcnt;
    if (f.is_pipe_read) ++os_.pipes_[f.pipe].readers;
    if (f.is_pipe_write) ++os_.pipes_[f.pipe].writers;
    return nfd;
  }

  std::int64_t truncate(std::string_view path, std::uint64_t size) override {
    tick();
    const std::int64_t ino = resolve(path);
    if (ino < 0) return ino;
    return os_.fs_->truncate(static_cast<fs::Ino>(ino), static_cast<std::uint32_t>(size));
  }

  std::int64_t fsync() override { return tick(), OK; }

  std::int64_t access(std::string_view path) override {
    tick();
    const std::int64_t ino = resolve(path);
    return ino < 0 ? ino : OK;
  }

  // --- data store ----------------------------------------------------------

  std::int64_t ds_publish(std::string_view key, std::uint64_t value) override {
    tick();
    os_.ds_[std::string(key)] = value;
    return OK;
  }
  std::int64_t ds_retrieve(std::string_view key, std::uint64_t* value) override {
    tick();
    auto it = os_.ds_.find(key);
    if (it == os_.ds_.end()) return E_NOENT;
    if (value != nullptr) *value = it->second;
    return OK;
  }
  std::int64_t ds_delete(std::string_view key) override {
    tick();
    auto it = os_.ds_.find(key);
    if (it == os_.ds_.end()) return E_NOENT;
    os_.ds_.erase(it);
    return OK;
  }
  std::int64_t ds_subscribe(std::string_view) override { return tick(), OK; }
  std::int64_t ds_check(std::uint64_t* events) override {
    tick();
    if (events != nullptr) *events = 0;
    return OK;
  }

  std::int64_t times(std::uint64_t* ticks) override {
    tick();
    if (ticks != nullptr) *ticks = os_.clock_.now();
    return OK;
  }
  std::int64_t uname(std::string* name) override {
    tick();
    if (name != nullptr) *name = "mono";
    return OK;
  }
  std::int64_t rs_status(std::int32_t) override { return tick(), 0; }

 private:
  void tick() {
    check_killed();
    os_.clock_.spin(1);
    // Model the user/kernel mode-switch cost a monolithic kernel still pays
    // per syscall (trap, register save/restore, return). Without this the
    // monolithic baseline would be a pure function call — an upper bound no
    // real kernel reaches — and syscall-bound slowdown ratios would be
    // inflated far beyond the paper's shape.
    volatile std::uint32_t spin = 0;
    for (int i = 0; i < 24; ++i) spin += static_cast<std::uint32_t>(i) * 2654435761u;
  }

  void check_killed() {
    if (p_.killed) throw ProcKilled{};
  }

  void block() {
    cothread::Fiber::suspend();
    check_killed();
  }

  std::int64_t alloc_file() {
    for (std::size_t i = 0; i < os_.files_.size(); ++i) {
      if (!os_.files_[i].used) {
        os_.files_[i] = MonoOs::OpenFile{};
        os_.files_[i].used = true;  // reserve immediately (pipe() allocates two)
        return static_cast<std::int64_t>(i);
      }
    }
    os_.files_.emplace_back();
    os_.files_.back().used = true;
    return static_cast<std::int64_t>(os_.files_.size() - 1);
  }

  std::int64_t alloc_fd(std::int32_t fidx) {
    for (std::size_t fd = 0; fd < p_.fds.size(); ++fd) {
      if (p_.fds[fd] == -1) {
        p_.fds[fd] = fidx;
        return static_cast<std::int64_t>(fd);
      }
    }
    return -1;
  }

  std::int64_t file_of(std::int64_t fd) {
    if (fd < 0 || fd >= static_cast<std::int64_t>(p_.fds.size()) || p_.fds[fd] == -1) {
      return E_BADF;
    }
    return p_.fds[fd];
  }

  std::int64_t resolve_parent(std::string_view path, fs::Ino* dir, std::string_view* leaf) {
    if (path.empty() || path[0] != '/') return E_INVAL;
    fs::Ino cur = fs::kRootIno;
    std::string_view rest = path.substr(1);
    while (true) {
      const std::size_t slash = rest.find('/');
      if (slash == std::string_view::npos) {
        if (rest.empty()) return E_INVAL;
        *dir = cur;
        *leaf = rest;
        return OK;
      }
      const std::string_view comp = rest.substr(0, slash);
      rest = rest.substr(slash + 1);
      if (comp.empty()) continue;
      const std::int64_t r = os_.fs_->lookup(cur, comp);
      if (r < 0) return r;
      cur = static_cast<fs::Ino>(r);
    }
  }

  std::int64_t resolve(std::string_view path) {
    if (path == "/") return fs::kRootIno;
    fs::Ino dir = fs::kNoIno;
    std::string_view leaf;
    const std::int64_t r = resolve_parent(path, &dir, &leaf);
    if (r != OK) return r;
    return os_.fs_->lookup(dir, leaf);
  }

  std::int64_t parent_op(std::string_view path, int op) {
    tick();
    fs::Ino dir = fs::kNoIno;
    std::string_view leaf;
    std::int64_t r = resolve_parent(path, &dir, &leaf);
    if (r != OK) return r;
    switch (op) {
      case 0: return os_.fs_->unlink(dir, leaf);
      case 1: {
        const std::int64_t ino = os_.fs_->create(dir, leaf, fs::FileType::kDirectory);
        return ino < 0 ? ino : OK;
      }
      default: return os_.fs_->rmdir(dir, leaf);
    }
  }

  std::int64_t pipe_read(MonoOs::OpenFile& f, std::span<std::byte> buf) {
    auto& pp = os_.pipes_[f.pipe];
    for (;;) {
      if (!pp.data.empty()) {
        const std::size_t n = std::min(buf.size(), pp.data.size());
        std::copy_n(pp.data.begin(), n, buf.begin());
        pp.data.erase(pp.data.begin(), pp.data.begin() + static_cast<std::ptrdiff_t>(n));
        os_.wake_all();
        return static_cast<std::int64_t>(n);
      }
      if (pp.writers == 0) return 0;  // EOF
      block();
    }
  }

  std::int64_t pipe_write(MonoOs::OpenFile& f, std::span<const std::byte> buf) {
    auto& pp = os_.pipes_[f.pipe];
    for (;;) {
      if (pp.readers == 0) return E_PIPE;
      if (pp.data.size() < kMonoPipeCap) {
        const std::size_t n = std::min(buf.size(), kMonoPipeCap - pp.data.size());
        pp.data.insert(pp.data.end(), buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(n));
        os_.wake_all();
        return static_cast<std::int64_t>(n);
      }
      block();
    }
  }

  MonoOs& os_;
  MonoOs::Proc& p_;
};

// --- MonoOs ------------------------------------------------------------------

MonoOs::MonoOs() = default;
MonoOs::~MonoOs() = default;

void MonoOs::boot() {
  OSIRIS_ASSERT(!booted_);
  booted_ = true;
  disk_ = std::make_unique<fs::BlockDevice>(clock_, 4096, 0, 0);
  fs::MiniFs::mkfs(*disk_);
  store_ = std::make_unique<fs::DirectStore>(*disk_);
  fs_ = std::make_unique<fs::MiniFs>(*store_);
  OSIRIS_ASSERT(fs_->mount() == OK);
  const std::int64_t bin = fs_->create(fs::kRootIno, "bin", fs::FileType::kDirectory);
  OSIRIS_ASSERT(bin > 0);
  OSIRIS_ASSERT(fs_->create(fs::kRootIno, "tmp", fs::FileType::kDirectory) > 0);
  OSIRIS_ASSERT(fs_->create(fs::kRootIno, "etc", fs::FileType::kDirectory) > 0);
  for (const auto& [name, body] : programs_.all()) {
    const std::int64_t ino =
        fs_->create(static_cast<fs::Ino>(bin), name, fs::FileType::kRegular);
    OSIRIS_ASSERT(ino > 0);
    const std::string image = "#!mono " + name;
    fs_->write(static_cast<fs::Ino>(ino), 0,
               std::as_bytes(std::span<const char>(image.data(), image.size())));
  }
  ds_["sys.release"] = 316;
}

MonoOs::Proc* MonoOs::proc_of_pid(std::int32_t pid) {
  for (auto& p : procs_) {
    if (p->pid == pid && !p->done) return p.get();
  }
  return nullptr;
}

MonoOs::Proc* MonoOs::spawn(std::int32_t parent, std::string name, ISys::ProcBody body) {
  auto proc = std::make_unique<Proc>();
  Proc* p = proc.get();
  p->pid = parent == 0 ? 1 : next_pid_++;
  p->parent = parent;
  p->name = std::move(name);
  p->fds.assign(kMonoMaxFds, -1);
  p->sys = std::make_unique<MonoSys>(*this, *p);
  auto shared_body = std::make_shared<ISys::ProcBody>(std::move(body));
  p->fiber = std::make_unique<cothread::Fiber>([this, p, shared_body] {
    std::int64_t rc = 0;
    bool terminated = false;
    try {
      (*shared_body)(*p->sys);
    } catch (const ProcExit&) {
      terminated = true;
    } catch (const ProcKilled&) {
      terminated = true;  // terminate() already ran in kill()
    }
    if (!terminated) terminate(p, rc);
  });
  procs_.push_back(std::move(proc));
  return p;
}

void MonoOs::mark_ready(Proc* p) {
  if (!p->ready && !p->done) {
    p->ready = true;
    ready_.push_back(p);
  }
}

void MonoOs::close_filei(std::size_t fidx) {
  OpenFile& f = files_[fidx];
  OSIRIS_ASSERT(f.used && f.refcnt >= 1);
  if (--f.refcnt > 0) return;
  f.used = false;
  if (f.is_pipe_read || f.is_pipe_write) {
    Pipe& pp = pipes_[f.pipe];
    if (f.is_pipe_read) --pp.readers;
    if (f.is_pipe_write) --pp.writers;
    if (pp.readers == 0 && pp.writers == 0) pp.used = false;
  }
}

void MonoOs::wake_all() {
  for (auto& p : procs_) {
    if (!p->done && !p->zombie) mark_ready(p.get());
  }
}

void MonoOs::terminate(Proc* p, std::int64_t status) {
  if (p->zombie) return;
  p->zombie = true;
  p->exit_status = status;
  for (auto& fidx : p->fds) {
    if (fidx >= 0) {
      close_filei(static_cast<std::size_t>(fidx));
      fidx = -1;
    }
  }
  // Reparent children to init.
  for (auto& c : procs_) {
    if (c->parent == p->pid && c.get() != p) c->parent = 1;
  }
  wake_all();
}

std::int64_t MonoOs::run(ISys::ProcBody init_body) {
  OSIRIS_ASSERT(booted_);
  Proc* init = spawn(0, "init", std::move(init_body));
  mark_ready(init);
  while (!ready_.empty()) {
    Proc* p = ready_.front();
    ready_.pop_front();
    p->ready = false;
    if (p->done || (p->zombie && !p->killed)) continue;
    p->fiber->resume();
    if (auto e = p->fiber->take_exception()) std::rethrow_exception(e);
    if (p->fiber->finished()) p->done = true;
    if (init->zombie || init->done) break;
  }
  return init->exit_status;
}

}  // namespace osiris::os
