#include "cothread/fiber.hpp"

#include "support/common.hpp"

namespace osiris::cothread {
namespace {

thread_local Fiber* g_current = nullptr;

}  // namespace

Fiber::Fiber(std::function<void()> fn, std::size_t stack_size)
    : fn_(std::move(fn)),
      stack_size_(stack_size),
      stack_(new std::byte[stack_size]) {  // default-init: no zeroing cost
  OSIRIS_ASSERT(fn_ != nullptr);
  OSIRIS_ASSERT(stack_size >= 16 * 1024);
}

Fiber::~Fiber() {
  // Destroying a suspended fiber abandons its stack without unwinding; the
  // simulator only does this at teardown of a whole OS instance.
}

Fiber* Fiber::current() noexcept { return g_current; }

void Fiber::trampoline() {
  Fiber* self = g_current;
  try {
    self->fn_();
  } catch (...) {
    self->pending_exception_ = std::current_exception();
  }
  self->state_ = State::kFinished;
  // Return to the resumer for the last time. swapcontext (not setcontext)
  // keeps ctx_ valid, though it is never resumed again.
  swapcontext(&self->ctx_, &self->link_);
  OSIRIS_PANIC("resumed a finished fiber");
}

void Fiber::resume() {
  OSIRIS_ASSERT(state_ == State::kReady || state_ == State::kSuspended);
  if (state_ == State::kReady) {
    getcontext(&ctx_);
    ctx_.uc_stack.ss_sp = stack_.get();
    ctx_.uc_stack.ss_size = stack_size_;
    ctx_.uc_link = &link_;
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
  }
  Fiber* prev = g_current;
  g_current = this;
  state_ = State::kRunning;
  swapcontext(&link_, &ctx_);
  g_current = prev;
  if (state_ == State::kRunning) state_ = State::kSuspended;
}

void Fiber::suspend() {
  Fiber* self = g_current;
  OSIRIS_ASSERT(self != nullptr);
  self->state_ = State::kSuspended;
  swapcontext(&self->ctx_, &self->link_);
  self->state_ = State::kRunning;
}

}  // namespace osiris::cothread
