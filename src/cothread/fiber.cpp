#include "cothread/fiber.hpp"

#include "support/common.hpp"

// ASan tracks one stack per OS thread; switching onto a heap-allocated fiber
// stack without telling it makes any no-return path (exception unwind,
// longjmp) "unpoison" memory using the *thread's* stack bounds — a
// stack-buffer-overflow report inside the sanitizer runtime itself. The
// fiber-switch annotations below hand ASan the correct bounds around every
// swapcontext. They compile to nothing in non-ASan builds.
#if defined(__SANITIZE_ADDRESS__)
#define OSIRIS_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define OSIRIS_ASAN_FIBERS 1
#endif
#endif

#if defined(OSIRIS_ASAN_FIBERS)
#include <sanitizer/common_interface_defs.h>
#endif

#if defined(OSIRIS_ASAN_FIBERS)
#include <mutex>
#include <vector>
#endif

namespace osiris::cothread {
namespace {

thread_local Fiber* g_current = nullptr;

#if defined(OSIRIS_ASAN_FIBERS)
// Destroying a suspended fiber abandons its stack without unwinding (see
// ~Fiber): heap objects owned by locals stranded on that stack stay
// allocated until process exit, by design. The switch annotations make LSan
// precise enough to flag those strands as leaks, so under ASan the abandoned
// stacks move to an immortal graveyard instead of being freed — the strands
// stay reachable through it, which is exactly the ownership story the
// design already tells. Plain builds free the stack immediately.
void bury_abandoned_stack(std::unique_ptr<std::byte[]> stack) {
  static auto* graveyard = new std::vector<std::unique_ptr<std::byte[]>>();
  static std::mutex mu;  // fibers are destroyed from campaign worker threads
  const std::lock_guard<std::mutex> lock(mu);
  graveyard->push_back(std::move(stack));
}
#endif

}  // namespace

Fiber::Fiber(std::function<void()> fn, std::size_t stack_size)
    : fn_(std::move(fn)),
      stack_size_(stack_size),
      stack_(new std::byte[stack_size]) {  // default-init: no zeroing cost
  OSIRIS_ASSERT(fn_ != nullptr);
  OSIRIS_ASSERT(stack_size >= 16 * 1024);
}

Fiber::~Fiber() {
  // Destroying a suspended fiber abandons its stack without unwinding; the
  // simulator only does this at teardown of a whole OS instance.
#if defined(OSIRIS_ASAN_FIBERS)
  if (state_ == State::kSuspended) bury_abandoned_stack(std::move(stack_));
#endif
}

Fiber* Fiber::current() noexcept { return g_current; }

void Fiber::trampoline() {
  Fiber* self = g_current;
#if defined(OSIRIS_ASAN_FIBERS)
  // First time on this stack: complete the resumer's start_switch and learn
  // the resumer's stack bounds for the switches back.
  __sanitizer_finish_switch_fiber(nullptr, &self->return_bottom_, &self->return_size_);
#endif
  try {
    self->fn_();
  } catch (...) {
    self->pending_exception_ = std::current_exception();
  }
  self->state_ = State::kFinished;
#if defined(OSIRIS_ASAN_FIBERS)
  // nullptr fake-stack save: this fiber's stack is dead, let ASan free its
  // fake frames instead of keeping them for a resume that never comes.
  __sanitizer_start_switch_fiber(nullptr, self->return_bottom_, self->return_size_);
#endif
  // Return to the resumer for the last time. swapcontext (not setcontext)
  // keeps ctx_ valid, though it is never resumed again.
  swapcontext(&self->ctx_, &self->link_);
  OSIRIS_PANIC("resumed a finished fiber");
}

void Fiber::resume() {
  OSIRIS_ASSERT(state_ == State::kReady || state_ == State::kSuspended);
  if (state_ == State::kReady) {
    getcontext(&ctx_);
    ctx_.uc_stack.ss_sp = stack_.get();
    ctx_.uc_stack.ss_size = stack_size_;
    ctx_.uc_link = &link_;
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
  }
  Fiber* prev = g_current;
  g_current = this;
  state_ = State::kRunning;
#if defined(OSIRIS_ASAN_FIBERS)
  void* resumer_fake_stack = nullptr;
  __sanitizer_start_switch_fiber(&resumer_fake_stack, stack_.get(), stack_size_);
#endif
  swapcontext(&link_, &ctx_);
#if defined(OSIRIS_ASAN_FIBERS)
  // Back on the resumer's stack (the fiber suspended or finished).
  __sanitizer_finish_switch_fiber(resumer_fake_stack, nullptr, nullptr);
#endif
  g_current = prev;
  if (state_ == State::kRunning) state_ = State::kSuspended;
}

void Fiber::suspend() {
  Fiber* self = g_current;
  OSIRIS_ASSERT(self != nullptr);
  self->state_ = State::kSuspended;
#if defined(OSIRIS_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(&self->fake_stack_, self->return_bottom_, self->return_size_);
#endif
  swapcontext(&self->ctx_, &self->link_);
#if defined(OSIRIS_ASAN_FIBERS)
  // Resumed again — possibly from a different thread's stack: refresh the
  // return bounds.
  __sanitizer_finish_switch_fiber(self->fake_stack_, &self->return_bottom_, &self->return_size_);
#endif
  self->state_ = State::kRunning;
}

}  // namespace osiris::cothread
