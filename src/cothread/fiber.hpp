// Cooperative fibers (ucontext-based).
//
// OSIRIS uses fibers in two places, matching the paper's prototype:
//  - every simulated user process runs as a fiber, so the 89 test-suite
//    programs and the unixbench workloads are written as straight-line code
//    whose syscalls suspend until the server's reply arrives;
//  - the VFS server is multithreaded (paper SV): worker threads block on
//    disk I/O, and the recovery window is forcibly closed on yield (SIV-E).
//
// Exceptions never propagate across a context switch: anything escaping the
// fiber body is captured as std::exception_ptr and handed to the resumer,
// which decides whether to rethrow on its own stack (this is how a fail-stop
// fault inside a VFS worker reaches the kernel's dispatch boundary).
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>

namespace osiris::cothread {

class Fiber {
 public:
  enum class State : std::uint8_t { kReady, kRunning, kSuspended, kFinished };

  explicit Fiber(std::function<void()> fn, std::size_t stack_size = 128 * 1024);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switch into the fiber (start or continue it). Returns when the fiber
  /// suspends or finishes. Must not be called from inside a fiber that is
  /// already on the resume chain.
  void resume();

  /// Called from inside the fiber: switch back to the resumer.
  static void suspend();

  /// The fiber currently executing on this thread, or nullptr on the main
  /// context.
  static Fiber* current() noexcept;

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] bool finished() const noexcept { return state_ == State::kFinished; }

  /// Exception that escaped the fiber body during the last resume(), if any.
  /// Fetching it clears it.
  [[nodiscard]] std::exception_ptr take_exception() noexcept {
    auto e = pending_exception_;
    pending_exception_ = nullptr;
    return e;
  }

 private:
  static void trampoline();

  std::function<void()> fn_;
  std::size_t stack_size_;
  std::unique_ptr<std::byte[]> stack_;  // intentionally uninitialized
  ucontext_t ctx_{};
  ucontext_t link_{};
  State state_ = State::kReady;
  std::exception_ptr pending_exception_;

  // ASan fiber-switch bookkeeping (see fiber.cpp): this fiber's saved fake
  // stack, and the bounds of the stack resume() was called from. Unused —
  // but kept, for one ABI regardless of flags — in non-ASan builds.
  void* fake_stack_ = nullptr;
  const void* return_bottom_ = nullptr;
  std::size_t return_size_ = 0;
};

}  // namespace osiris::cothread
