#include "support/log.hpp"

namespace osiris::slog {
namespace {

Level g_threshold = Level::kWarn;

const char* level_name(Level level) {
  switch (level) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

Level threshold() noexcept { return g_threshold; }

void set_threshold(Level level) noexcept { g_threshold = level; }

void logf(Level level, const char* tag, const char* fmt, ...) {
  if (level < g_threshold) return;
  std::fprintf(stderr, "[%s] %-8s ", level_name(level), tag);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace osiris::slog
