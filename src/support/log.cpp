#include "support/log.hpp"

#include <atomic>

namespace osiris::slog {
namespace {

// Atomic so campaign workers can log concurrently without a data race on the
// threshold (set once by the main thread, read on every OSIRIS_LOG check).
std::atomic<Level> g_threshold{Level::kWarn};

const char* level_name(Level level) {
  switch (level) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

Level threshold() noexcept { return g_threshold.load(std::memory_order_relaxed); }

void set_threshold(Level level) noexcept { g_threshold.store(level, std::memory_order_relaxed); }

void logf(Level level, const char* tag, const char* fmt, ...) {
  if (level < threshold()) return;
  std::fprintf(stderr, "[%s] %-8s ", level_name(level), tag);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace osiris::slog
