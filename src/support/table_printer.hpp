// Aligned ASCII table printer used by every bench binary so that regenerated
// tables visually match the layout of the tables in the paper.
#pragma once

#include <string>
#include <vector>

namespace osiris {

class TablePrinter {
 public:
  /// `headers` defines the column count; every subsequent row must match it.
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void add_separator();

  /// Render the table to a string (also usable with std::cout <<).
  [[nodiscard]] std::string str() const;
  void print() const;

  /// Numeric formatting helpers for table cells.
  static std::string fmt(double v, int decimals = 1);
  static std::string pct(double fraction, int decimals = 1);  // 0.684 -> "68.4%"

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

}  // namespace osiris
