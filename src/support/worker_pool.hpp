// Sharded worker pool for embarrassingly parallel campaign work.
//
// Each worker is one host thread that owns a fully isolated simulator: the
// fault-injection registry (fi::Registry), the active checkpointing context
// (ckpt::Context) and the fiber scheduler (cothread) are all thread-scoped,
// so a worker boots, runs and tears down OS instances without sharing any
// mutable state with its siblings. Work is distributed by index from an
// atomic cursor; callers that need deterministic output store results by
// index and merge after join — the merge order is the plan order, never the
// completion order, so results are byte-identical to a serial run.
#pragma once

#include <cstddef>
#include <functional>

namespace osiris::support {

class WorkerPool {
 public:
  /// Resolve a --jobs request: 0 means "one per hardware thread", anything
  /// else is clamped to [1, n_items] by run_indexed.
  static unsigned resolve_jobs(unsigned requested);

  /// Run fn(i) for every i in [0, n) across `jobs` threads (the calling
  /// thread counts as one). Blocks until all items are done. `fn` must not
  /// touch shared mutable state except through its own synchronization.
  /// Exceptions escaping `fn` are rethrown on the caller after the join
  /// (first one wins).
  static void run_indexed(std::size_t n, unsigned jobs,
                          const std::function<void(std::size_t)>& fn);
};

}  // namespace osiris::support
