// Minimal leveled logger.
//
// Each simulator instance is single-threaded by construction (one host
// thread runs its kernel, servers and fibers cooperatively), but parallel
// campaigns run one instance per worker thread, so the shared threshold is
// atomic. Logging defaults to kWarn so that test suites and benchmarks stay
// quiet; examples raise the level to narrate recovery flows.
#pragma once

#include <cstdarg>
#include <cstdio>

namespace osiris::slog {

enum class Level : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global log threshold; messages below it are dropped.
Level threshold() noexcept;
void set_threshold(Level level) noexcept;

/// printf-style logging. `tag` names the emitting subsystem ("kernel", "pm", ...).
void logf(Level level, const char* tag, const char* fmt, ...) __attribute__((format(printf, 3, 4)));

}  // namespace osiris::slog

#define OSIRIS_LOG(level, tag, ...)                                       \
  do {                                                                    \
    if ((level) >= ::osiris::slog::threshold())                           \
      ::osiris::slog::logf((level), (tag), __VA_ARGS__);                  \
  } while (0)

#define OSIRIS_TRACE(tag, ...) OSIRIS_LOG(::osiris::slog::Level::kTrace, tag, __VA_ARGS__)
#define OSIRIS_DEBUG(tag, ...) OSIRIS_LOG(::osiris::slog::Level::kDebug, tag, __VA_ARGS__)
#define OSIRIS_INFO(tag, ...) OSIRIS_LOG(::osiris::slog::Level::kInfo, tag, __VA_ARGS__)
#define OSIRIS_WARN(tag, ...) OSIRIS_LOG(::osiris::slog::Level::kWarn, tag, __VA_ARGS__)
#define OSIRIS_ERROR(tag, ...) OSIRIS_LOG(::osiris::slog::Level::kError, tag, __VA_ARGS__)
