// Virtual clock with a deadline queue.
//
// The simulated OS runs on virtual time measured in ticks. Components that
// model latency (the block device, heartbeat timers, the fig3 fault-influx
// driver) schedule callbacks at absolute tick deadlines; the kernel advances
// the clock to the next deadline whenever the system is otherwise idle.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "support/common.hpp"

namespace osiris {

using Tick = std::uint64_t;

class VirtualClock {
 public:
  [[nodiscard]] Tick now() const noexcept { return now_; }

  /// Schedule `fn` to run when the clock reaches `deadline` (>= now).
  void call_at(Tick deadline, std::function<void()> fn) {
    OSIRIS_ASSERT(deadline >= now_);
    pending_.emplace(deadline, std::move(fn));
  }

  /// Schedule `fn` to run `delay` ticks from now.
  void call_after(Tick delay, std::function<void()> fn) { call_at(now_ + delay, std::move(fn)); }

  [[nodiscard]] bool has_pending() const noexcept { return !pending_.empty(); }
  [[nodiscard]] std::size_t pending_count() const noexcept { return pending_.size(); }

  /// Advance time without running callbacks scheduled in the skipped span.
  /// Used by workloads that model pure computation time.
  void spin(Tick ticks) noexcept { now_ += ticks; }

  /// Advance to the earliest deadline and run every callback due at it.
  /// Returns false if nothing is pending.
  bool advance_to_next() {
    if (pending_.empty()) return false;
    now_ = std::max(now_, pending_.begin()->first);
    run_due();
    return true;
  }

  /// Run all callbacks whose deadline is <= now.
  void run_due() {
    while (!pending_.empty() && pending_.begin()->first <= now_) {
      auto fn = std::move(pending_.begin()->second);
      pending_.erase(pending_.begin());
      fn();
    }
  }

 private:
  Tick now_ = 0;
  std::multimap<Tick, std::function<void()>> pending_;
};

}  // namespace osiris
