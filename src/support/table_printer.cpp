#include "support/table_printer.hpp"

#include <cstdio>
#include <sstream>

#include "support/common.hpp"

namespace osiris {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  OSIRIS_ASSERT(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  OSIRIS_ASSERT(cells.size() == headers_.size());
  rows_.push_back(Row{false, std::move(cells)});
}

void TablePrinter::add_separator() { rows_.push_back(Row{true, {}}); }

std::string TablePrinter::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const Row& r : rows_) {
    if (r.separator) continue;
    for (std::size_t c = 0; c < r.cells.size(); ++c)
      widths[c] = std::max(widths[c], r.cells[c].size());
  }

  auto hline = [&] {
    std::string s = "+";
    for (std::size_t w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out = hline() + line(headers_) + hline();
  for (const Row& r : rows_) out += r.separator ? hline() : line(r.cells);
  out += hline();
  return out;
}

void TablePrinter::print() const { std::fputs(str().c_str(), stdout); }

std::string TablePrinter::fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string TablePrinter::pct(double fraction, int decimals) {
  return fmt(fraction * 100.0, decimals) + "%";
}

}  // namespace osiris
