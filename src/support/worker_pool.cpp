#include "support/worker_pool.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace osiris::support {

unsigned WorkerPool::resolve_jobs(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void WorkerPool::run_indexed(std::size_t n, unsigned jobs,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  jobs = resolve_jobs(jobs);
  if (jobs > n) jobs = static_cast<unsigned>(n);

  if (jobs <= 1) {
    // Serial fast path: no threads, no atomics — the --jobs=1 reference run.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::exception_ptr first_error;
  std::mutex error_mu;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(jobs - 1);
  for (unsigned t = 1; t < jobs; ++t) threads.emplace_back(worker);
  worker();  // the calling thread is worker 0
  for (std::thread& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace osiris::support
