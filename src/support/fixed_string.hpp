// Fixed-capacity, trivially-copyable string.
//
// Server state (process names, path components, DS keys) must be trivially
// copyable so that the Recovery Server can transfer a crashed component's
// data section into a spare clone with a single memcpy, and so that undo-log
// rollback of raw bytes restores a valid value. FixedString provides string
// semantics under those constraints.
#pragma once

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace osiris {

template <std::size_t N>
class FixedString {
  static_assert(N >= 1, "FixedString needs room for at least the terminator");

 public:
  constexpr FixedString() noexcept : len_(0) { buf_[0] = '\0'; }

  FixedString(std::string_view s) noexcept { assign(s); }  // NOLINT(google-explicit-constructor)

  void assign(std::string_view s) noexcept {
    len_ = s.size() < N - 1 ? s.size() : N - 1;
    std::memcpy(buf_, s.data(), len_);
    buf_[len_] = '\0';
  }

  void clear() noexcept {
    len_ = 0;
    buf_[0] = '\0';
  }

  [[nodiscard]] std::string_view view() const noexcept { return {buf_, len_}; }
  [[nodiscard]] const char* c_str() const noexcept { return buf_; }
  [[nodiscard]] std::size_t size() const noexcept { return len_; }
  [[nodiscard]] bool empty() const noexcept { return len_ == 0; }
  [[nodiscard]] static constexpr std::size_t capacity() noexcept { return N - 1; }
  [[nodiscard]] std::string str() const { return std::string(view()); }

  friend bool operator==(const FixedString& a, std::string_view b) noexcept { return a.view() == b; }
  friend bool operator==(const FixedString& a, const FixedString& b) noexcept { return a.view() == b.view(); }

 private:
  std::size_t len_;
  char buf_[N];
};

}  // namespace osiris
