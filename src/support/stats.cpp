#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/common.hpp"

namespace osiris::stats {

double mean(const std::vector<double>& xs) {
  OSIRIS_ASSERT(!xs.empty());
  double sum = 0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double median(std::vector<double> xs) {
  OSIRIS_ASSERT(!xs.empty());
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double stddev(const std::vector<double>& xs) {
  OSIRIS_ASSERT(!xs.empty());
  if (xs.size() == 1) return 0.0;
  const double m = mean(xs);
  double acc = 0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double geomean(const std::vector<double>& xs) {
  OSIRIS_ASSERT(!xs.empty());
  double acc = 0;
  for (double x : xs) {
    OSIRIS_ASSERT(x > 0);
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

double min(const std::vector<double>& xs) {
  OSIRIS_ASSERT(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max(const std::vector<double>& xs) {
  OSIRIS_ASSERT(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

}  // namespace osiris::stats
