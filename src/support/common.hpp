// Common assertion and panic helpers used across the OSIRIS code base.
//
// OSIRIS distinguishes two kinds of "impossible" conditions:
//  - programming errors in the simulator / harness itself (use OSIRIS_ASSERT;
//    these abort the whole process because the experiment is invalid), and
//  - fail-stop faults inside a simulated OS component (those are modelled by
//    osiris::fi and *never* abort the host process).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace osiris {

[[noreturn]] inline void panic(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "OSIRIS PANIC at %s:%d: %s\n", file, line, msg.c_str());
  std::abort();
}

}  // namespace osiris

#define OSIRIS_ASSERT(cond)                                              \
  do {                                                                   \
    if (!(cond)) ::osiris::panic(__FILE__, __LINE__, "assertion failed: " #cond); \
  } while (0)

#define OSIRIS_PANIC(msg) ::osiris::panic(__FILE__, __LINE__, (msg))
