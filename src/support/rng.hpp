// Deterministic pseudo-random number generator (SplitMix64).
//
// Every stochastic choice in OSIRIS (fault-site selection, workload data,
// disk latency jitter) flows through an explicitly seeded Rng so that every
// experiment in the paper reproduction is replayable bit-for-bit.
#pragma once

#include <cstdint>

#include "support/common.hpp"

namespace osiris {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    OSIRIS_ASSERT(bound > 0);
    return next() % bound;
  }

  /// Uniform value in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    OSIRIS_ASSERT(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli trial with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) noexcept { return below(den) < num; }

  /// Uniform double in [0, 1).
  double uniform() noexcept { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Derive an independent child stream (for per-run seeding).
  Rng fork() noexcept { return Rng(next()); }

 private:
  std::uint64_t state_;
};

}  // namespace osiris
