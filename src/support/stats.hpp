// Summary statistics used by the evaluation harness (medians, standard
// deviations and geometric means, matching the paper's reporting style).
#pragma once

#include <vector>

namespace osiris::stats {

double mean(const std::vector<double>& xs);
double median(std::vector<double> xs);  // by value: sorts a copy
double stddev(const std::vector<double>& xs);
double geomean(const std::vector<double>& xs);
double min(const std::vector<double>& xs);
double max(const std::vector<double>& xs);

}  // namespace osiris::stats
