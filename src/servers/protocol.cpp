#include "servers/protocol.hpp"

namespace osiris::servers {

// The static SEEP classification. For each message type we record:
//   - SeepClass: does the interaction modify the *receiver's* state? This is
//     what decides whether sending it closes the sender's recovery window
//     under the enhanced policy (under the pessimistic policy, any send
//     closes it).
//   - replyable: is the incoming message a request whose sender blocks for a
//     reply, so reconciliation may error-virtualize it with E_CRASH?
//
// The conservative default for unlisted types is (state-modifying,
// replyable), exactly as a sound static analysis would fall back.
seep::Classification build_classification() {
  using seep::SeepClass;
  seep::Classification c;
  const auto SM = SeepClass::kStateModifying;
  const auto NSM = SeepClass::kNonStateModifying;

  // --- PM ------------------------------------------------------------
  c.set(PM_FORK, SM);
  c.set(PM_EXIT, SM);
  c.set(PM_WAIT, SM);
  c.set(PM_GETPID, NSM);
  c.set(PM_GETPPID, NSM);
  c.set(PM_KILL, SM);
  c.set(PM_EXEC, SM);
  c.set(PM_BRK, SM);
  c.set(PM_SIGACTION, SM);
  c.set(PM_SIGPENDING, NSM);
  c.set(PM_TIMES, NSM);
  c.set(PM_GETMEMINFO, NSM);
  c.set(PM_UNAME, NSM);
  c.set(PM_GETUID, NSM);
  c.set(PM_SETUID, SM);
  c.set(PM_PROCSTAT, NSM);
  // Signal delivery changes the target process's pending set.
  c.set(PM_SIG_NOTIFY, SM, /*replyable=*/false);
  // Reconciliation kill issued by the recovery engine (no requester waits).
  c.set(PM_KILL_EP, SM, /*replyable=*/false);

  // --- VFS ----------------------------------------------------------
  c.set(VFS_OPEN, SM);
  c.set(VFS_CLOSE, SM);
  c.set(VFS_READ, SM);  // advances the file offset
  c.set(VFS_WRITE, SM);
  c.set(VFS_LSEEK, SM);
  c.set(VFS_STAT, NSM);
  c.set(VFS_FSTAT, NSM);
  c.set(VFS_UNLINK, SM);
  c.set(VFS_MKDIR, SM);
  c.set(VFS_RMDIR, SM);
  c.set(VFS_RENAME, SM);
  c.set(VFS_READDIR, NSM);  // positionless: the index travels in the request
  c.set(VFS_PIPE, SM);
  c.set(VFS_DUP, SM);
  c.set(VFS_TRUNC, SM);
  c.set(VFS_SYNC, SM);
  c.set(VFS_ACCESS, NSM);
  c.set(VFS_PM_FORK, SM);
  c.set(VFS_PM_EXIT, SM);
  // exec's binary check only reads the filesystem: PM's window survives it
  // under the enhanced policy (a chunk of PM's Table I gain).
  c.set(VFS_PM_EXEC, NSM);
  c.set(VFS_DEV_DONE, NSM, /*replyable=*/false);

  // --- VM -----------------------------------------------------------
  // mmap/munmap/brk mutate only the *requesting process's* address space:
  // under the extended policy (SVII) these taint the sender's window
  // instead of closing it; every other policy treats them as
  // state-modifying (see seep::policy_closes_window).
  const auto RSC = SeepClass::kRequesterScoped;
  c.set(VM_MMAP, RSC);
  c.set(VM_MUNMAP, RSC);
  c.set(VM_BRK_AS, RSC);
  c.set(VM_FORK_AS, SM);
  c.set(VM_EXIT_AS, SM);
  c.set(VM_EXEC_AS, SM);
  c.set(VM_INFO, NSM);

  // --- DS -----------------------------------------------------------
  c.set(DS_PUBLISH, SM);
  c.set(DS_RETRIEVE, NSM);
  c.set(DS_DELETE, SM);
  c.set(DS_SUBSCRIBE, SM);
  c.set(DS_CHECK, NSM);
  c.set(DS_SNAPSHOT, NSM);
  // The subscriber-change notification is informational: the subscriber's
  // state is not modified by the notify itself (it later queries DS_CHECK).
  // This single classification is why DS is almost always recoverable under
  // the enhanced policy but not under the pessimistic one (Table I).
  c.set(DS_NOTIFY_SUB, NSM, /*replyable=*/false);

  // --- RS -----------------------------------------------------------
  c.set(RS_STATUS, NSM);
  // Heartbeat pings/pongs update liveness bookkeeping on the receiving side:
  // conservatively state-modifying, hence RS gains almost nothing from the
  // enhanced policy (Table I: 49.4% -> 50.5%).
  c.set(RS_PING, SM, /*replyable=*/false);
  c.set(RS_PONG, SM, /*replyable=*/false);
  c.set(RS_SWEEP, SM, /*replyable=*/false);
  // Ladder bookkeeping from the RCB: RS records the parked flag and arms the
  // readmission timer. Fire-and-forget (the RCB never blocks on RS).
  c.set(RS_PARK, SM, /*replyable=*/false);
  c.set(RS_READMIT, SM, /*replyable=*/false);

  // --- SYS (kernel task) ------------------------------------------------
  c.set(SYS_FORK, SM);
  c.set(SYS_EXIT, SM);
  c.set(SYS_MAP, SM);
  c.set(SYS_UNMAP, SM);
  c.set(SYS_GETINFO, NSM);
  c.set(SYS_TIMES, NSM);
  c.set(SYS_PRIV, SM);

  return c;
}

}  // namespace osiris::servers
