#include "servers/protocol.hpp"

namespace osiris::servers {

// The static SEEP classification — a pure derivation from the declarative
// spec table. Per-message rationale (why VFS_PM_EXEC is non-state-modifying,
// why heartbeats close RS windows, ...) lives with the rows in msg_spec.hpp.
//
// The conservative default for unlisted types is (state-modifying,
// replyable), exactly as a sound static analysis would fall back — and the
// dispatch layer independently fail-stops on unregistered types, so the
// default can only be exercised by harness-level probes.
seep::Classification build_classification() {
  seep::Classification c;
  for (const MsgSpec& s : kMsgSpecTable) c.set(s.type, s.seep, s.replyable());
  return c;
}

}  // namespace osiris::servers
