// ServerBase: the event-driven programming model of Figure 1, with the
// checkpoint/recovery-window discipline wired in.
//
// Every system server derives from ServerBase<State>, where State is the
// server's entire recoverable data section: a trivially-copyable struct
// composed of ckpt::Cell / Array / Table / Str members. The base class:
//
//   - dispatches incoming messages through a flat handler table populated by
//     on()/on_notify()/on_reply() registrations against the MsgSpec registry
//     (one array load per dispatch, no hashing, no per-server switch);
//   - validates every incoming request against the spec's arg/text schema and
//     fail-stops on unregistered types or malformed requests (paper SII-E);
//   - opens the recovery window (and takes the checkpoint — an undo-log
//     reset) at the "top of the loop", i.e. when a replyable request
//     arrives;
//   - routes all outbound communication through SEEP wrappers that consult
//     the static classification and the active policy, closing the window
//     when required (Figure 2);
//   - activates the server's checkpointing context and fault-injection
//     attribution for the duration of the dispatch, including across nested
//     calls into other servers;
//   - answers heartbeat pings from the Recovery Server;
//   - implements the recovery::Recoverable interface over State.
//
// Defensive checks in handlers use SRV_CHECK, which converts would-be
// fail-silent misbehaviour into a fail-stop fault (paper SII-E).
#pragma once

#include <array>
#include <optional>
#include <span>
#include <string>
#include <type_traits>

#include "ckpt/cell.hpp"
#include "ckpt/context.hpp"
#include "fi/registry.hpp"
#include "kernel/faults.hpp"
#include "kernel/kernel.hpp"
#include "recovery/recoverable.hpp"
#include "seep/policy.hpp"
#include "seep/seep.hpp"
#include "seep/window.hpp"
#include "servers/protocol.hpp"

namespace osiris::servers {

/// Defensive-programming trap: a violated invariant is a fail-stop fault of
/// the *current component*, contained by the kernel at the dispatch boundary.
[[noreturn]] inline void fail_stop(const char* what) {
  throw kernel::FailStopFault(what, /*site_id=*/0);
}

#define SRV_CHECK(cond, what)                          \
  do {                                                 \
    if (!(cond)) ::osiris::servers::fail_stop(what);   \
  } while (0)

/// RAII attribution of fi:: probes to the current component.
class FiScope {
 public:
  FiScope(seep::Window* window, int endpoint) : saved_(fi::Registry::instance().active()) {
    fi::Registry::instance().set_active({window, endpoint});
  }
  ~FiScope() { fi::Registry::instance().set_active(saved_); }
  FiScope(const FiScope&) = delete;
  FiScope& operator=(const FiScope&) = delete;

 private:
  fi::ActiveComponent saved_;
};

class ServerCommon : public kernel::IServer, public recovery::Recoverable {
 public:
  ServerCommon(kernel::Kernel& kernel, kernel::Endpoint ep, std::string name,
               const seep::Classification& classification, seep::Policy policy,
               ckpt::Mode ckpt_mode)
      : kernel_(kernel),
        ep_(ep),
        name_(std::move(name)),
        classification_(classification),
        ctx_(ckpt_mode),
        window_(policy, ctx_) {
    // Checkpoint/window events attribute to this server's endpoint.
    ctx_.set_trace_id(ep_.value);
  }

  // --- IServer ---------------------------------------------------------
  [[nodiscard]] std::string_view name() const final { return name_; }

  std::optional<kernel::Message> dispatch(const kernel::Message& m) final {
    ckpt::Context::Scope ctx_scope(&ctx_);
    FiScope fi_scope(&window_, ep_.value);

    // Heartbeat protocol: answered by the base class in every server.
    if (m.type == (RS_PING | kernel::kNotifyBit)) {
      OSIRIS_TRACE_EVENT(kHeartbeatPong, ep_.value,
                         static_cast<std::uint64_t>(kernel::kRsEp.value));
      kernel_.notify(ep_, kernel::kRsEp, RS_PONG);
      return std::nullopt;
    }

    // A type the spec table never declared reaching a server is a protocol
    // violation, not a request to answer: fail-stop instead of the silent
    // conservative fall-through (paper SII-E).
    const MsgSpec* spec = find_msg_spec(m.type);
    SRV_CHECK(spec != nullptr, "dispatch: unregistered message type");

    const bool is_notify = kernel::is_notify(m.type);
    const bool is_reply = kernel::is_reply(m.type);
    if (!is_reply) {
      // Malformed request → fail-stop: args outside the schema must be zero,
      // text only where the schema declares it, and the notify bit must
      // match the spec's delivery kind. (Replies are exempt: their args
      // carry status/results, shaped by the reply convention instead.)
      for (int i = spec->args; i < 6; ++i) {
        SRV_CHECK(m.arg[i] == 0, "dispatch: request args outside the message schema");
      }
      SRV_CHECK(m.text.empty() || spec->text, "dispatch: text on a textless message");
      SRV_CHECK(is_notify == spec->notify(), "dispatch: delivery kind contradicts the spec");
    }

    // Top of the request processing loop: checkpoint + open the recovery
    // window, but only for requests that reconciliation could answer with
    // an error reply. Notifications have no requester to answer, and an
    // asynchronous *reply* continues a previous request (Figure 1) whose
    // sender is long gone — in both cases a rollback could never be
    // reconciled, so the window (conservatively) stays closed.
    if (spec->replyable() && !is_notify && !is_reply) {
      // Attribute the window to the request's message type: the per-msg
      // close/taint stats are the runtime ground truth for the Pass 4
      // handler-granularity predictions. Under the batching fast path the
      // physical checkpoint (undo-log reset) is elided when the log is
      // already clean — one physical checkpoint per batch of NSM requests.
      window_.set_lazy_checkpoint(kernel_.fastpath().batching);
      window_.open(m.type);
    }

    on_message(m);

    // Flat handler-table dispatch: the spec row index is the handler slot.
    const HandlerSlot& slot = handlers_[static_cast<std::size_t>(spec - kMsgSpecTable)];
    const MemberHandler h = is_notify ? slot.notify : is_reply ? slot.reply : slot.request;
    std::optional<kernel::Message> reply;
    if (h != nullptr) {
      reply = (this->*h)(m);
    } else if (!is_notify && !is_reply && spec->replyable()) {
      // A registered type this server has no handler for: tell the caller.
      // Unhandled notifications and stray replies have no one to answer.
      reply = kernel::make_reply(m.type, kernel::E_NOSYS);
    }
    window_.end_of_request();

    // Storm realization (liveness fault model): a kHandlerSpin/kChannelFlood
    // probe that fired during this dispatch never throws — it parks a plan
    // in the registry, picked up here at the dispatch boundary and turned
    // into traffic. The probe's own component (the innermost dispatch on a
    // nested call stack) always drains its firing first, so attribution is
    // exact. An FI_SPIN dispatch instead sustains the storm one-for-one
    // (independent of which probe site hosts the fault — the site only has
    // to fire once to seed the burst); any probe re-fire it recorded is
    // discarded so the backlog stays constant instead of growing
    // geometrically. Disarm (at quarantine) stops the sustain cold.
    const fi::Registry::StormPlan storm = fi::Registry::instance().take_pending_storm();
    if (is_notify && (m.type & ~kernel::kNotifyBit) == FI_SPIN) {
      if (fi::Registry::instance().spin_armed_for(ep_.value)) {
        // analyze-suppress(raw-kernel-send): injected storm traffic models
        // a compromised component and must bypass SEEP accounting.
        kernel_.notify(ep_, ep_, FI_SPIN);
      }
    } else if (storm.type != fi::FaultType::kNone) {
      activate_storm(storm);
    }
    return reply;
  }

  /// Useful-work counter for the kernel's health monitor: recovery windows
  /// opened plus deferred replies sent. Storm traffic (FI_SPIN/FI_FLOOD
  /// notes) moves neither, which is what makes it read as fever.
  [[nodiscard]] std::uint64_t useful_work() const final {
    return window_.stats().opened + deferred_replies_;
  }

  /// True when this server registered a handler for the given type's natural
  /// delivery kind (requests/sends -> on(), notifications -> on_notify()).
  [[nodiscard]] bool has_handler(std::uint32_t type) const {
    const MsgSpec* spec = find_msg_spec(type);
    if (spec == nullptr) return false;
    const HandlerSlot& slot = handlers_[static_cast<std::size_t>(spec - kMsgSpecTable)];
    return (spec->notify() ? slot.notify : slot.request) != nullptr;
  }

  /// True when this server registered a reply continuation for the type.
  [[nodiscard]] bool has_reply_handler(std::uint32_t type) const {
    const MsgSpec* spec = find_msg_spec(type);
    if (spec == nullptr) return false;
    return handlers_[static_cast<std::size_t>(spec - kMsgSpecTable)].reply != nullptr;
  }

  // --- Recoverable ------------------------------------------------------
  [[nodiscard]] kernel::Endpoint endpoint() const final { return ep_; }
  ckpt::Context& ckpt_context() final { return ctx_; }
  seep::Window& window() final { return window_; }
  void reinitialize() override { init_state(); }
  void on_restored(bool /*rolled_back*/) override {}
  std::byte* aux_section() final { return aux_base_; }
  [[nodiscard]] std::size_t aux_section_size() const final { return aux_len_; }
  [[nodiscard]] ckpt::PageStore* page_store() final { return pages_.get(); }

 protected:
  /// Handler signature: process one message, return the reply (or nullopt if
  /// the reply is deferred / the message needs none).
  using MemberHandler = std::optional<kernel::Message> (ServerCommon::*)(const kernel::Message&);

  /// Per-message prologue hook, called once per dispatched message after the
  /// window decision and before the handler. Servers use it for their
  /// fault-injection block probe and per-request accounting.
  virtual void on_message(const kernel::Message& /*m*/) {}

  /// Register the handler for a request or fire-and-forget send.
  template <typename ServerT>
  void on(std::uint32_t type,
          std::optional<kernel::Message> (ServerT::*fn)(const kernel::Message&)) {
    const MsgSpec* spec = find_msg_spec(type);
    OSIRIS_ASSERT(spec != nullptr && !spec->notify());
    handlers_[static_cast<std::size_t>(spec - kMsgSpecTable)].request =
        static_cast<MemberHandler>(fn);
  }

  /// Register the handler for a notification (spec kind NOTE).
  template <typename ServerT>
  void on_notify(std::uint32_t type,
                 std::optional<kernel::Message> (ServerT::*fn)(const kernel::Message&)) {
    const MsgSpec* spec = find_msg_spec(type);
    OSIRIS_ASSERT(spec != nullptr && spec->notify());
    handlers_[static_cast<std::size_t>(spec - kMsgSpecTable)].notify =
        static_cast<MemberHandler>(fn);
  }

  /// Register the continuation for an asynchronous *reply* to an earlier
  /// request this server sent (Figure 1's split request processing).
  template <typename ServerT>
  void on_reply(std::uint32_t type,
                std::optional<kernel::Message> (ServerT::*fn)(const kernel::Message&)) {
    const MsgSpec* spec = find_msg_spec(type);
    OSIRIS_ASSERT(spec != nullptr && spec->replyable());
    handlers_[static_cast<std::size_t>(spec - kMsgSpecTable)].reply =
        static_cast<MemberHandler>(fn);
  }

  /// Boot-time (and stateless-restart) initialization of State.
  virtual void init_state() = 0;

  /// Wire an MB+ heap region (a PagedTable's buffer) into the recovery
  /// story (DESIGN.md §17). The region becomes the component's aux section
  /// — appended to the clone/boot images by the engine — and, when the page
  /// tier is enabled, gets a PageStore so stores to it take page-granular
  /// CoW snapshots instead of arena records. Call once, from the derived
  /// constructor, before the engine registers the component.
  void set_aux_region(std::byte* base, std::size_t len, const ckpt::PagesConfig& pages) {
    OSIRIS_ASSERT(aux_base_ == nullptr);
    aux_base_ = base;
    aux_len_ = len;
    if (pages.enabled) {
      pages_ = std::make_unique<ckpt::PageStore>(pages);
      pages_->register_region(base, len);
      ctx_.set_page_store(pages_.get());
    }
  }

  // --- SEEP-wrapped outbound communication ---------------------------------

  /// Synchronous sendrec to another server through a SEEP.
  kernel::Message seep_call(kernel::Endpoint dst, kernel::Message m) {
    window_.on_outbound(classification_.get(m.type & ~kernel::kNotifyBit).seep);
    return kernel_.call(ep_, dst, std::move(m));
  }

  /// Asynchronous send through a SEEP.
  void seep_send(kernel::Endpoint dst, kernel::Message m) {
    window_.on_outbound(classification_.get(m.type & ~kernel::kNotifyBit).seep);
    kernel_.send(ep_, dst, std::move(m));
  }

  /// Notification through a SEEP.
  void seep_notify(kernel::Endpoint dst, std::uint32_t type) {
    window_.on_outbound(classification_.get(type).seep);
    kernel_.notify(ep_, dst, type);
  }

  /// Batched notification fan-out through a SEEP: one classification lookup
  /// and one window transition cover the whole batch (every element carries
  /// the same type, so the per-send on_outbound calls would be no-ops after
  /// the first — taint latches, close is idempotent). The kernel still
  /// queues and traces each notification individually, so delivery order
  /// and the event trace are identical to a seep_notify loop.
  void seep_notify_batch(std::span<const kernel::Endpoint> dsts, std::uint32_t type) {
    if (dsts.empty()) return;
    window_.on_outbound(classification_.get(type).seep);
    for (const kernel::Endpoint dst : dsts) kernel_.notify(ep_, dst, type);
  }

  /// Deferred reply to a previously postponed request (e.g. PM waking a
  /// waiting parent, VFS completing a disk-blocked read). Deferred replies
  /// are mid-request sends to a third party, so they count as
  /// state-modifying SEEPs — unlike the in-band reply returned by handle().
  void seep_deferred_reply(kernel::Endpoint dst, kernel::Message m) {
    window_.on_outbound(seep::SeepClass::kStateModifying);
    ++deferred_replies_;
    kernel_.reply_to(dst, std::move(m));
  }

  kernel::Kernel& kern() noexcept { return kernel_; }
  [[nodiscard]] const seep::Classification& classification() const noexcept {
    return classification_;
  }

 private:
  /// One slot per spec row; the three delivery kinds dispatch independently.
  struct HandlerSlot {
    MemberHandler request = nullptr;
    MemberHandler notify = nullptr;
    MemberHandler reply = nullptr;
  };

  /// Virtual ticks between flood-pump bursts. Clock-driven on purpose: the
  /// pump keeps the clock's callback queue alive, so the storm persists
  /// across otherwise-idle stretches until disarmed or parked. Short next
  /// to disk latencies (40/60) so flood traffic outpaces the request flow
  /// it rides on.
  static constexpr Tick kFloodPumpPeriod = 10;

  /// Turn a recorded storm firing into traffic. kHandlerSpin seeds a
  /// bounded burst of self-notes; dispatch() then sustains the storm
  /// one-for-one per FI_SPIN delivered (constant queue pressure — an
  /// unbounded re-seed would grow the backlog geometrically and an
  /// immediate 1-for-1 alone would never start it). kChannelFlood starts a
  /// self-rescheduling clock pump against the victim.
  void activate_storm(const fi::Registry::StormPlan& storm) {
    fi::Registry::instance().note_storm_start(kernel_.clock().now());
    if (storm.type == fi::FaultType::kHandlerSpin) {
      for (std::uint32_t i = 0; i < storm.burst; ++i) {
        // analyze-suppress(raw-kernel-send): injected storm traffic models
        // a compromised component and must bypass SEEP accounting.
        kernel_.notify(ep_, ep_, FI_SPIN);
      }
      return;
    }
    if (flood_pump_active_ || storm.victim < 0) return;
    flood_pump_active_ = true;
    schedule_flood_pump(kernel::Endpoint{storm.victim}, storm.burst);
  }

  void schedule_flood_pump(kernel::Endpoint victim, std::uint32_t burst) {
    kernel_.clock().call_after(kFloodPumpPeriod, [this, victim, burst] {
      if (!fi::Registry::instance().storm_armed_for(ep_.value)) {
        flood_pump_active_ = false;  // disarmed (quarantine) — storm over
        return;
      }
      for (std::uint32_t i = 0; i < burst; ++i) {
        // analyze-suppress(raw-kernel-send): see activate_storm.
        kernel_.notify(ep_, victim, FI_FLOOD);
      }
      schedule_flood_pump(victim, burst);
    });
  }

  kernel::Kernel& kernel_;
  kernel::Endpoint ep_;
  std::string name_;
  const seep::Classification& classification_;
  ckpt::Context ctx_;
  std::byte* aux_base_ = nullptr;  // see set_aux_region()
  std::size_t aux_len_ = 0;
  std::unique_ptr<ckpt::PageStore> pages_;
  seep::Window window_;
  std::uint64_t deferred_replies_ = 0;
  bool flood_pump_active_ = false;
  std::array<HandlerSlot, kMsgSpecCount> handlers_{};
};

/// Typed layer binding a concrete State struct as the data section.
template <typename StateT>
class ServerBase : public ServerCommon {
  static_assert(std::is_trivially_copyable_v<StateT>,
                "a server's data section must be trivially copyable for clone transfer");

 public:
  using ServerCommon::ServerCommon;

  std::byte* data_section() final { return reinterpret_cast<std::byte*>(&state_); }
  [[nodiscard]] std::size_t data_section_size() const final { return sizeof(StateT); }

 protected:
  StateT& st() noexcept { return state_; }
  [[nodiscard]] const StateT& st() const noexcept { return state_; }

 private:
  StateT state_{};
};

}  // namespace osiris::servers
