// PM: the Process Manager.
//
// Owns the process table: pids, parent links, exit/wait synchronization,
// signals, and the cross-cutting system calls (fork, exec, exit) that fan
// out to VM, VFS and SYS — the paper's motivating example of state spread
// across several fault domains.
//
// Noteworthy recovery-relevant structure:
//  - fork/exit/kill issue state-modifying SEEPs early, closing the recovery
//    window under both OSIRIS policies;
//  - the read-mostly calls (getpid, times, getmeminfo, uname, procstat)
//    either stay local or perform read-only SEEPs, which keep the window
//    open under the *enhanced* policy — this is PM's Table I gain;
//  - exec is asynchronous: PM sends the binary check to VFS and continues
//    when the reply message comes back (Figure 1's "responses to previously
//    issued asynchronous requests").
#pragma once

#include "ckpt/cell.hpp"
#include "servers/server_base.hpp"

namespace osiris::servers {

enum class ProcState : std::uint8_t { kRunning = 1, kZombie = 2, kWaiting = 3 };

struct PmProc {
  std::int32_t pid = 0;
  std::int32_t parent = 0;
  std::int32_t client_ep = -1;  // kernel client endpoint of the user process
  ProcState state = ProcState::kRunning;
  std::int64_t exit_status = 0;
  std::uint64_t pending_sigs = 0;
  std::uint64_t handled_sigs = 0;  // signals with a user handler installed
  std::int32_t wait_target = 0;    // pid waited for; 0 = any (when kWaiting)
  std::uint64_t brk = 0x10000;
  std::uint32_t uid = 0;
  osiris::FixedString<32> name;
};

struct PmPendingExec {
  bool active = false;
  std::int32_t pid = 0;
  std::int32_t requester_ep = -1;
  osiris::FixedString<32> path;
};

struct PmState {
  ckpt::Table<PmProc, kMaxProcs> procs;
  ckpt::Cell<std::int32_t> next_pid;
  ckpt::Cell<std::uint64_t> forks;
  ckpt::Cell<std::uint64_t> exits;
  ckpt::Cell<std::uint64_t> signals_sent;
  ckpt::Table<PmPendingExec, 8> pending_execs;
};

class Pm final : public ServerBase<PmState> {
 public:
  Pm(kernel::Kernel& kernel, const seep::Classification& classification, seep::Policy policy,
     ckpt::Mode mode)
      : ServerBase(kernel, kernel::kPmEp, "pm", classification, policy, mode) {
    init_state();
    register_handlers();
  }

  /// Boot: install the init process (pid 1).
  void register_boot_proc(std::int32_t pid, kernel::Endpoint client_ep,
                          std::string_view name);

  /// Pid of the process bound to a client endpoint (harness/test helper).
  [[nodiscard]] std::int32_t pid_of_endpoint(kernel::Endpoint ep) const;

 protected:
  void on_message(const kernel::Message& m) override;
  void init_state() override;

 private:
  void register_handlers();

  std::size_t slot_of_pid(std::int32_t pid) const;
  std::size_t slot_of_ep(std::int32_t ep) const;

  std::optional<kernel::Message> do_fork(const kernel::Message& m);
  std::optional<kernel::Message> do_exit(const kernel::Message& m);
  std::optional<kernel::Message> do_wait(const kernel::Message& m);
  std::optional<kernel::Message> do_kill(const kernel::Message& m);
  std::optional<kernel::Message> do_exec(const kernel::Message& m);
  std::optional<kernel::Message> do_exec_reply(const kernel::Message& m);
  std::optional<kernel::Message> do_brk(const kernel::Message& m);
  std::optional<kernel::Message> do_getpid(const kernel::Message& m);
  std::optional<kernel::Message> do_getppid(const kernel::Message& m);
  std::optional<kernel::Message> do_getuid(const kernel::Message& m);
  std::optional<kernel::Message> do_setuid(const kernel::Message& m);
  std::optional<kernel::Message> do_sigaction(const kernel::Message& m);
  std::optional<kernel::Message> do_sigpending(const kernel::Message& m);
  std::optional<kernel::Message> do_times(const kernel::Message& m);
  std::optional<kernel::Message> do_getmeminfo(const kernel::Message& m);
  std::optional<kernel::Message> do_uname(const kernel::Message& m);
  std::optional<kernel::Message> do_procstat(const kernel::Message& m);
  std::optional<kernel::Message> do_kill_ep(const kernel::Message& m);
  std::optional<kernel::Message> ignore_ds_note(const kernel::Message& m);

  /// Shared exit path (voluntary exit and kSigKill).
  void terminate_proc(std::size_t slot, std::int64_t status);
  /// Try to satisfy a waiting parent with zombie `child_slot`; returns true
  /// if the zombie was reaped.
  bool deliver_to_waiter(std::size_t parent_slot, std::size_t child_slot);
};

}  // namespace osiris::servers
