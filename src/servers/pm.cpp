#include "servers/pm.hpp"

#include "support/log.hpp"

namespace osiris::servers {

using kernel::E_AGAIN;
using kernel::E_CHILD;
using kernel::E_INVAL;
using kernel::E_NOENT;
using kernel::E_NOMEM;
using kernel::E_SRCH;
using kernel::make_reply;
using kernel::Message;
using kernel::OK;

namespace {
constexpr auto kNpos = decltype(PmState{}.procs)::npos;
}

void Pm::init_state() {
  // The pid allocator starts at 1: init itself draws pid 1 at boot. (A
  // "naive" restart that re-runs this initializer over live state therefore
  // resets the allocator below running processes — the classic naive-restart
  // inconsistency.)
  st().next_pid = 1;
}

void Pm::register_boot_proc(std::int32_t pid, kernel::Endpoint client_ep,
                            std::string_view name) {
  OSIRIS_ASSERT(pid == st().next_pid.get());
  st().next_pid = pid + 1;
  const std::size_t i = st().procs.alloc();
  OSIRIS_ASSERT(i != kNpos);
  auto& p = st().procs.mutate(i);
  p.pid = pid;
  p.parent = 0;
  p.client_ep = client_ep.value;
  p.state = ProcState::kRunning;
  p.name.assign(name);
}

std::int32_t Pm::pid_of_endpoint(kernel::Endpoint ep) const {
  const std::size_t i =
      st().procs.find([&](const PmProc& p) { return p.client_ep == ep.value; });
  return i == kNpos ? -1 : st().procs.at(i).pid;
}

std::size_t Pm::slot_of_pid(std::int32_t pid) const {
  return st().procs.find([pid](const PmProc& p) { return p.pid == pid; });
}

std::size_t Pm::slot_of_ep(std::int32_t ep) const {
  return st().procs.find(
      [ep](const PmProc& p) { return p.client_ep == ep && p.state != ProcState::kZombie; });
}

void Pm::register_handlers() {
  on(PM_FORK, &Pm::do_fork);
  on(PM_EXIT, &Pm::do_exit);
  on(PM_WAIT, &Pm::do_wait);
  on(PM_KILL, &Pm::do_kill);
  on(PM_EXEC, &Pm::do_exec);
  on_reply(VFS_PM_EXEC, &Pm::do_exec_reply);
  on(PM_BRK, &Pm::do_brk);
  on(PM_GETPID, &Pm::do_getpid);
  on(PM_GETPPID, &Pm::do_getppid);
  on(PM_GETUID, &Pm::do_getuid);
  on(PM_SETUID, &Pm::do_setuid);
  on(PM_SIGACTION, &Pm::do_sigaction);
  on(PM_SIGPENDING, &Pm::do_sigpending);
  on(PM_TIMES, &Pm::do_times);
  on(PM_GETMEMINFO, &Pm::do_getmeminfo);
  on(PM_UNAME, &Pm::do_uname);
  on(PM_PROCSTAT, &Pm::do_procstat);
  on(PM_KILL_EP, &Pm::do_kill_ep);
  on_notify(DS_NOTIFY_SUB, &Pm::ignore_ds_note);
}

void Pm::on_message(const Message&) { FI_BLOCK("pm"); }

std::optional<Message> Pm::do_getpid(const Message& m) {
  FI_BLOCK("pm");
  const std::size_t i = slot_of_ep(m.sender.value);
  if (i == kNpos) return make_reply(m.type, E_SRCH);
  return make_reply(m.type, st().procs.at(i).pid);
}

std::optional<Message> Pm::do_getppid(const Message& m) {
  const std::size_t i = slot_of_ep(m.sender.value);
  if (i == kNpos) return make_reply(m.type, E_SRCH);
  return make_reply(m.type, st().procs.at(i).parent);
}

std::optional<Message> Pm::do_getuid(const Message& m) {
  const std::size_t i = slot_of_ep(m.sender.value);
  if (i == kNpos) return make_reply(m.type, E_SRCH);
  return make_reply(m.type, st().procs.at(i).uid);
}

std::optional<Message> Pm::do_setuid(const Message& m) {
  FI_BLOCK("pm");
  const std::size_t i = slot_of_ep(m.sender.value);
  if (i == kNpos) return make_reply(m.type, E_SRCH);
  st().procs.mutate(i).uid = static_cast<std::uint32_t>(MsgView(m).u(0));
  return make_reply(m.type, OK);
}

std::optional<Message> Pm::do_sigaction(const Message& m) {
  FI_BLOCK("pm");
  const std::size_t i = slot_of_ep(m.sender.value);
  if (i == kNpos) return make_reply(m.type, E_SRCH);
  const MsgView v(m);
  const std::uint64_t sig = v.u(0);
  if (sig == 0 || sig >= 64 || sig == kSigKill) return make_reply(m.type, E_INVAL);
  auto& p = st().procs.mutate(i);
  if (v.u(1) != 0) {
    p.handled_sigs |= (1ULL << sig);
  } else {
    p.handled_sigs &= ~(1ULL << sig);
  }
  return make_reply(m.type, OK);
}

std::optional<Message> Pm::do_sigpending(const Message& m) {
  const std::size_t i = slot_of_ep(m.sender.value);
  if (i == kNpos) return make_reply(m.type, E_SRCH);
  Message r = make_reply(m.type, OK);
  r.arg[1] = st().procs.at(i).pending_sigs;
  // Reading the pending set consumes it (simplified sigpending+sigwait).
  st().procs.mutate(i).pending_sigs = 0;
  return r;
}

std::optional<Message> Pm::do_times(const Message& m) {
  FI_BLOCK("pm");
  // Read-only SEEP to the kernel task: window survives under enhanced.
  Message r = seep_call(kSysEp, encode(SYS_TIMES));
  FI_BLOCK("pm");
  // Aggregate per-process accounting on top of the kernel's uptime:
  // under the pessimistic policy this whole scan is outside the window.
  std::uint64_t running = 0;
  st().procs.for_each([&](std::size_t, const PmProc& p) {
    FI_BLOCK("pm");
    if (p.state == ProcState::kRunning) ++running;
  });
  FI_BLOCK("pm");
  Message out = make_reply(m.type, r.sarg(0));
  out.arg[1] = r.arg[1];
  out.arg[2] = running;
  return out;
}

std::optional<Message> Pm::do_getmeminfo(const Message& m) {
  FI_BLOCK("pm");
  // Read-only SEEP to VM.
  Message r = seep_call(kernel::kVmEp, encode(VM_INFO));
  FI_BLOCK("pm");
  if (r.sarg(0) < 0) return make_reply(m.type, r.sarg(0));
  // Sanity-check VM's numbers against PM's own view of the system.
  SRV_CHECK(r.arg[1] <= r.arg[2], "pm: vm reported more free than total");
  std::uint64_t procs = 0;
  st().procs.for_each([&](std::size_t, const PmProc&) {
    FI_BLOCK("pm");
    ++procs;
  });
  SRV_CHECK(procs >= 1, "pm: process table empty while serving a request");
  FI_BLOCK("pm");
  Message out = make_reply(m.type, OK);
  out.arg[1] = r.arg[1];
  out.arg[2] = r.arg[2];
  return out;
}

std::optional<Message> Pm::do_uname(const Message& m) {
  FI_BLOCK("pm");
  // Read-only SEEP to DS for the published release string.
  Message r = seep_call(kernel::kDsEp, encode_text(DS_RETRIEVE, "sys.release"));
  FI_BLOCK("pm");
  // Attach the nodename of the calling process (a read-only scan that
  // stays inside the window only under the enhanced policy).
  std::uint64_t live = 0;
  st().procs.for_each([&](std::size_t, const PmProc& p) {
    FI_BLOCK("pm");
    if (p.state != ProcState::kZombie) ++live;
  });
  FI_BLOCK("pm");
  Message out = make_reply(m.type, OK);
  out.text.assign(r.sarg(0) == OK ? "osiris" : "osiris-unknown");
  out.arg[1] = r.sarg(0) == OK ? r.arg[1] : 0;
  out.arg[2] = live;
  return out;
}

std::optional<Message> Pm::do_procstat(const Message& m) {
  const std::size_t i = slot_of_pid(MsgView(m).i32(0));
  if (i == kNpos) return make_reply(m.type, E_SRCH);
  Message r = make_reply(m.type, OK);
  r.arg[1] = static_cast<std::uint64_t>(st().procs.at(i).state);
  r.arg[2] = static_cast<std::uint64_t>(st().procs.at(i).parent);
  return r;
}

std::optional<Message> Pm::do_kill_ep(const Message& m) {
  FI_BLOCK("pm");
  // Reconciliation kill from the recovery engine (SVII): tear down the
  // process owning the endpoint, exactly like an external SIGKILL.
  const std::size_t i = slot_of_ep(MsgView(m).i32(0));
  if (i == kNpos) return std::nullopt;  // already gone
  seep_send(kernel::Endpoint{st().procs.at(i).client_ep},
            encode(PM_SIG_NOTIFY | kernel::kNotifyBit, 1ULL << kSigKill));
  terminate_proc(i, -static_cast<std::int64_t>(kSigKill));
  return std::nullopt;
}

std::optional<Message> Pm::ignore_ds_note(const Message&) {
  return std::nullopt;  // informational: PM re-queries DS lazily
}

std::optional<Message> Pm::do_fork(const Message& m) {
  FI_BLOCK("pm");
  const std::size_t parent_slot = slot_of_ep(m.sender.value);
  if (parent_slot == kNpos) return make_reply(m.type, E_SRCH);

  const std::size_t child_slot = st().procs.alloc();
  if (child_slot == kNpos) return make_reply(m.type, E_AGAIN);

  const std::int32_t parent_pid = st().procs.at(parent_slot).pid;
  const auto child_pid = static_cast<std::int32_t>(FI_VALUE("pm", st().next_pid.get()));

  // Fan-out: create the kernel slot, duplicate the address space, then the
  // fd table (VM's page mappings require the kernel slot to exist). Each of
  // these is a state-modifying SEEP: the recovery window closes at the
  // first one under both OSIRIS policies.
  Message sys_r = seep_call(kSysEp, encode(SYS_FORK, parent_pid, child_pid));
  FI_BLOCK("pm");
  // PM just drew a fresh pid: the kernel refusing the slot means PM's pid
  // allocator and the kernel slot table diverged (only possible after an
  // inconsistent recovery) — fatal.
  SRV_CHECK(sys_r.sarg(0) == OK || sys_r.sarg(0) == kernel::E_CRASH,
            "pm: kernel slot for fresh pid refused (tables out of sync)");
  if (sys_r.sarg(0) != OK) {
    // analyze-suppress(mutate-after-send): compensation on the refusal path —
    // frees only the slot this request allocated; a crash here leaks at most
    // one pid slot and cannot diverge cross-server state (SYS_FORK refused).
    st().procs.free(child_slot);
    return make_reply(m.type, E_AGAIN);
  }
  Message vm_r = seep_call(kernel::kVmEp, encode(VM_FORK_AS, parent_pid, child_pid));
  FI_BLOCK("pm");
  if (vm_r.sarg(0) != OK) {
    seep_call(kSysEp, encode(SYS_EXIT, child_pid));
    st().procs.free(child_slot);
    return make_reply(m.type, vm_r.sarg(0) == kernel::E_CRASH ? E_AGAIN : vm_r.sarg(0));
  }
  Message vfs_r =
      seep_call(kernel::kVfsEp, encode(VFS_PM_FORK, parent_pid, child_pid, m.arg[0]));
  FI_BLOCK("pm");
  if (vfs_r.sarg(0) != OK) {
    seep_call(kernel::kVmEp, encode(VM_EXIT_AS, child_pid));
    seep_call(kSysEp, encode(SYS_EXIT, child_pid));
    st().procs.free(child_slot);
    return make_reply(m.type, E_AGAIN);
  }

  // Commit the pid only now that all three fault domains accepted it: a
  // crash anywhere above leaves next_pid unadvanced, which a rollback-based
  // recovery undoes consistently (a naive restart does not).
  st().next_pid = child_pid + 1;
  auto& child = st().procs.mutate(child_slot);
  child.pid = child_pid;
  child.parent = parent_pid;
  FI_BLOCK("pm");  // mid-mutation: a crash here leaves a half-filled entry
  child.client_ep = static_cast<std::int32_t>(m.arg[0]);
  child.state = ProcState::kRunning;
  FI_BLOCK("pm");
  child.brk = st().procs.at(parent_slot).brk;
  child.uid = st().procs.at(parent_slot).uid;
  child.name = st().procs.at(parent_slot).name;
  st().forks += 1;
  FI_BLOCK("pm");
  // Post-fork audit: pids must stay unique (all of this is past the first
  // state-modifying SEEP, i.e. outside the recovery window).
  int with_pid = 0;
  st().procs.for_each([&](std::size_t, const PmProc& p) {
    FI_BLOCK("pm");
    if (p.pid == child_pid) ++with_pid;
  });
  SRV_CHECK(with_pid == 1, "pm: duplicate pid after fork");
  FI_BLOCK("pm");
  // Parent/child linkage audit.
  const std::size_t pslot2 = slot_of_pid(parent_pid);
  FI_BLOCK("pm");
  SRV_CHECK(pslot2 != kNpos, "pm: parent vanished during fork");
  FI_BLOCK("pm");
  SRV_CHECK(st().procs.at(pslot2).state == ProcState::kRunning,
            "pm: forking parent not running");
  FI_BLOCK("pm");
  // Publish process accounting to the data store. A DS failure here is
  // tolerated: the publication is best-effort telemetry, so an E_CRASH
  // reply after DS recovery is simply ignored (user-transparent recovery).
  (void)seep_call(kernel::kDsEp, encode_text(DS_PUBLISH, "pm.forks", st().forks.get()));
  FI_BLOCK("pm");
  return make_reply(m.type, child_pid);
}

bool Pm::deliver_to_waiter(std::size_t parent_slot, std::size_t child_slot) {
  const PmProc& parent = st().procs.at(parent_slot);
  const PmProc& child = st().procs.at(child_slot);
  if (parent.state != ProcState::kWaiting) return false;
  if (parent.wait_target != 0 && parent.wait_target != child.pid) return false;

  Message r = make_reply(PM_WAIT, child.pid);
  r.arg[1] = static_cast<std::uint64_t>(child.exit_status);
  // Mid-request wake-up of a third party: a state-modifying deferred reply.
  seep_deferred_reply(kernel::Endpoint{parent.client_ep}, r);
  st().procs.mutate(parent_slot).state = ProcState::kRunning;
  st().procs.free(child_slot);
  return true;
}

void Pm::terminate_proc(std::size_t slot, std::int64_t status) {
  const std::int32_t pid = st().procs.at(slot).pid;
  FI_BLOCK("pm");

  // Release resources in the other fault domains.
  seep_call(kernel::kVmEp, encode(VM_EXIT_AS, pid));
  FI_BLOCK("pm");
  seep_call(kernel::kVfsEp, encode(VFS_PM_EXIT, pid));
  seep_call(kSysEp, encode(SYS_EXIT, pid));

  // Reparent children to init (pid 1).
  st().procs.for_each([&](std::size_t i, const PmProc& p) {
    if (p.parent == pid && i != slot) {
      FI_BLOCK("pm");  // mid-mutation: partial reparenting on crash
      // analyze-suppress(mutate-after-send): exit teardown is deliberately
      // ordered kernel-first (VFS/SYS informed before PM commits); reparenting
      // is idempotent, so a post-close crash replays to the same state.
      st().procs.mutate(i).parent = 1;
    }
  });
  FI_BLOCK("pm");

  auto& p = st().procs.mutate(slot);
  p.state = ProcState::kZombie;
  p.exit_status = status;
  st().exits += 1;
  FI_BLOCK("pm");

  // Wake a waiting parent, or signal kSigChld if a handler is installed.
  const std::size_t parent_slot = slot_of_pid(p.parent);
  if (parent_slot != kNpos) {
    if (!deliver_to_waiter(parent_slot, slot)) {
      const PmProc& parent = st().procs.at(parent_slot);
      if ((parent.handled_sigs & (1ULL << kSigChld)) != 0) {
        st().procs.mutate(parent_slot).pending_sigs |= (1ULL << kSigChld);
        seep_send(kernel::Endpoint{parent.client_ep},
                  encode(PM_SIG_NOTIFY | kernel::kNotifyBit, 1ULL << kSigChld));
        st().signals_sent += 1;
      }
    }
  } else {
    // No parent: reap immediately.
    st().procs.free(slot);
  }
}

std::optional<Message> Pm::do_exit(const Message& m) {
  FI_BLOCK("pm");
  const std::size_t slot = slot_of_ep(m.sender.value);
  if (slot == kNpos) return make_reply(m.type, E_SRCH);
  terminate_proc(slot, m.sarg(0));
  FI_BLOCK("pm");
  // Exit epilogue: no runnable process may still claim the dead endpoint.
  const std::int32_t ep = m.sender.value;
  std::size_t claims = 0;
  st().procs.for_each([&](std::size_t, const PmProc& p) {
    if (p.client_ep == ep && p.state == ProcState::kRunning) ++claims;
  });
  FI_BLOCK("pm");
  SRV_CHECK(claims == 0, "pm: endpoint still live after exit");
  FI_BLOCK("pm");
  return make_reply(m.type, OK);
}

std::optional<Message> Pm::do_wait(const Message& m) {
  FI_BLOCK("pm");
  const std::size_t slot = slot_of_ep(m.sender.value);
  if (slot == kNpos) return make_reply(m.type, E_SRCH);
  const std::int32_t self_pid = st().procs.at(slot).pid;
  const auto target = static_cast<std::int32_t>(FI_VALUE("pm", m.sarg(0)));

  // A ready zombie?
  bool have_children = false;
  std::size_t zombie = kNpos;
  st().procs.for_each([&](std::size_t i, const PmProc& p) {
    if (p.parent != self_pid) return;
    if (target != 0 && p.pid != target) return;
    have_children = true;
    if (p.state == ProcState::kZombie && zombie == kNpos) zombie = i;
  });
  if (!FI_BRANCH("pm", have_children)) return make_reply(m.type, E_CHILD);
  if (zombie != kNpos) {
    Message r = make_reply(m.type, st().procs.at(zombie).pid);
    r.arg[1] = static_cast<std::uint64_t>(st().procs.at(zombie).exit_status);
    st().procs.free(zombie);
    return r;
  }

  // Postpone the reply until a child exits (Figure 1's deferred reply).
  auto& p = st().procs.mutate(slot);
  p.state = ProcState::kWaiting;
  p.wait_target = target;
  return std::nullopt;
}

std::optional<Message> Pm::do_kill(const Message& m) {
  FI_BLOCK("pm");
  const auto pid = static_cast<std::int32_t>(m.sarg(0));
  const std::uint64_t sig = FI_VALUE("pm", m.arg[1]);
  if (sig == 0 || sig >= 64) return make_reply(m.type, E_INVAL);
  const std::size_t slot = slot_of_pid(pid);
  if (slot == kNpos || st().procs.at(slot).state == ProcState::kZombie) {
    return make_reply(m.type, E_SRCH);
  }
  st().signals_sent += 1;

  FI_BLOCK("pm");
  if (sig == kSigKill) {
    FI_BLOCK("pm");
    // Forced termination: notify the victim's user context, then tear down.
    const std::int32_t victim_ep = st().procs.at(slot).client_ep;
    seep_send(kernel::Endpoint{victim_ep},
              encode(PM_SIG_NOTIFY | kernel::kNotifyBit, 1ULL << kSigKill));
    terminate_proc(slot, -static_cast<std::int64_t>(kSigKill));
    return make_reply(m.type, OK);
  }

  auto& p = st().procs.mutate(slot);
  p.pending_sigs |= (1ULL << sig);
  if ((p.handled_sigs & (1ULL << sig)) != 0) {
    seep_send(kernel::Endpoint{p.client_ep},
              encode(PM_SIG_NOTIFY | kernel::kNotifyBit, 1ULL << sig));
  }
  return make_reply(m.type, OK);
}

std::optional<Message> Pm::do_exec(const Message& m) {
  FI_BLOCK("pm");
  const std::size_t slot = slot_of_ep(m.sender.value);
  if (slot == kNpos) return make_reply(m.type, E_SRCH);
  if (m.text.empty()) return make_reply(m.type, E_INVAL);

  const std::size_t pe = st().pending_execs.alloc();
  if (pe == kNpos) return make_reply(m.type, E_AGAIN);
  auto& pending = st().pending_execs.mutate(pe);
  pending.active = true;
  pending.pid = st().procs.at(slot).pid;
  pending.requester_ep = m.sender.value;
  pending.path.assign(m.text.view());

  // Asynchronous binary check: VFS may need the disk, so PM must not block.
  // The reply re-enters PM's request loop as a message (do_exec_reply).
  Message check = encode_text(VFS_PM_EXEC, m.text.view());
  check.arg[1] = static_cast<std::uint64_t>(st().procs.at(slot).pid);  // correlation
  seep_send(kernel::kVfsEp, check);
  FI_BLOCK("pm");
  return std::nullopt;
}

std::optional<Message> Pm::do_exec_reply(const Message& m) {
  FI_BLOCK("pm");
  const auto pid = static_cast<std::int32_t>(m.arg[1]);
  const std::size_t pe = st().pending_execs.find(
      [pid](const PmPendingExec& e) { return e.active && e.pid == pid; });
  if (pe == kNpos) return std::nullopt;  // stale reply (e.g. after recovery)
  const PmPendingExec pending = st().pending_execs.at(pe);
  st().pending_execs.free(pe);

  const auto requester = kernel::Endpoint{pending.requester_ep};
  if (m.sarg(0) != OK) {
    seep_deferred_reply(requester, make_reply(PM_EXEC, m.sarg(0)));
    return std::nullopt;
  }
  const std::size_t slot = slot_of_pid(pid);
  if (slot == kNpos) return std::nullopt;  // process died meanwhile

  Message vm_r = seep_call(kernel::kVmEp, encode(VM_EXEC_AS, pid, /*image pages=*/2));
  FI_BLOCK("pm");
  if (vm_r.sarg(0) != OK) {
    seep_deferred_reply(requester, make_reply(PM_EXEC, vm_r.sarg(0)));
    return std::nullopt;
  }
  auto& p = st().procs.mutate(slot);
  p.name.assign(pending.path.view());
  p.brk = 0x10000;
  seep_deferred_reply(requester, make_reply(PM_EXEC, OK));
  return std::nullopt;
}

std::optional<Message> Pm::do_brk(const Message& m) {
  FI_BLOCK("pm");
  const std::size_t slot = slot_of_ep(m.sender.value);
  if (slot == kNpos) return make_reply(m.type, E_SRCH);
  const std::int32_t pid = st().procs.at(slot).pid;
  const std::uint64_t want = FI_VALUE("pm", m.arg[0]);

  Message vm_r = seep_call(kernel::kVmEp, encode(VM_BRK_AS, pid, want));
  FI_BLOCK("pm");
  if (vm_r.sarg(0) < 0) return make_reply(m.type, vm_r.sarg(0));
  // analyze-suppress(mutate-after-send): records VM's committed break value
  // from the reply — VM is authoritative, so replaying VM_BRK_AS after a
  // post-close crash re-derives the identical value (idempotent commit).
  st().procs.mutate(slot).brk = vm_r.arg[1];
  Message r = make_reply(m.type, OK);
  r.arg[1] = vm_r.arg[1];
  return r;
}

}  // namespace osiris::servers
