// System-wide IPC protocol. The message types themselves — together with
// their owning server, SEEP classification and arg/text schema — live in the
// declarative spec table in servers/msg_spec.hpp; this header adds the
// protocol-adjacent constants that are not per-message rows.
//
// Conventions
// -----------
//   request arg/text layout is documented per spec row in msg_spec.hpp;
//   replies carry status in arg[0] (>= 0 result, < 0 kernel::Errno).
#pragma once

#include <cstdint>

#include "kernel/endpoint.hpp"
#include "seep/seep.hpp"
#include "servers/msg_spec.hpp"

namespace osiris::servers {

/// System-wide process-table capacity (shared by PM, VM, VFS and SYS).
inline constexpr std::size_t kMaxProcs = 64;

// File open flags (arg0 of VFS_OPEN).
enum OpenFlags : std::uint64_t {
  O_RDONLY = 0x0,
  O_WRONLY = 0x1,
  O_RDWR = 0x2,
  O_CREAT = 0x40,
  O_TRUNC = 0x200,
  O_APPEND = 0x400,
};

/// Endpoint of the SYS kernel task (registered as a server in the simulator).
inline constexpr kernel::Endpoint kSysEp{6};

/// Signals.
enum Signal : std::uint64_t {
  kSigKill = 9,
  kSigTerm = 15,
  kSigUsr1 = 10,
  kSigUsr2 = 12,
  kSigChld = 17,
};

/// Build the system-wide static SEEP classification — the artifact the
/// paper's compiler pass produces — as a pure derivation from kMsgSpecTable.
seep::Classification build_classification();

}  // namespace osiris::servers
