// System-wide IPC protocol: message types of every server, and the static
// SEEP classification over them (the table the paper's LLVM pass engraves
// onto outbound call sites).
//
// Conventions
// -----------
//   request arg/text layout is documented per message below;
//   replies carry status in arg[0] (>= 0 result, < 0 kernel::Errno).
#pragma once

#include <cstdint>

#include "kernel/endpoint.hpp"
#include "seep/seep.hpp"

namespace osiris::servers {

/// System-wide process-table capacity (shared by PM, VM, VFS and SYS).
inline constexpr std::size_t kMaxProcs = 64;

// --- PM: Process Manager ---------------------------------------------------
enum PmMsg : std::uint32_t {
  PM_FORK = 0x101,        // arg0=child client endpoint -> reply arg0=child pid
  PM_EXIT = 0x102,        // arg0=exit status
  PM_WAIT = 0x103,        // arg0=pid or 0=any -> reply arg0=pid, arg1=status
  PM_GETPID = 0x104,      // -> reply arg0=pid
  PM_GETPPID = 0x105,     // -> reply arg0=ppid
  PM_KILL = 0x106,        // arg0=pid, arg1=signal
  PM_EXEC = 0x107,        // text=path
  PM_BRK = 0x108,         // arg0=new break -> reply arg0=break
  PM_SIGACTION = 0x109,   // arg0=signal, arg1=handler id (0 = default)
  PM_SIGPENDING = 0x10a,  // -> reply arg0=pending mask
  PM_TIMES = 0x10b,       // -> reply arg0=user ticks, arg1=sys ticks
  PM_GETMEMINFO = 0x10c,  // -> reply arg0=free pages, arg1=total pages
  PM_UNAME = 0x10d,       // -> reply text=system name
  PM_GETUID = 0x10e,      // -> reply arg0=uid
  PM_SETUID = 0x10f,      // arg0=uid
  PM_PROCSTAT = 0x110,    // arg0=pid -> reply arg0=state, arg1=parent pid
  PM_SIG_NOTIFY = 0x150,  // notify PM -> user: arg0=signal mask
  PM_KILL_EP = 0x151,     // RCB -> PM: terminate the process owning endpoint arg0
};

// --- VFS: Virtual Filesystem Server ---------------------------------------
enum VfsMsg : std::uint32_t {
  VFS_OPEN = 0x201,     // text=path, arg0=flags (O_*) -> reply arg0=fd
  VFS_CLOSE = 0x202,    // arg0=fd
  VFS_READ = 0x203,     // arg0=fd, arg1=grant, arg2=len -> reply arg0=n
  VFS_WRITE = 0x204,    // arg0=fd, arg1=grant, arg2=len -> reply arg0=n
  VFS_LSEEK = 0x205,    // arg0=fd, arg1=offset, arg2=whence -> reply arg0=pos
  VFS_STAT = 0x206,     // text=path -> reply arg0=size, arg1=type, arg2=nlinks
  VFS_FSTAT = 0x207,    // arg0=fd -> reply arg0=size, arg1=type, arg2=pos
  VFS_UNLINK = 0x208,   // text=path
  VFS_MKDIR = 0x209,    // text=path
  VFS_RMDIR = 0x20a,    // text=path
  VFS_RENAME = 0x20b,   // text=path ("old:new" in one directory)
  VFS_READDIR = 0x20c,  // text=path, arg0=index -> reply text=name, arg1=ino
  VFS_PIPE = 0x20d,     // -> reply arg0=read fd, arg1=write fd
  VFS_DUP = 0x20e,      // arg0=fd -> reply arg0=new fd
  VFS_TRUNC = 0x20f,    // text=path, arg0=new size
  VFS_SYNC = 0x210,     //
  VFS_ACCESS = 0x211,   // text=path -> reply OK / E_NOENT

  VFS_PM_FORK = 0x220,  // PM->VFS: arg0=parent pid, arg1=child pid
  VFS_PM_EXIT = 0x221,  // PM->VFS: arg0=pid
  VFS_PM_EXEC = 0x222,  // PM->VFS: text=path (check binary exists; read-only)

  VFS_DEV_DONE = 0x230,  // notify: disk completion, arg0=op token
};

// File open flags (arg0 of VFS_OPEN).
enum OpenFlags : std::uint64_t {
  O_RDONLY = 0x0,
  O_WRONLY = 0x1,
  O_RDWR = 0x2,
  O_CREAT = 0x40,
  O_TRUNC = 0x200,
  O_APPEND = 0x400,
};

// --- VM: Virtual Memory Manager --------------------------------------------
enum VmMsg : std::uint32_t {
  VM_MMAP = 0x301,     // arg0=pid, arg1=length -> reply arg0=region id
  VM_MUNMAP = 0x302,   // arg0=pid, arg1=region id
  VM_BRK_AS = 0x303,   // arg0=pid, arg1=new break -> reply arg0=break
  VM_FORK_AS = 0x304,  // arg0=parent pid, arg1=child pid
  VM_EXIT_AS = 0x305,  // arg0=pid
  VM_EXEC_AS = 0x306,  // arg0=pid, arg1=image pages
  VM_INFO = 0x307,     // -> reply arg0=free pages, arg1=total pages
};

// --- DS: Data Store ---------------------------------------------------------
enum DsMsg : std::uint32_t {
  DS_PUBLISH = 0x401,    // text=key, arg0=value
  DS_RETRIEVE = 0x402,   // text=key -> reply arg0=value
  DS_DELETE = 0x403,     // text=key
  DS_SUBSCRIBE = 0x404,  // text=key prefix
  DS_CHECK = 0x405,      // -> reply arg0=#pending events, text=last key
  DS_SNAPSHOT = 0x406,   // -> reply arg0=#entries

  DS_NOTIFY_SUB = 0x410,  // notify DS -> subscriber: a matching key changed
};

// --- RS: Recovery Server -----------------------------------------------------
enum RsMsg : std::uint32_t {
  RS_STATUS = 0x501,  // arg0=endpoint -> reply arg0=restart count
  RS_PING = 0x510,    // notify RS -> server (heartbeat)
  RS_PONG = 0x511,    // notify server -> RS
  RS_SWEEP = 0x520,   // notify (clock -> RS): run the heartbeat sweep
  RS_PARK = 0x521,    // RCB -> RS: arg0=endpoint arg1=cooldown arg2=rung;
                      // component quarantined, schedule its readmission
  RS_READMIT = 0x522, // RCB -> RS: arg0=endpoint; quarantine lifted
};

// --- SYS: kernel task (privileged operations, part of the RCB) --------------
enum SysMsg : std::uint32_t {
  SYS_FORK = 0x601,     // arg0=parent pid, arg1=child pid
  SYS_EXIT = 0x602,     // arg0=pid
  SYS_MAP = 0x603,      // arg0=pid, arg1=page, arg2=frame
  SYS_UNMAP = 0x604,    // arg0=pid, arg1=page
  SYS_GETINFO = 0x605,  // arg0=what -> reply arg0=value
  SYS_TIMES = 0x606,    // -> reply arg0=uptime ticks
  SYS_PRIV = 0x607,     // arg0=pid, arg1=privilege flags
};

/// Endpoint of the SYS kernel task (registered as a server in the simulator).
inline constexpr kernel::Endpoint kSysEp{6};

/// Signals.
enum Signal : std::uint64_t {
  kSigKill = 9,
  kSigTerm = 15,
  kSigUsr1 = 10,
  kSigUsr2 = 12,
  kSigChld = 17,
};

/// Build the system-wide static SEEP classification — the artifact the
/// paper's compiler pass produces. See servers/protocol.cpp for the
/// per-message rationale.
seep::Classification build_classification();

}  // namespace osiris::servers
