// VM: the Virtual Memory Manager.
//
// Owns the physical page frame pool and per-process address spaces (heap
// break, mmap regions). All frame-count bookkeeping is mirrored to the
// kernel task through batched SYS_MAP/SYS_UNMAP SEEPs, which are
// state-modifying and therefore close VM's recovery window under *both*
// OSIRIS policies — the reason VM's recovery coverage is identical in the
// pessimistic and enhanced columns of Table I.
//
// VM also carries by far the largest data section of the five servers: the
// frame-ownership map. Its pre-allocated spare clone dominates the "+clone"
// column of Table VI, exactly like the paper's VM (42 MB of 50 MB total).
#pragma once

#include "ckpt/cell.hpp"
#include "servers/server_base.hpp"

namespace osiris::servers {

inline constexpr std::uint32_t kTotalFrames = 16384;  // 64 MiB of 4 KiB pages
inline constexpr std::uint32_t kPageSize = 4096;
inline constexpr std::size_t kMaxRegions = 8;

struct VmRegion {
  std::uint32_t id = 0;  // 0 = free slot
  std::uint32_t pages = 0;
};

struct VmAddrSpace {
  std::int32_t pid = 0;
  std::uint32_t image_pages = 0;  // text+data of the program image
  std::uint32_t heap_pages = 0;
  std::uint64_t brk = 0x10000;
  VmRegion regions[kMaxRegions];
};

struct VmState {
  ckpt::Table<VmAddrSpace, kMaxProcs> spaces;
  /// Frame ownership: pid per frame, 0 = free. This large array is what
  /// makes VM's clone (and undo-log) footprint dominate Table VI.
  ckpt::Array<std::int32_t, kTotalFrames> frame_owner;
  ckpt::Cell<std::uint32_t> free_frames;
  ckpt::Cell<std::uint32_t> next_region_id;
  ckpt::Cell<std::uint64_t> allocs;
  ckpt::Cell<std::uint64_t> frees;
};

class Vm final : public ServerBase<VmState> {
 public:
  Vm(kernel::Kernel& kernel, const seep::Classification& classification, seep::Policy policy,
     ckpt::Mode mode)
      : ServerBase(kernel, kernel::kVmEp, "vm", classification, policy, mode) {
    init_state();
    register_handlers();
  }

  /// Boot: give the init process an address space.
  void register_boot_proc(std::int32_t pid);

  [[nodiscard]] std::uint32_t free_frames() const { return st().free_frames; }

  /// The spare VM clone pre-allocates a frame-management arena so recovery
  /// never allocates through the (defunct) VM itself (paper SVI-D).
  [[nodiscard]] std::size_t recovery_arena_bytes() const override {
    return static_cast<std::size_t>(kTotalFrames) * 16;  // per-frame recovery metadata
  }

 protected:
  void on_message(const kernel::Message& m) override;
  void init_state() override;

 private:
  void register_handlers();

  std::size_t space_of(std::int32_t pid) const;

  /// Claim `n` frames for `pid`; returns false (no partial claim) if the
  /// pool is too small.
  bool claim_frames(std::int32_t pid, std::uint32_t n);
  /// Release up to `n` frames owned by `pid` (all of them if n is huge).
  std::uint32_t release_frames(std::int32_t pid, std::uint32_t n);

  std::optional<kernel::Message> do_fork_as(const kernel::Message& m);
  std::optional<kernel::Message> do_exit_as(const kernel::Message& m);
  std::optional<kernel::Message> do_exec_as(const kernel::Message& m);
  std::optional<kernel::Message> do_brk_as(const kernel::Message& m);
  std::optional<kernel::Message> do_mmap(const kernel::Message& m);
  std::optional<kernel::Message> do_munmap(const kernel::Message& m);
  std::optional<kernel::Message> do_info(const kernel::Message& m);
};

}  // namespace osiris::servers
