#include "servers/vm.hpp"

namespace osiris::servers {

using kernel::E_INVAL;
using kernel::E_NOMEM;
using kernel::E_SRCH;
using kernel::make_reply;
using kernel::Message;
using kernel::OK;

namespace {
constexpr auto kNpos = decltype(VmState{}.spaces)::npos;
}

void Vm::init_state() {
  st().free_frames = kTotalFrames;
  st().next_region_id = 1;
}

void Vm::register_boot_proc(std::int32_t pid) {
  const std::size_t i = st().spaces.alloc();
  OSIRIS_ASSERT(i != kNpos);
  auto& as = st().spaces.mutate(i);
  as.pid = pid;
  as.image_pages = 2;
  const bool ok = claim_frames(pid, as.image_pages);
  OSIRIS_ASSERT(ok);
}

std::size_t Vm::space_of(std::int32_t pid) const {
  return st().spaces.find([pid](const VmAddrSpace& a) { return a.pid == pid; });
}

bool Vm::claim_frames(std::int32_t pid, std::uint32_t n) {
  if (n == 0) return true;
  SRV_CHECK(st().free_frames <= kTotalFrames, "vm: frame accounting corrupt");
  if (st().free_frames < n) return false;
  std::uint32_t claimed = 0;
  for (std::uint32_t f = 0; f < kTotalFrames && claimed < n; ++f) {
    if (st().frame_owner.at(f) == 0) {
      if (claimed % 8 == 4) FI_BLOCK("vm");  // mid-mutation fault candidates
      st().frame_owner.set(f, pid);
      ++claimed;
    }
  }
  SRV_CHECK(claimed == n, "vm: frame pool vs free count mismatch");
  st().free_frames -= n;
  st().allocs += n;
  return true;
}

std::uint32_t Vm::release_frames(std::int32_t pid, std::uint32_t n) {
  std::uint32_t released = 0;
  for (std::uint32_t f = 0; f < kTotalFrames && released < n; ++f) {
    if (st().frame_owner.at(f) == pid) {
      if (released % 8 == 4) FI_BLOCK("vm");  // mid-mutation fault candidates
      // analyze-suppress(mutate-after-send): frame release runs after the
      // kernel mapping update by design (the kernel map is authoritative);
      // the ownership sweep is idempotent, so post-close replay converges.
      st().frame_owner.set(f, 0);
      ++released;
    }
  }
  st().free_frames += released;
  st().frees += released;
  SRV_CHECK(st().free_frames <= kTotalFrames, "vm: freed more frames than exist");
  return released;
}

void Vm::register_handlers() {
  on(VM_FORK_AS, &Vm::do_fork_as);
  on(VM_EXIT_AS, &Vm::do_exit_as);
  on(VM_EXEC_AS, &Vm::do_exec_as);
  on(VM_BRK_AS, &Vm::do_brk_as);
  on(VM_MMAP, &Vm::do_mmap);
  on(VM_MUNMAP, &Vm::do_munmap);
  on(VM_INFO, &Vm::do_info);
}

void Vm::on_message(const Message&) { FI_BLOCK("vm"); }

std::optional<Message> Vm::do_info(const Message& m) {
  FI_BLOCK("vm");
  Message r = make_reply(m.type, OK);
  r.arg[1] = st().free_frames;
  r.arg[2] = kTotalFrames;
  return r;
}

std::optional<Message> Vm::do_fork_as(const Message& m) {
  FI_BLOCK("vm");
  const MsgView v(m);
  const std::int32_t parent = v.i32(0);
  const std::int32_t child = v.i32(1);
  const std::size_t ps = space_of(parent);
  // PM only forks processes it knows; a missing parent space or an existing
  // child space means the VM and PM tables diverged (possible only after an
  // inconsistent recovery) — that is a fatal invariant violation.
  SRV_CHECK(ps != kNpos, "vm: fork for unknown parent (tables out of sync)");
  SRV_CHECK(space_of(child) == kNpos, "vm: fork child already exists (tables out of sync)");

  const VmAddrSpace snapshot = st().spaces.at(ps);
  const auto need = static_cast<std::uint32_t>(
      FI_VALUE("vm", snapshot.image_pages + snapshot.heap_pages));
  if (!FI_BRANCH("vm", claim_frames(child, need))) return make_reply(m.type, E_NOMEM);

  const std::size_t cs = st().spaces.alloc();
  if (cs == kNpos) {
    release_frames(child, need);
    return make_reply(m.type, E_NOMEM);
  }
  auto& as = st().spaces.mutate(cs);
  as = snapshot;
  as.pid = child;
  for (auto& r : as.regions) r = VmRegion{};  // mmap regions are not inherited

  // Mirror the new mappings into the kernel's page tables (batched).
  // State-modifying SEEP: closes the window under both policies.
  Message sys_r = seep_call(kSysEp, encode(SYS_MAP, child, 0, need));
  FI_BLOCK("vm");
  SRV_CHECK(sys_r.sarg(0) == OK, "vm: kernel map failed on fork");
  // Post-fork frame audit (outside the window: the SYS_MAP SEEP closed it).
  std::uint32_t owned = 0;
  for (std::uint32_t f = 0; f < kTotalFrames && owned < need; ++f) {
    if (st().frame_owner.at(f) == child) ++owned;
  }
  FI_BLOCK("vm");
  SRV_CHECK(owned == need, "vm: child frame count wrong after fork");
  FI_BLOCK("vm");
  SRV_CHECK(st().spaces.at(cs).pid == child, "vm: child space pid mismatch");
  FI_BLOCK("vm");
  // analyze-suppress(mutate-after-send): semantic no-op (+= 0) kept as an
  // undo-log audit barrier for the fault-injection probes around it.
  st().allocs += 0;  // accounting barrier
  FI_BLOCK("vm");
  return make_reply(m.type, OK);
}

std::optional<Message> Vm::do_exit_as(const Message& m) {
  FI_BLOCK("vm");
  const std::int32_t pid = MsgView(m).i32(0);
  const std::size_t s = space_of(pid);
  SRV_CHECK(s != kNpos, "vm: exit for unknown process (tables out of sync)");
  const std::uint32_t released = release_frames(pid, kTotalFrames);
  st().spaces.free(s);
  Message sys_r = seep_call(kSysEp, encode(SYS_UNMAP, pid, 0, released));
  FI_BLOCK("vm");
  SRV_CHECK(sys_r.sarg(0) == OK || sys_r.sarg(0) == E_SRCH, "vm: kernel unmap failed on exit");
  FI_BLOCK("vm");
  SRV_CHECK(space_of(pid) == kNpos, "vm: space survived exit");
  FI_BLOCK("vm");
  return make_reply(m.type, OK);
}

std::optional<Message> Vm::do_exec_as(const Message& m) {
  FI_BLOCK("vm");
  const MsgView v(m);
  const std::int32_t pid = v.i32(0);
  const auto image_pages = static_cast<std::uint32_t>(v.u(1));
  if (image_pages == 0 || image_pages > 1024) return make_reply(m.type, E_INVAL);
  const std::size_t s = space_of(pid);
  SRV_CHECK(s != kNpos, "vm: exec for unknown process (tables out of sync)");

  // Throw away the old image, load the new one.
  const std::uint32_t released = release_frames(pid, kTotalFrames);
  if (!claim_frames(pid, image_pages)) {
    st().spaces.free(s);
    return make_reply(m.type, E_NOMEM);
  }
  auto& as = st().spaces.mutate(s);
  as.image_pages = image_pages;
  as.heap_pages = 0;
  as.brk = 0x10000;
  for (auto& r : as.regions) r = VmRegion{};

  Message sys_r = seep_call(
      kSysEp, encode(SYS_UNMAP, pid, 0, released));
  SRV_CHECK(sys_r.sarg(0) == OK, "vm: kernel unmap failed on exec");
  sys_r = seep_call(kSysEp, encode(SYS_MAP, pid, 0, image_pages));
  FI_BLOCK("vm");
  SRV_CHECK(sys_r.sarg(0) == OK, "vm: kernel map failed on exec");
  return make_reply(m.type, OK);
}

std::optional<Message> Vm::do_brk_as(const Message& m) {
  FI_BLOCK("vm");
  const MsgView v(m);
  const std::int32_t pid = v.i32(0);
  const std::uint64_t want = v.u(1);
  const std::size_t s = space_of(pid);
  SRV_CHECK(s != kNpos, "vm: brk for unknown process (tables out of sync)");
  const VmAddrSpace& as = st().spaces.at(s);
  if (want < 0x10000) return make_reply(m.type, E_INVAL);

  const auto want_pages =
      static_cast<std::uint32_t>(FI_VALUE("vm", (want - 0x10000 + kPageSize - 1) / kPageSize));
  Message r = make_reply(m.type, OK);
  if (want_pages > as.heap_pages) {
    const std::uint32_t grow = want_pages - as.heap_pages;
    if (!claim_frames(pid, grow)) return make_reply(m.type, E_NOMEM);
    Message sys_r = seep_call(kSysEp, encode(SYS_MAP, pid, 0, grow));
    SRV_CHECK(sys_r.sarg(0) == OK, "vm: kernel map failed on brk");
  } else if (want_pages < as.heap_pages) {
    const std::uint32_t shrink = as.heap_pages - want_pages;
    release_frames(pid, shrink);
    Message sys_r = seep_call(kSysEp, encode(SYS_UNMAP, pid, 0, shrink));
    SRV_CHECK(sys_r.sarg(0) == OK, "vm: kernel unmap failed on brk");
  }
  auto& mas = st().spaces.mutate(s);
  mas.heap_pages = want_pages;
  mas.brk = want;
  FI_BLOCK("vm");
  r.arg[1] = want;
  return r;
}

std::optional<Message> Vm::do_mmap(const Message& m) {
  FI_BLOCK("vm");
  const MsgView v(m);
  const std::int32_t pid = v.i32(0);
  const std::uint64_t length = v.u(1);
  if (length == 0) return make_reply(m.type, E_INVAL);
  const std::size_t s = space_of(pid);
  if (s == kNpos) return make_reply(m.type, E_SRCH);

  const auto pages = static_cast<std::uint32_t>((length + kPageSize - 1) / kPageSize);
  std::size_t free_region = kMaxRegions;
  for (std::size_t i = 0; i < kMaxRegions; ++i) {
    if (st().spaces.at(s).regions[i].id == 0) {
      free_region = i;
      break;
    }
  }
  if (free_region == kMaxRegions) return make_reply(m.type, E_NOMEM);
  if (!claim_frames(pid, pages)) return make_reply(m.type, E_NOMEM);

  const std::uint32_t id = st().next_region_id;
  st().next_region_id = id + 1;
  auto& as = st().spaces.mutate(s);
  as.regions[free_region] = VmRegion{id, pages};

  Message sys_r = seep_call(kSysEp, encode(SYS_MAP, pid, 0, pages));
  FI_BLOCK("vm");
  SRV_CHECK(sys_r.sarg(0) == OK, "vm: kernel map failed on mmap");
  Message r = make_reply(m.type, OK);
  r.arg[1] = id;
  return r;
}

std::optional<Message> Vm::do_munmap(const Message& m) {
  FI_BLOCK("vm");
  const MsgView v(m);
  const std::int32_t pid = v.i32(0);
  const auto id = static_cast<std::uint32_t>(v.u(1));
  const std::size_t s = space_of(pid);
  if (s == kNpos) return make_reply(m.type, E_SRCH);

  for (std::size_t i = 0; i < kMaxRegions; ++i) {
    const VmRegion region = st().spaces.at(s).regions[i];
    if (region.id == id) {
      release_frames(pid, region.pages);
      st().spaces.mutate(s).regions[i] = VmRegion{};
      Message sys_r = seep_call(kSysEp, encode(SYS_UNMAP, pid, 0, region.pages));
      SRV_CHECK(sys_r.sarg(0) == OK, "vm: kernel unmap failed on munmap");
      return make_reply(m.type, OK);
    }
  }
  return make_reply(m.type, E_INVAL);
}

}  // namespace osiris::servers
