// FOM (fault-tolerant operation machine) request executor core.
//
// Modeled on cortx-motr's reqh/FOM architecture: instead of parking a worker
// fiber for the duration of a slow operation, each in-flight request becomes
// a small state machine that *yields* at declared blocking points and is
// resumed by the completion it was waiting for. One server thereby
// interleaves many requests without threads, and — the part the paper never
// faced — the SEEP window machinery stays live across the wait:
//
//   admit   -> kRunning   window opens as usual at dispatch
//   park    -> kParked    the attempt's undo entries are rolled back to the
//                         admission mark first, so a parked FOM owns ZERO
//                         live undo entries (the epoch-occupancy invariant);
//                         then Window::fom_park() suspends the window
//   resume  -> kRunning   Window::fom_resume() re-checkpoints and reopens;
//                         the handler re-runs from scratch against a cache
//                         warmed by the completed read
//   finish  -> gone       reply sent, record retired
//   abort   -> gone       component restarted under the FOM: the executor
//                         reconciles the orphaned requester with E_CRASH
//
// The invariant that makes mid-flight rollback sound: at any instant at most
// ONE request (the currently executing one) has live undo entries, so a full
// undo-log rollback restores a state consistent with every parked request
// simply re-running later. Parked FOMs legitimately survive a rollback
// recovery — their pending disk completions resume them afterwards.
//
// FomCore is deliberately standalone (no kernel/window dependencies) so the
// state-machine lifecycle is unit-testable in isolation; Vfs composes it
// with the window/undo plumbing. All containers are keyed by integer ids —
// never pointers — per the determinism rules.
#pragma once

#include <cstdint>
#include <map>

#include "kernel/message.hpp"
#include "support/clock.hpp"
#include "support/common.hpp"

namespace osiris::servers {

enum class FomState : std::uint8_t {
  kRunning,  // currently executing (at most one FOM at a time)
  kParked,   // waiting on an asynchronous completion; zero live undo entries
};

struct FomRecord {
  std::uint64_t id = 0;
  kernel::Message req{};         // original request, re-run verbatim on resume
  FomState state = FomState::kRunning;
  std::uint32_t retries = 0;     // parks taken by this request so far
  bool resumed = false;          // true once the request re-ran at least once
  Tick parked_at = 0;            // virtual tick of the most recent park
  bool sync_fallback = false;    // retry cap hit: misses go synchronous now
};

struct FomStats {
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t parks = 0;
  std::uint64_t resumes = 0;
  std::uint64_t retries = 0;         // handler re-runs (== resumes that re-ran)
  std::uint64_t aborts = 0;          // FOMs dropped by restart/quarantine
  std::uint64_t sync_fallbacks = 0;  // misses served synchronously (cap/closed window)
  std::uint64_t in_flight_high_water = 0;
  std::uint64_t wait_ticks_total = 0;  // virtual ticks spent parked, summed
};

/// Bookkeeping for every live FOM of one server. Ids are dense and monotonic;
/// the std::map iteration order is therefore admission order, which keeps
/// abort sweeps deterministic.
class FomCore {
 public:
  /// Admit a new request; returns its FOM id.
  std::uint64_t admit(const kernel::Message& req) {
    const std::uint64_t id = next_id_++;
    FomRecord& r = live_[id];
    r.id = id;
    r.req = req;
    ++stats_.admitted;
    if (live_.size() > stats_.in_flight_high_water) {
      stats_.in_flight_high_water = live_.size();
    }
    return id;
  }

  void park(std::uint64_t id, Tick now) {
    FomRecord& r = get(id);
    OSIRIS_ASSERT(r.state == FomState::kRunning);
    r.state = FomState::kParked;
    r.parked_at = now;
    ++r.retries;
    ++stats_.parks;
  }

  void resume(std::uint64_t id, Tick now) {
    FomRecord& r = get(id);
    OSIRIS_ASSERT(r.state == FomState::kParked);
    r.state = FomState::kRunning;
    r.resumed = true;
    stats_.wait_ticks_total += now - r.parked_at;
    ++stats_.resumes;
    ++stats_.retries;
  }

  void finish(std::uint64_t id) {
    OSIRIS_ASSERT(live_.erase(id) == 1);
    ++stats_.completed;
  }

  /// Drop one FOM without completing it (restart/quarantine abort).
  void abort(std::uint64_t id) {
    OSIRIS_ASSERT(live_.erase(id) == 1);
    ++stats_.aborts;
  }

  void note_sync_fallback() { ++stats_.sync_fallbacks; }

  [[nodiscard]] bool contains(std::uint64_t id) const { return live_.count(id) != 0; }
  [[nodiscard]] FomRecord& get(std::uint64_t id) {
    const auto it = live_.find(id);
    OSIRIS_ASSERT(it != live_.end());
    return it->second;
  }
  [[nodiscard]] std::size_t in_flight() const noexcept { return live_.size(); }
  [[nodiscard]] const std::map<std::uint64_t, FomRecord>& live() const noexcept { return live_; }
  [[nodiscard]] const FomStats& stats() const noexcept { return stats_; }

 private:
  std::map<std::uint64_t, FomRecord> live_;  // id -> record, admission-ordered
  std::uint64_t next_id_ = 1;
  FomStats stats_;
};

}  // namespace osiris::servers
