#include "servers/ds.hpp"

#include <array>
#include <span>

namespace osiris::servers {

using kernel::E_INVAL;
using kernel::E_NOENT;
using kernel::E_NOMEM;
using kernel::make_reply;
using kernel::Message;
using kernel::OK;

namespace {
constexpr auto kNpos = decltype(DsState{}.entries)::npos;

/// FNV-1a, the blob tier's key identity: blobs carry a hash instead of the
/// key bytes so lookup is a word compare per slot.
std::uint64_t key_hash_of(std::string_view key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h | 1u;  // 0 marks "never written" in DsBlob
}
}  // namespace

void Ds::boot_subscribe(kernel::Endpoint ep, std::string_view prefix) {
  const std::size_t i = st().subs.alloc();
  OSIRIS_ASSERT(i != decltype(st().subs)::npos);
  auto& sub = st().subs.mutate(i);
  sub.ep = ep.value;
  sub.prefix.assign(prefix);
}

std::size_t Ds::entry_of(std::string_view key) const {
  return st().entries.find([key](const DsEntry& e) { return e.key.view() == key; });
}

void Ds::notify_subscribers(std::string_view key) {
  // Batched fan-out: collect the matching subscribers, then hand the whole
  // set to one SEEP-classified batch send — one classification lookup and
  // one window transition instead of one per subscriber. The kernel still
  // queues and traces each notification, so delivery order matches the old
  // per-subscriber seep_notify loop exactly. Informational notify:
  // non-state-modifying SEEP — under the enhanced policy DS's window stays
  // open across it (Table I's 92.8%).
  std::array<kernel::Endpoint, decltype(DsState{}.subs)::capacity()> targets;
  std::size_t n = 0;
  st().subs.for_each([&](std::size_t, const DsSub& sub) {
    if (key.substr(0, sub.prefix.size()) == sub.prefix.view()) {
      targets[n++] = kernel::Endpoint{sub.ep};
      st().notifications += 1;
    }
  });
  seep_notify_batch(std::span<const kernel::Endpoint>(targets.data(), n), DS_NOTIFY_SUB);
}

std::size_t Ds::blob_of(std::uint64_t hash) const {
  return blobs_->find([hash](const DsBlob& b) { return b.key_hash == hash; });
}

/// Rewrite the key's blob payload in full — the MB+ store the page tier is
/// for: with `ckpt_pages` off this logs a 4 KiB arena record per publish,
/// with it on the same publish dirties one page.
void Ds::blob_publish(std::string_view key, std::uint64_t value) {
  if (blobs_ == nullptr) return;
  const std::uint64_t hash = key_hash_of(key);
  std::size_t i = blob_of(hash);
  if (i == decltype(blobs_)::element_type::npos) {
    i = blobs_->alloc();
    // A full blob table degrades to inline-only entries; the publish itself
    // still succeeds, matching the paper-scale reply semantics.
    if (i == decltype(blobs_)::element_type::npos) return;
  }
  DsBlob& b = blobs_->mutate(i);
  b.key_hash = hash;
  b.len = static_cast<std::uint32_t>(sizeof(b.payload));
  ++b.writes;
  for (std::size_t off = 0; off < sizeof(b.payload); ++off) {
    b.payload[off] = static_cast<std::byte>(
        static_cast<std::uint8_t>(value + off * 131 + key.size()));
  }
}

void Ds::blob_delete(std::string_view key) {
  if (blobs_ == nullptr) return;
  const std::size_t i = blob_of(key_hash_of(key));
  if (i != decltype(blobs_)::element_type::npos) blobs_->free(i);
}

void Ds::register_handlers() {
  on(DS_PUBLISH, &Ds::do_publish);
  on(DS_RETRIEVE, &Ds::do_retrieve);
  on(DS_DELETE, &Ds::do_delete);
  on(DS_SUBSCRIBE, &Ds::do_subscribe);
  on(DS_CHECK, &Ds::do_check);
  on(DS_SNAPSHOT, &Ds::do_snapshot);
}

void Ds::on_message(const Message&) { FI_BLOCK("ds"); }

std::optional<Message> Ds::do_publish(const Message& m) {
  FI_BLOCK("ds");
  const MsgView v(m);
  if (v.text().empty()) return make_reply(m.type, E_INVAL);
  // Subscribers are notified *early*: the rest of the publish path is
  // where the two OSIRIS policies diverge in recoverable surface.
  notify_subscribers(v.text());
  FI_BLOCK("ds");
  std::size_t i = entry_of(v.text());
  if (i == kNpos) {
    i = st().entries.alloc();
    if (!FI_BRANCH("ds", i != kNpos)) return make_reply(m.type, E_NOMEM);
    st().entries.mutate(i).key.assign(v.text());
    FI_BLOCK("ds");  // mid-mutation: key written, value not yet
  }
  st().entries.mutate(i).value = FI_VALUE("ds", v.u(0));
  blob_publish(v.text(), v.u(0));
  st().publishes += 1;
  st().last_changed_key = v.text();
  FI_BLOCK("ds");
  // Post-publish store maintenance: verify key uniqueness and refresh
  // subscriber event counters. Under the pessimistic policy all of this
  // runs after the early notify closed the window (Table I: 47.1% vs
  // 92.8%).
  int dups = 0;
  std::size_t scanned = 0;
  st().entries.for_each([&](std::size_t j, const DsEntry& e) {
    if (++scanned % 4 == 0) FI_BLOCK("ds");
    if (j != i && e.key.view() == v.text()) ++dups;
  });
  SRV_CHECK(dups == 0, "ds: duplicate key after publish");
  st().subs.for_each([&](std::size_t j, const DsSub& sub) {
    if (v.text().substr(0, sub.prefix.size()) == sub.prefix.view()) {
      FI_BLOCK("ds");
      st().subs.mutate(j).events = sub.events + 1;
    }
  });
  FI_BLOCK("ds");
  return make_reply(m.type, OK);
}

std::optional<Message> Ds::do_retrieve(const Message& m) {
  FI_BLOCK("ds");
  const std::size_t i = entry_of(MsgView(m).text());
  if (i == kNpos) return make_reply(m.type, E_NOENT);
  Message r = make_reply(m.type, OK);
  r.arg[1] = st().entries.at(i).value;
  if (blobs_ != nullptr) {
    // Large-state read path: surface the blob's write generation so clients
    // (and the rollback-equivalence tests) can observe blob recovery.
    const std::size_t b = blob_of(key_hash_of(MsgView(m).text()));
    if (b != decltype(blobs_)::element_type::npos) r.arg[2] = blobs_->at(b).writes;
  }
  return r;
}

std::optional<Message> Ds::do_delete(const Message& m) {
  FI_BLOCK("ds");
  const MsgView v(m);
  const std::size_t i = entry_of(v.text());
  if (i == kNpos) return make_reply(m.type, E_NOENT);
  notify_subscribers(v.text());
  st().entries.free(i);
  blob_delete(v.text());
  st().last_changed_key = v.text();
  FI_BLOCK("ds");
  // Post-delete maintenance (outside the window under pessimistic).
  std::size_t live = 0;
  st().entries.for_each([&](std::size_t, const DsEntry&) {
    if (++live % 4 == 0) FI_BLOCK("ds");
  });
  SRV_CHECK(live <= decltype(st().entries)::capacity(), "ds: entry count corrupt");
  return make_reply(m.type, OK);
}

std::optional<Message> Ds::do_subscribe(const Message& m) {
  FI_BLOCK("ds");
  const std::size_t i = st().subs.alloc();
  if (i == kNpos) return make_reply(m.type, E_NOMEM);
  auto& sub = st().subs.mutate(i);
  sub.ep = m.sender.value;
  sub.prefix.assign(MsgView(m).text());
  return make_reply(m.type, OK);
}

std::optional<Message> Ds::do_check(const Message& m) {
  FI_BLOCK("ds");
  std::uint32_t events = 0;
  const std::int32_t ep = m.sender.value;
  st().subs.for_each([&](std::size_t, const DsSub& sub) {
    if (sub.ep == ep) events += sub.events;
  });
  Message r = make_reply(m.type, OK);
  r.arg[1] = events;
  r.text.assign(st().last_changed_key.view());
  return r;
}

std::optional<Message> Ds::do_snapshot(const Message& m) {
  FI_BLOCK("ds");
  Message r = make_reply(m.type, OK);
  r.arg[1] = st().entries.in_use_count();
  r.arg[2] = st().publishes;
  return r;
}

}  // namespace osiris::servers
