// VFS: the Virtual Filesystem Server (multithreaded, paper SV).
//
// VFS owns per-process fd tables, the open-file table, and pipes; path and
// file I/O is delegated to MiniFS over a block cache + asynchronous disk.
// Requests that may touch the disk run on cooperative worker threads
// (cothread fibers): a cache miss suspends the worker, VFS returns without a
// reply, and the disk-completion notification (VFS_DEV_DONE, the simulated
// interrupt) resumes the worker, which finishes and sends a deferred reply.
//
// Recovery-window behaviour (SIV-E):
//  - a worker yielding on disk I/O forcibly closes the window;
//  - filesystem *mutations* (cache write_block) are state changes outside
//    VFS's recoverable data section — the equivalent of a state-modifying
//    SEEP to the FS/driver domain — and close the window under both
//    policies. Reads are window-preserving.
// Both closers are policy-independent, which is why VFS's recovery coverage
// is identical in the pessimistic and enhanced columns of Table I.
//
// After a crash, on_restored() performs the cooperative-thread-library
// fixup the paper describes: the "current thread" variable is repaired and
// the worker that hosted the crashed request is returned to a clean state.
#pragma once

#include <array>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "ckpt/cell.hpp"
#include "ckpt/paged_table.hpp"
#include "cothread/fiber.hpp"
#include "fs/blockdev.hpp"
#include "fs/cache.hpp"
#include "fs/minifs.hpp"
#include "servers/fom.hpp"
#include "servers/server_base.hpp"

namespace osiris::servers {

inline constexpr std::size_t kMaxFds = 16;
inline constexpr std::size_t kMaxFiles = 128;
inline constexpr std::size_t kMaxPipes = 16;
inline constexpr std::size_t kPipeBuf = 4096;
inline constexpr std::size_t kVfsWorkers = 4;
/// FOM livelock guard: after this many parks a single request's remaining
/// misses are served synchronously (cache churn can otherwise evict a warmed
/// block before the retry reaches it).
inline constexpr std::uint32_t kVfsFomMaxRetries = 64;

enum class FileKind : std::uint8_t { kRegular = 1, kPipeRead = 2, kPipeWrite = 3 };

struct VfsFile {
  FileKind kind = FileKind::kRegular;
  fs::Ino ino = fs::kNoIno;
  std::uint32_t pos = 0;
  std::uint32_t flags = 0;
  std::int32_t refcnt = 0;
  std::int32_t pipe = -1;  // index into pipes when kind is a pipe end
};

struct VfsFdTable {
  std::int32_t pid = 0;
  std::int32_t ep = -1;          // client endpoint of the owning process
  std::int32_t fds[kMaxFds];     // open-file table index, -1 = free
};

/// A blocked pipe reader or writer waiting for data/space.
struct VfsPipeWaiter {
  bool blocked = false;
  std::int32_t requester_ep = -1;
  std::uint64_t grant = 0;
  std::uint32_t len = 0;
  std::uint32_t msgtype = 0;
};

struct VfsPipe {
  std::uint32_t rpos = 0;  // read cursor into the pipe data region
  std::uint32_t used = 0;
  std::uint8_t readers = 0;
  std::uint8_t writers = 0;
  VfsPipeWaiter rwait;
  VfsPipeWaiter wwait;
};

/// One record of VFS's MB+ op journal (DESIGN.md §17): an audit ring of
/// every dispatched request, written through the checkpoint stack so it
/// rolls back and restarts consistently with the state it describes. Lives
/// OUTSIDE VfsState — inline growth would change the data-section size the
/// golden traces embed. The ring cursor rides in the journal's region
/// header (PagedTable::user_word) for the same reason.
struct VfsOpRecord {
  std::uint32_t type = 0;
  std::int32_t sender = -1;
  std::uint64_t seq = 0;
  std::uint64_t arg0 = 0;
  char text[104]{};
};
static_assert(sizeof(VfsOpRecord) == 128);

struct VfsState {
  ckpt::Table<VfsFdTable, kMaxProcs> procs;
  ckpt::Table<VfsFile, kMaxFiles> files;
  ckpt::Table<VfsPipe, kMaxPipes> pipes;
  /// Pipe payload, kPipeBuf bytes per pipe slot, logged at byte granularity.
  ckpt::Array<std::uint8_t, kMaxPipes * kPipeBuf> pipe_data;
  ckpt::Cell<std::uint64_t> ops;
  ckpt::Cell<std::uint64_t> bytes_read;
  ckpt::Cell<std::uint64_t> bytes_written;
};

class Vfs final : public ServerBase<VfsState> {
 public:
  /// `journal_slots` > 0 grows VFS a heap-backed op-journal ring wired into
  /// the recovery images; `pages.enabled` checkpoints it through the page
  /// tier. Defaults reproduce the paper-scale server bit-for-bit.
  Vfs(kernel::Kernel& kernel, const seep::Classification& classification, seep::Policy policy,
      ckpt::Mode mode, fs::BlockDevice& dev, std::size_t cache_blocks = 64,
      std::size_t journal_slots = 0, const ckpt::PagesConfig& pages = {});
  ~Vfs() override;

  /// Boot: mount the (already formatted) device.
  void mount();

  /// Boot: create the init process's fd table.
  void register_boot_proc(std::int32_t pid, kernel::Endpoint ep);

  void on_restored(bool rolled_back) override;

  [[nodiscard]] bool has_pending_work() const override;
  [[nodiscard]] const fs::CacheStats& cache_stats() const { return cache_.stats(); }

  /// Enable the FOM request executor (OsConfig::vfs_fom). Off by default so
  /// every pre-existing scenario — and every golden trace — is bit-identical.
  /// Call once at boot, before dispatch begins.
  void set_fom_enabled(bool on) noexcept { fom_enabled_ = on; }
  [[nodiscard]] bool fom_enabled() const noexcept { return fom_enabled_; }
  [[nodiscard]] bool can_reconcile_inflight() const override { return fom_enabled_; }
  [[nodiscard]] const FomStats* fom_stats() const override { return &fom_.stats(); }
  [[nodiscard]] const FomCore& fom_core() const noexcept { return fom_; }

 protected:
  void on_message(const kernel::Message& m) override;
  void init_state() override {}

 private:
  void register_handlers();

  void journal_append(const kernel::Message& m);

  struct Worker {
    std::unique_ptr<cothread::Fiber> fiber;
    bool busy = false;
    kernel::Message req;
    std::optional<kernel::Message> reply;
    std::exception_ptr exc;
    std::uint64_t wait_token = 0;
  };

  /// BlockStore over the cache + async device; read misses suspend the
  /// calling worker (closing the recovery window), writes are write-back.
  class CachedStore final : public fs::BlockStore {
   public:
    explicit CachedStore(Vfs& vfs) : vfs_(vfs) {}
    void read_block(std::uint32_t bno, std::span<std::byte, fs::kBlockSize> out) override;
    void write_block(std::uint32_t bno,
                     std::span<const std::byte, fs::kBlockSize> data) override;
    /// Cache hit -> borrowed pointer into the cache (refreshes LRU); miss ->
    /// nullptr, never blocks. Lets MiniFs skip the per-block staging copy.
    const std::byte* peek_block(std::uint32_t bno) override;

   private:
    Vfs& vfs_;
  };

  /// One disk read in flight on behalf of parked FOMs. `staging` is null for
  /// resume-chain entries whose block is already cached.
  struct PendingRead {
    std::uint32_t bno = 0;
    std::shared_ptr<std::array<std::byte, fs::kBlockSize>> staging;
    std::vector<std::uint64_t> waiters;  // FOM ids, park order
  };

  // --- dispatch plumbing -------------------------------------------------
  /// Disk-completion notification (the simulated interrupt).
  std::optional<kernel::Message> do_dev_done(const kernel::Message& m);
  /// Route a disk-touching request to a worker fiber or the FOM executor.
  std::optional<kernel::Message> start_request(const kernel::Message& m);
  // --- FOM executor ------------------------------------------------------
  std::optional<kernel::Message> fom_execute(const kernel::Message& m);
  /// Run (or re-run) FOM `id`'s handler; parks it on a BlockMiss.
  std::optional<kernel::Message> fom_run(std::uint64_t id, bool initial);
  void fom_submit_read(std::uint32_t bno, std::uint64_t id);
  /// Handle a disk completion owned by the executor; false if `token` is
  /// unknown (stale or worker-owned).
  bool fom_dev_done(std::uint64_t token);
  /// READ/WRITE/FSTAT route per fd kind: pipe ends inline, files to a worker.
  std::optional<kernel::Message> do_rw(const kernel::Message& m);
  /// Path/disk operations always run on a worker thread.
  std::optional<kernel::Message> do_worker_op(const kernel::Message& m);
  std::optional<kernel::Message> start_or_queue(const kernel::Message& m);
  /// Resume `w`; returns its reply if the request completed.
  std::optional<kernel::Message> resume_worker(Worker& w);
  void pump_queue();
  void on_dev_done(std::uint64_t token);

  // --- fd helpers --------------------------------------------------------
  std::size_t fdtable_of_ep(std::int32_t ep) const;
  std::size_t fdtable_of_pid(std::int32_t pid) const;
  std::int32_t alloc_fd(std::size_t tbl, std::size_t file_idx);
  /// Open-file index for (sender ep, fd), or npos.
  std::size_t file_of(const kernel::Message& m, std::int64_t* err) const;
  void close_file(std::size_t file_idx);

  // --- inline operations (never touch the disk) ------------------------
  std::optional<kernel::Message> do_pm_fork(const kernel::Message& m);
  std::optional<kernel::Message> do_pm_exit(const kernel::Message& m);
  std::optional<kernel::Message> do_pipe(const kernel::Message& m);
  std::optional<kernel::Message> do_dup(const kernel::Message& m);
  std::optional<kernel::Message> do_close(const kernel::Message& m);
  std::optional<kernel::Message> do_lseek(const kernel::Message& m);
  std::optional<kernel::Message> do_pipe_read(const kernel::Message& m, std::size_t file_idx);
  std::optional<kernel::Message> do_pipe_write(const kernel::Message& m, std::size_t file_idx);

  // --- pipe internals -----------------------------------------------------
  std::uint32_t pipe_copy_in(std::size_t pipe_idx, const std::byte* src, std::uint32_t n);
  std::uint32_t pipe_copy_out(std::size_t pipe_idx, std::byte* dst, std::uint32_t n);
  void wake_blocked_reader(std::size_t pipe_idx);
  void wake_blocked_writer(std::size_t pipe_idx);

  // --- worker-side (may suspend) -----------------------------------------
  kernel::Message run_fs_op(const kernel::Message& m);
  std::int64_t resolve_parent(std::string_view path, fs::Ino* dir,
                              std::string_view* leaf);
  std::int64_t resolve(std::string_view path);  // full path -> ino or error

  kernel::Message fs_open(const kernel::Message& m);
  kernel::Message fs_read(const kernel::Message& m, std::size_t file_idx);
  kernel::Message fs_write(const kernel::Message& m, std::size_t file_idx);
  kernel::Message fs_stat(const kernel::Message& m);
  kernel::Message fs_fstat(const kernel::Message& m, std::size_t file_idx);
  kernel::Message fs_sync(const kernel::Message& m);

  fs::BlockDevice& dev_;
  fs::BlockCache cache_;
  CachedStore store_;
  fs::MiniFs minifs_;
  std::unique_ptr<ckpt::PagedTable<VfsOpRecord>> journal_;  // nullptr = paper scale
  std::vector<Worker> workers_;
  Worker* current_worker_ = nullptr;  // the "current thread variable" (SIV-E)
  std::deque<kernel::Message> backlog_;
  std::uint64_t next_token_ = 1;
  // --- FOM executor state (outside the recoverable data section, like the
  // worker pool: rollback restores VfsState, the executor repairs itself in
  // on_restored) ---------------------------------------------------------
  bool fom_enabled_ = false;
  FomCore fom_;
  std::map<std::uint64_t, PendingRead> pending_reads_;  // token -> read
  std::uint64_t current_fom_ = 0;   // FOM executing right now, 0 = none
  bool current_initial_ = true;     // is the current run a first attempt?
};

}  // namespace osiris::servers
