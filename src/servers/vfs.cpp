#include "servers/vfs.hpp"

#include <cstring>

#include "support/log.hpp"
#include "trace/trace.hpp"

namespace osiris::servers {

using kernel::E_AGAIN;
using kernel::E_BADF;
using kernel::E_EXIST;
using kernel::E_INVAL;
using kernel::E_ISDIR;
using kernel::E_MFILE;
using kernel::E_NFILE;
using kernel::E_NOENT;
using kernel::E_NOTDIR;
using kernel::E_PIPE;
using kernel::E_SRCH;
using kernel::make_reply;
using kernel::Message;
using kernel::OK;

namespace {
constexpr auto kNpos = static_cast<std::size_t>(-1);
}

Vfs::Vfs(kernel::Kernel& kernel, const seep::Classification& classification,
         seep::Policy policy, ckpt::Mode mode, fs::BlockDevice& dev, std::size_t cache_blocks,
         std::size_t journal_slots, const ckpt::PagesConfig& pages)
    : ServerBase(kernel, kernel::kVfsEp, "vfs", classification, policy, mode),
      dev_(dev),
      cache_(cache_blocks),
      store_(*this),
      minifs_(store_) {
  if (journal_slots > 0) {
    journal_ = std::make_unique<ckpt::PagedTable<VfsOpRecord>>(journal_slots, pages.page_bytes);
    set_aux_region(journal_->region_data(), journal_->region_bytes(), pages);
  }
  workers_.resize(kVfsWorkers);
  for (std::size_t i = 0; i < kVfsWorkers; ++i) {
    Worker* w = &workers_[i];
    w->fiber = std::make_unique<cothread::Fiber>([this, w] {
      for (;;) {
        if (!w->busy) {
          cothread::Fiber::suspend();
          continue;
        }
        try {
          w->reply = run_fs_op(w->req);
        } catch (...) {
          w->exc = std::current_exception();
          w->reply.reset();
        }
        w->busy = false;
      }
    });
  }
  init_state();
  register_handlers();
}

Vfs::~Vfs() = default;

void Vfs::mount() {
  const std::int64_t r = minifs_.mount();
  OSIRIS_ASSERT(r == OK);
}

void Vfs::register_boot_proc(std::int32_t pid, kernel::Endpoint ep) {
  const std::size_t i = st().procs.alloc();
  OSIRIS_ASSERT(i != decltype(st().procs)::npos);
  auto& t = st().procs.mutate(i);
  t.pid = pid;
  t.ep = ep.value;
  for (auto& fd : t.fds) fd = -1;
}

bool Vfs::has_pending_work() const {
  for (const Worker& w : workers_) {
    if (w.wait_token != 0) return true;
  }
  if (fom_.in_flight() > 0 || !pending_reads_.empty()) return true;
  return !backlog_.empty();
}

void Vfs::on_restored(bool rolled_back) {
  // Cooperative-thread-library fixup (paper SIV-E): the library still thinks
  // the crashed thread is running; repair the current-thread variable and
  // return the worker to the run queue (here: to a clean idle state). The
  // worker's fiber itself already unwound to its top-level loop when the
  // fail-stop exception was captured.
  if (current_worker_ != nullptr) {
    current_worker_->busy = false;
    current_worker_->reply.reset();
    current_worker_->exc = nullptr;
    current_worker_->wait_token = 0;
    current_worker_ = nullptr;
  }

  if (rolled_back) {
    // Windowed recovery. Parked FOMs own zero live undo entries (the
    // park-time sub-rollback), so the full-log rollback restored a state
    // consistent with every one of them re-running later: they survive, and
    // their queued disk completions resume them. Only the FOM that crashed
    // mid-attempt is dropped.
    if (current_fom_ != 0 && fom_.contains(current_fom_)) {
      const FomRecord rec = fom_.get(current_fom_);
      const bool reconcile = !current_initial_;
      if (reconcile) {
        // The crash hit a *resumed* attempt: the dispatched message was the
        // disk-completion notify, so the engine cannot answer the requester —
        // the executor reconciles it here (error virtualization, E_CRASH).
        seep_deferred_reply(rec.req.sender, make_reply(rec.req.type, kernel::E_CRASH));
      }
      OSIRIS_TRACE_EVENT(kFomAbort, endpoint().value, current_fom_, reconcile ? 1 : 0);
      fom_.abort(current_fom_);
    }
    current_fom_ = 0;
    current_initial_ = true;
    return;
  }

  // Restart from the boot image (stateless rung, quarantine, storm rung):
  // every live FOM dies with the state it was parked against. The one that
  // crashed mid-dispatch (if any) is answered by the engine's own
  // reconciliation; the rest get E_CRASH from the executor so no requester
  // hangs on a request the reborn component has never heard of.
  std::vector<std::uint64_t> ids;
  ids.reserve(fom_.in_flight());
  for (const auto& [id, rec] : fom_.live()) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    const FomRecord rec = fom_.get(id);
    const bool engine_replies = id == current_fom_ && current_initial_;
    const bool window_replies = policy_uses_windows(window().policy());
    if (!engine_replies && window_replies) {
      seep_deferred_reply(rec.req.sender, make_reply(rec.req.type, kernel::E_CRASH));
    }
    OSIRIS_TRACE_EVENT(kFomAbort, endpoint().value, id, engine_replies ? 0 : 1);
    fom_.abort(id);
  }
  pending_reads_.clear();
  current_fom_ = 0;
  current_initial_ = true;
}

// --- CachedStore -----------------------------------------------------------

void Vfs::CachedStore::read_block(std::uint32_t bno,
                                  std::span<std::byte, fs::kBlockSize> out) {
  if (std::byte* hit = vfs_.cache_.lookup(bno); hit != nullptr) {
    std::memcpy(out.data(), hit, fs::kBlockSize);
    return;
  }
  if (vfs_.fom_enabled_ && vfs_.current_fom_ != 0) {
    // FOM mode: a miss unwinds the attempt instead of parking a fiber. Park
    // soundness requires that every store of the attempt was undo-logged
    // (should_log()) — otherwise the re-run would double-apply VfsState
    // mutations — AND that the window is still open: filesystem mutations
    // (write_block) close the window, so an open window proves the attempt
    // has no cache/disk side effects a rollback cannot undo. (Under kAlways
    // the log outlives the window, so should_log alone is not enough.) The
    // livelock guard caps how often one request may retry before degrading
    // to a synchronous wait.
    FomRecord& rec = vfs_.fom_.get(vfs_.current_fom_);
    bool parkable = vfs_.window().is_open() && vfs_.ckpt_context().should_log() &&
                    !rec.sync_fallback;
    if (parkable && rec.retries >= kVfsFomMaxRetries) {
      rec.sync_fallback = true;
      parkable = false;
    }
    if (parkable) throw fs::BlockMiss(bno);
    vfs_.fom_.note_sync_fallback();
    // analyze-suppress(blocking-in-handler): FOM sync fallback — reached only
    // when the window already closed (nothing left to preserve by parking) or
    // the retry cap fired; the executor degrades to the pre-FOM blocking wait.
    vfs_.dev_.read_now(bno, out);
    std::optional<std::pair<std::uint32_t, std::vector<std::byte>>> evicted_sync;
    vfs_.cache_.insert(bno, std::span<const std::byte, fs::kBlockSize>(out), &evicted_sync);
    if (evicted_sync) {
      vfs_.dev_.submit_write(evicted_sync->first,
                             std::span<const std::byte, fs::kBlockSize>(evicted_sync->second),
                             [] {});
    }
    return;
  }
  Worker* w = vfs_.current_worker_;
  if (w == nullptr) {
    // Boot path (mount runs before the message loop starts): synchronous read.
    // analyze-suppress(blocking-in-handler): only reachable when no worker is
    // bound, i.e. during mount before dispatch begins — no request, no window.
    vfs_.dev_.read_now(bno, out);
    std::optional<std::pair<std::uint32_t, std::vector<std::byte>>> evicted_boot;
    vfs_.cache_.insert(bno, std::span<const std::byte, fs::kBlockSize>(out), &evicted_boot);
    return;
  }
  // Miss: fetch from the device. The worker thread yields, which forcibly
  // closes the recovery window (SIV-E). Each in-flight read owns its buffer:
  // several workers may be suspended on the disk at once.
  const std::uint64_t token = vfs_.next_token_++;
  auto staging = std::make_shared<std::array<std::byte, fs::kBlockSize>>();
  kernel::Kernel* k = &vfs_.kern();
  const auto self = vfs_.endpoint();
  vfs_.dev_.submit_read(bno, std::span<std::byte, fs::kBlockSize>(*staging),
                        [k, self, token, staging] {
                          Message done = encode(VFS_DEV_DONE | kernel::kNotifyBit, token);
                          // analyze-suppress(raw-kernel-send): self-directed
                          // completion from the disk callback; the window was
                          // already force-closed by the on_yield() below.
                          k->send(self, self, done);
                        });
  w->wait_token = token;
  vfs_.window().on_yield();
  // analyze-suppress(blocking-in-handler): the canonical SIV-E blocking point
  // — the on_yield() above force-closes the window before parking, so state
  // is consistent while suspended. Removing it is ROADMAP item 2 (FOM).
  cothread::Fiber::suspend();
  w->wait_token = 0;

  std::optional<std::pair<std::uint32_t, std::vector<std::byte>>> evicted;
  std::byte* cached = vfs_.cache_.insert(
      bno, std::span<const std::byte, fs::kBlockSize>(*staging), &evicted);
  if (evicted) {
    // Write back the dirty victim (posted write; no need to wait).
    vfs_.dev_.submit_write(
        evicted->first, std::span<const std::byte, fs::kBlockSize>(evicted->second), [] {});
  }
  std::memcpy(out.data(), cached, fs::kBlockSize);
}

const std::byte* Vfs::CachedStore::peek_block(std::uint32_t bno) {
  // Part of the zero-copy fast path: with the flag off MiniFs keeps its
  // original staged-copy algorithm so the baseline bench column measures the
  // pre-optimization system. Succeeds exactly when read_block would have hit
  // the cache, so worker parking / recovery-window behaviour is unchanged —
  // only the staging memcpy is elided.
  if (!vfs_.kern().fastpath().zero_copy) return nullptr;
  return vfs_.cache_.lookup(bno);
}

void Vfs::CachedStore::write_block(std::uint32_t bno,
                                   std::span<const std::byte, fs::kBlockSize> data) {
  // A filesystem mutation leaves VFS's recoverable data section: it cannot
  // be rolled back by VFS's undo log, so it must close the recovery window
  // (equivalent to a state-modifying SEEP into the FS/driver domain).
  vfs_.window().on_outbound(seep::SeepClass::kStateModifying);
  std::optional<std::pair<std::uint32_t, std::vector<std::byte>>> evicted;
  vfs_.cache_.insert(bno, data, &evicted);
  vfs_.cache_.mark_dirty(bno);
  if (evicted) {
    vfs_.dev_.submit_write(evicted->first,
                           std::span<const std::byte, fs::kBlockSize>(evicted->second), [] {});
  }
}

// --- dispatch plumbing -------------------------------------------------------

void Vfs::register_handlers() {
  on_notify(VFS_DEV_DONE, &Vfs::do_dev_done);
  // Inline operations: fd-table/pipe bookkeeping that never touches the disk.
  on(VFS_PM_FORK, &Vfs::do_pm_fork);
  on(VFS_PM_EXIT, &Vfs::do_pm_exit);
  on(VFS_PIPE, &Vfs::do_pipe);
  on(VFS_DUP, &Vfs::do_dup);
  on(VFS_CLOSE, &Vfs::do_close);
  on(VFS_LSEEK, &Vfs::do_lseek);
  // READ/WRITE/FSTAT decide per fd kind whether they stay inline (pipes) or
  // need a worker (regular files).
  on(VFS_READ, &Vfs::do_rw);
  on(VFS_WRITE, &Vfs::do_rw);
  on(VFS_FSTAT, &Vfs::do_rw);
  // Path/disk operations always run on a cooperative worker thread.
  on(VFS_OPEN, &Vfs::do_worker_op);
  on(VFS_STAT, &Vfs::do_worker_op);
  on(VFS_UNLINK, &Vfs::do_worker_op);
  on(VFS_MKDIR, &Vfs::do_worker_op);
  on(VFS_RMDIR, &Vfs::do_worker_op);
  on(VFS_RENAME, &Vfs::do_worker_op);
  on(VFS_READDIR, &Vfs::do_worker_op);
  on(VFS_TRUNC, &Vfs::do_worker_op);
  on(VFS_SYNC, &Vfs::do_worker_op);
  on(VFS_ACCESS, &Vfs::do_worker_op);
  on(VFS_PM_EXEC, &Vfs::do_worker_op);
}

void Vfs::on_message(const Message& m) {
  FI_BLOCK("vfs");
  st().ops += 1;
  journal_append(m);
}

/// Ring-append one op record. Runs in the per-message prologue, inside the
/// freshly-decided window, so a mid-request rollback rewinds the journal
/// (and its cursor) together with the state the request touched.
void Vfs::journal_append(const Message& m) {
  if (journal_ == nullptr) return;
  const std::uint64_t seq = journal_->user_word();
  VfsOpRecord& rec = journal_->put(static_cast<std::size_t>(seq % journal_->capacity()));
  rec = VfsOpRecord{};
  rec.type = m.type;
  rec.sender = m.sender.value;
  rec.seq = seq;
  rec.arg0 = m.arg[0];
  const std::string_view text = m.text.view();
  const std::size_t n = text.size() < sizeof(rec.text) ? text.size() : sizeof(rec.text);
  std::memcpy(rec.text, text.data(), n);
  journal_->set_user_word(seq + 1);
}

std::optional<Message> Vfs::do_dev_done(const Message& m) {
  on_dev_done(MsgView(m).u(0));
  return std::nullopt;
}

std::optional<Message> Vfs::do_rw(const Message& m) {
  std::int64_t err = OK;
  const std::size_t fidx = file_of(m, &err);
  if (fidx == kNpos) return make_reply(m.type, err);
  const FileKind kind = st().files.at(fidx).kind;
  if (kind == FileKind::kPipeRead || kind == FileKind::kPipeWrite) {
    if (m.type == VFS_READ) return do_pipe_read(m, fidx);
    if (m.type == VFS_WRITE) return do_pipe_write(m, fidx);
    Message r = make_reply(m.type, OK);  // fstat on a pipe
    r.arg[1] = 0;
    r.arg[2] = st().files.at(fidx).pos;
    return r;
  }
  return start_request(m);
}

std::optional<Message> Vfs::do_worker_op(const Message& m) { return start_request(m); }

std::optional<Message> Vfs::start_request(const Message& m) {
  if (fom_enabled_) return fom_execute(m);
  return start_or_queue(m);
}

std::optional<Message> Vfs::start_or_queue(const Message& m) {
  FI_BLOCK("vfs");
  for (Worker& w : workers_) {
    if (!w.busy && w.wait_token == 0) {
      w.req = m;
      w.reply.reset();
      w.exc = nullptr;
      w.busy = true;
      return resume_worker(w);
    }
  }
  backlog_.push_back(m);  // all threads busy: queue for the next free worker
  return std::nullopt;
}

std::optional<Message> Vfs::resume_worker(Worker& w) {
  Worker* const prev = current_worker_;
  current_worker_ = &w;
  w.fiber->resume();
  current_worker_ = prev;
  if (auto fe = w.fiber->take_exception()) {
    // The fiber body itself never throws; anything here is a harness bug.
    std::rethrow_exception(fe);
  }
  if (w.exc) {
    // A fail-stop fault hit this worker: re-raise it on the dispatch stack
    // so the kernel contains it at VFS's boundary. current_worker_ is left
    // pointing at the crashed thread for on_restored()'s fixup.
    auto e = w.exc;
    w.exc = nullptr;
    current_worker_ = &w;
    std::rethrow_exception(e);
  }
  if (w.wait_token != 0) return std::nullopt;  // suspended on disk I/O
  std::optional<Message> reply = std::move(w.reply);
  w.reply.reset();
  return reply;
}

void Vfs::on_dev_done(std::uint64_t token) {
  FI_BLOCK("vfs");
  for (Worker& w : workers_) {
    if (w.wait_token == token) {
      const kernel::Endpoint requester = w.req.sender;
      std::optional<Message> reply = resume_worker(w);
      if (reply) seep_deferred_reply(requester, *reply);
      pump_queue();
      return;
    }
  }
  if (fom_dev_done(token)) return;
  // Stale completion (e.g. the worker was reset by recovery): ignore.
}

// --- FOM executor ----------------------------------------------------------

std::optional<Message> Vfs::fom_execute(const Message& m) {
  FI_BLOCK("vfs");
  const std::uint64_t id = fom_.admit(m);
  return fom_run(id, /*initial=*/true);
}

std::optional<Message> Vfs::fom_run(std::uint64_t id, bool initial) {
  const Message m = fom_.get(id).req;
  const std::uint64_t prev_fom = current_fom_;
  const bool prev_initial = current_initial_;
  current_fom_ = id;
  current_initial_ = initial;
  // Everything the attempt stores past this mark is speculative until the
  // request completes: a park rolls back to here, so a parked FOM owns zero
  // live undo entries and full-log rollback stays consistent with N requests
  // mid-flight (the epoch-occupancy invariant, DESIGN.md §16).
  const ckpt::UndoLog::Mark mark = ckpt_context().log().mark();
  try {
    const Message reply = run_fs_op(m);
    current_fom_ = prev_fom;
    current_initial_ = prev_initial;
    fom_.finish(id);
    return reply;
  } catch (const fs::BlockMiss& miss) {
    current_fom_ = prev_fom;
    current_initial_ = prev_initial;
    ckpt_context().log().rollback_to(mark);
    window().fom_park();
    fom_.park(id, kern().clock().now());
    OSIRIS_TRACE_EVENT(kFomPark, endpoint().value, id, miss.bno);
    fom_submit_read(miss.bno, id);
    return std::nullopt;
  }
  // A fail-stop fault propagates past this frame with current_fom_ still
  // set — on_restored() uses it to find the crashed request, exactly like
  // current_worker_ in fiber mode.
}

void Vfs::fom_submit_read(std::uint32_t bno, std::uint64_t id) {
  // Several FOMs missing the same block share one disk read (the map is
  // small: one entry per distinct in-flight miss).
  for (auto& [tok, pr] : pending_reads_) {
    if (pr.bno == bno) {
      pr.waiters.push_back(id);
      return;
    }
  }
  const std::uint64_t token = next_token_++;
  PendingRead& pr = pending_reads_[token];
  pr.bno = bno;
  pr.staging = std::make_shared<std::array<std::byte, fs::kBlockSize>>();
  pr.waiters.push_back(id);
  kernel::Kernel* k = &kern();
  const auto self = endpoint();
  dev_.submit_read(bno, std::span<std::byte, fs::kBlockSize>(*pr.staging),
                   [k, self, token, staging = pr.staging] {
                     Message done = encode(VFS_DEV_DONE | kernel::kNotifyBit, token);
                     // analyze-suppress(raw-kernel-send): self-directed disk
                     // completion; the parked FOM's window is suspended.
                     k->send(self, self, done);
                   });
}

bool Vfs::fom_dev_done(std::uint64_t token) {
  const auto it = pending_reads_.find(token);
  if (it == pending_reads_.end()) return false;
  PendingRead pr = std::move(it->second);
  pending_reads_.erase(it);
  if (pr.staging) {
    std::optional<std::pair<std::uint32_t, std::vector<std::byte>>> evicted;
    cache_.insert(pr.bno, std::span<const std::byte, fs::kBlockSize>(*pr.staging), &evicted);
    if (evicted) {
      dev_.submit_write(evicted->first,
                        std::span<const std::byte, fs::kBlockSize>(evicted->second), [] {});
    }
  }
  // Waiters aborted while parked (boot-image restart) are simply gone.
  while (!pr.waiters.empty() && !fom_.contains(pr.waiters.front())) {
    pr.waiters.erase(pr.waiters.begin());
  }
  if (pr.waiters.empty()) return true;
  const std::uint64_t id = pr.waiters.front();
  pr.waiters.erase(pr.waiters.begin());
  if (!pr.waiters.empty()) {
    // Resume exactly one FOM per notification and chain the rest through a
    // fresh self-notify: if a resumed attempt crashes, the queued chain
    // survives recovery, so the remaining waiters are never orphaned.
    const std::uint64_t t2 = next_token_++;
    pending_reads_[t2] = PendingRead{pr.bno, nullptr, std::move(pr.waiters)};
    Message done = encode(VFS_DEV_DONE | kernel::kNotifyBit, t2);
    // analyze-suppress(raw-kernel-send): self-directed resume chaining; the
    // block is cached, only the dispatch round-trip is deferred.
    kern().send(endpoint(), endpoint(), done);
  }
  FomRecord& rec = fom_.get(id);
  const kernel::Endpoint requester = rec.req.sender;
  const std::uint32_t msg_type = rec.req.type;
  // Reopen the window for the re-run: checkpoint + open without counting a
  // new window (a parked+resumed request is still one request).
  window().fom_resume(msg_type);
  fom_.resume(id, kern().clock().now());
  OSIRIS_TRACE_EVENT(kFomResume, endpoint().value, id, msg_type);
  const std::optional<Message> reply = fom_run(id, /*initial=*/false);
  // Natural end of the resumed request: close the window BEFORE the deferred
  // reply goes out, exactly like the fiber path (where the reply is sent from
  // a notify dispatch whose window never opened) — the request's own reply
  // must not read as a window-closing SEEP.
  window().end_of_request();
  if (reply) seep_deferred_reply(requester, *reply);
  return true;
}

void Vfs::pump_queue() {
  while (!backlog_.empty()) {
    Worker* idle = nullptr;
    for (Worker& w : workers_) {
      if (!w.busy && w.wait_token == 0) {
        idle = &w;
        break;
      }
    }
    if (idle == nullptr) return;
    const Message m = backlog_.front();
    backlog_.pop_front();
    idle->req = m;
    idle->reply.reset();
    idle->exc = nullptr;
    idle->busy = true;
    std::optional<Message> reply = resume_worker(*idle);
    if (reply) seep_deferred_reply(m.sender, *reply);
  }
}

// --- fd helpers --------------------------------------------------------------

std::size_t Vfs::fdtable_of_ep(std::int32_t ep) const {
  return st().procs.find([ep](const VfsFdTable& t) { return t.ep == ep; });
}

std::size_t Vfs::fdtable_of_pid(std::int32_t pid) const {
  return st().procs.find([pid](const VfsFdTable& t) { return t.pid == pid; });
}

std::int32_t Vfs::alloc_fd(std::size_t tbl, std::size_t file_idx) {
  for (std::size_t fd = 0; fd < kMaxFds; ++fd) {
    if (st().procs.at(tbl).fds[fd] == -1) {
      st().procs.mutate(tbl).fds[fd] = static_cast<std::int32_t>(file_idx);
      return static_cast<std::int32_t>(fd);
    }
  }
  return -1;
}

std::size_t Vfs::file_of(const Message& m, std::int64_t* err) const {
  const std::size_t tbl = fdtable_of_ep(m.sender.value);
  // Every user process was registered at fork time: a missing fd table
  // means VFS lost state relative to PM — fatal divergence.
  SRV_CHECK(tbl != kNpos, "vfs: request from unknown process (tables out of sync)");
  *err = kernel::OK;
  const auto fd = static_cast<std::int64_t>(m.arg[0]);
  if (fd < 0 || fd >= static_cast<std::int64_t>(kMaxFds) ||
      st().procs.at(tbl).fds[fd] == -1) {
    *err = E_BADF;
    return kNpos;
  }
  return static_cast<std::size_t>(st().procs.at(tbl).fds[fd]);
}

void Vfs::close_file(std::size_t file_idx) {
  const VfsFile f = st().files.at(file_idx);
  SRV_CHECK(f.refcnt >= 1, "vfs: open-file refcount underflow");

  // Pipe end counts mirror descriptor *references* (fork and dup increment
  // them per fd), so every close decrements them — EOF/EPIPE transitions
  // must fire as soon as the last reference of one direction disappears.
  if (f.kind == FileKind::kPipeRead || f.kind == FileKind::kPipeWrite) {
    const auto pidx = static_cast<std::size_t>(f.pipe);
    {
      auto& p = st().pipes.mutate(pidx);
      if (f.kind == FileKind::kPipeRead) {
        SRV_CHECK(p.readers >= 1, "vfs: pipe reader count underflow");
        --p.readers;
      } else {
        SRV_CHECK(p.writers >= 1, "vfs: pipe writer count underflow");
        --p.writers;
      }
    }
    const VfsPipe& p = st().pipes.at(pidx);
    if (f.kind == FileKind::kPipeRead && p.readers == 0) {
      wake_blocked_writer(pidx);  // writer gets E_PIPE
    } else if (f.kind == FileKind::kPipeWrite && p.writers == 0) {
      wake_blocked_reader(pidx);  // reader gets EOF
    }
    if (f.refcnt == 1) {
      st().files.free(file_idx);
      if (st().pipes.at(pidx).readers == 0 && st().pipes.at(pidx).writers == 0) {
        st().pipes.free(pidx);
      }
      return;
    }
    st().files.mutate(file_idx).refcnt = f.refcnt - 1;
    return;
  }

  if (f.refcnt > 1) {
    st().files.mutate(file_idx).refcnt = f.refcnt - 1;
    return;
  }
  st().files.free(file_idx);
}

// --- inline operations -----------------------------------------------------

std::optional<Message> Vfs::do_pm_fork(const Message& m) {
  FI_BLOCK("vfs");
  const auto parent_pid = static_cast<std::int32_t>(m.arg[0]);
  const auto child_pid = static_cast<std::int32_t>(m.arg[1]);
  const auto child_ep = static_cast<std::int32_t>(m.arg[2]);
  const std::size_t ptbl = fdtable_of_pid(parent_pid);
  // PM-VFS process-table agreement is a system invariant; divergence is
  // fatal (it can only follow an inconsistent recovery).
  SRV_CHECK(ptbl != kNpos, "vfs: fork for unknown parent (tables out of sync)");
  SRV_CHECK(fdtable_of_pid(child_pid) == kNpos,
            "vfs: fork child already exists (tables out of sync)");

  const std::size_t ctbl = st().procs.alloc();
  if (ctbl == kNpos) return make_reply(m.type, E_AGAIN);
  const VfsFdTable parent = st().procs.at(ptbl);
  auto& child = st().procs.mutate(ctbl);
  child.pid = child_pid;
  child.ep = child_ep;
  for (std::size_t fd = 0; fd < kMaxFds; ++fd) {
    child.fds[fd] = parent.fds[fd];
    if (parent.fds[fd] != -1) {
      FI_BLOCK("vfs");  // mid-mutation: refcounts half-bumped on crash
      const auto fidx = static_cast<std::size_t>(parent.fds[fd]);
      auto& f = st().files.mutate(fidx);
      ++f.refcnt;
      if (f.kind == FileKind::kPipeRead) {
        st().pipes.mutate(static_cast<std::size_t>(f.pipe)).readers += 1;
      } else if (f.kind == FileKind::kPipeWrite) {
        st().pipes.mutate(static_cast<std::size_t>(f.pipe)).writers += 1;
      }
    }
  }
  FI_BLOCK("vfs");
  return make_reply(m.type, OK);
}

std::optional<Message> Vfs::do_pm_exit(const Message& m) {
  FI_BLOCK("vfs");
  const auto pid = static_cast<std::int32_t>(m.arg[0]);
  const std::size_t tbl = fdtable_of_pid(pid);
  SRV_CHECK(tbl != kNpos, "vfs: exit for unknown process (tables out of sync)");
  for (std::size_t fd = 0; fd < kMaxFds; ++fd) {
    const std::int32_t fidx = st().procs.at(tbl).fds[fd];
    if (fidx != -1) {
      FI_BLOCK("vfs");  // mid-mutation: some fds closed, some not
      st().procs.mutate(tbl).fds[fd] = -1;
      close_file(static_cast<std::size_t>(fidx));
    }
  }
  st().procs.free(tbl);
  return make_reply(m.type, OK);
}

std::optional<Message> Vfs::do_pipe(const Message& m) {
  FI_BLOCK("vfs");
  const std::size_t tbl = fdtable_of_ep(m.sender.value);
  if (tbl == kNpos) return make_reply(m.type, E_SRCH);
  const std::size_t pidx = st().pipes.alloc();
  if (pidx == kNpos) return make_reply(m.type, E_NFILE);

  const std::size_t rf = st().files.alloc();
  const std::size_t wf = st().files.alloc();
  if (rf == kNpos || wf == kNpos) {
    if (rf != kNpos) st().files.free(rf);
    if (wf != kNpos) st().files.free(wf);
    st().pipes.free(pidx);
    return make_reply(m.type, E_NFILE);
  }
  auto& p = st().pipes.mutate(pidx);
  p.readers = 1;
  p.writers = 1;
  auto& fr = st().files.mutate(rf);
  fr.kind = FileKind::kPipeRead;
  fr.refcnt = 1;
  fr.pipe = static_cast<std::int32_t>(pidx);
  auto& fw = st().files.mutate(wf);
  fw.kind = FileKind::kPipeWrite;
  fw.refcnt = 1;
  fw.pipe = static_cast<std::int32_t>(pidx);

  const std::int32_t rfd = alloc_fd(tbl, rf);
  const std::int32_t wfd = alloc_fd(tbl, wf);
  if (rfd < 0 || wfd < 0) {
    if (rfd >= 0) st().procs.mutate(tbl).fds[rfd] = -1;
    st().files.free(rf);
    st().files.free(wf);
    st().pipes.free(pidx);
    return make_reply(m.type, E_MFILE);
  }
  FI_BLOCK("vfs");
  Message r = make_reply(m.type, OK);
  r.arg[0] = static_cast<std::uint64_t>(rfd);
  r.arg[1] = static_cast<std::uint64_t>(wfd);
  return r;
}

std::optional<Message> Vfs::do_dup(const Message& m) {
  FI_BLOCK("vfs");
  std::int64_t err = OK;
  const std::size_t fidx = file_of(m, &err);
  if (fidx == kNpos) return make_reply(m.type, err);
  const std::size_t tbl = fdtable_of_ep(m.sender.value);
  const std::int32_t nfd = alloc_fd(tbl, fidx);
  if (nfd < 0) return make_reply(m.type, E_MFILE);
  auto& f = st().files.mutate(fidx);
  ++f.refcnt;
  if (f.kind == FileKind::kPipeRead) {
    st().pipes.mutate(static_cast<std::size_t>(f.pipe)).readers += 1;
  } else if (f.kind == FileKind::kPipeWrite) {
    st().pipes.mutate(static_cast<std::size_t>(f.pipe)).writers += 1;
  }
  return make_reply(m.type, nfd);
}

std::optional<Message> Vfs::do_close(const Message& m) {
  FI_BLOCK("vfs");
  std::int64_t err = OK;
  const std::size_t fidx = file_of(m, &err);
  if (fidx == kNpos) return make_reply(m.type, err);
  const std::size_t tbl = fdtable_of_ep(m.sender.value);
  st().procs.mutate(tbl).fds[m.arg[0]] = -1;
  close_file(fidx);
  return make_reply(m.type, OK);
}

std::optional<Message> Vfs::do_lseek(const Message& m) {
  FI_BLOCK("vfs");
  std::int64_t err = OK;
  const std::size_t fidx = file_of(m, &err);
  if (fidx == kNpos) return make_reply(m.type, err);
  const VfsFile& f = st().files.at(fidx);
  if (f.kind != FileKind::kRegular) return make_reply(m.type, E_PIPE);
  const auto offset = static_cast<std::int64_t>(m.arg[1]);
  const auto whence = static_cast<std::int64_t>(m.arg[2]);  // 0=SET, 1=CUR
  std::int64_t pos = whence == 1 ? static_cast<std::int64_t>(f.pos) + offset : offset;
  if (pos < 0) return make_reply(m.type, E_INVAL);
  st().files.mutate(fidx).pos = static_cast<std::uint32_t>(pos);
  return make_reply(m.type, pos);
}

// --- pipes ----------------------------------------------------------------

std::uint32_t Vfs::pipe_copy_in(std::size_t pipe_idx, const std::byte* src, std::uint32_t n) {
  auto& p = st().pipes.mutate(pipe_idx);
  const auto base = static_cast<std::uint32_t>(pipe_idx * kPipeBuf);
  std::uint32_t done = 0;
  while (done < n) {
    const std::uint32_t wpos = (p.rpos + p.used) % kPipeBuf;
    const std::uint32_t chunk =
        std::min<std::uint32_t>(n - done, static_cast<std::uint32_t>(kPipeBuf) - wpos);
    st().pipe_data.store_range(base + wpos, reinterpret_cast<const std::uint8_t*>(src) + done,
                               chunk);
    p.used += chunk;
    done += chunk;
  }
  return done;
}

std::uint32_t Vfs::pipe_copy_out(std::size_t pipe_idx, std::byte* dst, std::uint32_t n) {
  auto& p = st().pipes.mutate(pipe_idx);
  const auto base = static_cast<std::uint32_t>(pipe_idx * kPipeBuf);
  std::uint32_t done = 0;
  while (done < n) {
    const std::uint32_t chunk =
        std::min<std::uint32_t>(n - done, static_cast<std::uint32_t>(kPipeBuf) - p.rpos);
    std::memcpy(dst + done, st().pipe_data.raw() + base + p.rpos, chunk);
    p.rpos = (p.rpos + chunk) % kPipeBuf;
    p.used -= chunk;
    done += chunk;
  }
  return done;
}

std::optional<Message> Vfs::do_pipe_read(const Message& m, std::size_t file_idx) {
  FI_BLOCK("vfs");
  const VfsFile& f = st().files.at(file_idx);
  if (f.kind != FileKind::kPipeRead) return make_reply(m.type, E_BADF);
  const auto pidx = static_cast<std::size_t>(f.pipe);
  const VfsPipe& p = st().pipes.at(pidx);
  const auto want = static_cast<std::uint32_t>(std::min<std::uint64_t>(m.arg[2], kPipeBuf));

  if (p.used == 0) {
    if (p.writers == 0) return make_reply(m.type, 0);  // EOF
    if (p.rwait.blocked) return make_reply(m.type, E_AGAIN);  // one waiter max
    auto& mp = st().pipes.mutate(pidx);
    mp.rwait.blocked = true;
    mp.rwait.requester_ep = m.sender.value;
    mp.rwait.grant = m.arg[1];
    mp.rwait.len = want;
    mp.rwait.msgtype = m.type;
    return std::nullopt;  // deferred until a writer produces data
  }

  const std::uint32_t n = std::min(want, p.used);
  std::vector<std::byte> tmp(n);
  pipe_copy_out(pidx, tmp.data(), n);
  const std::int64_t copied = kern().safecopy_to(endpoint(), m.arg[1], 0, tmp.data(), n);
  if (copied < 0) return make_reply(m.type, copied);
  st().bytes_read += n;
  wake_blocked_writer(pidx);
  FI_BLOCK("vfs");
  return make_reply(m.type, n);
}

std::optional<Message> Vfs::do_pipe_write(const Message& m, std::size_t file_idx) {
  FI_BLOCK("vfs");
  const VfsFile& f = st().files.at(file_idx);
  if (f.kind != FileKind::kPipeWrite) return make_reply(m.type, E_BADF);
  const auto pidx = static_cast<std::size_t>(f.pipe);
  const VfsPipe& p = st().pipes.at(pidx);
  if (p.readers == 0) return make_reply(m.type, E_PIPE);
  const auto want = static_cast<std::uint32_t>(std::min<std::uint64_t>(m.arg[2], kPipeBuf));
  const std::uint32_t space = static_cast<std::uint32_t>(kPipeBuf) - p.used;

  if (space == 0) {
    if (p.wwait.blocked) return make_reply(m.type, E_AGAIN);
    auto& mp = st().pipes.mutate(pidx);
    mp.wwait.blocked = true;
    mp.wwait.requester_ep = m.sender.value;
    mp.wwait.grant = m.arg[1];
    mp.wwait.len = want;
    mp.wwait.msgtype = m.type;
    return std::nullopt;  // deferred until a reader drains the pipe
  }

  const std::uint32_t n = std::min(want, space);
  std::vector<std::byte> tmp(n);
  const std::int64_t copied = kern().safecopy_from(endpoint(), m.arg[1], 0, tmp.data(), n);
  if (copied < 0) return make_reply(m.type, copied);
  pipe_copy_in(pidx, tmp.data(), n);
  st().bytes_written += n;
  wake_blocked_reader(pidx);
  FI_BLOCK("vfs");
  return make_reply(m.type, n);
}

void Vfs::wake_blocked_reader(std::size_t pipe_idx) {
  const VfsPipe& p = st().pipes.at(pipe_idx);
  if (!p.rwait.blocked) return;
  const VfsPipeWaiter waiter = p.rwait;
  st().pipes.mutate(pipe_idx).rwait = VfsPipeWaiter{};

  if (p.used == 0 && p.writers == 0) {
    seep_deferred_reply(kernel::Endpoint{waiter.requester_ep}, make_reply(waiter.msgtype, 0));
    return;
  }
  if (p.used == 0) {
    // Spurious wake: re-block.
    st().pipes.mutate(pipe_idx).rwait = waiter;
    return;
  }
  const std::uint32_t n = std::min(waiter.len, p.used);
  std::vector<std::byte> tmp(n);
  pipe_copy_out(pipe_idx, tmp.data(), n);
  const std::int64_t copied = kern().safecopy_to(endpoint(), waiter.grant, 0, tmp.data(), n);
  st().bytes_read += n;
  seep_deferred_reply(kernel::Endpoint{waiter.requester_ep},
                      make_reply(waiter.msgtype, copied < 0 ? copied : n));
}

void Vfs::wake_blocked_writer(std::size_t pipe_idx) {
  const VfsPipe& p = st().pipes.at(pipe_idx);
  if (!p.wwait.blocked) return;
  const VfsPipeWaiter waiter = p.wwait;
  st().pipes.mutate(pipe_idx).wwait = VfsPipeWaiter{};

  if (p.readers == 0) {
    seep_deferred_reply(kernel::Endpoint{waiter.requester_ep},
                        make_reply(waiter.msgtype, E_PIPE));
    return;
  }
  const std::uint32_t space = static_cast<std::uint32_t>(kPipeBuf) - p.used;
  if (space == 0) {
    // analyze-suppress(mutate-after-send): re-parks an already-parked writer
    // (the waiter record it stores is the one just read from this pipe);
    // replay after a post-close crash rewrites the identical record.
    st().pipes.mutate(pipe_idx).wwait = waiter;
    return;
  }
  const std::uint32_t n = std::min(waiter.len, space);
  std::vector<std::byte> tmp(n);
  const std::int64_t copied = kern().safecopy_from(endpoint(), waiter.grant, 0, tmp.data(), n);
  if (copied >= 0) {
    pipe_copy_in(pipe_idx, tmp.data(), n);
    st().bytes_written += n;
    wake_blocked_reader(pipe_idx);
  }
  seep_deferred_reply(kernel::Endpoint{waiter.requester_ep},
                      make_reply(waiter.msgtype, copied < 0 ? copied : n));
}

// --- worker-side filesystem operations ------------------------------------

std::int64_t Vfs::resolve_parent(std::string_view path, fs::Ino* dir, std::string_view* leaf) {
  if (path.empty() || path[0] != '/') return E_INVAL;
  fs::Ino cur = fs::kRootIno;
  std::string_view rest = path.substr(1);
  while (true) {
    const std::size_t slash = rest.find('/');
    if (slash == std::string_view::npos) {
      if (rest.empty()) return E_INVAL;
      *dir = cur;
      *leaf = rest;
      return OK;
    }
    const std::string_view comp = rest.substr(0, slash);
    rest = rest.substr(slash + 1);
    if (comp.empty()) continue;
    const std::int64_t r = minifs_.lookup(cur, comp);
    if (r < 0) return r;
    cur = static_cast<fs::Ino>(r);
  }
}

std::int64_t Vfs::resolve(std::string_view path) {
  if (path == "/") return fs::kRootIno;
  fs::Ino dir = fs::kNoIno;
  std::string_view leaf;
  const std::int64_t r = resolve_parent(path, &dir, &leaf);
  if (r != OK) return r;
  return minifs_.lookup(dir, leaf);
}

kernel::Message Vfs::run_fs_op(const Message& m) {
  FI_BLOCK("vfs");
  switch (m.type) {
    case VFS_OPEN:
      return fs_open(m);
    case VFS_READ: {
      std::int64_t err = OK;
      const std::size_t fidx = file_of(m, &err);
      if (fidx == kNpos) return make_reply(m.type, err);
      return fs_read(m, fidx);
    }
    case VFS_WRITE: {
      std::int64_t err = OK;
      const std::size_t fidx = file_of(m, &err);
      if (fidx == kNpos) return make_reply(m.type, err);
      return fs_write(m, fidx);
    }
    case VFS_FSTAT: {
      std::int64_t err = OK;
      const std::size_t fidx = file_of(m, &err);
      if (fidx == kNpos) return make_reply(m.type, err);
      return fs_fstat(m, fidx);
    }
    case VFS_STAT:
    case VFS_ACCESS:
      return fs_stat(m);
    case VFS_UNLINK: {
      fs::Ino dir = fs::kNoIno;
      std::string_view leaf;
      std::int64_t r = resolve_parent(m.text.view(), &dir, &leaf);
      if (r == OK) r = minifs_.unlink(dir, leaf);
      FI_BLOCK("vfs");
      if (r == OK) {
        // Post-unlink audit (window already closed by the FS mutation).
        FI_BLOCK("vfs");
        SRV_CHECK(minifs_.lookup(dir, leaf) == E_NOENT, "vfs: unlinked name still resolves");
        FI_BLOCK("vfs");
      }
      return make_reply(m.type, r);
    }
    case VFS_MKDIR: {
      fs::Ino dir = fs::kNoIno;
      std::string_view leaf;
      std::int64_t r = resolve_parent(m.text.view(), &dir, &leaf);
      if (r == OK) r = minifs_.create(dir, leaf, fs::FileType::kDirectory);
      FI_BLOCK("vfs");
      if (r > 0) {
        FI_BLOCK("vfs");
        fs::Attr attr{};
        SRV_CHECK(minifs_.getattr(static_cast<fs::Ino>(r), &attr) == OK &&
                      attr.type == fs::FileType::kDirectory,
                  "vfs: mkdir produced a non-directory");
        FI_BLOCK("vfs");
      }
      return make_reply(m.type, r < 0 ? r : OK);
    }
    case VFS_RMDIR: {
      fs::Ino dir = fs::kNoIno;
      std::string_view leaf;
      std::int64_t r = resolve_parent(m.text.view(), &dir, &leaf);
      if (r == OK) r = minifs_.rmdir(dir, leaf);
      return make_reply(m.type, r);
    }
    case VFS_RENAME: {
      // text = "path-old:new-leaf" (rename within one directory).
      const std::string_view spec = m.text.view();
      const std::size_t colon = spec.find(':');
      if (colon == std::string_view::npos) return make_reply(m.type, E_INVAL);
      fs::Ino dir = fs::kNoIno;
      std::string_view leaf;
      std::int64_t r = resolve_parent(spec.substr(0, colon), &dir, &leaf);
      if (r == OK) r = minifs_.rename(dir, leaf, spec.substr(colon + 1));
      return make_reply(m.type, r);
    }
    case VFS_READDIR: {
      const std::int64_t ino = resolve(m.text.view());
      if (ino < 0) return make_reply(m.type, ino);
      const auto entry = minifs_.readdir(static_cast<fs::Ino>(ino), m.arg[0]);
      if (!entry) return make_reply(m.type, E_NOENT);
      Message r = make_reply(m.type, OK);
      r.text.assign(entry->name);
      r.arg[1] = entry->ino;
      return r;
    }
    case VFS_TRUNC: {
      const std::int64_t ino = resolve(m.text.view());
      if (ino < 0) return make_reply(m.type, ino);
      return make_reply(m.type, minifs_.truncate(static_cast<fs::Ino>(ino),
                                                 static_cast<std::uint32_t>(m.arg[0])));
    }
    case VFS_SYNC:
      return fs_sync(m);
    case VFS_PM_EXEC: {
      FI_BLOCK("vfs");
      // Binary check for PM: read-only (classification: non-state-modifying).
      const std::int64_t ino = resolve(m.text.view());
      Message r = make_reply(m.type, ino < 0 ? ino : OK);
      r.arg[1] = m.arg[1];  // correlation pid travels back to PM
      return r;
    }
    default:
      return make_reply(m.type, kernel::E_NOSYS);
  }
}

kernel::Message Vfs::fs_open(const Message& m) {
  FI_BLOCK("vfs");
  const std::uint64_t flags = m.arg[0];
  std::int64_t ino = resolve(m.text.view());
  if (ino == E_NOENT && (flags & O_CREAT) != 0) {
    fs::Ino dir = fs::kNoIno;
    std::string_view leaf;
    std::int64_t r = resolve_parent(m.text.view(), &dir, &leaf);
    if (r != OK) return make_reply(m.type, r);
    ino = minifs_.create(dir, leaf, fs::FileType::kRegular);
  }
  if (ino < 0) return make_reply(m.type, ino);

  fs::Attr attr{};
  std::int64_t r = minifs_.getattr(static_cast<fs::Ino>(ino), &attr);
  if (r != OK) return make_reply(m.type, r);
  if (attr.type == fs::FileType::kDirectory && (flags & (O_WRONLY | O_RDWR)) != 0) {
    return make_reply(m.type, E_ISDIR);
  }
  if ((flags & O_TRUNC) != 0 && attr.type == fs::FileType::kRegular) {
    r = minifs_.truncate(static_cast<fs::Ino>(ino), 0);
    if (r != OK) return make_reply(m.type, r);
    attr.size = 0;
  }

  const std::size_t tbl = fdtable_of_ep(m.sender.value);
  if (tbl == kNpos) return make_reply(m.type, E_SRCH);
  // analyze-suppress(mutate-after-send): fd bookkeeping is deliberately
  // ordered after the on-disk transaction (block writes are idempotent, so a
  // post-close replay re-runs the disk path and re-allocates; at worst one
  // fd slot leaks until the table is swept — never inconsistent disk state).
  const std::size_t fidx = st().files.alloc();
  if (fidx == kNpos) return make_reply(m.type, E_NFILE);
  auto& f = st().files.mutate(fidx);
  f.kind = FileKind::kRegular;
  f.ino = static_cast<fs::Ino>(ino);
  f.flags = static_cast<std::uint32_t>(flags);
  f.pos = (flags & O_APPEND) != 0 ? attr.size : 0;
  f.refcnt = 1;
  const std::int32_t fd = alloc_fd(tbl, fidx);
  if (fd < 0) {
    st().files.free(fidx);
    return make_reply(m.type, E_MFILE);
  }
  FI_BLOCK("vfs");
  if ((flags & (O_CREAT | O_TRUNC)) != 0) {
    // Creation/truncation mutated the FS: audit runs past the window.
    FI_BLOCK("vfs");
    SRV_CHECK(st().files.at(fidx).refcnt == 1, "vfs: fresh open-file refcount wrong");
    FI_BLOCK("vfs");
    const std::size_t tbl2 = fdtable_of_ep(m.sender.value);
    FI_BLOCK("vfs");
    SRV_CHECK(tbl2 != kNpos && st().procs.at(tbl2).fds[fd] == static_cast<std::int32_t>(fidx),
              "vfs: fd table entry lost after open");
    FI_BLOCK("vfs");
  }
  return make_reply(m.type, fd);
}

kernel::Message Vfs::fs_read(const Message& m, std::size_t file_idx) {
  FI_BLOCK("vfs");
  const VfsFile& f = st().files.at(file_idx);
  const auto len = static_cast<std::size_t>(m.arg[2]);
  // Bulk zero-copy (DESIGN.md §14): the file system reads straight into the
  // kernel-checked grant span, eliminating the staging buffer, its zero
  // fill, and one full-payload copy. A refused span (short or revoked
  // grant) falls back to the staging path, which reproduces the baseline
  // error codes exactly. The logical grant copy is noted at the same point
  // the staging path would safecopy, so traces are identical per flag.
  const kernel::FastPath& fp = kern().fastpath();
  std::byte* dst = nullptr;
  if (fp.zero_copy && len > fp.zero_copy_threshold) {
    std::int64_t err = OK;
    dst = kern().grant_span(endpoint(), m.arg[1], 0, len, kernel::Access::kWrite, &err);
  }
  std::int64_t n = 0;
  if (dst != nullptr) {
    n = minifs_.read(f.ino, f.pos, std::span<std::byte>(dst, len));
    if (n < 0) return make_reply(m.type, n);
    kern().note_grant_bypass(endpoint(), static_cast<std::size_t>(n), /*dir: to grant*/ 1);
  } else {
    std::vector<std::byte> tmp(len);
    n = minifs_.read(f.ino, f.pos, std::span<std::byte>(tmp.data(), len));
    if (n < 0) return make_reply(m.type, n);
    const std::int64_t copied =
        kern().safecopy_to(endpoint(), m.arg[1], 0, tmp.data(), static_cast<std::size_t>(n));
    if (copied < 0) return make_reply(m.type, copied);
  }
  st().files.mutate(file_idx).pos = f.pos + static_cast<std::uint32_t>(n);
  st().bytes_read += static_cast<std::uint64_t>(n);
  FI_BLOCK("vfs");
  return make_reply(m.type, n);
}

kernel::Message Vfs::fs_write(const Message& m, std::size_t file_idx) {
  FI_BLOCK("vfs");
  const VfsFile& f = st().files.at(file_idx);
  if ((f.flags & (O_WRONLY | O_RDWR)) == 0) return make_reply(m.type, E_BADF);
  const auto len = static_cast<std::size_t>(m.arg[2]);
  // Bulk zero-copy mirror of fs_read: the file system consumes the payload
  // directly from the grant span; the logical copy is noted where the
  // staging path would safecopy_from (before the append probe and the
  // write), keeping event order identical across the flag.
  const kernel::FastPath& fp = kern().fastpath();
  const std::byte* src = nullptr;
  if (fp.zero_copy && len > fp.zero_copy_threshold) {
    std::int64_t err = OK;
    src = kern().grant_span(endpoint(), m.arg[1], 0, len, kernel::Access::kRead, &err);
    if (src != nullptr) kern().note_grant_bypass(endpoint(), len, /*dir: from grant*/ 0);
  }
  std::vector<std::byte> tmp;
  if (src == nullptr) {
    tmp.resize(len);
    const std::int64_t copied = kern().safecopy_from(endpoint(), m.arg[1], 0, tmp.data(), len);
    if (copied < 0) return make_reply(m.type, copied);
    src = tmp.data();
  }

  std::uint32_t pos = f.pos;
  if ((f.flags & O_APPEND) != 0) {
    fs::Attr attr{};
    if (minifs_.getattr(f.ino, &attr) == OK) pos = attr.size;
  }
  const std::int64_t n = minifs_.write(f.ino, pos, std::span<const std::byte>(src, len));
  if (n < 0) return make_reply(m.type, n);
  st().files.mutate(file_idx).pos = pos + static_cast<std::uint32_t>(n);
  st().bytes_written += static_cast<std::uint64_t>(n);
  FI_BLOCK("vfs");
  // Post-write audit: the file must have grown to cover the write (all of
  // this runs after the FS mutation closed the recovery window).
  fs::Attr attr{};
  FI_BLOCK("vfs");
  SRV_CHECK(minifs_.getattr(f.ino, &attr) == OK, "vfs: written file vanished");
  FI_BLOCK("vfs");
  SRV_CHECK(attr.size >= pos + static_cast<std::uint32_t>(n), "vfs: write did not extend file");
  FI_BLOCK("vfs");
  SRV_CHECK(st().files.at(file_idx).pos <= fs::kMaxFileSize, "vfs: file offset out of range");
  FI_BLOCK("vfs");
  st().ops += 1;
  FI_BLOCK("vfs");
  return make_reply(m.type, n);
}

kernel::Message Vfs::fs_stat(const Message& m) {
  FI_BLOCK("vfs");
  const std::int64_t ino = resolve(m.text.view());
  if (ino < 0) return make_reply(m.type, ino);
  if (m.type == VFS_ACCESS) return make_reply(m.type, OK);
  fs::Attr attr{};
  const std::int64_t r = minifs_.getattr(static_cast<fs::Ino>(ino), &attr);
  if (r != OK) return make_reply(m.type, r);
  Message out = make_reply(m.type, OK);
  out.arg[0] = attr.size;
  out.arg[1] = static_cast<std::uint64_t>(attr.type);
  out.arg[2] = attr.nlinks;
  return out;
}

kernel::Message Vfs::fs_fstat(const Message& m, std::size_t file_idx) {
  const VfsFile& f = st().files.at(file_idx);
  fs::Attr attr{};
  const std::int64_t r = minifs_.getattr(f.ino, &attr);
  if (r != OK) return make_reply(m.type, r);
  Message out = make_reply(m.type, OK);
  out.arg[0] = attr.size;
  out.arg[1] = static_cast<std::uint64_t>(attr.type);
  out.arg[2] = f.pos;
  return out;
}

kernel::Message Vfs::fs_sync(const Message& m) {
  FI_BLOCK("vfs");
  // Flushing dirty blocks mutates the FS domain: window closes.
  window().on_outbound(seep::SeepClass::kStateModifying);
  for (auto& [bno, data] : cache_.take_dirty()) {
    dev_.submit_write(bno, std::span<const std::byte, fs::kBlockSize>(data), [] {});
  }
  return make_reply(m.type, OK);
}

}  // namespace osiris::servers
