// DS: the Data Store — a small publish/subscribe key-value service.
//
// DS is the paper's show-case for the enhanced policy (Table I): when a key
// is published, DS notifies matching subscribers *early* in the request.
// That notification is informational (non-state-modifying), so under the
// enhanced policy the recovery window survives it and DS is almost always
// recoverable (92.8%); under the pessimistic policy the very same notify
// closes the window, leaving the rest of the publish path unprotected
// (47.1%).
#pragma once

#include "ckpt/cell.hpp"
#include "servers/server_base.hpp"

namespace osiris::servers {

inline constexpr std::size_t kDsKeyCap = 28;

struct DsEntry {
  osiris::FixedString<kDsKeyCap> key;
  std::uint64_t value = 0;
};

struct DsSub {
  std::int32_t ep = -1;
  osiris::FixedString<kDsKeyCap> prefix;
  std::uint32_t events = 0;
};

struct DsState {
  ckpt::Table<DsEntry, 128> entries;
  ckpt::Table<DsSub, 16> subs;
  ckpt::Cell<std::uint64_t> publishes;
  ckpt::Cell<std::uint64_t> notifications;
  ckpt::Str<kDsKeyCap> last_changed_key;
};

class Ds final : public ServerBase<DsState> {
 public:
  Ds(kernel::Kernel& kernel, const seep::Classification& classification, seep::Policy policy,
     ckpt::Mode mode)
      : ServerBase(kernel, kernel::kDsEp, "ds", classification, policy, mode) {
    init_state();
    register_handlers();
  }

 /// Boot: install a subscription directly (before the message loop runs).
  void boot_subscribe(kernel::Endpoint ep, std::string_view prefix);

 protected:
  void on_message(const kernel::Message& m) override;
  void init_state() override {}

 private:
  void register_handlers();

  std::size_t entry_of(std::string_view key) const;
  void notify_subscribers(std::string_view key);

  std::optional<kernel::Message> do_publish(const kernel::Message& m);
  std::optional<kernel::Message> do_retrieve(const kernel::Message& m);
  std::optional<kernel::Message> do_delete(const kernel::Message& m);
  std::optional<kernel::Message> do_subscribe(const kernel::Message& m);
  std::optional<kernel::Message> do_check(const kernel::Message& m);
  std::optional<kernel::Message> do_snapshot(const kernel::Message& m);
};

}  // namespace osiris::servers
