// DS: the Data Store — a small publish/subscribe key-value service.
//
// DS is the paper's show-case for the enhanced policy (Table I): when a key
// is published, DS notifies matching subscribers *early* in the request.
// That notification is informational (non-state-modifying), so under the
// enhanced policy the recovery window survives it and DS is almost always
// recoverable (92.8%); under the pessimistic policy the very same notify
// closes the window, leaving the rest of the publish path unprotected
// (47.1%).
#pragma once

#include "ckpt/cell.hpp"
#include "ckpt/paged_table.hpp"
#include "servers/server_base.hpp"

namespace osiris::servers {

inline constexpr std::size_t kDsKeyCap = 28;

struct DsEntry {
  osiris::FixedString<kDsKeyCap> key;
  std::uint64_t value = 0;
};

struct DsSub {
  std::int32_t ep = -1;
  osiris::FixedString<kDsKeyCap> prefix;
  std::uint32_t events = 0;
};

struct DsState {
  ckpt::Table<DsEntry, 128> entries;
  ckpt::Table<DsSub, 16> subs;
  ckpt::Cell<std::uint64_t> publishes;
  ckpt::Cell<std::uint64_t> notifications;
  ckpt::Str<kDsKeyCap> last_changed_key;
};

/// One slot of DS's MB+ blob tier (DESIGN.md §17): a page-sized payload
/// carried alongside the inline DsEntry. The blob table lives OUTSIDE
/// DsState — inline growth would change the data-section size the golden
/// traces embed, and would make every spare clone pay for it.
struct DsBlob {
  std::uint64_t key_hash = 0;
  std::uint32_t len = 0;
  std::uint32_t writes = 0;
  std::byte payload[4080]{};
};
static_assert(sizeof(DsBlob) == 4096);

class Ds final : public ServerBase<DsState> {
 public:
  /// `blob_slots` > 0 grows DS a heap-backed blob table (one 4 KiB payload
  /// per published key) wired into the recovery images; `pages.enabled`
  /// checkpoints it through the page tier instead of the arena log. Defaults
  /// reproduce the paper-scale server bit-for-bit.
  Ds(kernel::Kernel& kernel, const seep::Classification& classification, seep::Policy policy,
     ckpt::Mode mode, std::size_t blob_slots = 0, const ckpt::PagesConfig& pages = {})
      : ServerBase(kernel, kernel::kDsEp, "ds", classification, policy, mode) {
    if (blob_slots > 0) {
      blobs_ = std::make_unique<ckpt::PagedTable<DsBlob>>(blob_slots, pages.page_bytes);
      set_aux_region(blobs_->region_data(), blobs_->region_bytes(), pages);
    }
    init_state();
    register_handlers();
  }

 /// Boot: install a subscription directly (before the message loop runs).
  void boot_subscribe(kernel::Endpoint ep, std::string_view prefix);

 protected:
  void on_message(const kernel::Message& m) override;
  void init_state() override {}

 private:
  void register_handlers();

  std::size_t entry_of(std::string_view key) const;
  void notify_subscribers(std::string_view key);

  std::size_t blob_of(std::uint64_t hash) const;
  void blob_publish(std::string_view key, std::uint64_t value);
  void blob_delete(std::string_view key);

  std::optional<kernel::Message> do_publish(const kernel::Message& m);
  std::optional<kernel::Message> do_retrieve(const kernel::Message& m);
  std::optional<kernel::Message> do_delete(const kernel::Message& m);
  std::optional<kernel::Message> do_subscribe(const kernel::Message& m);
  std::optional<kernel::Message> do_check(const kernel::Message& m);
  std::optional<kernel::Message> do_snapshot(const kernel::Message& m);

  std::unique_ptr<ckpt::PagedTable<DsBlob>> blobs_;  // nullptr = paper scale
};

}  // namespace osiris::servers
