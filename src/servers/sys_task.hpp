// SYS: the kernel task (MINIX's SYSTEM task equivalent).
//
// Privileged low-level operations — kernel process slots, page mappings,
// uptime — are requested from servers via messages to SYS. SYS is part of
// the message-passing substrate in the paper's RCB: it carries NO
// fault-injection probes, is never registered with the recovery engine, and
// is assumed fault-free. Its purpose in the reproduction is to give the
// system servers realistic window-closing kernel interactions (SYS_MAP,
// SYS_FORK, ...) and window-preserving read-only ones (SYS_GETINFO,
// SYS_TIMES).
#pragma once

#include "ckpt/cell.hpp"
#include "servers/server_base.hpp"

namespace osiris::servers {

struct SysProcSlot {
  std::int32_t pid = 0;
  std::uint64_t priv_flags = 0;
  std::uint32_t mapped_pages = 0;
};

struct SysState {
  ckpt::Table<SysProcSlot, 64> slots;
  ckpt::Cell<std::uint64_t> maps;
  ckpt::Cell<std::uint64_t> unmaps;
};

class SysTask final : public ServerBase<SysState> {
 public:
  SysTask(kernel::Kernel& kernel, const seep::Classification& classification)
      : ServerBase(kernel, kSysEp, "sys", classification, seep::Policy::kEnhanced,
                   ckpt::Mode::kOff) {
    init_state();
    register_handlers();
  }

  /// Boot-time registration of the init process's kernel slot.
  void register_boot_proc(std::int32_t pid);

 protected:
  void init_state() override {}

 private:
  void register_handlers();

  std::size_t slot_of(std::int32_t pid) const;

  std::optional<kernel::Message> do_fork(const kernel::Message& m);
  std::optional<kernel::Message> do_exit(const kernel::Message& m);
  std::optional<kernel::Message> do_map(const kernel::Message& m);
  std::optional<kernel::Message> do_unmap(const kernel::Message& m);
  std::optional<kernel::Message> do_getinfo(const kernel::Message& m);
  std::optional<kernel::Message> do_times(const kernel::Message& m);
  std::optional<kernel::Message> do_priv(const kernel::Message& m);
};

}  // namespace osiris::servers
