// RS: the Recovery Server.
//
// RS is the policy face of the recovery infrastructure: it monitors the
// other system servers with heartbeat pings (detecting hung components and
// converting them into crash events, paper SII-E / SIV-C) and answers
// status queries. The actual restart/rollback/reconciliation pipeline lives
// in recovery::Engine (RCB); RS invokes it through the kernel's
// recover_hung() privileged operation.
//
// RS itself is a recoverable component — the paper's prototype "allows all
// these core system components (including RS itself) to be recovered" — so
// its handlers carry fault-injection probes like any other server.
#pragma once

#include "ckpt/cell.hpp"
#include "recovery/engine.hpp"
#include "servers/server_base.hpp"

namespace osiris::servers {

struct RsCompInfo {
  std::int32_t ep = -1;
  std::uint64_t last_pong_tick = 0;
  std::uint32_t pings_outstanding = 0;
  std::uint32_t parked = 0;  // quarantined by the engine's escalation ladder
};

struct RsState {
  ckpt::Table<RsCompInfo, 8> comps;
  ckpt::Cell<std::uint64_t> sweeps;
  ckpt::Cell<std::uint64_t> pings_sent;
  ckpt::Cell<std::uint64_t> hangs_detected;
  ckpt::Cell<std::uint64_t> parks_seen;
};

class Rs final : public ServerBase<RsState> {
 public:
  Rs(kernel::Kernel& kernel, const seep::Classification& classification, seep::Policy policy,
     ckpt::Mode mode)
      : ServerBase(kernel, kernel::kRsEp, "rs", classification, policy, mode) {
    init_state();
    register_handlers();
  }

  /// Boot: monitor a server with heartbeats. Returns false — with a loud
  /// diagnostic — when the monitoring table is full: a server silently
  /// missing from heartbeat coverage would turn every hang in it into an
  /// undetectable wedge.
  [[nodiscard]] bool monitor(kernel::Endpoint ep);

  /// Boot: start the periodic heartbeat sweep (self-notification driven by
  /// the virtual clock).
  void start_heartbeats(Tick interval);

  /// Wire the engine for RS_STATUS reporting and readmission scheduling
  /// (set once at boot). Non-const: RS drives readmit() after cooldowns.
  void attach_engine(recovery::Engine* engine) { engine_ = engine; }

  [[nodiscard]] std::uint64_t sweeps() const { return st().sweeps; }
  [[nodiscard]] std::uint64_t pings_sent() const { return st().pings_sent; }
  [[nodiscard]] std::uint64_t parks_seen() const { return st().parks_seen; }

  /// Sum of unanswered pings across all monitored slots (tests: heartbeat
  /// shutdown must not leak outstanding pings).
  [[nodiscard]] std::uint32_t outstanding_pings() const;

 protected:
  void on_message(const kernel::Message& m) override;
  void init_state() override {}

 private:
  void register_handlers();

  void schedule_next_sweep();
  void run_sweep();

  std::optional<kernel::Message> do_sweep(const kernel::Message& m);
  std::optional<kernel::Message> do_pong(const kernel::Message& m);
  std::optional<kernel::Message> do_status(const kernel::Message& m);
  std::optional<kernel::Message> do_park(const kernel::Message& m);
  std::optional<kernel::Message> do_readmit(const kernel::Message& m);
  std::optional<kernel::Message> ignore_ds_note(const kernel::Message& m);
  std::optional<kernel::Message> ignore_publish_ack(const kernel::Message& m);

  recovery::Engine* engine_ = nullptr;
  Tick sweep_interval_ = 0;
};

}  // namespace osiris::servers
