#include "servers/sys_task.hpp"

namespace osiris::servers {

using kernel::E_INVAL;
using kernel::E_NOMEM;
using kernel::E_SRCH;
using kernel::make_reply;
using kernel::Message;
using kernel::OK;

void SysTask::register_boot_proc(std::int32_t pid) {
  const std::size_t i = st().slots.alloc();
  OSIRIS_ASSERT(i != decltype(st().slots)::npos);
  auto& slot = st().slots.mutate(i);
  slot.pid = pid;
  slot.mapped_pages = 4;
}

std::size_t SysTask::slot_of(std::int32_t pid) const {
  return st().slots.find([pid](const SysProcSlot& s) { return s.pid == pid; });
}

std::optional<Message> SysTask::handle(const Message& m) {
  constexpr auto npos = decltype(SysState{}.slots)::npos;
  switch (m.type) {
    case SYS_FORK: {
      const auto child = static_cast<std::int32_t>(m.arg[1]);
      if (slot_of(child) != npos) return make_reply(m.type, E_INVAL);
      const std::size_t i = st().slots.alloc();
      if (i == npos) return make_reply(m.type, E_NOMEM);
      auto& slot = st().slots.mutate(i);
      slot.pid = child;
      slot.mapped_pages = 0;
      return make_reply(m.type, OK);
    }
    case SYS_EXIT: {
      const std::size_t i = slot_of(static_cast<std::int32_t>(m.arg[0]));
      if (i == npos) return make_reply(m.type, E_SRCH);
      st().slots.free(i);
      return make_reply(m.type, OK);
    }
    case SYS_MAP: {
      const std::size_t i = slot_of(static_cast<std::int32_t>(m.arg[0]));
      if (i == npos) return make_reply(m.type, E_SRCH);
      st().slots.mutate(i).mapped_pages += static_cast<std::uint32_t>(m.arg[2]);
      st().maps += 1;
      return make_reply(m.type, OK);
    }
    case SYS_UNMAP: {
      const std::size_t i = slot_of(static_cast<std::int32_t>(m.arg[0]));
      if (i == npos) return make_reply(m.type, E_SRCH);
      auto& slot = st().slots.mutate(i);
      const auto n = static_cast<std::uint32_t>(m.arg[2]);
      slot.mapped_pages = slot.mapped_pages >= n ? slot.mapped_pages - n : 0;
      st().unmaps += 1;
      return make_reply(m.type, OK);
    }
    case SYS_GETINFO: {
      // what: 0 = #kernel slots in use, 1 = total mapped pages.
      std::uint64_t v = 0;
      if (m.arg[0] == 0) {
        v = st().slots.in_use_count();
      } else {
        st().slots.for_each([&v](std::size_t, const SysProcSlot& s) { v += s.mapped_pages; });
      }
      Message r = make_reply(m.type, OK);
      r.arg[1] = v;
      return r;
    }
    case SYS_TIMES: {
      Message r = make_reply(m.type, OK);
      r.arg[1] = kern().clock().now();
      return r;
    }
    case SYS_PRIV: {
      const std::size_t i = slot_of(static_cast<std::int32_t>(m.arg[0]));
      if (i == npos) return make_reply(m.type, E_SRCH);
      st().slots.mutate(i).priv_flags = m.arg[1];
      return make_reply(m.type, OK);
    }
    default:
      return make_reply(m.type, kernel::E_NOSYS);
  }
}

}  // namespace osiris::servers
