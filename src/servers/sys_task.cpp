#include "servers/sys_task.hpp"

namespace osiris::servers {

using kernel::E_INVAL;
using kernel::E_NOMEM;
using kernel::E_SRCH;
using kernel::make_reply;
using kernel::Message;
using kernel::OK;

void SysTask::register_boot_proc(std::int32_t pid) {
  const std::size_t i = st().slots.alloc();
  OSIRIS_ASSERT(i != decltype(st().slots)::npos);
  auto& slot = st().slots.mutate(i);
  slot.pid = pid;
  slot.mapped_pages = 4;
}

std::size_t SysTask::slot_of(std::int32_t pid) const {
  return st().slots.find([pid](const SysProcSlot& s) { return s.pid == pid; });
}

namespace {
constexpr auto kNpos = decltype(SysState{}.slots)::npos;
}

void SysTask::register_handlers() {
  on(SYS_FORK, &SysTask::do_fork);
  on(SYS_EXIT, &SysTask::do_exit);
  on(SYS_MAP, &SysTask::do_map);
  on(SYS_UNMAP, &SysTask::do_unmap);
  on(SYS_GETINFO, &SysTask::do_getinfo);
  on(SYS_TIMES, &SysTask::do_times);
  on(SYS_PRIV, &SysTask::do_priv);
}

std::optional<Message> SysTask::do_fork(const Message& m) {
  const std::int32_t child = MsgView(m).i32(1);
  if (slot_of(child) != kNpos) return make_reply(m.type, E_INVAL);
  const std::size_t i = st().slots.alloc();
  if (i == kNpos) return make_reply(m.type, E_NOMEM);
  auto& slot = st().slots.mutate(i);
  slot.pid = child;
  slot.mapped_pages = 0;
  return make_reply(m.type, OK);
}

std::optional<Message> SysTask::do_exit(const Message& m) {
  const std::size_t i = slot_of(MsgView(m).i32(0));
  if (i == kNpos) return make_reply(m.type, E_SRCH);
  st().slots.free(i);
  return make_reply(m.type, OK);
}

std::optional<Message> SysTask::do_map(const Message& m) {
  const MsgView v(m);
  const std::size_t i = slot_of(v.i32(0));
  if (i == kNpos) return make_reply(m.type, E_SRCH);
  st().slots.mutate(i).mapped_pages += static_cast<std::uint32_t>(v.u(2));
  st().maps += 1;
  return make_reply(m.type, OK);
}

std::optional<Message> SysTask::do_unmap(const Message& m) {
  const MsgView v(m);
  const std::size_t i = slot_of(v.i32(0));
  if (i == kNpos) return make_reply(m.type, E_SRCH);
  auto& slot = st().slots.mutate(i);
  const auto n = static_cast<std::uint32_t>(v.u(2));
  slot.mapped_pages = slot.mapped_pages >= n ? slot.mapped_pages - n : 0;
  st().unmaps += 1;
  return make_reply(m.type, OK);
}

std::optional<Message> SysTask::do_getinfo(const Message& m) {
  // what: 0 = #kernel slots in use, 1 = total mapped pages.
  std::uint64_t v = 0;
  if (MsgView(m).u(0) == 0) {
    v = st().slots.in_use_count();
  } else {
    st().slots.for_each([&v](std::size_t, const SysProcSlot& s) { v += s.mapped_pages; });
  }
  Message r = make_reply(m.type, OK);
  r.arg[1] = v;
  return r;
}

std::optional<Message> SysTask::do_times(const Message& m) {
  Message r = make_reply(m.type, OK);
  r.arg[1] = kern().clock().now();
  return r;
}

std::optional<Message> SysTask::do_priv(const Message& m) {
  const MsgView v(m);
  const std::size_t i = slot_of(v.i32(0));
  if (i == kNpos) return make_reply(m.type, E_SRCH);
  st().slots.mutate(i).priv_flags = v.u(1);
  return make_reply(m.type, OK);
}

}  // namespace osiris::servers
