#include "servers/rs.hpp"

#include "support/log.hpp"

namespace osiris::servers {

using kernel::make_reply;
using kernel::Message;
using kernel::OK;

bool Rs::monitor(kernel::Endpoint ep) {
  const std::size_t i = st().comps.alloc();
  if (i == decltype(st().comps)::npos) {
    // Failing loudly matters: a server dropped from heartbeat coverage would
    // hang undetectably, which is strictly worse than refusing to boot it.
    OSIRIS_ERROR("rs", "monitor table full (%zu slots): endpoint %d has NO heartbeat coverage",
                 decltype(st().comps)::capacity(), ep.value);
    return false;
  }
  auto& c = st().comps.mutate(i);
  c.ep = ep.value;
  return true;
}

std::uint32_t Rs::outstanding_pings() const {
  std::uint32_t total = 0;
  st().comps.for_each(
      [&](std::size_t, const RsCompInfo& c) { total += c.pings_outstanding; });
  return total;
}

void Rs::start_heartbeats(Tick interval) {
  OSIRIS_ASSERT(interval > 0);
  sweep_interval_ = interval;
  schedule_next_sweep();
}

void Rs::schedule_next_sweep() {
  if (sweep_interval_ == 0) return;
  kernel::Kernel* k = &kern();
  const auto self = endpoint();
  // analyze-suppress(raw-kernel-send): self-notify fired from a clock
  // callback, outside any request window; there is no cross-component
  // dependency for the window to observe.
  k->clock().call_after(sweep_interval_, [k, self] { k->notify(self, self, RS_SWEEP); });
}

void Rs::run_sweep() {
  FI_BLOCK("rs");
  st().sweeps += 1;

  // Round 1: anyone who missed two consecutive pings is declared hung and
  // handed to the recovery engine (hang -> crash conversion, SII-E).
  // Quarantined components are skipped: they are parked by the ladder, not
  // hung, and the kernel would drop the ping anyway.
  st().comps.for_each([&](std::size_t i, const RsCompInfo& c) {
    if (kern().is_quarantined(kernel::Endpoint{c.ep})) return;
    if (FI_BRANCH("rs", c.pings_outstanding >= 2)) {
      st().hangs_detected += 1;
      OSIRIS_INFO("rs", "endpoint %d missed %u pings: recovering", c.ep, c.pings_outstanding);
      st().comps.mutate(i).pings_outstanding = 0;
      kern().recover_hung(kernel::Endpoint{c.ep});
    }
  });

  FI_BLOCK("rs");
  // Publish liveness telemetry ASYNCHRONOUSLY: the Recovery Server must
  // never block on a component it monitors — a synchronous call into a hung
  // DS would hang RS itself and leave the whole system unrecoverable.
  if (st().sweeps % 4 == 1) {
    seep_send(kernel::kDsEp, encode_text(DS_PUBLISH, "rs.sweeps", st().sweeps.get()));
    FI_BLOCK("rs");
  }

  // Round 2: ping everyone (except parked components) for the next sweep.
  st().comps.for_each([&](std::size_t i, const RsCompInfo& c) {
    if (kern().is_quarantined(kernel::Endpoint{c.ep})) return;
    st().comps.mutate(i).pings_outstanding = c.pings_outstanding + 1;
    OSIRIS_TRACE_EVENT(kHeartbeatPing, endpoint().value, static_cast<std::uint64_t>(c.ep));
    seep_notify(kernel::Endpoint{c.ep}, RS_PING);
    st().pings_sent += 1;
  });
  schedule_next_sweep();
}

void Rs::register_handlers() {
  on_notify(RS_SWEEP, &Rs::do_sweep);
  on_notify(RS_PONG, &Rs::do_pong);
  on(RS_STATUS, &Rs::do_status);
  on(RS_PARK, &Rs::do_park);
  on(RS_READMIT, &Rs::do_readmit);
  on_notify(DS_NOTIFY_SUB, &Rs::ignore_ds_note);
  on_reply(DS_PUBLISH, &Rs::ignore_publish_ack);
}

void Rs::on_message(const Message&) { FI_BLOCK("rs"); }

std::optional<Message> Rs::do_sweep(const Message&) {
  run_sweep();
  return std::nullopt;
}

std::optional<Message> Rs::do_pong(const Message& m) {
  const std::int32_t ep = m.sender.value;
  const std::size_t i = st().comps.find([ep](const RsCompInfo& c) { return c.ep == ep; });
  if (i != decltype(st().comps)::npos) {
    auto& c = st().comps.mutate(i);
    c.pings_outstanding = 0;
    c.last_pong_tick = kern().clock().now();
  }
  return std::nullopt;
}

std::optional<Message> Rs::do_status(const Message& m) {
  FI_BLOCK("rs");
  const auto ep = kernel::Endpoint{MsgView(m).i32(0)};
  // Scan the monitoring table for liveness info on the queried endpoint.
  std::uint64_t last_pong = 0;
  std::uint64_t parked = 0;
  st().comps.for_each([&](std::size_t, const RsCompInfo& c) {
    FI_BLOCK("rs");
    if (c.ep == ep.value) {
      last_pong = c.last_pong_tick;
      parked = c.parked;
    }
  });
  FI_BLOCK("rs");
  Message r = make_reply(m.type, OK);
  r.arg[1] = engine_ != nullptr ? engine_->recoveries_of(ep) : 0;
  r.arg[2] = st().hangs_detected;
  r.arg[3] = last_pong;
  // The heartbeat slot answers as "quarantined" while the ladder has the
  // component parked (kernel state is authoritative; the table flag
  // covers engines without a registered kernel slot).
  r.arg[4] = (parked != 0 || kern().is_quarantined(ep)) ? 1 : 0;
  return r;
}

std::optional<Message> Rs::do_park(const Message& m) {
  // From the RCB: a component was parked by the escalation ladder. Mark
  // the heartbeat slot quarantined and arm the readmission timer.
  FI_BLOCK("rs");
  const MsgView v(m);
  const std::int32_t ep = v.i32(0);
  const Tick cooldown = static_cast<Tick>(v.u(1));
  st().parks_seen += 1;
  const std::size_t i = st().comps.find([ep](const RsCompInfo& c) { return c.ep == ep; });
  if (i != decltype(st().comps)::npos) {
    auto& c = st().comps.mutate(i);
    c.parked = 1;
    c.pings_outstanding = 0;  // parked, not hung: stale pings are void
  }
  if (engine_ != nullptr) {
    recovery::Engine* eng = engine_;
    kern().clock().call_after(cooldown, [eng, ep] { eng->readmit(kernel::Endpoint{ep}); });
  }
  return std::nullopt;  // fire-and-forget: the RCB never blocks on RS
}

std::optional<Message> Rs::do_readmit(const Message& m) {
  FI_BLOCK("rs");
  const std::int32_t ep = MsgView(m).i32(0);
  const std::size_t i = st().comps.find([ep](const RsCompInfo& c) { return c.ep == ep; });
  if (i != decltype(st().comps)::npos) {
    auto& c = st().comps.mutate(i);
    c.parked = 0;
    c.pings_outstanding = 0;
    c.last_pong_tick = kern().clock().now();  // grace until the next sweep
  }
  return std::nullopt;
}

std::optional<Message> Rs::ignore_ds_note(const Message&) {
  return std::nullopt;  // informational: a watched key changed
}

std::optional<Message> Rs::ignore_publish_ack(const Message&) {
  return std::nullopt;  // async telemetry ack (possibly E_CRASH): ignored
}

}  // namespace osiris::servers
