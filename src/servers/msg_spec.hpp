// Declarative protocol spec: the single message table driving dispatch,
// SEEP classification, marshalling, trace naming and the static analyzer.
//
// Each message type is declared exactly once in OSIRIS_MSG_SPEC with its
// symbolic name, numeric value, owning server, SEEP class, delivery kind and
// arg/text schema. Everything else derives from this table:
//
//   - build_classification() (servers/protocol.cpp) iterates the table — the
//     hand-maintained parallel classification is gone;
//   - ServerCommon::dispatch() validates incoming messages against the schema
//     and fail-stops on unregistered types (paper SII-E);
//   - encode()/MsgView are the typed marshalling layer used by servers and
//     os/syscalls.cpp instead of hand-packed arg[] accesses;
//   - trace exporters resolve message types to symbolic names via msg_name();
//   - tools/analyze parses this very table and cross-checks it against the
//     handler registrations in each server's .cpp.
//
// Row format: X(NAME, value, owner, class, kind, nargs, text, "doc")
//   owner  the server whose dispatch handles the message ("client" = delivered
//          to user processes / subscribers, "any" = handled by ServerCommon)
//   class  NSM = non-state-modifying, SM = state-modifying,
//          RSC = requester-scoped (paper SVII extended policy)
//   kind   REQ = replyable request, SEND = fire-and-forget send,
//          NOTE = notification (delivered with kNotifyBit)
//   nargs  number of meaningful request args (args beyond this must be 0)
//   text   TXT if the request carries m.text, NOTEXT otherwise
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "kernel/faults.hpp"
#include "kernel/message.hpp"
#include "seep/seep.hpp"
#include "support/common.hpp"

// clang-format off
#define OSIRIS_MSG_SPEC(X)                                                                         \
  /* --- PM: Process Manager ----------------------------------------------------------------- */ \
  X(PM_FORK,        0x101, pm,     SM,  REQ,  1, NOTEXT, "arg0=child client endpoint -> reply arg0=child pid") \
  X(PM_EXIT,        0x102, pm,     SM,  REQ,  1, NOTEXT, "arg0=exit status")                       \
  X(PM_WAIT,        0x103, pm,     SM,  REQ,  1, NOTEXT, "arg0=pid or 0=any -> reply arg0=pid, arg1=status") \
  X(PM_GETPID,      0x104, pm,     NSM, REQ,  0, NOTEXT, "-> reply arg0=pid")                      \
  X(PM_GETPPID,     0x105, pm,     NSM, REQ,  0, NOTEXT, "-> reply arg0=ppid")                     \
  X(PM_KILL,        0x106, pm,     SM,  REQ,  2, NOTEXT, "arg0=pid, arg1=signal")                  \
  X(PM_EXEC,        0x107, pm,     SM,  REQ,  0, TXT,    "text=path")                              \
  X(PM_BRK,         0x108, pm,     SM,  REQ,  1, NOTEXT, "arg0=new break -> reply arg0=break")     \
  X(PM_SIGACTION,   0x109, pm,     SM,  REQ,  2, NOTEXT, "arg0=signal, arg1=handler id (0 = default)") \
  X(PM_SIGPENDING,  0x10a, pm,     NSM, REQ,  0, NOTEXT, "-> reply arg0=pending mask")             \
  X(PM_TIMES,       0x10b, pm,     NSM, REQ,  0, NOTEXT, "-> reply arg0=user ticks, arg1=sys ticks") \
  X(PM_GETMEMINFO,  0x10c, pm,     NSM, REQ,  0, NOTEXT, "-> reply arg0=free pages, arg1=total pages") \
  X(PM_UNAME,       0x10d, pm,     NSM, REQ,  0, NOTEXT, "-> reply text=system name")              \
  X(PM_GETUID,      0x10e, pm,     NSM, REQ,  0, NOTEXT, "-> reply arg0=uid")                      \
  X(PM_SETUID,      0x10f, pm,     SM,  REQ,  1, NOTEXT, "arg0=uid")                               \
  X(PM_PROCSTAT,    0x110, pm,     NSM, REQ,  1, NOTEXT, "arg0=pid -> reply arg0=state, arg1=parent pid") \
  /* PM -> user signal delivery: mutates the *user's* pending mask, and a     */                   \
  /* notification has no requester to reconcile with an error reply.          */                   \
  X(PM_SIG_NOTIFY,  0x150, client, SM,  NOTE, 1, NOTEXT, "notify PM -> user: arg0=signal mask")    \
  X(PM_KILL_EP,     0x151, pm,     SM,  SEND, 1, NOTEXT, "RCB -> PM: terminate the process owning endpoint arg0") \
  /* --- VFS: Virtual Filesystem Server ------------------------------------------------------ */ \
  X(VFS_OPEN,       0x201, vfs,    SM,  REQ,  1, TXT,    "text=path, arg0=flags (O_*) -> reply arg0=fd") \
  X(VFS_CLOSE,      0x202, vfs,    SM,  REQ,  1, NOTEXT, "arg0=fd")                                \
  X(VFS_READ,       0x203, vfs,    SM,  REQ,  3, NOTEXT, "arg0=fd, arg1=grant, arg2=len -> reply arg0=n") \
  X(VFS_WRITE,      0x204, vfs,    SM,  REQ,  3, NOTEXT, "arg0=fd, arg1=grant, arg2=len -> reply arg0=n") \
  X(VFS_LSEEK,      0x205, vfs,    SM,  REQ,  3, NOTEXT, "arg0=fd, arg1=offset, arg2=whence -> reply arg0=pos") \
  X(VFS_STAT,       0x206, vfs,    NSM, REQ,  0, TXT,    "text=path -> reply arg0=size, arg1=type, arg2=nlinks") \
  X(VFS_FSTAT,      0x207, vfs,    NSM, REQ,  1, NOTEXT, "arg0=fd -> reply arg0=size, arg1=type, arg2=pos") \
  X(VFS_UNLINK,     0x208, vfs,    SM,  REQ,  0, TXT,    "text=path")                              \
  X(VFS_MKDIR,      0x209, vfs,    SM,  REQ,  0, TXT,    "text=path")                              \
  X(VFS_RMDIR,      0x20a, vfs,    SM,  REQ,  0, TXT,    "text=path")                              \
  X(VFS_RENAME,     0x20b, vfs,    SM,  REQ,  0, TXT,    "text=path (\"old:new\" in one directory)") \
  /* READDIR is positionless (index in arg0), so repeating it after rollback  */                   \
  /* is invisible to VFS — read-only despite the cursor-like interface.       */                   \
  X(VFS_READDIR,    0x20c, vfs,    NSM, REQ,  1, TXT,    "text=path, arg0=index -> reply text=name, arg1=ino") \
  X(VFS_PIPE,       0x20d, vfs,    SM,  REQ,  0, NOTEXT, "-> reply arg0=read fd, arg1=write fd")   \
  X(VFS_DUP,        0x20e, vfs,    SM,  REQ,  1, NOTEXT, "arg0=fd -> reply arg0=new fd")           \
  X(VFS_TRUNC,      0x20f, vfs,    SM,  REQ,  1, TXT,    "text=path, arg0=new size")               \
  X(VFS_SYNC,       0x210, vfs,    SM,  REQ,  0, NOTEXT, "flush the block cache")                  \
  X(VFS_ACCESS,     0x211, vfs,    NSM, REQ,  0, TXT,    "text=path -> reply OK / E_NOENT")        \
  X(VFS_PM_FORK,    0x220, vfs,    SM,  REQ,  3, NOTEXT, "PM->VFS: arg0=parent pid, arg1=child pid, arg2=child ep") \
  X(VFS_PM_EXIT,    0x221, vfs,    SM,  REQ,  1, NOTEXT, "PM->VFS: arg0=pid")                      \
  /* PM_EXEC only *checks* that the binary exists (read-only lookup): keeping */                   \
  /* it NSM is a measurable chunk of PM's Table I coverage gain.              */                   \
  X(VFS_PM_EXEC,    0x222, vfs,    NSM, REQ,  2, TXT,    "PM->VFS: text=path, arg1=correlation pid (read-only binary check)") \
  X(VFS_DEV_DONE,   0x230, vfs,    NSM, NOTE, 1, NOTEXT, "notify: disk completion, arg0=op token") \
  /* --- VM: Virtual Memory Manager ----------------------------------------------------------- */\
  /* MMAP/MUNMAP/BRK_AS touch only the requesting process's address space:    */                   \
  /* requester-scoped, the paper's SVII extended-policy taint example.        */                   \
  X(VM_MMAP,        0x301, vm,     RSC, REQ,  2, NOTEXT, "arg0=pid, arg1=length -> reply arg0=region id") \
  X(VM_MUNMAP,      0x302, vm,     RSC, REQ,  2, NOTEXT, "arg0=pid, arg1=region id")               \
  X(VM_BRK_AS,      0x303, vm,     RSC, REQ,  2, NOTEXT, "arg0=pid, arg1=new break -> reply arg0=break") \
  X(VM_FORK_AS,     0x304, vm,     SM,  REQ,  2, NOTEXT, "arg0=parent pid, arg1=child pid")        \
  X(VM_EXIT_AS,     0x305, vm,     SM,  REQ,  1, NOTEXT, "arg0=pid")                               \
  X(VM_EXEC_AS,     0x306, vm,     SM,  REQ,  2, NOTEXT, "arg0=pid, arg1=image pages")             \
  X(VM_INFO,        0x307, vm,     NSM, REQ,  0, NOTEXT, "-> reply arg0=free pages, arg1=total pages") \
  /* --- DS: Data Store ----------------------------------------------------------------------- */\
  X(DS_PUBLISH,     0x401, ds,     SM,  REQ,  1, TXT,    "text=key, arg0=value")                   \
  X(DS_RETRIEVE,    0x402, ds,     NSM, REQ,  0, TXT,    "text=key -> reply arg0=value")           \
  X(DS_DELETE,      0x403, ds,     SM,  REQ,  0, TXT,    "text=key")                               \
  X(DS_SUBSCRIBE,   0x404, ds,     SM,  REQ,  0, TXT,    "text=key prefix")                        \
  X(DS_CHECK,       0x405, ds,     NSM, REQ,  0, NOTEXT, "-> reply arg0=#pending events, text=last key") \
  X(DS_SNAPSHOT,    0x406, ds,     NSM, REQ,  0, NOTEXT, "-> reply arg0=#entries")                 \
  /* Subscriber pokes carry no payload and mutate nothing on the receiver —   */                   \
  /* NSM + non-replyable is why DS stays recoverable under the enhanced       */                   \
  /* policy where the pessimistic one would close every publish window.       */                   \
  X(DS_NOTIFY_SUB,  0x410, client, NSM, NOTE, 0, NOTEXT, "notify DS -> subscriber: a matching key changed") \
  /* --- RS: Recovery Server ------------------------------------------------------------------ */\
  X(RS_STATUS,      0x501, rs,     NSM, REQ,  1, NOTEXT, "arg0=endpoint -> reply arg1=recoveries, arg2=hangs, arg3=last pong, arg4=quarantined") \
  /* Heartbeats mutate RS's liveness table and have no requester: SM +        */                   \
  /* non-replyable. This is why RS gains almost nothing from the enhanced     */                   \
  /* policy (49.4% -> 50.5% in our Table I reproduction).                     */                   \
  X(RS_PING,        0x510, any,    SM,  NOTE, 0, NOTEXT, "notify RS -> server (heartbeat); answered by ServerCommon") \
  X(RS_PONG,        0x511, rs,     SM,  NOTE, 0, NOTEXT, "notify server -> RS")                    \
  X(RS_SWEEP,       0x520, rs,     SM,  NOTE, 0, NOTEXT, "notify (clock -> RS): run the heartbeat sweep") \
  X(RS_PARK,        0x521, rs,     SM,  SEND, 3, NOTEXT, "RCB -> RS: arg0=endpoint, arg1=cooldown, arg2=rung; schedule readmission") \
  X(RS_READMIT,     0x522, rs,     SM,  SEND, 1, NOTEXT, "RCB -> RS: arg0=endpoint; quarantine lifted") \
  /* Storm-injection notes (liveness campaigns). Both are well-formed        */                   \
  /* no-ops consumed by ServerCommon before handler lookup — the point of a  */                   \
  /* storm is the *volume* of dispatches, not what any one message does.     */                   \
  X(FI_SPIN,        0x530, any,    SM,  NOTE, 0, NOTEXT, "notify self -> self: one spin-storm iteration (burns a dispatch)") \
  X(FI_FLOOD,       0x531, any,    SM,  NOTE, 0, NOTEXT, "notify storm -> victim: one flood-storm request") \
  /* --- SYS: kernel task (privileged operations, part of the RCB) ---------------------------- */\
  X(SYS_FORK,       0x601, sys,    SM,  REQ,  2, NOTEXT, "arg0=parent pid, arg1=child pid")        \
  X(SYS_EXIT,       0x602, sys,    SM,  REQ,  1, NOTEXT, "arg0=pid")                               \
  X(SYS_MAP,        0x603, sys,    SM,  REQ,  3, NOTEXT, "arg0=pid, arg1=page, arg2=frame")        \
  X(SYS_UNMAP,      0x604, sys,    SM,  REQ,  3, NOTEXT, "arg0=pid, arg1=page")                    \
  X(SYS_GETINFO,    0x605, sys,    NSM, REQ,  1, NOTEXT, "arg0=what -> reply arg0=value")          \
  X(SYS_TIMES,      0x606, sys,    NSM, REQ,  0, NOTEXT, "-> reply arg0=uptime ticks")             \
  X(SYS_PRIV,       0x607, sys,    SM,  REQ,  2, NOTEXT, "arg0=pid, arg1=privilege flags")
// clang-format on

namespace osiris::servers {

/// All protocol message types, generated from the spec table. Values are
/// globally unique across servers (0x1xx PM, 0x2xx VFS, ... 0x6xx SYS).
enum MsgType : std::uint32_t {
#define X(NAME, VALUE, OWNER, CLS, KIND, NARGS, TEXT, DOC) NAME = VALUE,
  OSIRIS_MSG_SPEC(X)
#undef X
};

/// Delivery kind of a message type.
enum class MsgKind : std::uint8_t {
  kRequest,  // replyable request: sender waits, reconciliation may E_CRASH it
  kSend,     // fire-and-forget plain send (no reply expected)
  kNotify,   // notification: delivered with kernel::kNotifyBit set
};

/// One row of the protocol spec.
struct MsgSpec {
  std::uint32_t type;
  const char* name;
  const char* server;  // owning server ("client"/"any" = no single dispatcher)
  seep::SeepClass seep;
  MsgKind kind;
  std::uint8_t args;  // number of meaningful request args
  bool text;          // whether the request carries m.text
  const char* doc;

  [[nodiscard]] constexpr bool replyable() const noexcept { return kind == MsgKind::kRequest; }
  [[nodiscard]] constexpr bool notify() const noexcept { return kind == MsgKind::kNotify; }
};

namespace spec_detail {
inline constexpr seep::SeepClass NSM = seep::SeepClass::kNonStateModifying;
inline constexpr seep::SeepClass SM = seep::SeepClass::kStateModifying;
inline constexpr seep::SeepClass RSC = seep::SeepClass::kRequesterScoped;
inline constexpr MsgKind REQ = MsgKind::kRequest;
inline constexpr MsgKind SEND = MsgKind::kSend;
inline constexpr MsgKind NOTE = MsgKind::kNotify;
inline constexpr bool TXT = true;
inline constexpr bool NOTEXT = false;
}  // namespace spec_detail

/// The registry itself: one entry per protocol message, in table order.
inline constexpr MsgSpec kMsgSpecTable[] = {
#define X(NAME, VALUE, OWNER, CLS, KIND, NARGS, TEXT, DOC)                              \
  MsgSpec{VALUE, #NAME, #OWNER, spec_detail::CLS, spec_detail::KIND, NARGS,             \
          spec_detail::TEXT, DOC},
    OSIRIS_MSG_SPEC(X)
#undef X
};

inline constexpr std::size_t kMsgSpecCount = std::size(kMsgSpecTable);

// Flat-array type -> row index, built at compile time: the dispatch hot path
// does one subtract, one bounds check and one array load — no hashing.
inline constexpr std::uint32_t kMsgBase = 0x100;
inline constexpr std::uint32_t kMsgSlots = 0x600;  // covers 0x100..0x6ff

namespace spec_detail {
consteval std::array<std::int16_t, kMsgSlots> build_index() {
  std::array<std::int16_t, kMsgSlots> idx{};
  for (auto& slot : idx) slot = -1;
  for (std::size_t i = 0; i < kMsgSpecCount; ++i) {
    const std::uint32_t off = kMsgSpecTable[i].type - kMsgBase;
    if (off >= kMsgSlots || idx[off] != -1) throw "msg spec type out of range or duplicated";
    idx[off] = static_cast<std::int16_t>(i);
  }
  return idx;
}
inline constexpr std::array<std::int16_t, kMsgSlots> kIndex = build_index();
}  // namespace spec_detail

/// Look up the spec row for a message type; kNotifyBit/kReplyBit are ignored.
/// Returns nullptr for types outside the registry.
[[nodiscard]] inline constexpr const MsgSpec* find_msg_spec(std::uint32_t type) noexcept {
  const std::uint32_t base = (type & ~(kernel::kNotifyBit | kernel::kReplyBit)) - kMsgBase;
  if (base >= kMsgSlots) return nullptr;
  const std::int16_t i = spec_detail::kIndex[base];
  return i < 0 ? nullptr : &kMsgSpecTable[i];
}

/// Declarative batching eligibility for the kernel dispatch fast path
/// (DESIGN.md §14): a message may share a dispatch batch — and therefore a
/// single physical checkpoint — exactly when the spec table classifies it as
/// a non-state-modifying replyable request. NSM handlers never dirty the
/// undo log, so every window open after the batch's first finds a clean log
/// and the lazy checkpoint elides the reset. SM/RSC requests, sends,
/// notifications, and replies all break the batch. Installed into the kernel
/// via Kernel::set_batch_eligible (the substrate stays below the protocol).
[[nodiscard]] inline constexpr bool is_batch_eligible(std::uint32_t type) noexcept {
  if ((type & (kernel::kNotifyBit | kernel::kReplyBit)) != 0) return false;
  const MsgSpec* s = find_msg_spec(type);
  return s != nullptr && s->kind == MsgKind::kRequest &&
         s->seep == seep::SeepClass::kNonStateModifying;
}

/// Heartbeat-protocol traffic, exempt from the kernel's storm-throttle gate
/// (Kernel::set_throttle_exempt): dropping a throttled component's pongs
/// would convert every throttle into a phantom hang, and the storm rung's
/// whole point is that the component is *live*, just feverish. `type` is the
/// base type (notify/reply bits stripped by the kernel).
[[nodiscard]] inline constexpr bool is_throttle_exempt(std::uint32_t type) noexcept {
  return type == RS_PING || type == RS_PONG;
}

/// Symbolic name of a message type, or nullptr if unregistered.
[[nodiscard]] inline constexpr const char* msg_name(std::uint32_t type) noexcept {
  const MsgSpec* s = find_msg_spec(type);
  return s ? s->name : nullptr;
}

/// Human-readable label: symbolic name plus "+notify"/"+reply" qualifiers,
/// falling back to hex for unregistered types. Used by the trace exporters.
[[nodiscard]] inline std::string msg_label(std::uint32_t type) {
  std::string out;
  if (const char* name = msg_name(type)) {
    out = name;
  } else {
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%x", type & ~(kernel::kNotifyBit | kernel::kReplyBit));
    out = buf;
  }
  if (type & kernel::kNotifyBit) out += "+notify";
  if (type & kernel::kReplyBit) out += "+reply";
  return out;
}

// --- Typed marshalling -------------------------------------------------------

/// Sender-side: build a schema-checked request message. A violation here is a
/// bug in the *sender's* harness code, so it asserts rather than fail-stops.
/// `type` may carry kNotifyBit (self-notifies and boot pokes).
template <typename... Args>
[[nodiscard]] kernel::Message encode(std::uint32_t type, Args... args) {
  const MsgSpec* s = find_msg_spec(type);
  OSIRIS_ASSERT(s != nullptr);                  // sending an unregistered type
  OSIRIS_ASSERT(sizeof...(Args) <= s->args);    // more args than the schema allows
  kernel::Message m;
  m.type = type;
  if constexpr (sizeof...(Args) > 0) {
    const std::uint64_t packed[] = {static_cast<std::uint64_t>(args)...};
    for (std::size_t i = 0; i < sizeof...(Args); ++i) m.arg[i] = packed[i];
  }
  return m;
}

/// Sender-side variant for messages whose schema carries a text payload.
template <typename... Args>
[[nodiscard]] kernel::Message encode_text(std::uint32_t type, std::string_view text,
                                          Args... args) {
  const MsgSpec* s = find_msg_spec(type);
  OSIRIS_ASSERT(s != nullptr && s->text);       // text on a textless message
  kernel::Message m = encode(type, args...);
  m.text.assign(text);
  return m;
}

/// Receiver-side: schema-validated view over an incoming request. Reading
/// outside the schema is a malformed request — a fail-stop fault of the
/// current component (paper SII-E), contained at the dispatch boundary.
class MsgView {
 public:
  explicit MsgView(const kernel::Message& m)
      : m_(m), spec_(find_msg_spec(m.type)) {
    if (spec_ == nullptr) {
      throw kernel::FailStopFault("MsgView: unregistered message type", /*site_id=*/0);
    }
  }

  [[nodiscard]] std::uint64_t u(int i) const {
    if (i < 0 || i >= spec_->args) {
      throw kernel::FailStopFault("MsgView: arg index outside message schema", /*site_id=*/0);
    }
    return m_.arg[i];
  }
  [[nodiscard]] std::int64_t s(int i) const { return static_cast<std::int64_t>(u(i)); }
  [[nodiscard]] std::int32_t i32(int i) const { return static_cast<std::int32_t>(u(i)); }

  [[nodiscard]] std::string_view text() const {
    if (!spec_->text) {
      throw kernel::FailStopFault("MsgView: text read on a textless message", /*site_id=*/0);
    }
    return m_.text.view();
  }

  [[nodiscard]] const MsgSpec& spec() const noexcept { return *spec_; }
  [[nodiscard]] const kernel::Message& raw() const noexcept { return m_; }

 private:
  const kernel::Message& m_;
  const MsgSpec* spec_;
};

}  // namespace osiris::servers
