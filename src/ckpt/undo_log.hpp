// Per-component undo log (paper SIV-C).
//
// A checkpoint in OSIRIS is not a state copy: it is the *empty undo log* at
// the top of the request processing loop. Every instrumented store appends
// (address, original bytes); restoring the checkpoint replays the entries in
// reverse. This favours the paper's observation that OS components do a
// small amount of work per message, so logs stay tiny and checkpoint
// creation (log reset) is O(1).
//
// The log lives in the Reliable Computing Base. The paper protects it with
// software fault isolation; we model that with canaries validated on every
// rollback (a corrupted log would indicate an RCB violation and panics the
// simulator, because the experiment would be meaningless).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace osiris::ckpt {

struct UndoLogStats {
  std::uint64_t records = 0;        // total record() calls since boot
  std::uint64_t bytes_logged = 0;   // total bytes captured since boot
  std::size_t max_log_bytes = 0;    // high-water mark of live log size (Table VI)
  std::uint64_t rollbacks = 0;
  std::uint64_t checkpoints = 0;    // reset() calls
};

class UndoLog {
 public:
  UndoLog();

  UndoLog(const UndoLog&) = delete;
  UndoLog& operator=(const UndoLog&) = delete;

  /// Record the current contents of [addr, addr+len) for rollback.
  void record(void* addr, std::size_t len);

  /// Roll back all recorded writes (newest first), leaving the log empty.
  void rollback();

  /// Discard the log: this *is* checkpoint creation at the top of the loop.
  void checkpoint();

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t entry_count() const noexcept { return entries_.size(); }

  /// Live size of the log in bytes (entries + saved data).
  [[nodiscard]] std::size_t live_bytes() const noexcept;

  [[nodiscard]] const UndoLogStats& stats() const noexcept { return stats_; }

  /// SFI-style integrity check of the log's guard canaries.
  [[nodiscard]] bool integrity_ok() const noexcept;

 private:
  struct Entry {
    void* addr;
    std::uint32_t len;
    std::uint32_t data_off;  // offset into old_bytes_
  };

  static constexpr std::uint64_t kCanary = 0x05151515'0B51B150ULL;

  std::uint64_t canary_head_;
  std::vector<Entry> entries_;
  std::vector<std::byte> old_bytes_;
  UndoLogStats stats_;
  std::uint64_t canary_tail_;
};

}  // namespace osiris::ckpt
