// Per-component undo log (paper SIV-C).
//
// A checkpoint in OSIRIS is not a state copy: it is the *empty undo log* at
// the top of the request processing loop. Every instrumented store appends
// (address, original bytes); restoring the checkpoint replays the entries in
// reverse. This favours the paper's observation that OS components do a
// small amount of work per message, so logs stay tiny and checkpoint
// creation (log reset) is O(1).
//
// Hot-path layout (Table V): entries and saved bytes share ONE arena
// allocation — entry headers grow from the front, saved old-bytes grow down
// from the back — so the common record() touches exactly one cache-warm
// buffer and never allocates. Data offsets are stored as distance from the
// arena's end, which survives regrowth without fixups. A duplicate-store
// filter skips re-logging an (addr, len) range already captured since the
// last checkpoint: undo logs are first-write-wins (rollback replays oldest
// last), so dropping repeat captures is semantically free and shrinks logs
// for loop-heavy handlers.
//
// The log lives in the Reliable Computing Base. The paper protects it with
// software fault isolation; we model that with canaries validated on every
// rollback (a corrupted log would indicate an RCB violation and panics the
// simulator, because the experiment would be meaningless).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "ckpt/page_store.hpp"

namespace osiris::ckpt {

struct UndoLogStats {
  std::uint64_t records = 0;        // total record() calls since boot
  std::uint64_t bytes_logged = 0;   // total bytes captured since boot
  std::uint64_t duplicate_skips = 0;  // records elided by the first-write filter
  std::size_t max_log_bytes = 0;    // high-water mark of live log size (Table VI)
  std::uint64_t rollbacks = 0;
  std::uint64_t partial_rollbacks = 0;  // rollback_to() calls (FOM park-time sub-rollback)
  std::uint64_t checkpoints = 0;    // reset() calls
  std::uint64_t checkpoints_skipped = 0;  // lazy checkpoints elided on a clean log
  // --- page tier (DESIGN.md §17); all zero unless a PageStore is attached --
  std::uint64_t page_records = 0;       // CoW page snapshots captured
  std::uint64_t page_bytes_logged = 0;  // bytes of captured page pre-images
  std::uint64_t page_compactions = 0;   // incremental snapshot-retire steps
  std::uint64_t compacted_bytes = 0;    // snapshot bytes recycled by compaction
  std::uint64_t delta_restart_bytes = 0;  // restart bytes moved as dirty pages
  std::uint64_t full_copy_bytes = 0;      // what whole-image restarts would move
};

class UndoLog {
 public:
  UndoLog();

  UndoLog(const UndoLog&) = delete;
  UndoLog& operator=(const UndoLog&) = delete;

  /// Record the current contents of [addr, addr+len) for rollback.
  void record(void* addr, std::size_t len) {
    if (filter_hit(addr, len)) return;
    record_slow(addr, len);
  }

  /// Roll back all recorded writes (newest first), leaving the log empty.
  void rollback();

  /// A position in the log. Taking a mark before a speculative attempt and
  /// rolling back to it on abort undoes exactly that attempt's stores — the
  /// FOM executor uses this so a parked request owns zero live entries. With
  /// a page tier attached the position spans both tiers: the mark also pins
  /// the page-record count, and rollback_to() truncates both.
  struct Mark {
    std::size_t n_entries = 0;
    std::size_t data_bytes = 0;
    std::size_t page_records = 0;
  };

  [[nodiscard]] Mark mark() const noexcept {
    return Mark{n_entries_, data_bytes_, pages_ != nullptr ? pages_->record_count() : 0};
  }

  /// Roll back every write recorded after `m` (newest first), truncating the
  /// log back to the mark. The first-write filter epoch is bumped: stores the
  /// surviving prefix captured may be re-logged on retry, which is benign
  /// (rollback replays newest-first, so the oldest capture still wins).
  void rollback_to(const Mark& m);

  /// Discard the log: this *is* checkpoint creation at the top of the loop.
  void checkpoint();

  /// Lazy checkpoint: elide the reset when the log is already clean.
  /// Observationally identical to checkpoint() — an empty log emits no
  /// kUndoTruncate either way and the filter holds no live entries — so the
  /// skip is trace-invariant. This is what makes "one physical checkpoint
  /// per dispatch batch" fall out of SEEP classification: NSM handlers never
  /// dirty the log, so every window open after the batch's first finds it
  /// clean (DESIGN.md §14).
  void checkpoint_if_dirty() {
    if (n_entries_ == 0 && data_bytes_ == 0 && filter_live_ == 0 &&
        (pages_ == nullptr || pages_->clean())) {
      ++stats_.checkpoints_skipped;
      return;
    }
    checkpoint();
  }

  /// Attach the page tier: checkpoint/rollback/rollback_to/mark cascade into
  /// it, so every existing call site (seep::Window, the recovery engine, the
  /// FOM executor) composes across both tiers without change. The store does
  /// NOT own the PageStore — the component does, next to its regions.
  void attach_pages(PageStore* pages) noexcept { pages_ = pages; }
  [[nodiscard]] PageStore* pages() const noexcept { return pages_; }

  [[nodiscard]] bool empty() const noexcept {
    return n_entries_ == 0 && (pages_ == nullptr || pages_->clean());
  }
  [[nodiscard]] std::size_t entry_count() const noexcept { return n_entries_; }

  /// Live size of the log in bytes (entries + saved data), tracked
  /// incrementally — record() never recomputes it.
  [[nodiscard]] std::size_t live_bytes() const noexcept { return live_bytes_; }

  [[nodiscard]] const UndoLogStats& stats() const noexcept {
    if (pages_ != nullptr) {
      // Page-tier counters surface through UndoLogStats so every consumer
      // (collect_metrics, the campaign report, benches) sees one story.
      const PageStoreStats& ps = pages_->stats();
      stats_.page_records = ps.page_records;
      stats_.page_bytes_logged = ps.page_bytes_logged;
      stats_.page_compactions = ps.compactions;
      stats_.compacted_bytes = ps.compacted_bytes;
      stats_.delta_restart_bytes = ps.delta_restart_bytes;
      stats_.full_copy_bytes = ps.full_copy_bytes;
    }
    return stats_;
  }

  /// SFI-style integrity check of the log's guard canaries.
  [[nodiscard]] bool integrity_ok() const noexcept;

  /// Trace attribution: the owning component's endpoint, or -1 for logs used
  /// standalone (tests, microbenchmarks), whose events are not recorded.
  void set_trace_id(std::int32_t comp) noexcept { trace_id_ = comp; }
  [[nodiscard]] std::int32_t trace_id() const noexcept { return trace_id_; }

 private:
  struct Entry {
    void* addr;
    std::uint32_t len;
    std::uint32_t end_off;  // distance from the arena end to the saved bytes
  };

  // Exact first-write filter: an open-addressed, linearly-probed table of
  // the (addr, len) ranges captured since the last checkpoint. A match is
  // exact (addr, len) only — overlapping-but-different ranges are still
  // logged. Exactness is a determinism requirement, not just a space trade:
  // a lossy cache's outcome would depend on which address *values* collide,
  // and heap layout varies run to run, whereas entry counts (and therefore
  // the event trace) must depend only on the logical store sequence. Epoch
  // tagging makes clearing at checkpoint()/rollback() O(1); the table
  // doubles once half full, so probe chains stay short and every lookup
  // terminates at a free (stale-epoch) slot.
  struct FilterSlot {
    void* addr = nullptr;
    std::uint32_t len = 0;
    std::uint32_t epoch = 0;
  };
  static constexpr std::size_t kFilterSlots = 256;  // initial size, power of two

  [[nodiscard]] std::size_t filter_index(void* addr) const noexcept {
    const auto h = reinterpret_cast<std::uintptr_t>(addr);
    // Mix the low bits a little: recoverable state is word-aligned.
    return (h ^ (h >> 7)) & (filter_cap_ - 1);
  }

  bool filter_hit(void* addr, std::size_t len) {
    for (std::size_t i = filter_index(addr);; i = (i + 1) & (filter_cap_ - 1)) {
      const FilterSlot& slot = filter_[i];
      if (slot.epoch != filter_epoch_) return false;  // free slot: not captured
      if (slot.addr == addr && slot.len == static_cast<std::uint32_t>(len)) {
        ++stats_.duplicate_skips;
        return true;
      }
    }
  }

  void bump_epoch() noexcept {
    filter_live_ = 0;
    if (++filter_epoch_ == 0) {  // wrapped: stale slots could match epoch 0
      for (std::size_t i = 0; i < filter_cap_; ++i) filter_[i] = FilterSlot{};
      filter_epoch_ = 1;
    }
  }

  void filter_insert(void* addr, std::size_t len);
  void grow_filter();
  void record_slow(void* addr, std::size_t len);
  void grow(std::size_t need_entry_bytes, std::size_t need_data_bytes);

  [[nodiscard]] Entry* entries() noexcept { return reinterpret_cast<Entry*>(arena_.get()); }
  [[nodiscard]] const Entry* entries() const noexcept {
    return reinterpret_cast<const Entry*>(arena_.get());
  }

  static constexpr std::uint64_t kCanary = 0x05151515'0B51B150ULL;

  std::uint64_t canary_head_;
  std::unique_ptr<std::byte[]> arena_;
  std::size_t cap_ = 0;         // arena size in bytes
  std::size_t n_entries_ = 0;   // Entry headers at the arena front
  std::size_t data_bytes_ = 0;  // saved bytes packed at the arena back
  std::size_t live_bytes_ = 0;  // == n_entries_ * sizeof(Entry) + data_bytes_
  std::uint32_t filter_epoch_ = 1;
  std::int32_t trace_id_ = -1;
  PageStore* pages_ = nullptr;  // the second tier; nullptr = arena-only world
  std::unique_ptr<FilterSlot[]> filter_;
  std::size_t filter_cap_ = kFilterSlots;
  std::size_t filter_live_ = 0;  // inserts since the last epoch bump
  mutable UndoLogStats stats_;  // page-tier fields refreshed in stats()
  std::uint64_t canary_tail_;
};

}  // namespace osiris::ckpt
