#include "ckpt/page_store.hpp"

#include <cstring>

#include "support/common.hpp"
#include "trace/trace.hpp"

namespace osiris::ckpt {

namespace {
[[nodiscard]] constexpr bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

[[nodiscard]] constexpr std::size_t log2_of(std::size_t v) {
  std::size_t s = 0;
  while ((std::size_t{1} << s) < v) ++s;
  return s;
}
}  // namespace

PageStore::PageStore(const PagesConfig& cfg)
    : canary_head_(kCanary),
      page_bytes_(cfg.page_bytes),
      page_shift_(log2_of(cfg.page_bytes)),
      compact_batch_(cfg.compact_batch > 0 ? cfg.compact_batch : 1),
      canary_tail_(kCanary) {
  OSIRIS_ASSERT(is_pow2(page_bytes_));
}

void PageStore::register_region(std::byte* base, std::size_t len) {
  OSIRIS_ASSERT(base != nullptr && len > 0 && len % page_bytes_ == 0);
  Region r;
  r.base = base;
  r.len = len;
  r.first_page = total_bytes_ >> page_shift_;
  r.n_pages = len >> page_shift_;
  r.epoch_dirty.assign((r.n_pages + 63) / 64, 0);
  r.xfer_dirty.assign((r.n_pages + 63) / 64, 0);
  const auto lo = reinterpret_cast<std::uintptr_t>(base);
  if (lo < lo_) lo_ = lo;
  if (lo + len > hi_) hi_ = lo + len;
  total_bytes_ += len;
  regions_.push_back(std::move(r));
}

const PageStore::Region* PageStore::find_region(const void* addr) const noexcept {
  const auto a = reinterpret_cast<std::uintptr_t>(addr);
  for (const Region& r : regions_) {
    const auto b = reinterpret_cast<std::uintptr_t>(r.base);
    if (a >= b && a < b + r.len) return &r;
  }
  return nullptr;
}

std::unique_ptr<std::byte[]> PageStore::take_buffer() {
  if (free_pool_.empty() && !retired_.empty()) compact_step();
  if (!free_pool_.empty()) {
    auto buf = std::move(free_pool_.back());
    free_pool_.pop_back();
    return buf;
  }
  resident_bytes_ += page_bytes_;
  if (resident_bytes_ > stats_.max_resident_bytes) stats_.max_resident_bytes = resident_bytes_;
  return std::make_unique<std::byte[]>(page_bytes_);
}

void PageStore::on_store(void* addr, std::size_t len, bool log) {
  OSIRIS_ASSERT(len > 0);
  Region* r = const_cast<Region*>(find_region(addr));
  OSIRIS_ASSERT(r != nullptr);
  const std::size_t off = static_cast<std::size_t>(static_cast<std::byte*>(addr) - r->base);
  OSIRIS_ASSERT(off + len <= r->len);  // stores never straddle regions
  const std::size_t first = off >> page_shift_;
  const std::size_t last = (off + len - 1) >> page_shift_;
  for (std::size_t p = first; p <= last; ++p) {
    set_bit(r->xfer_dirty, p);  // unconditional: the clone must see this
    if (!log) continue;
    if (test_bit(r->epoch_dirty, p)) {
      ++stats_.page_duplicate_skips;
      continue;
    }
    // First write to this page this epoch: capture its pre-image once.
    auto buf = take_buffer();
    std::memcpy(buf.get(), r->base + (p << page_shift_), page_bytes_);
    set_bit(r->epoch_dirty, p);
    records_.push_back(Rec{static_cast<std::uint32_t>(r - regions_.data()),
                           static_cast<std::uint32_t>(p), std::move(buf)});
    ++stats_.page_records;
    stats_.page_bytes_logged += page_bytes_;
    OSIRIS_TRACE_EVENT(kPageCapture, trace_id_, r->first_page + p, records_.size());
  }
}

void PageStore::restore(const Rec& rec) {
  Region& r = regions_[rec.region];
  std::memcpy(r.base + (std::size_t{rec.page} << page_shift_), rec.snap.get(), page_bytes_);
  clear_bit(r.epoch_dirty, rec.page);
  // The restore changed the live bytes away from whatever the clone last
  // synced, so the page must travel on the next delta restart.
  set_bit(r.xfer_dirty, rec.page);
}

void PageStore::rollback() {
  OSIRIS_ASSERT(integrity_ok());
  const std::size_t n = records_.size();
  for (std::size_t i = n; i-- > 0;) {
    restore(records_[i]);
    retired_.push_back(std::move(records_[i].snap));
  }
  records_.clear();
  stats_.page_rollbacks += n;
  if (n > 0) OSIRIS_TRACE_EVENT(kPageRollback, trace_id_, n);
}

void PageStore::rollback_to(std::size_t n_records) {
  OSIRIS_ASSERT(integrity_ok());
  OSIRIS_ASSERT(n_records <= records_.size());
  const std::size_t n = records_.size() - n_records;
  for (std::size_t i = records_.size(); i-- > n_records;) {
    restore(records_[i]);  // clears the page's epoch bit: retry re-captures it
    retired_.push_back(std::move(records_[i].snap));
  }
  records_.resize(n_records);
  stats_.page_rollbacks += n;
  if (n > 0) OSIRIS_TRACE_EVENT(kPageRollback, trace_id_, n);
}

void PageStore::checkpoint() {
  if (!records_.empty()) {
    OSIRIS_TRACE_EVENT(kPageTruncate, trace_id_, records_.size());
    for (Rec& rec : records_) {
      clear_bit(regions_[rec.region].epoch_dirty, rec.page);
      retired_.push_back(std::move(rec.snap));  // superseded: compaction fodder
    }
    records_.clear();
  }
  // The "background" compactor, modelled as deterministic incremental work:
  // each checkpoint retires a bounded batch of superseded snapshots back into
  // the pool, so backlog drains without an O(backlog) spike on any one path.
  compact_step();
}

void PageStore::compact_step() {
  const std::size_t n = retired_.size() < compact_batch_ ? retired_.size() : compact_batch_;
  if (n == 0) return;
  for (std::size_t i = 0; i < n; ++i) {
    free_pool_.push_back(std::move(retired_.back()));
    retired_.pop_back();
  }
  ++stats_.compactions;
  stats_.compacted_bytes += page_bytes_ * n;
}

std::size_t PageStore::sync_transfer_dirty(
    const std::function<void(std::size_t, const std::byte*, std::size_t)>& copy) {
  std::size_t moved = 0;
  for (Region& r : regions_) {
    for (std::size_t w = 0; w < r.xfer_dirty.size(); ++w) {
      std::uint64_t bits = r.xfer_dirty[w];
      while (bits != 0) {
        const std::size_t p = w * 64 + static_cast<std::size_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        copy((r.first_page + p) << page_shift_, r.base + (p << page_shift_), page_bytes_);
        moved += page_bytes_;
      }
      r.xfer_dirty[w] = 0;
    }
  }
  return moved;
}

void PageStore::mark_all_transfer_dirty() {
  for (Region& r : regions_) {
    for (std::size_t w = 0; w < r.xfer_dirty.size(); ++w) r.xfer_dirty[w] = ~std::uint64_t{0};
    // Trailing bits past n_pages are harmless garbage only if masked; keep
    // the invariant that set bits always name real pages.
    const std::size_t tail = r.n_pages & 63;
    if (tail != 0) r.xfer_dirty.back() = (std::uint64_t{1} << tail) - 1;
  }
}

bool PageStore::integrity_ok() const noexcept {
  return canary_head_ == kCanary && canary_tail_ == kCanary;
}

}  // namespace osiris::ckpt
