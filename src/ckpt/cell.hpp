// Instrumented state wrappers — the source-level equivalent of the paper's
// LLVM store-instrumentation pass.
//
// All *recoverable* state of a system server must be built from these types
// (inside a trivially-copyable State struct), so that
//   (1) every store is preceded by an undo-log record of the old bytes, and
//   (2) the Recovery Server can transfer the whole data section into a spare
//       clone with one memcpy (restart phase, SIV-C).
//
// Reads are free; only mutations pay the (mode-gated) logging cost, matching
// the store-only instrumentation in the paper.
#pragma once

#include <cstddef>
#include <cstring>
#include <string_view>
#include <type_traits>

#include "ckpt/context.hpp"
#include "support/common.hpp"
#include "support/fixed_string.hpp"

namespace osiris::ckpt {

/// A single instrumented scalar.
template <typename T>
class Cell {
  static_assert(std::is_trivially_copyable_v<T>, "recoverable state must be trivially copyable");

 public:
  constexpr Cell() = default;
  constexpr explicit Cell(T v) : v_(v) {}

  Cell& operator=(const T& nv) {
    Context::log_write(&v_, sizeof(T));
    v_ = nv;
    return *this;
  }

  operator const T&() const noexcept { return v_; }  // NOLINT(google-explicit-constructor)
  [[nodiscard]] const T& get() const noexcept { return v_; }

  Cell& operator+=(const T& d) { return *this = static_cast<T>(v_ + d); }
  Cell& operator-=(const T& d) { return *this = static_cast<T>(v_ - d); }
  Cell& operator|=(const T& d) { return *this = static_cast<T>(v_ | d); }
  Cell& operator&=(const T& d) { return *this = static_cast<T>(v_ & d); }
  Cell& operator++() { return *this += T{1}; }
  Cell& operator--() { return *this -= T{1}; }

 private:
  T v_{};
};

/// A fixed-capacity instrumented array of trivially-copyable elements.
template <typename T, std::size_t N>
class Array {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  [[nodiscard]] static constexpr std::size_t size() noexcept { return N; }

  [[nodiscard]] const T& at(std::size_t i) const noexcept {
    OSIRIS_ASSERT(i < N);
    return elems_[i];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept { return at(i); }

  /// Logged whole-element store.
  void set(std::size_t i, const T& v) {
    OSIRIS_ASSERT(i < N);
    Context::log_write(&elems_[i], sizeof(T));
    elems_[i] = v;
  }

  /// Logs the element's old bytes once, then hands out a mutable reference
  /// for in-place updates (the idiom for struct-valued table entries).
  [[nodiscard]] T& mutate(std::size_t i) {
    OSIRIS_ASSERT(i < N);
    Context::log_write(&elems_[i], sizeof(T));
    return elems_[i];
  }

  void fill(const T& v) {
    Context::log_write(elems_, sizeof(elems_));
    for (std::size_t i = 0; i < N; ++i) elems_[i] = v;
  }

  /// Fine-grained logged store of a contiguous range — used for buffers
  /// (e.g. pipe data) where logging whole elements would bloat the undo log.
  void store_range(std::size_t first, const T* src, std::size_t n) {
    OSIRIS_ASSERT(first <= N && n <= N - first);
    if (n == 0) return;
    Context::log_write(&elems_[first], n * sizeof(T));
    std::memcpy(&elems_[first], src, n * sizeof(T));
  }

  /// Raw read-only pointer into the array (for bulk copies out).
  [[nodiscard]] const T* raw() const noexcept { return elems_; }

 private:
  T elems_[N]{};
};

/// Instrumented fixed-capacity string.
template <std::size_t N>
class Str {
 public:
  Str& operator=(std::string_view s) {
    Context::log_write(&v_, sizeof(v_));
    v_.assign(s);
    return *this;
  }

  [[nodiscard]] std::string_view view() const noexcept { return v_.view(); }
  [[nodiscard]] const char* c_str() const noexcept { return v_.c_str(); }
  [[nodiscard]] bool empty() const noexcept { return v_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return v_.size(); }

  friend bool operator==(const Str& a, std::string_view b) noexcept { return a.view() == b; }

 private:
  FixedString<N> v_;
};

/// Fixed-capacity slot table with an instrumented allocation bitmap — the
/// shape of every kernel-style object table (process table, fd table, inode
/// table, ...). Slot indices are stable, which recovery requires: rollback
/// restores raw bytes at fixed addresses.
///
/// Allocation is O(1) via an intrusive free list (LIFO reuse) with a cached
/// in-use counter. The list links and the counter are themselves recoverable
/// state: every mutation is logged like the bitmap, so rollback and clone
/// transfer restore a consistent allocator, never a rebuilt one.
template <typename T, std::size_t N>
class Table {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  constexpr Table() {
    for (std::size_t i = 0; i < N; ++i) next_free_[i] = i + 1 < N ? i + 1 : npos;
  }

  [[nodiscard]] static constexpr std::size_t capacity() noexcept { return N; }
  [[nodiscard]] std::size_t in_use_count() const noexcept { return in_use_n_; }

  [[nodiscard]] bool in_use(std::size_t i) const noexcept {
    OSIRIS_ASSERT(i < N);
    return used_[i];
  }

  /// Allocate a free slot (value-initialized); npos if the table is full.
  std::size_t alloc() {
    const std::size_t i = free_head_;
    if (i == npos) return npos;
    Context::log_write(&free_head_, sizeof(free_head_));
    free_head_ = next_free_[i];
    Context::log_write(&used_[i], sizeof(bool));
    used_[i] = true;
    Context::log_write(&in_use_n_, sizeof(in_use_n_));
    ++in_use_n_;
    Context::log_write(&elems_[i], sizeof(T));
    elems_[i] = T{};
    return i;
  }

  void free(std::size_t i) {
    OSIRIS_ASSERT(i < N && used_[i]);
    Context::log_write(&used_[i], sizeof(bool));
    used_[i] = false;
    Context::log_write(&next_free_[i], sizeof(next_free_[i]));
    next_free_[i] = free_head_;
    Context::log_write(&free_head_, sizeof(free_head_));
    free_head_ = i;
    Context::log_write(&in_use_n_, sizeof(in_use_n_));
    --in_use_n_;
  }

  [[nodiscard]] const T& at(std::size_t i) const noexcept {
    OSIRIS_ASSERT(i < N && used_[i]);
    return elems_[i];
  }

  [[nodiscard]] T& mutate(std::size_t i) {
    OSIRIS_ASSERT(i < N && used_[i]);
    Context::log_write(&elems_[i], sizeof(T));
    return elems_[i];
  }

  /// First in-use slot satisfying `pred`, or npos.
  template <typename Pred>
  [[nodiscard]] std::size_t find(Pred pred) const {
    for (std::size_t i = 0; i < N; ++i) {
      if (used_[i] && pred(elems_[i])) return i;
    }
    return npos;
  }

  /// Invoke `fn(index, const T&)` for every in-use slot.
  template <typename Fn>
  void for_each(Fn fn) const {
    for (std::size_t i = 0; i < N; ++i) {
      if (used_[i]) fn(i, elems_[i]);
    }
  }

 private:
  bool used_[N]{};
  std::size_t free_head_ = N > 0 ? 0 : npos;
  std::size_t next_free_[N]{};  // chained in the constructor
  std::size_t in_use_n_ = 0;
  T elems_[N]{};
};

}  // namespace osiris::ckpt
