// PagedTable: the MB+ variant of ckpt::Table (DESIGN.md §17).
//
// ckpt::Table lives inline in a server's trivially-copyable State struct, so
// its capacity is a compile-time constant and its bytes travel with the data
// section. That is exactly right at the paper's KB scale and exactly wrong at
// the ROADMAP's: a GB-scale table inside State would (a) blow up every spare
// clone and boot image, (b) change the data-section size that eight golden
// traces embed, and (c) still pay whole-element undo logging per mutate().
//
// PagedTable keeps the same allocator discipline — instrumented free list,
// used flags and in-use counter, stable slot indices — but puts EVERYTHING
// (bookkeeping included) in one contiguous heap buffer, rounded up to the
// checkpoint page size. The buffer is the component's "aux section": the
// recovery engine appends it to the clone/boot images, and when the page
// tier is enabled the component registers it with its PageStore, so stores
// cost one dirty-page snapshot instead of an element-sized arena record and
// restarts move only dirty pages. With the tier disabled, the same stores
// fall through to the arena undo log — byte-identical rollback either way,
// which is what the rollback-equivalence suite pins.
//
// Because the bookkeeping is raw bytes in the buffer, rollback and clone
// transfer restore a consistent allocator by pure byte ops, never a rebuilt
// one — the same property Table documents.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>

#include "ckpt/context.hpp"
#include "support/common.hpp"

namespace osiris::ckpt {

template <typename T>
class PagedTable {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(alignof(T) <= alignof(std::max_align_t));

 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  explicit PagedTable(std::size_t capacity, std::size_t page_bytes = 4096)
      : cap_(capacity) {
    OSIRIS_ASSERT(capacity > 0);
    const std::size_t used_off = sizeof(Header) + cap_ * sizeof(std::uint64_t);
    elems_off_ = (used_off + cap_ + alignof(std::max_align_t) - 1) &
                 ~(alignof(std::max_align_t) - 1);
    const std::size_t raw = elems_off_ + cap_ * sizeof(T);
    bytes_ = (raw + page_bytes - 1) & ~(page_bytes - 1);  // page-tier rounding
    buf_ = std::make_unique<std::byte[]>(bytes_);
    // Boot-time initialization writes raw: there is no checkpoint to protect
    // yet (same as Table's constexpr constructor).
    Header* h = header();
    h->free_head = 0;
    h->in_use_n = 0;
    h->user = 0;
    for (std::size_t i = 0; i < cap_; ++i) next_free()[i] = i + 1 < cap_ ? i + 1 : kNil;
  }

  PagedTable(const PagedTable&) = delete;
  PagedTable& operator=(const PagedTable&) = delete;

  /// The aux region: hand to PageStore::register_region and the recovery
  /// engine's clone/boot images. Rounded up to the page size.
  [[nodiscard]] std::byte* region_data() noexcept { return buf_.get(); }
  [[nodiscard]] std::size_t region_bytes() const noexcept { return bytes_; }

  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  [[nodiscard]] std::size_t in_use_count() const noexcept {
    return static_cast<std::size_t>(header()->in_use_n);
  }

  [[nodiscard]] bool in_use(std::size_t i) const noexcept {
    OSIRIS_ASSERT(i < cap_);
    return used()[i] != 0;
  }

  /// Allocate a free slot (value-initialized); npos if the table is full.
  std::size_t alloc() {
    Header* h = header();
    if (h->free_head == kNil) return npos;
    const auto i = static_cast<std::size_t>(h->free_head);
    Context::log_write(&h->free_head, sizeof(h->free_head));
    h->free_head = next_free()[i];
    Context::log_write(&used()[i], sizeof(std::uint8_t));
    used()[i] = 1;
    Context::log_write(&h->in_use_n, sizeof(h->in_use_n));
    ++h->in_use_n;
    Context::log_write(&elems()[i], sizeof(T));
    elems()[i] = T{};
    return i;
  }

  void free(std::size_t i) {
    OSIRIS_ASSERT(i < cap_ && used()[i] != 0);
    Header* h = header();
    Context::log_write(&used()[i], sizeof(std::uint8_t));
    used()[i] = 0;
    Context::log_write(&next_free()[i], sizeof(std::uint64_t));
    next_free()[i] = h->free_head;
    Context::log_write(&h->free_head, sizeof(h->free_head));
    h->free_head = static_cast<std::uint64_t>(i);
    Context::log_write(&h->in_use_n, sizeof(h->in_use_n));
    --h->in_use_n;
  }

  /// Ring-style slot claim for put-only tables (e.g. an op journal indexed
  /// by sequence % capacity): marks the slot used if it was not, logs the
  /// element's old bytes, and hands out a mutable reference. A table written
  /// through put() must never use alloc()/free() — put() bypasses the free
  /// list, which stays a boot-time artifact.
  [[nodiscard]] T& put(std::size_t i) {
    OSIRIS_ASSERT(i < cap_);
    if (used()[i] == 0) {
      Context::log_write(&used()[i], sizeof(std::uint8_t));
      used()[i] = 1;
      Header* h = header();
      Context::log_write(&h->in_use_n, sizeof(h->in_use_n));
      ++h->in_use_n;
    }
    Context::log_write(&elems()[i], sizeof(T));
    return elems()[i];
  }

  [[nodiscard]] const T& at(std::size_t i) const noexcept {
    OSIRIS_ASSERT(i < cap_ && used()[i] != 0);
    return elems()[i];
  }

  [[nodiscard]] T& mutate(std::size_t i) {
    OSIRIS_ASSERT(i < cap_ && used()[i] != 0);
    Context::log_write(&elems()[i], sizeof(T));
    return elems()[i];
  }

  /// First in-use slot satisfying `pred`, or npos.
  template <typename Pred>
  [[nodiscard]] std::size_t find(Pred pred) const {
    for (std::size_t i = 0; i < cap_; ++i) {
      if (used()[i] != 0 && pred(elems()[i])) return i;
    }
    return npos;
  }

  /// Invoke `fn(index, const T&)` for every in-use slot.
  template <typename Fn>
  void for_each(Fn fn) const {
    for (std::size_t i = 0; i < cap_; ++i) {
      if (used()[i] != 0) fn(i, elems()[i]);
    }
  }

  /// One recoverable scalar riding in the region header — for cursors that
  /// belong to the table's lifecycle (the journal's sequence number) and
  /// must not widen the component's inline State (golden traces embed its
  /// size). Logged like any other store.
  [[nodiscard]] std::uint64_t user_word() const noexcept { return header()->user; }
  void set_user_word(std::uint64_t v) {
    Header* h = header();
    Context::log_write(&h->user, sizeof(h->user));
    h->user = v;
  }

 private:
  static constexpr std::uint64_t kNil = ~std::uint64_t{0};

  struct Header {
    std::uint64_t free_head;
    std::uint64_t in_use_n;
    std::uint64_t user;
  };

  [[nodiscard]] Header* header() noexcept { return reinterpret_cast<Header*>(buf_.get()); }
  [[nodiscard]] const Header* header() const noexcept {
    return reinterpret_cast<const Header*>(buf_.get());
  }
  [[nodiscard]] std::uint64_t* next_free() noexcept {
    return reinterpret_cast<std::uint64_t*>(buf_.get() + sizeof(Header));
  }
  [[nodiscard]] const std::uint64_t* next_free() const noexcept {
    return reinterpret_cast<const std::uint64_t*>(buf_.get() + sizeof(Header));
  }
  [[nodiscard]] std::uint8_t* used() noexcept {
    return reinterpret_cast<std::uint8_t*>(buf_.get() + sizeof(Header) +
                                           cap_ * sizeof(std::uint64_t));
  }
  [[nodiscard]] const std::uint8_t* used() const noexcept {
    return reinterpret_cast<const std::uint8_t*>(buf_.get() + sizeof(Header) +
                                                 cap_ * sizeof(std::uint64_t));
  }
  [[nodiscard]] T* elems() noexcept { return reinterpret_cast<T*>(buf_.get() + elems_off_); }
  [[nodiscard]] const T* elems() const noexcept {
    return reinterpret_cast<const T*>(buf_.get() + elems_off_);
  }

  std::size_t cap_;
  std::size_t elems_off_ = 0;
  std::size_t bytes_ = 0;
  std::unique_ptr<std::byte[]> buf_;
};

}  // namespace osiris::ckpt
