#include "ckpt/undo_log.hpp"

#include <cstring>

#include "support/common.hpp"

namespace osiris::ckpt {

UndoLog::UndoLog() : canary_head_(kCanary), canary_tail_(kCanary) {
  entries_.reserve(64);
  old_bytes_.reserve(1024);
}

void UndoLog::record(void* addr, std::size_t len) {
  OSIRIS_ASSERT(len > 0);
  const auto off = static_cast<std::uint32_t>(old_bytes_.size());
  old_bytes_.resize(old_bytes_.size() + len);
  std::memcpy(old_bytes_.data() + off, addr, len);
  entries_.push_back(Entry{addr, static_cast<std::uint32_t>(len), off});
  ++stats_.records;
  stats_.bytes_logged += len;
  const std::size_t live = live_bytes();
  if (live > stats_.max_log_bytes) stats_.max_log_bytes = live;
}

void UndoLog::rollback() {
  OSIRIS_ASSERT(integrity_ok());
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    std::memcpy(it->addr, old_bytes_.data() + it->data_off, it->len);
  }
  entries_.clear();
  old_bytes_.clear();
  ++stats_.rollbacks;
}

void UndoLog::checkpoint() {
  entries_.clear();
  old_bytes_.clear();
  ++stats_.checkpoints;
}

std::size_t UndoLog::live_bytes() const noexcept {
  return entries_.size() * sizeof(Entry) + old_bytes_.size();
}

bool UndoLog::integrity_ok() const noexcept {
  return canary_head_ == kCanary && canary_tail_ == kCanary;
}

}  // namespace osiris::ckpt
