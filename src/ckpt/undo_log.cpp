#include "ckpt/undo_log.hpp"

#include <cstring>

#include "support/common.hpp"
#include "trace/trace.hpp"

namespace osiris::ckpt {

namespace {
constexpr std::size_t kInitialArena = 4096;  // entries + data share this
}  // namespace

UndoLog::UndoLog() : canary_head_(kCanary), canary_tail_(kCanary) {
  arena_ = std::make_unique<std::byte[]>(kInitialArena);
  cap_ = kInitialArena;
  filter_ = std::make_unique<FilterSlot[]>(kFilterSlots);  // value-initialized
}

void UndoLog::filter_insert(void* addr, std::size_t len) {
  // Count-based growth keeps the load factor at or below 1/2, which bounds
  // probe chains and guarantees filter_hit() always reaches a free slot. The
  // trigger is the live count — a property of the logical store sequence —
  // never of the address values, so growth itself is deterministic too.
  if ((filter_live_ + 1) * 2 > filter_cap_) grow_filter();
  std::size_t i = filter_index(addr);
  while (filter_[i].epoch == filter_epoch_) i = (i + 1) & (filter_cap_ - 1);
  filter_[i] = FilterSlot{addr, static_cast<std::uint32_t>(len), filter_epoch_};
  ++filter_live_;
}

void UndoLog::grow_filter() {
  const std::size_t old_cap = filter_cap_;
  const auto old = std::move(filter_);
  filter_cap_ *= 2;
  filter_ = std::make_unique<FilterSlot[]>(filter_cap_);
  for (std::size_t i = 0; i < old_cap; ++i) {
    const FilterSlot& s = old[i];
    if (s.epoch != filter_epoch_) continue;  // stale epoch: dead weight
    std::size_t j = filter_index(s.addr);
    while (filter_[j].epoch == filter_epoch_) j = (j + 1) & (filter_cap_ - 1);
    filter_[j] = s;
  }
}

void UndoLog::grow(std::size_t need_entry_bytes, std::size_t need_data_bytes) {
  std::size_t cap = cap_;
  while (cap - (n_entries_ * sizeof(Entry) + data_bytes_) <
         need_entry_bytes + need_data_bytes) {
    cap *= 2;
  }
  auto next = std::make_unique<std::byte[]>(cap);
  // Entry headers stay at the front; saved bytes keep their distance from
  // the arena end, so Entry::end_off needs no fixup.
  std::memcpy(next.get(), arena_.get(), n_entries_ * sizeof(Entry));
  std::memcpy(next.get() + cap - data_bytes_, arena_.get() + cap_ - data_bytes_, data_bytes_);
  arena_ = std::move(next);
  cap_ = cap;
}

void UndoLog::record_slow(void* addr, std::size_t len) {
  OSIRIS_ASSERT(len > 0);
  const std::size_t entry_bytes = (n_entries_ + 1) * sizeof(Entry);
  if (cap_ - data_bytes_ < len || cap_ - data_bytes_ - len < entry_bytes) {
    grow(sizeof(Entry), len);
  }
  data_bytes_ += len;
  std::memcpy(arena_.get() + cap_ - data_bytes_, addr, len);
  entries()[n_entries_++] = Entry{addr, static_cast<std::uint32_t>(len),
                                  static_cast<std::uint32_t>(data_bytes_)};

  filter_insert(addr, len);

  ++stats_.records;
  stats_.bytes_logged += len;
  live_bytes_ += sizeof(Entry) + len;
  if (live_bytes_ > stats_.max_log_bytes) stats_.max_log_bytes = live_bytes_;
  OSIRIS_TRACE_EVENT(kUndoAppend, trace_id_, len, n_entries_);
}

void UndoLog::rollback() {
  OSIRIS_ASSERT(integrity_ok());
  const Entry* es = entries();
  for (std::size_t i = n_entries_; i-- > 0;) {
    std::memcpy(es[i].addr, arena_.get() + cap_ - es[i].end_off, es[i].len);
  }
  OSIRIS_TRACE_EVENT(kUndoRollback, trace_id_, n_entries_);
  n_entries_ = 0;
  data_bytes_ = 0;
  live_bytes_ = 0;
  bump_epoch();
  ++stats_.rollbacks;
  // The tiers cover disjoint addresses (routing diverts registered regions
  // before the arena path), so replay order between them is immaterial; each
  // tier restores its own checkpoint-time bytes.
  if (pages_ != nullptr) pages_->rollback();
}

void UndoLog::rollback_to(const Mark& m) {
  OSIRIS_ASSERT(integrity_ok());
  OSIRIS_ASSERT(m.n_entries <= n_entries_ && m.data_bytes <= data_bytes_);
  const Entry* es = entries();
  for (std::size_t i = n_entries_; i-- > m.n_entries;) {
    std::memcpy(es[i].addr, arena_.get() + cap_ - es[i].end_off, es[i].len);
  }
  OSIRIS_TRACE_EVENT(kUndoRollback, trace_id_, n_entries_ - m.n_entries);
  n_entries_ = m.n_entries;
  data_bytes_ = m.data_bytes;
  live_bytes_ = n_entries_ * sizeof(Entry) + data_bytes_;
  // The filter cannot cheaply forget just the truncated suffix, so drop it
  // entirely; duplicate re-captures of surviving ranges are first-write-wins.
  bump_epoch();
  ++stats_.partial_rollbacks;
  // Page tier: truncate to the mark's record count. Unlike the arena filter,
  // the page dirty-set *can* forget exactly the truncated suffix (a page
  // appears at most once per epoch), and it must — a surviving dirty bit on
  // a truncated page would make a retry skip its re-capture and a later full
  // rollback silently miss the page.
  if (pages_ != nullptr) pages_->rollback_to(m.page_records);
}

void UndoLog::checkpoint() {
  // Discarding an empty log is the steady-state no-op checkpoint; only a
  // truncation that actually drops captured entries is worth a trace event.
  if (n_entries_ > 0) {
    OSIRIS_TRACE_EVENT(kUndoTruncate, trace_id_, n_entries_);
  }
  n_entries_ = 0;
  data_bytes_ = 0;
  live_bytes_ = 0;
  bump_epoch();
  ++stats_.checkpoints;
  if (pages_ != nullptr) pages_->checkpoint();
}

bool UndoLog::integrity_ok() const noexcept {
  return canary_head_ == kCanary && canary_tail_ == kCanary;
}

}  // namespace osiris::ckpt
