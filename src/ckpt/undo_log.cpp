#include "ckpt/undo_log.hpp"

#include <cstring>

#include "support/common.hpp"

namespace osiris::ckpt {

namespace {
constexpr std::size_t kInitialArena = 4096;  // entries + data share this
}  // namespace

UndoLog::UndoLog() : canary_head_(kCanary), canary_tail_(kCanary) {
  arena_ = std::make_unique<std::byte[]>(kInitialArena);
  cap_ = kInitialArena;
}

void UndoLog::grow(std::size_t need_entry_bytes, std::size_t need_data_bytes) {
  std::size_t cap = cap_;
  while (cap - (n_entries_ * sizeof(Entry) + data_bytes_) <
         need_entry_bytes + need_data_bytes) {
    cap *= 2;
  }
  auto next = std::make_unique<std::byte[]>(cap);
  // Entry headers stay at the front; saved bytes keep their distance from
  // the arena end, so Entry::end_off needs no fixup.
  std::memcpy(next.get(), arena_.get(), n_entries_ * sizeof(Entry));
  std::memcpy(next.get() + cap - data_bytes_, arena_.get() + cap_ - data_bytes_, data_bytes_);
  arena_ = std::move(next);
  cap_ = cap;
}

void UndoLog::record_slow(void* addr, std::size_t len) {
  OSIRIS_ASSERT(len > 0);
  const std::size_t entry_bytes = (n_entries_ + 1) * sizeof(Entry);
  if (cap_ - data_bytes_ < len || cap_ - data_bytes_ - len < entry_bytes) {
    grow(sizeof(Entry), len);
  }
  data_bytes_ += len;
  std::memcpy(arena_.get() + cap_ - data_bytes_, addr, len);
  entries()[n_entries_++] = Entry{addr, static_cast<std::uint32_t>(len),
                                  static_cast<std::uint32_t>(data_bytes_)};

  FilterSlot& slot = filter_slot(addr);
  slot.addr = addr;
  slot.len = static_cast<std::uint32_t>(len);
  slot.epoch = filter_epoch_;

  ++stats_.records;
  stats_.bytes_logged += len;
  live_bytes_ += sizeof(Entry) + len;
  if (live_bytes_ > stats_.max_log_bytes) stats_.max_log_bytes = live_bytes_;
}

void UndoLog::rollback() {
  OSIRIS_ASSERT(integrity_ok());
  const Entry* es = entries();
  for (std::size_t i = n_entries_; i-- > 0;) {
    std::memcpy(es[i].addr, arena_.get() + cap_ - es[i].end_off, es[i].len);
  }
  n_entries_ = 0;
  data_bytes_ = 0;
  live_bytes_ = 0;
  bump_epoch();
  ++stats_.rollbacks;
}

void UndoLog::checkpoint() {
  n_entries_ = 0;
  data_bytes_ = 0;
  live_bytes_ = 0;
  bump_epoch();
  ++stats_.checkpoints;
}

bool UndoLog::integrity_ok() const noexcept {
  return canary_head_ == kCanary && canary_tail_ == kCanary;
}

}  // namespace osiris::ckpt
