// Page-granular checkpoint tier for MB–GB recoverable state (DESIGN.md §17).
//
// The arena undo log (undo_log.hpp) is tuned for the paper's KB-scale server
// states: it captures the *old bytes of every store*, so a handler that
// rewrites a 4 MB table element logs 4 MB. At the ROADMAP's target scale
// (millions of users, MB–GB tables in VFS/DS) that is the wrong granularity
// twice over — logging cost grows with element size, and the Recovery
// Server's restart phase memcpys the whole data section into the spare clone
// on every crash.
//
// The PageStore is the second tier of the checkpoint stack, in the spirit of
// cortx-motr's BE regions: a component registers its large heap-backed
// regions, and Context::log_write routes stores that land in a registered
// region here instead of the arena log. Per epoch (checkpoint-to-checkpoint
// interval) the first store to a page captures ONE copy-on-write pre-image
// snapshot of that fixed-size page; later stores to the same page are free
// (a per-epoch dirty bitmap is the page-tier analogue of the undo log's
// duplicate-store filter, and shares its determinism obligation: capture
// counts depend only on the logical store sequence). Rollback memcpys the
// snapshots back, newest-first; checkpoint retires the epoch's snapshots
// into a pool that an incremental compaction step recycles — the
// steady-state cost of a checkpoint stays O(dirty pages), never O(state).
//
// A second, longer-lived bitmap tracks *transfer-dirty* pages: everything
// stored since the region was last synced into the Recovery Server's spare
// clone. The restart phase copies only those pages (delta restart) instead
// of the whole region, and rollback re-marks restored pages so the clone
// never misses a byte. Transfer tracking is unconditional — it must see
// stores made while the recovery window is closed, which the undo tier
// deliberately ignores.
//
// Like the undo log, the store lives in the Reliable Computing Base and
// carries canaries validated on every rollback.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace osiris::ckpt {

/// OsConfig::ckpt_pages. Default-constructed == tier off: stores route to
/// the arena undo log exactly as before (bit-identical traces).
struct PagesConfig {
  bool enabled = false;
  std::size_t page_bytes = 4096;     // snapshot granularity; power of two
  std::size_t compact_batch = 8;     // superseded snapshots retired per step
};

struct PageStoreStats {
  std::uint64_t page_records = 0;       // CoW pre-image snapshots captured
  std::uint64_t page_bytes_logged = 0;  // bytes of captured pre-images
  std::uint64_t page_duplicate_skips = 0;  // stores to an already-dirty page
  std::uint64_t page_rollbacks = 0;     // pages restored by (partial) rollback
  std::uint64_t compactions = 0;        // incremental retire steps that moved work
  std::uint64_t compacted_bytes = 0;    // snapshot bytes recycled by compaction
  std::uint64_t delta_restart_bytes = 0;  // restart bytes moved as dirty pages
  std::uint64_t full_copy_bytes = 0;      // what whole-image restarts would move
  std::size_t max_resident_bytes = 0;   // snapshot-buffer high-water (Table VI)
};

class PageStore {
 public:
  explicit PageStore(const PagesConfig& cfg);

  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;

  /// Add [base, base+len) to the routed address space. `len` must be a
  /// multiple of the page size (PagedTable rounds its buffer up). Regions
  /// must be registered before the first store and never overlap.
  void register_region(std::byte* base, std::size_t len);

  /// Routing predicate for Context::log_write: does `addr` land in a
  /// registered region? Cheap by design — the common case is a handful of
  /// regions per component, checked against a cached [lo, hi) envelope.
  [[nodiscard]] bool covers(const void* addr) const noexcept {
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    if (a < lo_ || a >= hi_) return false;
    return find_region(addr) != nullptr;
  }

  /// A store of [addr, addr+len) is about to happen. Transfer-dirty marking
  /// is unconditional; a pre-image snapshot is captured per page per epoch
  /// only when `log` (the caller's should_log()) is set.
  void on_store(void* addr, std::size_t len, bool log);

  /// Restore every snapshotted page (newest first), emptying the epoch.
  void rollback();

  /// Epoch position for UndoLog::Mark: the number of live page records.
  [[nodiscard]] std::size_t record_count() const noexcept { return records_.size(); }

  /// Restore pages snapshotted after the mark and truncate the record list.
  /// The truncated pages' dirty bits are cleared *exactly* — a page appears
  /// at most once per epoch, so the surviving records' bits are untouched —
  /// which keeps first-write-wins sound: a retried store to a truncated page
  /// re-captures it, and without that re-capture a later full rollback would
  /// miss the page entirely (the satellite-2 corruption).
  void rollback_to(std::size_t n_records);

  /// Drop the epoch: retire all snapshots into the compaction backlog and
  /// run one incremental compaction step. O(dirty pages), never O(state).
  void checkpoint();

  [[nodiscard]] bool clean() const noexcept { return records_.empty(); }

  // --- delta restart (recovery::Engine) ----------------------------------

  /// Copy every transfer-dirty page out via `copy(region_off, src, len)`,
  /// where `region_off` is the page's byte offset in the concatenation of
  /// all registered regions (the engine's aux-image layout), then clear its
  /// bit. Returns the bytes moved.
  std::size_t sync_transfer_dirty(
      const std::function<void(std::size_t region_off, const std::byte* src, std::size_t len)>&
          copy);

  /// The whole registered space must be re-synced — used after an external
  /// overwrite that bypassed log_write (the engine's boot-image microreboot).
  void mark_all_transfer_dirty();

  /// Restart accounting, pushed by the engine so the delta-vs-full story
  /// surfaces through UndoLogStats into collect_metrics.
  void note_restart(std::size_t delta_bytes, std::size_t full_bytes) {
    stats_.delta_restart_bytes += delta_bytes;
    stats_.full_copy_bytes += full_bytes;
  }

  /// Total bytes of registered regions (== the engine's aux-image size).
  [[nodiscard]] std::size_t region_bytes() const noexcept { return total_bytes_; }

  [[nodiscard]] const PageStoreStats& stats() const noexcept { return stats_; }

  /// Live snapshot-buffer footprint: free pool + retired backlog + pinned.
  [[nodiscard]] std::size_t resident_bytes() const noexcept { return resident_bytes_; }

  [[nodiscard]] std::size_t page_bytes() const noexcept { return page_bytes_; }

  /// SFI-style canary check, same contract as UndoLog::integrity_ok().
  [[nodiscard]] bool integrity_ok() const noexcept;

  /// Trace attribution (see UndoLog::set_trace_id).
  void set_trace_id(std::int32_t comp) noexcept { trace_id_ = comp; }

 private:
  struct Region {
    std::byte* base = nullptr;
    std::size_t len = 0;
    std::size_t first_page = 0;  // global page index of the region's page 0
    std::size_t n_pages = 0;
    std::vector<std::uint64_t> epoch_dirty;  // snapshot taken this epoch
    std::vector<std::uint64_t> xfer_dirty;   // changed since last clone sync
  };

  /// One captured pre-image: which page, and the buffer holding its bytes.
  struct Rec {
    std::uint32_t region = 0;
    std::uint32_t page = 0;  // page index within the region
    std::unique_ptr<std::byte[]> snap;
  };

  [[nodiscard]] const Region* find_region(const void* addr) const noexcept;

  [[nodiscard]] static bool test_bit(const std::vector<std::uint64_t>& bits,
                                     std::size_t i) noexcept {
    return (bits[i >> 6] >> (i & 63)) & 1u;
  }
  static void set_bit(std::vector<std::uint64_t>& bits, std::size_t i) noexcept {
    bits[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  static void clear_bit(std::vector<std::uint64_t>& bits, std::size_t i) noexcept {
    bits[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  std::unique_ptr<std::byte[]> take_buffer();
  void restore(const Rec& rec);
  void compact_step();

  static constexpr std::uint64_t kCanary = 0x9A6E9A6E'0B51B150ULL;

  std::uint64_t canary_head_;
  std::size_t page_bytes_;
  std::size_t page_shift_;
  std::size_t compact_batch_;
  std::vector<Region> regions_;
  std::uintptr_t lo_ = ~std::uintptr_t{0};  // envelope over all regions
  std::uintptr_t hi_ = 0;
  std::size_t total_bytes_ = 0;
  std::vector<Rec> records_;  // the per-epoch page records, capture order
  std::vector<std::unique_ptr<std::byte[]>> free_pool_;  // ready buffers
  std::vector<std::unique_ptr<std::byte[]>> retired_;    // compaction backlog
  std::size_t resident_bytes_ = 0;
  std::int32_t trace_id_ = -1;
  PageStoreStats stats_;
  std::uint64_t canary_tail_;
};

}  // namespace osiris::ckpt
