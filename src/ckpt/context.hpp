// Checkpointing context: ties a component's undo log to the instrumentation
// mode and the recovery-window state.
//
// The paper's LLVM passes produce two clones of every server function — one
// with undo-log hooks, one without — and select a clone based on whether the
// recovery window is open (SIV-D). We realise the identical semantics with a
// mode switch consulted by every instrumented store:
//
//   kOff        — uninstrumented baseline build (no logging ever)
//   kAlways     — the paper's *unoptimized* build: every store is logged,
//                 even after the recovery window closed (~23% overhead)
//   kWindowOnly — the paper's *optimized* build: stores are logged only
//                 while the window is open (~5% overhead)
//
// Exactly one context is active at a time (the component currently
// dispatched); nested server calls stack contexts.
#pragma once

#include <cstddef>

#include "ckpt/undo_log.hpp"

namespace osiris::ckpt {

enum class Mode : std::uint8_t { kOff, kAlways, kWindowOnly };

class Context {
 public:
  explicit Context(Mode mode) : mode_(mode) {}

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  void set_mode(Mode m) noexcept { mode_ = m; }

  [[nodiscard]] UndoLog& log() noexcept { return log_; }
  [[nodiscard]] const UndoLog& log() const noexcept { return log_; }

  /// Attach the page tier (DESIGN.md §17): stores landing in one of its
  /// registered regions route here instead of the arena log, and the log's
  /// checkpoint/rollback/mark operations cascade into it.
  void set_page_store(PageStore* pages) noexcept {
    pages_ = pages;
    log_.attach_pages(pages);
    if (pages != nullptr) pages->set_trace_id(trace_id_);
  }
  [[nodiscard]] PageStore* page_store() const noexcept { return pages_; }

  /// Trace attribution for the owning component (see UndoLog::set_trace_id).
  void set_trace_id(std::int32_t comp) noexcept {
    trace_id_ = comp;
    log_.set_trace_id(comp);
    if (pages_ != nullptr) pages_->set_trace_id(comp);
  }
  [[nodiscard]] std::int32_t trace_id() const noexcept { return trace_id_; }

  /// Recovery-window state, maintained by seep::Window.
  [[nodiscard]] bool window_open() const noexcept { return window_open_; }
  void set_window_open(bool open) noexcept { window_open_ = open; }

  [[nodiscard]] bool should_log() const noexcept {
    return mode_ == Mode::kAlways || (mode_ == Mode::kWindowOnly && window_open_);
  }

  // --- active-context stack --------------------------------------------

  /// The context of the component currently executing, or nullptr when
  /// running harness / kernel / user code (which is never instrumented).
  static Context* active() noexcept { return active_; }

  /// Instrumentation hook: called by Cell/Array/Table before a store.
  /// Two-tier routing: a store into a PageStore-registered region goes to
  /// the page tier — *unconditionally*, because transfer-dirty tracking must
  /// see stores made while the window is closed (the delta restart would
  /// otherwise ship a stale clone) — with the pre-image snapshot gated on
  /// should_log() exactly like an arena record. Everything else takes the
  /// arena path unchanged.
  static void log_write(void* addr, std::size_t len) {
    Context* c = active_;
    if (c == nullptr) return;
    if (c->pages_ != nullptr && c->pages_->covers(addr)) {
      c->pages_->on_store(addr, len, c->should_log());
      return;
    }
    if (c->should_log()) c->log_.record(addr, len);
  }

  class Scope {
   public:
    explicit Scope(Context* ctx) noexcept : saved_(active_) { active_ = ctx; }
    ~Scope() { active_ = saved_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Context* saved_;
  };

 private:
  Mode mode_;
  bool window_open_ = false;
  std::int32_t trace_id_ = -1;
  PageStore* pages_ = nullptr;  // not owned; see set_page_store()
  UndoLog log_;

  inline static thread_local Context* active_ = nullptr;
};

}  // namespace osiris::ckpt
