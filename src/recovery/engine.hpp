// The recovery engine: restart, rollback, reconciliation (paper SIV-C),
// plus the escalation ladder for persistent faults.
//
// The engine is the heart of the Reliable Computing Base. It is registered
// as the kernel's crash handler; when a component suffers a fail-stop fault
// (or a heartbeat-detected hang), the kernel invokes on_crash() while the
// rest of the system is stalled, and the engine:
//
//   1. restart — transfers the crashed component's data section into the
//      spare clone prepared at registration time. For core system servers
//      the clone's memory is pre-allocated at boot (fork() would not work
//      while PM/VM are down); the pre-allocation is what Table VI's "+clone"
//      column measures.
//   2. rollback — replays the component's undo log in reverse, restoring the
//      checkpoint taken at the top of the request processing loop (only
//      under the window-based policies, and only meaningful if the window
//      was open at crash time).
//   3. reconciliation — decides the system-wide outcome: error-virtualize
//      (reply E_CRASH to the requester, which also handles persistent
//      faults), or controlled shutdown when consistency cannot be proven.
//
// Error virtualization "also handles persistent faults" only in the sense
// that the buggy *request* is discarded; a persistent fault in a hot path
// re-fires on the next request and produces a crash loop. The engine
// therefore keeps a per-component crash history (virtual-clock timestamps)
// and classifies every crash as transient or recurring with a sliding-window
// rate. Recurring crashes walk an escalation ladder instead of repeating the
// policy-preferred recovery forever:
//
//   rung 0  policy-preferred recovery (transient crashes only)
//   rung 1  stateless restart + exponential-backoff park
//   rung 2  quarantine: the component is parked for a long cooldown while
//           the kernel error-virtualizes every send to it — graceful
//           degradation, not shutdown; unrelated workloads keep running.
//
// Parked components are readmitted after their cooldown, normally scheduled
// on the virtual clock by RS (which also reports the slot as quarantined in
// heartbeat/status terms); the engine schedules the readmission itself when
// RS cannot be reached (RS absent, or RS is the parked component).
//
// NO fault-injection probes are placed in this module: the paper's fault
// model assumes the RCB is fault-free, and faults during recovery are
// excluded by the single-failure assumption.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernel/kernel.hpp"
#include "recovery/ladder.hpp"
#include "recovery/recoverable.hpp"
#include "seep/policy.hpp"
#include "seep/seep.hpp"

namespace osiris::recovery {

struct EngineStats {
  std::uint64_t crashes_seen = 0;
  std::uint64_t restarts = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t error_replies = 0;
  std::uint64_t shutdowns = 0;
  std::uint64_t giveups = 0;
  std::uint64_t stateless_restarts = 0;
  std::uint64_t naive_restarts = 0;
  std::uint64_t requester_kills = 0;  // SVII extended-policy reconciliations
  std::uint64_t fom_reconciles = 0;   // windowed recoveries reconciled by the FOM executor
  // --- escalation ladder -------------------------------------------------
  std::uint64_t transient_crashes = 0;  // classified below the recurrence rate
  std::uint64_t recurring_crashes = 0;  // classified as a crash loop
  std::uint64_t ladder_stateless = 0;   // rung-1 restarts (with backoff park)
  std::uint64_t quarantines = 0;        // rung-2 escalations
  std::uint64_t budget_quarantines = 0;  // recovery budget exhausted -> rung 2
  std::uint64_t readmissions = 0;        // parked components re-admitted
  // --- storm rung (liveness faults, DESIGN.md §15) -----------------------
  std::uint64_t storm_throttles = 0;    // fever onsets answered with a throttle
  std::uint64_t storm_quarantines = 0;  // fevers persisting under throttle
  std::uint64_t storm_disarms = 0;      // storm faults disarmed at quarantine
  /// Ticks from storm onset (first storm-fault fire) to the throttle
  /// engaging, for the *first* detection this engine made. Spin storms
  /// freeze the virtual clock, so their latency legitimately reads ~0;
  /// flood storms accumulate pump periods.
  Tick detection_latency_ticks = 0;
  bool storm_detected = false;  // latch: detection_latency_ticks is valid
};

class Engine {
 public:
  /// `max_recoveries_per_component` bounds crash storms: a component that
  /// exhausts its budget is forced onto the ladder's quarantine rung (the
  /// system degrades instead of wedging).
  Engine(kernel::Kernel& kernel, const seep::Classification& classification,
         seep::Policy policy, std::uint32_t max_recoveries_per_component = 8,
         LadderConfig ladder = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Register a recoverable component and pre-allocate its spare clone.
  void register_component(Recoverable* comp);

  /// Kernel crash-handler entry point.
  kernel::CrashDecision on_crash(const kernel::CrashContext& ctx);

  /// Kernel storm-handler entry point (health-monitor fever decisions): the
  /// ladder's storm rung, slotted between rung 1's backoff restart and rung
  /// 2's quarantine. First fever onset throttles the component (its sends
  /// are error-virtualized past an allowance, so victims unblock while it
  /// stays live); a fever that persists under the throttle escalates to
  /// quarantine and disarms the storm fault so readmission is clean.
  /// Existing rung numbering is untouched — golden traces embed rungs.
  void on_storm(kernel::Endpoint ep);

  /// Lift a parked component's quarantine after its cooldown expired.
  /// Invoked from a virtual-clock callback (scheduled by RS, or by the
  /// engine itself when RS is unreachable); idempotent.
  void readmit(kernel::Endpoint ep);

  [[nodiscard]] seep::Policy policy() const noexcept { return policy_; }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const LadderConfig& ladder() const noexcept { return ladder_; }

  /// Bytes pre-allocated for a component's spare clone (Table VI).
  [[nodiscard]] std::size_t clone_bytes(kernel::Endpoint ep) const;

  /// Recovery count per component (for diagnostics and tests).
  [[nodiscard]] std::uint32_t recoveries_of(kernel::Endpoint ep) const;

  /// Ladder position per component (for RS status reporting and tests).
  [[nodiscard]] bool is_parked(kernel::Endpoint ep) const;
  [[nodiscard]] std::uint32_t rung_of(kernel::Endpoint ep) const;

 private:
  /// One entry of the per-component crash history ring.
  struct CrashRecord {
    Tick when = 0;
    bool was_hang = false;
  };
  static constexpr std::size_t kHistoryLen = 8;

  struct Slot {
    Recoverable* comp = nullptr;
    /// Spare clone image, pre-allocated at registration (restart phase).
    std::vector<std::byte> clone_image;
    /// Pristine boot-time state for stateless restarts.
    std::vector<std::byte> boot_image;
    std::uint32_t recoveries = 0;
    // --- crash history and ladder position -------------------------------
    std::array<CrashRecord, kHistoryLen> history{};
    std::size_t history_head = 0;  // next write position in the ring
    std::size_t history_len = 0;
    std::uint32_t stateless_tries = 0;  // rung-1 restarts consumed
    std::uint32_t rung = 0;             // last ladder rung taken (0/1/2)
    Tick backoff = 0;                   // current exponential park duration
    bool parked = false;
    /// A crash before this deadline counts as recurring even if the sliding
    /// window has slid past the old crashes — long parks must not launder a
    /// crash loop back into "transient".
    Tick probation_until = 0;
  };

  kernel::CrashDecision recover_windowed(Slot& slot, const kernel::CrashContext& ctx);
  kernel::CrashDecision recover_stateless(Slot& slot, const kernel::CrashContext& ctx);
  kernel::CrashDecision recover_naive(Slot& slot, const kernel::CrashContext& ctx);
  kernel::CrashDecision escalate(Slot& slot, const kernel::CrashContext& ctx, Tick now);
  void restart_phase(Slot& slot);
  void reset_to_boot_image(Slot& slot);
  void record_crash(Slot& slot, Tick now, bool was_hang);
  [[nodiscard]] std::uint32_t crashes_in_window(const Slot& slot, Tick now) const;
  void announce_park(kernel::Endpoint ep, Tick cooldown, std::uint32_t rung);
  [[nodiscard]] bool replyable(const kernel::CrashContext& ctx) const;

  kernel::Kernel& kernel_;
  const seep::Classification& classification_;
  seep::Policy policy_;
  std::uint32_t max_recoveries_;
  LadderConfig ladder_;
  std::unordered_map<std::int32_t, Slot> slots_;
  EngineStats stats_;
};

}  // namespace osiris::recovery
