// The recovery engine: restart, rollback, reconciliation (paper SIV-C).
//
// The engine is the heart of the Reliable Computing Base. It is registered
// as the kernel's crash handler; when a component suffers a fail-stop fault
// (or a heartbeat-detected hang), the kernel invokes on_crash() while the
// rest of the system is stalled, and the engine:
//
//   1. restart — transfers the crashed component's data section into the
//      spare clone prepared at registration time. For core system servers
//      the clone's memory is pre-allocated at boot (fork() would not work
//      while PM/VM are down); the pre-allocation is what Table VI's "+clone"
//      column measures.
//   2. rollback — replays the component's undo log in reverse, restoring the
//      checkpoint taken at the top of the request processing loop (only
//      under the window-based policies, and only meaningful if the window
//      was open at crash time).
//   3. reconciliation — decides the system-wide outcome: error-virtualize
//      (reply E_CRASH to the requester, which also handles persistent
//      faults), or controlled shutdown when consistency cannot be proven.
//
// NO fault-injection probes are placed in this module: the paper's fault
// model assumes the RCB is fault-free, and faults during recovery are
// excluded by the single-failure assumption.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernel/kernel.hpp"
#include "recovery/recoverable.hpp"
#include "seep/policy.hpp"
#include "seep/seep.hpp"

namespace osiris::recovery {

struct EngineStats {
  std::uint64_t crashes_seen = 0;
  std::uint64_t restarts = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t error_replies = 0;
  std::uint64_t shutdowns = 0;
  std::uint64_t giveups = 0;
  std::uint64_t stateless_restarts = 0;
  std::uint64_t naive_restarts = 0;
  std::uint64_t requester_kills = 0;  // SVII extended-policy reconciliations
};

class Engine {
 public:
  /// `max_recoveries_per_component` bounds crash storms: a component that
  /// keeps dying is eventually declared unrecoverable (the system is wedged).
  Engine(kernel::Kernel& kernel, const seep::Classification& classification,
         seep::Policy policy, std::uint32_t max_recoveries_per_component = 8);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Register a recoverable component and pre-allocate its spare clone.
  void register_component(Recoverable* comp);

  /// Kernel crash-handler entry point.
  kernel::CrashDecision on_crash(const kernel::CrashContext& ctx);

  [[nodiscard]] seep::Policy policy() const noexcept { return policy_; }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }

  /// Bytes pre-allocated for a component's spare clone (Table VI).
  [[nodiscard]] std::size_t clone_bytes(kernel::Endpoint ep) const;

  /// Recovery count per component (for diagnostics and tests).
  [[nodiscard]] std::uint32_t recoveries_of(kernel::Endpoint ep) const;

 private:
  struct Slot {
    Recoverable* comp = nullptr;
    /// Spare clone image, pre-allocated at registration (restart phase).
    std::vector<std::byte> clone_image;
    /// Pristine boot-time state for stateless restarts.
    std::vector<std::byte> boot_image;
    std::uint32_t recoveries = 0;
  };

  kernel::CrashDecision recover_windowed(Slot& slot, const kernel::CrashContext& ctx);
  kernel::CrashDecision recover_stateless(Slot& slot, const kernel::CrashContext& ctx);
  kernel::CrashDecision recover_naive(Slot& slot, const kernel::CrashContext& ctx);
  void restart_phase(Slot& slot);
  [[nodiscard]] bool replyable(const kernel::CrashContext& ctx) const;

  kernel::Kernel& kernel_;
  const seep::Classification& classification_;
  seep::Policy policy_;
  std::uint32_t max_recoveries_;
  std::unordered_map<std::int32_t, Slot> slots_;
  EngineStats stats_;
};

}  // namespace osiris::recovery
