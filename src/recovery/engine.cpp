#include "recovery/engine.hpp"

#include <algorithm>
#include <cstring>

#include "fi/registry.hpp"
#include "servers/protocol.hpp"
#include "support/common.hpp"
#include "support/log.hpp"
#include "trace/trace.hpp"

namespace osiris::recovery {

using kernel::CrashAction;
using kernel::CrashContext;
using kernel::CrashDecision;
using kernel::E_CRASH;
using kernel::Endpoint;
using kernel::make_reply;

Engine::Engine(kernel::Kernel& kernel, const seep::Classification& classification,
               seep::Policy policy, std::uint32_t max_recoveries_per_component,
               LadderConfig ladder)
    : kernel_(kernel),
      classification_(classification),
      policy_(policy),
      max_recoveries_(max_recoveries_per_component),
      ladder_(ladder) {
  kernel_.set_crash_handler([this](const CrashContext& ctx) { return on_crash(ctx); });
}

void Engine::register_component(Recoverable* comp) {
  OSIRIS_ASSERT(comp != nullptr);
  Slot slot;
  slot.comp = comp;
  const std::size_t ds = comp->data_section_size();
  const std::size_t aux = comp->aux_section_size();
  // Pre-allocate the spare clone now: when PM or VM is down, memory cannot be
  // obtained dynamically (paper SIV-C restart phase, Table VI "+clone"). The
  // image layout is [data section | aux section | recovery arena].
  slot.clone_image.resize(ds + aux + comp->recovery_arena_bytes());
  // Capture the pristine boot state for the stateless-restart baseline.
  slot.boot_image.assign(comp->data_section(), comp->data_section() + ds);
  if (aux > 0) {
    slot.boot_image.insert(slot.boot_image.end(), comp->aux_section(),
                           comp->aux_section() + aux);
    // Seed the clone's aux image with the current bytes so the first delta
    // restart starts from a synced baseline — the transfer-dirty bitmap only
    // tracks stores made from here on.
    std::memcpy(slot.clone_image.data() + ds, comp->aux_section(), aux);
    if (ckpt::PageStore* ps = comp->page_store(); ps != nullptr) {
      ps->sync_transfer_dirty([](std::size_t, const std::byte*, std::size_t) {});
    }
  }
  slots_[comp->endpoint().value] = std::move(slot);
}

std::size_t Engine::clone_bytes(Endpoint ep) const {
  auto it = slots_.find(ep.value);
  return it == slots_.end() ? 0 : it->second.clone_image.size();
}

std::uint32_t Engine::recoveries_of(Endpoint ep) const {
  auto it = slots_.find(ep.value);
  return it == slots_.end() ? 0 : it->second.recoveries;
}

bool Engine::is_parked(Endpoint ep) const {
  auto it = slots_.find(ep.value);
  return it != slots_.end() && it->second.parked;
}

std::uint32_t Engine::rung_of(Endpoint ep) const {
  auto it = slots_.find(ep.value);
  return it == slots_.end() ? 0 : it->second.rung;
}

bool Engine::replyable(const CrashContext& ctx) const {
  if (!ctx.had_inflight) return false;
  if (!ctx.inflight.sender.valid() || ctx.inflight.sender == kernel::kKernelEp) return false;
  return classification_.get(ctx.inflight.type & ~kernel::kNotifyBit).replyable &&
         !kernel::is_notify(ctx.inflight.type);
}

void Engine::record_crash(Slot& slot, Tick now, bool was_hang) {
  slot.history[slot.history_head] = CrashRecord{now, was_hang};
  slot.history_head = (slot.history_head + 1) % kHistoryLen;
  slot.history_len = std::min(slot.history_len + 1, kHistoryLen);
}

std::uint32_t Engine::crashes_in_window(const Slot& slot, Tick now) const {
  std::uint32_t n = 0;
  for (std::size_t i = 0; i < slot.history_len; ++i) {
    if (now - slot.history[i].when <= ladder_.crash_window_ticks) ++n;
  }
  return n;
}

CrashDecision Engine::on_crash(const CrashContext& ctx) {
  ++stats_.crashes_seen;
  auto it = slots_.find(ctx.crashed.value);
  if (it == slots_.end()) {
    // A component outside the recovery surface died: the system is wedged.
    ++stats_.giveups;
    return CrashDecision{CrashAction::kGiveUp, {}};
  }
  Slot& slot = it->second;
  const Tick now = kernel_.clock().now();
  record_crash(slot, now, ctx.was_hang);
  ++slot.recoveries;

  // Transient vs recurring: the sliding crash-rate window, the probation
  // period after an earlier escalation, and the recovery budget all feed the
  // classifier. A crash while parked (only possible when the kernel is not
  // enforcing the quarantine, e.g. in unit harnesses) is recurring trivially.
  const bool over_budget = slot.recoveries > max_recoveries_;
  const bool recurring = slot.parked || over_budget || now < slot.probation_until ||
                         crashes_in_window(slot, now) >= ladder_.recurring_threshold;

  OSIRIS_INFO("recovery", "component %s crashed (%s): policy=%s window=%s class=%s",
              std::string(slot.comp->name()).c_str(), ctx.what.c_str(),
              seep::policy_name(policy_), slot.comp->window().is_open() ? "open" : "closed",
              recurring ? "recurring" : "transient");
  OSIRIS_TRACE_EVENT(kCrash, ctx.crashed.value, ctx.was_hang ? 1 : 0, recurring ? 1 : 0);

  if (recurring) {
    ++stats_.recurring_crashes;
    return escalate(slot, ctx, now);
  }

  ++stats_.transient_crashes;
  // A genuinely transient crash de-escalates: the ladder position and the
  // backoff reset, so an isolated fault months of virtual time later starts
  // from the policy-preferred rung again.
  slot.rung = 0;
  slot.stateless_tries = 0;
  slot.backoff = 0;

  switch (policy_) {
    case seep::Policy::kStateless:
      return recover_stateless(slot, ctx);
    case seep::Policy::kNaive:
      return recover_naive(slot, ctx);
    case seep::Policy::kPessimistic:
    case seep::Policy::kEnhanced:
    case seep::Policy::kExtended:
      return recover_windowed(slot, ctx);
  }
  OSIRIS_PANIC("unknown policy");
}

CrashDecision Engine::escalate(Slot& slot, const CrashContext& ctx, Tick now) {
  Recoverable& comp = *slot.comp;
  const bool over_budget = slot.recoveries > max_recoveries_;

  if (!over_budget && slot.stateless_tries < ladder_.stateless_attempts) {
    // Rung 1: microreboot the component, then park it with exponential
    // backoff so a persistent fault cannot re-fire immediately.
    slot.rung = 1;
    ++slot.stateless_tries;
    ++stats_.ladder_stateless;
    slot.backoff = slot.backoff == 0
                       ? ladder_.backoff_base_ticks
                       : std::min(slot.backoff * 2, ladder_.backoff_cap_ticks);
    OSIRIS_TRACE_EVENT(kRecoveryStateless, comp.endpoint().value, slot.backoff, slot.rung);
  } else {
    // Rung 2: quarantine. The cooldown keeps doubling but never drops below
    // the configured quarantine floor. Budget exhaustion lands here directly:
    // the component degrades instead of wedging the whole system.
    slot.rung = 2;
    ++stats_.quarantines;
    if (over_budget) ++stats_.budget_quarantines;
    slot.backoff = std::max(ladder_.quarantine_cooldown_ticks,
                            std::min(slot.backoff * 2, ladder_.backoff_cap_ticks));
    OSIRIS_TRACE_EVENT(kRecoveryQuarantine, comp.endpoint().value, slot.backoff,
                       over_budget ? 1 : 0);
  }
  OSIRIS_INFO("recovery", "%s crash loop: escalating to rung %u (park %llu ticks, try %u/%u)",
              std::string(comp.name()).c_str(), slot.rung,
              static_cast<unsigned long long>(slot.backoff), slot.stateless_tries,
              ladder_.stateless_attempts);

  // Both rungs discard the possibly fault-damaged state: the component comes
  // back from its pristine boot image once readmitted.
  reset_to_boot_image(slot);
  slot.parked = true;
  // The probation deadline outlives the park: crashes shortly after
  // readmission stay classified as recurring even though the sliding window
  // has slid past the pre-park crash burst.
  slot.probation_until = now + slot.backoff + ladder_.crash_window_ticks;
  kernel_.quarantine(comp.endpoint());
  announce_park(comp.endpoint(), slot.backoff, slot.rung);

  if (replyable(ctx)) {
    ++stats_.error_replies;
    return CrashDecision{CrashAction::kErrorReply, make_reply(ctx.inflight.type, E_CRASH)};
  }
  return CrashDecision{CrashAction::kNoReply, {}};
}

void Engine::on_storm(Endpoint ep) {
  auto it = slots_.find(ep.value);
  if (it == slots_.end()) return;  // fever outside the recovery surface
  Slot& slot = it->second;
  if (slot.parked) return;  // already quarantined; fever data is stale
  const Tick now = kernel_.clock().now();

  if (!kernel_.is_throttled(ep)) {
    // Storm rung, first response: throttle. The component keeps running —
    // and keeps answering heartbeats — but its outbound pressure is capped,
    // which both unblocks the victims and preserves the evidence: a
    // legitimate burst cools off under the throttle, a storm does not.
    kernel_.throttle(ep);
    ++stats_.storm_throttles;
    const Tick onset = fi::Registry::instance().storm_start_tick();
    const Tick latency = (onset != 0 && now >= onset) ? now - onset : 0;
    if (!stats_.storm_detected) {
      stats_.storm_detected = true;
      stats_.detection_latency_ticks = latency;
    }
    OSIRIS_TRACE_EVENT(kRecoveryThrottle, ep.value, latency);
    OSIRIS_INFO("recovery", "%s fevered: storm throttle engaged (latency %llu ticks)",
                std::string(slot.comp->name()).c_str(),
                static_cast<unsigned long long>(latency));
    return;
  }

  // Fever persisting under an active throttle: the pressure is not a burst,
  // it is a re-firing fault. Escalate to quarantine and disarm any storm
  // fault owned by this component — quarantine must *end* the storm, or
  // readmission would re-trigger it forever. Non-storm persistent faults
  // stay armed (recurring-crash campaigns depend on them surviving).
  ++stats_.storm_quarantines;
  if (fi::Registry::instance().disarm_storms_for(ep.value)) ++stats_.storm_disarms;
  slot.rung = 2;
  slot.backoff = std::max(ladder_.storm_cooldown_ticks,
                          std::min(slot.backoff * 2, ladder_.backoff_cap_ticks));
  OSIRIS_TRACE_EVENT(kRecoveryQuarantine, ep.value, slot.backoff, /*budget=*/0);
  OSIRIS_INFO("recovery", "%s storm persists under throttle: quarantining for %llu ticks",
              std::string(slot.comp->name()).c_str(),
              static_cast<unsigned long long>(slot.backoff));
  reset_to_boot_image(slot);
  slot.parked = true;
  slot.probation_until = now + slot.backoff + ladder_.crash_window_ticks;
  kernel_.quarantine(ep);
  kernel_.unthrottle(ep);  // quarantine supersedes the throttle
  announce_park(ep, slot.backoff, slot.rung);
}

void Engine::announce_park(Endpoint ep, Tick cooldown, std::uint32_t rung) {
  const bool rs_reachable =
      kernel_.is_server(kernel::kRsEp) && !kernel_.is_quarantined(kernel::kRsEp);
  if (rs_reachable) {
    // RS owns the readmission timer and answers the component's heartbeat
    // slot as "quarantined" until the cooldown expires.
    kernel_.send(kernel::kKernelEp, kernel::kRsEp,
                 kernel::make_msg(servers::RS_PARK, static_cast<std::uint64_t>(ep.value),
                                  cooldown, rung));
    return;
  }
  // RS is absent or is itself the parked component: the RCB arms the
  // cooldown timer directly so the quarantine cannot become permanent.
  kernel_.clock().call_after(cooldown, [this, ep] { readmit(ep); });
}

void Engine::readmit(Endpoint ep) {
  auto it = slots_.find(ep.value);
  if (it == slots_.end() || !it->second.parked) return;
  it->second.parked = false;
  ++stats_.readmissions;
  kernel_.lift_quarantine(ep);
  kernel_.unthrottle(ep);  // a readmitted component starts with a clean bill
  OSIRIS_TRACE_EVENT(kRecoveryReadmit, ep.value, it->second.rung);
  OSIRIS_INFO("recovery", "%s readmitted after cooldown (rung %u)",
              std::string(it->second.comp->name()).c_str(), it->second.rung);
  if (ep != kernel::kRsEp && kernel_.is_server(kernel::kRsEp) &&
      !kernel_.is_quarantined(kernel::kRsEp)) {
    kernel_.send(kernel::kKernelEp, kernel::kRsEp,
                 kernel::make_msg(servers::RS_READMIT, static_cast<std::uint64_t>(ep.value)));
  }
}

void Engine::restart_phase(Slot& slot) {
  // Transfer the crashed component's data section into the spare clone; the
  // clone then becomes the live instance. (In the simulator both images share
  // the host address space, so after the copy the original addresses remain
  // the live ones — the copy models the transfer cost and the clone's memory
  // footprint.)
  Recoverable& comp = *slot.comp;
  const std::size_t ds = comp.data_section_size();
  std::memcpy(slot.clone_image.data(), comp.data_section(), ds);
  if (const std::size_t aux = comp.aux_section_size(); aux > 0) {
    std::byte* aux_clone = slot.clone_image.data() + ds;
    if (ckpt::PageStore* ps = comp.page_store(); ps != nullptr) {
      // Delta restart: the clone's aux image is already synced up to the last
      // transfer; move only the pages dirtied since. The inline data section
      // stays a full copy — it is small by construction (the MB+ state lives
      // in the aux region precisely so restarts never memcpy it whole).
      const std::size_t delta = ps->sync_transfer_dirty(
          [aux_clone](std::size_t off, const std::byte* src, std::size_t len) {
            std::memcpy(aux_clone + off, src, len);
          });
      ps->note_restart(ds + delta, ds + aux);
      OSIRIS_TRACE_EVENT(kRestartDelta, comp.endpoint().value, delta,
                         ps->page_bytes() != 0 ? delta / ps->page_bytes() : 0);
    } else {
      std::memcpy(aux_clone, comp.aux_section(), aux);
    }
  }
  ++stats_.restarts;
  OSIRIS_TRACE_EVENT(kRecoveryRestart, comp.endpoint().value, slot.clone_image.size());
}

void Engine::reset_to_boot_image(Slot& slot) {
  Recoverable& comp = *slot.comp;
  restart_phase(slot);
  // Microreboot: fresh initial state; everything the component knew is lost.
  const std::size_t ds = comp.data_section_size();
  std::memcpy(comp.data_section(), slot.boot_image.data(), ds);
  if (const std::size_t aux = comp.aux_section_size(); aux > 0) {
    std::memcpy(comp.aux_section(), slot.boot_image.data() + ds, aux);
    if (ckpt::PageStore* ps = comp.page_store(); ps != nullptr) {
      // The memcpy above bypassed log_write, so the transfer bitmap missed
      // it: every page may now differ from the clone's last sync.
      ps->mark_all_transfer_dirty();
    }
  }
  comp.ckpt_context().log().checkpoint();
  comp.window().end_of_request();
  comp.reinitialize();
  comp.on_restored(/*rolled_back=*/false);
}

CrashDecision Engine::recover_windowed(Slot& slot, const CrashContext& ctx) {
  Recoverable& comp = *slot.comp;

  // Reconciliation is only consistent when the recovery window is still open
  // AND the triggering request can be answered with an error. In every other
  // case the paper performs a controlled shutdown (SIV-C) — unless the
  // component runs a FOM executor: a crash during a *resumed* attempt arrives
  // via the disk-completion notification (unreplyable here), but the executor
  // knows the parked request's real requester and reconciles it itself from
  // on_restored(). The window-open requirement is unchanged.
  const bool window_open = comp.window().is_open();
  const bool can_reply = replyable(ctx);
  const bool self_reconcile = !can_reply && comp.can_reconcile_inflight();

  if (!window_open || (!can_reply && !self_reconcile)) {
    ++stats_.shutdowns;
    comp.window().end_of_request();
    return CrashDecision{CrashAction::kShutdown, {}};
  }

  // Phase 1: restart — bring up the spare clone with the crashed state.
  restart_phase(slot);

  // Phase 2: rollback — undo every store since the top-of-loop checkpoint.
  OSIRIS_ASSERT(comp.ckpt_context().log().integrity_ok());
  [[maybe_unused]] const std::size_t replayed = comp.ckpt_context().log().entry_count();
  comp.ckpt_context().log().rollback();
  ++stats_.rollbacks;
  OSIRIS_TRACE_EVENT(kRecoveryRollback, comp.endpoint().value, replayed);

  const bool tainted = comp.window().is_tainted();

  // The component is back at its last known-good state; close out the
  // interrupted request and let the component repair runtime structures
  // (e.g. the cooperative thread library, SIV-E).
  comp.window().end_of_request();
  comp.on_restored(/*rolled_back=*/true);

  if (self_reconcile) {
    // The executor sent the E_CRASH reply during on_restored(); nothing to
    // answer here. (Taint cannot apply: the crashed dispatch was a
    // notification, so there is no requester-scoped SEEP trail to clean up.)
    ++stats_.fom_reconciles;
    return CrashDecision{CrashAction::kNoReply, {}};
  }

  if (tainted) {
    // Phase 3 (SVII extension): requester-scoped SEEPs already leaked
    // requester-local state into other compartments; killing the requester
    // cleans those up through the ordinary exit path.
    ++stats_.requester_kills;
    return CrashDecision{CrashAction::kKillRequester, {}};
  }

  // Phase 3: reconciliation — error virtualization. The requester receives
  // E_CRASH and handles it like any other failed call; the original request
  // is discarded, which also neutralizes persistent faults.
  ++stats_.error_replies;
  return CrashDecision{CrashAction::kErrorReply,
                       make_reply(ctx.inflight.type, E_CRASH)};
}

CrashDecision Engine::recover_stateless(Slot& slot, const CrashContext& ctx) {
  (void)ctx;
  ++stats_.stateless_restarts;
  // Rung 0: the policy-preferred microreboot (no park, no escalation).
  OSIRIS_TRACE_EVENT(kRecoveryStateless, slot.comp->endpoint().value, /*park=*/0, slot.rung);
  reset_to_boot_image(slot);
  // Microreboot systems restart the component but have no reconciliation
  // protocol: the in-flight requester is simply never answered. (This is
  // why the paper's stateless column has no "fail" bucket — a pending
  // request turns into a hang, i.e. a crash outcome.)
  return CrashDecision{CrashAction::kNoReply, {}};
}

CrashDecision Engine::recover_naive(Slot& slot, const CrashContext& ctx) {
  Recoverable& comp = *slot.comp;
  restart_phase(slot);
  ++stats_.naive_restarts;
  // Best-effort: keep the (possibly half-updated) crashed state as-is and
  // restart the component from its entry point. "No special handling" means
  // three things the OSIRIS pipeline does are missing here:
  //  - no rollback: mid-request mutations stay in place;
  //  - no recovery-mode detection: the restarted component runs its normal
  //    boot-time initialization over the stale data section (resetting
  //    allocator scalars above live tables — pid collisions, frame
  //    accounting mismatches — exactly the inconsistencies that later trip
  //    fail-stop invariants);
  //  - no cooperative-thread-library fixup: a crashed VFS worker stays
  //    wedged, and repeated crashes exhaust the thread pool.
  comp.ckpt_context().log().checkpoint();
  comp.window().end_of_request();
  comp.reinitialize();
  if (replyable(ctx)) {
    ++stats_.error_replies;
    return CrashDecision{CrashAction::kErrorReply, make_reply(ctx.inflight.type, E_CRASH)};
  }
  return CrashDecision{CrashAction::kNoReply, {}};
}

}  // namespace osiris::recovery
