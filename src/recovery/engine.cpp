#include "recovery/engine.hpp"

#include <cstring>

#include "support/common.hpp"
#include "support/log.hpp"

namespace osiris::recovery {

using kernel::CrashAction;
using kernel::CrashContext;
using kernel::CrashDecision;
using kernel::E_CRASH;
using kernel::Endpoint;
using kernel::make_reply;

Engine::Engine(kernel::Kernel& kernel, const seep::Classification& classification,
               seep::Policy policy, std::uint32_t max_recoveries_per_component)
    : kernel_(kernel),
      classification_(classification),
      policy_(policy),
      max_recoveries_(max_recoveries_per_component) {
  kernel_.set_crash_handler([this](const CrashContext& ctx) { return on_crash(ctx); });
}

void Engine::register_component(Recoverable* comp) {
  OSIRIS_ASSERT(comp != nullptr);
  Slot slot;
  slot.comp = comp;
  // Pre-allocate the spare clone now: when PM or VM is down, memory cannot be
  // obtained dynamically (paper SIV-C restart phase, Table VI "+clone").
  slot.clone_image.resize(comp->data_section_size() + comp->recovery_arena_bytes());
  // Capture the pristine boot state for the stateless-restart baseline.
  slot.boot_image.assign(comp->data_section(), comp->data_section() + comp->data_section_size());
  slots_[comp->endpoint().value] = std::move(slot);
}

std::size_t Engine::clone_bytes(Endpoint ep) const {
  auto it = slots_.find(ep.value);
  return it == slots_.end() ? 0 : it->second.clone_image.size();
}

std::uint32_t Engine::recoveries_of(Endpoint ep) const {
  auto it = slots_.find(ep.value);
  return it == slots_.end() ? 0 : it->second.recoveries;
}

bool Engine::replyable(const CrashContext& ctx) const {
  if (!ctx.had_inflight) return false;
  if (!ctx.inflight.sender.valid() || ctx.inflight.sender == kernel::kKernelEp) return false;
  return classification_.get(ctx.inflight.type & ~kernel::kNotifyBit).replyable &&
         !kernel::is_notify(ctx.inflight.type);
}

CrashDecision Engine::on_crash(const CrashContext& ctx) {
  ++stats_.crashes_seen;
  auto it = slots_.find(ctx.crashed.value);
  if (it == slots_.end()) {
    // A component outside the recovery surface died: the system is wedged.
    ++stats_.giveups;
    return CrashDecision{CrashAction::kGiveUp, {}};
  }
  Slot& slot = it->second;
  if (++slot.recoveries > max_recoveries_) {
    OSIRIS_INFO("recovery", "%s exceeded %u recoveries: giving up",
                std::string(slot.comp->name()).c_str(), max_recoveries_);
    ++stats_.giveups;
    return CrashDecision{CrashAction::kGiveUp, {}};
  }

  OSIRIS_INFO("recovery", "component %s crashed (%s): policy=%s window=%s",
              std::string(slot.comp->name()).c_str(), ctx.what.c_str(),
              seep::policy_name(policy_), slot.comp->window().is_open() ? "open" : "closed");

  switch (policy_) {
    case seep::Policy::kStateless:
      return recover_stateless(slot, ctx);
    case seep::Policy::kNaive:
      return recover_naive(slot, ctx);
    case seep::Policy::kPessimistic:
    case seep::Policy::kEnhanced:
    case seep::Policy::kExtended:
      return recover_windowed(slot, ctx);
  }
  OSIRIS_PANIC("unknown policy");
}

void Engine::restart_phase(Slot& slot) {
  // Transfer the crashed component's data section into the spare clone; the
  // clone then becomes the live instance. (In the simulator both images share
  // the host address space, so after the copy the original addresses remain
  // the live ones — the copy models the transfer cost and the clone's memory
  // footprint.)
  std::memcpy(slot.clone_image.data(), slot.comp->data_section(),
              slot.comp->data_section_size());
  ++stats_.restarts;
}

CrashDecision Engine::recover_windowed(Slot& slot, const CrashContext& ctx) {
  Recoverable& comp = *slot.comp;

  // Reconciliation is only consistent when the recovery window is still open
  // AND the triggering request can be answered with an error. In every other
  // case the paper performs a controlled shutdown (SIV-C).
  const bool window_open = comp.window().is_open();
  const bool can_reply = replyable(ctx);

  if (!window_open || !can_reply) {
    ++stats_.shutdowns;
    comp.window().end_of_request();
    return CrashDecision{CrashAction::kShutdown, {}};
  }

  // Phase 1: restart — bring up the spare clone with the crashed state.
  restart_phase(slot);

  // Phase 2: rollback — undo every store since the top-of-loop checkpoint.
  OSIRIS_ASSERT(comp.ckpt_context().log().integrity_ok());
  comp.ckpt_context().log().rollback();
  ++stats_.rollbacks;

  const bool tainted = comp.window().is_tainted();

  // The component is back at its last known-good state; close out the
  // interrupted request and let the component repair runtime structures
  // (e.g. the cooperative thread library, SIV-E).
  comp.window().end_of_request();
  comp.on_restored(/*rolled_back=*/true);

  if (tainted) {
    // Phase 3 (SVII extension): requester-scoped SEEPs already leaked
    // requester-local state into other compartments; killing the requester
    // cleans those up through the ordinary exit path.
    ++stats_.requester_kills;
    return CrashDecision{CrashAction::kKillRequester, {}};
  }

  // Phase 3: reconciliation — error virtualization. The requester receives
  // E_CRASH and handles it like any other failed call; the original request
  // is discarded, which also neutralizes persistent faults.
  ++stats_.error_replies;
  return CrashDecision{CrashAction::kErrorReply,
                       make_reply(ctx.inflight.type, E_CRASH)};
}

CrashDecision Engine::recover_stateless(Slot& slot, const CrashContext& ctx) {
  Recoverable& comp = *slot.comp;
  restart_phase(slot);
  ++stats_.stateless_restarts;
  // Microreboot: fresh initial state; everything the component knew is lost.
  std::memcpy(comp.data_section(), slot.boot_image.data(), slot.boot_image.size());
  comp.ckpt_context().log().checkpoint();
  comp.window().end_of_request();
  comp.reinitialize();
  comp.on_restored(/*rolled_back=*/false);
  // Microreboot systems restart the component but have no reconciliation
  // protocol: the in-flight requester is simply never answered. (This is
  // why the paper's stateless column has no "fail" bucket — a pending
  // request turns into a hang, i.e. a crash outcome.)
  return CrashDecision{CrashAction::kNoReply, {}};
}

CrashDecision Engine::recover_naive(Slot& slot, const CrashContext& ctx) {
  Recoverable& comp = *slot.comp;
  restart_phase(slot);
  ++stats_.naive_restarts;
  // Best-effort: keep the (possibly half-updated) crashed state as-is and
  // restart the component from its entry point. "No special handling" means
  // three things the OSIRIS pipeline does are missing here:
  //  - no rollback: mid-request mutations stay in place;
  //  - no recovery-mode detection: the restarted component runs its normal
  //    boot-time initialization over the stale data section (resetting
  //    allocator scalars above live tables — pid collisions, frame
  //    accounting mismatches — exactly the inconsistencies that later trip
  //    fail-stop invariants);
  //  - no cooperative-thread-library fixup: a crashed VFS worker stays
  //    wedged, and repeated crashes exhaust the thread pool.
  comp.ckpt_context().log().checkpoint();
  comp.window().end_of_request();
  comp.reinitialize();
  if (replyable(ctx)) {
    ++stats_.error_replies;
    return CrashDecision{CrashAction::kErrorReply, make_reply(ctx.inflight.type, E_CRASH)};
  }
  return CrashDecision{CrashAction::kNoReply, {}};
}

}  // namespace osiris::recovery
