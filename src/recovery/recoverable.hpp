// Interface between the recovery engine and recoverable OS components.
//
// Every system server exposes its recoverable state ("data section") as a
// contiguous, trivially-copyable byte range, plus its checkpointing context
// and recovery window. The engine uses these for the three recovery phases
// (paper SIV-C): restart (state transfer into a spare clone), rollback
// (undo-log replay) and reconciliation (decided by the engine itself).
#pragma once

#include <cstddef>
#include <string_view>

#include "ckpt/context.hpp"
#include "kernel/endpoint.hpp"
#include "seep/window.hpp"

namespace osiris::servers {
struct FomStats;  // servers/fom.hpp; forward-declared to keep layering acyclic
}  // namespace osiris::servers

namespace osiris::recovery {

class Recoverable {
 public:
  virtual ~Recoverable() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual kernel::Endpoint endpoint() const = 0;

  /// The component's data section: all recoverable state, trivially copyable.
  virtual std::byte* data_section() = 0;
  [[nodiscard]] virtual std::size_t data_section_size() const = 0;

  /// Optional MB+ heap-backed recoverable region (DESIGN.md §17): a
  /// PagedTable's buffer, appended to the clone/boot images after the data
  /// section. Zero-sized for components without large state.
  virtual std::byte* aux_section() { return nullptr; }
  [[nodiscard]] virtual std::size_t aux_section_size() const { return 0; }

  /// The page tier covering the aux section, or nullptr when the component
  /// runs arena-only. With a store attached the engine's restart phase moves
  /// only transfer-dirty pages of the aux section (delta restart) instead of
  /// the whole image.
  [[nodiscard]] virtual ckpt::PageStore* page_store() { return nullptr; }

  virtual ckpt::Context& ckpt_context() = 0;
  virtual seep::Window& window() = 0;

  /// Reset local state to its boot-time value (stateless restart, and the
  /// "initialization" RCB element: called before entering the request loop).
  virtual void reinitialize() = 0;

  /// Post-restore fixup hook, e.g. the cooperative-thread-library repair the
  /// paper describes for the multithreaded VFS (SIV-E). `rolled_back` tells
  /// the component whether the undo log was applied.
  virtual void on_restored(bool rolled_back) = 0;

  /// True when the component can reconcile an unreplyable in-flight message
  /// itself after a windowed recovery. The FOM executor returns true: a crash
  /// during a resumed attempt arrives via a kernel notification (no replyable
  /// sender), but the executor knows the parked request's real requester and
  /// sends the E_CRASH reconciliation reply on its own.
  [[nodiscard]] virtual bool can_reconcile_inflight() const { return false; }

  /// Executor statistics, or nullptr for components without a FOM executor.
  [[nodiscard]] virtual const servers::FomStats* fom_stats() const { return nullptr; }

  /// Extra memory the spare clone must pre-allocate beyond the data section.
  /// The Virtual Memory Manager needs a substantial recovery arena so that
  /// the fresh VM never depends on the defunct VM for allocations during
  /// recovery — the dominant term of the paper's Table VI "+clone" column.
  [[nodiscard]] virtual std::size_t recovery_arena_bytes() const { return 0; }
};

}  // namespace osiris::recovery
