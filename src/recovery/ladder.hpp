// Escalation-ladder tuning knobs (crash-loop detection and quarantine).
//
// Kept in its own header so OsConfig can embed the struct without pulling in
// the kernel-facing engine interface.
#pragma once

#include <cstdint>

#include "support/clock.hpp"

namespace osiris::recovery {

/// Parameters of the engine's escalating recovery ladder. A crash is
/// *recurring* when the component accumulated `recurring_threshold` crashes
/// within the trailing `crash_window_ticks` of virtual time (or is still on
/// probation from an earlier escalation). Recurring crashes walk the ladder:
/// policy-preferred recovery -> stateless restart with exponential backoff ->
/// quarantine. Parked components are readmitted after their cooldown.
struct LadderConfig {
  /// Sliding window for the crash-rate classifier.
  Tick crash_window_ticks = 2000;
  /// Crashes inside the window before the crash counts as recurring.
  std::uint32_t recurring_threshold = 3;
  /// Rung-1 stateless restarts granted before escalating to quarantine.
  std::uint32_t stateless_attempts = 2;
  /// First rung-1 backoff; doubles on every further escalation.
  Tick backoff_base_ticks = 250;
  /// Upper bound for the exponential backoff (rung 1 and rung 2 alike).
  Tick backoff_cap_ticks = 16000;
  /// Minimum park duration once a component reaches quarantine (rung 2).
  Tick quarantine_cooldown_ticks = 4000;
  /// Storm rung (between rung 1's backoff and rung 2's quarantine): cooldown
  /// when a throttled component's fever persists and it escalates to
  /// quarantine. Separate knob because a storm is contained the moment the
  /// throttle engages — the quarantine only has to outlast fault disarm.
  Tick storm_cooldown_ticks = 4000;
};

}  // namespace osiris::recovery
