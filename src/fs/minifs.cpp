#include "fs/minifs.hpp"

#include <algorithm>
#include <cstring>

#include "support/common.hpp"

namespace osiris::fs {

using kernel::E_EXIST;
using kernel::E_FBIG;
using kernel::E_INVAL;
using kernel::E_ISDIR;
using kernel::E_NAMETOOLONG;
using kernel::E_NOENT;
using kernel::E_NOSPC;
using kernel::E_NOTDIR;
using kernel::E_NOTEMPTY;
using kernel::OK;

namespace {

constexpr std::size_t kInodesPerBlock = kBlockSize / sizeof(DiskInode);
constexpr std::size_t kEntriesPerBlock = kBlockSize / sizeof(DirEntry);

bool name_ok(std::string_view name) {
  return !name.empty() && name.size() <= kNameMax && name.find('/') == std::string_view::npos;
}

}  // namespace

void MiniFs::mkfs(BlockDevice& dev, std::uint32_t ninodes) {
  const auto nblocks = static_cast<std::uint32_t>(dev.num_blocks());
  OSIRIS_ASSERT(nblocks >= 16);

  SuperBlock sb;
  sb.magic = kFsMagic;
  sb.nblocks = nblocks;
  sb.ninodes = ninodes;
  sb.bitmap_start = 1;
  sb.bitmap_blocks = (nblocks / 8 + kBlockSize - 1) / kBlockSize;
  sb.inode_start = sb.bitmap_start + sb.bitmap_blocks;
  sb.inode_blocks =
      static_cast<std::uint32_t>((ninodes + kInodesPerBlock - 1) / kInodesPerBlock);
  sb.data_start = sb.inode_start + sb.inode_blocks;
  sb.root_ino = kRootIno;
  OSIRIS_ASSERT(sb.data_start < nblocks);

  alignas(8) std::byte blk[kBlockSize] = {};
  std::memcpy(blk, &sb, sizeof sb);
  dev.write_now(0, std::span<const std::byte, kBlockSize>(blk));

  // Bitmap: mark metadata blocks (superblock + bitmap + inode table) used.
  std::memset(blk, 0, sizeof blk);
  for (std::uint32_t b = sb.bitmap_start; b < sb.bitmap_start + sb.bitmap_blocks; ++b) {
    std::memset(blk, 0, sizeof blk);
    for (std::uint32_t bit = 0; bit < kBlockSize * 8; ++bit) {
      const std::uint32_t bno = (b - sb.bitmap_start) * kBlockSize * 8 + bit;
      if (bno < sb.data_start && bno < nblocks) {
        blk[bit / 8] |= static_cast<std::byte>(1u << (bit % 8));
      }
      if (bno >= nblocks) {
        // Past the end of the device: mark used so it is never allocated.
        blk[bit / 8] |= static_cast<std::byte>(1u << (bit % 8));
      }
    }
    dev.write_now(b, std::span<const std::byte, kBlockSize>(blk));
  }

  // Inode table: all free except the root directory.
  for (std::uint32_t b = 0; b < sb.inode_blocks; ++b) {
    std::memset(blk, 0, sizeof blk);
    if (b == 0) {
      // Inode numbers are 1-based; slot index = ino - 1.
      auto* inodes = reinterpret_cast<DiskInode*>(blk);
      DiskInode root;
      root.mode = static_cast<std::uint16_t>(FileType::kDirectory);
      root.nlinks = 1;
      inodes[kRootIno - 1] = root;
    }
    dev.write_now(sb.inode_start + b, std::span<const std::byte, kBlockSize>(blk));
  }
}

std::int64_t MiniFs::mount() {
  alignas(8) std::byte blk[kBlockSize];
  store_.read_block(0, std::span<std::byte, kBlockSize>(blk));
  std::memcpy(&sb_, blk, sizeof sb_);
  if (sb_.magic != kFsMagic || sb_.data_start >= sb_.nblocks) return E_INVAL;
  mounted_ = true;
  return OK;
}

bool MiniFs::valid_ino(Ino ino) const { return ino >= 1 && ino <= sb_.ninodes; }

DiskInode MiniFs::load_inode(Ino ino) {
  OSIRIS_ASSERT(valid_ino(ino));
  const std::uint32_t blk_idx = (ino - 1) / kInodesPerBlock;
  const std::uint32_t slot = (ino - 1) % kInodesPerBlock;
  DiskInode di;
  if (const std::byte* p = store_.peek_block(sb_.inode_start + blk_idx)) {
    std::memcpy(&di, p + slot * sizeof(DiskInode), sizeof di);
    return di;
  }
  alignas(8) std::byte blk[kBlockSize];
  store_.read_block(sb_.inode_start + blk_idx, std::span<std::byte, kBlockSize>(blk));
  std::memcpy(&di, blk + slot * sizeof(DiskInode), sizeof di);
  return di;
}

void MiniFs::store_inode(Ino ino, const DiskInode& di) {
  OSIRIS_ASSERT(valid_ino(ino));
  const std::uint32_t blk_idx = (ino - 1) / kInodesPerBlock;
  const std::uint32_t slot = (ino - 1) % kInodesPerBlock;
  alignas(8) std::byte blk[kBlockSize];
  store_.read_block(sb_.inode_start + blk_idx, std::span<std::byte, kBlockSize>(blk));
  std::memcpy(blk + slot * sizeof(DiskInode), &di, sizeof di);
  store_.write_block(sb_.inode_start + blk_idx, std::span<const std::byte, kBlockSize>(blk));
}

std::uint32_t MiniFs::alloc_block() {
  alignas(8) std::byte blk[kBlockSize];
  for (std::uint32_t b = 0; b < sb_.bitmap_blocks; ++b) {
    store_.read_block(sb_.bitmap_start + b, std::span<std::byte, kBlockSize>(blk));
    for (std::uint32_t byte = 0; byte < kBlockSize; ++byte) {
      if (blk[byte] == static_cast<std::byte>(0xff)) continue;
      for (std::uint32_t bit = 0; bit < 8; ++bit) {
        const auto mask = static_cast<std::byte>(1u << bit);
        if ((blk[byte] & mask) == std::byte{0}) {
          const std::uint32_t bno = b * kBlockSize * 8 + byte * 8 + bit;
          if (bno >= sb_.nblocks) return 0;
          blk[byte] |= mask;
          store_.write_block(sb_.bitmap_start + b, std::span<const std::byte, kBlockSize>(blk));
          // Zero the freshly allocated block.
          alignas(8) std::byte zero[kBlockSize] = {};
          store_.write_block(bno, std::span<const std::byte, kBlockSize>(zero));
          return bno;
        }
      }
    }
  }
  return 0;
}

void MiniFs::free_block(std::uint32_t bno) {
  OSIRIS_ASSERT(bno >= sb_.data_start && bno < sb_.nblocks);
  const std::uint32_t b = bno / (kBlockSize * 8);
  const std::uint32_t byte = (bno % (kBlockSize * 8)) / 8;
  const auto mask = static_cast<std::byte>(1u << (bno % 8));
  alignas(8) std::byte blk[kBlockSize];
  store_.read_block(sb_.bitmap_start + b, std::span<std::byte, kBlockSize>(blk));
  blk[byte] &= ~mask;
  store_.write_block(sb_.bitmap_start + b, std::span<const std::byte, kBlockSize>(blk));
}

Ino MiniFs::alloc_inode(FileType type) {
  for (Ino ino = 1; ino <= sb_.ninodes; ++ino) {
    DiskInode di = load_inode(ino);
    if (di.mode == static_cast<std::uint16_t>(FileType::kFree)) {
      di = DiskInode{};
      di.mode = static_cast<std::uint16_t>(type);
      di.nlinks = 1;
      store_inode(ino, di);
      return ino;
    }
  }
  return kNoIno;
}

void MiniFs::free_inode(Ino ino) {
  DiskInode di;  // all zero: FileType::kFree
  store_inode(ino, di);
}

std::uint32_t MiniFs::bmap(DiskInode& di, bool* dirty, std::uint32_t fbn, bool alloc) {
  if (fbn < kDirect) {
    if (di.direct[fbn] == 0 && alloc) {
      di.direct[fbn] = alloc_block();
      if (di.direct[fbn] != 0) *dirty = true;
    }
    return di.direct[fbn];
  }
  const std::uint32_t idx = fbn - kDirect;
  if (idx >= kPtrsPerBlock) return 0;
  if (di.indirect == 0) {
    if (!alloc) return 0;
    di.indirect = alloc_block();
    if (di.indirect == 0) return 0;
    *dirty = true;
  }
  alignas(8) std::byte blk[kBlockSize];
  store_.read_block(di.indirect, std::span<std::byte, kBlockSize>(blk));
  auto* ptrs = reinterpret_cast<std::uint32_t*>(blk);
  if (ptrs[idx] == 0 && alloc) {
    ptrs[idx] = alloc_block();
    if (ptrs[idx] != 0) {
      store_.write_block(di.indirect, std::span<const std::byte, kBlockSize>(blk));
    }
  }
  return ptrs[idx];
}

const std::uint32_t* MiniFs::peek_indirect(const DiskInode& di) {
  if (di.indirect == 0) return nullptr;
  return reinterpret_cast<const std::uint32_t*>(store_.peek_block(di.indirect));
}

std::int64_t MiniFs::lookup(Ino dir, std::string_view name) {
  if (!valid_ino(dir)) return E_INVAL;
  if (!name_ok(name)) return name.size() > kNameMax ? E_NAMETOOLONG : E_INVAL;
  DiskInode di = load_inode(dir);
  if (di.mode != static_cast<std::uint16_t>(FileType::kDirectory)) return E_NOTDIR;

  const std::uint32_t nentries = di.size / sizeof(DirEntry);
  alignas(8) std::byte blk[kBlockSize];
  bool dirty = false;
  for (std::uint32_t e = 0; e < nentries; ++e) {
    const std::uint32_t fbn = static_cast<std::uint32_t>(e / kEntriesPerBlock);
    const std::uint32_t slot = e % kEntriesPerBlock;
    if (slot == 0) {
      const std::uint32_t bno = bmap(di, &dirty, fbn, false);
      if (bno == 0) continue;
      store_.read_block(bno, std::span<std::byte, kBlockSize>(blk));
    }
    const auto* de = reinterpret_cast<const DirEntry*>(blk) + slot;
    if (de->ino != kNoIno && name == de->name) return de->ino;
  }
  return E_NOENT;
}

std::int64_t MiniFs::dir_add(Ino dir, std::string_view name, Ino target) {
  DiskInode di = load_inode(dir);
  const std::uint32_t nentries = di.size / sizeof(DirEntry);
  alignas(8) std::byte blk[kBlockSize];
  bool dirty = false;

  DirEntry entry;
  entry.ino = target;
  std::memcpy(entry.name, name.data(), name.size());
  entry.name[name.size()] = '\0';

  // Reuse a free slot if one exists.
  for (std::uint32_t e = 0; e < nentries; ++e) {
    const auto fbn = static_cast<std::uint32_t>(e / kEntriesPerBlock);
    const std::uint32_t slot = e % kEntriesPerBlock;
    const std::uint32_t bno = bmap(di, &dirty, fbn, false);
    if (bno == 0) continue;
    store_.read_block(bno, std::span<std::byte, kBlockSize>(blk));
    auto* de = reinterpret_cast<DirEntry*>(blk) + slot;
    if (de->ino == kNoIno) {
      *de = entry;
      store_.write_block(bno, std::span<const std::byte, kBlockSize>(blk));
      return OK;
    }
  }

  // Append a new slot.
  const auto fbn = static_cast<std::uint32_t>(nentries / kEntriesPerBlock);
  const std::uint32_t slot = nentries % kEntriesPerBlock;
  const std::uint32_t bno = bmap(di, &dirty, fbn, true);
  if (bno == 0) return E_NOSPC;
  store_.read_block(bno, std::span<std::byte, kBlockSize>(blk));
  auto* de = reinterpret_cast<DirEntry*>(blk) + slot;
  *de = entry;
  store_.write_block(bno, std::span<const std::byte, kBlockSize>(blk));
  di.size += sizeof(DirEntry);
  store_inode(dir, di);
  return OK;
}

std::int64_t MiniFs::dir_remove(Ino dir, std::string_view name) {
  DiskInode di = load_inode(dir);
  const std::uint32_t nentries = di.size / sizeof(DirEntry);
  alignas(8) std::byte blk[kBlockSize];
  bool dirty = false;
  for (std::uint32_t e = 0; e < nentries; ++e) {
    const auto fbn = static_cast<std::uint32_t>(e / kEntriesPerBlock);
    const std::uint32_t slot = e % kEntriesPerBlock;
    const std::uint32_t bno = bmap(di, &dirty, fbn, false);
    if (bno == 0) continue;
    store_.read_block(bno, std::span<std::byte, kBlockSize>(blk));
    auto* de = reinterpret_cast<DirEntry*>(blk) + slot;
    if (de->ino != kNoIno && name == de->name) {
      de->ino = kNoIno;
      store_.write_block(bno, std::span<const std::byte, kBlockSize>(blk));
      return OK;
    }
  }
  return E_NOENT;
}

bool MiniFs::dir_empty(Ino dir) {
  DiskInode di = load_inode(dir);
  const std::uint32_t nentries = di.size / sizeof(DirEntry);
  alignas(8) std::byte blk[kBlockSize];
  bool dirty = false;
  for (std::uint32_t e = 0; e < nentries; ++e) {
    const auto fbn = static_cast<std::uint32_t>(e / kEntriesPerBlock);
    const std::uint32_t slot = e % kEntriesPerBlock;
    const std::uint32_t bno = bmap(di, &dirty, fbn, false);
    if (bno == 0) continue;
    store_.read_block(bno, std::span<std::byte, kBlockSize>(blk));
    const auto* de = reinterpret_cast<const DirEntry*>(blk) + slot;
    if (de->ino != kNoIno) return false;
  }
  return true;
}

std::int64_t MiniFs::create(Ino dir, std::string_view name, FileType type) {
  if (!valid_ino(dir)) return E_INVAL;
  if (name.size() > kNameMax) return E_NAMETOOLONG;
  if (!name_ok(name)) return E_INVAL;
  DiskInode dd = load_inode(dir);
  if (dd.mode != static_cast<std::uint16_t>(FileType::kDirectory)) return E_NOTDIR;
  if (lookup(dir, name) >= 0) return E_EXIST;

  const Ino ino = alloc_inode(type);
  if (ino == kNoIno) return E_NOSPC;
  const std::int64_t r = dir_add(dir, name, ino);
  if (r != OK) {
    free_inode(ino);
    return r;
  }
  return ino;
}

std::int64_t MiniFs::unlink(Ino dir, std::string_view name) {
  const std::int64_t found = lookup(dir, name);
  if (found < 0) return found;
  const auto ino = static_cast<Ino>(found);
  DiskInode di = load_inode(ino);
  if (di.mode == static_cast<std::uint16_t>(FileType::kDirectory)) return E_ISDIR;

  const std::int64_t r = dir_remove(dir, name);
  if (r != OK) return r;
  if (di.nlinks <= 1) {
    release_blocks(di);
    free_inode(ino);
  } else {
    --di.nlinks;
    store_inode(ino, di);
  }
  return OK;
}

std::int64_t MiniFs::rmdir(Ino dir, std::string_view name) {
  const std::int64_t found = lookup(dir, name);
  if (found < 0) return found;
  const auto ino = static_cast<Ino>(found);
  DiskInode di = load_inode(ino);
  if (di.mode != static_cast<std::uint16_t>(FileType::kDirectory)) return E_NOTDIR;
  if (!dir_empty(ino)) return E_NOTEMPTY;

  const std::int64_t r = dir_remove(dir, name);
  if (r != OK) return r;
  release_blocks(di);
  free_inode(ino);
  return OK;
}

std::int64_t MiniFs::rename(Ino dir, std::string_view from, std::string_view to) {
  if (!name_ok(to)) return to.size() > kNameMax ? E_NAMETOOLONG : E_INVAL;
  const std::int64_t found = lookup(dir, from);
  if (found < 0) return found;
  if (lookup(dir, to) >= 0) return E_EXIST;
  const std::int64_t r = dir_remove(dir, from);
  if (r != OK) return r;
  return dir_add(dir, to, static_cast<Ino>(found));
}

std::optional<DirEntry> MiniFs::readdir(Ino dir, std::size_t index) {
  if (!valid_ino(dir)) return std::nullopt;
  DiskInode di = load_inode(dir);
  if (di.mode != static_cast<std::uint16_t>(FileType::kDirectory)) return std::nullopt;
  const std::uint32_t nentries = di.size / sizeof(DirEntry);
  alignas(8) std::byte blk[kBlockSize];
  bool dirty = false;
  std::size_t seen = 0;
  for (std::uint32_t e = 0; e < nentries; ++e) {
    const auto fbn = static_cast<std::uint32_t>(e / kEntriesPerBlock);
    const std::uint32_t slot = e % kEntriesPerBlock;
    const std::uint32_t bno = bmap(di, &dirty, fbn, false);
    if (bno == 0) continue;
    store_.read_block(bno, std::span<std::byte, kBlockSize>(blk));
    const auto* de = reinterpret_cast<const DirEntry*>(blk) + slot;
    if (de->ino != kNoIno) {
      if (seen == index) return *de;
      ++seen;
    }
  }
  return std::nullopt;
}

std::int64_t MiniFs::read(Ino ino, std::uint32_t offset, std::span<std::byte> out) {
  if (!valid_ino(ino)) return E_INVAL;
  DiskInode di = load_inode(ino);
  if (di.mode == static_cast<std::uint16_t>(FileType::kFree)) return E_NOENT;
  if (offset >= di.size) return 0;

  const std::size_t want = std::min<std::size_t>(out.size(), di.size - offset);
  std::size_t done = 0;
  alignas(8) std::byte blk[kBlockSize];
  bool dirty = false;
  // Borrow the indirect block once instead of re-reading it per data block.
  // Any fallback read_block may evict the borrowed entry, so re-borrow after.
  const std::uint32_t* ind = peek_indirect(di);
  while (done < want) {
    const std::uint32_t pos = offset + static_cast<std::uint32_t>(done);
    const std::uint32_t fbn = pos / kBlockSize;
    const std::uint32_t in_blk = pos % kBlockSize;
    const std::size_t chunk = std::min<std::size_t>(want - done, kBlockSize - in_blk);
    std::uint32_t bno;
    if (fbn < kDirect) {
      bno = di.direct[fbn];
    } else if (ind != nullptr && fbn - kDirect < kPtrsPerBlock) {
      bno = ind[fbn - kDirect];
    } else {
      bno = bmap(di, &dirty, fbn, false);
      ind = peek_indirect(di);
    }
    if (bno == 0) {
      std::memset(out.data() + done, 0, chunk);  // hole
    } else if (const std::byte* p = store_.peek_block(bno)) {
      std::memcpy(out.data() + done, p + in_blk, chunk);
    } else {
      store_.read_block(bno, std::span<std::byte, kBlockSize>(blk));
      std::memcpy(out.data() + done, blk + in_blk, chunk);
      ind = peek_indirect(di);
    }
    done += chunk;
  }
  return static_cast<std::int64_t>(done);
}

std::int64_t MiniFs::write(Ino ino, std::uint32_t offset, std::span<const std::byte> in) {
  if (!valid_ino(ino)) return E_INVAL;
  DiskInode di = load_inode(ino);
  if (di.mode == static_cast<std::uint16_t>(FileType::kFree)) return E_NOENT;
  if (di.mode == static_cast<std::uint16_t>(FileType::kDirectory)) return E_ISDIR;
  if (offset + in.size() > kMaxFileSize) return E_FBIG;

  std::size_t done = 0;
  alignas(8) std::byte blk[kBlockSize];
  bool inode_dirty = false;
  // Borrow the indirect block for the no-allocation steady state; fall back
  // to bmap (which may allocate and do its own block I/O) when a pointer is
  // missing. Every store access below may evict the borrow, so re-borrow
  // after each one.
  const std::uint32_t* ind = peek_indirect(di);
  while (done < in.size()) {
    const std::uint32_t pos = offset + static_cast<std::uint32_t>(done);
    const std::uint32_t fbn = pos / kBlockSize;
    const std::uint32_t in_blk = pos % kBlockSize;
    const std::size_t chunk = std::min<std::size_t>(in.size() - done, kBlockSize - in_blk);
    std::uint32_t bno = 0;
    if (fbn < kDirect) {
      bno = di.direct[fbn];
    } else if (ind != nullptr && fbn - kDirect < kPtrsPerBlock) {
      bno = ind[fbn - kDirect];
    }
    if (bno == 0) {
      bno = bmap(di, &inode_dirty, fbn, true);
      if (bno == 0) break;  // disk full: partial write
    }
    if (chunk == kBlockSize) {
      // Full-block overwrite: write straight from the caller's buffer (on the
      // VFS zero-copy path that is grant memory -> cache in a single copy).
      store_.write_block(bno,
                         std::span<const std::byte, kBlockSize>(in.data() + done, kBlockSize));
    } else {
      store_.read_block(bno, std::span<std::byte, kBlockSize>(blk));
      std::memcpy(blk + in_blk, in.data() + done, chunk);
      store_.write_block(bno, std::span<const std::byte, kBlockSize>(blk));
    }
    ind = peek_indirect(di);
    done += chunk;
  }
  const std::uint32_t end = offset + static_cast<std::uint32_t>(done);
  if (end > di.size) {
    di.size = end;
    inode_dirty = true;
  }
  if (inode_dirty) store_inode(ino, di);
  if (done == 0 && !in.empty()) return E_NOSPC;
  return static_cast<std::int64_t>(done);
}

std::int64_t MiniFs::truncate(Ino ino, std::uint32_t new_size) {
  if (!valid_ino(ino)) return E_INVAL;
  DiskInode di = load_inode(ino);
  if (di.mode != static_cast<std::uint16_t>(FileType::kRegular)) return E_INVAL;
  if (new_size >= di.size) {
    di.size = new_size;  // extension: holes read back as zeroes
    store_inode(ino, di);
    return OK;
  }
  // Shrink: free whole blocks past the new end.
  const std::uint32_t keep_blocks = (new_size + kBlockSize - 1) / kBlockSize;
  alignas(8) std::byte blk[kBlockSize];
  if (di.indirect != 0) {
    store_.read_block(di.indirect, std::span<std::byte, kBlockSize>(blk));
    auto* ptrs = reinterpret_cast<std::uint32_t*>(blk);
    bool any_left = false;
    for (std::uint32_t i = 0; i < kPtrsPerBlock; ++i) {
      const std::uint32_t fbn = static_cast<std::uint32_t>(kDirect + i);
      if (ptrs[i] != 0 && fbn >= keep_blocks) {
        free_block(ptrs[i]);
        ptrs[i] = 0;
      } else if (ptrs[i] != 0) {
        any_left = true;
      }
    }
    if (!any_left) {
      free_block(di.indirect);
      di.indirect = 0;
    } else {
      store_.write_block(di.indirect, std::span<const std::byte, kBlockSize>(blk));
    }
  }
  for (std::uint32_t i = 0; i < kDirect; ++i) {
    if (di.direct[i] != 0 && i >= keep_blocks) {
      free_block(di.direct[i]);
      di.direct[i] = 0;
    }
  }
  di.size = new_size;
  store_inode(ino, di);
  return OK;
}

void MiniFs::release_blocks(DiskInode& di) {
  for (std::uint32_t i = 0; i < kDirect; ++i) {
    if (di.direct[i] != 0) {
      free_block(di.direct[i]);
      di.direct[i] = 0;
    }
  }
  if (di.indirect != 0) {
    alignas(8) std::byte blk[kBlockSize];
    store_.read_block(di.indirect, std::span<std::byte, kBlockSize>(blk));
    const auto* ptrs = reinterpret_cast<const std::uint32_t*>(blk);
    for (std::uint32_t i = 0; i < kPtrsPerBlock; ++i) {
      if (ptrs[i] != 0) free_block(ptrs[i]);
    }
    free_block(di.indirect);
    di.indirect = 0;
  }
  di.size = 0;
}

std::int64_t MiniFs::getattr(Ino ino, Attr* out) {
  if (!valid_ino(ino)) return E_INVAL;
  DiskInode di = load_inode(ino);
  if (di.mode == static_cast<std::uint16_t>(FileType::kFree)) return E_NOENT;
  out->type = static_cast<FileType>(di.mode);
  out->size = di.size;
  out->nlinks = di.nlinks;
  return OK;
}

std::uint32_t MiniFs::free_blocks() {
  std::uint32_t free = 0;
  alignas(8) std::byte blk[kBlockSize];
  for (std::uint32_t b = 0; b < sb_.bitmap_blocks; ++b) {
    store_.read_block(sb_.bitmap_start + b, std::span<std::byte, kBlockSize>(blk));
    for (std::uint32_t bit = 0; bit < kBlockSize * 8; ++bit) {
      const std::uint32_t bno = b * kBlockSize * 8 + bit;
      if (bno >= sb_.nblocks) break;
      if ((blk[bit / 8] & static_cast<std::byte>(1u << (bit % 8))) == std::byte{0}) ++free;
    }
  }
  return free;
}

}  // namespace osiris::fs
