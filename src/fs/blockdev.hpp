// Simulated block device with asynchronous completion.
//
// The device models a disk with per-operation latency on the virtual clock.
// Completions are delivered through a callback, which the VFS server wires
// to a kernel notification — the simulated equivalent of a disk interrupt.
// The latency is what makes the VFS server's multithreading meaningful
// (paper SV: "multithreaded to prevent slow disk operations from effectively
// blocking the system") and what forces recovery windows to close on yield.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "support/clock.hpp"
#include "support/common.hpp"

namespace osiris::fs {

inline constexpr std::size_t kBlockSize = 1024;

/// Thrown by the cached store when a block is absent and the caller runs in
/// FOM mode: the in-progress operation unwinds to the executor, which parks
/// the request and retries once the asynchronous read lands. MiniFs keeps all
/// per-operation state on the stack, so unwinding mid-operation is safe — the
/// executor rolls the attempt's undo entries back before parking, leaving no
/// half-applied stores behind.
struct BlockMiss {
  std::uint32_t bno;
  explicit BlockMiss(std::uint32_t b) : bno(b) {}
};

struct BlockDevStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
};

class BlockDevice {
 public:
  using Completion = std::function<void()>;

  BlockDevice(VirtualClock& clock, std::size_t num_blocks, Tick read_latency = 40,
              Tick write_latency = 60)
      : clock_(clock),
        data_(num_blocks * kBlockSize),
        read_latency_(read_latency),
        write_latency_(write_latency) {}

  [[nodiscard]] std::size_t num_blocks() const noexcept { return data_.size() / kBlockSize; }

  /// Asynchronous read: `buf` is filled at completion time, then `done` runs.
  void submit_read(std::uint32_t bno, std::span<std::byte, kBlockSize> buf, Completion done);

  /// Asynchronous write: data is captured now, applied at completion time.
  void submit_write(std::uint32_t bno, std::span<const std::byte, kBlockSize> buf,
                    Completion done);

  /// Synchronous backdoor for mkfs and test harnesses (no latency).
  void read_now(std::uint32_t bno, std::span<std::byte, kBlockSize> buf) const;
  void write_now(std::uint32_t bno, std::span<const std::byte, kBlockSize> buf);

  [[nodiscard]] const BlockDevStats& stats() const noexcept { return stats_; }

 private:
  std::byte* block_ptr(std::uint32_t bno) {
    OSIRIS_ASSERT(bno < num_blocks());
    return data_.data() + static_cast<std::size_t>(bno) * kBlockSize;
  }
  [[nodiscard]] const std::byte* block_ptr(std::uint32_t bno) const {
    OSIRIS_ASSERT(bno < num_blocks());
    return data_.data() + static_cast<std::size_t>(bno) * kBlockSize;
  }

  VirtualClock& clock_;
  std::vector<std::byte> data_;
  Tick read_latency_;
  Tick write_latency_;
  BlockDevStats stats_;
};

}  // namespace osiris::fs
