#include "fs/cache.hpp"

#include <cstring>

namespace osiris::fs {

std::byte* BlockCache::lookup(std::uint32_t bno) {
  auto it = entries_.find(bno);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  touch(bno);
  return entries_[bno]->data.data();
}

std::byte* BlockCache::insert(
    std::uint32_t bno, std::span<const std::byte, kBlockSize> data,
    std::optional<std::pair<std::uint32_t, std::vector<std::byte>>>* evicted_dirty) {
  if (evicted_dirty) evicted_dirty->reset();
  if (auto it = entries_.find(bno); it != entries_.end()) {
    std::memcpy(it->second->data.data(), data.data(), kBlockSize);
    touch(bno);
    return it->second->data.data();
  }
  if (entries_.size() >= capacity_) {
    Entry& victim = lru_.back();
    ++stats_.evictions;
    if (victim.dirty) {
      ++stats_.writebacks;
      if (evicted_dirty) evicted_dirty->emplace(victim.bno, std::move(victim.data));
    }
    entries_.erase(victim.bno);
    lru_.pop_back();
  }
  lru_.push_front(Entry{bno, false, std::vector<std::byte>(data.begin(), data.end())});
  entries_[bno] = lru_.begin();
  return lru_.begin()->data.data();
}

void BlockCache::mark_dirty(std::uint32_t bno) {
  auto it = entries_.find(bno);
  OSIRIS_ASSERT(it != entries_.end());
  it->second->dirty = true;
}

bool BlockCache::is_dirty(std::uint32_t bno) const {
  auto it = entries_.find(bno);
  return it != entries_.end() && it->second->dirty;
}

std::vector<std::pair<std::uint32_t, std::vector<std::byte>>> BlockCache::take_dirty() {
  std::vector<std::pair<std::uint32_t, std::vector<std::byte>>> out;
  for (Entry& e : lru_) {
    if (e.dirty) {
      out.emplace_back(e.bno, e.data);  // copy: block stays cached
      e.dirty = false;
    }
  }
  return out;
}

void BlockCache::invalidate_all() {
  lru_.clear();
  entries_.clear();
}

void BlockCache::touch(std::uint32_t bno) {
  auto it = entries_.find(bno);
  OSIRIS_ASSERT(it != entries_.end());
  lru_.splice(lru_.begin(), lru_, it->second);
  entries_[bno] = lru_.begin();
}

}  // namespace osiris::fs
