// MiniFS: a small UNIX-like on-disk filesystem (the MFS equivalent).
//
// Layout on a BlockDevice (block size fs::kBlockSize):
//   block 0                  superblock
//   [bitmap_start, ...)      block allocation bitmap (1 bit per block)
//   [inode_start, ...)       inode table (64-byte inodes)
//   [data_start, ...)        data blocks
//
// Files have 10 direct block pointers and one singly-indirect block.
// Directories are flat arrays of 32-byte entries.
//
// MiniFS performs all I/O through a BlockStore, which the VFS server backs
// with its block cache + the asynchronous device; any MiniFS call may
// therefore block the calling VFS worker thread on a cache miss. All errors
// are returned as negative kernel::Errno values.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "fs/blockdev.hpp"
#include "kernel/message.hpp"

namespace osiris::fs {

using Ino = std::uint32_t;
inline constexpr Ino kNoIno = 0;
inline constexpr Ino kRootIno = 1;

inline constexpr std::size_t kNameMax = 27;
inline constexpr std::size_t kDirect = 10;
inline constexpr std::size_t kPtrsPerBlock = kBlockSize / sizeof(std::uint32_t);
inline constexpr std::size_t kMaxFileSize = (kDirect + kPtrsPerBlock) * kBlockSize;

enum class FileType : std::uint16_t { kFree = 0, kRegular = 1, kDirectory = 2 };

struct DiskInode {
  std::uint16_t mode = 0;  // FileType
  std::uint16_t nlinks = 0;
  std::uint32_t size = 0;
  std::uint32_t direct[kDirect] = {};
  std::uint32_t indirect = 0;
  std::uint32_t pad[3] = {};
};
static_assert(sizeof(DiskInode) == 64);

struct DirEntry {
  Ino ino = kNoIno;  // kNoIno marks a free slot
  char name[kNameMax + 1] = {};
};
static_assert(sizeof(DirEntry) == 32);

struct SuperBlock {
  std::uint32_t magic = 0;
  std::uint32_t nblocks = 0;
  std::uint32_t ninodes = 0;
  std::uint32_t bitmap_start = 0;
  std::uint32_t bitmap_blocks = 0;
  std::uint32_t inode_start = 0;
  std::uint32_t inode_blocks = 0;
  std::uint32_t data_start = 0;
  std::uint32_t root_ino = 0;
};

inline constexpr std::uint32_t kFsMagic = 0x051F1F5u;

struct Attr {
  FileType type = FileType::kFree;
  std::uint32_t size = 0;
  std::uint16_t nlinks = 0;
};

/// Abstract whole-block access; implemented by the VFS server on top of the
/// block cache and the asynchronous device (calls may block the fiber).
class BlockStore {
 public:
  virtual ~BlockStore() = default;
  virtual void read_block(std::uint32_t bno, std::span<std::byte, kBlockSize> out) = 0;
  virtual void write_block(std::uint32_t bno, std::span<const std::byte, kBlockSize> data) = 0;

  /// Borrow a read-only view of the block's current bytes when the store can
  /// serve them without blocking (a cache hit); nullptr otherwise — callers
  /// must then fall back to read_block. Borrowed pointers are invalidated by
  /// any later read_block/write_block (an insert may evict the borrowed
  /// entry), so consume or re-borrow after touching the store.
  virtual const std::byte* peek_block(std::uint32_t /*bno*/) { return nullptr; }
};

class MiniFs {
 public:
  explicit MiniFs(BlockStore& store) : store_(store) {}

  /// Format a device in place (synchronous; used at boot / in tests).
  static void mkfs(BlockDevice& dev, std::uint32_t ninodes = 224);

  /// Read and validate the superblock. Returns OK or E_INVAL.
  std::int64_t mount();

  [[nodiscard]] bool mounted() const noexcept { return mounted_; }
  [[nodiscard]] const SuperBlock& super() const noexcept { return sb_; }

  // --- namespace operations (all return negative Errno on failure) -----

  /// Find `name` in directory `dir`. Returns the inode number or an error.
  std::int64_t lookup(Ino dir, std::string_view name);

  /// Create a regular file or directory entry `name` in `dir`.
  std::int64_t create(Ino dir, std::string_view name, FileType type);

  std::int64_t unlink(Ino dir, std::string_view name);
  std::int64_t rmdir(Ino dir, std::string_view name);
  std::int64_t rename(Ino dir, std::string_view from, std::string_view to);

  /// Directory entry at position `index` (skipping free slots); nullopt at end.
  std::optional<DirEntry> readdir(Ino dir, std::size_t index);

  // --- file I/O ---------------------------------------------------------

  std::int64_t read(Ino ino, std::uint32_t offset, std::span<std::byte> out);
  std::int64_t write(Ino ino, std::uint32_t offset, std::span<const std::byte> in);
  std::int64_t truncate(Ino ino, std::uint32_t new_size);

  std::int64_t getattr(Ino ino, Attr* out);

  /// Number of free data blocks (for statfs and tests).
  std::uint32_t free_blocks();

 private:
  DiskInode load_inode(Ino ino);
  void store_inode(Ino ino, const DiskInode& di);
  [[nodiscard]] bool valid_ino(Ino ino) const;

  std::uint32_t alloc_block();  // 0 if disk full
  void free_block(std::uint32_t bno);
  Ino alloc_inode(FileType type);  // kNoIno if table full
  void free_inode(Ino ino);

  /// Disk block holding file block `fbn`, allocating if requested; 0 if hole
  /// or allocation failure.
  std::uint32_t bmap(DiskInode& di, bool* dirty, std::uint32_t fbn, bool alloc);

  /// Borrow the indirect pointer block if the store can serve it without
  /// blocking; nullptr otherwise (or when the file has none). Invalidated by
  /// any store access — re-borrow after every read_block/write_block.
  const std::uint32_t* peek_indirect(const DiskInode& di);

  std::int64_t dir_add(Ino dir, std::string_view name, Ino target);
  std::int64_t dir_remove(Ino dir, std::string_view name);
  [[nodiscard]] bool dir_empty(Ino dir);
  void release_blocks(DiskInode& di);

  BlockStore& store_;
  SuperBlock sb_{};
  bool mounted_ = false;
};

}  // namespace osiris::fs
