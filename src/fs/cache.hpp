// LRU block cache.
//
// Sits between MiniFS and the block device inside the VFS server, like the
// MINIX buffer cache. Hits complete synchronously; misses make the calling
// VFS worker thread block on the device (and, per paper SIV-E, close the
// recovery window because the thread yields).
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "fs/blockdev.hpp"

namespace osiris::fs {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
};

class BlockCache {
 public:
  explicit BlockCache(std::size_t capacity_blocks) : capacity_(capacity_blocks) {
    OSIRIS_ASSERT(capacity_ >= 1);
  }

  /// Pointer to cached block data, or nullptr on miss. Refreshes LRU order.
  [[nodiscard]] std::byte* lookup(std::uint32_t bno);

  /// Insert (or overwrite) a block; returns its cached data pointer.
  /// If the cache is full, the least recently used *clean* entry is evicted;
  /// a dirty victim is reported through `evicted_dirty` so the caller can
  /// write it back first.
  std::byte* insert(std::uint32_t bno, std::span<const std::byte, kBlockSize> data,
                    std::optional<std::pair<std::uint32_t, std::vector<std::byte>>>* evicted_dirty);

  void mark_dirty(std::uint32_t bno);
  [[nodiscard]] bool is_dirty(std::uint32_t bno) const;

  /// All dirty blocks (for sync); marks them clean.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::vector<std::byte>>> take_dirty();

  void invalidate_all();

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

 private:
  struct Entry {
    std::uint32_t bno;
    bool dirty = false;
    std::vector<std::byte> data;  // kBlockSize bytes
  };

  void touch(std::uint32_t bno);

  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::uint32_t, std::list<Entry>::iterator> entries_;
  CacheStats stats_;
};

}  // namespace osiris::fs
