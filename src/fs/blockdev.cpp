#include "fs/blockdev.hpp"

#include <cstring>
#include <memory>

namespace osiris::fs {

void BlockDevice::submit_read(std::uint32_t bno, std::span<std::byte, kBlockSize> buf,
                              Completion done) {
  OSIRIS_ASSERT(bno < num_blocks());
  ++stats_.reads;
  clock_.call_after(read_latency_, [this, bno, buf, done = std::move(done)] {
    std::memcpy(buf.data(), block_ptr(bno), kBlockSize);
    done();
  });
}

void BlockDevice::submit_write(std::uint32_t bno, std::span<const std::byte, kBlockSize> buf,
                               Completion done) {
  OSIRIS_ASSERT(bno < num_blocks());
  ++stats_.writes;
  // The data lands in the backing store immediately (a posted write): a read
  // submitted afterwards must never observe the pre-write contents. Only the
  // completion notification is delayed by the device latency.
  std::memcpy(block_ptr(bno), buf.data(), kBlockSize);
  clock_.call_after(write_latency_, [done = std::move(done)] { done(); });
}

void BlockDevice::read_now(std::uint32_t bno, std::span<std::byte, kBlockSize> buf) const {
  std::memcpy(buf.data(), block_ptr(bno), kBlockSize);
}

void BlockDevice::write_now(std::uint32_t bno, std::span<const std::byte, kBlockSize> buf) {
  std::memcpy(block_ptr(bno), buf.data(), kBlockSize);
}

}  // namespace osiris::fs
