// Synchronous BlockStore directly over a BlockDevice (no cache, no latency).
// Used at boot to format and populate the filesystem before the servers
// start, and by the monolithic baseline OS, which has no message loop.
#pragma once

#include "fs/blockdev.hpp"
#include "fs/minifs.hpp"

namespace osiris::fs {

class DirectStore final : public BlockStore {
 public:
  explicit DirectStore(BlockDevice& dev) : dev_(dev) {}

  void read_block(std::uint32_t bno, std::span<std::byte, kBlockSize> out) override {
    // analyze-suppress(blocking-in-handler): DirectStore is bound only by
    // mkfs and the monolithic baseline — the VFS server binds CachedStore.
    // The analyzer's virtual-dispatch union conservatively includes it.
    dev_.read_now(bno, out);
  }
  void write_block(std::uint32_t bno, std::span<const std::byte, kBlockSize> data) override {
    dev_.write_now(bno, data);
  }

 private:
  BlockDevice& dev_;
};

}  // namespace osiris::fs
