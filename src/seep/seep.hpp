// Side Effect Engraved Passages (SEEPs) — paper SIII-A / SIV-B.
//
// Every inter-component channel is wrapped in a SEEP that carries a static
// classification of the messages flowing through it: does the request modify
// the receiver's state (creating a cross-component dependency), and can the
// sender be answered with an error reply after recovery?
//
// The paper computes this classification with an LLVM pass over outbound
// call sites; we hand-author the same static table (see servers/protocol.cpp
// for the system-wide classification, the output the pass would produce).
#pragma once

#include <cstdint>
#include <unordered_map>

namespace osiris::seep {

enum class SeepClass : std::uint8_t {
  /// The interaction does not change the receiver's state (read-only query,
  /// lookups, retrievals). Safe inside a recovery window under the enhanced
  /// policy: the receiver learns nothing about the sender's state.
  kNonStateModifying,
  /// The interaction changes the receiver's state: rolling back the sender
  /// afterwards would orphan that change. Closes the recovery window.
  kStateModifying,
  /// The interaction changes receiver state that belongs exclusively to the
  /// *requesting process* (its address space, its fd table). Rolling back
  /// the sender orphans only requester-local state, which killing the
  /// requester cleans up automatically — the paper's SVII extensibility
  /// example. Under the extended policy such a SEEP taints the window
  /// instead of closing it; every other policy treats it as
  /// state-modifying.
  kRequesterScoped,
};

struct MsgTraits {
  SeepClass seep = SeepClass::kStateModifying;  // conservative default
  /// Whether the *incoming* message of this type is a request whose sender
  /// waits for a reply, so reconciliation may error-virtualize it (E_CRASH).
  bool replyable = true;
};

/// System-wide static SEEP classification: message type -> traits.
/// Message types are globally unique across server protocols, so the table
/// does not need to be keyed by destination.
class Classification {
 public:
  void set(std::uint32_t type, SeepClass seep, bool replyable = true) {
    table_[type] = MsgTraits{seep, replyable};
  }

  /// Unknown types get the conservative default (state-modifying, replyable).
  /// Every such fallback is counted: a nonzero default_lookups() means some
  /// channel carried a type the spec table never declared — invisible
  /// conservatism the metrics report surfaces (and dispatch fail-stops on).
  [[nodiscard]] MsgTraits get(std::uint32_t type) const {
    auto it = table_.find(type);
    if (it == table_.end()) {
      ++default_hits_;
      return MsgTraits{};
    }
    return it->second;
  }

  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }

  /// How many get() calls fell back to the conservative default.
  [[nodiscard]] std::uint64_t default_lookups() const noexcept { return default_hits_; }

 private:
  std::unordered_map<std::uint32_t, MsgTraits> table_;
  mutable std::uint64_t default_hits_ = 0;
};

}  // namespace osiris::seep
