// Recovery policies (paper SIV-B and SVI).
//
// The two OSIRIS policies differ in which SEEP classes close the recovery
// window; the two baseline policies (used in the survivability comparison,
// Tables II/III) do not checkpoint at all.
#pragma once

#include "seep/seep.hpp"

namespace osiris::seep {

enum class Policy : std::uint8_t {
  /// Baseline: restart the crashed component with *fresh initial state*
  /// (models microreboot systems; state is lost).
  kStateless,
  /// Baseline: restart the component but keep the crashed state as-is
  /// (best-effort, no rollback), and error-reply the requester.
  kNaive,
  /// OSIRIS pessimistic: sending *any* outbound message closes the window.
  kPessimistic,
  /// OSIRIS enhanced (default): only state-modifying SEEPs close the window.
  kEnhanced,
  /// SVII composable-policy extension: like enhanced, but requester-scoped
  /// SEEPs keep the window open (tainting it); reconciliation then kills
  /// the requester instead of error-replying.
  kExtended,
};

/// Does this policy maintain checkpoints / recovery windows at all?
[[nodiscard]] constexpr bool policy_uses_windows(Policy p) {
  return p == Policy::kPessimistic || p == Policy::kEnhanced || p == Policy::kExtended;
}

/// Does an outbound message of the given SEEP class close the window?
[[nodiscard]] constexpr bool policy_closes_window(Policy p, SeepClass cls) {
  switch (p) {
    case Policy::kStateless:
    case Policy::kNaive:
      return false;  // no window to close
    case Policy::kPessimistic:
      return true;  // any outbound interaction
    case Policy::kEnhanced:
      // Without the kill-requester reconciliation, requester-scoped effects
      // are as fatal as any other dependency: close.
      return cls != SeepClass::kNonStateModifying;
    case Policy::kExtended:
      return cls == SeepClass::kStateModifying;
  }
  return true;
}

/// Does an outbound message of the given SEEP class *taint* the window
/// (recovery stays possible, but reconciliation must kill the requester)?
[[nodiscard]] constexpr bool policy_taints_window(Policy p, SeepClass cls) {
  return p == Policy::kExtended && cls == SeepClass::kRequesterScoped;
}

[[nodiscard]] constexpr const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kStateless: return "stateless";
    case Policy::kNaive: return "naive";
    case Policy::kPessimistic: return "pessimistic";
    case Policy::kEnhanced: return "enhanced";
    case Policy::kExtended: return "extended";
  }
  return "?";
}

}  // namespace osiris::seep
