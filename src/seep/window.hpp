// Recovery-window state machine (paper SIV-B, Figure 2).
//
// One Window per component. It opens at the top of the request processing
// loop (which is also where the checkpoint — an undo-log reset — is taken)
// and closes at the first outbound SEEP the policy forbids, or when a
// cooperative thread yields (SIV-E). While open, rolling back the undo log
// provably returns the whole system to a consistent state; once closed, the
// undo log is discarded and instrumentation stops logging (the SIV-D
// optimization).
//
// The Window also owns the recovery-coverage accounting behind Table I:
// every fi:: probe reports a basic-block execution, attributed to
// inside/outside the window.
#pragma once

#include <cstdint>
#include <map>

#include "ckpt/context.hpp"
#include "seep/policy.hpp"
#include "trace/trace.hpp"

namespace osiris::seep {

// Close-cause codes recorded in kWindowClose events. Mirrored as plain
// integers so OSIRIS_TRACE=OFF builds never reference trace types; the
// static_assert keeps them in lockstep with trace::CloseCause.
inline constexpr std::uint64_t kCloseCauseSeep = 0;
inline constexpr std::uint64_t kCloseCauseYield = 1;
inline constexpr std::uint64_t kCloseCauseEndOfRequest = 2;
inline constexpr std::uint64_t kCloseCauseFomPark = 3;
#if OSIRIS_TRACE_ENABLED
static_assert(kCloseCauseSeep == static_cast<std::uint64_t>(trace::CloseCause::kSeep) &&
              kCloseCauseYield == static_cast<std::uint64_t>(trace::CloseCause::kYield) &&
              kCloseCauseEndOfRequest ==
                  static_cast<std::uint64_t>(trace::CloseCause::kEndOfRequest) &&
              kCloseCauseFomPark == static_cast<std::uint64_t>(trace::CloseCause::kFomPark));
#endif

struct WindowStats {
  std::uint64_t opened = 0;
  std::uint64_t closed_by_seep = 0;
  std::uint64_t closed_by_yield = 0;
  std::uint64_t tainted = 0;
  std::uint64_t fom_parks = 0;    // windows suspended by an executor park
  std::uint64_t fom_resumes = 0;  // windows reopened by an executor resume
  std::uint64_t probe_hits_inside = 0;
  std::uint64_t probe_hits_outside = 0;

  [[nodiscard]] double coverage() const noexcept {
    const std::uint64_t total = probe_hits_inside + probe_hits_outside;
    return total == 0 ? 0.0 : static_cast<double>(probe_hits_inside) / static_cast<double>(total);
  }
};

/// Per-message-type window accounting: which request opened the window when
/// it closed or tainted. This is the runtime ground truth the static
/// handler-granularity predictions (osiris-analyze Pass 4) are validated
/// against.
struct MsgWindowStats {
  std::uint64_t opened = 0;
  std::uint64_t closed_by_seep = 0;
  std::uint64_t closed_by_yield = 0;
  std::uint64_t tainted = 0;
  std::uint64_t fom_parks = 0;
  std::uint64_t fom_resumes = 0;
};

class Window {
 public:
  Window(Policy policy, ckpt::Context& ctx) : policy_(policy), ctx_(ctx) {}

  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;

  [[nodiscard]] Policy policy() const noexcept { return policy_; }
  [[nodiscard]] bool is_open() const noexcept { return open_; }

  /// True when a requester-scoped SEEP left the window open under the
  /// extended policy: recovery must kill the requester to reconcile.
  [[nodiscard]] bool is_tainted() const noexcept { return tainted_; }

  /// Top of the request processing loop: take the checkpoint and open the
  /// window. Under non-window policies this is a no-op. `msg_type` (when
  /// nonzero) attributes this window's eventual close/taint to the request
  /// being processed, feeding the per-handler stats.
  void open(std::uint32_t msg_type = 0) {
    if (!policy_uses_windows(policy_)) return;
    if (lazy_checkpoint_) {
      ctx_.log().checkpoint_if_dirty();
    } else {
      ctx_.log().checkpoint();
    }
    open_ = true;
    tainted_ = false;
    current_msg_ = msg_type;
    ctx_.set_window_open(true);
    ++stats_.opened;
    if (msg_type != 0) ++per_msg_[msg_type].opened;
    OSIRIS_TRACE_EVENT(kWindowOpen, ctx_.trace_id());
  }

  /// Called *before* each outbound SEEP message leaves the component.
  void on_outbound(SeepClass cls) {
    if (!open_) return;
    if (policy_taints_window(policy_, cls)) {
      if (!tainted_) {
        ++stats_.tainted;
        if (current_msg_ != 0) ++per_msg_[current_msg_].tainted;
      }
      tainted_ = true;
      return;  // window survives: reconciliation will kill the requester
    }
    if (policy_closes_window(policy_, cls)) {
      close_common(kCloseCauseSeep, static_cast<std::uint64_t>(cls));
      ++stats_.closed_by_seep;
      if (current_msg_ != 0) ++per_msg_[current_msg_].closed_by_seep;
    }
  }

  /// Forced close when a cooperative thread yields mid-request (SIV-E).
  void on_yield() {
    if (open_) {
      close_common(kCloseCauseYield, 0);
      ++stats_.closed_by_yield;
      if (current_msg_ != 0) ++per_msg_[current_msg_].closed_by_yield;
    }
  }

  /// FOM park: the executor suspends the current request on a declared
  /// blocking point. The window goes dormant — unlike on_yield() this does
  /// NOT discard the undo log (the executor already rolled the attempt back
  /// to its mark, so the surviving log still matches the checkpoint) and is
  /// not a coverage failure: the request resumes with a fresh window.
  void fom_park() {
    if (!open_) return;
    OSIRIS_TRACE_EVENT(kWindowClose, ctx_.trace_id(), kCloseCauseFomPark);
    open_ = false;
    tainted_ = false;
    ctx_.set_window_open(false);
    ++stats_.fom_parks;
    if (current_msg_ != 0) ++per_msg_[current_msg_].fom_parks;
  }

  /// FOM resume: reopen the window for a parked request's re-run. Takes the
  /// checkpoint like open() but does not count as a new window in `opened`
  /// (a parked+resumed request is still one request — useful_work() and the
  /// health monitor keep their one-window-per-request meaning).
  void fom_resume(std::uint32_t msg_type) {
    if (!policy_uses_windows(policy_)) return;
    if (lazy_checkpoint_) {
      ctx_.log().checkpoint_if_dirty();
    } else {
      ctx_.log().checkpoint();
    }
    open_ = true;
    tainted_ = false;
    current_msg_ = msg_type;
    ctx_.set_window_open(true);
    ++stats_.fom_resumes;
    if (msg_type != 0) ++per_msg_[msg_type].fom_resumes;
    OSIRIS_TRACE_EVENT(kWindowOpen, ctx_.trace_id(), 1);  // a0=1: resume reopen
  }

  /// End of request processing: the window simply ends (no statistics —
  /// the next open() re-checkpoints).
  void end_of_request() {
    if (open_) {
      OSIRIS_TRACE_EVENT(kWindowClose, ctx_.trace_id(), kCloseCauseEndOfRequest);
    }
    open_ = false;
    tainted_ = false;
    ctx_.set_window_open(false);
  }

  /// Coverage probe (invoked by fi:: basic-block probes).
  void probe_hit() noexcept {
    if (open_) {
      ++stats_.probe_hits_inside;
    } else {
      ++stats_.probe_hits_outside;
    }
  }

  [[nodiscard]] const WindowStats& stats() const noexcept { return stats_; }

  /// Close/taint accounting keyed by the message type passed to open().
  [[nodiscard]] const std::map<std::uint32_t, MsgWindowStats>& per_msg_stats() const noexcept {
    return per_msg_;
  }

  /// Fast path (DESIGN.md §14): let open() skip the physical undo-log reset
  /// when the log is already clean. Trace-invariant; driven by the kernel's
  /// batching flag via ServerCommon.
  void set_lazy_checkpoint(bool on) noexcept { lazy_checkpoint_ = on; }

 private:
  void close_common([[maybe_unused]] std::uint64_t cause,
                    [[maybe_unused]] std::uint64_t seep_cls) {
    OSIRIS_TRACE_EVENT(kWindowClose, ctx_.trace_id(), cause, seep_cls);
    open_ = false;
    ctx_.set_window_open(false);
    // Past the window the checkpoint can never be restored: discard the log
    // now and stop paying for instrumentation (SIV-D).
    ctx_.log().checkpoint();
  }

  Policy policy_;
  ckpt::Context& ctx_;
  bool open_ = false;
  bool tainted_ = false;
  bool lazy_checkpoint_ = false;
  std::uint32_t current_msg_ = 0;
  WindowStats stats_;
  std::map<std::uint32_t, MsgWindowStats> per_msg_;
};

}  // namespace osiris::seep
