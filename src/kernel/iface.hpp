// Kernel-visible interfaces of the two process kinds.
//
// System servers are event-driven (paper SIV-A): the kernel invokes
// dispatch() for every incoming message; the server either returns a reply
// inline or takes ownership of replying later (multithreaded servers that
// block on I/O). User processes ("clients") are driven by the OS layer; the
// kernel only pushes replies and signals into them via callbacks.
#pragma once

#include <optional>
#include <string_view>

#include "kernel/message.hpp"

namespace osiris::kernel {

class IServer {
 public:
  virtual ~IServer() = default;

  /// Name for logs and statistics ("pm", "vfs", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Handle one incoming message. Returns the reply to send back to
  /// msg.sender, or nullopt if the server will reply asynchronously (or the
  /// message needs no reply). May throw FailStopFault.
  virtual std::optional<Message> dispatch(const Message& msg) = 0;

  /// True while the server is processing deferred work (e.g. worker threads
  /// blocked on disk I/O). Used by the scheduler's idle detection.
  [[nodiscard]] virtual bool has_pending_work() const { return false; }

  /// Monotonic useful-work counter sampled by the health monitor around
  /// each dispatch: recovery windows opened plus deferred replies sent. A
  /// dispatch that moves neither is physiologically idle — if a component
  /// produces many such dispatches in a burst, it is storming, not working.
  [[nodiscard]] virtual std::uint64_t useful_work() const { return 0; }
};

class IClient {
 public:
  virtual ~IClient() = default;

  /// Deliver the reply to the client's outstanding sendrec.
  virtual void on_reply(const Message& reply) = 0;

  /// Deliver an asynchronous notification (signal) to the client.
  virtual void on_notify(const Message& msg) = 0;
};

}  // namespace osiris::kernel
