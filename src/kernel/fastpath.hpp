// Fast-path configuration for the IPC substrate (DESIGN.md §14).
//
// Three independent optimizations, each behind its own flag so the serving
// benchmark can report before/after columns and the golden-trace tests can
// pin observational equivalence per flag:
//
//   - arena_queue: back the kernel message queue with a fixed-capacity ring
//     so steady-state enqueue/dispatch does zero heap allocation. Bursts
//     beyond the ring spill to a deque overflow (FIFO order preserved) and
//     are counted, so backpressure is visible instead of silent.
//
//   - batching: coalesce consecutive front-of-queue messages to the same
//     server endpoint into one dispatch batch. Delivery order is exactly the
//     unbatched FIFO order; the win is one slot lookup per batch plus one
//     physical checkpoint per batch — the msg_spec SEEP class table decides
//     eligibility declaratively (NSM requests leave the undo log clean, so
//     every window open after the first finds nothing to truncate).
//
//   - zero_copy: route bulk payloads (above the inline-text threshold)
//     through kernel-checked grant spans instead of staging them through a
//     heap buffer and safecopy. Consumed by the VFS read/write paths.
#pragma once

#include <cstddef>
#include <cstdint>

#include "kernel/message.hpp"

namespace osiris::kernel {

struct FastPath {
  bool arena_queue = false;
  bool batching = false;
  bool zero_copy = false;

  /// Ring slots for the arena queue; beyond this, sends spill to the heap.
  std::size_t ring_capacity = 1024;

  /// Cap on one dispatch batch, so a flood to one endpoint cannot starve
  /// per-iteration bookkeeping (histogram buckets sized to match).
  std::size_t max_batch = 16;

  /// Payloads strictly larger than this go through grant spans when
  /// zero_copy is set; at or below, the staging copy is cheaper than the
  /// grant check. Matches the inline message text capacity.
  std::size_t zero_copy_threshold = kMsgTextCap;

  [[nodiscard]] static FastPath all_on() {
    FastPath f;
    f.arena_queue = true;
    f.batching = true;
    f.zero_copy = true;
    return f;
  }
};

/// Batch eligibility is decided by the declarative msg_spec class table
/// (servers layer); the kernel only holds a hook so the substrate stays
/// below the protocol in the layering.
using BatchEligibleFn = bool (*)(std::uint32_t type);

}  // namespace osiris::kernel
