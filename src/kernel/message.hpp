// Fixed-size IPC message, mirroring MINIX 3's fixed-size message structure.
//
// A message carries a type, the sender endpoint (filled in by the kernel),
// six scalar arguments and a small inline text payload used for paths, keys
// and process names. Bulk data (read/write buffers) never travels inline; it
// is transferred through memory grants (see grant.hpp), as in MINIX.
#pragma once

#include <cstdint>

#include "kernel/endpoint.hpp"
#include "support/fixed_string.hpp"

namespace osiris::kernel {

inline constexpr std::size_t kMsgTextCap = 64;

struct Message {
  std::uint32_t type = 0;
  Endpoint sender = kNoEndpoint;
  std::uint64_t arg[6] = {0, 0, 0, 0, 0, 0};
  FixedString<kMsgTextCap> text;

  [[nodiscard]] std::int64_t sarg(int i) const noexcept {
    return static_cast<std::int64_t>(arg[i]);
  }
  void set_sarg(int i, std::int64_t v) noexcept { arg[i] = static_cast<std::uint64_t>(v); }
};

/// Builds a message of the given type with up to three scalar args.
inline Message make_msg(std::uint32_t type, std::uint64_t a0 = 0, std::uint64_t a1 = 0,
                        std::uint64_t a2 = 0) {
  Message m;
  m.type = type;
  m.arg[0] = a0;
  m.arg[1] = a1;
  m.arg[2] = a2;
  return m;
}

/// Notification messages (no reply expected) have this bit set in the type.
inline constexpr std::uint32_t kNotifyBit = 0x40000000u;
inline constexpr bool is_notify(std::uint32_t type) { return (type & kNotifyBit) != 0; }

/// Reply convention: replies reuse the request type with the high bit set;
/// arg[0] carries the status (>= 0 result, < 0 negated errno).
inline constexpr std::uint32_t kReplyBit = 0x80000000u;

inline constexpr std::uint32_t reply_type(std::uint32_t request_type) {
  return request_type | kReplyBit;
}
inline constexpr bool is_reply(std::uint32_t type) { return (type & kReplyBit) != 0; }

inline Message make_reply(std::uint32_t request_type, std::int64_t status) {
  Message m;
  m.type = reply_type(request_type);
  m.set_sarg(0, status);
  return m;
}

/// OSIRIS error codes (negated errno-style values carried in reply arg[0]).
enum Errno : std::int64_t {
  OK = 0,
  E_CRASH = -1,   // error-virtualized reply after component recovery (paper SIII-C)
  E_NOENT = -2,
  E_NOMEM = -3,
  E_INVAL = -4,
  E_BADF = -5,
  E_MFILE = -6,
  E_EXIST = -7,
  E_NOTDIR = -8,
  E_ISDIR = -9,
  E_NOSPC = -10,
  E_AGAIN = -11,
  E_CHILD = -12,
  E_SRCH = -13,
  E_PERM = -14,
  E_NOSYS = -15,
  E_NOTEMPTY = -16,
  E_PIPE = -17,
  E_NAMETOOLONG = -18,
  E_NFILE = -19,
  E_SHUTDOWN = -20,  // system performed a controlled shutdown
  E_FBIG = -21,
  E_DEADLK = -22,
};

/// Human-readable name for an Errno (for logs and test diagnostics).
const char* errno_name(std::int64_t e);

}  // namespace osiris::kernel
