// Endpoints name IPC destinations, mirroring MINIX 3 endpoints.
//
// Well-known endpoints for the core system servers are fixed at boot,
// matching the prototype in the paper (PM, VM, VFS, DS, RS). User process
// endpoints are allocated dynamically from kFirstUser upward.
#pragma once

#include <cstdint>
#include <functional>

namespace osiris::kernel {

struct Endpoint {
  std::int32_t value = -1;

  [[nodiscard]] constexpr bool valid() const noexcept { return value >= 0; }
  friend constexpr bool operator==(Endpoint a, Endpoint b) noexcept { return a.value == b.value; }
  friend constexpr bool operator!=(Endpoint a, Endpoint b) noexcept { return a.value != b.value; }
  friend constexpr bool operator<(Endpoint a, Endpoint b) noexcept { return a.value < b.value; }
};

inline constexpr Endpoint kNoEndpoint{-1};
inline constexpr Endpoint kKernelEp{0};
inline constexpr Endpoint kRsEp{1};
inline constexpr Endpoint kPmEp{2};
inline constexpr Endpoint kVmEp{3};
inline constexpr Endpoint kVfsEp{4};
inline constexpr Endpoint kDsEp{5};
inline constexpr std::int32_t kFirstUserEndpoint = 16;

}  // namespace osiris::kernel

template <>
struct std::hash<osiris::kernel::Endpoint> {
  std::size_t operator()(osiris::kernel::Endpoint e) const noexcept {
    return std::hash<std::int32_t>{}(e.value);
  }
};
