#include "kernel/message.hpp"

namespace osiris::kernel {

const char* errno_name(std::int64_t e) {
  switch (e) {
    case OK: return "OK";
    case E_CRASH: return "E_CRASH";
    case E_NOENT: return "E_NOENT";
    case E_NOMEM: return "E_NOMEM";
    case E_INVAL: return "E_INVAL";
    case E_BADF: return "E_BADF";
    case E_MFILE: return "E_MFILE";
    case E_EXIST: return "E_EXIST";
    case E_NOTDIR: return "E_NOTDIR";
    case E_ISDIR: return "E_ISDIR";
    case E_NOSPC: return "E_NOSPC";
    case E_AGAIN: return "E_AGAIN";
    case E_CHILD: return "E_CHILD";
    case E_SRCH: return "E_SRCH";
    case E_PERM: return "E_PERM";
    case E_NOSYS: return "E_NOSYS";
    case E_NOTEMPTY: return "E_NOTEMPTY";
    case E_PIPE: return "E_PIPE";
    case E_NAMETOOLONG: return "E_NAMETOOLONG";
    case E_NFILE: return "E_NFILE";
    case E_SHUTDOWN: return "E_SHUTDOWN";
    case E_FBIG: return "E_FBIG";
    case E_DEADLK: return "E_DEADLK";
    default: return e >= 0 ? "OK(+n)" : "E_UNKNOWN";
  }
}

}  // namespace osiris::kernel
