// Memory grants, mirroring MINIX 3's safecopy grant mechanism.
//
// The simulator runs in a single host address space, but bulk data transfer
// between a user process and a server still goes through kernel-mediated
// grants: the user creates a grant over a buffer, passes the grant id in a
// message, and the server asks the kernel to safecopy through it. This keeps
// the isolation discipline of the real system: servers never touch foreign
// memory directly, and a revoked or out-of-bounds access is a containable
// fail-stop fault rather than silent corruption.
#pragma once

#include <cstddef>
#include <cstdint>

#include "kernel/endpoint.hpp"

namespace osiris::kernel {

using GrantId = std::uint64_t;
inline constexpr GrantId kNoGrant = 0;

enum class Access : std::uint8_t {
  kRead = 1,       // grantee may read from the buffer
  kWrite = 2,      // grantee may write into the buffer
  kReadWrite = 3,
};

struct Grant {
  Endpoint owner = kNoEndpoint;    // process whose memory is granted
  Endpoint grantee = kNoEndpoint;  // server allowed to use the grant
  std::byte* base = nullptr;
  std::size_t len = 0;
  Access access = Access::kRead;
  bool revoked = false;
};

}  // namespace osiris::kernel
