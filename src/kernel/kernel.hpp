// The simulated microkernel: process slots, message passing, grants,
// crash containment, and system lifecycle.
//
// This is the "message passing substrate" component of the paper's Reliable
// Computing Base (SVI-A item 5). It is deliberately small and fault-free:
// no fi:: probes are ever placed in this module.
//
// Execution model
// ---------------
// Everything runs on one host thread. System servers are event-driven and
// are dispatched synchronously, one message at a time, from the kernel's
// message queue. Server-to-server sendrec is a *nested* synchronous call()
// on the host stack, which models MINIX's rendezvous IPC: the caller is
// blocked until the callee replies. User processes are fibers managed by the
// OS layer; the kernel only sees them as IClient callbacks.
//
// Fault containment
// -----------------
// A fail-stop fault inside a server raises kernel::FailStopFault, which the
// kernel catches exactly at that server's dispatch boundary. The registered
// crash handler (the recovery engine, part of the RCB) then performs the
// restart/rollback/reconciliation pipeline and tells the kernel how to
// resolve the in-flight request: error-virtualized reply, no reply, or
// controlled shutdown. While the handler runs, nothing else in the system
// executes — this implements the paper's "stall userland during recovery"
// single-failure guarantee.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernel/fastpath.hpp"
#include "kernel/grant.hpp"
#include "kernel/health.hpp"
#include "kernel/iface.hpp"
#include "kernel/message.hpp"
#include "support/clock.hpp"

namespace osiris::kernel {

/// What the crash handler decided after running the recovery pipeline.
enum class CrashAction : std::uint8_t {
  kErrorReply,      // reconciliation: send an error-virtualized reply to the requester
  kNoReply,         // component restarted; requester (if any) stays blocked
  kShutdown,        // consistent recovery impossible: controlled shutdown
  kGiveUp,          // recovery itself failed: the system is wedged (counts as crash)
  kKillRequester,   // SVII extension: reconcile requester-scoped leakage by
                    // terminating the requesting process (via PM)
};

struct CrashContext {
  Endpoint crashed = kNoEndpoint;
  bool had_inflight = false;
  Message inflight;     // the message being processed when the fault hit
  bool was_hang = false;  // detected via heartbeat rather than a fail-stop trap
  std::string what;     // fault description for logs
};

struct CrashDecision {
  CrashAction action = CrashAction::kShutdown;
  Message reply;  // used when action == kErrorReply
};

using CrashHandler = std::function<CrashDecision(const CrashContext&)>;

enum class SystemState : std::uint8_t { kRunning, kShutdown, kCrashed };

/// Batch-size histogram buckets: sizes 1..7 map to their own bucket, 8 and
/// above share the last one (FastPath::max_batch defaults above 8 on
/// purpose, so the tail bucket is live).
inline constexpr std::size_t kBatchHistBuckets = 8;

struct KernelStats {
  std::uint64_t messages_queued = 0;
  std::uint64_t server_dispatches = 0;
  std::uint64_t nested_calls = 0;
  std::uint64_t notifies = 0;
  std::uint64_t replies_to_clients = 0;
  std::uint64_t crashes = 0;
  std::uint64_t hangs = 0;
  std::uint64_t quarantine_rejects = 0;  // sends error-virtualized at a parked endpoint
  std::uint64_t safecopy_bytes = 0;
  std::uint64_t grants_created = 0;
  // --- fast-path accounting (DESIGN.md §14) ---------------------------
  std::uint64_t queue_high_water = 0;  // deepest the queue (ring + spill) ever got
  std::uint64_t arena_spills = 0;      // enqueues that overflowed the ring to the heap
  std::uint64_t batches = 0;           // dispatch batches of size >= 2
  std::uint64_t batched_messages = 0;  // messages delivered inside those batches
  std::uint64_t batch_hist[kBatchHistBuckets] = {};  // dispatch-group sizes (8 = 8+)
  std::uint64_t grant_bypass_bytes = 0;  // payload bytes moved via zero-copy spans
  std::uint64_t grant_spans = 0;         // zero-copy span handouts
  // --- physiological health / storm accounting (DESIGN.md §15) ---------
  std::uint64_t health_charges = 0;   // non-useful deliveries charged to senders
  std::uint64_t fever_onsets = 0;     // EWMA fever threshold crossings
  std::uint64_t throttled_drops = 0;  // deliveries dropped at the storm-throttle gate
  std::uint64_t starved_quanta = 0;   // quanta where charged traffic crowded out >1/2
  std::uint64_t dispatch_aborts = 0;  // drain loops cut short by the livelock valve
};

class Kernel {
 public:
  explicit Kernel(VirtualClock& clock) : clock_(clock) {}

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- registration ---------------------------------------------------

  /// Register a system server at a well-known endpoint (kPmEp etc.).
  void register_server(Endpoint ep, IServer* srv);

  /// Register a user process; allocates a fresh endpoint.
  Endpoint register_client(IClient* cli);
  void unregister_client(Endpoint ep);

  [[nodiscard]] bool is_server(Endpoint ep) const;
  [[nodiscard]] bool is_client(Endpoint ep) const;
  [[nodiscard]] IServer* server_at(Endpoint ep) const;

  // --- IPC -------------------------------------------------------------

  /// Queue an asynchronous message from src to dst (server or client).
  void send(Endpoint src, Endpoint dst, Message m);

  /// Queue a notification (no reply expected).
  void notify(Endpoint src, Endpoint dst, std::uint32_t type);

  /// Synchronous sendrec from a *server* to another server: the callee's
  /// handler runs nested on the current stack and its reply is returned.
  /// If the callee crashes and reconciliation yields an error reply, that
  /// reply (status E_CRASH) is returned here, exactly as a blocked MINIX
  /// caller would observe it.
  Message call(Endpoint src, Endpoint dst, Message m);

  /// Deliver a reply to a client's outstanding sendrec (used by servers that
  /// reply asynchronously, and by the recovery engine's reconciliation).
  void reply_to(Endpoint dst, Message m);

  // --- grants ----------------------------------------------------------

  GrantId make_grant(Endpoint owner, Endpoint grantee, std::byte* base, std::size_t len,
                     Access access);
  void revoke_grant(GrantId id);
  std::int64_t safecopy_from(Endpoint grantee, GrantId id, std::size_t offset, void* dst,
                             std::size_t len);
  std::int64_t safecopy_to(Endpoint grantee, GrantId id, std::size_t offset, const void* src,
                           std::size_t len);
  [[nodiscard]] std::size_t grant_size(GrantId id) const;

  /// Zero-copy fast path: a validated direct span over the grant region, so
  /// bulk payloads skip the staging buffer + safecopy. Same checks (and
  /// error codes) as safecopy; returns nullptr with *err set on failure so
  /// callers can fall back to the copy path. The span itself emits no trace
  /// event and bumps no counter — callers note the logical copy with
  /// note_grant_bypass() at exactly the point the copy path would have
  /// called safecopy, keeping traces identical across the flag.
  std::byte* grant_span(Endpoint grantee, GrantId id, std::size_t offset, std::size_t len,
                        Access need, std::int64_t* err);

  /// Account (and trace) a logical grant copy that the zero-copy path
  /// performed in place. dir: 0 = from grant (read by grantee), 1 = to grant.
  void note_grant_bypass(Endpoint grantee, std::size_t len, int dir);

  // --- scheduling ------------------------------------------------------

  /// Drain the message queue, dispatching each message. Returns true if at
  /// least one message was processed. May throw ControlledShutdown.
  bool dispatch_pending();

  /// Livelock valve: cap deliveries per dispatch_pending() call. An
  /// *undetected* self-sustaining storm feeds the drain loop forever while
  /// the virtual clock stands still; past the cap the backlog is dropped
  /// (stats().dispatch_aborts) so the run loop regains control. 0 = off.
  void set_dispatch_burst_cap(std::uint64_t cap) noexcept { burst_cap_ = cap; }

  [[nodiscard]] bool queue_empty() const noexcept { return ring_size_ == 0 && queue_.empty(); }

  // --- fast path --------------------------------------------------------

  /// Configure the IPC fast path. Call before traffic flows: enabling the
  /// arena mid-stream is safe (the ring fills as the deque drains) but the
  /// steady-state zero-allocation claim only holds from the next drain on.
  void set_fastpath(const FastPath& f);
  [[nodiscard]] const FastPath& fastpath() const noexcept { return fast_; }

  /// Hook deciding which message types may share a dispatch batch; set by
  /// the OS layer from the msg_spec class table. Unset means no batching.
  void set_batch_eligible(BatchEligibleFn fn) noexcept { batch_eligible_ = fn; }

  // --- crash integration ------------------------------------------------

  void set_crash_handler(CrashHandler handler) { crash_handler_ = std::move(handler); }

  [[nodiscard]] bool is_hung(Endpoint ep) const;

  /// Mark a server hung with the message it was processing (used by the
  /// hang fault model; the server stops responding until RS notices).
  void mark_hung(Endpoint ep, const Message& inflight);

  /// Invoked by the Recovery Server when a heartbeat timeout fires:
  /// converts the hang into a crash event and runs the recovery pipeline.
  void recover_hung(Endpoint ep);

  // --- quarantine (graceful degradation) --------------------------------

  /// Park a server: until lifted, every send to it is error-virtualized
  /// (E_CRASH) instead of delivered, so clients and dependent servers keep
  /// running in degraded mode rather than deadlocking on a crash-looping
  /// component. Used by the recovery engine's escalation ladder.
  void quarantine(Endpoint ep);
  void lift_quarantine(Endpoint ep);
  [[nodiscard]] bool is_quarantined(Endpoint ep) const;

  // --- physiological health (storm detection; DESIGN.md §15) -----------

  /// Configure the health monitor (default-off). Sampling, sender charging
  /// and the throttle gate all key off HealthConfig::enabled.
  void set_health(const HealthConfig& hc) { health_.configure(hc); }
  [[nodiscard]] const HealthMonitor& health() const noexcept { return health_; }
  [[nodiscard]] HealthMonitor& health() noexcept { return health_; }

  /// Recovery-layer callback invoked (at the dispatch boundary, never
  /// nested) when an endpoint's fever crosses threshold or persists under
  /// an active throttle. Wired to recovery::Engine::on_storm by the OS.
  void set_storm_handler(std::function<void(Endpoint)> handler) {
    storm_handler_ = std::move(handler);
  }

  /// The storm rung's first response: a throttled endpoint's *sends* are
  /// dropped (replyable requests error-virtualized) beyond a small
  /// per-quantum allowance, so its victims unblock while it stays live.
  void throttle(Endpoint ep) { health_.set_throttled(ep.value, true); }
  void unthrottle(Endpoint ep) { health_.set_throttled(ep.value, false); }
  [[nodiscard]] bool is_throttled(Endpoint ep) const {
    return health_.is_throttled(ep.value);
  }

  /// Hook exempting message types from the throttle gate; set by the OS
  /// layer (heartbeat protocol traffic — the liveness substrate must stay
  /// truthful even while its sender is throttled, or dropping pongs would
  /// convert every throttle into a phantom hang). Unset means no exemption.
  void set_throttle_exempt(BatchEligibleFn fn) noexcept { throttle_exempt_ = fn; }

  // --- system lifecycle ---------------------------------------------------

  [[nodiscard]] SystemState state() const noexcept { return state_; }
  [[nodiscard]] const std::string& halt_reason() const noexcept { return halt_reason_; }

  /// Controlled shutdown: consistent but final (paper's "shutdown" outcome).
  void request_shutdown(std::string reason);

  /// Uncontrolled crash: the system is wedged (paper's "crash" outcome).
  void mark_crashed(std::string reason);

  VirtualClock& clock() noexcept { return clock_; }
  [[nodiscard]] const KernelStats& stats() const noexcept { return stats_; }

 private:
  struct ServerSlot {
    IServer* srv = nullptr;
    bool hung = false;
    bool quarantined = false;
    bool in_dispatch = false;
    Message inflight;
  };

  struct Queued {
    Endpoint dst;
    Message msg;
  };

  void deliver_to_server(ServerSlot& slot, Endpoint dst, const Message& m);
  /// Close the health quantum if due and run fever decisions. Only called
  /// from deliver_to_server exits, which all sit at dispatch depth zero
  /// (nested sendrec goes through call(), not here), so the storm handler
  /// never interrupts a server mid-dispatch.
  void health_quantum_tick();
  void route_reply(Endpoint dst, Message reply);
  void enqueue(Endpoint dst, const Message& m);
  bool pop_queued(Queued& out);
  [[nodiscard]] const Queued* peek_queued() const;
  void record_batch(std::size_t n);
  void handle_crash(Endpoint crashed, const CrashContext& ctx);
  const Grant* check_grant(Endpoint grantee, GrantId id, std::size_t offset, std::size_t len,
                           Access need, std::int64_t* err) const;

  VirtualClock& clock_;
  std::unordered_map<std::int32_t, ServerSlot> servers_;
  std::unordered_map<std::int32_t, IClient*> clients_;
  // Arena fast path: ring_ is the fixed-capacity arena (allocated once in
  // set_fastpath); queue_ doubles as the plain queue when the arena is off
  // and as the overflow spill when it is on. Invariant with the arena on:
  // every ring message is older than every spilled message, so pops drain
  // the ring first and refill it from the spill — global FIFO order is
  // preserved across overflow and back.
  std::deque<Queued> queue_;
  std::vector<Queued> ring_;
  std::size_t ring_head_ = 0;
  std::size_t ring_size_ = 0;
  FastPath fast_;
  std::uint64_t burst_cap_ = 0;
  BatchEligibleFn batch_eligible_ = nullptr;
  BatchEligibleFn throttle_exempt_ = nullptr;
  std::unordered_map<GrantId, Grant> grants_;
  GrantId next_grant_ = 1;
  std::int32_t next_client_ep_ = kFirstUserEndpoint;
  CrashHandler crash_handler_;
  HealthMonitor health_;
  std::function<void(Endpoint)> storm_handler_;
  SystemState state_ = SystemState::kRunning;
  std::string halt_reason_;
  KernelStats stats_;
};

}  // namespace osiris::kernel
