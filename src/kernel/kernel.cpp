#include "kernel/kernel.hpp"

#include <cstring>

#include "kernel/faults.hpp"
#include "support/common.hpp"
#include "support/log.hpp"
#include "trace/trace.hpp"

// Kernel substrate events are attributed to trace component 0 (the kernel):
// the IPC arguments carry the src/dst endpoints, so per-server timelines are
// recoverable from the merge while the substrate keeps one bounded ring.
namespace {
constexpr std::int32_t kTraceKernel = 0;
}  // namespace

namespace osiris::kernel {

namespace {

/// Virtual latency of an error-virtualized reply from a quarantined
/// endpoint. Nonzero on purpose: clients that retry against a parked server
/// must advance virtual time with every attempt, or the readmission deadline
/// scheduled on the clock could never be reached.
constexpr Tick kQuarantineReplyLatency = 5;

}  // namespace

void Kernel::register_server(Endpoint ep, IServer* srv) {
  OSIRIS_ASSERT(srv != nullptr);
  OSIRIS_ASSERT(ep.valid() && ep.value < kFirstUserEndpoint);
  OSIRIS_ASSERT(servers_.find(ep.value) == servers_.end());
  servers_[ep.value] = ServerSlot{srv, false, false, false, Message{}};
}

Endpoint Kernel::register_client(IClient* cli) {
  OSIRIS_ASSERT(cli != nullptr);
  Endpoint ep{next_client_ep_++};
  clients_[ep.value] = cli;
  return ep;
}

void Kernel::unregister_client(Endpoint ep) { clients_.erase(ep.value); }

bool Kernel::is_server(Endpoint ep) const { return servers_.count(ep.value) != 0; }
bool Kernel::is_client(Endpoint ep) const { return clients_.count(ep.value) != 0; }

IServer* Kernel::server_at(Endpoint ep) const {
  auto it = servers_.find(ep.value);
  return it == servers_.end() ? nullptr : it->second.srv;
}

void Kernel::send(Endpoint src, Endpoint dst, Message m) {
  if (state_ != SystemState::kRunning) return;
  m.sender = src;
  ++stats_.messages_queued;
  // Notifications already traced a kIpcNotify in notify().
  if (!is_notify(m.type)) {
    OSIRIS_TRACE_EVENT(kIpcSend, kTraceKernel, static_cast<std::uint64_t>(src.value),
                       static_cast<std::uint64_t>(dst.value), m.type);
  }
  enqueue(dst, m);
}

void Kernel::set_fastpath(const FastPath& f) {
  fast_ = f;
  if (fast_.arena_queue) {
    if (fast_.ring_capacity == 0) fast_.ring_capacity = 1;
    ring_.resize(fast_.ring_capacity);
  } else {
    // Drain any ring residue back into the deque so disabling the arena
    // mid-stream keeps FIFO order (ring messages are older than spilled).
    for (std::size_t i = 0; i < ring_size_; ++i) {
      queue_.insert(queue_.begin() + static_cast<std::ptrdiff_t>(i),
                    ring_[(ring_head_ + i) % ring_.size()]);
    }
    ring_.clear();
    ring_head_ = ring_size_ = 0;
  }
  if (fast_.max_batch == 0) fast_.max_batch = 1;
}

void Kernel::enqueue(Endpoint dst, const Message& m) {
  if (fast_.arena_queue && queue_.empty() && ring_size_ < ring_.size()) {
    ring_[(ring_head_ + ring_size_) % ring_.size()] = Queued{dst, m};
    ++ring_size_;
  } else {
    if (fast_.arena_queue) ++stats_.arena_spills;
    queue_.push_back(Queued{dst, m});
  }
  const std::uint64_t depth = ring_size_ + queue_.size();
  if (depth > stats_.queue_high_water) stats_.queue_high_water = depth;
}

bool Kernel::pop_queued(Queued& out) {
  if (ring_size_ > 0) {
    out = ring_[ring_head_];
    ring_head_ = (ring_head_ + 1) % ring_.size();
    --ring_size_;
    // Backpressure release: promote spilled messages into the freed slots,
    // oldest first, so peek/pop keep seeing global FIFO order.
    while (!queue_.empty() && ring_size_ < ring_.size()) {
      ring_[(ring_head_ + ring_size_) % ring_.size()] = queue_.front();
      queue_.pop_front();
      ++ring_size_;
    }
    return true;
  }
  if (!queue_.empty()) {
    out = queue_.front();
    queue_.pop_front();
    return true;
  }
  return false;
}

const Kernel::Queued* Kernel::peek_queued() const {
  if (ring_size_ > 0) return &ring_[ring_head_];
  if (!queue_.empty()) return &queue_.front();
  return nullptr;
}

void Kernel::record_batch(std::size_t n) {
  OSIRIS_ASSERT(n >= 1);
  const std::size_t bucket = n < kBatchHistBuckets ? n - 1 : kBatchHistBuckets - 1;
  ++stats_.batch_hist[bucket];
  if (n >= 2) {
    ++stats_.batches;
    stats_.batched_messages += n;
  }
}

void Kernel::notify(Endpoint src, Endpoint dst, std::uint32_t type) {
  Message m;
  m.type = type | kNotifyBit;
  ++stats_.notifies;
  OSIRIS_TRACE_EVENT(kIpcNotify, kTraceKernel, static_cast<std::uint64_t>(src.value),
                     static_cast<std::uint64_t>(dst.value), type);
  send(src, dst, m);
}

Message Kernel::call(Endpoint src, Endpoint dst, Message m) {
  OSIRIS_ASSERT(is_server(dst));
  if (state_ != SystemState::kRunning) throw ControlledShutdown("call while halting");
  ServerSlot& slot = servers_[dst.value];
  m.sender = src;
  ++stats_.nested_calls;
  OSIRIS_TRACE_EVENT(kIpcCall, kTraceKernel, static_cast<std::uint64_t>(src.value),
                     static_cast<std::uint64_t>(dst.value), m.type);

  if (slot.quarantined) {
    // Graceful degradation: a call into a parked component fails fast with
    // an error-virtualized reply instead of blocking the caller forever.
    // This is what keeps dependent servers' sendrecs from deadlocking while
    // a crash-looping component sits in quarantine.
    ++stats_.quarantine_rejects;
    return make_reply(m.type, E_CRASH);
  }

  if (slot.hung) {
    // Calling a hung server blocks the caller forever: the caller itself is
    // now effectively hung mid-request. Unwind it and mark it hung so the
    // Recovery Server's heartbeat sweep will eventually recover both.
    throw HangSuspend{};
  }

  // Nested synchronous dispatch (rendezvous IPC). A crash in the callee is
  // handled right here, before the caller resumes, and the reconciliation
  // result is returned to the caller as its reply.
  const Message saved_inflight = slot.inflight;
  const bool saved_in_dispatch = slot.in_dispatch;
  slot.inflight = m;
  slot.in_dispatch = true;
  ++stats_.server_dispatches;
  try {
    std::optional<Message> reply = slot.srv->dispatch(m);
    slot.inflight = saved_inflight;
    slot.in_dispatch = saved_in_dispatch;
    OSIRIS_ASSERT(reply.has_value());  // nested calls must be replied to inline
    return *reply;
  } catch (const FailStopFault& f) {
    slot.inflight = saved_inflight;
    slot.in_dispatch = saved_in_dispatch;
    CrashContext ctx;
    ctx.crashed = dst;
    ctx.had_inflight = true;
    ctx.inflight = m;
    ctx.what = f.what();
    ++stats_.crashes;
    OSIRIS_ASSERT(crash_handler_);
    CrashDecision d = crash_handler_(ctx);
    switch (d.action) {
      case CrashAction::kErrorReply:
        return d.reply;
      case CrashAction::kNoReply:
        // The caller can never be unblocked; treat it as hung mid-request.
        throw HangSuspend{};
      case CrashAction::kKillRequester: {
        // Reconciliation: the requester must die to clean up its scoped
        // state. PM performs the actual teardown (endpoint-keyed kill).
        Message kill = make_msg(0x151 /* PM_KILL_EP */,
                                static_cast<std::uint64_t>(m.sender.value));
        send(kKernelEp, Endpoint{2} /* PM */, kill);
        throw HangSuspend{};  // the (nested) caller never gets an answer
      }
      case CrashAction::kShutdown:
        request_shutdown(ctx.what);
        throw ControlledShutdown(ctx.what);
      case CrashAction::kGiveUp:
        mark_crashed("recovery gave up: " + ctx.what);
        throw ControlledShutdown(halt_reason_);
    }
    OSIRIS_PANIC("unreachable");
  } catch (const HangSuspend&) {
    // The callee hung (fault model). The caller is blocked on it forever:
    // mark the callee hung and propagate so the caller's own dispatch
    // boundary marks the caller hung as well.
    slot.in_dispatch = false;
    if (!slot.hung) mark_hung(dst, m);
    throw;
  }
}

void Kernel::reply_to(Endpoint dst, Message m) {
  ++stats_.replies_to_clients;
  send(kKernelEp, dst, m);
}

GrantId Kernel::make_grant(Endpoint owner, Endpoint grantee, std::byte* base, std::size_t len,
                           Access access) {
  GrantId id = next_grant_++;
  grants_[id] = Grant{owner, grantee, base, len, access, false};
  ++stats_.grants_created;
  return id;
}

void Kernel::revoke_grant(GrantId id) {
  auto it = grants_.find(id);
  if (it != grants_.end()) it->second.revoked = true;
}

std::size_t Kernel::grant_size(GrantId id) const {
  auto it = grants_.find(id);
  return it == grants_.end() ? 0 : it->second.len;
}

const Grant* Kernel::check_grant(Endpoint grantee, GrantId id, std::size_t offset,
                                 std::size_t len, Access need, std::int64_t* err) const {
  auto it = grants_.find(id);
  if (it == grants_.end() || it->second.revoked) {
    *err = E_INVAL;
    return nullptr;
  }
  const Grant& g = it->second;
  if (g.grantee != grantee) {
    *err = E_PERM;
    return nullptr;
  }
  if (offset > g.len || len > g.len - offset) {
    *err = E_INVAL;
    return nullptr;
  }
  const auto need_bits = static_cast<std::uint8_t>(need);
  if ((static_cast<std::uint8_t>(g.access) & need_bits) != need_bits) {
    *err = E_PERM;
    return nullptr;
  }
  *err = OK;
  return &g;
}

std::int64_t Kernel::safecopy_from(Endpoint grantee, GrantId id, std::size_t offset, void* dst,
                                   std::size_t len) {
  std::int64_t err = OK;
  const Grant* g = check_grant(grantee, id, offset, len, Access::kRead, &err);
  if (!g) return err;
  std::memcpy(dst, g->base + offset, len);
  stats_.safecopy_bytes += len;
  OSIRIS_TRACE_EVENT(kGrantCopy, kTraceKernel, static_cast<std::uint64_t>(grantee.value), len,
                     /*dir: from grant*/ 0);
  return static_cast<std::int64_t>(len);
}

std::int64_t Kernel::safecopy_to(Endpoint grantee, GrantId id, std::size_t offset,
                                 const void* src, std::size_t len) {
  std::int64_t err = OK;
  const Grant* g = check_grant(grantee, id, offset, len, Access::kWrite, &err);
  if (!g) return err;
  std::memcpy(g->base + offset, src, len);
  stats_.safecopy_bytes += len;
  OSIRIS_TRACE_EVENT(kGrantCopy, kTraceKernel, static_cast<std::uint64_t>(grantee.value), len,
                     /*dir: to grant*/ 1);
  return static_cast<std::int64_t>(len);
}

std::byte* Kernel::grant_span(Endpoint grantee, GrantId id, std::size_t offset, std::size_t len,
                              Access need, std::int64_t* err) {
  const Grant* g = check_grant(grantee, id, offset, len, need, err);
  if (!g) return nullptr;
  ++stats_.grant_spans;
  return g->base + offset;
}

void Kernel::note_grant_bypass(Endpoint grantee, std::size_t len, int dir) {
  stats_.grant_bypass_bytes += len;
  OSIRIS_TRACE_EVENT(kGrantCopy, kTraceKernel, static_cast<std::uint64_t>(grantee.value), len,
                     static_cast<std::uint64_t>(dir));
}

bool Kernel::dispatch_pending() {
  bool any = false;
  std::uint64_t delivered = 0;
  Queued q;
  while (state_ == SystemState::kRunning && pop_queued(q)) {
    any = true;
    if (burst_cap_ != 0 && ++delivered > burst_cap_) {
      // Livelock valve: a self-sustaining message storm (e.g. kHandlerSpin
      // with detection disabled) keeps this drain loop fed forever — the
      // virtual clock never advances while work is pending, so no timeout
      // can fire. Drop the backlog and return; the run loop's step budget
      // then decides the outcome (a storm campaign classifies it starved).
      ++stats_.dispatch_aborts;
      ring_size_ = 0;
      ring_head_ = 0;
      queue_.clear();
      break;
    }
    if (auto sit = servers_.find(q.dst.value); sit != servers_.end()) {
      ServerSlot& slot = sit->second;
      if (fast_.batching && batch_eligible_ != nullptr && batch_eligible_(q.msg.type)) {
        // Per-endpoint batch: deliver consecutive eligible messages bound
        // for the same server without re-touching the queue bookkeeping or
        // the slot lookup. Delivery order is exactly what the unbatched
        // loop would produce — the batch only fuses accounting, and the
        // per-message quarantine/hang/state checks still run inside
        // deliver_to_server for every member.
        std::size_t n = 1;
        deliver_to_server(slot, q.dst, q.msg);
        while (n < fast_.max_batch && state_ == SystemState::kRunning) {
          const Queued* next = peek_queued();
          if (next == nullptr || next->dst != q.dst || !batch_eligible_(next->msg.type)) break;
          pop_queued(q);
          deliver_to_server(slot, q.dst, q.msg);
          ++n;
        }
        record_batch(n);
      } else {
        deliver_to_server(slot, q.dst, q.msg);
        if (fast_.batching) record_batch(1);
      }
    } else if (auto cit = clients_.find(q.dst.value); cit != clients_.end()) {
      if (is_notify(q.msg.type)) {
        cit->second->on_notify(q.msg);
      } else {
        cit->second->on_reply(q.msg);
      }
    } else {
      OSIRIS_DEBUG("kernel", "dropping message type=0x%x to dead endpoint %d", q.msg.type,
                   q.dst.value);
    }
  }
  return any;
}

void Kernel::deliver_to_server(ServerSlot& slot, Endpoint dst, const Message& m) {
  const bool health_on = health_.enabled();
  if (health_on) health_.note_delivery();
  if (slot.quarantined) {
    ++stats_.quarantine_rejects;
    if (!is_notify(m.type) && m.sender.valid() && m.sender != kKernelEp) {
      // Error-virtualize the request after a short virtual delay (see
      // kQuarantineReplyLatency); notifications and in-flight replies are
      // simply dropped, like any message to a dead endpoint.
      const Message reply = make_reply(m.type, E_CRASH);
      const Endpoint sender = m.sender;
      clock_.call_after(kQuarantineReplyLatency,
                        [this, sender, reply] { route_reply(sender, reply); });
    }
    if (health_on) health_quantum_tick();
    return;
  }
  if (slot.hung) {
    OSIRIS_DEBUG("kernel", "message type=0x%x to hung server %d dropped", m.type, dst.value);
    if (health_on) health_quantum_tick();
    return;
  }
  if (health_on && m.sender.valid() && m.sender != kKernelEp &&
      !(throttle_exempt_ != nullptr &&
        throttle_exempt_(m.type & ~(kNotifyBit | kReplyBit))) &&
      !health_.admit(m.sender.value)) {
    // Storm-throttle gate: the sender's fever engaged the ladder's throttle
    // rung, so deliveries beyond its per-quantum allowance are dropped — the
    // victim's queue unclogs while the storming component stays live. The
    // drop still charges the sender: sustained pressure under an active
    // throttle is exactly what escalates to quarantine. Replyable requests
    // are error-virtualized like quarantined ones so callers unblock.
    // Exempt types (heartbeat protocol) bypass the gate — and its allowance
    // bookkeeping — entirely: see set_throttle_exempt.
    ++stats_.throttled_drops;
    health_.charge(m.sender.value);
    ++stats_.health_charges;
    if (!is_notify(m.type) && !is_reply(m.type)) {
      const Message reply = make_reply(m.type, E_CRASH);
      const Endpoint sender = m.sender;
      clock_.call_after(kQuarantineReplyLatency,
                        [this, sender, reply] { route_reply(sender, reply); });
    }
    health_quantum_tick();
    return;
  }
  slot.inflight = m;
  slot.in_dispatch = true;
  ++stats_.server_dispatches;
  OSIRIS_TRACE_EVENT(kIpcDeliver, kTraceKernel, static_cast<std::uint64_t>(m.sender.value),
                     static_cast<std::uint64_t>(dst.value), m.type);
  const std::uint64_t useful_before = health_on ? slot.srv->useful_work() : 0;
  try {
    std::optional<Message> reply = slot.srv->dispatch(m);
    slot.in_dispatch = false;
    if (health_on) {
      // Physiological sample: a delivery that opened no recovery window,
      // produced no reply and sent no deferred reply did no useful work —
      // charge the *sender* (flood victims spike too; the attribution must
      // land on the storming component). Kernel-originated traffic is
      // exempt; self-sends are not, or a spinning handler's self-notes
      // would be invisible.
      const bool useful = reply.has_value() || slot.srv->useful_work() > useful_before;
      if (!useful && m.sender.valid() && m.sender != kKernelEp) {
        health_.charge(m.sender.value);
        ++stats_.health_charges;
      }
    }
    if (reply) route_reply(m.sender, *reply);
    if (health_on) health_quantum_tick();
  } catch (const FailStopFault& f) {
    slot.in_dispatch = false;
    CrashContext ctx;
    ctx.crashed = dst;
    ctx.had_inflight = !is_notify(m.type);
    ctx.inflight = m;
    ctx.what = f.what();
    ++stats_.crashes;
    handle_crash(dst, ctx);
    if (health_on) health_quantum_tick();
  } catch (const HangSuspend&) {
    slot.in_dispatch = false;
    if (!slot.hung) mark_hung(dst, m);
    if (health_on) health_quantum_tick();
  }
}

void Kernel::health_quantum_tick() {
  if (!health_.quantum_due()) return;
  const QuantumResult q = health_.close_quantum(clock_.now());
  if (q.starved) ++stats_.starved_quanta;
  for (const FeverEvent& f : q.fevers) {
    if (!f.escalation) ++stats_.fever_onsets;
    OSIRIS_TRACE_EVENT(kFeverOnset, kTraceKernel, static_cast<std::uint64_t>(f.endpoint),
                       static_cast<std::uint64_t>(f.ewma),
                       static_cast<std::uint64_t>(f.escalation));
    if (storm_handler_) storm_handler_(Endpoint{f.endpoint});
  }
}

void Kernel::route_reply(Endpoint dst, Message reply) {
  if (!dst.valid() || dst == kKernelEp) return;
  reply.sender = kKernelEp;
  if (auto cit = clients_.find(dst.value); cit != clients_.end()) {
    ++stats_.replies_to_clients;
    cit->second->on_reply(reply);
  } else if (servers_.count(dst.value) != 0) {
    // Async reply to an event-driven server: re-enters its loop as a message.
    enqueue(dst, reply);
  }
}

void Kernel::handle_crash(Endpoint crashed, const CrashContext& ctx) {
  if (!crash_handler_) {
    mark_crashed("no recovery infrastructure: " + ctx.what);
    return;
  }
  CrashDecision d = crash_handler_(ctx);
  switch (d.action) {
    case CrashAction::kErrorReply: {
      Message reply = d.reply;
      route_reply(ctx.inflight.sender, reply);
      break;
    }
    case CrashAction::kNoReply:
      break;
    case CrashAction::kKillRequester: {
      Message kill = make_msg(0x151 /* PM_KILL_EP */,
                              static_cast<std::uint64_t>(ctx.inflight.sender.value));
      send(kKernelEp, Endpoint{2} /* PM */, kill);
      break;
    }
    case CrashAction::kShutdown:
      request_shutdown(ctx.what);
      throw ControlledShutdown(ctx.what);
    case CrashAction::kGiveUp:
      mark_crashed("recovery gave up: " + ctx.what);
      break;
  }
}

bool Kernel::is_hung(Endpoint ep) const {
  auto it = servers_.find(ep.value);
  return it != servers_.end() && it->second.hung;
}

void Kernel::mark_hung(Endpoint ep, const Message& inflight) {
  auto it = servers_.find(ep.value);
  OSIRIS_ASSERT(it != servers_.end());
  it->second.hung = true;
  it->second.inflight = inflight;
  ++stats_.hangs;
  OSIRIS_INFO("kernel", "server %d hung while processing type=0x%x", ep.value, inflight.type);
}

void Kernel::recover_hung(Endpoint ep) {
  auto it = servers_.find(ep.value);
  OSIRIS_ASSERT(it != servers_.end());
  if (!it->second.hung) return;
  CrashContext ctx;
  ctx.crashed = ep;
  ctx.had_inflight = !is_notify(it->second.inflight.type) && it->second.inflight.type != 0;
  ctx.inflight = it->second.inflight;
  ctx.was_hang = true;
  ctx.what = "heartbeat timeout";
  it->second.hung = false;
  ++stats_.crashes;
  handle_crash(ep, ctx);
}

void Kernel::quarantine(Endpoint ep) {
  auto it = servers_.find(ep.value);
  if (it == servers_.end()) return;
  it->second.quarantined = true;
  it->second.hung = false;  // quarantine supersedes any pending hang state
  OSIRIS_INFO("kernel", "server %d quarantined: sends will be error-virtualized", ep.value);
}

void Kernel::lift_quarantine(Endpoint ep) {
  auto it = servers_.find(ep.value);
  if (it == servers_.end()) return;
  if (it->second.quarantined) {
    it->second.quarantined = false;
    OSIRIS_INFO("kernel", "server %d readmitted from quarantine", ep.value);
  }
}

bool Kernel::is_quarantined(Endpoint ep) const {
  auto it = servers_.find(ep.value);
  return it != servers_.end() && it->second.quarantined;
}

void Kernel::request_shutdown(std::string reason) {
  if (state_ == SystemState::kRunning) {
    state_ = SystemState::kShutdown;
    halt_reason_ = std::move(reason);
    OSIRIS_INFO("kernel", "controlled shutdown: %s", halt_reason_.c_str());
  }
}

void Kernel::mark_crashed(std::string reason) {
  if (state_ != SystemState::kCrashed) {
    state_ = SystemState::kCrashed;
    halt_reason_ = std::move(reason);
    OSIRIS_INFO("kernel", "system crashed: %s", halt_reason_.c_str());
  }
}

}  // namespace osiris::kernel
