// Physiological health monitor (ROADMAP item 3, DESIGN.md §15).
//
// Crash-shaped faults announce themselves: a trap, a corrupted reply, a
// heartbeat timeout. A *storm* does not — the component stays live, answers
// its heartbeats, and simply burns dispatches (handler spin) or buries a
// victim in well-formed requests (channel flood). Following Mira's
// "sentient kernel" framing, the kernel treats dispatch behaviour as a
// physiological signal: every delivery that produces no useful work —
// no recovery window opened, no reply produced, no deferred reply sent —
// is *charged to its sender*, and a per-endpoint EWMA of charged
// deliveries per scheduling quantum is the component's temperature.
// Sustained readings above threshold are a fever; the recovery ladder
// answers with throttle-then-quarantine (recovery::Engine::on_storm).
//
// Design constraints, all imposed by the simulator's execution model:
//
//  - Quanta are counted in *deliveries*, not virtual ticks. A storm
//    saturates the message queue, and the virtual clock only advances when
//    nothing is runnable — tick-based sampling would never fire mid-storm.
//  - Sender attribution, not receiver attribution. A flood victim's
//    dispatch rate spikes exactly like a spinning handler's; charging the
//    sender lands detection (and the rung) on the storming component.
//  - Quanta that span a long stretch of virtual time are "idle": their
//    sample decays the EWMA instead of charging it. Heartbeat pings/pongs
//    open no windows by design, so an idle phase is wall-to-wall
//    non-useful traffic — but it is *sparse in time*, which is precisely
//    what distinguishes it from a storm.
//  - All state lives in a std::map keyed by endpoint: deterministic
//    iteration order is what keeps storm campaigns byte-identical across
//    --jobs=1 and --jobs=4.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace osiris::kernel {

struct HealthConfig {
  bool enabled = false;
  /// Deliveries (dispatch attempts, including throttled drops) per quantum.
  std::uint32_t quantum_dispatches = 64;
  /// Integer EWMA step: ewma += (sample - ewma) >> ewma_shift.
  std::uint32_t ewma_shift = 2;
  /// Fever: EWMA of charged deliveries per quantum above this value.
  std::int64_t fever_threshold = 24;
  /// Consecutive hot quanta before the first onset fires (one dense quantum
  /// is a burst; a sustained run of them is a fever).
  std::uint32_t onset_quanta = 2;
  /// Hot quanta under an active throttle before escalation re-fires the
  /// storm handler (the quarantine half of throttle-then-quarantine).
  std::uint32_t escalate_quanta = 4;
  /// Deliveries a throttled sender still gets per quantum — a trickle, so a
  /// persistent fault keeps surfacing and the ladder can escalate on it.
  std::uint32_t throttle_allowance = 2;
  /// Quanta spanning more virtual time than this are idle (heartbeat-paced)
  /// and decay the EWMA instead of sampling the charge counter.
  std::uint64_t idle_quantum_ticks = 1000;
};

/// One fever decision the kernel surfaces to the recovery layer.
struct FeverEvent {
  std::int32_t endpoint = -1;
  std::int64_t ewma = 0;
  bool escalation = false;  // fever persisting under an active throttle
};

struct QuantumResult {
  std::vector<FeverEvent> fevers;
  bool starved = false;  // charged deliveries crowded out >1/2 the quantum
};

class HealthMonitor {
 public:
  void configure(const HealthConfig& cfg) { cfg_ = cfg; }
  [[nodiscard]] const HealthConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] bool enabled() const noexcept { return cfg_.enabled; }

  /// Count one delivery toward the current quantum.
  void note_delivery() noexcept { ++fill_; }
  [[nodiscard]] bool quantum_due() const noexcept {
    return cfg_.enabled && fill_ >= cfg_.quantum_dispatches;
  }

  /// Charge a non-useful delivery to its sender.
  void charge(std::int32_t sender) { ++state_[sender].charged; }

  // --- throttle bookkeeping (the rung's mechanism lives here; the kernel
  // only consults it at the delivery gate) ------------------------------
  void set_throttled(std::int32_t ep, bool on) {
    EpHealth& h = state_[ep];
    h.throttled = on;
    h.throttled_hot = 0;
    h.admitted = 0;
  }
  [[nodiscard]] bool is_throttled(std::int32_t ep) const {
    auto it = state_.find(ep);
    return it != state_.end() && it->second.throttled;
  }
  /// A throttled sender's delivery passes only while its per-quantum
  /// allowance lasts; callers drop (and keep charging) the rest.
  [[nodiscard]] bool admit(std::int32_t ep) {
    EpHealth& h = state_[ep];
    if (!h.throttled) return true;
    return ++h.admitted <= cfg_.throttle_allowance;
  }

  /// Close the quantum: fold each endpoint's charge counter into its EWMA,
  /// run the fever edge/escalation logic, zero the per-quantum counters.
  QuantumResult close_quantum(std::uint64_t now_tick) {
    QuantumResult out;
    const bool idle = last_close_tick_ != 0 &&
                      now_tick - last_close_tick_ > cfg_.idle_quantum_ticks;
    std::uint64_t charged_total = 0;
    for (auto& [ep, h] : state_) {
      const std::int64_t sample =
          idle ? 0 : static_cast<std::int64_t>(h.charged);
      charged_total += h.charged;
      h.ewma += (sample - h.ewma) >> cfg_.ewma_shift;
      h.charged = 0;
      h.admitted = 0;
      const bool hot = h.ewma > cfg_.fever_threshold;
      if (!hot) {
        h.hot_quanta = 0;
        h.throttled_hot = 0;
        h.fevered = false;
        continue;
      }
      ++h.hot_quanta;
      if (!h.throttled) {
        if (!h.fevered && h.hot_quanta >= cfg_.onset_quanta) {
          h.fevered = true;
          out.fevers.push_back(FeverEvent{ep, h.ewma, false});
        }
      } else if (++h.throttled_hot >= cfg_.escalate_quanta) {
        h.throttled_hot = 0;
        out.fevers.push_back(FeverEvent{ep, h.ewma, true});
      }
    }
    out.starved = charged_total * 2 > cfg_.quantum_dispatches;
    fill_ = 0;
    last_close_tick_ = now_tick;
    return out;
  }

  /// Current temperature of an endpoint (tests, metrics).
  [[nodiscard]] std::int64_t ewma(std::int32_t ep) const {
    auto it = state_.find(ep);
    return it == state_.end() ? 0 : it->second.ewma;
  }
  [[nodiscard]] bool fevered(std::int32_t ep) const {
    auto it = state_.find(ep);
    return it != state_.end() && it->second.fevered;
  }

 private:
  struct EpHealth {
    std::uint64_t charged = 0;   // non-useful deliveries this quantum
    std::uint32_t admitted = 0;  // throttled deliveries let through this quantum
    std::int64_t ewma = 0;
    std::uint32_t hot_quanta = 0;     // consecutive quanta above threshold
    std::uint32_t throttled_hot = 0;  // hot quanta since the throttle engaged
    bool fevered = false;             // edge detector for onset events
    bool throttled = false;
  };

  HealthConfig cfg_;
  std::map<std::int32_t, EpHealth> state_;  // ordered: deterministic sweeps
  std::uint32_t fill_ = 0;                  // deliveries in the open quantum
  std::uint64_t last_close_tick_ = 0;
};

}  // namespace osiris::kernel
