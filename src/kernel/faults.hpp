// Exception types modelling the paper's fault and shutdown events.
//
// A FailStopFault is thrown by an injected fault (or by a server's own
// defensive checks) while a component is executing; the kernel catches it at
// the dispatch boundary of that component, which models MMU-enforced fault
// containment: the fault never corrupts other components.
//
// ControlledShutdown is thrown by the recovery engine when consistent
// recovery is impossible (recovery window closed); it unwinds to the
// top-level scheduler, which halts the simulated machine in a consistent
// state (paper SIII-C / SIV-C reconciliation).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace osiris::kernel {

class FailStopFault : public std::runtime_error {
 public:
  FailStopFault(std::string what, std::uint64_t site_id)
      : std::runtime_error(std::move(what)), site_id_(site_id) {}

  [[nodiscard]] std::uint64_t site_id() const noexcept { return site_id_; }

 private:
  std::uint64_t site_id_;
};

class ControlledShutdown : public std::runtime_error {
 public:
  explicit ControlledShutdown(std::string reason) : std::runtime_error(std::move(reason)) {}
};

/// Thrown to unwind a component that just became hung (the hang fault model:
/// the handler "never returns"). The kernel catches it at the dispatch
/// boundary without treating it as a crash; the Recovery Server's heartbeat
/// sweep later detects the hang and converts it into a crash event.
struct HangSuspend {};

}  // namespace osiris::kernel
