// Recovery-coverage measurement (Table I).
//
// Runs the prototype test suite under a given recovery policy and reports,
// per server, the fraction of executed basic blocks (fi:: probe hits) that
// fell inside an open recovery window, plus the mean weighted by per-server
// execution share — exactly the quantity of the paper's Table I.
#pragma once

#include <string>
#include <vector>

#include "seep/policy.hpp"

namespace osiris::workload {

struct ServerCoverage {
  std::string server;
  double coverage = 0.0;       // probe hits inside window / total probe hits
  std::uint64_t total_hits = 0;
};

struct CoverageReport {
  std::vector<ServerCoverage> servers;
  double weighted_mean = 0.0;  // weighted by per-server execution (hits)
  int suite_passed = 0;
  int suite_failed = 0;
};

CoverageReport measure_coverage(seep::Policy policy);

}  // namespace osiris::workload
