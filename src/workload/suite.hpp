// The prototype test suite: 89 self-checking user programs (the equivalent
// of the MINIX 3 test set the paper uses, SVI), written to maximize code
// coverage in the five system servers.
//
// The suite driver runs inside the simulated OS as init: each test executes
// in a forked child so that a failing (or error-virtualized) test cannot
// take the driver down — mirroring how the paper's QEMU harness observes
// pass/fail per test while the machine survives or dies around it.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "os/instance.hpp"
#include "os/isys.hpp"

namespace osiris::workload {

struct SuiteTest {
  std::string name;
  std::string group;  // proc / signal / fs / pipe / ds / vm / cross
  /// Returns 0 on pass, a nonzero code (usually the failing line) otherwise.
  std::function<std::int64_t(os::ISys&)> body;
};

/// All 89 tests, in execution order.
const std::vector<SuiteTest>& suite_tests();

/// Programs the suite (and the shell workloads) exec(); must be registered
/// with every OS instance before boot.
void register_suite_programs(os::ProgramRegistry& registry);

struct SuiteResult {
  int passed = 0;
  int failed = 0;
  bool driver_completed = false;  // init ran the whole list
  os::OsInstance::Outcome outcome = os::OsInstance::Outcome::kCompleted;
  std::vector<std::string> failures;
};

/// Run the full suite as init on a booted instance.
SuiteResult run_suite(os::OsInstance& inst);

}  // namespace osiris::workload
