// Internal helpers shared by the suite_*.cpp test definition files.
#pragma once

#include <string>

#include "servers/protocol.hpp"
#include "workload/suite.hpp"

namespace osiris::workload {

void add_proc_tests(std::vector<SuiteTest>& out);
void add_fs_tests(std::vector<SuiteTest>& out);
void add_pipe_tests(std::vector<SuiteTest>& out);
void add_misc_tests(std::vector<SuiteTest>& out);

/// Write/read helpers over the byte-span syscall API.
inline std::int64_t wr(os::ISys& sys, std::int64_t fd, std::string_view s) {
  return sys.write(fd, std::as_bytes(std::span<const char>(s.data(), s.size())));
}

inline std::int64_t rd(os::ISys& sys, std::int64_t fd, char* buf, std::size_t n) {
  return sys.read(fd, std::as_writable_bytes(std::span<char>(buf, n)));
}

}  // namespace osiris::workload

/// Test-body assertion: fail the test with the current line number.
#define REQ(cond)                                  \
  do {                                             \
    if (!(cond)) return __LINE__;                  \
  } while (0)

/// Expect an expression to yield an exact value.
#define REQ_EQ(expr, want) REQ((expr) == (want))
