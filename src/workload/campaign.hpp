// Large-scale fault-injection campaigns (Tables II and III).
//
// Methodology mirrors the paper's (SVI-B):
//   1. a profiling run of the prototype test suite determines which fault
//      candidates (fi:: sites) are actually triggered after boot;
//   2. an injection plan is drawn once — fail-stop-only for Table II, the
//      full EDFI software-fault mix for Table III — and the *same* plan is
//      applied to every recovery policy for comparability;
//   3. each injection runs in a fresh OS instance; the run is classified as
//      pass / fail / shutdown / crash from the suite result and the
//      machine's fate.
//
// Campaigns are embarrassingly parallel: every injection already boots an
// isolated simulator, and the probe runtime (fi::Registry) is thread-scoped,
// so a sharded worker pool replays disjoint slices of the plan concurrently.
// Results are stored by plan index and merged in plan order after the join,
// which makes every table byte-identical to a --jobs=1 run.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ckpt/page_store.hpp"
#include "fi/fault.hpp"
#include "fi/registry.hpp"
#include "kernel/fastpath.hpp"
#include "seep/policy.hpp"
#include "support/clock.hpp"

namespace osiris::workload {

enum class RunClass : std::uint8_t { kPass, kFail, kShutdown, kCrash };

[[nodiscard]] constexpr const char* run_class_name(RunClass c) {
  switch (c) {
    case RunClass::kPass: return "pass";
    case RunClass::kFail: return "fail";
    case RunClass::kShutdown: return "shutdown";
    case RunClass::kCrash: return "crash";
  }
  return "?";
}

struct Injection {
  const fi::Site* site = nullptr;
  fi::FaultType type = fi::FaultType::kNone;
  std::uint64_t trigger_hit = 1;
};

/// Profiling run: returns the triggered, non-boot-time sites with their
/// per-run hit counts (the fault-candidate pool).
std::vector<std::pair<fi::Site*, std::uint64_t>> profile_sites();

/// Draw the fail-stop plan: `points_per_site` null-deref injections per
/// triggered site, spread across its execution count.
std::vector<Injection> plan_failstop(int points_per_site = 3);

/// Draw the full-EDFI plan: a seeded mix of applicable fault types.
std::vector<Injection> plan_edfi(std::uint64_t seed = 316, int injections_per_site = 2);

struct CampaignTotals {
  int pass = 0;
  int fail = 0;
  int shutdown = 0;
  int crash = 0;

  [[nodiscard]] int total() const { return pass + fail + shutdown + crash; }
  [[nodiscard]] double frac(int n) const {
    return total() == 0 ? 0.0 : static_cast<double>(n) / total();
  }

  friend bool operator==(const CampaignTotals& a, const CampaignTotals& b) {
    return a.pass == b.pass && a.fail == b.fail && a.shutdown == b.shutdown &&
           a.crash == b.crash;
  }
};

struct CampaignOptions {
  /// Worker threads; 1 = serial reference run, 0 = hardware_concurrency.
  unsigned jobs = 1;
  /// Invoked after every completed run with (done, total). Serialized; the
  /// completion order is nondeterministic for jobs > 1, but `done` is
  /// monotonic.
  std::function<void(int, int)> progress;
  /// When non-null, every injection runs with event tracing enabled and its
  /// merged text trace lands here, indexed by plan position. Workers write
  /// disjoint slots, so — like the classifications — the captured traces are
  /// byte-identical across jobs settings. Requires an OSIRIS_TRACE=ON build;
  /// otherwise the strings come back empty.
  std::vector<std::string>* traces = nullptr;
  /// Kernel IPC fast-path flags for every run in the plan. Classifications
  /// and traces must be invariant under these (DESIGN.md §14) — campaigns
  /// with batching or the arena on are how that is tested at scale.
  kernel::FastPath fastpath{};
  /// Run every injection with the VFS FOM executor (DESIGN.md §16): the
  /// multi-request rollback path is then what the campaign recovers through.
  bool vfs_fom = false;
  /// Block-cache size override for every run; 0 keeps the OsConfig default.
  /// Campaigns exercising the FOM park/resume path shrink it so the suite's
  /// file traffic actually misses.
  std::size_t cache_blocks = 0;
  /// Page-tier checkpointing for every run (DESIGN.md §17). Classifications
  /// and traces must be invariant under `enabled` plus the large-state knobs
  /// below — campaigns with the tier on are how that is tested at scale.
  ckpt::PagesConfig ckpt_pages{};
  /// DS blob-table slots per run; 0 keeps blobs off (the paper-scale store).
  std::size_t ds_blob_slots = 0;
  /// VFS op-journal slots per run; 0 keeps the journal off.
  std::size_t vfs_journal_slots = 0;
};

/// Run one injection under a policy; returns its classification. Touches
/// only thread-scoped simulator state, so calls may run concurrently on
/// distinct threads. When `trace_out` is non-null (and the build has
/// OSIRIS_TRACE=ON), the run executes with event tracing enabled and the
/// merged, sequence-ordered text trace is stored there. `opts` carries the
/// per-run OsConfig knobs (fast path, FOM executor, cache size); its
/// jobs/progress/traces fields are ignored here.
RunClass run_one_injection(seep::Policy policy, const Injection& inj,
                           std::string* trace_out = nullptr, const CampaignOptions& opts = {});

/// Number of workers a campaign uses for `requested` jobs (0 resolves to
/// hardware_concurrency) — exposed for benches that print it.
unsigned campaign_jobs(unsigned requested);

/// Apply a whole plan under one policy and classify every injection.
/// The returned vector is indexed by plan position regardless of jobs.
std::vector<RunClass> run_plan(seep::Policy policy, const std::vector<Injection>& plan,
                               const CampaignOptions& opts = {});

/// run_plan + order-independent merge into per-class totals.
CampaignTotals run_campaign(seep::Policy policy, const std::vector<Injection>& plan,
                            const CampaignOptions& opts = {});

/// Back-compat shim for the (policy, plan, progress) call shape.
inline CampaignTotals run_campaign(seep::Policy policy, const std::vector<Injection>& plan,
                                   const std::function<void(int, int)>& progress) {
  CampaignOptions opts;
  opts.progress = progress;
  return run_campaign(policy, plan, opts);
}

// --- recurring-fault campaigns (escalation ladder / quarantine) -----------
//
// Persistent injections model deterministic bugs: the fault re-fires after
// every recovery, so the interesting outcome is not pass/fail but how far
// the escalation ladder had to climb. Survivability buckets:
//   recovered — suite finished clean and nothing was quarantined;
//   degraded  — the system survived to the end of the suite, but only by
//               quarantining a component (or with residual suite failures);
//   shutdown  — the ladder (or policy) shut the machine down consistently;
//   wedged    — the run crashed or hung: the worst bucket, the one the
//               ladder exists to empty.
enum class RecurringClass : std::uint8_t { kRecovered, kDegraded, kShutdown, kWedged };

[[nodiscard]] constexpr const char* recurring_class_name(RecurringClass c) {
  switch (c) {
    case RecurringClass::kRecovered: return "recovered";
    case RecurringClass::kDegraded: return "degraded";
    case RecurringClass::kShutdown: return "shutdown";
    case RecurringClass::kWedged: return "wedged";
  }
  return "?";
}

struct RecurringTotals {
  int recovered = 0;
  int degraded = 0;
  int shutdown = 0;
  int wedged = 0;

  [[nodiscard]] int total() const { return recovered + degraded + shutdown + wedged; }
  [[nodiscard]] double frac(int n) const {
    return total() == 0 ? 0.0 : static_cast<double>(n) / total();
  }

  friend bool operator==(const RecurringTotals& a, const RecurringTotals& b) {
    return a.recovered == b.recovered && a.degraded == b.degraded &&
           a.shutdown == b.shutdown && a.wedged == b.wedged;
  }
};

/// Draw the persistent-fault plan: one mid-execution null-deref per
/// triggered site, armed in persistent mode (re-fires after each recovery).
std::vector<Injection> plan_recurring();

/// Run one persistent injection under a policy and bucket its fate.
RecurringClass run_one_recurring(seep::Policy policy, const Injection& inj);

/// Apply a recurring plan; the returned vector is indexed by plan position
/// regardless of jobs (same determinism contract as run_plan).
std::vector<RecurringClass> run_recurring_plan(seep::Policy policy,
                                               const std::vector<Injection>& plan,
                                               const CampaignOptions& opts = {});

/// run_recurring_plan + order-independent merge into survivability totals.
RecurringTotals run_recurring_campaign(seep::Policy policy,
                                       const std::vector<Injection>& plan,
                                       const CampaignOptions& opts = {});

// --- storm campaigns (liveness faults, DESIGN.md §15) ---------------------
//
// Storm faults (kHandlerSpin, kChannelFlood) neither crash nor hang their
// host: the component stays live and keeps answering heartbeats while it
// burns dispatches or floods a peer. Crash/hang detection is structurally
// blind to them, so a storm run is bucketed by whether the *physiological
// health monitor* caught it:
//   detected       — the ladder's storm rung engaged (throttle, possibly
//                    followed by quarantine + fault disarm);
//   starved        — the storm fired but the monitor never reacted: the
//                    workload ran starved, the worst bucket;
//   false-positive — the monitor fevered in a run where no storm ever
//                    fired (control runs are planted to measure this; the
//                    acceptance bar is zero);
//   clean          — a control run that stayed quiet, as it should.
enum class StormClass : std::uint8_t { kDetected, kStarved, kFalsePositive, kClean };

[[nodiscard]] constexpr const char* storm_class_name(StormClass c) {
  switch (c) {
    case StormClass::kDetected: return "detected";
    case StormClass::kStarved: return "starved";
    case StormClass::kFalsePositive: return "false-positive";
    case StormClass::kClean: return "clean";
  }
  return "?";
}

/// One storm injection: a persistent storm fault at `site`, plus the storm
/// shape (flood victim endpoint and burst size). `site == nullptr` is a
/// control run — health monitoring on, nothing armed — whose only legitimate
/// outcome is kClean.
struct StormInjection {
  const fi::Site* site = nullptr;
  fi::FaultType type = fi::FaultType::kNone;
  std::uint64_t trigger_hit = 1;
  std::int32_t victim = -1;   // kChannelFlood target endpoint (unused for spin)
  std::uint32_t burst = 4;    // spin seed notes / flood notes per pump period
};

/// Per-run storm verdict (index-comparable for the jobs-determinism test).
struct StormResult {
  StormClass cls = StormClass::kClean;
  Tick detection_latency = 0;  // storm onset -> throttle; valid iff kDetected
  bool quarantined = false;    // fever persisted under throttle -> rung 2
  bool disarmed = false;       // quarantine disarmed the storm fault
  bool suite_clean = false;    // suite completed with zero failures
  std::uint64_t fever_onsets = 0;
  std::uint64_t throttled_drops = 0;

  friend bool operator==(const StormResult& a, const StormResult& b) {
    return a.cls == b.cls && a.detection_latency == b.detection_latency &&
           a.quarantined == b.quarantined && a.disarmed == b.disarmed &&
           a.suite_clean == b.suite_clean && a.fever_onsets == b.fever_onsets &&
           a.throttled_drops == b.throttled_drops;
  }
};

struct StormTotals {
  int detected = 0;
  int starved = 0;
  int false_positive = 0;
  int clean = 0;
  // Detection-latency aggregate over the kDetected runs.
  std::uint64_t latency_sum = 0;
  Tick latency_max = 0;
  int latency_n = 0;

  [[nodiscard]] int total() const { return detected + starved + false_positive + clean; }
  [[nodiscard]] double latency_mean() const {
    return latency_n == 0 ? 0.0
                          : static_cast<double>(latency_sum) / static_cast<double>(latency_n);
  }

  friend bool operator==(const StormTotals& a, const StormTotals& b) {
    return a.detected == b.detected && a.starved == b.starved &&
           a.false_positive == b.false_positive && a.clean == b.clean &&
           a.latency_sum == b.latency_sum && a.latency_max == b.latency_max &&
           a.latency_n == b.latency_n;
  }
};

/// Draw the storm plan: per subsystem tag, one spin and one flood injection
/// planted on the tag's hottest profiled site (the storm should ride the
/// component's busiest path so it engages mid-suite), plus control runs.
std::vector<StormInjection> plan_storm();

/// Run one storm injection (health monitor enabled) and bucket its fate.
StormResult run_one_storm(seep::Policy policy, const StormInjection& s);

/// Apply a storm plan; indexed by plan position regardless of jobs (same
/// determinism contract as run_plan).
std::vector<StormResult> run_storm_plan(seep::Policy policy,
                                        const std::vector<StormInjection>& plan,
                                        const CampaignOptions& opts = {});

/// run_storm_plan + order-independent merge into detection totals.
StormTotals run_storm_campaign(seep::Policy policy, const std::vector<StormInjection>& plan,
                               const CampaignOptions& opts = {});

}  // namespace osiris::workload
