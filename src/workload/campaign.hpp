// Large-scale fault-injection campaigns (Tables II and III).
//
// Methodology mirrors the paper's (SVI-B):
//   1. a profiling run of the prototype test suite determines which fault
//      candidates (fi:: sites) are actually triggered after boot;
//   2. an injection plan is drawn once — fail-stop-only for Table II, the
//      full EDFI software-fault mix for Table III — and the *same* plan is
//      applied to every recovery policy for comparability;
//   3. each injection runs in a fresh OS instance; the run is classified as
//      pass / fail / shutdown / crash from the suite result and the
//      machine's fate.
#pragma once

#include <functional>
#include <vector>

#include "fi/fault.hpp"
#include "fi/registry.hpp"
#include "seep/policy.hpp"

namespace osiris::workload {

enum class RunClass : std::uint8_t { kPass, kFail, kShutdown, kCrash };

[[nodiscard]] constexpr const char* run_class_name(RunClass c) {
  switch (c) {
    case RunClass::kPass: return "pass";
    case RunClass::kFail: return "fail";
    case RunClass::kShutdown: return "shutdown";
    case RunClass::kCrash: return "crash";
  }
  return "?";
}

struct Injection {
  const fi::Site* site = nullptr;
  fi::FaultType type = fi::FaultType::kNone;
  std::uint64_t trigger_hit = 1;
};

/// Profiling run: returns the triggered, non-boot-time sites with their
/// per-run hit counts (the fault-candidate pool).
std::vector<std::pair<fi::Site*, std::uint64_t>> profile_sites();

/// Draw the fail-stop plan: `points_per_site` null-deref injections per
/// triggered site, spread across its execution count.
std::vector<Injection> plan_failstop(int points_per_site = 3);

/// Draw the full-EDFI plan: a seeded mix of applicable fault types.
std::vector<Injection> plan_edfi(std::uint64_t seed = 316, int injections_per_site = 2);

/// Run one injection under a policy; returns its classification.
RunClass run_one_injection(seep::Policy policy, const Injection& inj);

struct CampaignTotals {
  int pass = 0;
  int fail = 0;
  int shutdown = 0;
  int crash = 0;

  [[nodiscard]] int total() const { return pass + fail + shutdown + crash; }
  [[nodiscard]] double frac(int n) const {
    return total() == 0 ? 0.0 : static_cast<double>(n) / total();
  }
};

/// Apply a whole plan under one policy. `progress` (optional) is invoked
/// after every run with (done, total).
CampaignTotals run_campaign(seep::Policy policy, const std::vector<Injection>& plan,
                            const std::function<void(int, int)>& progress = {});

}  // namespace osiris::workload
