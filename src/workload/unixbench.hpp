// Unixbench-equivalent workloads (paper SVI-C, Tables IV/V, Figure 3).
//
// Twelve workloads carrying the paper's names and exercising the same
// subsystems: pure computation (dhry2reg, whetstone-double), process
// creation (execl, spawn), filesystem throughput at three buffer sizes
// (fstime, fsbuffer, fsdisk), IPC (pipe, context1), raw syscall dispatch
// (syscall) and shell script execution at two concurrency levels (shell1,
// shell8). Every workload is written against ISys, so it runs identically
// on the OSIRIS multiserver system and on the monolithic baseline.
//
// Scores are iterations per wall-clock second (higher is better), the same
// shape as unixbench's index values.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "os/config.hpp"
#include "os/isys.hpp"
#include "os/programs.hpp"

namespace osiris::workload {

struct UbWorkload {
  std::string name;
  std::uint64_t default_iters;
  std::function<void(os::ISys&, std::uint64_t)> body;
};

const std::vector<UbWorkload>& ub_workloads();
const UbWorkload& ub_workload(std::string_view name);

/// Work units actually completed by the most recent workload run (failed
/// units — e.g. forks that never succeeded under fault influx — do not
/// count). Reset by run_ub_microkernel / run_ub_mono.
std::uint64_t ub_last_completed();

/// Reset the completed-work counter (custom harnesses like fig3).
void ub_reset_completed();

/// Register the programs the shell workloads exec.
void register_ub_programs(os::ProgramRegistry& registry);

/// Run one workload on a fresh OSIRIS instance; returns the wall-clock
/// seconds spent inside the machine (boot excluded).
double run_ub_microkernel(const os::OsConfig& cfg, const UbWorkload& w, std::uint64_t iters);

/// Same workload on the monolithic baseline.
double run_ub_mono(const UbWorkload& w, std::uint64_t iters);

/// iterations/second score.
inline double ub_score(std::uint64_t iters, double seconds) {
  return seconds > 0 ? static_cast<double>(iters) / seconds : 0.0;
}

}  // namespace osiris::workload
