#include "workload/unixbench.hpp"

#include <chrono>
#include <cmath>

#include "os/instance.hpp"
#include "os/mono.hpp"
#include "servers/protocol.hpp"
#include "support/common.hpp"
#include "workload/suite.hpp"

namespace osiris::workload {

using os::ISys;
using namespace osiris::servers;

namespace {

// Optimization sink for the compute workloads. Thread-local so concurrent
// campaign workers running unixbench programs never share a counter.
thread_local volatile std::uint64_t g_sink;

// Completed-work counter (see ub_last_completed), same per-worker scoping.
thread_local std::uint64_t g_completed = 0;

void ub_dhry2reg(ISys&, std::uint64_t iters) {
  // Register-heavy integer work: string-ish byte shuffling and arithmetic,
  // no syscalls (like Dhrystone).
  std::uint64_t acc = 0x243F6A8885A308D3ULL;
  char buf[64];
  for (std::uint64_t i = 0; i < iters; ++i) {
    for (int j = 0; j < 64; ++j) buf[j] = static_cast<char>((acc >> (j % 56)) & 0xff);
    std::uint64_t h = 1469598103934665603ULL;
    for (int j = 0; j < 64; ++j) h = (h ^ static_cast<std::uint8_t>(buf[j])) * 1099511628211ULL;
    acc = acc * 6364136223846793005ULL + h;
  }
  g_sink = acc;
  g_completed += iters;
}

void ub_whetstone(ISys&, std::uint64_t iters) {
  // Floating-point kernel (like Whetstone).
  double x = 1.0, y = 1.0, z = 1.0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    x = (x + y + z) * 0.499975;
    y = (x + y - z) * 0.499975;
    z = std::sqrt(x * x + y * y + 1e-9);
    x = std::sin(z) * std::cos(y) + 1.0;
  }
  g_sink = static_cast<std::uint64_t>(x * 1e6);
  g_completed += iters;
}

void ub_execl(ISys& sys, std::uint64_t iters) {
  for (std::uint64_t i = 0; i < iters; ++i) {
    // An iteration is one *successful* exec round trip: failed forks (e.g.
    // E_CRASH while PM recovers) are retried, so injected faults cost time
    // instead of silently shrinking the work (Figure 3 semantics: the
    // benchmark completes without functional service degradation).
    for (int attempt = 0; attempt < 64; ++attempt) {
      const std::int64_t pid = sys.fork([](ISys& c) {
        c.exec("/bin/true");
        c.exit(99);
      });
      if (pid <= 0) continue;
      std::int64_t s = -1;
      sys.wait_pid(pid, &s);
      ++g_completed;
      break;
    }
  }
}

void ub_fs_generic(ISys& sys, std::uint64_t iters, std::size_t bufsize, std::size_t nbufs,
                   const char* path) {
  std::vector<std::byte> buf(bufsize, std::byte{'u'});
  const std::int64_t fd = sys.open(path, O_CREAT | O_RDWR | O_TRUNC);
  if (fd < 0) return;
  for (std::uint64_t i = 0; i < iters; ++i) {
    sys.lseek(fd, 0, 0);
    for (std::size_t b = 0; b < nbufs; ++b) sys.write(fd, buf);
    sys.lseek(fd, 0, 0);
    for (std::size_t b = 0; b < nbufs; ++b) sys.read(fd, buf);
    ++g_completed;
  }
  sys.close(fd);
  sys.unlink(path);
}

void ub_fstime(ISys& sys, std::uint64_t iters) {
  ub_fs_generic(sys, iters, 1024, 8, "/tmp/ub_fstime");
}

void ub_fsbuffer(ISys& sys, std::uint64_t iters) {
  ub_fs_generic(sys, iters, 256, 16, "/tmp/ub_fsbuffer");
}

void ub_fsdisk(ISys& sys, std::uint64_t iters) {
  ub_fs_generic(sys, iters, 4096, 16, "/tmp/ub_fsdisk");
}

void ub_pipe(ISys& sys, std::uint64_t iters) {
  std::int64_t fds[2];
  if (sys.pipe(fds) != kernel::OK) return;
  std::vector<std::byte> buf(512, std::byte{'p'});
  for (std::uint64_t i = 0; i < iters; ++i) {
    if (sys.write(fds[1], buf) > 0 && sys.read(fds[0], buf) > 0) ++g_completed;
  }
  sys.close(fds[0]);
  sys.close(fds[1]);
}

void ub_context1(ISys& sys, std::uint64_t iters) {
  std::int64_t up[2], down[2];
  if (sys.pipe(up) != kernel::OK || sys.pipe(down) != kernel::OK) return;
  std::int64_t pid = -1;
  for (int attempt = 0; attempt < 64 && pid <= 0; ++attempt)
    pid = sys.fork([&](ISys& c) {
    // Each side closes the ends it does not use, or EOF never arrives.
    c.close(up[1]);
    c.close(down[0]);
    char b = 0;
    for (;;) {
      if (c.read(up[0], std::as_writable_bytes(std::span<char>(&b, 1))) != 1) c.exit(0);
      if (c.write(down[1], std::as_bytes(std::span<const char>(&b, 1))) != 1) c.exit(1);
    }
  });
  if (pid <= 0) return;
  sys.close(up[0]);
  sys.close(down[1]);
  char b = 'c';
  for (std::uint64_t i = 0; i < iters; ++i) {
    if (sys.write(up[1], std::as_bytes(std::span<const char>(&b, 1))) == 1 &&
        sys.read(down[0], std::as_writable_bytes(std::span<char>(&b, 1))) == 1) {
      ++g_completed;
    }
  }
  sys.close(up[1]);  // EOF stops the child
  std::int64_t s = -1;
  sys.wait_pid(pid, &s);
  sys.close(down[0]);
}

void ub_spawn(ISys& sys, std::uint64_t iters) {
  for (std::uint64_t i = 0; i < iters; ++i) {
    // Retry failed forks: see ub_execl.
    for (int attempt = 0; attempt < 64; ++attempt) {
      const std::int64_t pid = sys.fork([](ISys& c) { c.exit(0); });
      if (pid <= 0) continue;
      std::int64_t s = -1;
      sys.wait_pid(pid, &s);
      ++g_completed;
      break;
    }
  }
}

void ub_syscall(ISys& sys, std::uint64_t iters) {
  for (std::uint64_t i = 0; i < iters; ++i) {
    if (sys.getpid() > 0) ++g_completed;
    if ((i & 7) == 0) sys.getuid();
  }
}

void ub_shell(ISys& sys, std::uint64_t iters, int concurrency) {
  for (std::uint64_t i = 0; i < iters; ++i) {
    std::vector<std::int64_t> pids;
    for (int c = 0; c < concurrency; ++c) {
      // Retry failed forks so every iteration runs `concurrency` scripts.
      for (int attempt = 0; attempt < 64; ++attempt) {
        const std::int64_t pid = sys.fork([](ISys& child) {
          child.exec("/bin/sh_script");
          child.exit(95);
        });
        if (pid > 0) {
          pids.push_back(pid);
          break;
        }
      }
    }
    for (std::size_t c = 0; c < pids.size(); ++c) {
      std::int64_t s = -1;
      if (sys.wait_pid(0, &s) > 0 && s == 0) ++g_completed;
    }
  }
}

void ub_shell1(ISys& sys, std::uint64_t iters) { ub_shell(sys, iters, 1); }
void ub_shell8(ISys& sys, std::uint64_t iters) { ub_shell(sys, iters, 8); }

}  // namespace

const std::vector<UbWorkload>& ub_workloads() {
  static const std::vector<UbWorkload> workloads = {
      {"dhry2reg", 400000, ub_dhry2reg},
      {"whetstone-double", 600000, ub_whetstone},
      {"execl", 600, ub_execl},
      {"fstime", 600, ub_fstime},
      {"fsbuffer", 600, ub_fsbuffer},
      {"fsdisk", 150, ub_fsdisk},
      {"pipe", 12000, ub_pipe},
      {"context1", 6000, ub_context1},
      {"spawn", 800, ub_spawn},
      {"syscall", 50000, ub_syscall},
      {"shell1", 150, ub_shell1},
      {"shell8", 25, ub_shell8},
  };
  return workloads;
}

const UbWorkload& ub_workload(std::string_view name) {
  for (const UbWorkload& w : ub_workloads()) {
    if (w.name == name) return w;
  }
  OSIRIS_PANIC("unknown unixbench workload");
}

void register_ub_programs(os::ProgramRegistry& registry) {
  // The shell workloads reuse the suite's /bin programs (sh_script, true).
  register_suite_programs(registry);
}

std::uint64_t ub_last_completed() { return g_completed; }

void ub_reset_completed() { g_completed = 0; }

double run_ub_microkernel(const os::OsConfig& cfg, const UbWorkload& w, std::uint64_t iters) {
  os::OsInstance inst(cfg);
  register_ub_programs(inst.programs());
  inst.boot();
  g_completed = 0;
  const auto body = w.body;
  const auto t0 = std::chrono::steady_clock::now();
  const auto outcome = inst.run([&body, iters](ISys& sys) { body(sys, iters); });
  const auto t1 = std::chrono::steady_clock::now();
  OSIRIS_ASSERT(outcome == os::OsInstance::Outcome::kCompleted);
  return std::chrono::duration<double>(t1 - t0).count();
}

double run_ub_mono(const UbWorkload& w, std::uint64_t iters) {
  os::MonoOs mono;
  register_ub_programs(mono.programs());
  mono.boot();
  g_completed = 0;
  const auto body = w.body;
  const auto t0 = std::chrono::steady_clock::now();
  mono.run([&body, iters](ISys& sys) { body(sys, iters); });
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace osiris::workload
