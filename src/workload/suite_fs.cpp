// Filesystem tests (VFS-heavy, including disk-blocking paths): tests 29-53.
#include <cstring>

#include "workload/suite_internal.hpp"

namespace osiris::workload {

using os::ISys;
using os::StatResult;
using namespace osiris::servers;
using kernel::E_BADF;
using kernel::E_EXIST;
using kernel::E_ISDIR;
using kernel::E_NOENT;
using kernel::E_NOTEMPTY;
using kernel::OK;

namespace {

std::int64_t t_create_write_read(ISys& sys) {
  const std::int64_t fd = sys.open("/tmp/a", O_CREAT | O_RDWR);
  REQ(fd >= 0);
  REQ_EQ(wr(sys, fd, "alpha"), 5);
  REQ_EQ(sys.lseek(fd, 0, 0), 0);
  char buf[8] = {};
  REQ_EQ(rd(sys, fd, buf, 5), 5);
  REQ_EQ(std::string_view(buf, 5), std::string_view("alpha"));
  REQ_EQ(sys.close(fd), OK);
  REQ_EQ(sys.unlink("/tmp/a"), OK);
  return 0;
}

std::int64_t t_open_missing(ISys& sys) {
  REQ_EQ(sys.open("/tmp/missing-file", O_RDONLY), E_NOENT);
  return 0;
}

std::int64_t t_stat_matches_writes(ISys& sys) {
  const std::int64_t fd = sys.open("/tmp/b", O_CREAT | O_WRONLY);
  REQ(fd >= 0);
  REQ_EQ(wr(sys, fd, "0123456789"), 10);
  REQ_EQ(sys.close(fd), OK);
  StatResult st{};
  REQ_EQ(sys.stat("/tmp/b", &st), OK);
  REQ_EQ(st.size, 10u);
  REQ_EQ(st.type, static_cast<std::uint64_t>(fs::FileType::kRegular));
  REQ_EQ(sys.unlink("/tmp/b"), OK);
  return 0;
}

std::int64_t t_fstat_tracks_pos(ISys& sys) {
  const std::int64_t fd = sys.open("/tmp/c", O_CREAT | O_RDWR);
  REQ(fd >= 0);
  REQ_EQ(wr(sys, fd, "xyz"), 3);
  StatResult st{};
  REQ_EQ(sys.fstat(fd, &st), OK);
  REQ_EQ(st.size, 3u);
  REQ_EQ(sys.close(fd), OK);
  REQ_EQ(sys.unlink("/tmp/c"), OK);
  return 0;
}

std::int64_t t_lseek_and_sparse(ISys& sys) {
  const std::int64_t fd = sys.open("/tmp/sparse", O_CREAT | O_RDWR);
  REQ(fd >= 0);
  REQ_EQ(sys.lseek(fd, 3000, 0), 3000);
  REQ_EQ(wr(sys, fd, "end"), 3);
  REQ_EQ(sys.lseek(fd, 0, 0), 0);
  char buf[8] = {1, 1, 1};
  REQ_EQ(rd(sys, fd, buf, 4), 4);
  REQ(buf[0] == 0 && buf[1] == 0 && buf[2] == 0);  // hole reads back zeroes
  REQ_EQ(sys.close(fd), OK);
  REQ_EQ(sys.unlink("/tmp/sparse"), OK);
  return 0;
}

std::int64_t t_append_mode(ISys& sys) {
  std::int64_t fd = sys.open("/tmp/app", O_CREAT | O_WRONLY);
  REQ(fd >= 0);
  REQ_EQ(wr(sys, fd, "aa"), 2);
  REQ_EQ(sys.close(fd), OK);
  fd = sys.open("/tmp/app", O_WRONLY | O_APPEND);
  REQ(fd >= 0);
  REQ_EQ(wr(sys, fd, "bb"), 2);
  REQ_EQ(sys.close(fd), OK);
  StatResult st{};
  REQ_EQ(sys.stat("/tmp/app", &st), OK);
  REQ_EQ(st.size, 4u);
  REQ_EQ(sys.unlink("/tmp/app"), OK);
  return 0;
}

std::int64_t t_trunc_on_open(ISys& sys) {
  std::int64_t fd = sys.open("/tmp/t", O_CREAT | O_WRONLY);
  REQ(fd >= 0);
  REQ_EQ(wr(sys, fd, "longcontent"), 11);
  REQ_EQ(sys.close(fd), OK);
  fd = sys.open("/tmp/t", O_WRONLY | O_TRUNC);
  REQ(fd >= 0);
  REQ_EQ(sys.close(fd), OK);
  StatResult st{};
  REQ_EQ(sys.stat("/tmp/t", &st), OK);
  REQ_EQ(st.size, 0u);
  REQ_EQ(sys.unlink("/tmp/t"), OK);
  return 0;
}

std::int64_t t_truncate_shrinks(ISys& sys) {
  const std::int64_t fd = sys.open("/tmp/tr", O_CREAT | O_WRONLY);
  REQ(fd >= 0);
  std::string big(5000, 'Q');
  REQ_EQ(wr(sys, fd, big), 5000);
  REQ_EQ(sys.close(fd), OK);
  REQ_EQ(sys.truncate("/tmp/tr", 100), OK);
  StatResult st{};
  REQ_EQ(sys.stat("/tmp/tr", &st), OK);
  REQ_EQ(st.size, 100u);
  REQ_EQ(sys.unlink("/tmp/tr"), OK);
  return 0;
}

std::int64_t t_mkdir_rmdir(ISys& sys) {
  REQ_EQ(sys.mkdir("/tmp/dir1"), OK);
  StatResult st{};
  REQ_EQ(sys.stat("/tmp/dir1", &st), OK);
  REQ_EQ(st.type, static_cast<std::uint64_t>(fs::FileType::kDirectory));
  REQ_EQ(sys.rmdir("/tmp/dir1"), OK);
  REQ_EQ(sys.stat("/tmp/dir1", &st), E_NOENT);
  return 0;
}

std::int64_t t_rmdir_nonempty(ISys& sys) {
  REQ_EQ(sys.mkdir("/tmp/dir2"), OK);
  const std::int64_t fd = sys.open("/tmp/dir2/f", O_CREAT | O_WRONLY);
  REQ(fd >= 0);
  REQ_EQ(sys.close(fd), OK);
  REQ_EQ(sys.rmdir("/tmp/dir2"), E_NOTEMPTY);
  REQ_EQ(sys.unlink("/tmp/dir2/f"), OK);
  REQ_EQ(sys.rmdir("/tmp/dir2"), OK);
  return 0;
}

std::int64_t t_nested_dirs(ISys& sys) {
  REQ_EQ(sys.mkdir("/tmp/n1"), OK);
  REQ_EQ(sys.mkdir("/tmp/n1/n2"), OK);
  REQ_EQ(sys.mkdir("/tmp/n1/n2/n3"), OK);
  const std::int64_t fd = sys.open("/tmp/n1/n2/n3/deep", O_CREAT | O_WRONLY);
  REQ(fd >= 0);
  REQ_EQ(wr(sys, fd, "d"), 1);
  REQ_EQ(sys.close(fd), OK);
  REQ_EQ(sys.access("/tmp/n1/n2/n3/deep"), OK);
  REQ_EQ(sys.unlink("/tmp/n1/n2/n3/deep"), OK);
  REQ_EQ(sys.rmdir("/tmp/n1/n2/n3"), OK);
  REQ_EQ(sys.rmdir("/tmp/n1/n2"), OK);
  REQ_EQ(sys.rmdir("/tmp/n1"), OK);
  return 0;
}

std::int64_t t_readdir_lists_all(ISys& sys) {
  REQ_EQ(sys.mkdir("/tmp/ls"), OK);
  for (const char* name : {"x", "y", "z"}) {
    const std::int64_t fd =
        sys.open(std::string("/tmp/ls/") + name, O_CREAT | O_WRONLY);
    REQ(fd >= 0);
    REQ_EQ(sys.close(fd), OK);
  }
  int seen = 0;
  for (std::uint64_t i = 0;; ++i) {
    std::string name;
    const std::int64_t r = sys.readdir("/tmp/ls", i, &name);
    if (r == E_NOENT) break;
    REQ(r > 0);
    REQ(name == "x" || name == "y" || name == "z");
    ++seen;
  }
  REQ_EQ(seen, 3);
  for (const char* name : {"x", "y", "z"}) {
    REQ_EQ(sys.unlink(std::string("/tmp/ls/") + name), OK);
  }
  REQ_EQ(sys.rmdir("/tmp/ls"), OK);
  return 0;
}

std::int64_t t_rename_within_dir(ISys& sys) {
  const std::int64_t fd = sys.open("/tmp/old-name", O_CREAT | O_WRONLY);
  REQ(fd >= 0);
  REQ_EQ(wr(sys, fd, "data"), 4);
  REQ_EQ(sys.close(fd), OK);
  REQ_EQ(sys.rename("/tmp/old-name", "new-name"), OK);
  REQ_EQ(sys.access("/tmp/old-name"), E_NOENT);
  StatResult st{};
  REQ_EQ(sys.stat("/tmp/new-name", &st), OK);
  REQ_EQ(st.size, 4u);
  REQ_EQ(sys.unlink("/tmp/new-name"), OK);
  return 0;
}

std::int64_t t_unlink_open_semantics(ISys& sys) {
  // Our VFS keeps the fd usable for reads of already-resolved inodes.
  const std::int64_t fd = sys.open("/tmp/u", O_CREAT | O_RDWR);
  REQ(fd >= 0);
  REQ_EQ(wr(sys, fd, "keep"), 4);
  REQ_EQ(sys.unlink("/tmp/u"), OK);
  REQ_EQ(sys.access("/tmp/u"), E_NOENT);
  REQ_EQ(sys.close(fd), OK);
  return 0;
}

std::int64_t t_big_file_indirect_blocks(ISys& sys) {
  // > 10 KiB forces the singly-indirect block path in MiniFS.
  const std::int64_t fd = sys.open("/tmp/big", O_CREAT | O_RDWR);
  REQ(fd >= 0);
  std::string chunk(1024, '#');
  for (int i = 0; i < 14; ++i) {
    chunk[0] = static_cast<char>('A' + i);
    REQ_EQ(wr(sys, fd, chunk), 1024);
  }
  StatResult st{};
  REQ_EQ(sys.fstat(fd, &st), OK);
  REQ_EQ(st.size, 14u * 1024u);
  REQ_EQ(sys.lseek(fd, 13 * 1024, 0), 13 * 1024);
  char buf[4] = {};
  REQ_EQ(rd(sys, fd, buf, 1), 1);
  REQ_EQ(buf[0], 'N');
  REQ_EQ(sys.close(fd), OK);
  REQ_EQ(sys.unlink("/tmp/big"), OK);
  return 0;
}

std::int64_t t_many_small_files(ISys& sys) {
  REQ_EQ(sys.mkdir("/tmp/many"), OK);
  for (int i = 0; i < 20; ++i) {
    const std::string path = "/tmp/many/f" + std::to_string(i);
    const std::int64_t fd = sys.open(path, O_CREAT | O_WRONLY);
    REQ(fd >= 0);
    REQ_EQ(wr(sys, fd, std::to_string(i)), static_cast<std::int64_t>(std::to_string(i).size()));
    REQ_EQ(sys.close(fd), OK);
  }
  for (int i = 0; i < 20; ++i) {
    const std::string path = "/tmp/many/f" + std::to_string(i);
    const std::int64_t fd = sys.open(path, O_RDONLY);
    REQ(fd >= 0);
    char buf[8] = {};
    const std::string want = std::to_string(i);
    REQ_EQ(rd(sys, fd, buf, sizeof buf), static_cast<std::int64_t>(want.size()));
    REQ_EQ(std::string(buf), want);
    REQ_EQ(sys.close(fd), OK);
    REQ_EQ(sys.unlink(path), OK);
  }
  REQ_EQ(sys.rmdir("/tmp/many"), OK);
  return 0;
}

std::int64_t t_dup_shares_offset(ISys& sys) {
  const std::int64_t fd = sys.open("/tmp/dup", O_CREAT | O_RDWR);
  REQ(fd >= 0);
  REQ_EQ(wr(sys, fd, "abcdef"), 6);
  const std::int64_t fd2 = sys.dup(fd);
  REQ(fd2 >= 0 && fd2 != fd);
  REQ_EQ(sys.lseek(fd, 0, 0), 0);
  char buf[4] = {};
  REQ_EQ(rd(sys, fd2, buf, 2), 2);  // dup shares the offset
  REQ_EQ(std::string_view(buf, 2), std::string_view("ab"));
  REQ_EQ(rd(sys, fd, buf, 2), 2);
  REQ_EQ(std::string_view(buf, 2), std::string_view("cd"));
  REQ_EQ(sys.close(fd), OK);
  REQ_EQ(rd(sys, fd2, buf, 2), 2);  // still open through fd2
  REQ_EQ(sys.close(fd2), OK);
  REQ_EQ(sys.unlink("/tmp/dup"), OK);
  return 0;
}

std::int64_t t_bad_fd_ops(ISys& sys) {
  char b;
  REQ_EQ(rd(sys, 13, &b, 1), E_BADF);
  REQ_EQ(sys.close(13), E_BADF);
  REQ_EQ(sys.lseek(-1, 0, 0), E_BADF);
  REQ_EQ(sys.dup(99), E_BADF);
  return 0;
}

std::int64_t t_open_dir_for_write(ISys& sys) {
  REQ_EQ(sys.open("/tmp", O_WRONLY), E_ISDIR);
  return 0;
}

std::int64_t t_create_exists(ISys& sys) {
  REQ_EQ(sys.mkdir("/tmp/dd"), OK);
  REQ_EQ(sys.mkdir("/tmp/dd"), E_EXIST);
  REQ_EQ(sys.rmdir("/tmp/dd"), OK);
  return 0;
}

std::int64_t t_fd_inherited_on_fork(ISys& sys) {
  const std::int64_t fd = sys.open("/tmp/inh", O_CREAT | O_RDWR);
  REQ(fd >= 0);
  REQ_EQ(wr(sys, fd, "shared"), 6);
  const std::int64_t pid = sys.fork([fd](ISys& c) {
    if (c.lseek(fd, 0, 0) != 0) c.exit(1);
    char buf[8] = {};
    if (rd(c, fd, buf, 6) != 6) c.exit(2);
    c.exit(std::string_view(buf, 6) == "shared" ? 0 : 3);
  });
  REQ(pid > 0);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 0);
  REQ_EQ(sys.close(fd), OK);
  REQ_EQ(sys.unlink("/tmp/inh"), OK);
  return 0;
}

std::int64_t t_fds_closed_on_exit(ISys& sys) {
  // A child opening files and exiting must not leak open-file entries:
  // repeated cycles would otherwise exhaust the table.
  // 15 rounds x 10 fds would overflow the 128-entry open-file table if
  // VFS_PM_EXIT leaked entries.
  for (int round = 0; round < 15; ++round) {
    const std::int64_t pid = sys.fork([](ISys& c) {
      for (int i = 0; i < 10; ++i) {
        if (c.open("/bin/true", O_RDONLY) < 0) c.exit(1);
      }
      c.exit(0);  // 10 fds left open on purpose
    });
    REQ(pid > 0);
    std::int64_t s = -1;
    REQ_EQ(sys.wait_pid(pid, &s), pid);
    REQ_EQ(s, 0);
  }
  return 0;
}

std::int64_t t_sync(ISys& sys) {
  const std::int64_t fd = sys.open("/tmp/sy", O_CREAT | O_WRONLY);
  REQ(fd >= 0);
  REQ_EQ(wr(sys, fd, "flushed"), 7);
  REQ_EQ(sys.fsync(), OK);
  REQ_EQ(sys.close(fd), OK);
  REQ_EQ(sys.unlink("/tmp/sy"), OK);
  return 0;
}

std::int64_t t_cache_pressure(ISys& sys) {
  // Touch more distinct blocks than the cache holds to force evictions and
  // disk-blocking reads (worker threads + recovery-window yields).
  const std::int64_t fd = sys.open("/tmp/press", O_CREAT | O_RDWR);
  REQ(fd >= 0);
  std::string chunk(1024, 'P');
  for (int i = 0; i < 100; ++i) REQ_EQ(wr(sys, fd, chunk), 1024);
  for (int i = 99; i >= 0; i -= 7) {
    REQ_EQ(sys.lseek(fd, i * 1024, 0), i * 1024);
    char b;
    REQ_EQ(rd(sys, fd, &b, 1), 1);
    REQ_EQ(b, 'P');
  }
  REQ_EQ(sys.close(fd), OK);
  REQ_EQ(sys.unlink("/tmp/press"), OK);
  return 0;
}

std::int64_t t_bin_is_populated(ISys& sys) {
  REQ_EQ(sys.access("/bin/true"), OK);
  REQ_EQ(sys.access("/bin/false"), OK);
  StatResult st{};
  REQ_EQ(sys.stat("/bin/true", &st), OK);
  REQ(st.size > 0);
  return 0;
}

std::int64_t t_concurrent_file_readers(ISys& sys) {
  const std::int64_t fd = sys.open("/tmp/conc", O_CREAT | O_WRONLY);
  REQ(fd >= 0);
  std::string data(2048, 'C');
  REQ_EQ(wr(sys, fd, data), 2048);
  REQ_EQ(sys.close(fd), OK);
  std::int64_t pids[3];
  for (auto& pid : pids) {
    pid = sys.fork([](ISys& c) {
      const std::int64_t f = c.open("/tmp/conc", O_RDONLY);
      if (f < 0) c.exit(1);
      char buf[256];
      std::int64_t total = 0, n;
      while ((n = rd(c, f, buf, sizeof buf)) > 0) total += n;
      c.exit(total == 2048 ? 0 : 2);
    });
    REQ(pid > 0);
  }
  for (int i = 0; i < 3; ++i) {
    std::int64_t s = -1;
    REQ(sys.wait_pid(0, &s) > 0);
    REQ_EQ(s, 0);
  }
  REQ_EQ(sys.unlink("/tmp/conc"), OK);
  return 0;
}

}  // namespace

void add_fs_tests(std::vector<SuiteTest>& out) {
  auto add = [&out](const char* name, std::function<std::int64_t(os::ISys&)> body) {
    out.push_back(SuiteTest{name, "fs", std::move(body)});
  };
  add("create-write-read", t_create_write_read);
  add("open-missing", t_open_missing);
  add("stat-matches-writes", t_stat_matches_writes);
  add("fstat-tracks-pos", t_fstat_tracks_pos);
  add("lseek-and-sparse", t_lseek_and_sparse);
  add("append-mode", t_append_mode);
  add("trunc-on-open", t_trunc_on_open);
  add("truncate-shrinks", t_truncate_shrinks);
  add("mkdir-rmdir", t_mkdir_rmdir);
  add("rmdir-nonempty", t_rmdir_nonempty);
  add("nested-dirs", t_nested_dirs);
  add("readdir-lists-all", t_readdir_lists_all);
  add("rename-within-dir", t_rename_within_dir);
  add("unlink-open-file", t_unlink_open_semantics);
  add("big-file-indirect", t_big_file_indirect_blocks);
  add("many-small-files", t_many_small_files);
  add("dup-shares-offset", t_dup_shares_offset);
  add("bad-fd-ops", t_bad_fd_ops);
  add("open-dir-for-write", t_open_dir_for_write);
  add("create-exists", t_create_exists);
  add("fd-inherited-on-fork", t_fd_inherited_on_fork);
  add("fds-closed-on-exit", t_fds_closed_on_exit);
  add("sync", t_sync);
  add("cache-pressure", t_cache_pressure);
  add("bin-is-populated", t_bin_is_populated);
  add("concurrent-file-readers", t_concurrent_file_readers);
}

}  // namespace osiris::workload
