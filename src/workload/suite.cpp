#include "workload/suite.hpp"

#include "workload/suite_internal.hpp"

namespace osiris::workload {

using os::ISys;
using os::StatResult;
using namespace osiris::servers;
using kernel::OK;

const std::vector<SuiteTest>& suite_tests() {
  static const std::vector<SuiteTest> tests = [] {
    std::vector<SuiteTest> out;
    add_proc_tests(out);
    add_fs_tests(out);
    add_pipe_tests(out);
    add_misc_tests(out);
    OSIRIS_ASSERT(out.size() == 89);  // the paper's 89-program suite
    return out;
  }();
  return tests;
}

void register_suite_programs(os::ProgramRegistry& registry) {
  registry.add("true", [](ISys&) -> std::int64_t { return 0; });
  registry.add("false", [](ISys&) -> std::int64_t { return 1; });

  registry.add("pidcheck", [](ISys& sys) -> std::int64_t {
    std::uint64_t want = 0;
    if (sys.ds_retrieve("test.pid", &want) != OK) return 2;
    return sys.getpid() == static_cast<std::int64_t>(want) ? 0 : 1;
  });

  registry.add("chain1", [](ISys& sys) -> std::int64_t {
    sys.exec("/bin/true");
    return 98;  // unreachable on success
  });
  registry.add("chain0", [](ISys& sys) -> std::int64_t {
    sys.exec("/bin/chain1");
    return 97;
  });

  registry.add("wc_fd", [](ISys& sys) -> std::int64_t {
    std::uint64_t fd = 0;
    if (sys.ds_retrieve("suite.wc.fd", &fd) != OK) return -1;
    char buf[64];
    std::int64_t total = 0, n;
    while ((n = rd(sys, static_cast<std::int64_t>(fd), buf, sizeof buf)) > 0) total += n;
    return total;
  });

  registry.add("cat_size", [](ISys& sys) -> std::int64_t {
    StatResult st{};
    if (sys.stat("/tmp/xexec", &st) != OK) return -1;
    return static_cast<std::int64_t>(st.size);
  });

  // The canned shell script used by t_shell_script and the shell1/shell8
  // unixbench workloads: a mix of common commands (mkdir, tee, cat, rm).
  registry.add("sh_script", [](ISys& sys) -> std::int64_t {
    const std::string dir = "/tmp/sh" + std::to_string(sys.getpid());
    if (sys.mkdir(dir) != OK) return 1;
    const std::string file = dir + "/out";
    const std::int64_t fd = sys.open(file, O_CREAT | O_RDWR);
    if (fd < 0) return 2;
    if (wr(sys, fd, "shell test data\n") != 16) return 3;
    if (sys.lseek(fd, 0, 0) != 0) return 4;
    char buf[32] = {};
    if (rd(sys, fd, buf, 16) != 16) return 5;
    if (sys.close(fd) != OK) return 6;
    StatResult st{};
    if (sys.stat(file, &st) != OK || st.size != 16) return 7;
    const std::int64_t pid = sys.fork([](ISys& c) {
      c.exec("/bin/true");
      c.exit(96);
    });
    if (pid <= 0) return 8;
    std::int64_t s = -1;
    if (sys.wait_pid(pid, &s) != pid || s != 0) return 9;
    if (sys.unlink(file) != OK) return 10;
    if (sys.rmdir(dir) != OK) return 11;
    return 0;
  });
}

SuiteResult run_suite(os::OsInstance& inst) {
  SuiteResult res;
  SuiteResult* out = &res;
  res.outcome = inst.run([out](ISys& sys) {
    for (const SuiteTest& t : suite_tests()) {
      const SuiteTest* tp = &t;
      const std::int64_t pid =
          sys.fork([tp](ISys& c) { c.exit(tp->body(c)); });
      if (pid <= 0) {
        ++out->failed;
        out->failures.push_back(t.name + " (fork: " + std::to_string(pid) + ")");
        continue;
      }
      std::int64_t status = -1;
      const std::int64_t got = sys.wait_pid(pid, &status);
      if (got == pid && status == 0) {
        ++out->passed;
      } else {
        ++out->failed;
        out->failures.push_back(t.name + " (rc=" + std::to_string(status) + ")");
      }
    }
    out->driver_completed = true;
  });
  return res;
}

}  // namespace osiris::workload
