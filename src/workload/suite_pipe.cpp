// Pipe and inter-process-communication tests: tests 55-64.
#include "workload/suite_internal.hpp"

namespace osiris::workload {

using os::ISys;
using namespace osiris::servers;
using kernel::E_BADF;
using kernel::E_PIPE;
using kernel::OK;

namespace {

std::int64_t t_pipe_basic(ISys& sys) {
  std::int64_t fds[2];
  REQ_EQ(sys.pipe(fds), OK);
  REQ_EQ(wr(sys, fds[1], "hello"), 5);
  char buf[8] = {};
  REQ_EQ(rd(sys, fds[0], buf, 5), 5);
  REQ_EQ(std::string_view(buf, 5), std::string_view("hello"));
  REQ_EQ(sys.close(fds[0]), OK);
  REQ_EQ(sys.close(fds[1]), OK);
  return 0;
}

std::int64_t t_pipe_wrong_direction(ISys& sys) {
  std::int64_t fds[2];
  REQ_EQ(sys.pipe(fds), OK);
  char b = 'x';
  REQ_EQ(wr(sys, fds[0], "x"), E_BADF);  // write to the read end
  REQ_EQ(rd(sys, fds[1], &b, 1), E_BADF);  // read from the write end
  sys.close(fds[0]);
  sys.close(fds[1]);
  return 0;
}

std::int64_t t_pipe_eof_on_writer_close(ISys& sys) {
  std::int64_t fds[2];
  REQ_EQ(sys.pipe(fds), OK);
  REQ_EQ(wr(sys, fds[1], "zz"), 2);
  REQ_EQ(sys.close(fds[1]), OK);
  char buf[4];
  REQ_EQ(rd(sys, fds[0], buf, 4), 2);
  REQ_EQ(rd(sys, fds[0], buf, 4), 0);  // EOF
  REQ_EQ(sys.close(fds[0]), OK);
  return 0;
}

std::int64_t t_pipe_epipe_on_reader_close(ISys& sys) {
  std::int64_t fds[2];
  REQ_EQ(sys.pipe(fds), OK);
  REQ_EQ(sys.close(fds[0]), OK);
  REQ_EQ(wr(sys, fds[1], "x"), E_PIPE);
  REQ_EQ(sys.close(fds[1]), OK);
  return 0;
}

std::int64_t t_pipe_blocking_read(ISys& sys) {
  std::int64_t fds[2];
  REQ_EQ(sys.pipe(fds), OK);
  const std::int64_t pid = sys.fork([&](ISys& c) {
    char buf[8] = {};
    const std::int64_t n = rd(c, fds[0], buf, 4);  // blocks until data
    c.exit(n == 4 && std::string_view(buf, 4) == "late" ? 0 : 1);
  });
  REQ(pid > 0);
  // Do a little work first so the child is parked in the blocked-reader slot.
  for (int i = 0; i < 5; ++i) sys.getpid();
  REQ_EQ(wr(sys, fds[1], "late"), 4);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 0);
  sys.close(fds[0]);
  sys.close(fds[1]);
  return 0;
}

std::int64_t t_pipe_blocking_write(ISys& sys) {
  std::int64_t fds[2];
  REQ_EQ(sys.pipe(fds), OK);
  // Fill the pipe to capacity (4096 bytes).
  std::string chunk(1024, 'F');
  for (int i = 0; i < 4; ++i) REQ_EQ(wr(sys, fds[1], chunk), 1024);
  const std::int64_t pid = sys.fork([&](ISys& c) {
    // This write must block until the parent drains.
    const std::int64_t n = wr(c, fds[1], "over");
    c.exit(n == 4 ? 0 : 1);
  });
  REQ(pid > 0);
  for (int i = 0; i < 5; ++i) sys.getpid();
  char buf[512];
  REQ_EQ(rd(sys, fds[0], buf, sizeof buf), 512);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 0);
  sys.close(fds[0]);
  sys.close(fds[1]);
  return 0;
}

std::int64_t t_pipe_pingpong(ISys& sys) {
  std::int64_t up[2], down[2];
  REQ_EQ(sys.pipe(up), OK);
  REQ_EQ(sys.pipe(down), OK);
  const std::int64_t pid = sys.fork([&](ISys& c) {
    for (int i = 0; i < 10; ++i) {
      char b = 0;
      if (rd(c, up[0], &b, 1) != 1) c.exit(1);
      ++b;
      if (wr(c, down[1], std::string_view(&b, 1)) != 1) c.exit(2);
    }
    c.exit(0);
  });
  REQ(pid > 0);
  for (char i = 0; i < 10; ++i) {
    const char out = static_cast<char>('a' + i);
    REQ_EQ(wr(sys, up[1], std::string_view(&out, 1)), 1);
    char in = 0;
    REQ_EQ(rd(sys, down[0], &in, 1), 1);
    REQ_EQ(in, out + 1);
  }
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 0);
  for (auto fd : {up[0], up[1], down[0], down[1]}) sys.close(fd);
  return 0;
}

std::int64_t t_pipe_fd_inherited(ISys& sys) {
  std::int64_t fds[2];
  REQ_EQ(sys.pipe(fds), OK);
  const std::int64_t pid = sys.fork([&](ISys& c) {
    c.close(fds[0]);
    const std::int64_t n = wr(c, fds[1], "inherit");
    c.close(fds[1]);
    c.exit(n == 7 ? 0 : 1);
  });
  REQ(pid > 0);
  REQ_EQ(sys.close(fds[1]), OK);
  char buf[16] = {};
  REQ_EQ(rd(sys, fds[0], buf, 7), 7);
  REQ_EQ(std::string_view(buf, 7), std::string_view("inherit"));
  REQ_EQ(rd(sys, fds[0], buf, 1), 0);  // child closed its write end: EOF
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 0);
  REQ_EQ(sys.close(fds[0]), OK);
  return 0;
}

std::int64_t t_pipe_eof_via_child_exit(ISys& sys) {
  // The child never closes explicitly: exit() must release its pipe ends.
  std::int64_t fds[2];
  REQ_EQ(sys.pipe(fds), OK);
  const std::int64_t pid = sys.fork([&](ISys& c) {
    wr(c, fds[1], "bye");
    c.exit(0);
  });
  REQ(pid > 0);
  REQ_EQ(sys.close(fds[1]), OK);
  char buf[8];
  REQ_EQ(rd(sys, fds[0], buf, 3), 3);
  REQ_EQ(rd(sys, fds[0], buf, 3), 0);  // EOF only if child's end was closed
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(sys.close(fds[0]), OK);
  return 0;
}

std::int64_t t_pipe_dup_end(ISys& sys) {
  std::int64_t fds[2];
  REQ_EQ(sys.pipe(fds), OK);
  const std::int64_t w2 = sys.dup(fds[1]);
  REQ(w2 >= 0);
  REQ_EQ(sys.close(fds[1]), OK);
  REQ_EQ(wr(sys, w2, "still"), 5);  // writable through the dup
  char buf[8];
  REQ_EQ(rd(sys, fds[0], buf, 5), 5);
  REQ_EQ(sys.close(w2), OK);
  REQ_EQ(rd(sys, fds[0], buf, 1), 0);  // now EOF
  REQ_EQ(sys.close(fds[0]), OK);
  return 0;
}

}  // namespace

void add_pipe_tests(std::vector<SuiteTest>& out) {
  auto add = [&out](const char* name, std::function<std::int64_t(os::ISys&)> body) {
    out.push_back(SuiteTest{name, "pipe", std::move(body)});
  };
  add("pipe-basic", t_pipe_basic);
  add("pipe-wrong-direction", t_pipe_wrong_direction);
  add("pipe-eof-on-writer-close", t_pipe_eof_on_writer_close);
  add("pipe-epipe-on-reader-close", t_pipe_epipe_on_reader_close);
  add("pipe-blocking-read", t_pipe_blocking_read);
  add("pipe-blocking-write", t_pipe_blocking_write);
  add("pipe-pingpong", t_pipe_pingpong);
  add("pipe-fd-inherited", t_pipe_fd_inherited);
  add("pipe-eof-via-child-exit", t_pipe_eof_via_child_exit);
  add("pipe-dup-end", t_pipe_dup_end);
}

}  // namespace osiris::workload
