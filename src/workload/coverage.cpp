#include "workload/coverage.hpp"

#include "os/instance.hpp"
#include "workload/suite.hpp"

namespace osiris::workload {

CoverageReport measure_coverage(seep::Policy policy) {
  os::OsConfig cfg;
  cfg.policy = policy;
  os::OsInstance inst(cfg);
  register_suite_programs(inst.programs());
  inst.boot();
  const SuiteResult suite = run_suite(inst);

  CoverageReport report;
  report.suite_passed = suite.passed;
  report.suite_failed = suite.failed;
  std::uint64_t total_hits = 0;
  double weighted = 0.0;
  for (recovery::Recoverable* comp : inst.components()) {
    const seep::WindowStats& ws = comp->window().stats();
    const std::uint64_t hits = ws.probe_hits_inside + ws.probe_hits_outside;
    report.servers.push_back(
        ServerCoverage{std::string(comp->name()), ws.coverage(), hits});
    total_hits += hits;
    weighted += ws.coverage() * static_cast<double>(hits);
  }
  report.weighted_mean = total_hits > 0 ? weighted / static_cast<double>(total_hits) : 0.0;
  return report;
}

}  // namespace osiris::workload
