#include "workload/campaign.hpp"

#include <algorithm>
#include <iterator>
#include <mutex>
#include <string_view>

#include "os/instance.hpp"
#include "support/rng.hpp"
#include "support/worker_pool.hpp"
#include "workload/suite.hpp"
#if OSIRIS_TRACE_ENABLED
#include "trace/export.hpp"
#endif

namespace osiris::workload {

namespace {

SuiteResult run_suite_fresh(seep::Policy policy) {
  os::OsConfig cfg;
  cfg.policy = policy;
  os::OsInstance inst(cfg);
  register_suite_programs(inst.programs());
  inst.boot();
  return run_suite(inst);
}

}  // namespace

std::vector<std::pair<fi::Site*, std::uint64_t>> profile_sites() {
  fi::Registry& reg = fi::Registry::instance();
  reg.disarm();
  reg.reset_counts();
  (void)run_suite_fresh(seep::Policy::kEnhanced);
  std::vector<std::pair<fi::Site*, std::uint64_t>> out;
  for (fi::Site* s : fi::Registry::sites()) {
    const std::uint64_t hits = reg.hits(s);
    if (hits > 0) out.emplace_back(s, hits);
  }
  return out;
}

std::vector<Injection> plan_failstop(int points_per_site) {
  std::vector<Injection> plan;
  for (auto [site, hits] : profile_sites()) {
    const int points = static_cast<int>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(points_per_site), hits));
    for (int j = 0; j < points; ++j) {
      // Spread the trigger points across the site's execution count.
      const std::uint64_t trigger = 1 + (hits * static_cast<std::uint64_t>(j)) /
                                            static_cast<std::uint64_t>(points);
      plan.push_back(Injection{site, fi::FaultType::kNullDeref, trigger});
    }
  }
  return plan;
}

std::vector<Injection> plan_edfi(std::uint64_t seed, int injections_per_site) {
  Rng rng(seed);
  std::vector<Injection> plan;
  for (auto [site, hits] : profile_sites()) {
    // Applicable EDFI fault types for this site kind.
    std::vector<fi::FaultType> types;
    switch (site->kind) {
      case fi::SiteKind::kBlock:
        types = {fi::FaultType::kNullDeref, fi::FaultType::kHang, fi::FaultType::kDelayedCrash};
        break;
      case fi::SiteKind::kValue:
        types = {fi::FaultType::kCorruptValue, fi::FaultType::kOffByOne,
                 fi::FaultType::kNullDeref, fi::FaultType::kDelayedCrash};
        break;
      case fi::SiteKind::kBranch:
        types = {fi::FaultType::kBranchFlip, fi::FaultType::kBranchFlip,
                 fi::FaultType::kNullDeref};
        break;
    }
    for (int j = 0; j < injections_per_site; ++j) {
      Injection inj;
      inj.site = site;
      inj.type = types[rng.below(types.size())];
      inj.trigger_hit = rng.range(1, hits);
      plan.push_back(inj);
    }
  }
  return plan;
}

RunClass run_one_injection(seep::Policy policy, const Injection& inj, std::string* trace_out,
                           const CampaignOptions& opts) {
  // The calling thread's registry: each worker owns an isolated probe
  // runtime, so concurrent injections never see each other's state.
  fi::Registry& reg = fi::Registry::instance();
  reg.disarm();
  reg.reset_counts();

  os::OsConfig cfg;
  cfg.policy = policy;
  cfg.fastpath = opts.fastpath;
  cfg.vfs_fom = opts.vfs_fom;
  if (opts.cache_blocks != 0) cfg.cache_blocks = opts.cache_blocks;
  cfg.ckpt_pages = opts.ckpt_pages;
  cfg.ds_blob_slots = opts.ds_blob_slots;
  cfg.vfs_journal_slots = opts.vfs_journal_slots;
#if OSIRIS_TRACE_ENABLED
  cfg.trace_enabled = trace_out != nullptr;
#endif
  os::OsInstance inst(cfg);
  register_suite_programs(inst.programs());
  inst.boot();
  // Arm only after boot so boot-time executions cannot trigger the fault
  // (the plan was drawn from post-boot profiles anyway).
  reg.arm(inj.site, inj.type, inj.trigger_hit);
  const SuiteResult suite = run_suite(inst);
  reg.disarm();

#if OSIRIS_TRACE_ENABLED
  if (trace_out != nullptr && inst.tracer() != nullptr) {
    *trace_out = trace::format_text(inst.tracer()->merged(), *inst.tracer());
  }
#else
  if (trace_out != nullptr) trace_out->clear();
#endif

  switch (suite.outcome) {
    case os::OsInstance::Outcome::kShutdown:
      return RunClass::kShutdown;
    case os::OsInstance::Outcome::kCrashed:
    case os::OsInstance::Outcome::kHung:
      return RunClass::kCrash;
    case os::OsInstance::Outcome::kCompleted:
      if (!suite.driver_completed) return RunClass::kCrash;
      return suite.failed == 0 ? RunClass::kPass : RunClass::kFail;
  }
  return RunClass::kCrash;
}

unsigned campaign_jobs(unsigned requested) {
  return support::WorkerPool::resolve_jobs(requested);
}

std::vector<RunClass> run_plan(seep::Policy policy, const std::vector<Injection>& plan,
                               const CampaignOptions& opts) {
  std::vector<RunClass> classes(plan.size(), RunClass::kCrash);
  if (opts.traces != nullptr) opts.traces->assign(plan.size(), std::string());
  int done = 0;
  std::mutex progress_mu;

  support::WorkerPool::run_indexed(
      plan.size(), opts.jobs, [&](std::size_t i) {
        // Workers write disjoint, pre-sized slots: no lock needed.
        std::string* trace_out = opts.traces != nullptr ? &(*opts.traces)[i] : nullptr;
        classes[i] = run_one_injection(policy, plan[i], trace_out, opts);
        if (opts.progress) {
          // Increment under the same lock as the callback so `done` is
          // strictly monotonic in call order, not just in total.
          const std::lock_guard<std::mutex> lock(progress_mu);
          opts.progress(++done, static_cast<int>(plan.size()));
        }
      });
  return classes;
}

CampaignTotals run_campaign(seep::Policy policy, const std::vector<Injection>& plan,
                            const CampaignOptions& opts) {
  // Merge in plan order (not completion order): totals — and therefore every
  // table derived from them — are byte-identical across jobs settings.
  const std::vector<RunClass> classes = run_plan(policy, plan, opts);
  CampaignTotals totals;
  for (const RunClass c : classes) {
    switch (c) {
      case RunClass::kPass: ++totals.pass; break;
      case RunClass::kFail: ++totals.fail; break;
      case RunClass::kShutdown: ++totals.shutdown; break;
      case RunClass::kCrash: ++totals.crash; break;
    }
  }
  return totals;
}

// --- recurring-fault campaigns --------------------------------------------

std::vector<Injection> plan_recurring() {
  std::vector<Injection> plan;
  for (auto [site, hits] : profile_sites()) {
    // One persistent bug per site, planted mid-execution so the component
    // does useful work before the crash loop starts.
    plan.push_back(Injection{site, fi::FaultType::kNullDeref, 1 + hits / 2});
  }
  return plan;
}

RecurringClass run_one_recurring(seep::Policy policy, const Injection& inj) {
  fi::Registry& reg = fi::Registry::instance();
  reg.disarm();
  reg.reset_counts();

  os::OsConfig cfg;
  cfg.policy = policy;
  os::OsInstance inst(cfg);
  register_suite_programs(inst.programs());
  inst.boot();
  reg.arm_persistent(inj.site, inj.type, inj.trigger_hit);
  const SuiteResult suite = run_suite(inst);
  reg.disarm();

  // Default config always enables recovery, so the engine exists.
  const std::uint64_t quarantines = inst.engine().stats().quarantines;
  switch (suite.outcome) {
    case os::OsInstance::Outcome::kShutdown:
      return RecurringClass::kShutdown;
    case os::OsInstance::Outcome::kCrashed:
    case os::OsInstance::Outcome::kHung:
      return RecurringClass::kWedged;
    case os::OsInstance::Outcome::kCompleted:
      if (!suite.driver_completed) return RecurringClass::kWedged;
      // Surviving by quarantine (or with residual failures) is degraded-but-
      // alive — the machine is up, a component is parked or misbehaving.
      return (quarantines == 0 && suite.failed == 0) ? RecurringClass::kRecovered
                                                     : RecurringClass::kDegraded;
  }
  return RecurringClass::kWedged;
}

std::vector<RecurringClass> run_recurring_plan(seep::Policy policy,
                                               const std::vector<Injection>& plan,
                                               const CampaignOptions& opts) {
  std::vector<RecurringClass> classes(plan.size(), RecurringClass::kWedged);
  int done = 0;
  std::mutex progress_mu;

  support::WorkerPool::run_indexed(
      plan.size(), opts.jobs, [&](std::size_t i) {
        classes[i] = run_one_recurring(policy, plan[i]);
        if (opts.progress) {
          const std::lock_guard<std::mutex> lock(progress_mu);
          opts.progress(++done, static_cast<int>(plan.size()));
        }
      });
  return classes;
}

RecurringTotals run_recurring_campaign(seep::Policy policy,
                                       const std::vector<Injection>& plan,
                                       const CampaignOptions& opts) {
  const std::vector<RecurringClass> classes = run_recurring_plan(policy, plan, opts);
  RecurringTotals totals;
  for (const RecurringClass c : classes) {
    switch (c) {
      case RecurringClass::kRecovered: ++totals.recovered; break;
      case RecurringClass::kDegraded: ++totals.degraded; break;
      case RecurringClass::kShutdown: ++totals.shutdown; break;
      case RecurringClass::kWedged: ++totals.wedged; break;
    }
  }
  return totals;
}

// --- storm campaigns ------------------------------------------------------

namespace {

/// Boot endpoint a probe tag belongs to (-1 for tags without a server, e.g.
/// probes in shared library code). Only used to keep a flood from targeting
/// its own host, which would degenerate into a spin.
std::int32_t tag_endpoint(const char* tag) {
  const std::string_view t(tag);
  if (t == "pm") return kernel::kPmEp.value;
  if (t == "vm") return kernel::kVmEp.value;
  if (t == "vfs") return kernel::kVfsEp.value;
  if (t == "ds") return kernel::kDsEp.value;
  if (t == "rs") return kernel::kRsEp.value;
  return -1;
}

}  // namespace

std::vector<StormInjection> plan_storm() {
  // Per subsystem tag, keep the hottest profiled site: a storm planted on
  // the busiest path is guaranteed to fire mid-suite, and its host keeps
  // re-firing the persistent probe, which is what sustains a spin across
  // throttling until the ladder escalates.
  std::vector<std::pair<fi::Site*, std::uint64_t>> hottest;  // first-seen tag order
  for (auto [site, hits] : profile_sites()) {
    bool found = false;
    for (auto& [best, best_hits] : hottest) {
      if (std::string_view(best->tag) == site->tag) {
        if (hits > best_hits) {
          best = site;
          best_hits = hits;
        }
        found = true;
        break;
      }
    }
    if (!found) hottest.emplace_back(site, hits);
  }

  static constexpr std::int32_t kVictims[] = {kernel::kPmEp.value, kernel::kVmEp.value,
                                              kernel::kVfsEp.value, kernel::kDsEp.value};
  std::vector<StormInjection> plan;
  std::size_t next_victim = 0;
  for (auto [site, hits] : hottest) {
    StormInjection spin;
    spin.site = site;
    spin.type = fi::FaultType::kHandlerSpin;
    spin.trigger_hit = 1 + hits / 2;  // mid-suite, like plan_recurring
    plan.push_back(spin);

    StormInjection flood = spin;
    flood.type = fi::FaultType::kChannelFlood;
    // Floods accumulate over clock-pumped periods (unlike spins, which burn
    // the whole drain loop immediately): start them early so the pump has
    // most of the suite's virtual time, and make each period's burst large
    // enough to dominate a 64-delivery quantum next to legitimate traffic.
    flood.trigger_hit = 1 + hits / 10;
    flood.burst = 64;
    std::int32_t victim = kVictims[next_victim++ % std::size(kVictims)];
    if (victim == tag_endpoint(site->tag)) {
      victim = kVictims[next_victim++ % std::size(kVictims)];
    }
    flood.victim = victim;
    plan.push_back(flood);
  }
  // Control runs: monitor on, nothing armed. Any fever here is a false
  // positive; the acceptance bar is zero.
  plan.push_back(StormInjection{});
  plan.push_back(StormInjection{});
  return plan;
}

StormResult run_one_storm(seep::Policy policy, const StormInjection& s) {
  fi::Registry& reg = fi::Registry::instance();
  reg.disarm();
  reg.reset_counts();

  os::OsConfig cfg;
  cfg.policy = policy;
  cfg.health.enabled = true;
  os::OsInstance inst(cfg);
  register_suite_programs(inst.programs());
  inst.boot();
  if (s.site != nullptr) {
    reg.set_storm_plan(s.victim, s.burst);
    reg.arm_persistent(s.site, s.type, s.trigger_hit);
  }
  const SuiteResult suite = run_suite(inst);
  const bool fired = reg.storm_fired();
  reg.disarm();

  const recovery::EngineStats& es = inst.engine().stats();
  const kernel::KernelStats& ks = inst.kern().stats();
  StormResult r;
  r.fever_onsets = ks.fever_onsets;
  r.throttled_drops = ks.throttled_drops;
  r.quarantined = es.storm_quarantines > 0;
  r.disarmed = es.storm_disarms > 0;
  r.suite_clean = suite.outcome == os::OsInstance::Outcome::kCompleted &&
                  suite.driver_completed && suite.failed == 0;
  if (!fired) {
    // Nothing stormed: a fever is the monitor crying wolf.
    r.cls = ks.fever_onsets > 0 ? StormClass::kFalsePositive : StormClass::kClean;
  } else if (es.storm_detected) {
    r.cls = StormClass::kDetected;
    r.detection_latency = es.detection_latency_ticks;
  } else {
    r.cls = StormClass::kStarved;
  }
  return r;
}

std::vector<StormResult> run_storm_plan(seep::Policy policy,
                                        const std::vector<StormInjection>& plan,
                                        const CampaignOptions& opts) {
  std::vector<StormResult> results(plan.size());
  int done = 0;
  std::mutex progress_mu;

  support::WorkerPool::run_indexed(
      plan.size(), opts.jobs, [&](std::size_t i) {
        results[i] = run_one_storm(policy, plan[i]);
        if (opts.progress) {
          const std::lock_guard<std::mutex> lock(progress_mu);
          opts.progress(++done, static_cast<int>(plan.size()));
        }
      });
  return results;
}

StormTotals run_storm_campaign(seep::Policy policy, const std::vector<StormInjection>& plan,
                               const CampaignOptions& opts) {
  const std::vector<StormResult> results = run_storm_plan(policy, plan, opts);
  StormTotals totals;
  for (const StormResult& r : results) {
    switch (r.cls) {
      case StormClass::kDetected: ++totals.detected; break;
      case StormClass::kStarved: ++totals.starved; break;
      case StormClass::kFalsePositive: ++totals.false_positive; break;
      case StormClass::kClean: ++totals.clean; break;
    }
    if (r.cls == StormClass::kDetected) {
      totals.latency_sum += r.detection_latency;
      totals.latency_max = std::max(totals.latency_max, r.detection_latency);
      ++totals.latency_n;
    }
  }
  return totals;
}

}  // namespace osiris::workload
