// Process-management and signal tests (PM-heavy): tests 1-28.
#include "workload/suite_internal.hpp"

namespace osiris::workload {

using os::ISys;
using namespace osiris::servers;
using kernel::E_CHILD;
using kernel::E_INVAL;
using kernel::E_NOENT;
using kernel::E_SRCH;
using kernel::OK;

namespace {

std::int64_t t_getpid_stable(ISys& sys) {
  const std::int64_t a = sys.getpid();
  REQ(a > 0);
  REQ_EQ(sys.getpid(), a);
  REQ(sys.getppid() >= 0);
  return 0;
}

std::int64_t t_fork_returns_child_pid(ISys& sys) {
  const std::int64_t self = sys.getpid();
  const std::int64_t pid = sys.fork([](ISys& c) { c.exit(0); });
  REQ(pid > 0 && pid != self);
  std::int64_t status = -1;
  REQ_EQ(sys.wait_pid(pid, &status), pid);
  REQ_EQ(status, 0);
  return 0;
}

std::int64_t t_child_sees_own_pid(ISys& sys) {
  const std::int64_t parent = sys.getpid();
  const std::int64_t pid = sys.fork([parent](ISys& c) {
    c.exit(c.getpid() != parent && c.getppid() == parent ? 0 : 1);
  });
  REQ(pid > 0);
  std::int64_t status = -1;
  REQ_EQ(sys.wait_pid(pid, &status), pid);
  REQ_EQ(status, 0);
  return 0;
}

std::int64_t t_wait_any(ISys& sys) {
  std::int64_t p1 = sys.fork([](ISys& c) { c.exit(11); });
  std::int64_t p2 = sys.fork([](ISys& c) { c.exit(22); });
  REQ(p1 > 0 && p2 > 0);
  std::int64_t s1 = -1, s2 = -1;
  const std::int64_t r1 = sys.wait_pid(0, &s1);
  const std::int64_t r2 = sys.wait_pid(0, &s2);
  REQ((r1 == p1 && r2 == p2) || (r1 == p2 && r2 == p1));
  REQ((s1 == 11 && s2 == 22) || (s1 == 22 && s2 == 11));
  return 0;
}

std::int64_t t_wait_specific_pid(ISys& sys) {
  std::int64_t p1 = sys.fork([](ISys& c) { c.exit(1); });
  std::int64_t p2 = sys.fork([](ISys& c) { c.exit(2); });
  REQ(p1 > 0 && p2 > 0);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(p2, &s), p2);
  REQ_EQ(s, 2);
  REQ_EQ(sys.wait_pid(p1, &s), p1);
  REQ_EQ(s, 1);
  return 0;
}

std::int64_t t_wait_no_children(ISys& sys) {
  std::int64_t s = 0;
  REQ_EQ(sys.wait_pid(0, &s), E_CHILD);
  return 0;
}

std::int64_t t_wait_blocks_until_exit(ISys& sys) {
  // The child does real work before exiting; the parent's wait must block.
  const std::int64_t pid = sys.fork([](ISys& c) {
    for (int i = 0; i < 20; ++i) c.getpid();
    c.exit(5);
  });
  REQ(pid > 0);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 5);
  return 0;
}

std::int64_t t_exit_status_range(ISys& sys) {
  for (std::int64_t code : {0, 1, 77, 255}) {
    const std::int64_t pid = sys.fork([code](ISys& c) { c.exit(code); });
    REQ(pid > 0);
    std::int64_t s = -1;
    REQ_EQ(sys.wait_pid(pid, &s), pid);
    REQ_EQ(s, code);
  }
  return 0;
}

std::int64_t t_nested_fork(ISys& sys) {
  const std::int64_t pid = sys.fork([](ISys& c) {
    const std::int64_t gpid = c.fork([](ISys& g) { g.exit(3); });
    if (gpid <= 0) c.exit(1);
    std::int64_t gs = -1;
    if (c.wait_pid(gpid, &gs) != gpid || gs != 3) c.exit(2);
    c.exit(0);
  });
  REQ(pid > 0);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 0);
  return 0;
}

std::int64_t t_orphan_reparented(ISys& sys) {
  // Child forks a grandchild and exits immediately; the grandchild is
  // reparented to init and must not wedge anything.
  const std::int64_t pid = sys.fork([](ISys& c) {
    c.fork([](ISys& g) { g.exit(0); });
    c.exit(0);
  });
  REQ(pid > 0);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 0);
  return 0;
}

std::int64_t t_fork_many(ISys& sys) {
  constexpr int kKids = 8;
  std::int64_t pids[kKids];
  for (int i = 0; i < kKids; ++i) {
    pids[i] = sys.fork([i](ISys& c) { c.exit(i); });
    REQ(pids[i] > 0);
  }
  std::int64_t seen_mask = 0;
  for (int i = 0; i < kKids; ++i) {
    std::int64_t s = -1;
    const std::int64_t got = sys.wait_pid(0, &s);
    REQ(got > 0 && s >= 0 && s < kKids);
    seen_mask |= 1LL << s;
  }
  REQ_EQ(seen_mask, (1LL << kKids) - 1);
  return 0;
}

std::int64_t t_exec_basic(ISys& sys) {
  const std::int64_t pid = sys.fork([](ISys& c) {
    c.exec("/bin/true");
    c.exit(99);  // unreachable on success
  });
  REQ(pid > 0);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 0);
  return 0;
}

std::int64_t t_exec_status(ISys& sys) {
  const std::int64_t pid = sys.fork([](ISys& c) {
    c.exec("/bin/false");
    c.exit(99);
  });
  REQ(pid > 0);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 1);
  return 0;
}

std::int64_t t_exec_missing_binary(ISys& sys) {
  REQ_EQ(sys.exec("/bin/definitely-not-here"), E_NOENT);
  // Still alive and functional afterwards.
  REQ(sys.getpid() > 0);
  return 0;
}

std::int64_t t_exec_keeps_pid(ISys& sys) {
  const std::int64_t pid = sys.fork([](ISys& c) {
    const std::int64_t before = c.getpid();
    // /bin/pidcheck exits 0 iff its pid equals the value in the DS.
    c.ds_publish("test.pid", static_cast<std::uint64_t>(before));
    c.exec("/bin/pidcheck");
    c.exit(99);
  });
  REQ(pid > 0);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 0);
  return 0;
}

std::int64_t t_procstat(ISys& sys) {
  REQ_EQ(sys.procstat(sys.getpid()), 1);  // running
  REQ_EQ(sys.procstat(54321), E_SRCH);
  return 0;
}

std::int64_t t_uid_roundtrip(ISys& sys) {
  const std::int64_t pid = sys.fork([](ISys& c) {
    if (c.getuid() != 0) c.exit(1);
    if (c.setuid(1000) != OK) c.exit(2);
    c.exit(c.getuid() == 1000 ? 0 : 3);
  });
  REQ(pid > 0);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 0);
  // The parent's uid is unaffected by the child's setuid.
  REQ_EQ(sys.getuid(), 0);
  return 0;
}

std::int64_t t_brk_grow_shrink(ISys& sys) {
  const std::int64_t pid = sys.fork([](ISys& c) {
    if (c.brk(0x10000 + 8 * 4096) < 0) c.exit(1);
    if (c.brk(0x10000 + 2 * 4096) < 0) c.exit(2);
    if (c.brk(0x1000) != E_INVAL) c.exit(3);  // below the floor
    c.exit(0);
  });
  REQ(pid > 0);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 0);
  return 0;
}

std::int64_t t_times_monotonic(ISys& sys) {
  std::uint64_t t1 = 0, t2 = 0;
  REQ_EQ(sys.times(&t1), OK);
  for (int i = 0; i < 5; ++i) sys.getpid();
  REQ_EQ(sys.times(&t2), OK);
  REQ(t2 >= t1);
  return 0;
}

std::int64_t t_uname(ISys& sys) {
  std::string name;
  REQ_EQ(sys.uname(&name), OK);
  REQ_EQ(name, std::string("osiris"));
  return 0;
}

// --- signals ---------------------------------------------------------

std::int64_t t_kill_bad_args(ISys& sys) {
  REQ_EQ(sys.kill(sys.getpid(), 0), E_INVAL);
  REQ_EQ(sys.kill(sys.getpid(), 64), E_INVAL);
  REQ_EQ(sys.kill(99999, kSigTerm), E_SRCH);
  return 0;
}

std::int64_t t_sigkill_child(ISys& sys) {
  const std::int64_t pid = sys.fork([](ISys& c) {
    for (;;) c.getpid();  // spin until killed
  });
  REQ(pid > 0);
  REQ_EQ(sys.kill(pid, kSigKill), OK);
  std::int64_t s = 0;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, -9);
  return 0;
}

std::int64_t t_signal_pending(ISys& sys) {
  const std::int64_t pid = sys.fork([](ISys& c) {
    // Wait until the TERM signal shows up in the pending set.
    for (int i = 0; i < 10000; ++i) {
      std::uint64_t mask = 0;
      if (c.sigpending(&mask) != OK) c.exit(1);
      if ((mask & (1ULL << kSigTerm)) != 0) c.exit(0);
    }
    c.exit(2);
  });
  REQ(pid > 0);
  REQ_EQ(sys.kill(pid, kSigTerm), OK);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 0);
  return 0;
}

std::int64_t t_sigaction_install_reset(ISys& sys) {
  REQ_EQ(sys.sigaction(kSigUsr1, true), OK);
  REQ_EQ(sys.sigaction(kSigUsr1, false), OK);
  REQ_EQ(sys.sigaction(kSigKill, true), E_INVAL);
  REQ_EQ(sys.sigaction(0, true), E_INVAL);
  return 0;
}

std::int64_t t_sigchld_pending_on_exit(ISys& sys) {
  const std::int64_t pid = sys.fork([](ISys& c) {
    if (c.sigaction(kSigChld, true) != OK) c.exit(1);
    const std::int64_t g = c.fork([](ISys& gc) { gc.exit(0); });
    if (g <= 0) c.exit(2);
    // Busy-wait for SIGCHLD to be posted.
    for (int i = 0; i < 10000; ++i) {
      std::uint64_t mask = 0;
      if (c.sigpending(&mask) != OK) c.exit(3);
      if ((mask & (1ULL << kSigChld)) != 0) {
        std::int64_t gs = -1;
        c.exit(c.wait_pid(g, &gs) == g ? 0 : 4);
      }
    }
    c.exit(5);
  });
  REQ(pid > 0);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 0);
  return 0;
}

std::int64_t t_kill_self_nonfatal(ISys& sys) {
  const std::int64_t pid = sys.fork([](ISys& c) {
    if (c.kill(c.getpid(), kSigUsr2) != OK) c.exit(1);
    std::uint64_t mask = 0;
    if (c.sigpending(&mask) != OK) c.exit(2);
    c.exit((mask & (1ULL << kSigUsr2)) != 0 ? 0 : 3);
  });
  REQ(pid > 0);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 0);
  return 0;
}

std::int64_t t_kill_zombie_is_error(ISys& sys) {
  const std::int64_t pid = sys.fork([](ISys& c) { c.exit(0); });
  REQ(pid > 0);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  // The pid is fully reaped now: signalling it must fail.
  REQ_EQ(sys.kill(pid, kSigTerm), E_SRCH);
  return 0;
}

std::int64_t t_sigterm_kills_parents_view(ISys& sys) {
  // TERM with no handler stays pending in our model (no default-kill);
  // verify the process remains runnable.
  const std::int64_t pid = sys.fork([](ISys& c) {
    for (int i = 0; i < 50; ++i) c.getpid();
    c.exit(0);
  });
  REQ(pid > 0);
  sys.kill(pid, kSigTerm);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 0);
  return 0;
}

}  // namespace

void add_proc_tests(std::vector<SuiteTest>& out) {
  auto add = [&out](const char* name, const char* group,
                    std::function<std::int64_t(ISys&)> body) {
    out.push_back(SuiteTest{name, group, std::move(body)});
  };
  add("getpid-stable", "proc", t_getpid_stable);
  add("fork-returns-child-pid", "proc", t_fork_returns_child_pid);
  add("child-sees-own-pid", "proc", t_child_sees_own_pid);
  add("wait-any", "proc", t_wait_any);
  add("wait-specific-pid", "proc", t_wait_specific_pid);
  add("wait-no-children", "proc", t_wait_no_children);
  add("wait-blocks-until-exit", "proc", t_wait_blocks_until_exit);
  add("exit-status-range", "proc", t_exit_status_range);
  add("nested-fork", "proc", t_nested_fork);
  add("orphan-reparented", "proc", t_orphan_reparented);
  add("fork-many", "proc", t_fork_many);
  add("exec-basic", "proc", t_exec_basic);
  add("exec-status", "proc", t_exec_status);
  add("exec-missing-binary", "proc", t_exec_missing_binary);
  add("exec-keeps-pid", "proc", t_exec_keeps_pid);
  add("procstat", "proc", t_procstat);
  add("uid-roundtrip", "proc", t_uid_roundtrip);
  add("brk-grow-shrink", "proc", t_brk_grow_shrink);
  add("times-monotonic", "proc", t_times_monotonic);
  add("uname", "proc", t_uname);
  add("kill-bad-args", "signal", t_kill_bad_args);
  add("sigkill-child", "signal", t_sigkill_child);
  add("signal-pending", "signal", t_signal_pending);
  add("sigaction-install-reset", "signal", t_sigaction_install_reset);
  add("sigchld-pending-on-exit", "signal", t_sigchld_pending_on_exit);
  add("kill-self-nonfatal", "signal", t_kill_self_nonfatal);
  add("kill-zombie-is-error", "signal", t_kill_zombie_is_error);
  add("sigterm-stays-pending", "signal", t_sigterm_kills_parents_view);
}

}  // namespace osiris::workload
