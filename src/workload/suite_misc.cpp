// Data-store, virtual-memory and cross-cutting tests: tests 65-89.
#include "workload/suite_internal.hpp"

namespace osiris::workload {

using os::ISys;
using os::StatResult;
using namespace osiris::servers;
using kernel::E_INVAL;
using kernel::E_NOENT;
using kernel::OK;

namespace {

// --- data store (DS) -----------------------------------------------------

std::int64_t t_ds_publish_retrieve(ISys& sys) {
  REQ_EQ(sys.ds_publish("suite.k1", 111), OK);
  std::uint64_t v = 0;
  REQ_EQ(sys.ds_retrieve("suite.k1", &v), OK);
  REQ_EQ(v, 111u);
  REQ_EQ(sys.ds_delete("suite.k1"), OK);
  return 0;
}

std::int64_t t_ds_overwrite(ISys& sys) {
  REQ_EQ(sys.ds_publish("suite.k2", 1), OK);
  REQ_EQ(sys.ds_publish("suite.k2", 2), OK);
  std::uint64_t v = 0;
  REQ_EQ(sys.ds_retrieve("suite.k2", &v), OK);
  REQ_EQ(v, 2u);
  REQ_EQ(sys.ds_delete("suite.k2"), OK);
  return 0;
}

std::int64_t t_ds_missing_key(ISys& sys) {
  std::uint64_t v = 0;
  REQ_EQ(sys.ds_retrieve("suite.absent", &v), E_NOENT);
  REQ_EQ(sys.ds_delete("suite.absent"), E_NOENT);
  return 0;
}

std::int64_t t_ds_empty_key_invalid(ISys& sys) {
  REQ_EQ(sys.ds_publish("", 5), E_INVAL);
  return 0;
}

std::int64_t t_ds_many_keys(ISys& sys) {
  for (int i = 0; i < 30; ++i) {
    REQ_EQ(sys.ds_publish("suite.many." + std::to_string(i), i * 10), OK);
  }
  for (int i = 0; i < 30; ++i) {
    std::uint64_t v = 0;
    REQ_EQ(sys.ds_retrieve("suite.many." + std::to_string(i), &v), OK);
    REQ_EQ(v, static_cast<std::uint64_t>(i) * 10);
  }
  for (int i = 0; i < 30; ++i) {
    REQ_EQ(sys.ds_delete("suite.many." + std::to_string(i)), OK);
  }
  return 0;
}

std::int64_t t_ds_subscribe_notify(ISys& sys) {
  REQ_EQ(sys.ds_subscribe("suite.sub."), OK);
  REQ_EQ(sys.ds_publish("suite.sub.x", 7), OK);
  std::uint64_t events = 99;
  REQ_EQ(sys.ds_check(&events), OK);
  REQ_EQ(sys.ds_delete("suite.sub.x"), OK);
  return 0;
}

std::int64_t t_ds_shared_across_procs(ISys& sys) {
  REQ_EQ(sys.ds_publish("suite.shared", 42), OK);
  const std::int64_t pid = sys.fork([](ISys& c) {
    std::uint64_t v = 0;
    if (c.ds_retrieve("suite.shared", &v) != OK || v != 42) c.exit(1);
    if (c.ds_publish("suite.shared", 43) != OK) c.exit(2);
    c.exit(0);
  });
  REQ(pid > 0);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 0);
  std::uint64_t v = 0;
  REQ_EQ(sys.ds_retrieve("suite.shared", &v), OK);
  REQ_EQ(v, 43u);
  REQ_EQ(sys.ds_delete("suite.shared"), OK);
  return 0;
}

std::int64_t t_ds_sys_release(ISys& sys) {
  std::uint64_t v = 0;
  REQ_EQ(sys.ds_retrieve("sys.release", &v), OK);
  REQ(v > 0);
  return 0;
}

// --- virtual memory (VM) ----------------------------------------------------

std::int64_t t_mmap_munmap(ISys& sys) {
  const std::int64_t region = sys.mmap(64 * 1024);
  REQ(region > 0);
  REQ_EQ(sys.munmap(region), OK);
  REQ_EQ(sys.munmap(region), E_INVAL);  // already unmapped
  return 0;
}

std::int64_t t_mmap_zero_invalid(ISys& sys) {
  REQ_EQ(sys.mmap(0), E_INVAL);
  return 0;
}

std::int64_t t_mmap_regions_independent(ISys& sys) {
  const std::int64_t r1 = sys.mmap(4096);
  const std::int64_t r2 = sys.mmap(8192);
  REQ(r1 > 0 && r2 > 0 && r1 != r2);
  REQ_EQ(sys.munmap(r1), OK);
  REQ_EQ(sys.munmap(r2), OK);
  return 0;
}

std::int64_t t_meminfo_accounting(ISys& sys) {
  std::uint64_t free0 = 0, total = 0;
  REQ_EQ(sys.getmeminfo(&free0, &total), OK);
  REQ(total > 0 && free0 <= total);
  const std::int64_t region = sys.mmap(16 * 4096);
  REQ(region > 0);
  std::uint64_t free1 = 0;
  REQ_EQ(sys.getmeminfo(&free1, nullptr), OK);
  REQ_EQ(free0 - free1, 16u);
  REQ_EQ(sys.munmap(region), OK);
  std::uint64_t free2 = 0;
  REQ_EQ(sys.getmeminfo(&free2, nullptr), OK);
  REQ_EQ(free2, free0);
  return 0;
}

std::int64_t t_brk_meminfo(ISys& sys) {
  const std::int64_t pid = sys.fork([](ISys& c) {
    std::uint64_t free0 = 0;
    if (c.getmeminfo(&free0, nullptr) != OK) c.exit(1);
    if (c.brk(0x10000 + 4 * 4096) < 0) c.exit(2);
    std::uint64_t free1 = 0;
    if (c.getmeminfo(&free1, nullptr) != OK) c.exit(3);
    c.exit(free0 - free1 == 4 ? 0 : 4);
  });
  REQ(pid > 0);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 0);
  return 0;
}

std::int64_t t_exit_releases_memory(ISys& sys) {
  std::uint64_t free0 = 0;
  REQ_EQ(sys.getmeminfo(&free0, nullptr), OK);
  const std::int64_t pid = sys.fork([](ISys& c) {
    if (c.mmap(32 * 4096) <= 0) c.exit(1);
    c.exit(0);  // exits without munmap: VM must reclaim
  });
  REQ(pid > 0);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 0);
  std::uint64_t free1 = 0;
  REQ_EQ(sys.getmeminfo(&free1, nullptr), OK);
  REQ_EQ(free1, free0);
  return 0;
}

std::int64_t t_fork_copies_address_space(ISys& sys) {
  std::uint64_t free0 = 0;
  REQ_EQ(sys.getmeminfo(&free0, nullptr), OK);
  const std::int64_t pid = sys.fork([free0](ISys& c) {
    std::uint64_t free1 = 0;
    if (c.getmeminfo(&free1, nullptr) != OK) c.exit(1);
    c.exit(free1 < free0 ? 0 : 2);  // the child's copy consumed frames
  });
  REQ(pid > 0);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 0);
  return 0;
}

// --- cross-cutting -------------------------------------------------------

std::int64_t t_shell_script(ISys& sys) {
  // Run the canned shell script via fork+exec, like unixbench shell1.
  const std::int64_t pid = sys.fork([](ISys& c) {
    c.exec("/bin/sh_script");
    c.exit(99);
  });
  REQ(pid > 0);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 0);
  return 0;
}

std::int64_t t_exec_chain(ISys& sys) {
  // chain0 execs chain1 which execs true.
  const std::int64_t pid = sys.fork([](ISys& c) {
    c.exec("/bin/chain0");
    c.exit(99);
  });
  REQ(pid > 0);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 0);
  return 0;
}

std::int64_t t_pipe_between_execd_children(ISys& sys) {
  // Parent writes into a pipe; an exec'd child (the "wc" program) counts
  // bytes from the inherited fd published in the data store.
  std::int64_t fds[2];
  REQ_EQ(sys.pipe(fds), OK);
  REQ_EQ(sys.ds_publish("suite.wc.fd", static_cast<std::uint64_t>(fds[0])), OK);
  const std::int64_t wfd = fds[1];
  const std::int64_t pid = sys.fork([wfd](ISys& c) {
    c.close(wfd);  // or the child would never see EOF on its read end
    c.exec("/bin/wc_fd");
    c.exit(99);
  });
  REQ(pid > 0);
  REQ_EQ(wr(sys, fds[1], "12345678"), 8);
  REQ_EQ(sys.close(fds[1]), OK);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 8);  // wc_fd exits with the byte count
  REQ_EQ(sys.close(fds[0]), OK);
  return 0;
}

std::int64_t t_file_passed_across_exec(ISys& sys) {
  const std::int64_t fd = sys.open("/tmp/xexec", O_CREAT | O_WRONLY);
  REQ(fd >= 0);
  REQ_EQ(wr(sys, fd, "payload"), 7);
  REQ_EQ(sys.close(fd), OK);
  const std::int64_t pid = sys.fork([](ISys& c) {
    c.exec("/bin/cat_size");  // stats /tmp/xexec, exits with its size
    c.exit(99);
  });
  REQ(pid > 0);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 7);
  REQ_EQ(sys.unlink("/tmp/xexec"), OK);
  return 0;
}

std::int64_t t_fork_storm_with_files(ISys& sys) {
  for (int round = 0; round < 4; ++round) {
    std::int64_t pids[4];
    for (int i = 0; i < 4; ++i) {
      pids[i] = sys.fork([i, round](ISys& c) {
        const std::string path = "/tmp/storm" + std::to_string(i);
        const std::int64_t f = c.open(path, O_CREAT | O_RDWR | O_TRUNC);
        if (f < 0) c.exit(1);
        if (wr(c, f, std::to_string(round)) < 1) c.exit(2);
        if (c.close(f) != OK) c.exit(3);
        c.exit(0);
      });
      if (pids[i] <= 0) return __LINE__;
    }
    for (int i = 0; i < 4; ++i) {
      std::int64_t s = -1;
      REQ(sys.wait_pid(0, &s) > 0);
      REQ_EQ(s, 0);
    }
  }
  for (int i = 0; i < 4; ++i) sys.unlink("/tmp/storm" + std::to_string(i));
  return 0;
}

std::int64_t t_kill_blocked_reader(ISys& sys) {
  // SIGKILL must terminate a child blocked inside a pipe read.
  std::int64_t fds[2];
  REQ_EQ(sys.pipe(fds), OK);
  const std::int64_t pid = sys.fork([&](ISys& c) {
    char b;
    rd(c, fds[0], &b, 1);  // blocks forever
    c.exit(0);
  });
  REQ(pid > 0);
  for (int i = 0; i < 5; ++i) sys.getpid();  // let the child block
  REQ_EQ(sys.kill(pid, kSigKill), OK);
  std::int64_t s = 0;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, -9);
  sys.close(fds[0]);
  sys.close(fds[1]);
  return 0;
}

std::int64_t t_uname_after_activity(ISys& sys) {
  for (int i = 0; i < 3; ++i) {
    std::string name;
    REQ_EQ(sys.uname(&name), OK);
    REQ(!name.empty());
    std::uint64_t t = 0;
    REQ_EQ(sys.times(&t), OK);
  }
  // Health monitoring: restart counts are queryable (non-negative). A
  // recovered component is healthy — a nonzero count is not a failure.
  for (std::int32_t ep : {2, 3, 4, 5}) {
    REQ(sys.rs_status(ep) >= 0);
  }
  return 0;
}

std::int64_t t_readdir_root(ISys& sys) {
  bool saw_bin = false, saw_tmp = false;
  for (std::uint64_t i = 0;; ++i) {
    std::string name;
    const std::int64_t r = sys.readdir("/", i, &name);
    if (r == E_NOENT) break;
    REQ(r > 0);
    if (name == "bin") saw_bin = true;
    if (name == "tmp") saw_tmp = true;
  }
  REQ(saw_bin && saw_tmp);
  return 0;
}

std::int64_t t_full_syscall_mix(ISys& sys) {
  // A little bit of everything, back to back (cross-server traffic).
  REQ(sys.getpid() > 0);
  const std::int64_t fd = sys.open("/tmp/mix", O_CREAT | O_RDWR);
  REQ(fd >= 0);
  REQ_EQ(wr(sys, fd, "mix"), 3);
  REQ_EQ(sys.ds_publish("suite.mix", 1), OK);
  const std::int64_t region = sys.mmap(4096);
  REQ(region > 0);
  const std::int64_t pid = sys.fork([](ISys& c) { c.exit(c.getuid() == 0 ? 0 : 1); });
  REQ(pid > 0);
  std::int64_t s = -1;
  REQ_EQ(sys.wait_pid(pid, &s), pid);
  REQ_EQ(s, 0);
  REQ_EQ(sys.munmap(region), OK);
  REQ(sys.rs_status(2) >= 0);  // RS answers status queries mid-mix
  REQ_EQ(sys.ds_delete("suite.mix"), OK);
  REQ_EQ(sys.close(fd), OK);
  REQ_EQ(sys.unlink("/tmp/mix"), OK);
  return 0;
}

std::int64_t t_error_codes_are_stable(ISys& sys) {
  // Programs rely on exact error values (E_CRASH handling depends on this).
  REQ_EQ(sys.open("/nope/nothere", O_RDONLY), E_NOENT);
  REQ_EQ(sys.kill(-5, 1000), E_INVAL);
  std::uint64_t v;
  REQ_EQ(sys.ds_retrieve("suite.nokey", &v), E_NOENT);
  REQ_EQ(sys.munmap(424242), E_INVAL);
  return 0;
}

}  // namespace

void add_misc_tests(std::vector<SuiteTest>& out) {
  auto add = [&out](const char* name, const char* group,
                    std::function<std::int64_t(os::ISys&)> body) {
    out.push_back(SuiteTest{name, group, std::move(body)});
  };
  add("ds-publish-retrieve", "ds", t_ds_publish_retrieve);
  add("ds-overwrite", "ds", t_ds_overwrite);
  add("ds-missing-key", "ds", t_ds_missing_key);
  add("ds-empty-key-invalid", "ds", t_ds_empty_key_invalid);
  add("ds-many-keys", "ds", t_ds_many_keys);
  add("ds-subscribe-notify", "ds", t_ds_subscribe_notify);
  add("ds-shared-across-procs", "ds", t_ds_shared_across_procs);
  add("ds-sys-release", "ds", t_ds_sys_release);
  add("mmap-munmap", "vm", t_mmap_munmap);
  add("mmap-zero-invalid", "vm", t_mmap_zero_invalid);
  add("mmap-regions-independent", "vm", t_mmap_regions_independent);
  add("meminfo-accounting", "vm", t_meminfo_accounting);
  add("brk-meminfo", "vm", t_brk_meminfo);
  add("exit-releases-memory", "vm", t_exit_releases_memory);
  add("fork-copies-address-space", "vm", t_fork_copies_address_space);
  add("shell-script", "cross", t_shell_script);
  add("exec-chain", "cross", t_exec_chain);
  add("pipe-into-execd-child", "cross", t_pipe_between_execd_children);
  add("file-across-exec", "cross", t_file_passed_across_exec);
  add("fork-storm-with-files", "cross", t_fork_storm_with_files);
  add("kill-blocked-reader", "cross", t_kill_blocked_reader);
  add("uname-after-activity", "cross", t_uname_after_activity);
  add("readdir-root", "cross", t_readdir_root);
  add("full-syscall-mix", "cross", t_full_syscall_mix);
  add("error-codes-stable", "cross", t_error_codes_are_stable);
}

}  // namespace osiris::workload
