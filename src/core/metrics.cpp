#include "core/metrics.hpp"

#include "servers/fom.hpp"
#include "support/table_printer.hpp"

namespace osiris::core {

SystemMetrics collect_metrics(os::OsInstance& inst) {
  SystemMetrics m;
  std::uint64_t total_hits = 0;
  double weighted = 0.0;
  for (recovery::Recoverable* comp : inst.components()) {
    ComponentMetrics cm;
    cm.name = std::string(comp->name());
    const seep::WindowStats& ws = comp->window().stats();
    cm.recovery_coverage = ws.coverage();
    cm.windows_opened = ws.opened;
    cm.closed_by_seep = ws.closed_by_seep;
    cm.closed_by_yield = ws.closed_by_yield;
    cm.state_bytes = comp->data_section_size();
    cm.clone_bytes = inst.engine().clone_bytes(comp->endpoint());
    const ckpt::UndoLogStats& ls = comp->ckpt_context().log().stats();
    cm.max_undo_log_bytes = ls.max_log_bytes;
    cm.undo_records = ls.records;
    cm.checkpoints_skipped = ls.checkpoints_skipped;
    cm.aux_bytes = comp->aux_section_size();
    cm.page_records = ls.page_records;
    cm.page_bytes_logged = ls.page_bytes_logged;
    cm.page_compactions = ls.page_compactions;
    cm.compacted_bytes = ls.compacted_bytes;
    cm.delta_restart_bytes = ls.delta_restart_bytes;
    cm.full_copy_bytes = ls.full_copy_bytes;
    cm.recoveries = inst.engine().recoveries_of(comp->endpoint());
    if (const servers::FomStats* fs = comp->fom_stats()) {
      cm.fom_admitted = fs->admitted;
      cm.fom_parks = fs->parks;
      cm.fom_resumes = fs->resumes;
      cm.fom_aborts = fs->aborts;
      cm.fom_sync_fallbacks = fs->sync_fallbacks;
      cm.fom_in_flight_high_water = fs->in_flight_high_water;
      cm.fom_wait_ticks = fs->wait_ticks_total;
    }
#if OSIRIS_TRACE_ENABLED
    if (const trace::Tracer* tracer = inst.tracer()) {
      if (const trace::EventRing* ring = tracer->ring(comp->endpoint().value)) {
        cm.trace_events = ring->size();
        cm.trace_dropped = ring->dropped();
        cm.trace_high_water = ring->high_water();
      }
    }
#endif
    const std::uint64_t hits = ws.probe_hits_inside + ws.probe_hits_outside;
    total_hits += hits;
    weighted += ws.coverage() * static_cast<double>(hits);
    m.components.push_back(std::move(cm));
  }
  m.weighted_coverage = total_hits > 0 ? weighted / static_cast<double>(total_hits) : 0.0;

  const kernel::KernelStats& ks = inst.kern().stats();
  m.messages = ks.messages_queued;
  m.nested_calls = ks.nested_calls;
  m.crashes = ks.crashes;
  m.hangs = ks.hangs;

  m.queue_high_water = ks.queue_high_water;
  m.arena_spills = ks.arena_spills;
  m.batches = ks.batches;
  m.batched_messages = ks.batched_messages;
  for (std::size_t i = 0; i < kernel::kBatchHistBuckets; ++i) m.batch_hist[i] = ks.batch_hist[i];
  m.safecopy_bytes = ks.safecopy_bytes;
  m.grant_bypass_bytes = ks.grant_bypass_bytes;
  m.grant_spans = ks.grant_spans;

  m.health_charges = ks.health_charges;
  m.fever_onsets = ks.fever_onsets;
  m.throttled_drops = ks.throttled_drops;
  m.starved_quanta = ks.starved_quanta;
  m.dispatch_aborts = ks.dispatch_aborts;

  const recovery::EngineStats& es = inst.engine().stats();
  m.restarts = es.restarts;
  m.rollbacks = es.rollbacks;
  m.error_replies = es.error_replies;
  m.shutdowns = es.shutdowns;
  m.fom_reconciles = es.fom_reconciles;
  m.storm_throttles = es.storm_throttles;
  m.storm_quarantines = es.storm_quarantines;
  m.detection_latency_ticks = es.detection_latency_ticks;
  m.storm_detected = es.storm_detected;

  m.classification_defaults = inst.classification().default_lookups();

#if OSIRIS_TRACE_ENABLED
  if (const trace::Tracer* tracer = inst.tracer()) {
    m.trace_active = true;
    m.trace_emitted = tracer->events_emitted();
    m.trace_dropped = tracer->total_dropped();
  }
#endif
  return m;
}

std::string SystemMetrics::report() const {
  std::vector<std::string> headers = {"Component", "Coverage", "Windows", "Closed(SEEP/yield)",
                                      "State B", "Clone B", "MaxLog B", "Recoveries"};
  if (trace_active) {
    headers.push_back("TraceHW");
    headers.push_back("TraceDrop");
  }
  TablePrinter t(headers);
  for (const ComponentMetrics& c : components) {
    std::vector<std::string> row = {
        c.name, TablePrinter::pct(c.recovery_coverage), std::to_string(c.windows_opened),
        std::to_string(c.closed_by_seep) + "/" + std::to_string(c.closed_by_yield),
        std::to_string(c.state_bytes), std::to_string(c.clone_bytes),
        std::to_string(c.max_undo_log_bytes), std::to_string(c.recoveries)};
    if (trace_active) {
      row.push_back(std::to_string(c.trace_high_water));
      row.push_back(std::to_string(c.trace_dropped));
    }
    t.add_row(std::move(row));
  }
  std::string out = t.str();
  out += "weighted coverage: " + TablePrinter::pct(weighted_coverage) + "\n";
  out += "kernel: " + std::to_string(messages) + " messages, " + std::to_string(nested_calls) +
         " nested calls, " + std::to_string(crashes) + " crashes, " + std::to_string(hangs) +
         " hangs\n";
  out += "fastpath: queue high-water " + std::to_string(queue_high_water) + ", " +
         std::to_string(arena_spills) + " arena spills, " + std::to_string(batches) +
         " batches (" + std::to_string(batched_messages) + " msgs; sizes";
  for (std::size_t i = 0; i < kernel::kBatchHistBuckets; ++i) {
    out += (i == 0 ? " " : "/") + std::to_string(batch_hist[i]);
  }
  out += "), " + std::to_string(safecopy_bytes) + " B safecopied, " +
         std::to_string(grant_bypass_bytes) + " B zero-copy over " +
         std::to_string(grant_spans) + " spans\n";
  out += "engine: " + std::to_string(restarts) + " restarts, " + std::to_string(rollbacks) +
         " rollbacks, " + std::to_string(error_replies) + " error replies, " +
         std::to_string(shutdowns) + " shutdowns\n";
  out += "classification: " + std::to_string(classification_defaults) +
         " default-trait lookups\n";
  for (const ComponentMetrics& c : components) {
    if (c.fom_admitted == 0) continue;
    out += "fom[" + c.name + "]: " + std::to_string(c.fom_admitted) + " admitted, " +
           std::to_string(c.fom_parks) + " parks, " + std::to_string(c.fom_resumes) +
           " resumes, " + std::to_string(c.fom_aborts) + " aborts, " +
           std::to_string(c.fom_sync_fallbacks) + " sync fallbacks, high-water " +
           std::to_string(c.fom_in_flight_high_water) + ", " +
           std::to_string(c.fom_wait_ticks) + " wait ticks";
    if (fom_reconciles > 0) out += ", " + std::to_string(fom_reconciles) + " reconciles";
    out += "\n";
  }
  for (const ComponentMetrics& c : components) {
    // Printed only for page-tier components so the default (flag-off) report
    // stays byte-identical, like the fom[] and health lines above.
    if (c.aux_bytes == 0 && c.page_records == 0) continue;
    out += "pages[" + c.name + "]: " + std::to_string(c.aux_bytes) + " B aux, " +
           std::to_string(c.page_records) + " page records (" +
           std::to_string(c.page_bytes_logged) + " B), " +
           std::to_string(c.page_compactions) + " compactions (" +
           std::to_string(c.compacted_bytes) + " B), restart delta " +
           std::to_string(c.delta_restart_bytes) + " B vs full " +
           std::to_string(c.full_copy_bytes) + " B\n";
  }
  if (fever_onsets > 0 || health_charges > 0 || storm_throttles > 0 || dispatch_aborts > 0) {
    out += "health: " + std::to_string(health_charges) + " charges, " +
           std::to_string(fever_onsets) + " fever onsets, " + std::to_string(throttled_drops) +
           " throttled drops, " + std::to_string(starved_quanta) + " starved quanta, " +
           std::to_string(storm_throttles) + " throttles, " + std::to_string(storm_quarantines) +
           " storm quarantines";
    if (storm_detected) {
      out += ", detection latency " + std::to_string(detection_latency_ticks) + " ticks";
    }
    if (dispatch_aborts > 0) out += ", " + std::to_string(dispatch_aborts) + " dispatch aborts";
    out += "\n";
  }
  if (trace_active) {
    out += "trace: " + std::to_string(trace_emitted) + " events emitted, " +
           std::to_string(trace_dropped) + " dropped\n";
  }
  return out;
}

}  // namespace osiris::core
