// Umbrella header: the OSIRIS public API.
//
// A downstream user typically needs only:
//
//   #include "core/osiris.hpp"
//
//   osiris::os::OsConfig cfg;                 // policy, instrumentation mode
//   osiris::os::OsInstance machine(cfg);
//   machine.programs().add("myprog", ...);    // exec()-able programs
//   machine.boot();
//   auto outcome = machine.run([](osiris::os::ISys& sys) { ... });
//
// plus, for experiments, the fault-injection registry (osiris::fi), the
// campaign/coverage drivers (osiris::workload) and the metrics snapshot
// below.
#pragma once

#include "ckpt/cell.hpp"
#include "ckpt/context.hpp"
#include "ckpt/undo_log.hpp"
#include "core/metrics.hpp"
#include "fi/registry.hpp"
#include "fs/minifs.hpp"
#include "kernel/kernel.hpp"
#include "os/instance.hpp"
#include "os/mono.hpp"
#include "recovery/engine.hpp"
#include "seep/policy.hpp"
#include "seep/seep.hpp"
#include "seep/window.hpp"
#include "servers/protocol.hpp"
#include "workload/campaign.hpp"
#include "workload/coverage.hpp"
#include "workload/suite.hpp"
#include "workload/unixbench.hpp"
