// System-wide metrics snapshot: one structure aggregating everything the
// paper's evaluation measures, collected from a live (or finished) machine.
#pragma once

#include <string>
#include <vector>

#include "os/instance.hpp"

namespace osiris::core {

struct ComponentMetrics {
  std::string name;
  double recovery_coverage = 0.0;     // Table I quantity
  std::uint64_t windows_opened = 0;
  std::uint64_t closed_by_seep = 0;
  std::uint64_t closed_by_yield = 0;
  std::size_t state_bytes = 0;        // Table VI "base"
  std::size_t clone_bytes = 0;        // Table VI "+clone"
  std::size_t max_undo_log_bytes = 0;  // Table VI "+undo log"
  std::uint64_t undo_records = 0;
  std::uint64_t checkpoints_skipped = 0;  // lazy checkpoints elided (DESIGN.md §14)
  std::uint32_t recoveries = 0;

  // Page tier (DESIGN.md §17): all zero unless the component has a PageStore
  // attached (cfg.ckpt_pages.enabled plus an aux region).
  std::size_t aux_bytes = 0;              // heap-backed recoverable region size
  std::uint64_t page_records = 0;         // CoW page snapshots captured
  std::uint64_t page_bytes_logged = 0;    // pre-image bytes captured
  std::uint64_t page_compactions = 0;     // incremental snapshot-retire steps
  std::uint64_t compacted_bytes = 0;      // snapshot bytes recycled by compaction
  std::uint64_t delta_restart_bytes = 0;  // restart bytes moved as dirty pages
  std::uint64_t full_copy_bytes = 0;      // what whole-image restarts would move

  // FOM executor (DESIGN.md §16): all zero unless the component runs the
  // executor (cfg.vfs_fom) and requests actually parked mid-flight.
  std::uint64_t fom_admitted = 0;
  std::uint64_t fom_parks = 0;
  std::uint64_t fom_resumes = 0;
  std::uint64_t fom_aborts = 0;
  std::uint64_t fom_sync_fallbacks = 0;
  std::uint64_t fom_in_flight_high_water = 0;
  std::uint64_t fom_wait_ticks = 0;

  // Event tracing (zero unless the run had cfg.trace_enabled on an
  // OSIRIS_TRACE=ON build): flight-recorder health per component.
  std::uint64_t trace_events = 0;        // events currently retained in the ring
  std::uint64_t trace_dropped = 0;       // events overwritten after the ring filled
  std::uint64_t trace_high_water = 0;    // max events simultaneously retained
};

struct SystemMetrics {
  std::vector<ComponentMetrics> components;
  double weighted_coverage = 0.0;

  // kernel substrate
  std::uint64_t messages = 0;
  std::uint64_t nested_calls = 0;
  std::uint64_t crashes = 0;
  std::uint64_t hangs = 0;

  // IPC fast path (DESIGN.md §14): queue depth, dispatch batching, and
  // zero-copy accounting. All zero when the corresponding flags are off,
  // except queue_high_water which the kernel always tracks.
  std::uint64_t queue_high_water = 0;
  std::uint64_t arena_spills = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched_messages = 0;
  std::uint64_t batch_hist[kernel::kBatchHistBuckets] = {};
  std::uint64_t safecopy_bytes = 0;
  std::uint64_t grant_bypass_bytes = 0;
  std::uint64_t grant_spans = 0;

  // recovery engine
  std::uint64_t restarts = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t error_replies = 0;
  std::uint64_t shutdowns = 0;
  std::uint64_t fom_reconciles = 0;  // windowed recoveries reconciled by the FOM executor

  // Physiological health monitor + storm rung (DESIGN.md §15). All zero when
  // cfg.health.enabled is off (the default), except health_charges which
  // stays zero anyway because the monitor never samples.
  std::uint64_t health_charges = 0;    // deliveries charged as non-useful
  std::uint64_t fever_onsets = 0;      // quanta where an endpoint crossed the fever threshold
  std::uint64_t throttled_drops = 0;   // deliveries dropped past a throttled sender's allowance
  std::uint64_t starved_quanta = 0;    // quanta where charged work dominated useful work
  std::uint64_t dispatch_aborts = 0;   // livelock-valve trips (cleared backlog)
  std::uint64_t storm_throttles = 0;   // fever onsets answered with a throttle
  std::uint64_t storm_quarantines = 0; // fevers persisting under throttle
  std::uint64_t detection_latency_ticks = 0;  // storm onset -> throttle (first detection)
  bool storm_detected = false;         // detection_latency_ticks is valid

  // SEEP classification health: how many lookups fell back to the
  // conservative default because the type was absent from the spec table.
  // Nonzero means a channel carried an undeclared type (dispatch fail-stops
  // on these at the receiver, but outbound wrappers consult the table too).
  std::uint64_t classification_defaults = 0;

  // event tracing (machine-wide; see ComponentMetrics for the per-ring view)
  bool trace_active = false;          // a tracer was attached to the run
  std::uint64_t trace_emitted = 0;    // total events emitted (incl. overwritten)
  std::uint64_t trace_dropped = 0;    // total events lost to full rings

  /// Render a human-readable report.
  [[nodiscard]] std::string report() const;
};

/// Snapshot all metrics from a machine (typically after run()).
SystemMetrics collect_metrics(os::OsInstance& inst);

}  // namespace osiris::core
