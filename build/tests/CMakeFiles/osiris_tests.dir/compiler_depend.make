# Empty compiler generated dependencies file for osiris_tests.
# This may be replaced when dependencies are built.
