
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ckpt.cpp" "tests/CMakeFiles/osiris_tests.dir/test_ckpt.cpp.o" "gcc" "tests/CMakeFiles/osiris_tests.dir/test_ckpt.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/osiris_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/osiris_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_extended_policy.cpp" "tests/CMakeFiles/osiris_tests.dir/test_extended_policy.cpp.o" "gcc" "tests/CMakeFiles/osiris_tests.dir/test_extended_policy.cpp.o.d"
  "/root/repo/tests/test_fi.cpp" "tests/CMakeFiles/osiris_tests.dir/test_fi.cpp.o" "gcc" "tests/CMakeFiles/osiris_tests.dir/test_fi.cpp.o.d"
  "/root/repo/tests/test_fs.cpp" "tests/CMakeFiles/osiris_tests.dir/test_fs.cpp.o" "gcc" "tests/CMakeFiles/osiris_tests.dir/test_fs.cpp.o.d"
  "/root/repo/tests/test_kernel.cpp" "tests/CMakeFiles/osiris_tests.dir/test_kernel.cpp.o" "gcc" "tests/CMakeFiles/osiris_tests.dir/test_kernel.cpp.o.d"
  "/root/repo/tests/test_param_sweeps.cpp" "tests/CMakeFiles/osiris_tests.dir/test_param_sweeps.cpp.o" "gcc" "tests/CMakeFiles/osiris_tests.dir/test_param_sweeps.cpp.o.d"
  "/root/repo/tests/test_property.cpp" "tests/CMakeFiles/osiris_tests.dir/test_property.cpp.o" "gcc" "tests/CMakeFiles/osiris_tests.dir/test_property.cpp.o.d"
  "/root/repo/tests/test_recovery.cpp" "tests/CMakeFiles/osiris_tests.dir/test_recovery.cpp.o" "gcc" "tests/CMakeFiles/osiris_tests.dir/test_recovery.cpp.o.d"
  "/root/repo/tests/test_recovery_integration.cpp" "tests/CMakeFiles/osiris_tests.dir/test_recovery_integration.cpp.o" "gcc" "tests/CMakeFiles/osiris_tests.dir/test_recovery_integration.cpp.o.d"
  "/root/repo/tests/test_seep_cothread.cpp" "tests/CMakeFiles/osiris_tests.dir/test_seep_cothread.cpp.o" "gcc" "tests/CMakeFiles/osiris_tests.dir/test_seep_cothread.cpp.o.d"
  "/root/repo/tests/test_shell.cpp" "tests/CMakeFiles/osiris_tests.dir/test_shell.cpp.o" "gcc" "tests/CMakeFiles/osiris_tests.dir/test_shell.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/osiris_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/osiris_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_suite_clean.cpp" "tests/CMakeFiles/osiris_tests.dir/test_suite_clean.cpp.o" "gcc" "tests/CMakeFiles/osiris_tests.dir/test_suite_clean.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/osiris_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/osiris_tests.dir/test_support.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/osiris_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/osiris_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/osiris_os.dir/DependInfo.cmake"
  "/root/repo/build/src/servers/CMakeFiles/osiris_servers.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/osiris_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/fi/CMakeFiles/osiris_fi.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/osiris_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/cothread/CMakeFiles/osiris_cothread.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/osiris_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/osiris_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/osiris_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
