# Empty compiler generated dependencies file for table2_survivability_failstop.
# This may be replaced when dependencies are built.
