file(REMOVE_RECURSE
  "CMakeFiles/table2_survivability_failstop.dir/table2_survivability_failstop.cpp.o"
  "CMakeFiles/table2_survivability_failstop.dir/table2_survivability_failstop.cpp.o.d"
  "table2_survivability_failstop"
  "table2_survivability_failstop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_survivability_failstop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
