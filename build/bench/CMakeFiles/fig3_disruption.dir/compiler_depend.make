# Empty compiler generated dependencies file for fig3_disruption.
# This may be replaced when dependencies are built.
