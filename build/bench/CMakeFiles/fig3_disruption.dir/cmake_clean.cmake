file(REMOVE_RECURSE
  "CMakeFiles/fig3_disruption.dir/fig3_disruption.cpp.o"
  "CMakeFiles/fig3_disruption.dir/fig3_disruption.cpp.o.d"
  "fig3_disruption"
  "fig3_disruption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_disruption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
