file(REMOVE_RECURSE
  "CMakeFiles/rcb_report.dir/rcb_report.cpp.o"
  "CMakeFiles/rcb_report.dir/rcb_report.cpp.o.d"
  "rcb_report"
  "rcb_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcb_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
