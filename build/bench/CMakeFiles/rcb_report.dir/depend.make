# Empty dependencies file for rcb_report.
# This may be replaced when dependencies are built.
