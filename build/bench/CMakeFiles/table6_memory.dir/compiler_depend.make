# Empty compiler generated dependencies file for table6_memory.
# This may be replaced when dependencies are built.
