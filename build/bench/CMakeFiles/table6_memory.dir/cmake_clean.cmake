file(REMOVE_RECURSE
  "CMakeFiles/table6_memory.dir/table6_memory.cpp.o"
  "CMakeFiles/table6_memory.dir/table6_memory.cpp.o.d"
  "table6_memory"
  "table6_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
