file(REMOVE_RECURSE
  "CMakeFiles/table3_survivability_edfi.dir/table3_survivability_edfi.cpp.o"
  "CMakeFiles/table3_survivability_edfi.dir/table3_survivability_edfi.cpp.o.d"
  "table3_survivability_edfi"
  "table3_survivability_edfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_survivability_edfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
