# Empty compiler generated dependencies file for table3_survivability_edfi.
# This may be replaced when dependencies are built.
