file(REMOVE_RECURSE
  "CMakeFiles/table5_overhead.dir/table5_overhead.cpp.o"
  "CMakeFiles/table5_overhead.dir/table5_overhead.cpp.o.d"
  "table5_overhead"
  "table5_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
