file(REMOVE_RECURSE
  "CMakeFiles/ckpt_microbench.dir/ckpt_microbench.cpp.o"
  "CMakeFiles/ckpt_microbench.dir/ckpt_microbench.cpp.o.d"
  "ckpt_microbench"
  "ckpt_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
