# Empty compiler generated dependencies file for ckpt_microbench.
# This may be replaced when dependencies are built.
