file(REMOVE_RECURSE
  "CMakeFiles/table4_baseline_perf.dir/table4_baseline_perf.cpp.o"
  "CMakeFiles/table4_baseline_perf.dir/table4_baseline_perf.cpp.o.d"
  "table4_baseline_perf"
  "table4_baseline_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_baseline_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
