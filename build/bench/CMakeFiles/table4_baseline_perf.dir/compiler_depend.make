# Empty compiler generated dependencies file for table4_baseline_perf.
# This may be replaced when dependencies are built.
