# Empty compiler generated dependencies file for osiris_recovery.
# This may be replaced when dependencies are built.
