file(REMOVE_RECURSE
  "CMakeFiles/osiris_recovery.dir/engine.cpp.o"
  "CMakeFiles/osiris_recovery.dir/engine.cpp.o.d"
  "libosiris_recovery.a"
  "libosiris_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osiris_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
