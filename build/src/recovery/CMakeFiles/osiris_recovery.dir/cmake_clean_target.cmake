file(REMOVE_RECURSE
  "libosiris_recovery.a"
)
