file(REMOVE_RECURSE
  "libosiris_os.a"
)
