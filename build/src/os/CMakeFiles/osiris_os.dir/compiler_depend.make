# Empty compiler generated dependencies file for osiris_os.
# This may be replaced when dependencies are built.
