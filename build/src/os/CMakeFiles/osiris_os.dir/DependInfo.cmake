
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/instance.cpp" "src/os/CMakeFiles/osiris_os.dir/instance.cpp.o" "gcc" "src/os/CMakeFiles/osiris_os.dir/instance.cpp.o.d"
  "/root/repo/src/os/mono.cpp" "src/os/CMakeFiles/osiris_os.dir/mono.cpp.o" "gcc" "src/os/CMakeFiles/osiris_os.dir/mono.cpp.o.d"
  "/root/repo/src/os/shell.cpp" "src/os/CMakeFiles/osiris_os.dir/shell.cpp.o" "gcc" "src/os/CMakeFiles/osiris_os.dir/shell.cpp.o.d"
  "/root/repo/src/os/syscalls.cpp" "src/os/CMakeFiles/osiris_os.dir/syscalls.cpp.o" "gcc" "src/os/CMakeFiles/osiris_os.dir/syscalls.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/servers/CMakeFiles/osiris_servers.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/osiris_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/fi/CMakeFiles/osiris_fi.dir/DependInfo.cmake"
  "/root/repo/build/src/cothread/CMakeFiles/osiris_cothread.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/osiris_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/osiris_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/osiris_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/osiris_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
