file(REMOVE_RECURSE
  "CMakeFiles/osiris_os.dir/instance.cpp.o"
  "CMakeFiles/osiris_os.dir/instance.cpp.o.d"
  "CMakeFiles/osiris_os.dir/mono.cpp.o"
  "CMakeFiles/osiris_os.dir/mono.cpp.o.d"
  "CMakeFiles/osiris_os.dir/shell.cpp.o"
  "CMakeFiles/osiris_os.dir/shell.cpp.o.d"
  "CMakeFiles/osiris_os.dir/syscalls.cpp.o"
  "CMakeFiles/osiris_os.dir/syscalls.cpp.o.d"
  "libosiris_os.a"
  "libosiris_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osiris_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
