# Empty compiler generated dependencies file for osiris_fs.
# This may be replaced when dependencies are built.
