
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/blockdev.cpp" "src/fs/CMakeFiles/osiris_fs.dir/blockdev.cpp.o" "gcc" "src/fs/CMakeFiles/osiris_fs.dir/blockdev.cpp.o.d"
  "/root/repo/src/fs/cache.cpp" "src/fs/CMakeFiles/osiris_fs.dir/cache.cpp.o" "gcc" "src/fs/CMakeFiles/osiris_fs.dir/cache.cpp.o.d"
  "/root/repo/src/fs/minifs.cpp" "src/fs/CMakeFiles/osiris_fs.dir/minifs.cpp.o" "gcc" "src/fs/CMakeFiles/osiris_fs.dir/minifs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/osiris_support.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/osiris_kernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
