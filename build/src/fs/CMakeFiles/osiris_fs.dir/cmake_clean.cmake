file(REMOVE_RECURSE
  "CMakeFiles/osiris_fs.dir/blockdev.cpp.o"
  "CMakeFiles/osiris_fs.dir/blockdev.cpp.o.d"
  "CMakeFiles/osiris_fs.dir/cache.cpp.o"
  "CMakeFiles/osiris_fs.dir/cache.cpp.o.d"
  "CMakeFiles/osiris_fs.dir/minifs.cpp.o"
  "CMakeFiles/osiris_fs.dir/minifs.cpp.o.d"
  "libosiris_fs.a"
  "libosiris_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osiris_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
