file(REMOVE_RECURSE
  "libosiris_fs.a"
)
