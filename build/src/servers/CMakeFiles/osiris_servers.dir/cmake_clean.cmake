file(REMOVE_RECURSE
  "CMakeFiles/osiris_servers.dir/ds.cpp.o"
  "CMakeFiles/osiris_servers.dir/ds.cpp.o.d"
  "CMakeFiles/osiris_servers.dir/pm.cpp.o"
  "CMakeFiles/osiris_servers.dir/pm.cpp.o.d"
  "CMakeFiles/osiris_servers.dir/protocol.cpp.o"
  "CMakeFiles/osiris_servers.dir/protocol.cpp.o.d"
  "CMakeFiles/osiris_servers.dir/rs.cpp.o"
  "CMakeFiles/osiris_servers.dir/rs.cpp.o.d"
  "CMakeFiles/osiris_servers.dir/sys_task.cpp.o"
  "CMakeFiles/osiris_servers.dir/sys_task.cpp.o.d"
  "CMakeFiles/osiris_servers.dir/vfs.cpp.o"
  "CMakeFiles/osiris_servers.dir/vfs.cpp.o.d"
  "CMakeFiles/osiris_servers.dir/vm.cpp.o"
  "CMakeFiles/osiris_servers.dir/vm.cpp.o.d"
  "libosiris_servers.a"
  "libosiris_servers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osiris_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
