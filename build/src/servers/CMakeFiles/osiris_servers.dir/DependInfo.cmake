
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/servers/ds.cpp" "src/servers/CMakeFiles/osiris_servers.dir/ds.cpp.o" "gcc" "src/servers/CMakeFiles/osiris_servers.dir/ds.cpp.o.d"
  "/root/repo/src/servers/pm.cpp" "src/servers/CMakeFiles/osiris_servers.dir/pm.cpp.o" "gcc" "src/servers/CMakeFiles/osiris_servers.dir/pm.cpp.o.d"
  "/root/repo/src/servers/protocol.cpp" "src/servers/CMakeFiles/osiris_servers.dir/protocol.cpp.o" "gcc" "src/servers/CMakeFiles/osiris_servers.dir/protocol.cpp.o.d"
  "/root/repo/src/servers/rs.cpp" "src/servers/CMakeFiles/osiris_servers.dir/rs.cpp.o" "gcc" "src/servers/CMakeFiles/osiris_servers.dir/rs.cpp.o.d"
  "/root/repo/src/servers/sys_task.cpp" "src/servers/CMakeFiles/osiris_servers.dir/sys_task.cpp.o" "gcc" "src/servers/CMakeFiles/osiris_servers.dir/sys_task.cpp.o.d"
  "/root/repo/src/servers/vfs.cpp" "src/servers/CMakeFiles/osiris_servers.dir/vfs.cpp.o" "gcc" "src/servers/CMakeFiles/osiris_servers.dir/vfs.cpp.o.d"
  "/root/repo/src/servers/vm.cpp" "src/servers/CMakeFiles/osiris_servers.dir/vm.cpp.o" "gcc" "src/servers/CMakeFiles/osiris_servers.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/osiris_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/osiris_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/osiris_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/fi/CMakeFiles/osiris_fi.dir/DependInfo.cmake"
  "/root/repo/build/src/cothread/CMakeFiles/osiris_cothread.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/osiris_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/osiris_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
