file(REMOVE_RECURSE
  "libosiris_servers.a"
)
