# Empty dependencies file for osiris_servers.
# This may be replaced when dependencies are built.
