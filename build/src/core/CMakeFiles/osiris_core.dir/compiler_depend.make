# Empty compiler generated dependencies file for osiris_core.
# This may be replaced when dependencies are built.
