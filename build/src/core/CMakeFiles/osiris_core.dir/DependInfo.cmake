
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/osiris_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/osiris_core.dir/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/osiris_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/osiris_os.dir/DependInfo.cmake"
  "/root/repo/build/src/servers/CMakeFiles/osiris_servers.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/osiris_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/fi/CMakeFiles/osiris_fi.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/osiris_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/cothread/CMakeFiles/osiris_cothread.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/osiris_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/osiris_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/osiris_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
