file(REMOVE_RECURSE
  "libosiris_core.a"
)
