file(REMOVE_RECURSE
  "CMakeFiles/osiris_core.dir/metrics.cpp.o"
  "CMakeFiles/osiris_core.dir/metrics.cpp.o.d"
  "libosiris_core.a"
  "libosiris_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osiris_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
