file(REMOVE_RECURSE
  "libosiris_kernel.a"
)
