file(REMOVE_RECURSE
  "CMakeFiles/osiris_kernel.dir/kernel.cpp.o"
  "CMakeFiles/osiris_kernel.dir/kernel.cpp.o.d"
  "CMakeFiles/osiris_kernel.dir/message.cpp.o"
  "CMakeFiles/osiris_kernel.dir/message.cpp.o.d"
  "libosiris_kernel.a"
  "libosiris_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osiris_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
