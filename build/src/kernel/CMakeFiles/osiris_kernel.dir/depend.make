# Empty dependencies file for osiris_kernel.
# This may be replaced when dependencies are built.
