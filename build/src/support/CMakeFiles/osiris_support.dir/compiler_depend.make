# Empty compiler generated dependencies file for osiris_support.
# This may be replaced when dependencies are built.
