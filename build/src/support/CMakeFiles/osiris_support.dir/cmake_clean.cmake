file(REMOVE_RECURSE
  "CMakeFiles/osiris_support.dir/log.cpp.o"
  "CMakeFiles/osiris_support.dir/log.cpp.o.d"
  "CMakeFiles/osiris_support.dir/stats.cpp.o"
  "CMakeFiles/osiris_support.dir/stats.cpp.o.d"
  "CMakeFiles/osiris_support.dir/table_printer.cpp.o"
  "CMakeFiles/osiris_support.dir/table_printer.cpp.o.d"
  "libosiris_support.a"
  "libosiris_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osiris_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
