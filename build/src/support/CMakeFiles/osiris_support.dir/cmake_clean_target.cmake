file(REMOVE_RECURSE
  "libosiris_support.a"
)
