file(REMOVE_RECURSE
  "CMakeFiles/osiris_ckpt.dir/undo_log.cpp.o"
  "CMakeFiles/osiris_ckpt.dir/undo_log.cpp.o.d"
  "libosiris_ckpt.a"
  "libosiris_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osiris_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
