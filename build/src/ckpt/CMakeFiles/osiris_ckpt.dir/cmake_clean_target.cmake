file(REMOVE_RECURSE
  "libosiris_ckpt.a"
)
