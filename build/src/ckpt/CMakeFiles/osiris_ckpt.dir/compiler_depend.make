# Empty compiler generated dependencies file for osiris_ckpt.
# This may be replaced when dependencies are built.
