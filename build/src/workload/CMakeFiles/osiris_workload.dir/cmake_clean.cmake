file(REMOVE_RECURSE
  "CMakeFiles/osiris_workload.dir/campaign.cpp.o"
  "CMakeFiles/osiris_workload.dir/campaign.cpp.o.d"
  "CMakeFiles/osiris_workload.dir/coverage.cpp.o"
  "CMakeFiles/osiris_workload.dir/coverage.cpp.o.d"
  "CMakeFiles/osiris_workload.dir/suite.cpp.o"
  "CMakeFiles/osiris_workload.dir/suite.cpp.o.d"
  "CMakeFiles/osiris_workload.dir/suite_fs.cpp.o"
  "CMakeFiles/osiris_workload.dir/suite_fs.cpp.o.d"
  "CMakeFiles/osiris_workload.dir/suite_misc.cpp.o"
  "CMakeFiles/osiris_workload.dir/suite_misc.cpp.o.d"
  "CMakeFiles/osiris_workload.dir/suite_pipe.cpp.o"
  "CMakeFiles/osiris_workload.dir/suite_pipe.cpp.o.d"
  "CMakeFiles/osiris_workload.dir/suite_proc.cpp.o"
  "CMakeFiles/osiris_workload.dir/suite_proc.cpp.o.d"
  "CMakeFiles/osiris_workload.dir/unixbench.cpp.o"
  "CMakeFiles/osiris_workload.dir/unixbench.cpp.o.d"
  "libosiris_workload.a"
  "libosiris_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osiris_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
