# Empty dependencies file for osiris_workload.
# This may be replaced when dependencies are built.
