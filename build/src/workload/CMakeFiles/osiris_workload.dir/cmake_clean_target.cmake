file(REMOVE_RECURSE
  "libosiris_workload.a"
)
