# Empty dependencies file for osiris_cothread.
# This may be replaced when dependencies are built.
