file(REMOVE_RECURSE
  "libosiris_cothread.a"
)
