file(REMOVE_RECURSE
  "CMakeFiles/osiris_cothread.dir/fiber.cpp.o"
  "CMakeFiles/osiris_cothread.dir/fiber.cpp.o.d"
  "libosiris_cothread.a"
  "libosiris_cothread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osiris_cothread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
