file(REMOVE_RECURSE
  "libosiris_fi.a"
)
