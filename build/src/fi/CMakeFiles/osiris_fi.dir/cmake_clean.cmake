file(REMOVE_RECURSE
  "CMakeFiles/osiris_fi.dir/registry.cpp.o"
  "CMakeFiles/osiris_fi.dir/registry.cpp.o.d"
  "libosiris_fi.a"
  "libosiris_fi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osiris_fi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
