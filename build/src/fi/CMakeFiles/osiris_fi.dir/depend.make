# Empty dependencies file for osiris_fi.
# This may be replaced when dependencies are built.
