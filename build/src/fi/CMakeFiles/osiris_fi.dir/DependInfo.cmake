
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fi/registry.cpp" "src/fi/CMakeFiles/osiris_fi.dir/registry.cpp.o" "gcc" "src/fi/CMakeFiles/osiris_fi.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/osiris_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/osiris_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/osiris_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
