file(REMOVE_RECURSE
  "CMakeFiles/shell_survives.dir/shell_survives.cpp.o"
  "CMakeFiles/shell_survives.dir/shell_survives.cpp.o.d"
  "shell_survives"
  "shell_survives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shell_survives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
