# Empty dependencies file for shell_survives.
# This may be replaced when dependencies are built.
