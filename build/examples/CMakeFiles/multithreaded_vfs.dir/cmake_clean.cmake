file(REMOVE_RECURSE
  "CMakeFiles/multithreaded_vfs.dir/multithreaded_vfs.cpp.o"
  "CMakeFiles/multithreaded_vfs.dir/multithreaded_vfs.cpp.o.d"
  "multithreaded_vfs"
  "multithreaded_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multithreaded_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
