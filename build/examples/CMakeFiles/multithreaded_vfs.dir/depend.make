# Empty dependencies file for multithreaded_vfs.
# This may be replaced when dependencies are built.
