# Empty dependencies file for recovery_policies.
# This may be replaced when dependencies are built.
