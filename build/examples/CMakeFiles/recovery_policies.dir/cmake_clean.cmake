file(REMOVE_RECURSE
  "CMakeFiles/recovery_policies.dir/recovery_policies.cpp.o"
  "CMakeFiles/recovery_policies.dir/recovery_policies.cpp.o.d"
  "recovery_policies"
  "recovery_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
