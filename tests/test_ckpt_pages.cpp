// Unit + property tests: the page-granular checkpoint tier (DESIGN.md §17) —
// PageStore epoch/compaction semantics, PagedTable allocator recovery, the
// two-tier mark/rollback composition, the satellite duplicate-filter
// regression, and randomized rollback equivalence between the arena undo log
// and the page tier.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <random>
#include <vector>

#include "ckpt/context.hpp"
#include "ckpt/page_store.hpp"
#include "ckpt/paged_table.hpp"
#include "ckpt/undo_log.hpp"
#include "core/metrics.hpp"
#include "fi/registry.hpp"
#include "os/instance.hpp"
#include "seep/window.hpp"
#include "workload/suite.hpp"

using namespace osiris;

namespace {

constexpr std::size_t kPage = 64;  // small pages keep the unit tests readable

ckpt::PagesConfig tiny_pages() {
  ckpt::PagesConfig cfg;
  cfg.enabled = true;
  cfg.page_bytes = kPage;
  cfg.compact_batch = 2;
  return cfg;
}

/// A page-multiple scratch region filled with a recognizable pattern.
struct Scratch {
  explicit Scratch(std::size_t pages) : bytes(pages * kPage) {
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      bytes[i] = static_cast<std::byte>(i * 7 + 3);
    }
  }
  std::byte* data() { return bytes.data(); }
  [[nodiscard]] std::size_t size() const { return bytes.size(); }
  std::vector<std::byte> bytes;
};

struct ScopedCtx {
  explicit ScopedCtx(ckpt::Mode mode) : ctx(mode), scope(&ctx) {}
  ckpt::Context ctx;
  ckpt::Context::Scope scope;
};

struct FiGuard {
  FiGuard() {
    fi::Registry::instance().disarm();
    fi::Registry::instance().reset_counts();
  }
  ~FiGuard() { fi::Registry::instance().disarm(); }
};

}  // namespace

TEST(PageStore, SnapshotAndRollback) {
  ckpt::PageStore ps(tiny_pages());
  Scratch s(4);
  ps.register_region(s.data(), s.size());
  ASSERT_TRUE(ps.covers(s.data() + 10));
  EXPECT_FALSE(ps.covers(&ps));

  const std::vector<std::byte> before = s.bytes;
  ps.on_store(s.data() + 10, 4, /*log=*/true);
  std::memset(s.data() + 10, 0xEE, 4);
  EXPECT_EQ(ps.record_count(), 1u);
  ps.rollback();
  EXPECT_EQ(s.bytes, before);
  EXPECT_TRUE(ps.clean());
  EXPECT_EQ(ps.stats().page_rollbacks, 1u);
}

TEST(PageStore, DuplicateStoreSkippedPerEpoch) {
  // The per-epoch dirty bitmap is the page-tier analogue of the undo log's
  // first-write filter: one snapshot per page per epoch, later stores free.
  ckpt::PageStore ps(tiny_pages());
  Scratch s(2);
  ps.register_region(s.data(), s.size());
  const std::vector<std::byte> before = s.bytes;

  ps.on_store(s.data(), 8, true);
  std::memset(s.data(), 1, 8);
  ps.on_store(s.data() + 16, 8, true);  // same page: no second record
  std::memset(s.data() + 16, 2, 8);
  EXPECT_EQ(ps.record_count(), 1u);
  EXPECT_EQ(ps.stats().page_duplicate_skips, 1u);
  ps.rollback();
  EXPECT_EQ(s.bytes, before);  // BOTH stores undone by the one snapshot
}

TEST(PageStore, StoreSpanningPagesCapturesEach) {
  ckpt::PageStore ps(tiny_pages());
  Scratch s(4);
  ps.register_region(s.data(), s.size());
  const std::vector<std::byte> before = s.bytes;
  // 8 bytes straddling the page 1 / page 2 boundary.
  ps.on_store(s.data() + kPage * 2 - 4, 8, true);
  std::memset(s.data() + kPage * 2 - 4, 0xAB, 8);
  EXPECT_EQ(ps.record_count(), 2u);
  ps.rollback();
  EXPECT_EQ(s.bytes, before);
}

TEST(PageStore, CheckpointRetiresSnapshotsIncrementally) {
  // checkpoint() drops the epoch O(dirty pages) and runs ONE compaction
  // step; the retired backlog drains over subsequent checkpoints instead of
  // stalling any single one.
  ckpt::PagesConfig cfg = tiny_pages();
  cfg.compact_batch = 1;
  ckpt::PageStore ps(cfg);
  Scratch s(4);
  ps.register_region(s.data(), s.size());
  for (std::size_t p = 0; p < 3; ++p) ps.on_store(s.data() + p * kPage, 1, true);
  EXPECT_EQ(ps.record_count(), 3u);
  ps.checkpoint();
  EXPECT_TRUE(ps.clean());
  EXPECT_EQ(ps.stats().compactions, 1u);  // one batch moved, backlog remains
  ps.checkpoint();                        // empty epoch, but compaction continues
  ps.checkpoint();
  EXPECT_EQ(ps.stats().compactions, 3u);
  EXPECT_EQ(ps.stats().compacted_bytes, 3 * kPage);
  // A new epoch re-captures the same page (filter reset at checkpoint) and
  // reuses a pooled buffer rather than growing the footprint.
  const std::size_t resident = ps.resident_bytes();
  ps.on_store(s.data(), 1, true);
  EXPECT_EQ(ps.record_count(), 1u);
  EXPECT_EQ(ps.resident_bytes(), resident);
}

TEST(PageStore, WindowClosedStoreMarksTransferOnly) {
  // log=false (window closed, kWindowOnly) must not snapshot — the undo tier
  // ignores those stores — but the clone delta MUST still see them.
  ckpt::PageStore ps(tiny_pages());
  Scratch s(2);
  ps.register_region(s.data(), s.size());
  // Drain the registration-time transfer state first.
  ps.sync_transfer_dirty([](std::size_t, const std::byte*, std::size_t) {});

  ps.on_store(s.data() + kPage, 4, /*log=*/false);
  std::memset(s.data() + kPage, 0x5A, 4);
  EXPECT_EQ(ps.record_count(), 0u);
  EXPECT_EQ(ps.stats().page_records, 0u);
  std::size_t synced = 0;
  ps.sync_transfer_dirty(
      [&](std::size_t off, const std::byte* src, std::size_t len) {
        EXPECT_EQ(off, kPage);
        EXPECT_EQ(len, kPage);
        EXPECT_EQ(src[0], static_cast<std::byte>(0x5A));
        synced += len;
      });
  EXPECT_EQ(synced, kPage);
}

TEST(PageStore, SyncTransferDirtyClearsBits) {
  ckpt::PageStore ps(tiny_pages());
  Scratch s(3);
  ps.register_region(s.data(), s.size());
  ps.on_store(s.data(), 1, true);
  ps.on_store(s.data() + 2 * kPage, 1, true);
  std::size_t first = ps.sync_transfer_dirty([](std::size_t, const std::byte*, std::size_t) {});
  EXPECT_EQ(first, 2 * kPage);
  // Second sync with no intervening stores: nothing to move.
  EXPECT_EQ(ps.sync_transfer_dirty([](std::size_t, const std::byte*, std::size_t) {}), 0u);
}

TEST(PageStore, RollbackRemarksTransferDirty) {
  // Rollback rewrites live bytes away from what the clone saw — the restored
  // pages must be re-marked or the next delta restart ships a stale clone.
  ckpt::PageStore ps(tiny_pages());
  Scratch s(2);
  ps.register_region(s.data(), s.size());
  ps.sync_transfer_dirty([](std::size_t, const std::byte*, std::size_t) {});

  ps.on_store(s.data(), 4, true);
  std::memset(s.data(), 0x11, 4);
  ps.sync_transfer_dirty([](std::size_t, const std::byte*, std::size_t) {});  // clone up to date
  ps.rollback();  // live bytes now differ from the clone again
  EXPECT_EQ(ps.sync_transfer_dirty([](std::size_t, const std::byte*, std::size_t) {}), kPage);
}

TEST(PageStore, MarkAllTransferDirtyCoversWholeSpace) {
  ckpt::PageStore ps(tiny_pages());
  Scratch a(2);
  Scratch b(3);
  ps.register_region(a.data(), a.size());
  ps.register_region(b.data(), b.size());
  ps.sync_transfer_dirty([](std::size_t, const std::byte*, std::size_t) {});
  ps.mark_all_transfer_dirty();
  EXPECT_EQ(ps.sync_transfer_dirty([](std::size_t, const std::byte*, std::size_t) {}),
            ps.region_bytes());
  EXPECT_EQ(ps.region_bytes(), a.size() + b.size());
}

TEST(PageStore, MultiRegionSyncUsesConcatenatedOffsets) {
  // The engine lays its aux image out as the concatenation of registered
  // regions; sync offsets must address that layout, not raw pointers.
  ckpt::PageStore ps(tiny_pages());
  Scratch a(2);
  Scratch b(2);
  ps.register_region(a.data(), a.size());
  ps.register_region(b.data(), b.size());
  ps.sync_transfer_dirty([](std::size_t, const std::byte*, std::size_t) {});

  ps.on_store(b.data() + kPage, 1, true);
  std::vector<std::size_t> offs;
  ps.sync_transfer_dirty(
      [&](std::size_t off, const std::byte*, std::size_t) { offs.push_back(off); });
  ASSERT_EQ(offs.size(), 1u);
  EXPECT_EQ(offs[0], a.size() + kPage);  // region b's page 1, after all of a
}

TEST(PageStore, IntegrityCanaryOk) {
  ckpt::PageStore ps(tiny_pages());
  EXPECT_TRUE(ps.integrity_ok());
}

// --- the satellite-2 regression -------------------------------------------

TEST(PageStore, RollbackToClearsTruncatedDirtyBits) {
  // A partial rollback truncates page records back to a mark. If the
  // truncated pages' epoch-dirty bits survived, a retried store to the same
  // page would be filtered as a duplicate — no fresh snapshot — and the
  // eventual FULL rollback would silently skip the page: state corruption.
  ckpt::PageStore ps(tiny_pages());
  Scratch s(2);
  ps.register_region(s.data(), s.size());
  const std::vector<std::byte> checkpointed = s.bytes;

  const std::size_t mark = ps.record_count();  // 0: top of the attempt
  ps.on_store(s.data(), 4, true);
  std::memset(s.data(), 0xB1, 4);              // attempt 1 mutates page 0
  ps.rollback_to(mark);                        // FOM-style retry: attempt undone
  EXPECT_EQ(s.bytes, checkpointed);

  ps.on_store(s.data(), 4, true);              // attempt 2 touches the SAME page
  std::memset(s.data(), 0xB2, 4);
  EXPECT_EQ(ps.record_count(), 1u);            // re-captured, not filtered
  ps.rollback();                               // crash: everything must undo
  EXPECT_EQ(s.bytes, checkpointed);            // corrupts if the bit leaked
}

TEST(PageStore, RollbackToKeepsSurvivingRecordsFiltered) {
  // The converse obligation: bits of records OLDER than the mark must stay
  // set, or a post-retry store would double-capture the newer value and a
  // full rollback would restore the wrong (mid-window) bytes.
  ckpt::PageStore ps(tiny_pages());
  Scratch s(2);
  ps.register_region(s.data(), s.size());
  const std::vector<std::byte> checkpointed = s.bytes;

  ps.on_store(s.data(), 4, true);              // pre-mark store to page 0
  std::memset(s.data(), 0xC1, 4);
  const std::size_t mark = ps.record_count();  // 1
  ps.on_store(s.data() + kPage, 4, true);      // post-mark store to page 1
  std::memset(s.data() + kPage, 0xC2, 4);
  ps.rollback_to(mark);

  ps.on_store(s.data(), 4, true);              // page 0 is still first-write-covered
  std::memset(s.data(), 0xC3, 4);
  EXPECT_EQ(ps.record_count(), 1u);            // no double capture
  EXPECT_GE(ps.stats().page_duplicate_skips, 1u);
  ps.rollback();
  EXPECT_EQ(s.bytes, checkpointed);            // page-0 snapshot is the OLDEST value
}

// --- two-tier composition through UndoLog ----------------------------------

TEST(UndoLogPages, MarkSpansBothTiers) {
  ckpt::UndoLog log;
  ckpt::PageStore ps(tiny_pages());
  Scratch s(2);
  ps.register_region(s.data(), s.size());
  log.attach_pages(&ps);

  std::uint64_t small = 1;
  log.record(&small, sizeof small);
  small = 2;
  ps.on_store(s.data(), 4, true);
  std::memset(s.data(), 0xD1, 4);
  const std::vector<std::byte> at_mark = s.bytes;

  const ckpt::UndoLog::Mark m = log.mark();
  EXPECT_EQ(m.page_records, 1u);
  log.record(&small, sizeof small);  // filtered duplicate in the arena tier
  ps.on_store(s.data() + kPage, 4, true);
  std::memset(s.data() + kPage, 0xD2, 4);

  log.rollback_to(m);  // undoes ONLY the post-mark page
  EXPECT_EQ(s.bytes, at_mark);
  EXPECT_EQ(small, 2u);

  log.rollback();  // full: both tiers back to the checkpoint
  EXPECT_EQ(small, 1u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(s.bytes[i], static_cast<std::byte>(i * 7 + 3));
  }
  EXPECT_TRUE(log.empty());
}

TEST(UndoLogPages, EmptyAndStatsMergePageTier) {
  ckpt::UndoLog log;
  ckpt::PageStore ps(tiny_pages());
  Scratch s(1);
  ps.register_region(s.data(), s.size());
  log.attach_pages(&ps);
  EXPECT_TRUE(log.empty());

  ps.on_store(s.data(), 1, true);
  EXPECT_FALSE(log.empty());  // dirty pages alone make the log non-empty
  log.checkpoint();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.stats().page_records, 1u);
  EXPECT_GE(log.stats().page_bytes_logged, kPage);
}

TEST(UndoLogPages, CheckpointIfDirtySeesPageTier) {
  // The lazy-checkpoint elision (DESIGN.md §14) may only skip when BOTH
  // tiers are clean, or a dirty page would leak across a window boundary.
  ckpt::UndoLog log;
  ckpt::PageStore ps(tiny_pages());
  Scratch s(1);
  ps.register_region(s.data(), s.size());
  log.attach_pages(&ps);

  log.checkpoint_if_dirty();
  EXPECT_EQ(log.stats().checkpoints_skipped, 1u);
  ps.on_store(s.data(), 1, true);
  log.checkpoint_if_dirty();  // page tier dirty: must be a real checkpoint
  EXPECT_EQ(log.stats().checkpoints_skipped, 1u);
  EXPECT_TRUE(ps.clean());
}

// --- PagedTable -------------------------------------------------------------

TEST(PagedTable, RegionIsPageMultiple) {
  ckpt::PagedTable<std::uint64_t> t(5, kPage);
  EXPECT_EQ(t.region_bytes() % kPage, 0u);
  EXPECT_GE(t.region_bytes(), 5 * sizeof(std::uint64_t));
  EXPECT_EQ(t.capacity(), 5u);
  EXPECT_EQ(t.in_use_count(), 0u);
}

TEST(PagedTable, AllocFreeFindMirrorsTable) {
  ScopedCtx s(ckpt::Mode::kOff);
  ckpt::PagedTable<int> t(4, kPage);
  const std::size_t a = t.alloc();
  const std::size_t b = t.alloc();
  ASSERT_NE(a, decltype(t)::npos);
  ASSERT_NE(b, decltype(t)::npos);
  t.mutate(a) = 10;
  t.mutate(b) = 20;
  EXPECT_EQ(t.in_use_count(), 2u);
  EXPECT_EQ(t.find([](int v) { return v == 20; }), b);
  t.free(a);
  EXPECT_EQ(t.in_use_count(), 1u);
  EXPECT_EQ(t.find([](int v) { return v == 10; }), decltype(t)::npos);
  EXPECT_EQ(t.alloc(), a);   // LIFO free list, like Table
  EXPECT_EQ(t.at(a), 0);     // value-initialized on reuse
}

TEST(PagedTable, AllocatorRollsBackThroughArenaTier) {
  // With no PageStore attached, PagedTable stores fall through to the arena
  // undo log — the flag-off configuration must recover identically.
  ScopedCtx s(ckpt::Mode::kAlways);
  ckpt::PagedTable<int> t(4, kPage);
  const std::size_t a = t.alloc();
  t.mutate(a) = 1;
  s.ctx.log().checkpoint();
  const std::size_t b = t.alloc();
  t.mutate(b) = 2;
  t.free(a);
  s.ctx.log().rollback();
  EXPECT_TRUE(t.in_use(a));
  EXPECT_FALSE(t.in_use(b));
  EXPECT_EQ(t.at(a), 1);
  EXPECT_EQ(t.in_use_count(), 1u);
}

TEST(PagedTable, AllocatorRollsBackThroughPageTier) {
  ScopedCtx s(ckpt::Mode::kAlways);
  ckpt::PageStore ps(tiny_pages());
  ckpt::PagedTable<int> t(4, kPage);
  ps.register_region(t.region_data(), t.region_bytes());
  s.ctx.set_page_store(&ps);

  const std::size_t a = t.alloc();
  t.mutate(a) = 1;
  s.ctx.log().checkpoint();
  const std::size_t b = t.alloc();
  t.mutate(b) = 2;
  t.free(a);
  EXPECT_GT(ps.record_count(), 0u);  // the stores actually routed here
  EXPECT_EQ(s.ctx.log().entry_count(), 0u);
  s.ctx.log().rollback();
  EXPECT_TRUE(t.in_use(a));
  EXPECT_FALSE(t.in_use(b));
  EXPECT_EQ(t.at(a), 1);
  EXPECT_EQ(t.alloc(), b);  // free list replays identically post-rollback
}

TEST(PagedTable, PutRingAndUserWordRollBack) {
  ScopedCtx s(ckpt::Mode::kAlways);
  ckpt::PageStore ps(tiny_pages());
  ckpt::PagedTable<std::uint64_t> t(4, kPage);
  ps.register_region(t.region_data(), t.region_bytes());
  s.ctx.set_page_store(&ps);

  t.put(0) = 111;
  t.set_user_word(1);
  s.ctx.log().checkpoint();
  t.put(0) = 222;  // ring overwrite of a used slot
  t.put(1) = 333;
  t.set_user_word(3);
  s.ctx.log().rollback();
  EXPECT_EQ(t.at(0), 111u);
  EXPECT_FALSE(t.in_use(1));
  EXPECT_EQ(t.user_word(), 1u);
  EXPECT_EQ(t.in_use_count(), 1u);
}

// --- randomized rollback equivalence ---------------------------------------

namespace {

/// Apply a deterministic pseudo-random store/checkpoint/retry script to
/// `buf` under the ACTIVE context, mutating through Context::log_write the
/// way instrumented wrappers do. The script depends only on (seed, steps),
/// never on which tier the context routes to.
///
/// Retry blocks follow the FOM executor's contract (DESIGN.md §16/§17): the
/// stores a rollback_to undoes are first-writes since its mark. Both tiers'
/// partial rollback is first-write-approximate — a post-mark store aliasing
/// pre-mark-dirty state (an exact range for the arena, a page for the page
/// tier) is filtered and survives the retry — so the script keeps attempt
/// stores (upper half) disjoint from steady-state stores (lower half), the
/// way VFS keeps FOM attempts off the prologue-written journal pages. Full
/// rollback is exact for arbitrary sequences; the attempt confinement only
/// matters for the mid-script rollback_to steps.
void run_script(ckpt::Context& ctx, std::byte* buf, std::size_t len, std::uint64_t seed,
                int steps) {
  std::mt19937_64 rng(seed);
  const std::size_t half = len / 2;
  for (int i = 0; i < steps; ++i) {
    const std::uint64_t op = rng() % 10;
    if (op == 0) {
      ctx.log().checkpoint();
    } else if (op < 8) {
      // Steady-state mutation in the prologue half.
      const std::size_t off = rng() % half;
      const std::size_t n = 1 + rng() % std::min<std::size_t>(half - off, 3 * kPage);
      const std::uint8_t fill = static_cast<std::uint8_t>(rng());
      ckpt::Context::log_write(buf + off, n);
      std::memset(buf + off, fill, n);
    } else {
      // FOM-style attempt: mark, partial work in the attempt half, park
      // (rolling the attempt back to its mark).
      const ckpt::UndoLog::Mark m = ctx.log().mark();
      const int stores = 1 + static_cast<int>(rng() % 4);
      for (int k = 0; k < stores; ++k) {
        const std::size_t off = half + rng() % half;
        const std::size_t n = 1 + rng() % std::min<std::size_t>(len - off, kPage);
        const std::uint8_t fill = static_cast<std::uint8_t>(rng());
        ckpt::Context::log_write(buf + off, n);
        std::memset(buf + off, fill, n);
      }
      ctx.log().rollback_to(m);
    }
  }
  ctx.log().rollback();
}

}  // namespace

TEST(PagesProperty, RollbackEquivalenceArenaVsPageTier) {
  // The tentpole's correctness bar: the SAME logical store sequence, rolled
  // back through the per-store arena log and through the page tier, must
  // leave byte-identical state.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Scratch arena_buf(8);
    Scratch paged_buf(8);
    ASSERT_EQ(arena_buf.bytes, paged_buf.bytes);

    {
      ScopedCtx s(ckpt::Mode::kAlways);
      run_script(s.ctx, arena_buf.data(), arena_buf.size(), seed, 300);
    }
    {
      ScopedCtx s(ckpt::Mode::kAlways);
      ckpt::PageStore ps(tiny_pages());
      ps.register_region(paged_buf.data(), paged_buf.size());
      s.ctx.set_page_store(&ps);
      run_script(s.ctx, paged_buf.data(), paged_buf.size(), seed, 300);
      EXPECT_TRUE(ps.integrity_ok());
    }
    EXPECT_EQ(arena_buf.bytes, paged_buf.bytes) << "seed " << seed;
  }
}

TEST(PagesProperty, RollbackEquivalenceMixedTiers) {
  // Half the address space registered with the PageStore, half arena-logged:
  // one script's stores split across the tiers, and composed rollback must
  // still match the pure-arena reference byte for byte.
  for (std::uint64_t seed = 21; seed <= 26; ++seed) {
    Scratch ref_buf(8);
    Scratch mix_buf(8);

    {
      ScopedCtx s(ckpt::Mode::kAlways);
      run_script(s.ctx, ref_buf.data(), ref_buf.size(), seed, 300);
    }
    {
      ScopedCtx s(ckpt::Mode::kAlways);
      ckpt::PageStore ps(tiny_pages());
      // Register only the second half; the first half takes the arena path.
      ps.register_region(mix_buf.data() + mix_buf.size() / 2, mix_buf.size() / 2);
      s.ctx.set_page_store(&ps);
      run_script(s.ctx, mix_buf.data(), mix_buf.size(), seed, 300);
    }
    EXPECT_EQ(ref_buf.bytes, mix_buf.bytes) << "seed " << seed;
  }
}

TEST(PagesProperty, WindowOnlyModeEquivalence) {
  // kWindowOnly with the window CLOSED: neither tier may snapshot (rollback
  // keeps the mutated bytes), but the page tier must still track transfer
  // dirt. Equivalence here means both tiers agree that nothing is undone.
  Scratch arena_buf(2);
  Scratch paged_buf(2);
  {
    ScopedCtx s(ckpt::Mode::kWindowOnly);
    s.ctx.set_window_open(false);
    ckpt::Context::log_write(arena_buf.data(), 8);
    std::memset(arena_buf.data(), 0x77, 8);
    s.ctx.log().rollback();
  }
  {
    ScopedCtx s(ckpt::Mode::kWindowOnly);
    ckpt::PageStore ps(tiny_pages());
    ps.register_region(paged_buf.data(), paged_buf.size());
    s.ctx.set_page_store(&ps);
    ps.sync_transfer_dirty([](std::size_t, const std::byte*, std::size_t) {});
    s.ctx.set_window_open(false);
    ckpt::Context::log_write(paged_buf.data(), 8);
    std::memset(paged_buf.data(), 0x77, 8);
    s.ctx.log().rollback();
    // The closed-window store still reaches the clone on the next sync.
    EXPECT_EQ(ps.sync_transfer_dirty([](std::size_t, const std::byte*, std::size_t) {}), kPage);
  }
  EXPECT_EQ(arena_buf.bytes, paged_buf.bytes);
}

namespace {

/// The FOM executor's window choreography (fom.hpp) against a given context:
/// attempt, park (rolling back to the mark), resume with a fresh window,
/// complete — then crash. Returns nothing; the caller byte-compares state.
void fom_mid_epoch_script(ckpt::Context& ctx, seep::Window& win, std::byte* buf) {
  win.open(1);
  ckpt::Context::log_write(buf, 8);
  std::memset(buf, 0xA1, 8);                    // durable pre-attempt mutation
  const ckpt::UndoLog::Mark m = ctx.log().mark();
  ckpt::Context::log_write(buf + kPage, 8);     // the attempt's partial work
  std::memset(buf + kPage, 0xA2, 8);
  ctx.log().rollback_to(m);                     // park: attempt undone exactly
  win.fom_park();

  win.fom_resume(1);                            // fresh window, fresh epoch
  ckpt::Context::log_write(buf + kPage, 8);
  std::memset(buf + kPage, 0xA3, 8);            // the retry succeeds
  ctx.log().rollback();                         // crash mid-retry
  win.end_of_request();
}

}  // namespace

TEST(PagesProperty, FomParkResumeMidEpochEquivalence) {
  // Park/resume splits one request across two epochs with a mid-epoch
  // partial rollback — the exact sequence satellite 2 exists for. Both tiers
  // must agree: pre-park durable work survives (it belongs to the epoch the
  // resume checkpointed), the crashed retry does not.
  Scratch arena_buf(4);
  Scratch paged_buf(4);
  {
    ScopedCtx s(ckpt::Mode::kWindowOnly);
    seep::Window win(seep::Policy::kEnhanced, s.ctx);
    fom_mid_epoch_script(s.ctx, win, arena_buf.data());
  }
  {
    ScopedCtx s(ckpt::Mode::kWindowOnly);
    ckpt::PageStore ps(tiny_pages());
    ps.register_region(paged_buf.data(), paged_buf.size());
    s.ctx.set_page_store(&ps);
    seep::Window win(seep::Policy::kEnhanced, s.ctx);
    fom_mid_epoch_script(s.ctx, win, paged_buf.data());
    EXPECT_TRUE(ps.integrity_ok());
  }
  EXPECT_EQ(arena_buf.bytes, paged_buf.bytes);
  // And the semantics themselves: 0xA1 committed by the resume checkpoint,
  // the 0xA3 retry rolled back to the resume point.
  EXPECT_EQ(arena_buf.bytes[0], static_cast<std::byte>(0xA1));
  EXPECT_EQ(arena_buf.bytes[kPage], static_cast<std::byte>(kPage * 7 + 3));
}

// --- full-stack integration --------------------------------------------------

namespace {

/// Publish/retrieve churn against DS; returns the retrieved values so runs
/// under different checkpoint configurations can be compared.
std::vector<std::uint64_t> run_blob_workload(const os::OsConfig& cfg) {
  FiGuard guard;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  std::vector<std::uint64_t> got;
  inst.run([&got](os::ISys& sys) {
    for (int round = 0; round < 3; ++round) {
      sys.ds_publish("blob.alpha", 100 + round);
      sys.ds_publish("blob.beta", 200 + round);
      if (round == 1) sys.ds_delete("blob.beta");
    }
    std::uint64_t v = 0;
    sys.ds_retrieve("blob.alpha", &v);
    got.push_back(v);
    got.push_back(sys.ds_retrieve("blob.beta", &v) == kernel::OK ? v : ~0ULL);
  });
  return got;
}

os::OsConfig large_state_cfg(bool pages_on) {
  os::OsConfig cfg;
  cfg.ds_blob_slots = 8;
  cfg.vfs_journal_slots = 32;
  cfg.ckpt_pages.enabled = pages_on;
  return cfg;
}

}  // namespace

TEST(PagesIntegration, BlobWorkloadIdenticalAcrossTiers) {
  const std::vector<std::uint64_t> off = run_blob_workload(large_state_cfg(false));
  const std::vector<std::uint64_t> on = run_blob_workload(large_state_cfg(true));
  EXPECT_EQ(off, on);
}

TEST(PagesIntegration, PageTierSurfacesInMetrics) {
  FiGuard guard;
  os::OsInstance inst(large_state_cfg(true));
  workload::register_suite_programs(inst.programs());
  inst.boot();
  inst.run([](os::ISys& sys) {
    for (int i = 0; i < 4; ++i) sys.ds_publish("metrics.key", i);
  });
  const core::SystemMetrics m = core::collect_metrics(inst);
  bool saw_ds_pages = false;
  for (const core::ComponentMetrics& c : m.components) {
    if (c.name == "ds") {
      saw_ds_pages = true;
      EXPECT_GT(c.aux_bytes, 0u);
      EXPECT_GT(c.page_records, 0u);
      EXPECT_GT(c.page_bytes_logged, 0u);
    }
  }
  EXPECT_TRUE(saw_ds_pages);
  EXPECT_NE(m.report().find("pages[ds]"), std::string::npos);
}

TEST(PagesIntegration, DefaultConfigReportsNoPageTier) {
  // Flag-off: no aux regions, no page records, and the report text carries
  // no pages[] line — the byte-stability the golden traces depend on.
  FiGuard guard;
  os::OsConfig cfg;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  inst.run([](os::ISys& sys) { sys.ds_publish("plain.key", 1); });
  const core::SystemMetrics m = core::collect_metrics(inst);
  for (const core::ComponentMetrics& c : m.components) {
    EXPECT_EQ(c.aux_bytes, 0u);
    EXPECT_EQ(c.page_records, 0u);
  }
  EXPECT_EQ(m.report().find("pages["), std::string::npos);
}

namespace {

struct FaultedRun {
  std::vector<std::uint64_t> got;       // client-observable post-crash values
  std::uint32_t recoveries = 0;
  std::uint64_t full_copy_bytes = 0;    // restart accounting (pages on only)
  std::uint64_t delta_restart_bytes = 0;
};

/// Arm a mid-publish DS crash (trigger chosen from a profiling pass; the fi
/// trigger counts absolute hits, so boot-time hits are snapshotted out) and
/// run the blob workload through recovery.
FaultedRun run_faulted_blob_workload(const os::OsConfig& cfg) {
  fi::Registry& reg = fi::Registry::instance();
  reg.disarm();
  reg.reset_counts();
  const auto workload = [](os::ISys& sys) {
    for (int i = 0; i < 6; ++i) sys.ds_publish("crash.key", i);
  };
  std::map<const fi::Site*, std::uint64_t> boot_hits;
  {
    os::OsInstance inst(cfg);
    workload::register_suite_programs(inst.programs());
    inst.boot();
    for (fi::Site* s : reg.sites()) boot_hits[s] = s->hits();
    inst.run(workload);
  }
  fi::Site* best = nullptr;
  std::uint64_t best_delta = 0;
  for (fi::Site* s : reg.sites()) {
    const std::uint64_t d = s->hits() - boot_hits[s];
    if (std::strcmp(s->tag, "ds") == 0 && d > best_delta) {
      best = s;
      best_delta = d;
    }
  }
  EXPECT_NE(best, nullptr);
  FaultedRun out;
  if (best == nullptr) return out;
  const std::uint64_t trigger = boot_hits[best] + best_delta / 2 + 1;

  reg.reset_counts();
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  reg.arm(best, fi::FaultType::kNullDeref, trigger);
  inst.run([&](os::ISys& sys) {
    workload(sys);
    std::uint64_t v = 0;
    if (sys.ds_retrieve("crash.key", &v) == kernel::OK) out.got.push_back(v);
  });
  reg.disarm();
  out.recoveries = inst.engine().recoveries_of(kernel::kDsEp);
  const core::SystemMetrics m = core::collect_metrics(inst);
  for (const core::ComponentMetrics& c : m.components) {
    if (c.name == "ds") {
      out.full_copy_bytes = c.full_copy_bytes;
      out.delta_restart_bytes = c.delta_restart_bytes;
    }
  }
  return out;
}

}  // namespace

TEST(PagesIntegration, CrashRecoveryEquivalentAcrossTiers) {
  // The same injected crash, recovered through the arena log and through the
  // page tier, must leave clients with identical observable state. This is
  // the end-to-end form of the rollback-equivalence property: restart-phase
  // delta transfer + page rollback vs full copy + per-store undo.
  const FaultedRun off = run_faulted_blob_workload(large_state_cfg(false));
  const FaultedRun on = run_faulted_blob_workload(large_state_cfg(true));
  EXPECT_EQ(off.got, on.got);
  EXPECT_EQ(off.recoveries, on.recoveries);
  EXPECT_GE(on.recoveries, 1u);  // the fault actually fired and recovered
}

TEST(PagesIntegration, DeltaRestartMovesFewerBytes) {
  // After a recovery with the tier on, the engine's restart accounting must
  // show the delta transfer moving no more than a full aux copy would — and
  // the delta/full split must surface through UndoLogStats into
  // collect_metrics.
  const FaultedRun on = run_faulted_blob_workload(large_state_cfg(true));
  ASSERT_GE(on.recoveries, 1u);
  EXPECT_GT(on.full_copy_bytes, 0u);
  EXPECT_LE(on.delta_restart_bytes, on.full_copy_bytes);
}
