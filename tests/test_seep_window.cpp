// seep::Classification defaults and Window accounting edge cases: the
// conservative-default fallback for unknown message types, the tainted_
// double-count guard, and the closed_by_yield path.
#include <gtest/gtest.h>

#include "ckpt/context.hpp"
#include "seep/policy.hpp"
#include "seep/seep.hpp"
#include "seep/window.hpp"

using namespace osiris;
using seep::Policy;
using seep::SeepClass;

TEST(Classification, UnknownTypeFallsToConservativeDefault) {
  seep::Classification c;
  const seep::MsgTraits t = c.get(0xDEAD);
  EXPECT_EQ(t.seep, SeepClass::kStateModifying);
  EXPECT_TRUE(t.replyable);
  EXPECT_EQ(c.size(), 0u);
}

TEST(Classification, ExplicitEntryOverridesDefault) {
  seep::Classification c;
  c.set(0x100, SeepClass::kNonStateModifying, /*replyable=*/false);
  const seep::MsgTraits t = c.get(0x100);
  EXPECT_EQ(t.seep, SeepClass::kNonStateModifying);
  EXPECT_FALSE(t.replyable);
  EXPECT_EQ(c.size(), 1u);
  // Unrelated types still fall to the default.
  EXPECT_EQ(c.get(0x101).seep, SeepClass::kStateModifying);
}

namespace {

struct WindowFixture {
  ckpt::Context ctx{ckpt::Mode::kWindowOnly};
  seep::Window window;
  explicit WindowFixture(Policy p) : window(p, ctx) {}
};

}  // namespace

TEST(Window, ExtendedDoubleRequesterScopedTaintCountsOnce) {
  WindowFixture f(Policy::kExtended);
  f.window.open();
  f.window.on_outbound(SeepClass::kRequesterScoped);
  f.window.on_outbound(SeepClass::kRequesterScoped);
  EXPECT_TRUE(f.window.is_open());  // taint does not close
  EXPECT_TRUE(f.window.is_tainted());
  EXPECT_EQ(f.window.stats().tainted, 1u);  // guard: counted once per window
  EXPECT_EQ(f.window.stats().closed_by_seep, 0u);

  f.window.end_of_request();
  EXPECT_FALSE(f.window.is_tainted());

  // The guard re-arms for the next window.
  f.window.open();
  EXPECT_FALSE(f.window.is_tainted());
  f.window.on_outbound(SeepClass::kRequesterScoped);
  EXPECT_EQ(f.window.stats().tainted, 2u);
}

TEST(Window, EnhancedClosesOnStateModifyingOnly) {
  WindowFixture f(Policy::kEnhanced);
  f.window.open();
  f.window.on_outbound(SeepClass::kNonStateModifying);
  EXPECT_TRUE(f.window.is_open());
  f.window.on_outbound(SeepClass::kStateModifying);
  EXPECT_FALSE(f.window.is_open());
  EXPECT_EQ(f.window.stats().closed_by_seep, 1u);
  // Further outbound traffic on a closed window is not double-counted.
  f.window.on_outbound(SeepClass::kStateModifying);
  EXPECT_EQ(f.window.stats().closed_by_seep, 1u);
}

TEST(Window, EnhancedTreatsRequesterScopedAsClosing) {
  WindowFixture f(Policy::kEnhanced);
  f.window.open();
  f.window.on_outbound(SeepClass::kRequesterScoped);
  EXPECT_FALSE(f.window.is_open());
  EXPECT_EQ(f.window.stats().closed_by_seep, 1u);
  EXPECT_EQ(f.window.stats().tainted, 0u);
}

TEST(Window, PessimisticClosesOnAnyOutbound) {
  WindowFixture f(Policy::kPessimistic);
  f.window.open();
  f.window.on_outbound(SeepClass::kNonStateModifying);
  EXPECT_FALSE(f.window.is_open());
  EXPECT_EQ(f.window.stats().closed_by_seep, 1u);
}

TEST(Window, YieldForcesCloseOnceAndOnlyWhileOpen) {
  WindowFixture f(Policy::kEnhanced);
  f.window.on_yield();  // no window open: nothing to close
  EXPECT_EQ(f.window.stats().closed_by_yield, 0u);

  f.window.open();
  f.window.on_yield();
  EXPECT_FALSE(f.window.is_open());
  EXPECT_EQ(f.window.stats().closed_by_yield, 1u);
  f.window.on_yield();  // already closed
  EXPECT_EQ(f.window.stats().closed_by_yield, 1u);
}

TEST(Window, NonWindowPolicyOpenIsNoOp) {
  WindowFixture f(Policy::kNaive);
  f.window.open();
  EXPECT_FALSE(f.window.is_open());
  EXPECT_EQ(f.window.stats().opened, 0u);
  f.window.on_outbound(SeepClass::kStateModifying);
  EXPECT_EQ(f.window.stats().closed_by_seep, 0u);
}

TEST(Window, ProbeHitsAttributedToWindowState) {
  WindowFixture f(Policy::kEnhanced);
  f.window.probe_hit();
  f.window.open();
  f.window.probe_hit();
  f.window.probe_hit();
  EXPECT_EQ(f.window.stats().probe_hits_inside, 2u);
  EXPECT_EQ(f.window.stats().probe_hits_outside, 1u);
  EXPECT_DOUBLE_EQ(f.window.stats().coverage(), 2.0 / 3.0);
}

TEST(Window, ContextWindowFlagTracksOpenClose) {
  WindowFixture f(Policy::kEnhanced);
  EXPECT_FALSE(f.ctx.window_open());
  f.window.open();
  EXPECT_TRUE(f.ctx.window_open());
  f.window.on_outbound(SeepClass::kStateModifying);
  EXPECT_FALSE(f.ctx.window_open());
}
