// Unit and property tests for the tracing subsystem proper: EventRing
// flight-recorder semantics, Tracer sequencing/merging, the runtime enable
// bit, and the exporters.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "support/clock.hpp"
#include "trace/export.hpp"
#include "trace/ring.hpp"
#include "trace/tracer.hpp"

using namespace osiris;
using trace::Event;
using trace::EventKind;
using trace::EventRing;
using trace::Tracer;

namespace {

Event ev(std::uint64_t seq, std::uint64_t a0 = 0) {
  Event e;
  e.seq = seq;
  e.comp = 0;
  e.kind = EventKind::kIpcSend;
  e.a0 = a0;
  return e;
}

std::vector<std::uint64_t> seqs(const EventRing& ring) {
  std::vector<Event> out;
  ring.snapshot(out);
  std::vector<std::uint64_t> s;
  for (const Event& e : out) s.push_back(e.seq);
  return s;
}

}  // namespace

TEST(EventRing, FillsToCapacityWithoutDropping) {
  EventRing ring(4);
  for (std::uint64_t i = 0; i < 4; ++i) ring.push(ev(i));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.high_water(), 4u);
  EXPECT_EQ(seqs(ring), (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

TEST(EventRing, WraparoundKeepsNewestAndCountsDrops) {
  EventRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) ring.push(ev(i));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);  // events 0..5 were overwritten
  // Snapshot is oldest-first and holds exactly the newest four.
  EXPECT_EQ(seqs(ring), (std::vector<std::uint64_t>{6, 7, 8, 9}));
}

TEST(EventRing, WraparoundPropertyManySizes) {
  // Property: after n pushes into a ring of capacity c, the ring retains the
  // last min(n, c) events in order and dropped() == max(0, n - c).
  for (std::size_t cap = 1; cap <= 9; ++cap) {
    for (std::uint64_t n = 0; n <= 40; ++n) {
      EventRing ring(cap);
      for (std::uint64_t i = 0; i < n; ++i) ring.push(ev(i));
      const std::uint64_t kept = std::min<std::uint64_t>(n, cap);
      ASSERT_EQ(ring.size(), kept) << "cap=" << cap << " n=" << n;
      ASSERT_EQ(ring.dropped(), n - kept) << "cap=" << cap << " n=" << n;
      const auto got = seqs(ring);
      for (std::uint64_t i = 0; i < kept; ++i) {
        ASSERT_EQ(got[i], n - kept + i) << "cap=" << cap << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(EventRing, ZeroCapacityCountsEverythingAsDropped) {
  EventRing ring(0);
  for (std::uint64_t i = 0; i < 5; ++i) ring.push(ev(i));
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 5u);
  EXPECT_EQ(ring.high_water(), 0u);
  std::vector<Event> out;
  ring.snapshot(out);
  EXPECT_TRUE(out.empty());
}

TEST(EventRing, ClearForgetsRecordsButKeepsAccounting) {
  EventRing ring(3);
  for (std::uint64_t i = 0; i < 5; ++i) ring.push(ev(i));
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.dropped(), 2u);      // history of loss survives the clear
  EXPECT_EQ(ring.high_water(), 3u);   // as does the memory high-water mark
  ring.push(ev(100));
  EXPECT_EQ(seqs(ring), (std::vector<std::uint64_t>{100}));
}

TEST(Tracer, StampsSequenceTickAndComponent) {
  VirtualClock clock;
  Tracer tracer(clock, 16);
  tracer.emit(EventKind::kWindowOpen, 2);
  clock.spin(7);
  tracer.emit(EventKind::kWindowClose, 2, 1);
  const auto events = tracer.merged();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].tick, 0u);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[1].tick, 7u);
  EXPECT_EQ(events[1].comp, 2);
  EXPECT_EQ(events[1].a0, 1u);
}

TEST(Tracer, MergedInterleavesRingsInEmissionOrder) {
  VirtualClock clock;
  Tracer tracer(clock, 16);
  tracer.emit(EventKind::kIpcSend, 0);
  tracer.emit(EventKind::kWindowOpen, 3);
  tracer.emit(EventKind::kIpcDeliver, 0);
  tracer.emit(EventKind::kWindowClose, 3);
  const auto events = tracer.merged();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);  // the merge is the total emission order
  }
  EXPECT_EQ(events[1].comp, 3);
  EXPECT_EQ(events[2].comp, 0);
}

TEST(Tracer, DisableMidRunDropsEventsSilently) {
  VirtualClock clock;
  Tracer tracer(clock, 16);
  tracer.emit(EventKind::kIpcSend, 0);
  tracer.set_enabled(false);
  tracer.emit(EventKind::kIpcSend, 0);  // swallowed: no seq, no ring write
  tracer.emit(EventKind::kWindowOpen, 1);
  tracer.set_enabled(true);
  tracer.emit(EventKind::kIpcDeliver, 0);
  const auto events = tracer.merged();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kIpcSend);
  EXPECT_EQ(events[1].kind, EventKind::kIpcDeliver);
  // Sequence numbers stay gapless across the disabled span.
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(tracer.events_emitted(), 2u);
  EXPECT_EQ(tracer.ring(1), nullptr);  // the disabled emit never made a ring
}

TEST(Tracer, NegativeComponentIsIgnored) {
  VirtualClock clock;
  Tracer tracer(clock, 16);
  tracer.emit(EventKind::kUndoAppend, -1, 8);  // standalone harness log
  EXPECT_EQ(tracer.events_emitted(), 0u);
  EXPECT_TRUE(tracer.merged().empty());
}

TEST(Tracer, PerComponentRingsOverflowIndependently) {
  VirtualClock clock;
  Tracer tracer(clock, 2);  // tiny rings
  for (int i = 0; i < 5; ++i) tracer.emit(EventKind::kIpcSend, 0);
  tracer.emit(EventKind::kWindowOpen, 3);
  ASSERT_NE(tracer.ring(0), nullptr);
  ASSERT_NE(tracer.ring(3), nullptr);
  EXPECT_EQ(tracer.ring(0)->dropped(), 3u);
  EXPECT_EQ(tracer.ring(3)->dropped(), 0u);
  EXPECT_EQ(tracer.total_dropped(), 3u);
  // The merge still interleaves correctly: the retained kernel events carry
  // larger seq than nothing — order is by seq regardless of drops.
  const auto events = tracer.merged();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 3u);
  EXPECT_EQ(events[2].comp, 3);
}

TEST(Tracer, ActiveExchangeNestsLikeAScope) {
  VirtualClock clock;
  Tracer outer(clock, 8);
  Tracer inner(clock, 8);
  ASSERT_EQ(Tracer::active(), nullptr);

  Tracer* prev0 = Tracer::exchange_active(&outer);
  EXPECT_EQ(prev0, nullptr);
  trace::emit_active(EventKind::kIpcSend, 0);

  Tracer* prev1 = Tracer::exchange_active(&inner);
  EXPECT_EQ(prev1, &outer);
  trace::emit_active(EventKind::kIpcSend, 0);
  Tracer::exchange_active(prev1);

  trace::emit_active(EventKind::kIpcSend, 0);
  Tracer::exchange_active(prev0);
  trace::emit_active(EventKind::kIpcSend, 0);  // no active tracer: a no-op

  EXPECT_EQ(outer.events_emitted(), 2u);
  EXPECT_EQ(inner.events_emitted(), 1u);
  EXPECT_EQ(Tracer::active(), nullptr);
}

TEST(TraceExport, TextFormatsOneLinePerEventWithLabels) {
  VirtualClock clock;
  Tracer tracer(clock, 8);
  tracer.set_component_name(0, "kernel");
  tracer.emit(EventKind::kIpcSend, 0, 1, 2, 3);
  clock.spin(5);
  tracer.emit(EventKind::kWindowOpen, 4);
  const std::string text = trace::format_text(tracer.merged(), tracer);
  EXPECT_NE(text.find("IpcSend"), std::string::npos);
  EXPECT_NE(text.find("kernel"), std::string::npos);
  EXPECT_NE(text.find("ep4"), std::string::npos);  // unnamed component fallback
  EXPECT_NE(text.find("@5"), std::string::npos);
  // Unsequenced variant drops the leading seq column but keeps the rest.
  const std::string unseq = trace::format_text_unsequenced(tracer.merged(), tracer);
  EXPECT_NE(unseq.find("WindowOpen"), std::string::npos);
  ASSERT_FALSE(unseq.empty());
  EXPECT_EQ(unseq[0], '@');  // every line starts at the tick, no seq column
  EXPECT_NE(unseq.find("\n@"), std::string::npos);
}

TEST(TraceExport, ChromeJsonPairsWindowSpansAndNamesThreads) {
  VirtualClock clock;
  Tracer tracer(clock, 8);
  tracer.set_component_name(2, "pm");
  tracer.emit(EventKind::kWindowOpen, 2);
  clock.spin(3);
  tracer.emit(EventKind::kWindowClose, 2, 0);
  tracer.emit(EventKind::kFaultFire, 2, 17, 1);
  const std::string json = trace::to_chrome_json(tracer.merged(), tracer);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);  // window open = span begin
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);  // window close = span end
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // fault = instant
  EXPECT_NE(json.find("recovery-window"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"pm\""), std::string::npos);  // thread_name metadata
  EXPECT_NE(json.find("\"cause\":\"seep\""), std::string::npos);
  // Braces balance (cheap well-formedness check without a JSON parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}
