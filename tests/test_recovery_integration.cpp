// Integration tests: fault injection and recovery through the full OS stack
// (kernel + servers + engine + userland), including hang detection via the
// Recovery Server's heartbeats and the persistent-fault property of error
// virtualization.
#include <gtest/gtest.h>

#include <cstring>

#include "fi/registry.hpp"
#include "os/instance.hpp"
#include "workload/suite.hpp"
#if OSIRIS_TRACE_ENABLED
#include "trace_matcher.hpp"
#endif

using namespace osiris;
using os::ISys;
using os::OsInstance;

namespace {

struct FiGuard {
  FiGuard() {
    fi::Registry::instance().disarm();
    fi::Registry::instance().reset_counts();
  }
  ~FiGuard() { fi::Registry::instance().disarm(); }
};

/// Find the site of `tag` whose per-run hits are maximal (the handler-entry
/// probe) after a profiling run of `body`.
fi::Site* busiest_site(const char* tag, const ISys::ProcBody& body) {
  fi::Registry::instance().disarm();
  fi::Registry::instance().reset_counts();
  os::OsConfig cfg;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  inst.run(body);
  fi::Site* best = nullptr;
  for (fi::Site* s : fi::Registry::instance().sites()) {
    if (std::strcmp(s->tag, tag) == 0 && (best == nullptr || s->hits() > best->hits())) best = s;
  }
  return best;
}

}  // namespace

TEST(RecoveryIntegration, InWindowPmCrashIsErrorVirtualized) {
  FiGuard guard;
  const auto workload = [](ISys& sys) {
    for (int i = 0; i < 30; ++i) sys.getpid();
  };
  fi::Site* site = busiest_site("pm", workload);
  ASSERT_NE(site, nullptr);
  ASSERT_GT(site->hits(), 10u);

  fi::Registry::instance().reset_counts();
  os::OsConfig cfg;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  fi::Registry::instance().arm(site, fi::FaultType::kNullDeref, 15);
  int crash_errors = 0;
  const auto outcome = inst.run([&crash_errors](ISys& sys) {
    for (int i = 0; i < 30; ++i) {
      // getpid is retried by the libc wrapper; use a non-idempotent call to
      // observe the raw E_CRASH.
      if (sys.setuid(0) == kernel::E_CRASH) ++crash_errors;
    }
  });
  EXPECT_EQ(outcome, OsInstance::Outcome::kCompleted);
  EXPECT_EQ(crash_errors, 1);  // exactly one request was error-virtualized
  EXPECT_EQ(inst.engine().recoveries_of(kernel::kPmEp), 1u);
  EXPECT_EQ(inst.engine().stats().rollbacks, 1u);
}

TEST(RecoveryIntegration, PersistentFaultIsNotReplayed) {
  // Error virtualization discards the crashing request instead of replaying
  // it, so a fault that would fire on every execution of the same request
  // takes the system down exactly zero more times (paper SIII-C).
  FiGuard guard;
  const auto workload = [](ISys& sys) { sys.ds_publish("persist.key", 1); };
  fi::Site* site = busiest_site("ds", workload);
  ASSERT_NE(site, nullptr);

  fi::Registry::instance().reset_counts();
  os::OsConfig cfg;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  fi::Registry::instance().arm(site, fi::FaultType::kNullDeref, 2);
  const auto outcome = inst.run([](ISys& sys) {
    // The same "buggy input" is submitted repeatedly; only the execution
    // that hit the trigger fails, and the system stays up throughout.
    int failures = 0;
    for (int i = 0; i < 10; ++i) {
      if (sys.ds_publish("persist.key", 7) != kernel::OK) ++failures;
    }
    if (failures > 2) sys.exit(1);
  });
  EXPECT_EQ(outcome, OsInstance::Outcome::kCompleted);
}

TEST(RecoveryIntegration, OutOfWindowCrashShutsDownConsistently) {
  FiGuard guard;
  // Profile a fork-heavy workload and pick a PM site that only executes
  // after the window closed (a post-SEEP audit probe).
  const auto workload = [](ISys& sys) {
    for (int i = 0; i < 5; ++i) {
      const std::int64_t pid = sys.fork([](ISys& c) { c.exit(0); });
      std::int64_t s;
      if (pid > 0) sys.wait_pid(pid, &s);
    }
  };
  (void)busiest_site("pm", workload);  // ensures sites exist & are counted

  // Collect window stats: the PM coverage must be partial (some probes ran
  // outside the window), which is what makes out-of-window faults possible.
  fi::Registry::instance().reset_counts();
  os::OsConfig cfg;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  const auto outcome = inst.run(workload);
  ASSERT_EQ(outcome, OsInstance::Outcome::kCompleted);
  const auto& ws = inst.pm().window().stats();
  EXPECT_GT(ws.probe_hits_outside, 0u);
  EXPECT_GT(ws.probe_hits_inside, 0u);
}

TEST(RecoveryIntegration, HangIsDetectedByHeartbeatAndRecovered) {
  FiGuard guard;
  const auto workload = [](ISys& sys) {
    for (int i = 0; i < 30; ++i) sys.ds_publish("hb.key", 1);
  };
  fi::Site* site = busiest_site("ds", workload);
  ASSERT_NE(site, nullptr);

  fi::Registry::instance().reset_counts();
  os::OsConfig cfg;
  cfg.heartbeat_interval = 50;  // fast sweeps so the test stays quick
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  fi::Registry::instance().arm(site, fi::FaultType::kHang, 5);
  const auto outcome = inst.run([](ISys& sys) {
    int ok = 0;
    for (int i = 0; i < 30; ++i) {
      if (sys.ds_publish("hb.key", static_cast<std::uint64_t>(i)) == kernel::OK) ++ok;
    }
    if (ok < 25) sys.exit(1);  // one request may be lost to the hang
  });
  EXPECT_EQ(outcome, OsInstance::Outcome::kCompleted);
  EXPECT_GE(inst.rs().sweeps(), 1u);  // detection came from the sweep path
  EXPECT_GE(inst.kern().stats().hangs, 1u);
  EXPECT_GE(inst.engine().recoveries_of(kernel::kDsEp), 1u);
}

TEST(RecoveryIntegration, DisabledHeartbeatsLeaveNoSweepsOrOutstandingPings) {
  // heartbeat_interval = 0 must mean *no* heartbeat machinery at all: no
  // sweeps, no pings sent, and — crucially — no outstanding pings leaked
  // that a later sweep could misread as a hang.
  FiGuard guard;
  os::OsConfig cfg;
  cfg.heartbeat_interval = 0;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  const auto outcome = inst.run([](ISys& sys) {
    for (int i = 0; i < 20; ++i) {
      sys.ds_publish("quiet.key", static_cast<std::uint64_t>(i));
      sys.getpid();
    }
  });
  EXPECT_EQ(outcome, OsInstance::Outcome::kCompleted);
  EXPECT_EQ(inst.rs().sweeps(), 0u);
  EXPECT_EQ(inst.rs().pings_sent(), 0u);
  EXPECT_EQ(inst.rs().outstanding_pings(), 0u);
  EXPECT_EQ(inst.kern().stats().hangs, 0u);
}

TEST(RecoveryIntegration, MonitorTableOverflowFailsLoudlyNotSilently) {
  // Boot monitors PM/VM/VFS/DS (4 of 8 slots); the next 4 registrations
  // succeed, the 9th must be *rejected* — a server silently dropped from
  // heartbeat coverage would hang undetectably.
  FiGuard guard;
  os::OsConfig cfg;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(inst.rs().monitor(kernel::Endpoint{40 + i})) << "slot " << i;
  }
  EXPECT_FALSE(inst.rs().monitor(kernel::Endpoint{50}));  // table is full
}

TEST(RecoveryIntegration, PersistentFaultClimbsLadderToQuarantineAndSystemSurvives) {
  // The tentpole end-to-end: a deterministic bug in DS re-fires after every
  // recovery. The flat policy would either crash-loop forever or wedge; the
  // ladder retries, backs off, and finally quarantines DS — while the
  // workload (and unrelated VFS service) runs to completion.
  FiGuard guard;
  const auto workload = [](ISys& sys) {
    for (int i = 0; i < 30; ++i) sys.ds_publish("ladder.key", 1);
  };
  fi::Site* site = busiest_site("ds", workload);
  ASSERT_NE(site, nullptr);

  fi::Registry::instance().reset_counts();
  os::OsConfig cfg;
  cfg.ladder.backoff_base_ticks = 50;  // short parks keep the test quick
  cfg.ladder.quarantine_cooldown_ticks = 100000;  // stays quarantined to the end
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  fi::Registry::instance().arm_persistent(site, fi::FaultType::kNullDeref, 2);
  int ds_failures = 0;
  int vfs_ok = 0;
  const auto outcome = inst.run([&](ISys& sys) {
    for (int i = 0; i < 120; ++i) {
      if (sys.ds_publish("ladder.key", static_cast<std::uint64_t>(i)) != kernel::OK) {
        ++ds_failures;
      }
    }
    // Unrelated service must be untouched by DS's quarantine (degraded
    // mode, not shutdown): the shell-style VFS path still works.
    for (int i = 0; i < 10; ++i) {
      os::StatResult st{};
      if (sys.stat("/bin/true", &st) == kernel::OK) ++vfs_ok;
    }
  });
  EXPECT_EQ(outcome, OsInstance::Outcome::kCompleted);
  const auto& stats = inst.engine().stats();
  EXPECT_GE(stats.recurring_crashes, 1u);
  EXPECT_GE(stats.ladder_stateless, 1u);  // rung 1 was tried first...
  EXPECT_GE(stats.quarantines, 1u);       // ...then rung 2 took over
  EXPECT_EQ(stats.giveups, 0u);
  EXPECT_TRUE(inst.engine().is_parked(kernel::kDsEp));
  EXPECT_TRUE(inst.kern().is_quarantined(kernel::kDsEp));
  EXPECT_GT(inst.kern().stats().quarantine_rejects, 0u);
  EXPECT_GT(ds_failures, 0);  // degraded: DS calls fail fast with E_CRASH
  EXPECT_EQ(vfs_ok, 10);      // alive: everything else is fully served
}

TEST(RecoveryIntegration, VfsWorkerCrashGetsThreadFixup) {
  FiGuard guard;
  const auto workload = [](ISys& sys) {
    for (int i = 0; i < 10; ++i) {
      os::StatResult st{};
      sys.stat("/bin/true", &st);
    }
  };
  fi::Site* site = busiest_site("vfs", workload);
  ASSERT_NE(site, nullptr);

  fi::Registry::instance().reset_counts();
  os::OsConfig cfg;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  fi::Registry::instance().arm(site, fi::FaultType::kNullDeref, 8);
  const auto outcome = inst.run([](ISys& sys) {
    // Hammer the worker-thread path before and after the crash: the VFS
    // thread pool must stay fully serviceable after the SIV-E fixup.
    int ok = 0;
    for (int i = 0; i < 40; ++i) {
      os::StatResult st{};
      if (sys.stat("/bin/true", &st) == kernel::OK) ++ok;
    }
    if (ok < 39) sys.exit(1);  // stat is retried: at most nothing is lost
  });
  if (outcome == OsInstance::Outcome::kCompleted) {
    EXPECT_EQ(inst.engine().recoveries_of(kernel::kVfsEp), 1u);
  } else {
    // The fault may have landed outside the window (after a disk yield).
    EXPECT_EQ(outcome, OsInstance::Outcome::kShutdown);
  }
}

TEST(RecoveryIntegration, UndoLogHighWaterIsBounded) {
  // The design premise (SIV-C): OS components do little work per request, so
  // per-request undo logs stay small even under the full suite.
  FiGuard guard;
  os::OsConfig cfg;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  const auto suite = workload::run_suite(inst);
  ASSERT_EQ(suite.failed, 0);
  for (recovery::Recoverable* comp : inst.components()) {
    const auto& stats = comp->ckpt_context().log().stats();
    EXPECT_GT(stats.checkpoints, 0u) << comp->name();
    // Generous bound: no component's per-request log ever exceeded 256 KiB.
    EXPECT_LT(stats.max_log_bytes, 256u * 1024u) << comp->name();
  }
}

TEST(RecoveryIntegration, RecoveryDisabledMeansCrashIsFatal) {
  FiGuard guard;
  const auto workload = [](ISys& sys) {
    for (int i = 0; i < 30; ++i) sys.getpid();
  };
  fi::Site* site = busiest_site("pm", workload);
  ASSERT_NE(site, nullptr);

  fi::Registry::instance().reset_counts();
  os::OsConfig cfg;
  cfg.recovery_enabled = false;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  fi::Registry::instance().arm(site, fi::FaultType::kNullDeref, 10);
  const auto outcome = inst.run(workload);
  EXPECT_EQ(outcome, OsInstance::Outcome::kCrashed);
}

TEST(RecoveryIntegration, RsItselfIsRecoverable) {
  FiGuard guard;
  const auto workload = [](ISys& sys) {
    for (int i = 0; i < 20; ++i) sys.rs_status(2);
  };
  fi::Site* site = busiest_site("rs", workload);
  ASSERT_NE(site, nullptr);

  fi::Registry::instance().reset_counts();
  os::OsConfig cfg;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  fi::Registry::instance().arm(site, fi::FaultType::kNullDeref, 12);
  const auto outcome = inst.run([](ISys& sys) {
    int ok = 0;
    for (int i = 0; i < 20; ++i) {
      if (sys.rs_status(2) >= 0) ++ok;
    }
    if (ok < 19) sys.exit(1);
  });
  if (outcome == OsInstance::Outcome::kCompleted) {
    EXPECT_GE(inst.engine().recoveries_of(kernel::kRsEp), 1u);
  } else {
    EXPECT_EQ(outcome, OsInstance::Outcome::kShutdown);
  }
}

#if OSIRIS_TRACE_ENABLED
// With tracing compiled in, the ladder climb is also checkable as an event
// *sequence*, not just as end-state counters: the trace must show the climb
// in order — recurring classification, rung-1 stateless parks, quarantine —
// and agree with the engine's statistics event-for-event. The byte-exact
// golden-trace versions of the five rungs live in the osiris_trace_tests
// binary (ctest -L trace); this cross-check keeps the tier-1 suite robust to
// formatting while still pinning the ladder's observable order.
TEST(RecoveryIntegration, LadderClimbIsVisibleInTraceAndMatchesStats) {
  using trace::EventKind;
  using trace_test::Pat;
  FiGuard guard;
  const auto workload = [](ISys& sys) {
    for (int i = 0; i < 30; ++i) sys.ds_publish("ladder.key", 1);
  };
  fi::Site* site = busiest_site("ds", workload);
  ASSERT_NE(site, nullptr);

  fi::Registry::instance().reset_counts();
  os::OsConfig cfg;
  cfg.trace_enabled = true;
  cfg.trace_ring_capacity = 1u << 16;  // retain the whole climb, drop nothing
  cfg.ladder.backoff_base_ticks = 50;
  cfg.ladder.quarantine_cooldown_ticks = 100000;  // parked to the end
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  fi::Registry::instance().arm_persistent(site, fi::FaultType::kNullDeref, 2);
  const auto outcome = inst.run([](ISys& sys) {
    for (int i = 0; i < 120; ++i) {
      (void)sys.ds_publish("ladder.key", static_cast<std::uint64_t>(i));
    }
  });
  EXPECT_EQ(outcome, OsInstance::Outcome::kCompleted);
  ASSERT_NE(inst.tracer(), nullptr);
  const auto events = inst.tracer()->merged();
  const std::int32_t ds = kernel::kDsEp.value;

  EXPECT_TRUE(trace_test::expect_subsequence(events, {
                  Pat{EventKind::kCrash, ds}.with_a1(0),           // first crash: transient
                  Pat{EventKind::kCrash, ds}.with_a1(1),           // then classified recurring
                  Pat{EventKind::kRecoveryStateless, ds}.with_a1(1),  // rung 1: parked restart
                  Pat{EventKind::kRecoveryQuarantine, ds},            // rung 2: parked for good
              }));
  // Rung-1 parks readmit once their backoff expires, but the long cooldown
  // means the final quarantine is never lifted inside this run.
  EXPECT_TRUE(trace_test::expect_absent(events, Pat{EventKind::kRecoveryReadmit, ds}.with_a0(2)));

  // Trace and engine statistics are two views of the same history.
  const auto& stats = inst.engine().stats();
  const auto count = [&events](const Pat& p) {
    std::uint64_t n = 0;
    for (const trace::Event& e : events) {
      if (p.matches(e)) ++n;
    }
    return n;
  };
  EXPECT_EQ(count(Pat{EventKind::kCrash, ds}.with_a1(1)), stats.recurring_crashes);
  EXPECT_EQ(count(Pat{EventKind::kRecoveryStateless, ds}.with_a1(1)), stats.ladder_stateless);
  EXPECT_EQ(count(Pat{EventKind::kRecoveryQuarantine, ds}), stats.quarantines);
}
#endif  // OSIRIS_TRACE_ENABLED
