// Liveness faults vs the physiological health monitor (DESIGN.md §15).
//
// Storm faults (handler spin, channel flood) are invisible to crash and
// heartbeat detection by construction: the component stays live and keeps
// answering pings while it burns dispatches or floods a peer. These tests
// pin the whole detection pipeline — charge attribution, EWMA fever,
// throttle, quarantine + fault disarm, readmission — plus the properties
// that keep it honest: zero false positives on clean load, and heartbeat
// truthfulness under an active throttle.
#include <gtest/gtest.h>

#include <string_view>

#include "kernel/health.hpp"
#include "os/instance.hpp"
#include "workload/campaign.hpp"
#include "workload/suite.hpp"

using namespace osiris;

namespace {

/// The plan_storm() entry for `type` whose site lives in subsystem `tag`
/// (every subsystem gets one spin and one flood entry).
workload::StormInjection storm_entry(fi::FaultType type, std::string_view tag) {
  for (const workload::StormInjection& s : workload::plan_storm()) {
    if (s.site != nullptr && s.type == type && std::string_view(s.site->tag) == tag) return s;
  }
  ADD_FAILURE() << "no " << fi::fault_name(type) << " entry for tag " << tag;
  return {};
}

struct StormRun {
  os::OsInstance::Outcome outcome = os::OsInstance::Outcome::kCompleted;
  int failed = 0;
  bool driver_completed = false;
  kernel::KernelStats ks;
  recovery::EngineStats es;
  bool armed_after_suite = false;  // storm fault still armed when the suite ended
};

/// One suite run with the health monitor on and (optionally) a storm armed —
/// the same shape as workload::run_one_storm, but exposing the raw stats.
StormRun run_storm_scenario(const workload::StormInjection& s) {
  fi::Registry& reg = fi::Registry::instance();
  reg.disarm();
  reg.reset_counts();

  os::OsConfig cfg;
  cfg.health.enabled = true;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  if (s.site != nullptr) {
    reg.set_storm_plan(s.victim, s.burst);
    reg.arm_persistent(s.site, s.type, s.trigger_hit);
  }
  const workload::SuiteResult suite = workload::run_suite(inst);

  // The suite driver exits the moment init finishes, which is routinely
  // before the storm rung's readmission cooldown expires. Drain the clock
  // program (bounded by a tick horizon — heartbeat sweeps reschedule
  // forever) so a pending readmission gets to run before we sample stats.
  if (inst.engine().stats().storm_quarantines > 0) {
    const std::uint64_t horizon = inst.clock().now() + 20000;
    while (inst.clock().now() < horizon && inst.engine().stats().readmissions == 0 &&
           inst.clock().advance_to_next()) {
      inst.kern().dispatch_pending();
    }
  }

  StormRun r;
  r.outcome = suite.outcome;
  r.failed = suite.failed;
  r.driver_completed = suite.driver_completed;
  r.ks = inst.kern().stats();
  r.es = inst.engine().stats();
  r.armed_after_suite = reg.armed();
  reg.disarm();
  return r;
}

}  // namespace

// --- HealthMonitor unit level ---------------------------------------------

namespace {

kernel::HealthConfig tiny_config() {
  kernel::HealthConfig c;
  c.enabled = true;
  c.quantum_dispatches = 8;
  c.ewma_shift = 1;       // fast fold: ewma += (sample - ewma) / 2
  c.fever_threshold = 3;
  c.onset_quanta = 2;
  c.escalate_quanta = 2;
  c.throttle_allowance = 1;
  c.idle_quantum_ticks = 100;
  return c;
}

/// Fill and close one quantum with `charges` charged deliveries to `ep`.
kernel::QuantumResult quantum(kernel::HealthMonitor& h, std::int32_t ep, int charges,
                              std::uint64_t now) {
  for (std::uint32_t i = 0; i < h.config().quantum_dispatches; ++i) h.note_delivery();
  for (int i = 0; i < charges; ++i) h.charge(ep);
  EXPECT_TRUE(h.quantum_due());
  return h.close_quantum(now);
}

}  // namespace

TEST(HealthMonitor, DisabledMonitorNeverSamples) {
  kernel::HealthMonitor h;  // default config: enabled = false
  for (int i = 0; i < 1000; ++i) h.note_delivery();
  EXPECT_FALSE(h.quantum_due());
}

TEST(HealthMonitor, SustainedChargesCrossThresholdAfterOnsetQuanta) {
  kernel::HealthMonitor h;
  h.configure(tiny_config());
  // Sample 6 > threshold 3, shift 1: ewma 3, then 4 (hot), then 5 (hot).
  EXPECT_TRUE(quantum(h, 7, 6, 10).fevers.empty());   // ewma 3: not hot yet
  EXPECT_TRUE(quantum(h, 7, 6, 20).fevers.empty());   // ewma 4: hot #1 of 2
  const kernel::QuantumResult r = quantum(h, 7, 6, 30);  // hot #2 -> onset
  ASSERT_EQ(r.fevers.size(), 1u);
  EXPECT_EQ(r.fevers[0].endpoint, 7);
  EXPECT_FALSE(r.fevers[0].escalation);
  EXPECT_TRUE(h.fevered(7));
  // The onset is an edge, not a level: staying hot does not re-fire it.
  EXPECT_TRUE(quantum(h, 7, 6, 40).fevers.empty());
}

TEST(HealthMonitor, SingleBurstQuantumIsNotAFever) {
  kernel::HealthMonitor h;
  h.configure(tiny_config());
  // One dense quantum, then quiet: the EWMA spike decays without an onset.
  EXPECT_TRUE(quantum(h, 4, 8, 10).fevers.empty());
  for (int q = 0; q < 8; ++q) EXPECT_TRUE(quantum(h, 4, 0, 20 + q).fevers.empty());
  EXPECT_EQ(h.ewma(4), 0);
  EXPECT_FALSE(h.fevered(4));
}

TEST(HealthMonitor, IdleQuantaDecayInsteadOfCharging) {
  kernel::HealthMonitor h;
  h.configure(tiny_config());
  // Quanta spanning > idle_quantum_ticks are heartbeat-paced idle: even
  // wall-to-wall charged traffic (pings/pongs open no windows) must decay.
  std::uint64_t now = 10;
  for (int q = 0; q < 10; ++q) {
    now += 500;  // 500 > idle_quantum_ticks (100): idle quantum
    EXPECT_TRUE(quantum(h, 5, 8, now).fevers.empty()) << "idle quantum " << q;
  }
  EXPECT_EQ(h.ewma(5), 0);
}

TEST(HealthMonitor, ThrottleAllowanceAndEscalation) {
  kernel::HealthMonitor h;
  h.configure(tiny_config());
  EXPECT_TRUE(h.admit(9));  // unthrottled: always admitted
  h.set_throttled(9, true);
  EXPECT_TRUE(h.is_throttled(9));
  EXPECT_TRUE(h.admit(9));   // allowance = 1
  EXPECT_FALSE(h.admit(9));  // past the allowance: caller drops
  // Hot under throttle for escalate_quanta (2) quanta -> escalation event.
  EXPECT_TRUE(quantum(h, 9, 6, 10).fevers.empty());  // ewma 3: not hot
  EXPECT_TRUE(quantum(h, 9, 6, 20).fevers.empty());  // ewma 4: throttled-hot #1
  const kernel::QuantumResult r = quantum(h, 9, 6, 30);  // throttled-hot #2
  ASSERT_EQ(r.fevers.size(), 1u);
  EXPECT_TRUE(r.fevers[0].escalation);
  // close_quantum resets the allowance each quantum.
  EXPECT_TRUE(h.admit(9));
  h.set_throttled(9, false);
  EXPECT_FALSE(h.is_throttled(9));
}

TEST(HealthMonitor, StarvationFlagsQuantaDominatedByCharges) {
  kernel::HealthMonitor h;
  h.configure(tiny_config());
  EXPECT_FALSE(quantum(h, 3, 4, 10).starved);  // 4*2 == 8: not strictly >
  EXPECT_TRUE(quantum(h, 3, 5, 20).starved);
}

// --- full-system scenarios ------------------------------------------------

TEST(Storm, HandlerSpinMasksHeartbeatsButNotTheMonitor) {
  // The satellite regression: a spinning handler still answers every
  // heartbeat ping, so the hang sweep stays silent — zero hangs — while the
  // physiological monitor flags the same component as feverish and the
  // ladder's storm rung engages.
  const workload::StormInjection spin = storm_entry(fi::FaultType::kHandlerSpin, "pm");
  ASSERT_NE(spin.site, nullptr);
  const StormRun r = run_storm_scenario(spin);

  EXPECT_EQ(r.ks.hangs, 0u) << "spin storms must be invisible to hang detection";
  EXPECT_EQ(r.ks.crashes, 0u) << "spin storms must be invisible to crash detection";
  EXPECT_GT(r.ks.fever_onsets, 0u);
  EXPECT_GT(r.ks.health_charges, 0u);
  EXPECT_GE(r.es.storm_throttles, 1u);
  EXPECT_TRUE(r.es.storm_detected);
}

TEST(Storm, QuarantineDisarmsStormAndReadmitsClean) {
  // Throttle-then-quarantine must *end* an infinite re-firing fault: the
  // quarantine disarms it, so the flood pump stops and the readmitted
  // component comes back healthy. The ds flood is the canonical instance —
  // it escalates past the throttle and the suite still completes.
  const workload::StormInjection flood = storm_entry(fi::FaultType::kChannelFlood, "ds");
  ASSERT_NE(flood.site, nullptr);
  const StormRun r = run_storm_scenario(flood);

  EXPECT_GE(r.es.storm_throttles, 1u);
  EXPECT_GE(r.es.storm_quarantines, 1u);
  EXPECT_EQ(r.es.storm_disarms, 1u);
  EXPECT_FALSE(r.armed_after_suite) << "quarantine left the storm fault armed";
  EXPECT_GE(r.es.readmissions, 1u) << "quarantined component was never readmitted";
  EXPECT_EQ(r.outcome, os::OsInstance::Outcome::kCompleted);
  EXPECT_TRUE(r.driver_completed);
}

TEST(Storm, FloodDetectionLatencyIsBounded) {
  // Channel floods are clock-pumped, so their detection latency is measured
  // in real virtual time. The bound is deliberately loose (a handful of
  // fever quanta at pump pace); the bench reports the exact number.
  const workload::StormInjection flood = storm_entry(fi::FaultType::kChannelFlood, "vm");
  ASSERT_NE(flood.site, nullptr);
  const StormRun r = run_storm_scenario(flood);

  ASSERT_TRUE(r.es.storm_detected);
  EXPECT_LE(r.es.detection_latency_ticks, 1000u)
      << "flood ran for over 1000 ticks before the throttle engaged";
}

TEST(Storm, CleanSuiteProducesZeroFalsePositives) {
  // Monitor on, nothing armed: the legitimate suite — including its bulk
  // I/O bursts and idle heartbeat-only stretches — must never read as a
  // fever. This is the property the EWMA threshold and the idle-quantum
  // decay rule exist to uphold.
  const StormRun r = run_storm_scenario(workload::StormInjection{});

  EXPECT_EQ(r.ks.fever_onsets, 0u) << "health monitor cried wolf on a clean run";
  EXPECT_EQ(r.es.storm_throttles, 0u);
  EXPECT_EQ(r.es.storm_quarantines, 0u);
  EXPECT_EQ(r.ks.throttled_drops, 0u);
  EXPECT_EQ(r.outcome, os::OsInstance::Outcome::kCompleted);
  EXPECT_EQ(r.failed, 0);
}

TEST(Storm, HealthMonitoringOffIsFreeAndSilent) {
  // The default configuration must be bit-identical to the pre-storm world:
  // no charges, no onsets, no drops, suite green.
  fi::Registry& reg = fi::Registry::instance();
  reg.disarm();
  reg.reset_counts();
  os::OsConfig cfg;  // health.enabled defaults to false
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  const workload::SuiteResult suite = workload::run_suite(inst);

  EXPECT_EQ(inst.kern().stats().health_charges, 0u);
  EXPECT_EQ(inst.kern().stats().fever_onsets, 0u);
  EXPECT_EQ(inst.kern().stats().throttled_drops, 0u);
  EXPECT_EQ(suite.outcome, os::OsInstance::Outcome::kCompleted);
  EXPECT_EQ(suite.failed, 0);
}

TEST(Storm, StormFaultsRideTheRegularArmingApi) {
  // Satellite: storm faults arm through the same arm_persistent used by the
  // recurring campaigns, and disarm_storms_for only clears *storm* faults
  // owned by the quarantined endpoint — a persistent crash fault survives.
  // Sites register lazily on first probe execution, so pull one out of the
  // storm plan (whose profiling pass boots and runs the suite) rather than
  // assuming an earlier test already populated the directory.
  const fi::Site* site = storm_entry(fi::FaultType::kHandlerSpin, "pm").site;
  ASSERT_NE(site, nullptr);
  fi::Registry& reg = fi::Registry::instance();
  reg.disarm();
  reg.reset_counts();

  reg.arm_persistent(site, fi::FaultType::kNullDeref, 1);
  EXPECT_FALSE(reg.disarm_storms_for(/*endpoint=*/3)) << "crash faults are not storms";
  EXPECT_TRUE(reg.armed());
  reg.disarm();

  reg.set_storm_plan(/*victim=*/4, /*burst=*/8);
  reg.arm_persistent(site, fi::FaultType::kHandlerSpin, 1);
  EXPECT_TRUE(reg.armed());
  // No owner yet (the probe has not fired): disarm misses...
  EXPECT_FALSE(reg.disarm_storms_for(/*endpoint=*/3));
  EXPECT_TRUE(reg.armed());
  reg.disarm();
  EXPECT_FALSE(reg.armed());
}
