// Assertion DSL for trace-based tests.
//
// A Pat matches one trace::Event by kind, optionally pinned to a component
// and to any subset of the scalar arguments. The matchers return
// testing::AssertionResult so failures print the pattern AND the relevant
// slice of the trace — debugging a recovery test should never require
// re-running with printf.
//
//   EXPECT_TRUE(expect_subsequence(events, {
//       Pat{EventKind::kFaultFire, kDs},
//       Pat{EventKind::kCrash, kDs},
//       Pat{EventKind::kRecoveryQuarantine, kDs}.with_a1(1),  // budget
//   }));
//
// Golden traces: check_golden(name, text) diffs `text` against
// tests/golden/<name>; set OSIRIS_REGOLDEN=1 to (re)write the files instead
// after an intentional instrumentation change.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "trace/event.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"

namespace osiris::trace_test {

struct Pat {
  trace::EventKind kind;
  std::int32_t comp = -1;  // -1 = any component
  std::optional<std::uint64_t> a0;
  std::optional<std::uint64_t> a1;
  std::optional<std::uint64_t> a2;

  Pat(trace::EventKind k, std::int32_t c = -1) : kind(k), comp(c) {}
  Pat(trace::EventKind k, std::int32_t c, std::uint64_t v0, std::uint64_t v1)
      : kind(k), comp(c), a0(v0), a1(v1) {}

  Pat with_a0(std::uint64_t v) const { Pat p = *this; p.a0 = v; return p; }
  Pat with_a1(std::uint64_t v) const { Pat p = *this; p.a1 = v; return p; }
  Pat with_a2(std::uint64_t v) const { Pat p = *this; p.a2 = v; return p; }

  [[nodiscard]] bool matches(const trace::Event& e) const {
    return e.kind == kind && (comp < 0 || e.comp == comp) && (!a0 || *a0 == e.a0) &&
           (!a1 || *a1 == e.a1) && (!a2 || *a2 == e.a2);
  }

  [[nodiscard]] std::string describe() const {
    std::ostringstream os;
    os << trace::kind_name(kind);
    if (comp >= 0) os << " comp=" << comp;
    if (a0) os << " a0=" << *a0;
    if (a1) os << " a1=" << *a1;
    if (a2) os << " a2=" << *a2;
    return os.str();
  }
};

inline std::string dump_events(const std::vector<trace::Event>& events, std::size_t limit = 60) {
  std::ostringstream os;
  for (std::size_t i = 0; i < events.size() && i < limit; ++i) {
    const trace::Event& e = events[i];
    os << "  [" << e.seq << "] @" << e.tick << " comp=" << e.comp << ' '
       << trace::kind_name(e.kind) << ' ' << e.a0 << ' ' << e.a1 << ' ' << e.a2 << '\n';
  }
  if (events.size() > limit) os << "  ... (" << events.size() - limit << " more)\n";
  return os.str();
}

/// The patterns must appear in order (not necessarily adjacent) in `events`.
inline testing::AssertionResult expect_subsequence(const std::vector<trace::Event>& events,
                                                   const std::vector<Pat>& pats) {
  std::size_t next = 0;
  for (const trace::Event& e : events) {
    if (next < pats.size() && pats[next].matches(e)) ++next;
  }
  if (next == pats.size()) return testing::AssertionSuccess();
  return testing::AssertionFailure()
         << "trace is missing pattern " << next << " of " << pats.size() << ": ["
         << pats[next].describe() << "] (matched " << next << " so far)\ntrace ("
         << events.size() << " events):\n"
         << dump_events(events);
}

/// No event matching `pat` may appear anywhere in `events`.
inline testing::AssertionResult expect_absent(const std::vector<trace::Event>& events,
                                              const Pat& pat) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (pat.matches(events[i])) {
      return testing::AssertionFailure()
             << "pattern [" << pat.describe() << "] unexpectedly matched event " << i << " (seq "
             << events[i].seq << ")\ntrace:\n"
             << dump_events(events);
    }
  }
  return testing::AssertionSuccess();
}

/// `comp`'s first kWindowClose must carry the expected cause.
inline testing::AssertionResult expect_window_closed_by(const std::vector<trace::Event>& events,
                                                        std::int32_t comp,
                                                        trace::CloseCause cause) {
  for (const trace::Event& e : events) {
    if (e.kind == trace::EventKind::kWindowClose && e.comp == comp) {
      if (e.a0 == static_cast<std::uint64_t>(cause)) return testing::AssertionSuccess();
      return testing::AssertionFailure()
             << "component " << comp << "'s first window close was caused by '"
             << trace::close_cause_name(static_cast<trace::CloseCause>(e.a0)) << "', expected '"
             << trace::close_cause_name(cause) << "'";
    }
  }
  return testing::AssertionFailure()
         << "component " << comp << " never closed a window\ntrace:\n" << dump_events(events);
}

/// Keep only the listed kinds (golden traces pin the landmark events and
/// stay robust to added instrumentation in the high-churn IPC/undo paths).
inline std::vector<trace::Event> filter_events(const std::vector<trace::Event>& events,
                                               std::initializer_list<trace::EventKind> kinds) {
  std::vector<trace::Event> out;
  for (const trace::Event& e : events) {
    for (const trace::EventKind k : kinds) {
      if (e.kind == k) {
        out.push_back(e);
        break;
      }
    }
  }
  return out;
}

/// The landmark kinds every golden recovery trace is filtered to.
inline std::vector<trace::Event> recovery_landmarks(const std::vector<trace::Event>& events) {
  using trace::EventKind;
  return filter_events(events,
                       {EventKind::kWindowOpen, EventKind::kWindowClose, EventKind::kFaultFire,
                        EventKind::kCrash, EventKind::kRecoveryRestart,
                        EventKind::kRecoveryRollback, EventKind::kRecoveryStateless,
                        EventKind::kRecoveryQuarantine, EventKind::kRecoveryReadmit,
                        EventKind::kFeverOnset, EventKind::kRecoveryThrottle});
}

/// Compare `text` against tests/golden/<name>. With OSIRIS_REGOLDEN set the
/// file is rewritten instead and the assertion passes (commit the diff).
inline testing::AssertionResult check_golden(const std::string& name, const std::string& text) {
  const std::string path = std::string(OSIRIS_SOURCE_ROOT) + "/tests/golden/" + name;
  if (std::getenv("OSIRIS_REGOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return testing::AssertionFailure() << "cannot write golden file " << path;
    out << text;
    return testing::AssertionSuccess() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return testing::AssertionFailure()
           << "golden file " << path << " missing (run with OSIRIS_REGOLDEN=1 to create it)";
  }
  std::ostringstream want;
  want << in.rdbuf();
  if (want.str() == text) return testing::AssertionSuccess();

  // First differing line, for a readable failure.
  std::istringstream a(want.str());
  std::istringstream b(text);
  std::string la;
  std::string lb;
  int line = 0;
  while (true) {
    ++line;
    const bool ga = static_cast<bool>(std::getline(a, la));
    const bool gb = static_cast<bool>(std::getline(b, lb));
    if (!ga && !gb) break;
    if (la != lb || ga != gb) {
      return testing::AssertionFailure()
             << "golden mismatch vs " << name << " at line " << line << "\n  golden: "
             << (ga ? la : "<eof>") << "\n  actual: " << (gb ? lb : "<eof>")
             << "\n(set OSIRIS_REGOLDEN=1 to regenerate after an intentional change)";
    }
  }
  return testing::AssertionFailure() << "golden mismatch vs " << name << " (content differs)";
}

}  // namespace osiris::trace_test
