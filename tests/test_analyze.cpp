// osiris-analyze integration: the static analyzer must (a) report zero
// findings on the real tree, (b) detect every seeded violation in the
// fixture tree, and (c) produce SEEP predictions that agree with the
// hand-authored classification table and with runtime WindowStats from the
// standard workload.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "analyzer.hpp"
#include "os/instance.hpp"
#include "seep/policy.hpp"
#include "servers/protocol.hpp"
#include "workload/suite.hpp"

namespace analyze = osiris::analyze;
using osiris::seep::Policy;

namespace {

const analyze::Report& clean_report() {
  static const analyze::Report report = analyze::analyze_tree(OSIRIS_SOURCE_ROOT);
  return report;
}

/// Map the analyzer's enum mirrors onto the runtime enums.
osiris::seep::SeepClass to_runtime(analyze::SeepClass c) {
  switch (c) {
    case analyze::SeepClass::kNonStateModifying:
      return osiris::seep::SeepClass::kNonStateModifying;
    case analyze::SeepClass::kStateModifying:
      return osiris::seep::SeepClass::kStateModifying;
    case analyze::SeepClass::kRequesterScoped:
      return osiris::seep::SeepClass::kRequesterScoped;
  }
  return osiris::seep::SeepClass::kStateModifying;
}

osiris::seep::Policy to_runtime(analyze::Policy p) {
  switch (p) {
    case analyze::Policy::kPessimistic:
      return osiris::seep::Policy::kPessimistic;
    case analyze::Policy::kEnhanced:
      return osiris::seep::Policy::kEnhanced;
    case analyze::Policy::kExtended:
      return osiris::seep::Policy::kExtended;
  }
  return osiris::seep::Policy::kPessimistic;
}

/// Analyzer policy index for a runtime policy (the prediction array order).
int policy_index(Policy p) {
  switch (p) {
    case Policy::kPessimistic:
      return 0;
    case Policy::kEnhanced:
      return 1;
    case Policy::kExtended:
      return 2;
    default:
      return -1;
  }
}

}  // namespace

TEST(Analyze, CleanTreeHasZeroFindings) {
  const analyze::Report& r = clean_report();
  for (const auto& f : r.findings) {
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.detector << "] " << f.message;
  }
  EXPECT_GE(r.files_scanned, 30);
  EXPECT_EQ(r.state_structs_checked, 6);  // pm, vm, vfs, ds, rs, sys
  EXPECT_GT(r.state_fields_checked, 20);
  EXPECT_FALSE(r.messages.empty());
  EXPECT_FALSE(r.sites.empty());
}

TEST(Analyze, LoaderRejectsMissingAndNonDirectoryRoots) {
  // Loader hardening: a typo'd root and a file-where-a-tree-was-expected must
  // both fail loudly (the WILL_FAIL ctest gates pin the CLI exit code; this
  // pins the library-level exception so the message stays distinguishable).
  EXPECT_THROW(analyze::analyze_tree(std::string(OSIRIS_SOURCE_ROOT) + "/no-such-tree"),
               std::runtime_error);
  EXPECT_THROW(analyze::analyze_tree(std::string(OSIRIS_SOURCE_ROOT) + "/CMakeLists.txt"),
               std::runtime_error);
}

TEST(Analyze, LoaderRejectsStrayEmptySourceInTree) {
  // fixture_stray holds a single zero-byte src/servers/stray.cpp — the
  // "touch / failed checkout" artifact that would otherwise analyze as a
  // clean (empty) tree.
  EXPECT_THROW(
      analyze::analyze_tree(std::string(OSIRIS_SOURCE_ROOT) + "/tools/analyze/fixture_stray"),
      std::runtime_error);
}

TEST(Analyze, FixtureSeedsEveryDetector) {
  const analyze::Report r =
      analyze::analyze_tree(std::string(OSIRIS_SOURCE_ROOT) + "/tools/analyze/fixture");
  const std::map<std::string, int> by = r.findings_by_detector();

  const std::map<std::string, int> expected = {
      {analyze::kDetStateRawField, 1},  {analyze::kDetStateMemfn, 1},
      {analyze::kDetStateConstCast, 1}, {analyze::kDetMutateEscape, 2},
      {analyze::kDetRawKernelSend, 1},  {analyze::kDetUnclassifiedSend, 1},
      {analyze::kDetUnclassifiedMsg, 1}, {analyze::kDetStaleClassEntry, 1},
      {analyze::kDetSpecMissingHandler, 1},  // FX_DRIFT: row without a handler
      {analyze::kDetHandlerWithoutSpec, 1},  // PM_ROGUE: handler without a row
      {analyze::kDetHandlerKindDrift, 1},    // FX_NOTE: NOTE registered via on()
      {analyze::kDetSpecOwnerDrift, 1},      // FX_NOTE: vm-owned, pm-registered
      // Pass 4 (ds.cpp seeds). One finding each — and exactly one: the
      // unreached_helper escape must NOT be reported (reachability-rooted),
      // and repeated traversals must not duplicate site findings.
      {analyze::kDetBlockingInHandler, 1},   // wait_for_disk's read_now
      {analyze::kDetMutateAfterSend, 1},     // counter store after FX_POKE
      {analyze::kDetUnsummarizedCallee, 1},  // mystery_helper
      {analyze::kDetNondetPointerKey, 1},    // std::map<const Obj*, int>
      {analyze::kDetNondetAddrHash, 1},      // std::hash<const Obj*>
      {analyze::kDetNondetWallClock, 1},     // steady_clock
      {analyze::kDetNondetRand, 1},          // rand()
  };
  for (const auto& [detector, count] : expected) {
    const auto it = by.find(detector);
    ASSERT_NE(it, by.end()) << "detector never fired: " << detector;
    EXPECT_EQ(it->second, count) << "unexpected count for " << detector;
  }
  // The suppressed kernel_.notify occurrence must not add a finding (only
  // the seeded kernel_.send fires raw-kernel-send), and no detector outside
  // the expectation fired at all.
  std::size_t total = 0;
  for (const auto& [detector, count] : expected) total += static_cast<std::size_t>(count);
  EXPECT_EQ(r.findings.size(), total);
}

TEST(Analyze, PagedTableFieldIsValidRecoverableState) {
  // DESIGN.md §17: a ckpt::PagedTable member in a State struct is recoverable
  // state (its stores route through Context::log_write to the page tier), so
  // the discipline lint must not flag it as a state-raw-field. The fixture's
  // PmState carries one such field; only bad_counter may fire the detector.
  const analyze::Report r =
      analyze::analyze_tree(std::string(OSIRIS_SOURCE_ROOT) + "/tools/analyze/fixture");
  for (const auto& f : r.findings) {
    if (f.detector != analyze::kDetStateRawField) continue;
    EXPECT_EQ(f.message.find("good_paged"), std::string::npos) << f.message;
    EXPECT_NE(f.message.find("bad_counter"), std::string::npos) << f.message;
  }
}

TEST(Analyze, ParsedClassificationAgreesWithRuntimeTable) {
  const analyze::Report& r = clean_report();
  const osiris::seep::Classification runtime = osiris::servers::build_classification();

  // Same cardinality: every spec row was parsed, nothing extra. (The runtime
  // table is itself derived from the spec, so this closes the loop.)
  EXPECT_EQ(r.classification.size(), runtime.size());
  EXPECT_EQ(r.messages.size(), runtime.size());  // complete table, no strays

  // Per-entry agreement, keyed through the parsed enum values.
  std::map<std::string, std::uint32_t> values;
  for (const auto& m : r.messages) values[m.name] = m.value;
  for (const auto& e : r.classification) {
    const auto it = values.find(e.msg);
    ASSERT_NE(it, values.end()) << e.msg;
    const osiris::seep::MsgTraits t = runtime.get(it->second);
    EXPECT_EQ(t.seep, to_runtime(e.cls)) << e.msg;
    EXPECT_EQ(t.replyable, e.replyable) << e.msg;
  }
}

TEST(Analyze, SpecTableParsedExactly) {
  const analyze::Report& r = clean_report();
  // The analyzer's textual parse of OSIRIS_MSG_SPEC must reproduce the
  // compiled registry row for row — name, owner, class, kind and schema.
  ASSERT_EQ(r.spec.size(), osiris::servers::kMsgSpecCount);
  for (const auto& row : r.spec) {
    const auto* s = osiris::servers::find_msg_spec(row.value);
    ASSERT_NE(s, nullptr) << row.name;
    EXPECT_EQ(row.name, s->name);
    EXPECT_EQ(row.owner, s->server) << row.name;
    EXPECT_EQ(to_runtime(row.cls), s->seep) << row.name;
    EXPECT_EQ(row.kind == "NOTE", s->notify()) << row.name;
    EXPECT_EQ(row.kind == "REQ", s->replyable()) << row.name;
    EXPECT_EQ(row.args, static_cast<int>(s->args)) << row.name;
    EXPECT_EQ(row.text, s->text) << row.name;
  }
  // And the handler extraction saw every server's register_handlers().
  std::map<std::string, int> regs_by_server;
  for (const auto& h : r.handlers) ++regs_by_server[h.server];
  for (const char* server : {"pm", "vm", "vfs", "ds", "rs", "sys"}) {
    EXPECT_GT(regs_by_server[server], 0) << server;
  }
}

TEST(Analyze, PolicyMirrorsMatchRuntimePolicyFunctions) {
  for (int pi = 0; pi < analyze::kNumPolicies; ++pi) {
    const auto ap = static_cast<analyze::Policy>(pi);
    for (int ci = 0; ci < 3; ++ci) {
      const auto ac = static_cast<analyze::SeepClass>(ci);
      EXPECT_EQ(analyze::policy_closes_window(ap, ac),
                osiris::seep::policy_closes_window(to_runtime(ap), to_runtime(ac)))
          << analyze::policy_name(ap) << " / " << analyze::seep_class_name(ac);
      EXPECT_EQ(analyze::policy_taints_window(ap, ac),
                osiris::seep::policy_taints_window(to_runtime(ap), to_runtime(ac)))
          << analyze::policy_name(ap) << " / " << analyze::seep_class_name(ac);
    }
  }
}

TEST(Analyze, ChannelGraphContainsKnownEdges) {
  const analyze::Report& r = clean_report();
  const auto has_edge = [&r](const std::string& from, const std::string& to) {
    for (const auto& e : r.edges) {
      if (e.from == from && e.to == to) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_edge("pm", "vm"));
  EXPECT_TRUE(has_edge("pm", "vfs"));
  EXPECT_TRUE(has_edge("pm", "sys"));
  EXPECT_TRUE(has_edge("pm", "ds"));
  EXPECT_TRUE(has_edge("rs", "ds"));
  EXPECT_TRUE(has_edge("vm", "sys"));
  // RCB channels: the engine's park/readmit announcements to RS are raw
  // kernel sends (the RCB has no window) but still appear as graph edges.
  EXPECT_TRUE(has_edge("rcb", "rs"));
}

TEST(Analyze, RcbSitesAreClassifiedButExcludedFromPredictions) {
  const analyze::Report& r = clean_report();
  int rcb_sites = 0;
  for (const auto& s : r.sites) {
    if (s.server != "rcb") continue;
    ++rcb_sites;
    EXPECT_TRUE(s.classified) << s.file << ":" << s.line << " uses " << s.msg;
  }
  EXPECT_GE(rcb_sites, 2);  // RS_PARK + RS_READMIT announcements
  EXPECT_EQ(r.prediction_for("rcb"), nullptr);  // no window to predict
}

TEST(Analyze, StaticPredictionsMatchHandAnalysis) {
  const analyze::Report& r = clean_report();
  // DS only answers queries and publishes notifications: all of its outbound
  // traffic is non-state-modifying, so its window survives every policy
  // except the pessimistic one.
  const analyze::WindowPrediction* ds = r.prediction_for("ds");
  ASSERT_NE(ds, nullptr);
  EXPECT_TRUE(ds->may_close_by_seep[policy_index(Policy::kPessimistic)]);
  EXPECT_FALSE(ds->may_close_by_seep[policy_index(Policy::kEnhanced)]);
  EXPECT_FALSE(ds->may_close_by_seep[policy_index(Policy::kExtended)]);

  // PM forwards brk to VM as a requester-scoped SEEP: under the extended
  // policy that taints instead of closing; PM is the only server with
  // requester-scoped outbound traffic.
  const analyze::WindowPrediction* pm = r.prediction_for("pm");
  ASSERT_NE(pm, nullptr);
  EXPECT_TRUE(pm->may_taint[policy_index(Policy::kExtended)]);
  EXPECT_FALSE(pm->may_taint[policy_index(Policy::kEnhanced)]);
  for (const auto& p : r.predictions) {
    if (p.server != "pm") {
      EXPECT_FALSE(p.may_taint[policy_index(Policy::kExtended)]) << p.server;
    }
  }

  // The remaining servers all send state-modifying traffic: may close under
  // every windowed policy.
  for (const char* server : {"pm", "vm", "vfs", "rs"}) {
    const analyze::WindowPrediction* p = r.prediction_for(server);
    ASSERT_NE(p, nullptr) << server;
    for (int pi = 0; pi < analyze::kNumPolicies; ++pi) {
      EXPECT_TRUE(p->may_close_by_seep[pi]) << server << " policy " << pi;
    }
  }
}

TEST(Analyze, StaticPredictionsConsistentWithRuntimeWindowStats) {
  const analyze::Report& r = clean_report();

  for (const Policy policy : {Policy::kPessimistic, Policy::kEnhanced, Policy::kExtended}) {
    const int pi = policy_index(policy);
    ASSERT_GE(pi, 0);

    osiris::os::OsConfig cfg;
    cfg.policy = policy;
    osiris::os::OsInstance inst(cfg);
    osiris::workload::register_suite_programs(inst.programs());
    inst.boot();
    const auto result = osiris::workload::run_suite(inst);
    ASSERT_EQ(result.failed, 0) << osiris::seep::policy_name(policy);

    for (auto* comp : inst.components()) {
      const std::string name(comp->name());
      const auto& stats = comp->window().stats();
      const analyze::WindowPrediction* pred = r.prediction_for(name);
      if (pred == nullptr) {
        // A server with no outbound sites can never close its window by SEEP.
        EXPECT_EQ(stats.closed_by_seep, 0u) << name;
        EXPECT_EQ(stats.tainted, 0u) << name;
        continue;
      }
      // Soundness: runtime behaviour must stay inside the static envelope.
      if (!pred->may_close_by_seep[pi]) {
        EXPECT_EQ(stats.closed_by_seep, 0u)
            << name << " under " << osiris::seep::policy_name(policy)
            << ": runtime closed a window the analyzer proved cannot close";
      }
      if (stats.closed_by_seep > 0) {
        EXPECT_TRUE(pred->may_close_by_seep[pi])
            << name << " under " << osiris::seep::policy_name(policy);
      }
      if (!pred->may_taint[pi]) {
        EXPECT_EQ(stats.tainted, 0u) << name << " under " << osiris::seep::policy_name(policy);
      }
      if (stats.tainted > 0) {
        EXPECT_TRUE(pred->may_taint[pi]) << name;
      }
    }

    // Liveness spot-checks: the standard workload forks/execs, so PM and VM
    // demonstrably exercise their predicted closures under every windowed
    // policy (the prediction is not vacuously true).
    for (auto* comp : inst.components()) {
      const std::string name(comp->name());
      if (name == "pm" || name == "vm") {
        EXPECT_GT(comp->window().stats().closed_by_seep, 0u)
            << name << " under " << osiris::seep::policy_name(policy);
      }
    }
  }
}
