// Unit tests: the simulated microkernel — IPC, grants, crash containment,
// hang conversion, system lifecycle.
#include <gtest/gtest.h>

#include "kernel/faults.hpp"
#include "kernel/kernel.hpp"
#include "support/clock.hpp"

using namespace osiris;
using kernel::Access;
using kernel::CrashAction;
using kernel::CrashDecision;
using kernel::Endpoint;
using kernel::Kernel;
using kernel::make_msg;
using kernel::make_reply;
using kernel::Message;

namespace {

/// Scriptable server for kernel-level tests.
class StubServer : public kernel::IServer {
 public:
  using Handler = std::function<std::optional<Message>(const Message&)>;

  explicit StubServer(std::string name, Handler h = {}) : name_(std::move(name)), handler_(std::move(h)) {}

  [[nodiscard]] std::string_view name() const override { return name_; }
  std::optional<Message> dispatch(const Message& m) override {
    ++dispatches;
    last = m;
    if (handler_) return handler_(m);
    return make_reply(m.type, kernel::OK);
  }

  int dispatches = 0;
  Message last;

 private:
  std::string name_;
  Handler handler_;
};

class StubClient : public kernel::IClient {
 public:
  void on_reply(const Message& reply) override {
    ++replies;
    last_reply = reply;
  }
  void on_notify(const Message& msg) override {
    ++notifies;
    last_notify = msg;
  }
  int replies = 0;
  int notifies = 0;
  Message last_reply;
  Message last_notify;
};

struct KernelFixture : ::testing::Test {
  VirtualClock clock;
  Kernel kern{clock};
  StubServer server{"stub"};
  StubClient client;
  Endpoint client_ep;

  void SetUp() override {
    kern.register_server(kernel::kPmEp, &server);
    client_ep = kern.register_client(&client);
  }
};

}  // namespace

TEST_F(KernelFixture, SendDispatchesAndRepliesToClient) {
  kern.send(client_ep, kernel::kPmEp, make_msg(0x42, 7));
  EXPECT_TRUE(kern.dispatch_pending());
  EXPECT_EQ(server.dispatches, 1);
  EXPECT_EQ(server.last.sender, client_ep);
  EXPECT_EQ(server.last.arg[0], 7u);
  EXPECT_EQ(client.replies, 1);
  EXPECT_EQ(client.last_reply.type, kernel::reply_type(0x42));
}

TEST_F(KernelFixture, NotifyHasNotifyBitAndNoReply) {
  kern.notify(kernel::kPmEp, client_ep, 0x55);
  kern.dispatch_pending();
  EXPECT_EQ(client.notifies, 1);
  EXPECT_TRUE(kernel::is_notify(client.last_notify.type));
  EXPECT_EQ(client.replies, 0);
}

TEST_F(KernelFixture, NestedCallReturnsReplyInline) {
  StubServer callee("callee", [](const Message& m) {
    Message r = make_reply(m.type, 123);
    return std::optional<Message>(r);
  });
  kern.register_server(kernel::kVmEp, &callee);
  const Message r = kern.call(kernel::kPmEp, kernel::kVmEp, make_msg(0x10));
  EXPECT_EQ(r.sarg(0), 123);
  EXPECT_EQ(callee.dispatches, 1);
}

TEST_F(KernelFixture, CrashWithErrorReplyDecisionReachesRequester) {
  StubServer crasher("crasher", [](const Message&) -> std::optional<Message> {
    throw kernel::FailStopFault("bang", 1);
  });
  kern.register_server(kernel::kVmEp, &crasher);
  int handler_calls = 0;
  kern.set_crash_handler([&](const kernel::CrashContext& ctx) {
    ++handler_calls;
    EXPECT_EQ(ctx.crashed, kernel::kVmEp);
    EXPECT_TRUE(ctx.had_inflight);
    return CrashDecision{CrashAction::kErrorReply, make_reply(ctx.inflight.type, kernel::E_CRASH)};
  });
  kern.send(client_ep, kernel::kVmEp, make_msg(0x20));
  kern.dispatch_pending();
  EXPECT_EQ(handler_calls, 1);
  EXPECT_EQ(client.replies, 1);
  EXPECT_EQ(client.last_reply.sarg(0), kernel::E_CRASH);
  EXPECT_EQ(kern.state(), kernel::SystemState::kRunning);
}

TEST_F(KernelFixture, CrashInNestedCallReturnsErrorReplyToCaller) {
  StubServer crasher("crasher", [](const Message&) -> std::optional<Message> {
    throw kernel::FailStopFault("bang", 2);
  });
  kern.register_server(kernel::kVmEp, &crasher);
  kern.set_crash_handler([](const kernel::CrashContext& ctx) {
    return CrashDecision{CrashAction::kErrorReply, make_reply(ctx.inflight.type, kernel::E_CRASH)};
  });
  const Message r = kern.call(kernel::kPmEp, kernel::kVmEp, make_msg(0x30));
  EXPECT_EQ(r.sarg(0), kernel::E_CRASH);
}

TEST_F(KernelFixture, ShutdownDecisionHaltsSystem) {
  StubServer crasher("crasher", [](const Message&) -> std::optional<Message> {
    throw kernel::FailStopFault("fatal", 3);
  });
  kern.register_server(kernel::kVmEp, &crasher);
  kern.set_crash_handler([](const kernel::CrashContext&) {
    return CrashDecision{CrashAction::kShutdown, {}};
  });
  kern.send(client_ep, kernel::kVmEp, make_msg(0x40));
  EXPECT_THROW(kern.dispatch_pending(), kernel::ControlledShutdown);
  EXPECT_EQ(kern.state(), kernel::SystemState::kShutdown);
}

TEST_F(KernelFixture, CrashWithoutHandlerWedgesSystem) {
  StubServer crasher("crasher", [](const Message&) -> std::optional<Message> {
    throw kernel::FailStopFault("unhandled", 4);
  });
  kern.register_server(kernel::kVmEp, &crasher);
  kern.send(client_ep, kernel::kVmEp, make_msg(0x50));
  kern.dispatch_pending();
  EXPECT_EQ(kern.state(), kernel::SystemState::kCrashed);
}

TEST_F(KernelFixture, HangSuspendMarksServerHungAndDropsMessages) {
  StubServer hanger("hanger", [](const Message&) -> std::optional<Message> {
    throw kernel::HangSuspend{};
  });
  kern.register_server(kernel::kVmEp, &hanger);
  kern.send(client_ep, kernel::kVmEp, make_msg(0x60));
  kern.dispatch_pending();
  EXPECT_TRUE(kern.is_hung(kernel::kVmEp));
  // Messages to a hung server vanish without dispatch.
  kern.send(client_ep, kernel::kVmEp, make_msg(0x61));
  kern.dispatch_pending();
  EXPECT_EQ(hanger.dispatches, 1);
}

TEST_F(KernelFixture, RecoverHungRunsCrashPipeline) {
  StubServer hanger("hanger", [](const Message&) -> std::optional<Message> {
    throw kernel::HangSuspend{};
  });
  kern.register_server(kernel::kVmEp, &hanger);
  bool saw_hang_ctx = false;
  kern.set_crash_handler([&](const kernel::CrashContext& ctx) {
    saw_hang_ctx = ctx.was_hang;
    return CrashDecision{CrashAction::kErrorReply, make_reply(ctx.inflight.type, kernel::E_CRASH)};
  });
  kern.send(client_ep, kernel::kVmEp, make_msg(0x70));
  kern.dispatch_pending();
  ASSERT_TRUE(kern.is_hung(kernel::kVmEp));
  kern.recover_hung(kernel::kVmEp);
  EXPECT_FALSE(kern.is_hung(kernel::kVmEp));
  EXPECT_TRUE(saw_hang_ctx);
  EXPECT_EQ(client.last_reply.sarg(0), kernel::E_CRASH);
}

TEST_F(KernelFixture, CallingHungServerHangsCaller) {
  StubServer hanger("hanger", [](const Message&) -> std::optional<Message> {
    throw kernel::HangSuspend{};
  });
  StubServer caller("caller");
  kern.register_server(kernel::kVmEp, &hanger);
  kern.register_server(kernel::kVfsEp, &caller);
  kern.send(client_ep, kernel::kVmEp, make_msg(0x80));
  kern.dispatch_pending();
  ASSERT_TRUE(kern.is_hung(kernel::kVmEp));
  EXPECT_THROW(kern.call(kernel::kVfsEp, kernel::kVmEp, make_msg(0x81)), kernel::HangSuspend);
}

// --- grants ---------------------------------------------------------------

TEST_F(KernelFixture, GrantSafecopyRoundTrip) {
  std::byte buf[8] = {};
  const auto g = kern.make_grant(client_ep, kernel::kPmEp, buf, sizeof buf, Access::kReadWrite);
  const char src[4] = {'a', 'b', 'c', 'd'};
  EXPECT_EQ(kern.safecopy_to(kernel::kPmEp, g, 2, src, 4), 4);
  char dst[4] = {};
  EXPECT_EQ(kern.safecopy_from(kernel::kPmEp, g, 2, dst, 4), 4);
  EXPECT_EQ(std::string_view(dst, 4), "abcd");
}

TEST_F(KernelFixture, GrantRejectsWrongGrantee) {
  std::byte buf[8] = {};
  const auto g = kern.make_grant(client_ep, kernel::kPmEp, buf, sizeof buf, Access::kRead);
  char dst[4];
  EXPECT_EQ(kern.safecopy_from(kernel::kVmEp, g, 0, dst, 4), kernel::E_PERM);
}

TEST_F(KernelFixture, GrantRejectsOutOfBounds) {
  std::byte buf[8] = {};
  const auto g = kern.make_grant(client_ep, kernel::kPmEp, buf, sizeof buf, Access::kReadWrite);
  char tmp[8];
  EXPECT_EQ(kern.safecopy_from(kernel::kPmEp, g, 4, tmp, 8), kernel::E_INVAL);
  EXPECT_EQ(kern.safecopy_from(kernel::kPmEp, g, 9, tmp, 1), kernel::E_INVAL);
}

TEST_F(KernelFixture, GrantRejectsWrongAccess) {
  std::byte buf[8] = {};
  const auto g = kern.make_grant(client_ep, kernel::kPmEp, buf, sizeof buf, Access::kRead);
  const char src[1] = {'x'};
  EXPECT_EQ(kern.safecopy_to(kernel::kPmEp, g, 0, src, 1), kernel::E_PERM);
}

TEST_F(KernelFixture, RevokedGrantIsDead) {
  std::byte buf[8] = {};
  const auto g = kern.make_grant(client_ep, kernel::kPmEp, buf, sizeof buf, Access::kReadWrite);
  kern.revoke_grant(g);
  char tmp[1];
  EXPECT_EQ(kern.safecopy_from(kernel::kPmEp, g, 0, tmp, 1), kernel::E_INVAL);
}

TEST_F(KernelFixture, MessagesToDeadEndpointsAreDropped) {
  kern.unregister_client(client_ep);
  kern.send(kernel::kPmEp, client_ep, make_msg(0x90));
  EXPECT_TRUE(kern.dispatch_pending());  // processed (and dropped) cleanly
  EXPECT_EQ(client.replies, 0);
}

TEST_F(KernelFixture, SendAfterHaltIsIgnored) {
  kern.request_shutdown("test");
  kern.send(client_ep, kernel::kPmEp, make_msg(0x99));
  EXPECT_FALSE(kern.dispatch_pending());
  EXPECT_EQ(server.dispatches, 0);
}

TEST_F(KernelFixture, StatsCountTraffic) {
  kern.send(client_ep, kernel::kPmEp, make_msg(0x42));
  kern.dispatch_pending();
  EXPECT_EQ(kern.stats().messages_queued, 1u);
  EXPECT_EQ(kern.stats().server_dispatches, 1u);
  EXPECT_GE(kern.stats().replies_to_clients, 1u);
}
