// FOM executor golden trace (DESIGN.md §16): the eighth golden pins the
// park/resume interleaving of concurrent cold reads as symbolic events —
// every FomPark names the missing block, every FomResume the re-run message
// — and the determinism tests extend the byte-identity contract to the
// executor: the same schedule twice, and a traced campaign at --jobs=4,
// reproduce the serial bytes exactly with multi-request rollback enabled.
// After an *intentional* change to executor sequencing, regenerate with:
// OSIRIS_REGOLDEN=1 ./osiris_trace_tests && git diff
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fi/registry.hpp"
#include "os/instance.hpp"
#include "trace_matcher.hpp"
#include "workload/campaign.hpp"
#include "workload/suite.hpp"

using namespace osiris;
using os::ISys;
using os::OsInstance;
using trace::EventKind;
using trace_test::expect_absent;
using trace_test::expect_subsequence;
using trace_test::Pat;

namespace {

const std::int32_t kVfs = kernel::kVfsEp.value;
constexpr std::size_t kBytes = 6 * 1024;  // per-file payload: 2 cold blocks

struct FiGuard {
  FiGuard() {
    fi::Registry::instance().disarm();
    fi::Registry::instance().reset_counts();
  }
  ~FiGuard() { fi::Registry::instance().disarm(); }
};

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>(static_cast<std::uint8_t>(seed + i * 7));
  }
  return v;
}

std::int64_t write_all(ISys& sys, std::int64_t fd, const std::vector<std::byte>& data) {
  return sys.write(fd, std::span<const std::byte>(data.data(), data.size()));
}

/// Write `path` full of `data`, then evict it by streaming a scratch file
/// through the (small) block cache — the same cold-read setup test_fom.cpp
/// uses, so the traced run parks on real misses.
void write_and_evict(ISys& sys, const std::string& path, const std::vector<std::byte>& data,
                     const std::string& scratch) {
  std::int64_t fd = sys.open(path, servers::O_CREAT | servers::O_RDWR | servers::O_TRUNC);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(write_all(sys, fd, data), static_cast<std::int64_t>(data.size()));
  ASSERT_EQ(sys.close(fd), kernel::OK);
  const std::vector<std::byte> filler = pattern(32 * 1024, 0xAA);
  fd = sys.open(scratch, servers::O_CREAT | servers::O_RDWR | servers::O_TRUNC);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(write_all(sys, fd, filler), static_cast<std::int64_t>(filler.size()));
  std::vector<std::byte> sink(filler.size());
  ASSERT_EQ(sys.lseek(fd, 0, 0), 0);
  ASSERT_EQ(sys.read(fd, std::span<std::byte>(sink.data(), sink.size())),
            static_cast<std::int64_t>(sink.size()));
  ASSERT_EQ(sys.close(fd), kernel::OK);
}

struct TraceRun {
  OsInstance::Outcome outcome = OsInstance::Outcome::kCompleted;
  std::vector<trace::Event> events;      // full merged timeline
  std::vector<trace::Event> fom_events;  // FomPark / FomResume / FomAbort only
  std::string fom_text;                  // unsequenced text of the FOM events
  std::string full_text;                 // sequenced text of everything
};

/// The interleaving scenario every test here drives: three 6 KiB files made
/// cold, then three forked clients reading them back concurrently, so the
/// executor holds several parked requests at once.
TraceRun run_interleaved(bool fom) {
  fi::Registry::instance().reset_counts();
  os::OsConfig cfg;
  cfg.trace_enabled = true;
  cfg.trace_ring_capacity = 1u << 16;
  cfg.cache_blocks = 4;
  cfg.vfs_fom = fom;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();

  constexpr int kClients = 3;
  TraceRun r;
  r.outcome = inst.run([&](ISys& sys) {
    for (int c = 0; c < kClients; ++c) {
      write_and_evict(sys, "/tmp/tf" + std::to_string(c),
                      pattern(kBytes, static_cast<std::uint8_t>(c + 1)), "/tmp/tf-scratch");
    }
    std::vector<std::int64_t> pids;
    for (int c = 0; c < kClients; ++c) {
      pids.push_back(sys.fork([c](ISys& child) {
        std::vector<std::byte> buf(kBytes);
        const std::int64_t fd = child.open("/tmp/tf" + std::to_string(c), servers::O_RDONLY);
        if (fd < 0) child.exit(1);
        std::size_t got = 0;
        while (got < kBytes) {
          const std::int64_t n =
              child.read(fd, std::span<std::byte>(buf.data() + got, kBytes - got));
          if (n <= 0) child.exit(2);
          got += static_cast<std::size_t>(n);
        }
        child.exit(0);
      }));
    }
    for (const std::int64_t pid : pids) {
      std::int64_t status = -1;
      if (sys.wait_pid(pid, &status) != pid || status != 0) sys.exit(10);
    }
  });

  const trace::Tracer& tracer = *inst.tracer();
  r.events = tracer.merged();
  r.fom_events = trace_test::filter_events(
      r.events, {EventKind::kFomPark, EventKind::kFomResume, EventKind::kFomAbort});
  r.fom_text = trace::format_text_unsequenced(r.fom_events, tracer);
  r.full_text = trace::format_text(r.events, tracer);
  return r;
}

}  // namespace

// --- The eighth golden: concurrent cold reads park and resume symbolically --
TEST(TraceFom, InterleavedMissesEmitParkResumeGolden) {
  FiGuard guard;
  const TraceRun r = run_interleaved(/*fom=*/true);
  ASSERT_EQ(r.outcome, OsInstance::Outcome::kCompleted);

  // At least one park followed by its resume; a fault-free run never aborts.
  EXPECT_TRUE(expect_subsequence(r.events, {
                  Pat{EventKind::kFomPark, kVfs},
                  Pat{EventKind::kFomResume, kVfs},
              }));
  EXPECT_TRUE(expect_absent(r.events, Pat{EventKind::kFomAbort}));
  // Parking is what closes the window under the executor: the legacy yield
  // cause must not appear on the cold-read path.
  ASSERT_GE(r.fom_events.size(), 4u);  // ≥2 park/resume pairs = interleaving
  EXPECT_TRUE(trace_test::check_golden("fom_interleave.trace", r.fom_text));
}

// --- Determinism: the executor preserves full-trace byte-identity -----------
TEST(TraceFom, IdenticalInterleavedScenarioProducesByteIdenticalFullTrace) {
  FiGuard guard;
  const TraceRun a = run_interleaved(/*fom=*/true);
  const TraceRun b = run_interleaved(/*fom=*/true);
  ASSERT_FALSE(a.full_text.empty());
  EXPECT_EQ(a.full_text, b.full_text);
}

// --- Flag off: no executor events, so the seven existing goldens are safe ---
TEST(TraceFom, ExecutorOffEmitsNoFomEvents) {
  FiGuard guard;
  const TraceRun r = run_interleaved(/*fom=*/false);
  ASSERT_EQ(r.outcome, OsInstance::Outcome::kCompleted);
  EXPECT_TRUE(expect_absent(r.events, Pat{EventKind::kFomPark}));
  EXPECT_TRUE(expect_absent(r.events, Pat{EventKind::kFomResume}));
  EXPECT_TRUE(expect_absent(r.events, Pat{EventKind::kFomAbort}));
}

// --- Campaign determinism with multi-request rollback enabled ---------------
// The --jobs=N contract from test_campaign_parallel.cpp, re-pinned with the
// FOM executor on and the cache small enough that suite traffic parks: every
// injection's trace at --jobs=4 is the exact bytes of the serial run.
TEST(TraceFom, CampaignTracesByteIdenticalAcrossJobsWithFomExecutor) {
  FiGuard guard;
  std::vector<workload::Injection> plan = workload::plan_failstop(/*points_per_site=*/1);
  if (plan.size() > 6) {  // thin for runtime; coverage lives in the campaign suite
    const std::size_t stride = plan.size() / 6;
    std::vector<workload::Injection> thin;
    for (std::size_t i = 0; i < plan.size(); i += stride) thin.push_back(plan[i]);
    plan.swap(thin);
  }
  ASSERT_GE(plan.size(), 4u);

  std::vector<std::string> ref_traces;
  workload::CampaignOptions serial;
  serial.jobs = 1;
  serial.traces = &ref_traces;
  serial.vfs_fom = true;
  serial.cache_blocks = 4;

  std::vector<std::string> par_traces;
  workload::CampaignOptions parallel = serial;
  parallel.jobs = 4;
  parallel.traces = &par_traces;

  const auto ref = workload::run_plan(seep::Policy::kEnhanced, plan, serial);
  const auto par = workload::run_plan(seep::Policy::kEnhanced, plan, parallel);

  ASSERT_EQ(ref_traces.size(), plan.size());
  ASSERT_EQ(par_traces.size(), plan.size());
  bool any_park = false;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(ref[i], par[i]) << "injection " << i << " classified differently under --jobs=4";
    EXPECT_EQ(ref_traces[i], par_traces[i])
        << "injection " << i << " traced differently under --jobs=4";
    if (ref_traces[i].find("FomPark") != std::string::npos) any_park = true;
  }
  // The contract is only interesting if the executor actually ran: at least
  // one injection's suite traffic parked mid-flight.
  EXPECT_TRUE(any_park);
}
