// Parameterized sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
//  - the full policy x instrumentation-mode matrix must run a compact
//    workload to completion with identical observable results;
//  - MiniFS must work across device geometries and inode-table sizes;
//  - pipe transfers must preserve data for every chunk size across the
//    4 KiB ring buffer, including wrap-around.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "fi/registry.hpp"
#include "fs/direct_store.hpp"
#include "fs/minifs.hpp"
#include "os/instance.hpp"
#include "workload/suite.hpp"

using namespace osiris;
using os::ISys;

// --- policy x mode matrix ----------------------------------------------

namespace {

using PolicyMode = std::tuple<seep::Policy, ckpt::Mode>;

class PolicyModeP : public ::testing::TestWithParam<PolicyMode> {};

std::string compact_workload(os::OsInstance& inst) {
  std::string trace;
  const auto outcome = inst.run([&trace](ISys& sys) {
    const std::int64_t fd = sys.open("/tmp/pm", servers::O_CREAT | servers::O_RDWR);
    trace += std::to_string(fd >= 0);
    trace += std::to_string(sys.write_str(fd, "matrix"));
    const std::int64_t pid = sys.fork([](ISys& c) { c.exit(3); });
    std::int64_t s = -1;
    trace += std::to_string(sys.wait_pid(pid, &s) == pid ? s : -1);
    std::int64_t p[2];
    trace += std::to_string(sys.pipe(p) == kernel::OK);
    sys.write_str(p[1], "zz");
    char b[2];
    trace += std::to_string(sys.read(p[0], std::as_writable_bytes(std::span<char>(b, 2))));
    trace += std::to_string(sys.ds_publish("m.k", 5) == kernel::OK);
    std::uint64_t v = 0;
    sys.ds_retrieve("m.k", &v);
    trace += std::to_string(v);
    trace += std::to_string(sys.close(fd) == kernel::OK);
  });
  EXPECT_EQ(outcome, os::OsInstance::Outcome::kCompleted);
  return trace;
}

}  // namespace

TEST_P(PolicyModeP, CompactWorkloadIdenticalAcrossMatrix) {
  fi::Registry::instance().disarm();
  // Reference trace: uninstrumented enhanced configuration, computed once.
  static const std::string reference = [] {
    os::OsConfig ref_cfg;
    ref_cfg.ckpt_mode = ckpt::Mode::kOff;
    os::OsInstance ref(ref_cfg);
    workload::register_suite_programs(ref.programs());
    ref.boot();
    return compact_workload(ref);
  }();
  ASSERT_FALSE(reference.empty());

  const auto [policy, mode] = GetParam();
  os::OsConfig cfg;
  cfg.policy = policy;
  cfg.ckpt_mode = mode;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  EXPECT_EQ(compact_workload(inst), reference);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PolicyModeP,
    ::testing::Combine(::testing::Values(seep::Policy::kStateless, seep::Policy::kNaive,
                                         seep::Policy::kPessimistic, seep::Policy::kEnhanced,
                                         seep::Policy::kExtended),
                       ::testing::Values(ckpt::Mode::kOff, ckpt::Mode::kAlways,
                                         ckpt::Mode::kWindowOnly)),
    [](const ::testing::TestParamInfo<PolicyMode>& info) {
      return std::string(seep::policy_name(std::get<0>(info.param))) + "_mode" +
             std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

// --- MiniFS geometry sweep ---------------------------------------------

namespace {
struct FsGeometry {
  std::size_t blocks;
  std::uint32_t inodes;
};
class FsGeometryP : public ::testing::TestWithParam<FsGeometry> {};
}  // namespace

TEST_P(FsGeometryP, FormatPopulateVerify) {
  const auto [blocks, inodes] = GetParam();
  VirtualClock clock;
  fs::BlockDevice dev(clock, blocks);
  fs::MiniFs::mkfs(dev, inodes);
  fs::DirectStore store(dev);
  fs::MiniFs mfs(store);
  ASSERT_EQ(mfs.mount(), kernel::OK);
  EXPECT_EQ(mfs.super().ninodes, inodes);

  // Create as many files as fit (bounded by inodes and directory space).
  std::vector<fs::Ino> created;
  for (std::uint32_t i = 0; i < inodes + 4; ++i) {
    const std::int64_t ino =
        mfs.create(fs::kRootIno, "f" + std::to_string(i), fs::FileType::kRegular);
    if (ino < 0) {
      EXPECT_TRUE(ino == kernel::E_NOSPC) << ino;
      break;
    }
    created.push_back(static_cast<fs::Ino>(ino));
  }
  // One inode is the root directory.
  EXPECT_LE(created.size(), static_cast<std::size_t>(inodes) - 1);
  EXPECT_GE(created.size(), std::min<std::size_t>(inodes - 1, 8));

  // Every created file stores and returns its own index.
  for (std::size_t i = 0; i < created.size(); ++i) {
    const std::string payload = "payload-" + std::to_string(i);
    ASSERT_EQ(mfs.write(created[i], 0,
                        std::as_bytes(std::span<const char>(payload.data(), payload.size()))),
              static_cast<std::int64_t>(payload.size()));
  }
  for (std::size_t i = 0; i < created.size(); ++i) {
    const std::string want = "payload-" + std::to_string(i);
    std::string got(want.size(), '?');
    ASSERT_EQ(mfs.read(created[i], 0,
                       std::as_writable_bytes(std::span<char>(got.data(), got.size()))),
              static_cast<std::int64_t>(want.size()));
    EXPECT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, FsGeometryP,
                         ::testing::Values(FsGeometry{64, 16}, FsGeometry{256, 32},
                                           FsGeometry{1024, 64}, FsGeometry{4096, 224},
                                           FsGeometry{8192, 512}),
                         [](const ::testing::TestParamInfo<FsGeometry>& info) {
                           return "b" + std::to_string(info.param.blocks) + "_i" +
                                  std::to_string(info.param.inodes);
                         });

// --- pipe chunk-size sweep ----------------------------------------------

namespace {
class PipeChunkP : public ::testing::TestWithParam<std::size_t> {};
}  // namespace

TEST_P(PipeChunkP, RoundTripPreservesBytesAcrossWraparound) {
  fi::Registry::instance().disarm();
  const std::size_t chunk = GetParam();
  os::OsConfig cfg;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  const auto outcome = inst.run([chunk](ISys& sys) {
    std::int64_t p[2];
    if (sys.pipe(p) != kernel::OK) sys.exit(1);
    // Transfer ~3 buffer-loads so the ring wraps several times.
    const std::size_t total = 3 * 4096 / chunk * chunk;
    std::vector<std::byte> out(chunk);
    std::vector<std::byte> in(chunk);
    std::uint8_t counter = 0;
    for (std::size_t sent = 0; sent < total; sent += chunk) {
      for (auto& b : out) b = std::byte{counter++};
      std::size_t done = 0;
      while (done < chunk) {
        const std::int64_t n =
            sys.write(p[1], std::span<const std::byte>(out.data() + done, chunk - done));
        if (n <= 0) sys.exit(2);
        done += static_cast<std::size_t>(n);
        // Drain to keep the pipe from filling (single-process test).
        std::size_t got = 0;
        while (got < done) {
          const std::int64_t m =
              sys.read(p[0], std::span<std::byte>(in.data() + got, done - got));
          if (m <= 0) sys.exit(3);
          got += static_cast<std::size_t>(m);
        }
        if (std::memcmp(in.data(), out.data(), done) != 0) sys.exit(4);
        done = chunk;  // single write covers the chunk in this regime
      }
    }
    sys.close(p[0]);
    sys.close(p[1]);
  });
  EXPECT_EQ(outcome, os::OsInstance::Outcome::kCompleted);
}

INSTANTIATE_TEST_SUITE_P(Chunks, PipeChunkP, ::testing::Values(1, 7, 64, 512, 1024, 4096));
