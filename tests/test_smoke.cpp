// End-to-end smoke tests: boot the multiserver OS, run programs, exercise
// the core syscall surface, and verify a clean completion.
#include <gtest/gtest.h>

#include "os/instance.hpp"
#include "os/mono.hpp"
#include "servers/protocol.hpp"

using namespace osiris;
using os::ISys;
using os::OsInstance;

namespace {

OsInstance::Outcome run_os(ISys::ProcBody body, os::OsConfig cfg = {}) {
  OsInstance inst(cfg);
  inst.boot();
  return inst.run(std::move(body));
}

}  // namespace

TEST(Smoke, BootAndTrivialInit) {
  auto outcome = run_os([](ISys& sys) {
    EXPECT_EQ(sys.getpid(), 1);
    EXPECT_EQ(sys.getppid(), 0);
  });
  EXPECT_EQ(outcome, OsInstance::Outcome::kCompleted);
}

TEST(Smoke, FileRoundTrip) {
  auto outcome = run_os([](ISys& sys) {
    const std::int64_t fd = sys.open("/tmp/hello", servers::O_CREAT | servers::O_RDWR);
    ASSERT_GE(fd, 0);
    EXPECT_EQ(sys.write_str(fd, "hello osiris"), 12);
    EXPECT_EQ(sys.lseek(fd, 0, 0), 0);
    char buf[32] = {};
    EXPECT_EQ(sys.read(fd, std::as_writable_bytes(std::span<char>(buf, sizeof buf))), 12);
    EXPECT_STREQ(buf, "hello osiris");
    EXPECT_EQ(sys.close(fd), kernel::OK);
    EXPECT_EQ(sys.unlink("/tmp/hello"), kernel::OK);
    EXPECT_EQ(sys.access("/tmp/hello"), kernel::E_NOENT);
  });
  EXPECT_EQ(outcome, OsInstance::Outcome::kCompleted);
}

TEST(Smoke, ForkWaitExit) {
  auto outcome = run_os([](ISys& sys) {
    const std::int64_t pid = sys.fork([](ISys& child) { child.exit(42); });
    ASSERT_GT(pid, 1);
    std::int64_t status = -1;
    EXPECT_EQ(sys.wait_pid(0, &status), pid);
    EXPECT_EQ(status, 42);
  });
  EXPECT_EQ(outcome, OsInstance::Outcome::kCompleted);
}

TEST(Smoke, PipeParentChild) {
  auto outcome = run_os([](ISys& sys) {
    std::int64_t fds[2];
    ASSERT_EQ(sys.pipe(fds), kernel::OK);
    const std::int64_t pid = sys.fork([&](ISys& child) {
      char buf[16] = {};
      const std::int64_t n =
          child.read(fds[0], std::as_writable_bytes(std::span<char>(buf, 5)));
      child.exit(n == 5 && std::string_view(buf, 5) == "ping!" ? 0 : 1);
    });
    ASSERT_GT(pid, 1);
    EXPECT_EQ(sys.write_str(fds[1], "ping!"), 5);
    std::int64_t status = -1;
    EXPECT_EQ(sys.wait_pid(pid, &status), pid);
    EXPECT_EQ(status, 0);
  });
  EXPECT_EQ(outcome, OsInstance::Outcome::kCompleted);
}

TEST(Smoke, ExecRunsRegisteredProgram) {
  os::OsConfig cfg;
  OsInstance inst(cfg);
  inst.programs().add("hello", [](ISys& sys) -> std::int64_t {
    return sys.getpid() > 0 ? 7 : 1;
  });
  inst.boot();
  auto outcome = inst.run([](ISys& sys) {
    const std::int64_t pid = sys.fork([](ISys& child) {
      child.exec("/bin/hello");  // never returns on success
      child.exit(99);
    });
    ASSERT_GT(pid, 1);
    std::int64_t status = -1;
    EXPECT_EQ(sys.wait_pid(pid, &status), pid);
    EXPECT_EQ(status, 7);
    EXPECT_EQ(sys.exec("/bin/no-such-program"), kernel::E_NOENT);
  });
  EXPECT_EQ(outcome, OsInstance::Outcome::kCompleted);
}

TEST(Smoke, SignalsAndKill) {
  auto outcome = run_os([](ISys& sys) {
    const std::int64_t pid = sys.fork([](ISys& child) {
      // Loop forever; the parent will kSigKill us.
      for (;;) child.getpid();
    });
    ASSERT_GT(pid, 1);
    EXPECT_EQ(sys.kill(pid, servers::kSigKill), kernel::OK);
    std::int64_t status = -1;
    EXPECT_EQ(sys.wait_pid(pid, &status), pid);
    EXPECT_EQ(status, -9);
    EXPECT_EQ(sys.kill(12345, servers::kSigTerm), kernel::E_SRCH);
  });
  EXPECT_EQ(outcome, OsInstance::Outcome::kCompleted);
}

TEST(Smoke, DataStore) {
  auto outcome = run_os([](ISys& sys) {
    EXPECT_EQ(sys.ds_publish("answer", 42), kernel::OK);
    std::uint64_t v = 0;
    EXPECT_EQ(sys.ds_retrieve("answer", &v), kernel::OK);
    EXPECT_EQ(v, 42u);
    EXPECT_EQ(sys.ds_retrieve("nope", &v), kernel::E_NOENT);
    EXPECT_EQ(sys.ds_delete("answer"), kernel::OK);
    EXPECT_EQ(sys.ds_retrieve("answer", &v), kernel::E_NOENT);
  });
  EXPECT_EQ(outcome, OsInstance::Outcome::kCompleted);
}

TEST(Smoke, ReadMostlyCalls) {
  auto outcome = run_os([](ISys& sys) {
    std::uint64_t free_pages = 0, total = 0;
    EXPECT_EQ(sys.getmeminfo(&free_pages, &total), kernel::OK);
    EXPECT_GT(total, 0u);
    std::uint64_t ticks = 0;
    EXPECT_EQ(sys.times(&ticks), kernel::OK);
    std::string name;
    EXPECT_EQ(sys.uname(&name), kernel::OK);
    EXPECT_EQ(name, "osiris");
    EXPECT_GE(sys.brk(0x20000), 0);
  });
  EXPECT_EQ(outcome, OsInstance::Outcome::kCompleted);
}

TEST(Smoke, MonoOsRunsSamePrograms) {
  os::MonoOs mono;
  mono.boot();
  const std::int64_t status = mono.run([](ISys& sys) {
    const std::int64_t fd = sys.open("/tmp/m", servers::O_CREAT | servers::O_RDWR);
    if (fd < 0) sys.exit(1);
    if (sys.write_str(fd, "abc") != 3) sys.exit(2);
    const std::int64_t pid = sys.fork([](ISys& c) { c.exit(5); });
    std::int64_t st = -1;
    if (sys.wait_pid(pid, &st) != pid || st != 5) sys.exit(3);
    std::int64_t fds[2];
    if (sys.pipe(fds) != kernel::OK) sys.exit(4);
    if (sys.write_str(fds[1], "x") != 1) sys.exit(5);
    char b;
    if (sys.read(fds[0], std::as_writable_bytes(std::span<char>(&b, 1))) != 1) sys.exit(6);
    sys.exit(0);
  });
  EXPECT_EQ(status, 0);
}
