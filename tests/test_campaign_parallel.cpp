// Parallel campaign runner: determinism of the sharded worker pool.
//
// The tentpole guarantee is that --jobs=N is an implementation detail: a
// campaign's per-injection classifications and totals must be identical to
// the serial reference run, because results merge by plan index, not by
// completion order. These tests pin that guarantee on a thinned plan (full
// campaigns are minutes; this is seconds).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "support/worker_pool.hpp"
#include "workload/campaign.hpp"

using namespace osiris;

namespace {

/// Every k-th injection of a full plan — preserves the site/type/trigger
/// variety while keeping the test seconds-scale.
std::vector<workload::Injection> thin(const std::vector<workload::Injection>& plan,
                                      std::size_t stride) {
  std::vector<workload::Injection> out;
  for (std::size_t i = 0; i < plan.size(); i += stride) out.push_back(plan[i]);
  return out;
}

}  // namespace

TEST(WorkerPool, ResolveJobs) {
  EXPECT_EQ(support::WorkerPool::resolve_jobs(1), 1u);
  EXPECT_EQ(support::WorkerPool::resolve_jobs(7), 7u);
  EXPECT_GE(support::WorkerPool::resolve_jobs(0), 1u);  // hardware_concurrency
}

TEST(WorkerPool, RunIndexedCoversEveryIndexOnce) {
  constexpr std::size_t kN = 257;  // deliberately not a multiple of jobs
  std::vector<std::atomic<int>> seen(kN);
  support::WorkerPool::run_indexed(kN, 4, [&](std::size_t i) {
    seen[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(seen[i].load(), 1) << "index " << i;
}

TEST(WorkerPool, SerialPathRunsInOrder) {
  std::vector<std::size_t> order;
  support::WorkerPool::run_indexed(5, 1, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(WorkerPool, PropagatesWorkerExceptions) {
  EXPECT_THROW(
      support::WorkerPool::run_indexed(64, 4,
                                       [&](std::size_t i) {
                                         if (i == 13) throw std::runtime_error("boom");
                                       }),
      std::runtime_error);
}

TEST(CampaignParallel, JobsDoNotChangeResults) {
  // One thinned EDFI plan (varied fault types and trigger points), applied
  // serially and with 4 workers: classifications must match index-for-index.
  const auto plan = thin(workload::plan_edfi(/*seed=*/316, /*injections_per_site=*/1), 4);
  ASSERT_GE(plan.size(), 8u) << "thinned plan too small to exercise sharding";

  workload::CampaignOptions serial;
  serial.jobs = 1;
  workload::CampaignOptions parallel;
  parallel.jobs = 4;

  const auto ref = workload::run_plan(seep::Policy::kEnhanced, plan, serial);
  const auto par = workload::run_plan(seep::Policy::kEnhanced, plan, parallel);

  ASSERT_EQ(ref.size(), plan.size());
  ASSERT_EQ(par.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(ref[i], par[i]) << "injection " << i << " classified differently under --jobs=4";
  }

  // And the merged totals (what the tables print) agree with both runs.
  const workload::CampaignTotals totals =
      workload::run_campaign(seep::Policy::kEnhanced, plan, parallel);
  workload::CampaignTotals expect;
  for (const workload::RunClass c : ref) {
    switch (c) {
      case workload::RunClass::kPass: ++expect.pass; break;
      case workload::RunClass::kFail: ++expect.fail; break;
      case workload::RunClass::kShutdown: ++expect.shutdown; break;
      case workload::RunClass::kCrash: ++expect.crash; break;
    }
  }
  EXPECT_TRUE(totals == expect);
  EXPECT_EQ(totals.total(), static_cast<int>(plan.size()));
}

TEST(CampaignParallel, RecurringCampaignJobsDoNotChangeResults) {
  // The recurring (persistent-fault) campaign has the same determinism
  // contract: survivability buckets merge by plan index, so --jobs=N is
  // byte-identical to the serial reference.
  const auto plan = thin(workload::plan_recurring(), 8);
  ASSERT_GE(plan.size(), 4u) << "thinned plan too small to exercise sharding";

  workload::CampaignOptions serial;
  serial.jobs = 1;
  workload::CampaignOptions parallel;
  parallel.jobs = 4;

  const auto ref = workload::run_recurring_plan(seep::Policy::kEnhanced, plan, serial);
  const auto par = workload::run_recurring_plan(seep::Policy::kEnhanced, plan, parallel);

  ASSERT_EQ(ref.size(), plan.size());
  ASSERT_EQ(par.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(ref[i], par[i]) << "injection " << i << " bucketed differently under --jobs=4";
  }

  const workload::RecurringTotals totals =
      workload::run_recurring_campaign(seep::Policy::kEnhanced, plan, parallel);
  workload::RecurringTotals expect;
  for (const workload::RecurringClass c : ref) {
    switch (c) {
      case workload::RecurringClass::kRecovered: ++expect.recovered; break;
      case workload::RecurringClass::kDegraded: ++expect.degraded; break;
      case workload::RecurringClass::kShutdown: ++expect.shutdown; break;
      case workload::RecurringClass::kWedged: ++expect.wedged; break;
    }
  }
  EXPECT_TRUE(totals == expect);
  EXPECT_EQ(totals.total(), static_cast<int>(plan.size()));
}

TEST(CampaignParallel, StormCampaignJobsDoNotChangeResults) {
  // The storm (liveness-fault) campaign joins the same contract: detection
  // buckets and latencies merge by plan index. Thinned to the bounded runs —
  // quarantining PM or VFS mid-suite orphans every process waiting on them
  // and the run only ends at the idle limit, which is slow without adding
  // determinism coverage beyond the shapes kept here.
  std::vector<workload::StormInjection> plan;
  for (const workload::StormInjection& s : workload::plan_storm()) {
    if (s.site == nullptr) {
      plan.push_back(s);  // both controls stay: the kClean bucket must merge too
      continue;
    }
    const std::string_view tag(s.site->tag);
    const bool keep = s.type == fi::FaultType::kHandlerSpin
                          ? (tag == "pm" || tag == "vm")
                          : (tag == "ds" || tag == "vm");
    if (keep) plan.push_back(s);
  }
  ASSERT_GE(plan.size(), 6u) << "storm plan lost its expected shape";

  workload::CampaignOptions serial;
  serial.jobs = 1;
  workload::CampaignOptions parallel;
  parallel.jobs = 4;

  const auto ref = workload::run_storm_plan(seep::Policy::kEnhanced, plan, serial);
  const auto par = workload::run_storm_plan(seep::Policy::kEnhanced, plan, parallel);

  ASSERT_EQ(ref.size(), plan.size());
  ASSERT_EQ(par.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(ref[i], par[i]) << "storm run " << i << " diverged under --jobs=4";
  }

  const workload::StormTotals totals =
      workload::run_storm_campaign(seep::Policy::kEnhanced, plan, parallel);
  workload::StormTotals expect;
  for (const workload::StormResult& r : ref) {
    switch (r.cls) {
      case workload::StormClass::kDetected:
        ++expect.detected;
        expect.latency_sum += r.detection_latency;
        expect.latency_max = std::max<std::uint64_t>(expect.latency_max, r.detection_latency);
        ++expect.latency_n;
        break;
      case workload::StormClass::kStarved: ++expect.starved; break;
      case workload::StormClass::kFalsePositive: ++expect.false_positive; break;
      case workload::StormClass::kClean: ++expect.clean; break;
    }
  }
  EXPECT_TRUE(totals == expect);
  EXPECT_EQ(totals.total(), static_cast<int>(plan.size()));
  EXPECT_EQ(expect.false_positive, 0) << "storm campaign saw a false positive";
}

TEST(CampaignParallel, ProgressIsSerializedAndMonotonic) {
  const auto plan = thin(workload::plan_failstop(/*points_per_site=*/1), 6);
  ASSERT_GE(plan.size(), 4u);

  std::mutex mu;
  int last_done = 0;
  bool monotonic = true;
  workload::CampaignOptions opts;
  opts.jobs = 4;
  opts.progress = [&](int done, int total) {
    // The campaign already serializes progress callbacks; the lock here makes
    // the test's own bookkeeping race-free under TSan.
    const std::lock_guard<std::mutex> lock(mu);
    if (done != last_done + 1 || total != static_cast<int>(plan.size())) monotonic = false;
    last_done = done;
  };
  (void)workload::run_plan(seep::Policy::kPessimistic, plan, opts);
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(last_done, static_cast<int>(plan.size()));
}

#if OSIRIS_TRACE_ENABLED
TEST(CampaignParallel, CapturedTracesAreByteIdenticalAcrossJobs) {
  // The determinism contract extends to full event traces: a traced campaign
  // at --jobs=4 captures, per plan index, the exact bytes the serial
  // reference run captures. This is the strongest form of the guarantee —
  // not just the same classifications, but the same total order of IPC,
  // checkpointing, window, fault, and recovery events inside every run.
  const auto plan = thin(workload::plan_failstop(/*points_per_site=*/1), 6);
  ASSERT_GE(plan.size(), 4u);

  std::vector<std::string> ref_traces;
  workload::CampaignOptions serial;
  serial.jobs = 1;
  serial.traces = &ref_traces;

  std::vector<std::string> par_traces;
  workload::CampaignOptions parallel;
  parallel.jobs = 4;
  parallel.traces = &par_traces;

  const auto ref = workload::run_plan(seep::Policy::kEnhanced, plan, serial);
  const auto par = workload::run_plan(seep::Policy::kEnhanced, plan, parallel);

  ASSERT_EQ(ref_traces.size(), plan.size());
  ASSERT_EQ(par_traces.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(ref[i], par[i]) << "injection " << i << " classified differently";
    // Byte-for-byte, not just "similar": any nondeterminism leaking into the
    // simulation (iteration order, uninitialized state, cross-thread
    // contamination) shows up here first.
    EXPECT_EQ(ref_traces[i], par_traces[i])
        << "injection " << i << " traced differently under --jobs=4";
    // Each traced run must actually contain boot + suite traffic.
    EXPECT_NE(ref_traces[i].find("IpcSend"), std::string::npos) << "trace " << i << " is empty";
  }
}
#endif  // OSIRIS_TRACE_ENABLED
