// osiris-analyze Pass 4: call-graph construction, per-handler effect
// summaries, and the handler-granularity recovery-window predictions —
// validated structurally over the fixture tree and against runtime per-msg
// WindowStats from the standard workload on the real tree.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "callgraph.hpp"
#include "effects.hpp"
#include "lexer.hpp"
#include "os/instance.hpp"
#include "seep/policy.hpp"
#include "workload/suite.hpp"

namespace analyze = osiris::analyze;
using osiris::seep::Policy;

namespace {

const analyze::Report& clean_report() {
  static const analyze::Report report = analyze::analyze_tree(OSIRIS_SOURCE_ROOT);
  return report;
}

const analyze::Report& fixture_report() {
  static const analyze::Report report =
      analyze::analyze_tree(std::string(OSIRIS_SOURCE_ROOT) + "/tools/analyze/fixture");
  return report;
}

int policy_index(Policy p) {
  switch (p) {
    case Policy::kPessimistic:
      return 0;
    case Policy::kEnhanced:
      return 1;
    case Policy::kExtended:
      return 2;
    default:
      return -1;
  }
}

bool has_effect(const analyze::HandlerEffects& h, analyze::EffectKind kind) {
  for (const auto& e : h.effects) {
    if (e.kind == kind) return true;
  }
  return false;
}

}  // namespace

// --- call-graph builder over the fixture sources -----------------------------

TEST(Effects, CallGraphFindsFixtureDefinitions) {
  const std::string path =
      std::string(OSIRIS_SOURCE_ROOT) + "/tools/analyze/fixture/src/servers/ds.cpp";
  std::vector<analyze::LexedFile> files;
  files.push_back(analyze::lex_file(path, "src/servers/ds.cpp"));
  const analyze::CallGraph g = analyze::build_call_graph(files);

  for (const char* fn : {"do_block", "wait_for_disk", "do_widen", "bump_counter", "do_trace",
                         "spin", "emit_trace", "unreached_helper"}) {
    const auto* targets = g.resolve(fn);
    ASSERT_NE(targets, nullptr) << fn;
    EXPECT_EQ(targets->size(), 1u) << fn;
    const analyze::FuncDef& d = g.funcs[targets->front()];
    EXPECT_EQ(d.name, fn);
    EXPECT_GT(d.body_end, d.body_begin) << fn;
  }
  // Control keywords and call sites must not register as definitions.
  EXPECT_EQ(g.resolve("if"), nullptr);
  EXPECT_EQ(g.resolve("mystery_helper"), nullptr);  // called, never defined
}

// --- effect summaries over the fixture handlers ------------------------------

TEST(Effects, DirectAndTransitiveBlockingSummarized) {
  const analyze::HandlerEffects* h = fixture_report().effects_for("ds", "FX_BLOCK", "request");
  ASSERT_NE(h, nullptr);
  EXPECT_TRUE(h->has_body);
  EXPECT_EQ(h->fn, "do_block");
  EXPECT_TRUE(h->opens_window);
  // do_block -> wait_for_disk -> read_now: the blocking effect is transitive
  // and anchored at the deep site, not the handler.
  ASSERT_TRUE(has_effect(*h, analyze::EffectKind::kBlocking));
  for (const auto& e : h->effects) {
    if (e.kind == analyze::EffectKind::kBlocking) {
      EXPECT_EQ(e.detail, "blockdev-wait");
      EXPECT_EQ(e.file, "src/servers/ds.cpp");
    }
  }
  EXPECT_TRUE(h->may_close_by_yield);
}

TEST(Effects, RecursionCutAndMutationOrdering) {
  const analyze::HandlerEffects* h = fixture_report().effects_for("ds", "FX_WIDEN", "request");
  ASSERT_NE(h, nullptr);
  ASSERT_TRUE(h->has_body);
  // bump_counter calls itself: the summary records the cycle cut instead of
  // diverging.
  EXPECT_TRUE(h->recursive);
  EXPECT_TRUE(has_effect(*h, analyze::EffectKind::kRecursiveCall));

  // Flow order: the FX_POKE send must precede the post-close mutation.
  int send_at = -1;
  int late_mutation_at = -1;
  for (std::size_t i = 0; i < h->effects.size(); ++i) {
    const auto& e = h->effects[i];
    if (e.kind == analyze::EffectKind::kSend && e.msg == "FX_POKE") send_at = static_cast<int>(i);
    if (e.kind == analyze::EffectKind::kMutation && send_at >= 0) {
      late_mutation_at = static_cast<int>(i);
    }
  }
  ASSERT_GE(send_at, 0) << "FX_POKE send missing from the summary";
  ASSERT_GT(late_mutation_at, send_at) << "no mutation after the window-closing send";
  EXPECT_GE(h->mutations_after_close, 1);
  // SM send: closes under every policy, taints under none.
  for (int pi = 0; pi < analyze::kNumPolicies; ++pi) {
    EXPECT_TRUE(h->may_close_by_seep[pi]) << pi;
    EXPECT_FALSE(h->may_taint[pi]) << pi;
  }
}

TEST(Effects, UnresolvableCalleeAndReachabilityRooting) {
  const analyze::Report& r = fixture_report();
  const analyze::HandlerEffects* h = r.effects_for("ds", "FX_TRACE", "request");
  ASSERT_NE(h, nullptr);
  ASSERT_TRUE(h->has_body);
  EXPECT_EQ(h->unresolved_callees, 1);  // mystery_helper, once
  EXPECT_TRUE(h->has_unbounded_loop);   // spin's for(;;)

  // unreached_helper's other_mystery escape must not be reported anywhere:
  // detection is rooted at handler registrations.
  for (const auto& f : r.findings) {
    EXPECT_EQ(f.message.find("other_mystery"), std::string::npos) << f.message;
  }
}

TEST(Effects, RegistrationWithoutBodyKeepsRowWithEmptySummary) {
  // The fixture pm registers do_ping but never defines it: the row must
  // survive (coverage accounting) with has_body == false and no effects.
  const analyze::HandlerEffects* h = fixture_report().effects_for("pm", "FX_PING", "request");
  ASSERT_NE(h, nullptr);
  EXPECT_FALSE(h->has_body);
  EXPECT_TRUE(h->effects.empty());
}

// --- clean-tree coverage and tightness ---------------------------------------

TEST(Effects, CleanTreeSummarizesEveryOwnedSpecRow) {
  const analyze::Report& r = clean_report();
  const std::set<std::string> servers = {"pm", "vm", "vfs", "ds", "rs", "sys"};

  // Every handler row has a summarized body and no unresolved callees: the
  // acceptance bar for "no unsummarized-callee escapes on the clean tree".
  ASSERT_FALSE(r.handler_effects.empty());
  for (const auto& h : r.handler_effects) {
    EXPECT_TRUE(h.has_body) << h.server << "/" << h.msg;
    EXPECT_EQ(h.unresolved_callees, 0) << h.server << "/" << h.msg;
  }

  // Every server-owned spec row is covered by at least one summarized
  // handler row (Pass 3 already enforces registration; this checks Pass 4
  // kept a summary for each).
  for (const auto& row : r.spec) {
    if (servers.count(row.owner) == 0) continue;
    bool covered = false;
    for (const auto& h : r.handler_effects) {
      if (h.msg == row.name && h.has_body) covered = true;
    }
    EXPECT_TRUE(covered) << row.name << " (owner " << row.owner << ")";
  }
}

TEST(Effects, HandlerPredictionsWithinServerEnvelopeAndTighter) {
  const analyze::Report& r = clean_report();

  // Soundness against Pass 2: the per-server envelope is the union of its
  // handlers, so no handler may predict a closure/taint its server cannot.
  for (const auto& h : r.handler_effects) {
    const analyze::WindowPrediction* server_pred = r.prediction_for(h.server);
    if (server_pred == nullptr) continue;
    for (int pi = 0; pi < analyze::kNumPolicies; ++pi) {
      if (h.may_close_by_seep[pi]) {
        EXPECT_TRUE(server_pred->may_close_by_seep[pi]) << h.server << "/" << h.msg << " " << pi;
      }
      if (h.may_taint[pi]) {
        EXPECT_TRUE(server_pred->may_taint[pi]) << h.server << "/" << h.msg << " " << pi;
      }
    }
  }

  // Strictly tighter than Pass 2: PM_GETPID sends nothing, so its window
  // provably survives under every policy even though the pm-wide envelope
  // says "may close" for all of them.
  const analyze::HandlerEffects* getpid = r.effects_for("pm", "PM_GETPID", "request");
  ASSERT_NE(getpid, nullptr);
  ASSERT_TRUE(getpid->has_body);
  const analyze::WindowPrediction* pm_pred = r.prediction_for("pm");
  ASSERT_NE(pm_pred, nullptr);
  for (int pi = 0; pi < analyze::kNumPolicies; ++pi) {
    EXPECT_FALSE(getpid->may_close_by_seep[pi]) << pi;
    EXPECT_TRUE(pm_pred->may_close_by_seep[pi]) << pi;
  }
  EXPECT_FALSE(getpid->may_close_by_yield);

  // PM_FORK, by contrast, demonstrably closes under every policy.
  const analyze::HandlerEffects* fork = r.effects_for("pm", "PM_FORK", "request");
  ASSERT_NE(fork, nullptr);
  for (int pi = 0; pi < analyze::kNumPolicies; ++pi) {
    EXPECT_TRUE(fork->may_close_by_seep[pi]) << pi;
  }
}

// --- runtime cross-validation ------------------------------------------------

TEST(Effects, HandlerPredictionsConsistentWithRuntimePerMsgWindowStats) {
  const analyze::Report& r = clean_report();

  std::map<std::uint32_t, std::string> msg_by_value;
  for (const auto& row : r.spec) msg_by_value[row.value] = row.name;
  ASSERT_FALSE(msg_by_value.empty());

  for (const Policy policy : {Policy::kPessimistic, Policy::kEnhanced, Policy::kExtended}) {
    const int pi = policy_index(policy);
    ASSERT_GE(pi, 0);

    osiris::os::OsConfig cfg;
    cfg.policy = policy;
    osiris::os::OsInstance inst(cfg);
    osiris::workload::register_suite_programs(inst.programs());
    inst.boot();
    const auto result = osiris::workload::run_suite(inst);
    ASSERT_EQ(result.failed, 0) << osiris::seep::policy_name(policy);

    bool fork_closed = false;
    for (auto* comp : inst.components()) {
      const std::string name(comp->name());
      for (const auto& [msg_type, stats] : comp->window().per_msg_stats()) {
        auto mit = msg_by_value.find(msg_type);
        ASSERT_NE(mit, msg_by_value.end()) << name << " opened a window for unknown msg type";
        const std::string& msg = mit->second;
        const analyze::HandlerEffects* h = r.effects_for(name, msg, "request");
        ASSERT_NE(h, nullptr) << name << "/" << msg;
        EXPECT_TRUE(h->opens_window) << name << "/" << msg << ": runtime opened a window the "
                                     << "analyzer thought cannot open";

        // Soundness: runtime behaviour stays inside the handler's envelope.
        if (stats.closed_by_seep > 0) {
          EXPECT_TRUE(h->may_close_by_seep[pi])
              << name << "/" << msg << " under " << osiris::seep::policy_name(policy)
              << ": runtime closed by SEEP, statically impossible";
        }
        if (stats.closed_by_yield > 0) {
          EXPECT_TRUE(h->may_close_by_yield)
              << name << "/" << msg << ": runtime closed by yield, statically impossible";
        }
        if (stats.tainted > 0) {
          EXPECT_TRUE(h->may_taint[pi])
              << name << "/" << msg << " under " << osiris::seep::policy_name(policy);
        }
        // And conversely, statically-impossible events never occur.
        if (!h->may_close_by_seep[pi]) {
          EXPECT_EQ(stats.closed_by_seep, 0u)
              << name << "/" << msg << " under " << osiris::seep::policy_name(policy);
        }
        if (!h->may_close_by_yield) {
          EXPECT_EQ(stats.closed_by_yield, 0u) << name << "/" << msg;
        }
        if (!h->may_taint[pi]) {
          EXPECT_EQ(stats.tainted, 0u)
              << name << "/" << msg << " under " << osiris::seep::policy_name(policy);
        }

        if (msg == "PM_FORK" && stats.closed_by_seep > 0) fork_closed = true;
      }
    }
    // Liveness: the suite forks, and PM_FORK's first SEEP is state-modifying
    // — the per-msg attribution must observe the close (the prediction is
    // not vacuously satisfied).
    EXPECT_TRUE(fork_closed) << "PM_FORK never closed a window under "
                             << osiris::seep::policy_name(policy);
  }
}

// --- artifact + loader hardening ---------------------------------------------

TEST(Effects, HandlerEffectsJsonCarriesV1Schema) {
  const std::string doc = analyze::handler_effects_to_json(clean_report(), OSIRIS_SOURCE_ROOT);
  for (const char* key :
       {"\"schema_version\": 1", "\"policies\"", "\"handlers\"", "\"blocking_points\"",
        "\"opens_window\"", "\"mutations_after_close\"", "\"may_close_by_yield\"",
        "\"may_park\"", "\"suppressed\"", "\"predictions\"", "\"pessimistic\"", "\"enhanced\"",
        "\"extended\"", "\"effects\""}) {
    EXPECT_NE(doc.find(key), std::string::npos) << key;
  }
  // The blocking-point inventory is non-empty on the real tree (the legacy
  // fiber suspend at minimum) and the FOM park points surface as fom-yield.
  EXPECT_NE(doc.find("fiber-suspend"), std::string::npos);
  EXPECT_NE(doc.find("fom-yield"), std::string::npos);
}

// --- FOM conversion acceptance: the static inventory after ROADMAP item 2 ----

TEST(Effects, FomConversionLeavesNoUnsuppressedBlockingPoints) {
  const analyze::Report& r = clean_report();
  // Every residual blocking point on the clean tree is a reviewed
  // analyze-suppress site (boot path, FOM retry-cap sync fallback, the
  // legacy fiber path kept behind vfs_fom=false). The points stay in the
  // inventory — this pins that none of them is an open finding.
  int total = 0;
  for (const auto& h : r.handler_effects) {
    for (const auto& e : h.effects) {
      if (e.kind != analyze::EffectKind::kBlocking) continue;
      ++total;
      EXPECT_TRUE(e.suppressed) << e.file << ":" << e.line << " (" << e.detail
                                << ") reached from " << h.server << "/" << h.msg;
    }
  }
  EXPECT_GT(total, 0);
  for (const auto& f : r.findings) {
    EXPECT_NE(f.detector, analyze::kDetBlockingInHandler) << f.file << ":" << f.line;
  }
}

TEST(Effects, VfsWorkerHandlersMayParkUnderFomExecutor) {
  const analyze::Report& r = clean_report();
  // The BlockMiss unwind (kFomYield) marks every VFS fs-op request handler
  // as parkable: under vfs_fom the request checkpoints mid-flight and
  // resumes after the disk wait instead of force-closing at the suspend.
  for (const char* msg : {"VFS_OPEN", "VFS_READ", "VFS_WRITE", "VFS_STAT", "VFS_FSTAT",
                          "VFS_UNLINK", "VFS_MKDIR", "VFS_RMDIR", "VFS_RENAME", "VFS_READDIR",
                          "VFS_TRUNC", "VFS_SYNC", "VFS_ACCESS"}) {
    const analyze::HandlerEffects* h = r.effects_for("vfs", msg, "request");
    ASSERT_NE(h, nullptr) << msg;
    EXPECT_TRUE(h->may_park) << msg;
    EXPECT_TRUE(has_effect(*h, analyze::EffectKind::kFomYield)) << msg;
  }
  // Parking is a window property: only window-opening VFS requests qualify.
  // Notifications (VFS_DEV_DONE) and other servers' handlers never park.
  for (const auto& h : r.handler_effects) {
    if (h.may_park) {
      EXPECT_EQ(h.server, "vfs") << h.msg;
      EXPECT_TRUE(h.opens_window) << h.server << "/" << h.msg;
    }
  }
}

TEST(Effects, LexFileRejectsEmptyInput) {
  const std::string path = "osiris_empty_lex_probe.tmp";
  { std::ofstream out(path, std::ios::binary); }
  EXPECT_THROW(analyze::lex_file(path), std::runtime_error);
  std::remove(path.c_str());
}
