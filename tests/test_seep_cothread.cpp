// Unit tests: SEEP classification/policies/window state machine, and the
// cooperative thread library.
#include <gtest/gtest.h>

#include "cothread/fiber.hpp"
#include "seep/policy.hpp"
#include "seep/seep.hpp"
#include "seep/window.hpp"
#include "servers/protocol.hpp"

using namespace osiris;

// --- classification ---------------------------------------------------

TEST(Classification, UnknownTypesGetConservativeDefault) {
  seep::Classification c;
  const auto t = c.get(0xdeadbeef);
  EXPECT_EQ(t.seep, seep::SeepClass::kStateModifying);
  EXPECT_TRUE(t.replyable);
}

TEST(Classification, SetAndGet) {
  seep::Classification c;
  c.set(0x42, seep::SeepClass::kNonStateModifying, false);
  EXPECT_EQ(c.get(0x42).seep, seep::SeepClass::kNonStateModifying);
  EXPECT_FALSE(c.get(0x42).replyable);
}

TEST(Classification, SystemTableCoversKeyMessages) {
  const seep::Classification c = servers::build_classification();
  EXPECT_GT(c.size(), 40u);
  // The classifications Table I's shape depends on:
  EXPECT_EQ(c.get(servers::DS_NOTIFY_SUB).seep, seep::SeepClass::kNonStateModifying);
  EXPECT_EQ(c.get(servers::VFS_PM_EXEC).seep, seep::SeepClass::kNonStateModifying);
  EXPECT_EQ(c.get(servers::VM_INFO).seep, seep::SeepClass::kNonStateModifying);
  EXPECT_EQ(c.get(servers::RS_PING).seep, seep::SeepClass::kStateModifying);
  EXPECT_EQ(c.get(servers::VM_FORK_AS).seep, seep::SeepClass::kStateModifying);
  EXPECT_FALSE(c.get(servers::PM_SIG_NOTIFY).replyable);
}

// --- policies ----------------------------------------------------------

TEST(Policy, WindowUsage) {
  EXPECT_FALSE(seep::policy_uses_windows(seep::Policy::kStateless));
  EXPECT_FALSE(seep::policy_uses_windows(seep::Policy::kNaive));
  EXPECT_TRUE(seep::policy_uses_windows(seep::Policy::kPessimistic));
  EXPECT_TRUE(seep::policy_uses_windows(seep::Policy::kEnhanced));
}

TEST(Policy, CloseRules) {
  using seep::Policy;
  using seep::SeepClass;
  EXPECT_TRUE(seep::policy_closes_window(Policy::kPessimistic, SeepClass::kNonStateModifying));
  EXPECT_TRUE(seep::policy_closes_window(Policy::kPessimistic, SeepClass::kStateModifying));
  EXPECT_FALSE(seep::policy_closes_window(Policy::kEnhanced, SeepClass::kNonStateModifying));
  EXPECT_TRUE(seep::policy_closes_window(Policy::kEnhanced, SeepClass::kStateModifying));
  EXPECT_FALSE(seep::policy_closes_window(Policy::kStateless, SeepClass::kStateModifying));
}

// --- window state machine -----------------------------------------------

namespace {
struct WindowFixture : ::testing::Test {
  ckpt::Context ctx{ckpt::Mode::kWindowOnly};
};
}  // namespace

TEST_F(WindowFixture, OpenTakesCheckpointAndEnablesLogging) {
  seep::Window w(seep::Policy::kEnhanced, ctx);
  int v = 0;
  ctx.log().record(&v, sizeof v);  // stale entry from "last request"
  w.open();
  EXPECT_TRUE(w.is_open());
  EXPECT_TRUE(ctx.window_open());
  EXPECT_TRUE(ctx.log().empty());  // checkpoint = log reset
}

TEST_F(WindowFixture, EnhancedSurvivesNonStateModifyingSeep) {
  seep::Window w(seep::Policy::kEnhanced, ctx);
  w.open();
  w.on_outbound(seep::SeepClass::kNonStateModifying);
  EXPECT_TRUE(w.is_open());
  w.on_outbound(seep::SeepClass::kStateModifying);
  EXPECT_FALSE(w.is_open());
  EXPECT_FALSE(ctx.window_open());
  EXPECT_EQ(w.stats().closed_by_seep, 1u);
}

TEST_F(WindowFixture, PessimisticClosesOnAnySeep) {
  seep::Window w(seep::Policy::kPessimistic, ctx);
  w.open();
  w.on_outbound(seep::SeepClass::kNonStateModifying);
  EXPECT_FALSE(w.is_open());
}

TEST_F(WindowFixture, YieldForcesClose) {
  seep::Window w(seep::Policy::kEnhanced, ctx);
  w.open();
  w.on_yield();
  EXPECT_FALSE(w.is_open());
  EXPECT_EQ(w.stats().closed_by_yield, 1u);
}

TEST_F(WindowFixture, CloseDiscardsUndoLog) {
  seep::Window w(seep::Policy::kEnhanced, ctx);
  w.open();
  int v = 0;
  ctx.log().record(&v, sizeof v);
  w.on_outbound(seep::SeepClass::kStateModifying);
  EXPECT_TRUE(ctx.log().empty());  // past the window the checkpoint is useless
}

TEST_F(WindowFixture, StatelessPolicyNeverOpens) {
  seep::Window w(seep::Policy::kStateless, ctx);
  w.open();
  EXPECT_FALSE(w.is_open());
}

TEST_F(WindowFixture, ProbeHitsSplitByWindowState) {
  seep::Window w(seep::Policy::kEnhanced, ctx);
  w.open();
  w.probe_hit();
  w.probe_hit();
  w.on_outbound(seep::SeepClass::kStateModifying);
  w.probe_hit();
  EXPECT_EQ(w.stats().probe_hits_inside, 2u);
  EXPECT_EQ(w.stats().probe_hits_outside, 1u);
  EXPECT_NEAR(w.stats().coverage(), 2.0 / 3.0, 1e-9);
}

// --- fibers -----------------------------------------------------------

TEST(Fiber, RunsToCompletion) {
  int steps = 0;
  cothread::Fiber f([&] { steps = 42; });
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(steps, 42);
}

TEST(Fiber, SuspendAndResume) {
  std::vector<int> order;
  cothread::Fiber f([&] {
    order.push_back(1);
    cothread::Fiber::suspend();
    order.push_back(3);
  });
  f.resume();
  order.push_back(2);
  f.resume();
  order.push_back(4);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, CurrentTracksExecution) {
  EXPECT_EQ(cothread::Fiber::current(), nullptr);
  cothread::Fiber* seen = nullptr;
  cothread::Fiber f([&] { seen = cothread::Fiber::current(); });
  f.resume();
  EXPECT_EQ(seen, &f);
  EXPECT_EQ(cothread::Fiber::current(), nullptr);
}

TEST(Fiber, ExceptionIsCapturedNotPropagated) {
  cothread::Fiber f([] { throw std::runtime_error("inside fiber"); });
  f.resume();  // must not throw on the resumer's stack
  EXPECT_TRUE(f.finished());
  auto e = f.take_exception();
  ASSERT_TRUE(e != nullptr);
  EXPECT_THROW(std::rethrow_exception(e), std::runtime_error);
  EXPECT_EQ(f.take_exception(), nullptr);  // fetching clears
}

TEST(Fiber, ManyFibersInterleave) {
  constexpr int kN = 16;
  std::vector<std::unique_ptr<cothread::Fiber>> fibers;
  std::vector<int> counters(kN, 0);
  for (int i = 0; i < kN; ++i) {
    fibers.push_back(std::make_unique<cothread::Fiber>([&counters, i] {
      for (int round = 0; round < 5; ++round) {
        ++counters[i];
        cothread::Fiber::suspend();
      }
    }));
  }
  for (int round = 0; round < 5; ++round) {
    for (auto& f : fibers) f->resume();
  }
  for (int i = 0; i < kN; ++i) EXPECT_EQ(counters[i], 5);
}

TEST(Fiber, NestedResumeFromInsideFiber) {
  // A fiber resuming another fiber (as VFS does when a worker runs while a
  // user fiber's syscall chain is active elsewhere).
  int inner_ran = 0;
  cothread::Fiber inner([&] { inner_ran = 1; });
  cothread::Fiber outer([&] {
    inner.resume();
    EXPECT_EQ(cothread::Fiber::current(), &outer);
  });
  outer.resume();
  EXPECT_EQ(inner_ran, 1);
  EXPECT_TRUE(outer.finished());
}
