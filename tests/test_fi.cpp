// Unit tests: fault-injection registry, probes, fault realization, and the
// Figure 3 periodic in-window injector.
#include <gtest/gtest.h>

#include "fi/registry.hpp"

using namespace osiris;

namespace {

/// The registry is process-global; tests snapshot/disarm around themselves.
struct FiFixture : ::testing::Test {
  void SetUp() override {
    fi::Registry::instance().disarm();
    fi::Registry::instance().reset_counts();
  }
  void TearDown() override { fi::Registry::instance().disarm(); }
};

// Local probe helpers with stable identities for this test file.
fi::Site* block_site() {
  static fi::Site site(__FILE__, __LINE__, "test", fi::SiteKind::kBlock);
  return &site;
}
fi::Site* value_site() {
  static fi::Site site(__FILE__, __LINE__, "test", fi::SiteKind::kValue);
  return &site;
}
fi::Site* branch_site() {
  static fi::Site site(__FILE__, __LINE__, "test", fi::SiteKind::kBranch);
  return &site;
}

}  // namespace

TEST_F(FiFixture, SitesRegisterWithUniqueIds) {
  EXPECT_NE(block_site()->id, value_site()->id);
  EXPECT_NE(value_site()->id, branch_site()->id);
}

TEST_F(FiFixture, Applicability) {
  EXPECT_TRUE(fi::applicable(fi::SiteKind::kBlock, fi::FaultType::kNullDeref));
  EXPECT_TRUE(fi::applicable(fi::SiteKind::kBlock, fi::FaultType::kHang));
  EXPECT_FALSE(fi::applicable(fi::SiteKind::kBlock, fi::FaultType::kCorruptValue));
  EXPECT_TRUE(fi::applicable(fi::SiteKind::kValue, fi::FaultType::kOffByOne));
  EXPECT_FALSE(fi::applicable(fi::SiteKind::kValue, fi::FaultType::kBranchFlip));
  EXPECT_TRUE(fi::applicable(fi::SiteKind::kBranch, fi::FaultType::kBranchFlip));
}

TEST_F(FiFixture, HitsCountAndReset) {
  fi::block_probe(block_site());
  fi::block_probe(block_site());
  EXPECT_EQ(block_site()->hits(), 2u);
  fi::Registry::instance().reset_counts();
  EXPECT_EQ(block_site()->hits(), 0u);
}

TEST_F(FiFixture, BootHitsAreSeparated) {
  fi::block_probe(block_site());
  fi::Registry::instance().mark_boot_complete();
  EXPECT_EQ(block_site()->boot_hits(), 1u);
  EXPECT_EQ(block_site()->hits(), 0u);
}

TEST_F(FiFixture, NullDerefFiresExactlyAtTriggerHit) {
  fi::Registry::instance().arm(block_site(), fi::FaultType::kNullDeref, 3);
  EXPECT_NO_THROW(fi::block_probe(block_site()));
  EXPECT_NO_THROW(fi::block_probe(block_site()));
  EXPECT_THROW(fi::block_probe(block_site()), kernel::FailStopFault);
  // Once fired, the fault does not re-fire.
  EXPECT_NO_THROW(fi::block_probe(block_site()));
}

TEST_F(FiFixture, UnarmedSitesNeverFire) {
  fi::Registry::instance().arm(block_site(), fi::FaultType::kNullDeref, 1);
  EXPECT_EQ(fi::value_probe(value_site(), 17), 17);
  EXPECT_TRUE(fi::branch_probe(branch_site(), true));
}

TEST_F(FiFixture, CorruptValueFlipsBits) {
  fi::Registry::instance().arm(value_site(), fi::FaultType::kCorruptValue, 1);
  const std::int64_t corrupted = fi::value_probe(value_site(), 100);
  EXPECT_NE(corrupted, 100);
  // Subsequent executions are clean again.
  EXPECT_EQ(fi::value_probe(value_site(), 100), 100);
}

TEST_F(FiFixture, OffByOneAddsOne) {
  fi::Registry::instance().arm(value_site(), fi::FaultType::kOffByOne, 2);
  EXPECT_EQ(fi::value_probe(value_site(), 10), 10);
  EXPECT_EQ(fi::value_probe(value_site(), 10), 11);
}

TEST_F(FiFixture, BranchFlipInverts) {
  fi::Registry::instance().arm(branch_site(), fi::FaultType::kBranchFlip, 1);
  EXPECT_FALSE(fi::branch_probe(branch_site(), true));
  EXPECT_TRUE(fi::branch_probe(branch_site(), true));
}

TEST_F(FiFixture, HangThrowsHangSuspend) {
  fi::Registry::instance().arm(block_site(), fi::FaultType::kHang, 1);
  EXPECT_THROW(fi::block_probe(block_site()), kernel::HangSuspend);
}

TEST_F(FiFixture, DelayedCrashIsSilentThenFatal) {
  fi::Registry::instance().arm(block_site(), fi::FaultType::kDelayedCrash, 1, /*delay=*/2);
  EXPECT_NO_THROW(fi::block_probe(block_site()));  // silent damage at hit 1
  EXPECT_NO_THROW(fi::block_probe(block_site()));  // hit 2
  EXPECT_THROW(fi::block_probe(block_site()), kernel::FailStopFault);  // hit 3 = 1+2
}

TEST_F(FiFixture, DisarmStopsEverything) {
  fi::Registry::instance().arm(block_site(), fi::FaultType::kNullDeref, 1);
  fi::Registry::instance().disarm();
  EXPECT_NO_THROW(fi::block_probe(block_site()));
  EXPECT_FALSE(fi::Registry::instance().armed());
}

TEST_F(FiFixture, PeriodicWindowCrashOnlyFiresInsideOpenWindow) {
  ckpt::Context ctx(ckpt::Mode::kWindowOnly);
  seep::Window window(seep::Policy::kEnhanced, ctx);
  fi::Registry::instance().set_active({&window, 2});
  fi::Registry::instance().arm_periodic_window_crash(block_site(), 2);
  const std::uint64_t fired_before = fi::Registry::instance().injections_fired();

  // Window closed: hits accumulate but nothing fires.
  for (int i = 0; i < 5; ++i) EXPECT_NO_THROW(fi::block_probe(block_site()));

  window.open();
  EXPECT_THROW(fi::block_probe(block_site()), kernel::FailStopFault);
  // Interval respected: the very next hit is too early.
  EXPECT_NO_THROW(fi::block_probe(block_site()));
  EXPECT_THROW(fi::block_probe(block_site()), kernel::FailStopFault);
  EXPECT_EQ(fi::Registry::instance().injections_fired(), fired_before + 2);
  fi::Registry::instance().set_active({nullptr, -1});
}

TEST_F(FiFixture, ProbesFeedWindowCoverage) {
  ckpt::Context ctx(ckpt::Mode::kWindowOnly);
  seep::Window window(seep::Policy::kEnhanced, ctx);
  fi::Registry::instance().set_active({&window, 2});
  window.open();
  fi::block_probe(block_site());
  window.end_of_request();
  fi::block_probe(block_site());
  EXPECT_EQ(window.stats().probe_hits_inside, 1u);
  EXPECT_EQ(window.stats().probe_hits_outside, 1u);
  fi::Registry::instance().set_active({nullptr, -1});
}
