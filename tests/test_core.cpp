// Unit tests: the core facade (umbrella header compiles; metrics snapshot).
#include <gtest/gtest.h>

#include "core/osiris.hpp"

using namespace osiris;

TEST(Metrics, SnapshotAfterSuiteRun) {
  fi::Registry::instance().disarm();
  os::OsConfig cfg;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  const auto suite = workload::run_suite(inst);
  ASSERT_EQ(suite.failed, 0);

  const core::SystemMetrics m = core::collect_metrics(inst);
  ASSERT_EQ(m.components.size(), 5u);
  EXPECT_GT(m.weighted_coverage, 0.3);
  EXPECT_GT(m.messages, 1000u);
  EXPECT_EQ(m.crashes, 0u);
  EXPECT_EQ(m.rollbacks, 0u);

  for (const auto& c : m.components) {
    EXPECT_GT(c.state_bytes, 0u) << c.name;
    EXPECT_GE(c.clone_bytes, c.state_bytes) << c.name;
    EXPECT_EQ(c.recoveries, 0u) << c.name;
  }
  // VM's clone dominates (frame map + recovery arena), as in Table VI.
  std::size_t vm_clone = 0, others_max = 0;
  for (const auto& c : m.components) {
    if (c.name == "vm") vm_clone = c.clone_bytes;
    else others_max = std::max(others_max, c.clone_bytes);
  }
  EXPECT_GT(vm_clone, others_max);

  const std::string report = m.report();
  EXPECT_NE(report.find("weighted coverage"), std::string::npos);
  EXPECT_NE(report.find("vm"), std::string::npos);
}

TEST(Metrics, RecoveryCountsAppear) {
  fi::Registry::instance().disarm();
  fi::Registry::instance().reset_counts();
  // Profile to find a PM site.
  fi::Site* site = nullptr;
  {
    os::OsConfig cfg;
    os::OsInstance inst(cfg);
    workload::register_suite_programs(inst.programs());
    inst.boot();
    inst.run([](os::ISys& sys) {
      for (int i = 0; i < 20; ++i) sys.getpid();
    });
    for (fi::Site* s : fi::Registry::instance().sites()) {
      if (std::string_view(s->tag) == "pm" && s->hits() > 10) {
        site = s;
        break;
      }
    }
  }
  ASSERT_NE(site, nullptr);
  fi::Registry::instance().reset_counts();

  os::OsConfig cfg;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  fi::Registry::instance().arm(site, fi::FaultType::kNullDeref, 10);
  inst.run([](os::ISys& sys) {
    for (int i = 0; i < 20; ++i) sys.getpid();
  });
  fi::Registry::instance().disarm();

  const core::SystemMetrics m = core::collect_metrics(inst);
  EXPECT_EQ(m.crashes, 1u);
  EXPECT_EQ(m.rollbacks, 1u);
  EXPECT_EQ(m.restarts, 1u);
}
