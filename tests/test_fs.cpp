// Unit tests: filesystem substrate — block device, LRU cache, MiniFS.
#include <gtest/gtest.h>

#include <cstring>

#include "fs/blockdev.hpp"
#include "fs/cache.hpp"
#include "fs/direct_store.hpp"
#include "fs/minifs.hpp"
#include "support/clock.hpp"

using namespace osiris;
using fs::BlockCache;
using fs::BlockDevice;
using fs::DirectStore;
using fs::kBlockSize;
using fs::MiniFs;

namespace {

struct FsFixture : ::testing::Test {
  VirtualClock clock;
  BlockDevice dev{clock, 512};
  DirectStore store{dev};
  MiniFs mfs{store};

  void SetUp() override {
    MiniFs::mkfs(dev);
    ASSERT_EQ(mfs.mount(), kernel::OK);
  }
};

std::vector<std::byte> bytes(std::string_view s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

}  // namespace

// --- block device ------------------------------------------------------

TEST(BlockDevice, AsyncReadCompletesAtLatency) {
  VirtualClock clock;
  BlockDevice dev(clock, 16, /*read_latency=*/40, /*write_latency=*/60);
  alignas(8) std::byte wr[kBlockSize];
  std::memset(wr, 0x5a, sizeof wr);
  dev.write_now(3, std::span<const std::byte, kBlockSize>(wr));

  alignas(8) std::byte rd[kBlockSize] = {};
  bool done = false;
  dev.submit_read(3, std::span<std::byte, kBlockSize>(rd), [&] { done = true; });
  EXPECT_FALSE(done);
  EXPECT_TRUE(clock.advance_to_next());
  EXPECT_TRUE(done);
  EXPECT_EQ(clock.now(), 40u);
  EXPECT_EQ(rd[0], std::byte{0x5a});
}

TEST(BlockDevice, PostedWriteVisibleToLaterRead) {
  // A read submitted after a write must observe the written data even though
  // the write's completion callback fires later.
  VirtualClock clock;
  BlockDevice dev(clock, 16, 10, 100);
  alignas(8) std::byte wr[kBlockSize];
  std::memset(wr, 0x77, sizeof wr);
  dev.submit_write(5, std::span<const std::byte, kBlockSize>(wr), [] {});
  alignas(8) std::byte rd[kBlockSize] = {};
  bool read_done = false;
  dev.submit_read(5, std::span<std::byte, kBlockSize>(rd), [&] { read_done = true; });
  while (clock.advance_to_next()) {
  }
  EXPECT_TRUE(read_done);
  EXPECT_EQ(rd[100], std::byte{0x77});
}

TEST(BlockDevice, CountsOps) {
  VirtualClock clock;
  BlockDevice dev(clock, 16);
  alignas(8) std::byte b[kBlockSize] = {};
  dev.submit_read(0, std::span<std::byte, kBlockSize>(b), [] {});
  dev.submit_write(1, std::span<const std::byte, kBlockSize>(b), [] {});
  EXPECT_EQ(dev.stats().reads, 1u);
  EXPECT_EQ(dev.stats().writes, 1u);
}

// --- block cache ---------------------------------------------------------

TEST(BlockCache, HitAfterInsert) {
  BlockCache cache(4);
  alignas(8) std::byte data[kBlockSize];
  std::memset(data, 1, sizeof data);
  cache.insert(7, std::span<const std::byte, kBlockSize>(data), nullptr);
  EXPECT_NE(cache.lookup(7), nullptr);
  EXPECT_EQ(cache.lookup(8), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(BlockCache, EvictsLeastRecentlyUsed) {
  BlockCache cache(2);
  alignas(8) std::byte data[kBlockSize] = {};
  cache.insert(1, std::span<const std::byte, kBlockSize>(data), nullptr);
  cache.insert(2, std::span<const std::byte, kBlockSize>(data), nullptr);
  EXPECT_NE(cache.lookup(1), nullptr);  // 1 is now most recent
  cache.insert(3, std::span<const std::byte, kBlockSize>(data), nullptr);  // evicts 2
  EXPECT_EQ(cache.lookup(2), nullptr);
  EXPECT_NE(cache.lookup(1), nullptr);
  EXPECT_NE(cache.lookup(3), nullptr);
}

TEST(BlockCache, DirtyVictimIsReported) {
  BlockCache cache(1);
  alignas(8) std::byte data[kBlockSize];
  std::memset(data, 9, sizeof data);
  cache.insert(1, std::span<const std::byte, kBlockSize>(data), nullptr);
  cache.mark_dirty(1);
  std::optional<std::pair<std::uint32_t, std::vector<std::byte>>> evicted;
  cache.insert(2, std::span<const std::byte, kBlockSize>(data), &evicted);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->first, 1u);
  EXPECT_EQ(evicted->second[0], std::byte{9});
}

TEST(BlockCache, TakeDirtyClearsFlags) {
  BlockCache cache(4);
  alignas(8) std::byte data[kBlockSize] = {};
  cache.insert(1, std::span<const std::byte, kBlockSize>(data), nullptr);
  cache.insert(2, std::span<const std::byte, kBlockSize>(data), nullptr);
  cache.mark_dirty(1);
  EXPECT_EQ(cache.take_dirty().size(), 1u);
  EXPECT_TRUE(cache.take_dirty().empty());
  EXPECT_FALSE(cache.is_dirty(1));
}

// --- MiniFS ------------------------------------------------------------

TEST_F(FsFixture, MkfsProducesValidSuper) {
  EXPECT_EQ(mfs.super().magic, fs::kFsMagic);
  EXPECT_EQ(mfs.super().root_ino, fs::kRootIno);
  EXPECT_GT(mfs.free_blocks(), 0u);
}

TEST_F(FsFixture, CreateLookupRoundTrip) {
  const std::int64_t ino = mfs.create(fs::kRootIno, "file", fs::FileType::kRegular);
  ASSERT_GT(ino, 0);
  EXPECT_EQ(mfs.lookup(fs::kRootIno, "file"), ino);
  EXPECT_EQ(mfs.lookup(fs::kRootIno, "nope"), kernel::E_NOENT);
}

TEST_F(FsFixture, CreateDuplicateFails) {
  ASSERT_GT(mfs.create(fs::kRootIno, "x", fs::FileType::kRegular), 0);
  EXPECT_EQ(mfs.create(fs::kRootIno, "x", fs::FileType::kRegular), kernel::E_EXIST);
}

TEST_F(FsFixture, NameValidation) {
  EXPECT_EQ(mfs.create(fs::kRootIno, "", fs::FileType::kRegular), kernel::E_INVAL);
  EXPECT_EQ(mfs.create(fs::kRootIno, std::string(40, 'n'), fs::FileType::kRegular),
            kernel::E_NAMETOOLONG);
  EXPECT_EQ(mfs.create(fs::kRootIno, "a/b", fs::FileType::kRegular), kernel::E_INVAL);
}

TEST_F(FsFixture, WriteReadBack) {
  const auto ino = static_cast<fs::Ino>(mfs.create(fs::kRootIno, "f", fs::FileType::kRegular));
  const auto data = bytes("the quick brown fox");
  EXPECT_EQ(mfs.write(ino, 0, data), static_cast<std::int64_t>(data.size()));
  std::vector<std::byte> rd(data.size());
  EXPECT_EQ(mfs.read(ino, 0, rd), static_cast<std::int64_t>(data.size()));
  EXPECT_EQ(std::memcmp(rd.data(), data.data(), data.size()), 0);
}

TEST_F(FsFixture, PartialAndOffsetReads) {
  const auto ino = static_cast<fs::Ino>(mfs.create(fs::kRootIno, "f", fs::FileType::kRegular));
  mfs.write(ino, 0, bytes("0123456789"));
  std::vector<std::byte> rd(4);
  EXPECT_EQ(mfs.read(ino, 6, rd), 4);
  EXPECT_EQ(std::memcmp(rd.data(), "6789", 4), 0);
  EXPECT_EQ(mfs.read(ino, 10, rd), 0);  // at EOF
  EXPECT_EQ(mfs.read(ino, 8, rd), 2);   // clamped
}

TEST_F(FsFixture, CrossBlockWrites) {
  const auto ino = static_cast<fs::Ino>(mfs.create(fs::kRootIno, "f", fs::FileType::kRegular));
  std::vector<std::byte> big(3 * kBlockSize + 100, std::byte{0x3c});
  EXPECT_EQ(mfs.write(ino, 0, big), static_cast<std::int64_t>(big.size()));
  std::vector<std::byte> rd(big.size());
  EXPECT_EQ(mfs.read(ino, 0, rd), static_cast<std::int64_t>(big.size()));
  EXPECT_EQ(rd.back(), std::byte{0x3c});
  fs::Attr attr{};
  EXPECT_EQ(mfs.getattr(ino, &attr), kernel::OK);
  EXPECT_EQ(attr.size, big.size());
}

TEST_F(FsFixture, IndirectBlocks) {
  const auto ino = static_cast<fs::Ino>(mfs.create(fs::kRootIno, "big", fs::FileType::kRegular));
  // Past the 10 direct blocks.
  std::vector<std::byte> chunk(kBlockSize, std::byte{0x11});
  for (std::uint32_t b = 0; b < 14; ++b) {
    EXPECT_EQ(mfs.write(ino, b * kBlockSize, chunk), static_cast<std::int64_t>(kBlockSize));
  }
  std::vector<std::byte> rd(kBlockSize);
  EXPECT_EQ(mfs.read(ino, 13 * kBlockSize, rd), static_cast<std::int64_t>(kBlockSize));
  EXPECT_EQ(rd[0], std::byte{0x11});
}

TEST_F(FsFixture, HolesReadAsZeroes) {
  const auto ino = static_cast<fs::Ino>(mfs.create(fs::kRootIno, "s", fs::FileType::kRegular));
  mfs.write(ino, 3 * kBlockSize, bytes("end"));
  std::vector<std::byte> rd(16);
  EXPECT_EQ(mfs.read(ino, 0, rd), 16);
  for (auto b : rd) EXPECT_EQ(b, std::byte{0});
}

TEST_F(FsFixture, MaxFileSizeEnforced) {
  const auto ino = static_cast<fs::Ino>(mfs.create(fs::kRootIno, "f", fs::FileType::kRegular));
  std::vector<std::byte> chunk(16, std::byte{1});
  EXPECT_EQ(mfs.write(ino, fs::kMaxFileSize - 8, chunk), kernel::E_FBIG);
}

TEST_F(FsFixture, UnlinkFreesBlocks) {
  // Prime the root directory so its entry block already exists (directory
  // growth is permanent and would otherwise skew the accounting below).
  ASSERT_GT(mfs.create(fs::kRootIno, "prime", fs::FileType::kRegular), 0);
  ASSERT_EQ(mfs.unlink(fs::kRootIno, "prime"), kernel::OK);
  const std::uint32_t before = mfs.free_blocks();
  const auto ino = static_cast<fs::Ino>(mfs.create(fs::kRootIno, "f", fs::FileType::kRegular));
  std::vector<std::byte> chunk(4 * kBlockSize, std::byte{1});
  mfs.write(ino, 0, chunk);
  EXPECT_LT(mfs.free_blocks(), before);
  EXPECT_EQ(mfs.unlink(fs::kRootIno, "f"), kernel::OK);
  EXPECT_EQ(mfs.free_blocks(), before);
  EXPECT_EQ(mfs.lookup(fs::kRootIno, "f"), kernel::E_NOENT);
}

TEST_F(FsFixture, UnlinkDirectoryRejected) {
  ASSERT_GT(mfs.create(fs::kRootIno, "d", fs::FileType::kDirectory), 0);
  EXPECT_EQ(mfs.unlink(fs::kRootIno, "d"), kernel::E_ISDIR);
  EXPECT_EQ(mfs.rmdir(fs::kRootIno, "d"), kernel::OK);
}

TEST_F(FsFixture, RmdirNonEmptyRejected) {
  const auto dir = static_cast<fs::Ino>(mfs.create(fs::kRootIno, "d", fs::FileType::kDirectory));
  ASSERT_GT(mfs.create(dir, "inner", fs::FileType::kRegular), 0);
  EXPECT_EQ(mfs.rmdir(fs::kRootIno, "d"), kernel::E_NOTEMPTY);
  EXPECT_EQ(mfs.unlink(dir, "inner"), kernel::OK);
  EXPECT_EQ(mfs.rmdir(fs::kRootIno, "d"), kernel::OK);
}

TEST_F(FsFixture, RenameKeepsInode) {
  const std::int64_t ino = mfs.create(fs::kRootIno, "old", fs::FileType::kRegular);
  ASSERT_GT(ino, 0);
  EXPECT_EQ(mfs.rename(fs::kRootIno, "old", "new"), kernel::OK);
  EXPECT_EQ(mfs.lookup(fs::kRootIno, "new"), ino);
  EXPECT_EQ(mfs.lookup(fs::kRootIno, "old"), kernel::E_NOENT);
  EXPECT_EQ(mfs.rename(fs::kRootIno, "missing", "x"), kernel::E_NOENT);
}

TEST_F(FsFixture, ReaddirEnumeratesAndSkipsHoles) {
  for (const char* n : {"a", "b", "c"}) {
    ASSERT_GT(mfs.create(fs::kRootIno, n, fs::FileType::kRegular), 0);
  }
  ASSERT_EQ(mfs.unlink(fs::kRootIno, "b"), kernel::OK);
  std::vector<std::string> names;
  for (std::size_t i = 0;; ++i) {
    const auto e = mfs.readdir(fs::kRootIno, i);
    if (!e) break;
    names.emplace_back(e->name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"a", "c"}));
}

TEST_F(FsFixture, TruncateShrinkFreesAndZeroes) {
  const auto ino = static_cast<fs::Ino>(mfs.create(fs::kRootIno, "t", fs::FileType::kRegular));
  std::vector<std::byte> chunk(12 * kBlockSize, std::byte{7});  // uses indirect too
  ASSERT_EQ(mfs.write(ino, 0, chunk), static_cast<std::int64_t>(chunk.size()));
  const std::uint32_t free_before = mfs.free_blocks();
  EXPECT_EQ(mfs.truncate(ino, 100), kernel::OK);
  EXPECT_GT(mfs.free_blocks(), free_before);
  fs::Attr attr{};
  EXPECT_EQ(mfs.getattr(ino, &attr), kernel::OK);
  EXPECT_EQ(attr.size, 100u);
}

TEST_F(FsFixture, DirEntrySlotReuse) {
  ASSERT_GT(mfs.create(fs::kRootIno, "one", fs::FileType::kRegular), 0);
  const fs::Attr before = [&] {
    fs::Attr a{};
    mfs.getattr(fs::kRootIno, &a);
    return a;
  }();
  ASSERT_EQ(mfs.unlink(fs::kRootIno, "one"), kernel::OK);
  ASSERT_GT(mfs.create(fs::kRootIno, "two", fs::FileType::kRegular), 0);
  fs::Attr after{};
  mfs.getattr(fs::kRootIno, &after);
  EXPECT_EQ(after.size, before.size);  // the freed dirent slot was reused
}

TEST_F(FsFixture, DiskFullPartialWrite) {
  const auto ino = static_cast<fs::Ino>(mfs.create(fs::kRootIno, "fill", fs::FileType::kRegular));
  std::vector<std::byte> chunk(kBlockSize, std::byte{1});
  std::int64_t written_blocks = 0;
  std::uint32_t off = 0;
  // Exhaust the disk using several files (each capped by kMaxFileSize).
  int file_no = 0;
  fs::Ino cur = ino;
  for (;;) {
    const std::int64_t n = mfs.write(cur, off, chunk);
    if (n == static_cast<std::int64_t>(kBlockSize)) {
      ++written_blocks;
      off += kBlockSize;
      if (off + kBlockSize > fs::kMaxFileSize) {
        const std::int64_t next = mfs.create(
            fs::kRootIno, "fill" + std::to_string(++file_no), fs::FileType::kRegular);
        if (next < 0) break;
        cur = static_cast<fs::Ino>(next);
        off = 0;
      }
      continue;
    }
    EXPECT_TRUE(n == kernel::E_NOSPC || (n >= 0 && n < static_cast<std::int64_t>(kBlockSize)));
    break;
  }
  EXPECT_GT(written_blocks, 0);
  EXPECT_EQ(mfs.free_blocks(), 0u);
}

TEST(MiniFsMount, RejectsUnformattedDevice) {
  VirtualClock clock;
  BlockDevice dev(clock, 64);
  DirectStore store(dev);
  MiniFs mfs(store);
  EXPECT_EQ(mfs.mount(), kernel::E_INVAL);
}
