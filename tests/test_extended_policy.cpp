// Tests for the SVII composable-policy extension: requester-scoped SEEPs
// taint (rather than close) the recovery window under the extended policy,
// and reconciliation kills the requester instead of error-replying.
#include <gtest/gtest.h>

#include <cstring>

#include "fi/registry.hpp"
#include "os/instance.hpp"
#include "workload/coverage.hpp"
#include "workload/suite.hpp"

using namespace osiris;
using os::ISys;
using os::OsInstance;

TEST(ExtendedPolicy, RequesterScopedSeepTaintsInsteadOfClosing) {
  ckpt::Context ctx(ckpt::Mode::kWindowOnly);
  seep::Window w(seep::Policy::kExtended, ctx);
  w.open();
  w.on_outbound(seep::SeepClass::kNonStateModifying);
  EXPECT_TRUE(w.is_open());
  EXPECT_FALSE(w.is_tainted());
  w.on_outbound(seep::SeepClass::kRequesterScoped);
  EXPECT_TRUE(w.is_open());
  EXPECT_TRUE(w.is_tainted());
  EXPECT_EQ(w.stats().tainted, 1u);
  w.on_outbound(seep::SeepClass::kStateModifying);
  EXPECT_FALSE(w.is_open());
}

TEST(ExtendedPolicy, EnhancedTreatsRequesterScopedAsClosing) {
  ckpt::Context ctx(ckpt::Mode::kWindowOnly);
  seep::Window w(seep::Policy::kEnhanced, ctx);
  w.open();
  w.on_outbound(seep::SeepClass::kRequesterScoped);
  EXPECT_FALSE(w.is_open());
}

TEST(ExtendedPolicy, OpenResetsTaint) {
  ckpt::Context ctx(ckpt::Mode::kWindowOnly);
  seep::Window w(seep::Policy::kExtended, ctx);
  w.open();
  w.on_outbound(seep::SeepClass::kRequesterScoped);
  ASSERT_TRUE(w.is_tainted());
  w.end_of_request();
  w.open();
  EXPECT_FALSE(w.is_tainted());
}

TEST(ExtendedPolicy, SuitePassesCleanly) {
  fi::Registry::instance().disarm();
  os::OsConfig cfg;
  cfg.policy = seep::Policy::kExtended;
  OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  const auto res = workload::run_suite(inst);
  EXPECT_EQ(res.outcome, OsInstance::Outcome::kCompleted);
  EXPECT_EQ(res.passed, 89);
  EXPECT_EQ(res.failed, 0);
}

TEST(ExtendedPolicy, CoverageAtLeastEnhanced) {
  const auto enh = workload::measure_coverage(seep::Policy::kEnhanced);
  const auto ext = workload::measure_coverage(seep::Policy::kExtended);
  // Windows that survive requester-scoped SEEPs can only widen coverage.
  EXPECT_GE(ext.weighted_mean + 1e-9, enh.weighted_mean);
  // PM specifically gains: its brk path stays inside the window.
  double pm_enh = 0, pm_ext = 0;
  for (const auto& s : enh.servers) {
    if (s.server == "pm") pm_enh = s.coverage;
  }
  for (const auto& s : ext.servers) {
    if (s.server == "pm") pm_ext = s.coverage;
  }
  EXPECT_GE(pm_ext + 1e-9, pm_enh);
}

TEST(ExtendedPolicy, TaintedCrashKillsRequesterAndSystemSurvives) {
  // Find a PM probe that executes after the brk path's requester-scoped
  // SEEP (while the window is tainted but still open).
  fi::Registry::instance().disarm();
  fi::Registry::instance().reset_counts();
  const auto brk_workload = [](ISys& sys) {
    const std::int64_t pid = sys.fork([](ISys& c) {
      for (int i = 1; i <= 8; ++i) c.brk(0x10000 + static_cast<std::uint64_t>(i) * 4096);
      c.exit(0);
    });
    std::int64_t s;
    if (pid > 0) sys.wait_pid(pid, &s);
  };
  // Profile under the EXTENDED policy and track which PM sites run tainted.
  // The do_brk post-call probe is the deepest PM site in this workload.
  {
    os::OsConfig cfg;
    cfg.policy = seep::Policy::kExtended;
    OsInstance inst(cfg);
    workload::register_suite_programs(inst.programs());
    inst.boot();
    ASSERT_EQ(inst.run(brk_workload), OsInstance::Outcome::kCompleted);
    EXPECT_GT(inst.pm().window().stats().tainted, 0u)
        << "brk must taint PM's window under the extended policy";
  }
  // Now inject: pick the busiest PM site and a trigger hit that lands inside
  // a brk request (the workload is brk-dominated, so most hits qualify).
  fi::Site* site = nullptr;
  for (fi::Site* s : fi::Registry::instance().sites()) {
    if (std::strcmp(s->tag, "pm") == 0 && (site == nullptr || s->hits() > site->hits())) site = s;
  }
  ASSERT_NE(site, nullptr);
  const std::uint64_t trigger = site->hits() * 2 / 3;
  fi::Registry::instance().reset_counts();

  os::OsConfig cfg;
  cfg.policy = seep::Policy::kExtended;
  OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  fi::Registry::instance().arm(site, fi::FaultType::kNullDeref, trigger);
  bool child_was_killed = false;
  const auto outcome = inst.run([&child_was_killed](ISys& sys) {
    const std::int64_t pid = sys.fork([](ISys& c) {
      for (int i = 1; i <= 8; ++i) c.brk(0x10000 + static_cast<std::uint64_t>(i) * 4096);
      c.exit(0);
    });
    std::int64_t status = -1;
    if (pid > 0 && sys.wait_pid(pid, &status) == pid) {
      child_was_killed = status == -static_cast<std::int64_t>(servers::kSigKill);
    }
    // The system itself keeps running regardless.
    for (int i = 0; i < 5; ++i) EXPECT_GT(sys.getpid(), 0);
  });
  fi::Registry::instance().disarm();

  ASSERT_EQ(outcome, OsInstance::Outcome::kCompleted);
  if (inst.engine().stats().requester_kills > 0) {
    EXPECT_TRUE(child_was_killed)
        << "a tainted-window recovery must terminate the requesting process";
    EXPECT_GE(inst.engine().recoveries_of(kernel::kPmEp), 1u);
  }
}
