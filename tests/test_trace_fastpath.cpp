// Observational equivalence of the IPC fast path (DESIGN.md §14).
//
// The arena ring, send batching, and grant-based zero-copy are pure
// mechanism: they may change *when* work happens inside the kernel, never
// *what* the machine observably does. The deterministic tracer is the
// instrument that pins this — every IPC delivery, checkpoint, window edge,
// fault, and recovery step lands in the merged timeline, so "byte-identical
// full trace" is the strongest equivalence check the simulator can express.
//
// Three layers of the claim:
//   1. golden recovery scenarios (rollback, escalation ladder) traced with
//      the fast path on vs off -> identical timelines, even across crashes
//      that land mid-batch;
//   2. a bulk-I/O run where the zero-copy bypass demonstrably engages (the
//      kernel counters say so) -> still identical;
//   3. a traced fault-injection campaign with batching on, at --jobs=1 and
//      --jobs=4 -> every per-injection trace matches the unbatched serial
//      reference byte for byte.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "fi/registry.hpp"
#include "kernel/fastpath.hpp"
#include "os/instance.hpp"
#include "trace_matcher.hpp"
#include "workload/campaign.hpp"
#include "workload/suite.hpp"

using namespace osiris;
using os::ISys;
using os::OsInstance;

namespace {

struct FiGuard {
  FiGuard() {
    fi::Registry::instance().disarm();
    fi::Registry::instance().reset_counts();
  }
  ~FiGuard() { fi::Registry::instance().disarm(); }
};

fi::Site* busiest_site(const char* tag, const ISys::ProcBody& body) {
  fi::Registry::instance().disarm();
  fi::Registry::instance().reset_counts();
  os::OsConfig cfg;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  inst.run(body);
  fi::Site* best = nullptr;
  for (fi::Site* s : fi::Registry::instance().sites()) {
    if (std::strcmp(s->tag, tag) == 0 && (best == nullptr || s->hits() > best->hits())) best = s;
  }
  return best;
}

struct FlaggedRun {
  OsInstance::Outcome outcome = OsInstance::Outcome::kCompleted;
  std::string full_text;  // sequenced text of the entire merged timeline
  kernel::KernelStats stats;
};

/// One traced run of `body` under `fastpath`, optionally armed via `arm`.
/// Returns the full sequenced trace plus the kernel counters, so tests can
/// assert both "the timelines match" and "the fast path actually engaged".
FlaggedRun run_flagged(const kernel::FastPath& fastpath,
                       const std::function<void(os::OsConfig&)>& tweak,
                       const std::function<void(fi::Registry&)>& arm, ISys::ProcBody body) {
  fi::Registry::instance().reset_counts();
  os::OsConfig cfg;
  cfg.trace_enabled = true;
  cfg.trace_ring_capacity = 1u << 16;  // full retention: equivalence is byte-exact
  cfg.fastpath = fastpath;
  if (tweak) tweak(cfg);
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  if (arm) arm(fi::Registry::instance());

  FlaggedRun r;
  r.outcome = inst.run(std::move(body));
  fi::Registry::instance().disarm();
  const trace::Tracer& tracer = *inst.tracer();
  r.full_text = trace::format_text(tracer.merged(), tracer);
  r.stats = inst.kern().stats();
  return r;
}

/// Every k-th injection of a full plan — the campaign-test thinning idiom.
std::vector<workload::Injection> thin(const std::vector<workload::Injection>& plan,
                                      std::size_t stride) {
  std::vector<workload::Injection> out;
  for (std::size_t i = 0; i < plan.size(); i += stride) out.push_back(plan[i]);
  return out;
}

}  // namespace

// --- Layer 1a: in-window crash + rollback, fast path on vs off --------------
// The crash lands while the fast path is live, so recovery interleaves with
// ring drains and (possibly) a partially delivered batch. The timeline must
// not care.
TEST(TraceFastPath, RollbackRecoveryTraceIdenticalAcrossFlags) {
  FiGuard guard;
  fi::Site* site = busiest_site("pm", [](ISys& sys) {
    for (int i = 0; i < 30; ++i) sys.getpid();
  });
  ASSERT_NE(site, nullptr);

  const auto arm = [&](fi::Registry& reg) { reg.arm(site, fi::FaultType::kNullDeref, 15); };
  const ISys::ProcBody body = [](ISys& sys) {
    for (int i = 0; i < 30; ++i) sys.setuid(0);
  };

  const FlaggedRun off = run_flagged(kernel::FastPath{}, nullptr, arm, body);
  const FlaggedRun on = run_flagged(kernel::FastPath::all_on(), nullptr, arm, body);

  ASSERT_EQ(off.outcome, OsInstance::Outcome::kCompleted);
  ASSERT_EQ(on.outcome, OsInstance::Outcome::kCompleted);
  ASSERT_FALSE(off.full_text.empty());
  EXPECT_EQ(off.full_text, on.full_text);
  // Flag-off runs must never touch the optimized paths.
  EXPECT_EQ(off.stats.arena_spills, 0u);
  EXPECT_EQ(off.stats.batches, 0u);
  EXPECT_EQ(off.stats.grant_bypass_bytes, 0u);
}

// --- Layer 1b: persistent fault climbing the ladder into quarantine ---------
// Quarantine parks and readmissions reorder *work*, not messages; the ladder
// rungs must fire at the same trace positions whichever queue implementation
// carried the traffic there.
TEST(TraceFastPath, QuarantineLadderTraceIdenticalAcrossFlags) {
  FiGuard guard;
  fi::Site* site = busiest_site("ds", [](ISys& sys) {
    for (int i = 0; i < 30; ++i) sys.ds_publish("fp.key", 1);
  });
  ASSERT_NE(site, nullptr);

  const auto tweak = [](os::OsConfig& cfg) {
    cfg.ladder.backoff_base_ticks = 50;
    cfg.ladder.quarantine_cooldown_ticks = 400;
  };
  const auto arm = [&](fi::Registry& reg) {
    reg.arm_persistent(site, fi::FaultType::kNullDeref, 2);
  };
  const ISys::ProcBody body = [](ISys& sys) {
    for (int i = 0; i < 200; ++i) sys.ds_publish("fp.key", static_cast<std::uint64_t>(i));
  };

  const FlaggedRun off = run_flagged(kernel::FastPath{}, tweak, arm, body);
  const FlaggedRun on = run_flagged(kernel::FastPath::all_on(), tweak, arm, body);

  ASSERT_EQ(off.outcome, OsInstance::Outcome::kCompleted);
  ASSERT_EQ(on.outcome, OsInstance::Outcome::kCompleted);
  ASSERT_FALSE(off.full_text.empty());
  EXPECT_EQ(off.full_text, on.full_text);
}

// --- Layer 2: bulk I/O with the bypass demonstrably engaged -----------------
// Writes and reads well past the inline-text threshold force the grant path;
// the kernel counters prove the zero-copy bypass (and the lazy checkpoint
// batching) actually ran in the "on" column, and the kGrantCopy trace events
// it emits at the baseline safecopy points keep the timelines equal anyway.
TEST(TraceFastPath, BulkFileIoTraceIdenticalWhileBypassEngages) {
  FiGuard guard;
  const ISys::ProcBody body = [](ISys& sys) {
    const std::int64_t fd = sys.open("/tmp/fp_bulk", servers::O_CREAT | servers::O_RDWR);
    const std::string blob(4 * kernel::kMsgTextCap, 'z');
    for (int i = 0; i < 8; ++i) sys.write_str(fd, blob);
    sys.lseek(fd, 0, 0);
    std::vector<std::byte> buf(blob.size());
    for (int i = 0; i < 8; ++i) sys.read(fd, buf);
    sys.close(fd);
  };

  const FlaggedRun off = run_flagged(kernel::FastPath{}, nullptr, nullptr, body);
  const FlaggedRun on = run_flagged(kernel::FastPath::all_on(), nullptr, nullptr, body);

  ASSERT_EQ(off.outcome, OsInstance::Outcome::kCompleted);
  ASSERT_EQ(on.outcome, OsInstance::Outcome::kCompleted);
  ASSERT_FALSE(off.full_text.empty());
  EXPECT_EQ(off.full_text, on.full_text);

  // The equivalence must be a statement about the *optimized* system, not a
  // vacuous one: the bulk payloads really did ride grants, not safecopies.
  EXPECT_GT(on.stats.grant_bypass_bytes, 0u);
  EXPECT_GT(on.stats.grant_spans, 0u);
  EXPECT_EQ(off.stats.grant_bypass_bytes, 0u);
  EXPECT_GT(off.stats.safecopy_bytes, on.stats.safecopy_bytes);
}

// --- Layer 3: batched traced campaign, serial and sharded -------------------
// The strongest composite: fault injection across the whole varied plan, the
// batching fast path on, and the worker pool sharding runs across threads.
// Every captured trace must equal the unbatched serial reference — batching
// is invisible even to a byte-exact observer, and --jobs stays a pure
// implementation detail when the fast path is live.
TEST(TraceFastPath, BatchedCampaignTracesMatchUnbatchedAcrossJobs) {
  FiGuard guard;
  const auto plan = thin(workload::plan_failstop(/*points_per_site=*/1), 6);
  ASSERT_GE(plan.size(), 4u) << "thinned plan too small to exercise sharding";

  std::vector<std::string> ref_traces;
  workload::CampaignOptions reference;  // unbatched serial baseline
  reference.jobs = 1;
  reference.traces = &ref_traces;

  std::vector<std::string> serial_traces;
  workload::CampaignOptions batched_serial;
  batched_serial.jobs = 1;
  batched_serial.traces = &serial_traces;
  batched_serial.fastpath = kernel::FastPath::all_on();

  std::vector<std::string> par_traces;
  workload::CampaignOptions batched_parallel;
  batched_parallel.jobs = 4;
  batched_parallel.traces = &par_traces;
  batched_parallel.fastpath = kernel::FastPath::all_on();

  const auto ref = workload::run_plan(seep::Policy::kEnhanced, plan, reference);
  const auto ser = workload::run_plan(seep::Policy::kEnhanced, plan, batched_serial);
  const auto par = workload::run_plan(seep::Policy::kEnhanced, plan, batched_parallel);

  ASSERT_EQ(ref_traces.size(), plan.size());
  ASSERT_EQ(serial_traces.size(), plan.size());
  ASSERT_EQ(par_traces.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(ref[i], ser[i]) << "injection " << i << " classified differently when batched";
    EXPECT_EQ(ref[i], par[i]) << "injection " << i << " classified differently at --jobs=4";
    EXPECT_EQ(ref_traces[i], serial_traces[i])
        << "injection " << i << " traced differently with the fast path on";
    EXPECT_EQ(ref_traces[i], par_traces[i])
        << "injection " << i << " traced differently with the fast path on at --jobs=4";
    EXPECT_NE(ref_traces[i].find("IpcSend"), std::string::npos) << "trace " << i << " is empty";
  }
}
