// The 89-program prototype test suite must pass completely under every
// recovery policy and instrumentation mode when no faults are injected.
#include <gtest/gtest.h>

#include "os/instance.hpp"
#include "workload/coverage.hpp"
#include "workload/suite.hpp"

using namespace osiris;
using workload::run_suite;
using workload::SuiteResult;

namespace {

SuiteResult run_clean(seep::Policy policy, ckpt::Mode mode = ckpt::Mode::kWindowOnly) {
  os::OsConfig cfg;
  cfg.policy = policy;
  cfg.ckpt_mode = mode;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  return run_suite(inst);
}

void expect_all_pass(const SuiteResult& r) {
  EXPECT_EQ(r.outcome, os::OsInstance::Outcome::kCompleted);
  EXPECT_TRUE(r.driver_completed);
  EXPECT_EQ(r.passed, 89);
  EXPECT_EQ(r.failed, 0);
  for (const auto& f : r.failures) ADD_FAILURE() << "suite test failed: " << f;
}

}  // namespace

TEST(SuiteClean, EnhancedPolicy) { expect_all_pass(run_clean(seep::Policy::kEnhanced)); }

TEST(SuiteClean, PessimisticPolicy) { expect_all_pass(run_clean(seep::Policy::kPessimistic)); }

TEST(SuiteClean, StatelessPolicy) { expect_all_pass(run_clean(seep::Policy::kStateless)); }

TEST(SuiteClean, NaivePolicy) { expect_all_pass(run_clean(seep::Policy::kNaive)); }

TEST(SuiteClean, UnoptimizedInstrumentation) {
  expect_all_pass(run_clean(seep::Policy::kEnhanced, ckpt::Mode::kAlways));
}

TEST(SuiteClean, CoverageShapeMatchesTable1) {
  const auto pess = workload::measure_coverage(seep::Policy::kPessimistic);
  const auto enh = workload::measure_coverage(seep::Policy::kEnhanced);
  ASSERT_EQ(pess.servers.size(), 5u);
  ASSERT_EQ(enh.servers.size(), 5u);
  // Enhanced coverage >= pessimistic for every server (Table I).
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_GE(enh.servers[i].coverage + 1e-9, pess.servers[i].coverage)
        << enh.servers[i].server;
  }
  EXPECT_GT(enh.weighted_mean, pess.weighted_mean);
  // Both means are substantial (the paper reports 57.7% and 68.4%).
  EXPECT_GT(pess.weighted_mean, 0.30);
  EXPECT_GT(enh.weighted_mean, 0.45);
}
