// Page-tier golden trace (DESIGN.md §17): the ninth golden pins the page
// checkpoint lifecycle of a traced rollback — captures as DS's blob pages go
// dirty, truncates as windows retire their epochs, the page rollback riding
// the injected crash, and the delta restart that follows — and the
// determinism tests extend the byte-identity contract to the tier: the same
// faulted scenario twice, and a traced campaign at --jobs=4, reproduce the
// serial bytes exactly with epoch/page checkpointing enabled.
// After an *intentional* change to page-tier sequencing, regenerate with:
// OSIRIS_REGOLDEN=1 ./osiris_trace_tests && git diff
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "fi/registry.hpp"
#include "os/instance.hpp"
#include "trace_matcher.hpp"
#include "workload/campaign.hpp"
#include "workload/suite.hpp"

using namespace osiris;
using os::ISys;
using os::OsInstance;
using trace::EventKind;
using trace_test::expect_absent;
using trace_test::expect_subsequence;
using trace_test::Pat;

namespace {

const std::int32_t kDs = kernel::kDsEp.value;

struct FiGuard {
  FiGuard() {
    fi::Registry::instance().disarm();
    fi::Registry::instance().reset_counts();
  }
  ~FiGuard() { fi::Registry::instance().disarm(); }
};

os::OsConfig paged_cfg(bool pages_on) {
  os::OsConfig cfg;
  cfg.trace_enabled = true;
  cfg.trace_ring_capacity = 1u << 16;
  cfg.ds_blob_slots = 8;
  cfg.vfs_journal_slots = 16;
  cfg.ckpt_pages.enabled = pages_on;
  return cfg;
}

struct TraceRun {
  OsInstance::Outcome outcome = OsInstance::Outcome::kCompleted;
  std::vector<trace::Event> events;       // full merged timeline
  std::vector<trace::Event> page_events;  // the page-tier lifecycle only
  std::string page_text;                  // unsequenced text of the page events
  std::string full_text;                  // sequenced text of everything
};

/// The rollback scenario every test here drives: blob-backed publishes with a
/// null-deref armed mid-publish (trigger derived from a deterministic
/// profiling pass — the fi trigger counts absolute hits, so boot-time hits
/// are snapshotted out), crashing DS inside the window so recovery restarts
/// the component and rolls its dirty pages back.
TraceRun run_faulted(const os::OsConfig& cfg) {
  fi::Registry& reg = fi::Registry::instance();
  reg.disarm();
  reg.reset_counts();
  // Eight keys keep DS's post-publish maintenance scans (which run AFTER the
  // blob write inside the same window) the busiest fault candidates, so the
  // armed crash lands in a window that already dirtied blob pages.
  const auto workload = [](ISys& sys) {
    for (int i = 0; i < 16; ++i) {
      sys.ds_publish("pages.key" + std::to_string(i % 8), 40 + i);
    }
  };
  std::map<const fi::Site*, std::uint64_t> boot_hits;
  {
    os::OsInstance inst(cfg);
    workload::register_suite_programs(inst.programs());
    inst.boot();
    for (fi::Site* s : reg.sites()) boot_hits[s] = s->hits();
    inst.run(workload);
  }
  fi::Site* best = nullptr;
  std::uint64_t best_delta = 0;
  for (fi::Site* s : reg.sites()) {
    const std::uint64_t d = s->hits() - boot_hits[s];
    if (std::strcmp(s->tag, "ds") == 0 && d > best_delta) {
      best = s;
      best_delta = d;
    }
  }
  TraceRun r;
  EXPECT_NE(best, nullptr);
  if (best == nullptr) return r;
  const std::uint64_t trigger = boot_hits[best] + best_delta / 2 + 1;

  reg.reset_counts();
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  reg.arm(best, fi::FaultType::kNullDeref, trigger);
  r.outcome = inst.run(workload);
  reg.disarm();

  const trace::Tracer& tracer = *inst.tracer();
  r.events = tracer.merged();
  r.page_events = trace_test::filter_events(
      r.events, {EventKind::kPageCapture, EventKind::kPageTruncate, EventKind::kPageRollback,
                 EventKind::kRestartDelta, EventKind::kRecoveryRollback});
  r.page_text = trace::format_text_unsequenced(r.page_events, tracer);
  r.full_text = trace::format_text(r.events, tracer);
  return r;
}

}  // namespace

// --- The ninth golden: a traced rollback through the page tier --------------
TEST(TracePages, FaultedBlobPublishEmitsPageLifecycleGolden) {
  FiGuard guard;
  const TraceRun r = run_faulted(paged_cfg(/*pages_on=*/true));
  ASSERT_EQ(r.outcome, OsInstance::Outcome::kCompleted);

  // The lifecycle in order: a capture as a publish dirties blob pages, an
  // epoch truncation at a later checkpoint, then the crash — the engine's
  // restart phase delta-syncs DS's aux image into the clone BEFORE the
  // rollback phase undoes the open epoch's pages (engine.cpp: restart, then
  // rollback), so kRestartDelta precedes kPageRollback in the timeline.
  EXPECT_TRUE(expect_subsequence(r.events, {
                  Pat{EventKind::kPageCapture, kDs},
                  Pat{EventKind::kPageTruncate, kDs},
                  Pat{EventKind::kRestartDelta, kDs},
                  Pat{EventKind::kPageRollback, kDs},
              }));
  ASSERT_GE(r.page_events.size(), 6u);
  EXPECT_TRUE(trace_test::check_golden("pages_rollback.trace", r.page_text));
}

// --- Determinism: the page tier preserves full-trace byte-identity ----------
TEST(TracePages, IdenticalFaultedScenarioProducesByteIdenticalFullTrace) {
  FiGuard guard;
  const TraceRun a = run_faulted(paged_cfg(/*pages_on=*/true));
  const TraceRun b = run_faulted(paged_cfg(/*pages_on=*/true));
  ASSERT_FALSE(a.full_text.empty());
  EXPECT_EQ(a.full_text, b.full_text);
}

// --- Flag off: no page events, so the eight existing goldens are safe -------
TEST(TracePages, TierOffEmitsNoPageEvents) {
  FiGuard guard;
  const TraceRun r = run_faulted(paged_cfg(/*pages_on=*/false));
  ASSERT_EQ(r.outcome, OsInstance::Outcome::kCompleted);
  EXPECT_TRUE(expect_absent(r.events, Pat{EventKind::kPageCapture}));
  EXPECT_TRUE(expect_absent(r.events, Pat{EventKind::kPageTruncate}));
  EXPECT_TRUE(expect_absent(r.events, Pat{EventKind::kPageRollback}));
  EXPECT_TRUE(expect_absent(r.events, Pat{EventKind::kRestartDelta}));
}

// --- Campaign determinism with the page tier enabled ------------------------
// The --jobs=N contract from test_campaign_parallel.cpp, re-pinned with
// epoch/page checkpointing (plus the blob and journal large-state knobs) on:
// every injection's trace at --jobs=4 is the exact bytes of the serial run.
TEST(TracePages, CampaignTracesByteIdenticalAcrossJobsWithPageTier) {
  FiGuard guard;
  std::vector<workload::Injection> plan = workload::plan_failstop(/*points_per_site=*/1);
  if (plan.size() > 6) {  // thin for runtime; coverage lives in the campaign suite
    const std::size_t stride = plan.size() / 6;
    std::vector<workload::Injection> thin;
    for (std::size_t i = 0; i < plan.size(); i += stride) thin.push_back(plan[i]);
    plan.swap(thin);
  }
  ASSERT_GE(plan.size(), 4u);

  std::vector<std::string> ref_traces;
  workload::CampaignOptions serial;
  serial.jobs = 1;
  serial.traces = &ref_traces;
  serial.ckpt_pages.enabled = true;
  serial.ds_blob_slots = 4;
  serial.vfs_journal_slots = 16;

  std::vector<std::string> par_traces;
  workload::CampaignOptions parallel = serial;
  parallel.jobs = 4;
  parallel.traces = &par_traces;

  const auto ref = workload::run_plan(seep::Policy::kEnhanced, plan, serial);
  const auto par = workload::run_plan(seep::Policy::kEnhanced, plan, parallel);

  ASSERT_EQ(ref_traces.size(), plan.size());
  ASSERT_EQ(par_traces.size(), plan.size());
  bool any_capture = false;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(ref[i], par[i]) << "injection " << i << " classified differently under --jobs=4";
    EXPECT_EQ(ref_traces[i], par_traces[i])
        << "injection " << i << " traced differently under --jobs=4";
    if (ref_traces[i].find("PageCapture") != std::string::npos) any_capture = true;
  }
  // The contract is only interesting if the tier actually logged: at least
  // one injection's suite traffic dirtied a page.
  EXPECT_TRUE(any_capture);
}
