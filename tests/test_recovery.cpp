// Unit tests: the recovery engine's three phases and four policies,
// exercised against a scripted Recoverable component.
#include <gtest/gtest.h>

#include "ckpt/cell.hpp"
#include "recovery/engine.hpp"
#include "servers/protocol.hpp"
#include "support/clock.hpp"

using namespace osiris;
using kernel::CrashAction;
using kernel::CrashContext;
using kernel::make_msg;

namespace {

struct FakeState {
  ckpt::Cell<int> value;
  ckpt::Cell<int> initialized;
};

/// Minimal recoverable component with a scripted state lifecycle.
class FakeComponent final : public recovery::Recoverable {
 public:
  FakeComponent(seep::Policy policy, kernel::Endpoint ep)
      : ep_(ep), ctx_(ckpt::Mode::kWindowOnly), window_(policy, ctx_) {
    reinitialize();
  }

  [[nodiscard]] std::string_view name() const override { return "fake"; }
  [[nodiscard]] kernel::Endpoint endpoint() const override { return ep_; }
  std::byte* data_section() override { return reinterpret_cast<std::byte*>(&state_); }
  [[nodiscard]] std::size_t data_section_size() const override { return sizeof(state_); }
  ckpt::Context& ckpt_context() override { return ctx_; }
  seep::Window& window() override { return window_; }
  void reinitialize() override {
    ckpt::Context::Scope scope(&ctx_);
    state_.value = 0;
    state_.initialized += 1;  // counts boot-style initializations
  }
  void on_restored(bool rolled_back) override {
    ++restored_calls;
    last_rolled_back = rolled_back;
  }
  [[nodiscard]] std::size_t recovery_arena_bytes() const override { return arena; }

  /// Simulate request processing: open the window and mutate state.
  void begin_request_and_mutate(int new_value) {
    ckpt::Context::Scope scope(&ctx_);
    window_.open();
    state_.value = new_value;
  }

  [[nodiscard]] int value() const { return state_.value; }
  [[nodiscard]] int initialized() const { return state_.initialized; }

  int restored_calls = 0;
  bool last_rolled_back = false;
  std::size_t arena = 0;

 private:
  kernel::Endpoint ep_;
  FakeState state_{};
  ckpt::Context ctx_;
  seep::Window window_;
};

CrashContext crash_ctx(kernel::Endpoint ep, std::uint32_t type = servers::PM_GETPID) {
  CrashContext ctx;
  ctx.crashed = ep;
  ctx.had_inflight = true;
  ctx.inflight = make_msg(type);
  ctx.inflight.sender = kernel::Endpoint{20};
  ctx.what = "test fault";
  return ctx;
}

struct EngineFixture : ::testing::Test {
  VirtualClock clock;
  kernel::Kernel kern{clock};
  seep::Classification classification = servers::build_classification();
};

}  // namespace

TEST_F(EngineFixture, WindowedCrashInOpenWindowRollsBackAndErrorReplies) {
  FakeComponent comp(seep::Policy::kEnhanced, kernel::kPmEp);
  recovery::Engine engine(kern, classification, seep::Policy::kEnhanced);
  engine.register_component(&comp);

  comp.begin_request_and_mutate(99);
  ASSERT_EQ(comp.value(), 99);
  const auto d = engine.on_crash(crash_ctx(kernel::kPmEp));
  EXPECT_EQ(d.action, CrashAction::kErrorReply);
  EXPECT_EQ(d.reply.sarg(0), kernel::E_CRASH);
  EXPECT_EQ(comp.value(), 0);  // rolled back to the checkpoint
  EXPECT_EQ(comp.restored_calls, 1);
  EXPECT_TRUE(comp.last_rolled_back);
  EXPECT_EQ(engine.stats().rollbacks, 1u);
  EXPECT_EQ(engine.stats().error_replies, 1u);
}

TEST_F(EngineFixture, WindowedCrashWithClosedWindowShutsDown) {
  FakeComponent comp(seep::Policy::kEnhanced, kernel::kPmEp);
  recovery::Engine engine(kern, classification, seep::Policy::kEnhanced);
  engine.register_component(&comp);

  comp.begin_request_and_mutate(7);
  comp.window().on_outbound(seep::SeepClass::kStateModifying);  // window closes
  const auto d = engine.on_crash(crash_ctx(kernel::kPmEp));
  EXPECT_EQ(d.action, CrashAction::kShutdown);
  EXPECT_EQ(comp.value(), 7);  // no rollback was possible
  EXPECT_EQ(engine.stats().shutdowns, 1u);
}

TEST_F(EngineFixture, WindowedCrashOnNonReplyableMessageShutsDown) {
  FakeComponent comp(seep::Policy::kEnhanced, kernel::kPmEp);
  recovery::Engine engine(kern, classification, seep::Policy::kEnhanced);
  engine.register_component(&comp);

  comp.begin_request_and_mutate(7);
  CrashContext ctx = crash_ctx(kernel::kPmEp, servers::PM_SIG_NOTIFY);  // not replyable
  EXPECT_EQ(engine.on_crash(ctx).action, CrashAction::kShutdown);
}

TEST_F(EngineFixture, StatelessRestartResetsStateAndNeverReplies) {
  FakeComponent comp(seep::Policy::kStateless, kernel::kPmEp);
  recovery::Engine engine(kern, classification, seep::Policy::kStateless);
  engine.register_component(&comp);

  comp.begin_request_and_mutate(55);
  const auto d = engine.on_crash(crash_ctx(kernel::kPmEp));
  EXPECT_EQ(d.action, CrashAction::kNoReply);  // microreboot: requester hangs
  EXPECT_EQ(comp.value(), 0);                  // boot image restored
  EXPECT_EQ(engine.stats().stateless_restarts, 1u);
}

TEST_F(EngineFixture, NaiveRestartKeepsStateButReinitializes) {
  FakeComponent comp(seep::Policy::kNaive, kernel::kPmEp);
  recovery::Engine engine(kern, classification, seep::Policy::kNaive);
  engine.register_component(&comp);

  const int boots_before = comp.initialized();
  comp.begin_request_and_mutate(31);
  const auto d = engine.on_crash(crash_ctx(kernel::kPmEp));
  EXPECT_EQ(d.action, CrashAction::kErrorReply);
  // "No special handling": boot-time init ran again over the stale state...
  EXPECT_EQ(comp.initialized(), boots_before + 1);
  // ...and reset value (init overwrites it) — but without the windowed
  // pipeline's consistency guarantees (no rollback happened).
  EXPECT_EQ(engine.stats().rollbacks, 0u);
  EXPECT_EQ(engine.stats().naive_restarts, 1u);
}

TEST_F(EngineFixture, CrashStormQuarantinesInsteadOfGivingUp) {
  // Pre-ladder, exhausting the recovery budget returned kGiveUp and wedged
  // the machine. Now the budget forces the quarantine rung: the component is
  // parked and error-virtualized, the system stays up.
  FakeComponent comp(seep::Policy::kEnhanced, kernel::kPmEp);
  recovery::Engine engine(kern, classification, seep::Policy::kEnhanced,
                          /*max_recoveries_per_component=*/3);
  engine.register_component(&comp);
  for (int i = 0; i < 6; ++i) {
    comp.begin_request_and_mutate(i);
    const auto d = engine.on_crash(crash_ctx(kernel::kPmEp));
    EXPECT_NE(d.action, CrashAction::kGiveUp) << "crash " << i;
    EXPECT_NE(d.action, CrashAction::kShutdown) << "crash " << i;
  }
  EXPECT_EQ(engine.stats().giveups, 0u);
  EXPECT_GE(engine.stats().budget_quarantines, 1u);
  // No server object is registered on this bare kernel, so the quarantine
  // flag lives in the engine only; the kernel-side rejection is covered by
  // the integration tests.
  EXPECT_TRUE(engine.is_parked(kernel::kPmEp));
  EXPECT_EQ(engine.rung_of(kernel::kPmEp), 2u);
}

TEST_F(EngineFixture, SpacedTransientCrashesStayOnPolicyRung) {
  FakeComponent comp(seep::Policy::kEnhanced, kernel::kPmEp);
  recovery::Engine engine(kern, classification, seep::Policy::kEnhanced);
  engine.register_component(&comp);
  for (int i = 0; i < 5; ++i) {
    comp.begin_request_and_mutate(i + 1);
    EXPECT_EQ(engine.on_crash(crash_ctx(kernel::kPmEp)).action, CrashAction::kErrorReply);
    EXPECT_EQ(engine.rung_of(kernel::kPmEp), 0u);
    // Isolated faults, far apart in virtual time: always below the rate.
    clock.spin(engine.ladder().crash_window_ticks + 1);
  }
  EXPECT_EQ(engine.stats().transient_crashes, 5u);
  EXPECT_EQ(engine.stats().recurring_crashes, 0u);
  EXPECT_EQ(engine.stats().quarantines, 0u);
  EXPECT_FALSE(engine.is_parked(kernel::kPmEp));
}

TEST_F(EngineFixture, CrashBurstClimbsLadderToQuarantine) {
  FakeComponent comp(seep::Policy::kEnhanced, kernel::kPmEp);
  recovery::Engine engine(kern, classification, seep::Policy::kEnhanced);
  engine.register_component(&comp);

  // Same-tick burst: crashes 1-2 are transient, crash 3 trips the rate.
  for (int i = 0; i < 2; ++i) {
    comp.begin_request_and_mutate(i + 1);
    engine.on_crash(crash_ctx(kernel::kPmEp));
    EXPECT_EQ(engine.rung_of(kernel::kPmEp), 0u);
  }
  comp.begin_request_and_mutate(41);
  engine.on_crash(crash_ctx(kernel::kPmEp));  // rung 1, attempt 1
  EXPECT_EQ(engine.rung_of(kernel::kPmEp), 1u);
  EXPECT_TRUE(engine.is_parked(kernel::kPmEp));
  EXPECT_EQ(comp.value(), 0);  // rung 1 is a microreboot: boot image restored

  comp.begin_request_and_mutate(42);
  engine.on_crash(crash_ctx(kernel::kPmEp));  // rung 1, attempt 2
  EXPECT_EQ(engine.rung_of(kernel::kPmEp), 1u);

  comp.begin_request_and_mutate(43);
  engine.on_crash(crash_ctx(kernel::kPmEp));  // attempts exhausted: rung 2
  EXPECT_EQ(engine.rung_of(kernel::kPmEp), 2u);
  EXPECT_TRUE(engine.is_parked(kernel::kPmEp));
  EXPECT_EQ(comp.value(), 0);

  EXPECT_EQ(engine.stats().transient_crashes, 2u);
  EXPECT_EQ(engine.stats().recurring_crashes, 3u);
  EXPECT_EQ(engine.stats().ladder_stateless, 2u);
  EXPECT_EQ(engine.stats().quarantines, 1u);
  EXPECT_EQ(engine.stats().budget_quarantines, 0u);  // rate-driven, not budget
}

TEST_F(EngineFixture, ReadmitLiftsParkOnceAndIsIdempotent) {
  FakeComponent comp(seep::Policy::kEnhanced, kernel::kPmEp);
  recovery::Engine engine(kern, classification, seep::Policy::kEnhanced);
  engine.register_component(&comp);
  for (int i = 0; i < 3; ++i) {
    comp.begin_request_and_mutate(i + 1);
    engine.on_crash(crash_ctx(kernel::kPmEp));
  }
  ASSERT_TRUE(engine.is_parked(kernel::kPmEp));

  engine.readmit(kernel::kPmEp);
  EXPECT_FALSE(engine.is_parked(kernel::kPmEp));
  EXPECT_FALSE(kern.is_quarantined(kernel::kPmEp));
  EXPECT_EQ(engine.stats().readmissions, 1u);
  engine.readmit(kernel::kPmEp);  // no-op: not parked
  EXPECT_EQ(engine.stats().readmissions, 1u);
}

TEST_F(EngineFixture, ParkWithoutRsIsReadmittedByClockFallback) {
  // No RS server registered on this kernel: the engine must arm the
  // readmission timer itself, or the quarantine would be permanent.
  FakeComponent comp(seep::Policy::kEnhanced, kernel::kPmEp);
  recovery::Engine engine(kern, classification, seep::Policy::kEnhanced);
  engine.register_component(&comp);
  for (int i = 0; i < 3; ++i) {
    comp.begin_request_and_mutate(i + 1);
    engine.on_crash(crash_ctx(kernel::kPmEp));
  }
  ASSERT_TRUE(engine.is_parked(kernel::kPmEp));
  ASSERT_TRUE(clock.has_pending());
  while (engine.is_parked(kernel::kPmEp) && clock.advance_to_next()) {
  }
  EXPECT_FALSE(engine.is_parked(kernel::kPmEp));
  EXPECT_FALSE(kern.is_quarantined(kernel::kPmEp));
  EXPECT_EQ(engine.stats().readmissions, 1u);
}

TEST_F(EngineFixture, ProbationKeepsPostReadmitCrashesRecurring) {
  // Long parks must not launder a crash loop back into "transient": a tiny
  // rate window with a backoff longer than it would otherwise forget the
  // pre-park burst entirely.
  recovery::LadderConfig ladder;
  ladder.crash_window_ticks = 10;
  ladder.backoff_base_ticks = 100;
  FakeComponent comp(seep::Policy::kEnhanced, kernel::kPmEp);
  recovery::Engine engine(kern, classification, seep::Policy::kEnhanced,
                          /*max_recoveries_per_component=*/32, ladder);
  engine.register_component(&comp);
  for (int i = 0; i < 3; ++i) {
    comp.begin_request_and_mutate(i + 1);
    engine.on_crash(crash_ctx(kernel::kPmEp));
  }
  ASSERT_EQ(engine.rung_of(kernel::kPmEp), 1u);
  const auto recurring_before = engine.stats().recurring_crashes;

  // Serve the cooldown, readmit, and crash again: the burst has slid out of
  // the 10-tick rate window, but probation still classifies it as recurring.
  clock.spin(100);
  engine.readmit(kernel::kPmEp);
  comp.begin_request_and_mutate(9);
  engine.on_crash(crash_ctx(kernel::kPmEp));
  EXPECT_EQ(engine.stats().recurring_crashes, recurring_before + 1);
  EXPECT_EQ(engine.rung_of(kernel::kPmEp), 1u);  // second rung-1 attempt
  EXPECT_TRUE(engine.is_parked(kernel::kPmEp));
}

TEST_F(EngineFixture, QuarantineOfOneComponentDoesNotStallAnother) {
  // Satellite regression: giving up on (now: quarantining) one component
  // must leave every other component's recovery accounting untouched.
  FakeComponent pm(seep::Policy::kEnhanced, kernel::kPmEp);
  FakeComponent vm(seep::Policy::kEnhanced, kernel::kVmEp);
  recovery::Engine engine(kern, classification, seep::Policy::kEnhanced,
                          /*max_recoveries_per_component=*/2);
  engine.register_component(&pm);
  engine.register_component(&vm);

  for (int i = 0; i < 4; ++i) {
    pm.begin_request_and_mutate(i + 1);
    engine.on_crash(crash_ctx(kernel::kPmEp));
  }
  ASSERT_TRUE(engine.is_parked(kernel::kPmEp));
  ASSERT_GE(engine.stats().budget_quarantines, 1u);

  // VM crashes once while PM is quarantined: full policy-preferred recovery.
  vm.begin_request_and_mutate(7);
  const auto d = engine.on_crash(crash_ctx(kernel::kVmEp, servers::VM_MMAP));
  EXPECT_EQ(d.action, CrashAction::kErrorReply);
  EXPECT_EQ(vm.value(), 0);  // rolled back
  EXPECT_EQ(engine.recoveries_of(kernel::kVmEp), 1u);
  EXPECT_EQ(engine.recoveries_of(kernel::kPmEp), 4u);  // independent counters
  EXPECT_FALSE(engine.is_parked(kernel::kVmEp));
  EXPECT_FALSE(kern.is_quarantined(kernel::kVmEp));
}

TEST_F(EngineFixture, UnregisteredComponentIsUnrecoverable) {
  recovery::Engine engine(kern, classification, seep::Policy::kEnhanced);
  EXPECT_EQ(engine.on_crash(crash_ctx(kernel::kVmEp)).action, CrashAction::kGiveUp);
}

TEST_F(EngineFixture, ClonePreallocationIncludesArena) {
  FakeComponent comp(seep::Policy::kEnhanced, kernel::kPmEp);
  comp.arena = 4096;
  recovery::Engine engine(kern, classification, seep::Policy::kEnhanced);
  engine.register_component(&comp);
  EXPECT_EQ(engine.clone_bytes(kernel::kPmEp), sizeof(FakeState) + 4096);
  EXPECT_EQ(engine.clone_bytes(kernel::kVmEp), 0u);
}

TEST_F(EngineFixture, RecoveryCountsPerComponent) {
  FakeComponent comp(seep::Policy::kEnhanced, kernel::kPmEp);
  recovery::Engine engine(kern, classification, seep::Policy::kEnhanced);
  engine.register_component(&comp);
  EXPECT_EQ(engine.recoveries_of(kernel::kPmEp), 0u);
  comp.begin_request_and_mutate(1);
  engine.on_crash(crash_ctx(kernel::kPmEp));
  EXPECT_EQ(engine.recoveries_of(kernel::kPmEp), 1u);
}
