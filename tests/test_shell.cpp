// Tests for the shell: parsing, builtins, pipelines, redirection, external
// commands, and E_CRASH resilience.
#include <gtest/gtest.h>

#include <cstring>

#include "fi/registry.hpp"
#include "os/instance.hpp"
#include "os/shell.hpp"
#include "workload/suite.hpp"

using namespace osiris;
using os::ISys;
using os::run_shell_script;
using os::ShellResult;

namespace {

ShellResult run_script(std::string_view script) {
  fi::Registry::instance().disarm();
  os::OsConfig cfg;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  os::register_shell_programs(inst.programs());
  inst.boot();
  ShellResult result;
  const auto outcome = inst.run([&result, script](ISys& sys) {
    result = run_shell_script(sys, script);
  });
  EXPECT_EQ(outcome, os::OsInstance::Outcome::kCompleted);
  return result;
}

}  // namespace

TEST(Shell, EchoAndSequencing) {
  const auto r = run_script("echo hello world ; echo second");
  EXPECT_EQ(r.commands_run, 2);
  EXPECT_EQ(r.failures, 0);
  EXPECT_NE(r.transcript.find("hello world"), std::string::npos);
  EXPECT_NE(r.transcript.find("second"), std::string::npos);
}

TEST(Shell, RedirectAndCat) {
  const auto r = run_script("echo file content > /tmp/out\ncat /tmp/out");
  EXPECT_EQ(r.failures, 0);
  EXPECT_NE(r.transcript.find("file content"), std::string::npos);
}

TEST(Shell, PipelineTransforms) {
  const auto r = run_script("echo abc | upper | wc");
  EXPECT_EQ(r.failures, 0);
  // "ABC\n" -> 1 line, 4 bytes.
  EXPECT_NE(r.transcript.find("1 4"), std::string::npos);
}

TEST(Shell, FileManagementBuiltins) {
  const auto r = run_script(
      "mkdir /tmp/shtest\n"
      "touch /tmp/shtest/a\n"
      "mv /tmp/shtest/a b\n"
      "stat /tmp/shtest/b\n"
      "ls /tmp/shtest\n"
      "rm /tmp/shtest/b\n"
      "rmdir /tmp/shtest");
  EXPECT_EQ(r.failures, 0);
  EXPECT_NE(r.transcript.find("size=0"), std::string::npos);
  EXPECT_NE(r.transcript.find("b\n"), std::string::npos);
}

TEST(Shell, DataStoreBuiltins) {
  const auto r = run_script("publish sh.key 41\nretrieve sh.key");
  EXPECT_EQ(r.failures, 0);
  EXPECT_NE(r.transcript.find("41"), std::string::npos);
}

TEST(Shell, ExternalCommandsAndStatus) {
  const auto r = run_script("true\nsleepy\nfail7\nno-such-binary");
  EXPECT_EQ(r.commands_run, 4);
  EXPECT_EQ(r.failures, 2);  // fail7 exits 7; no-such-binary is E_NOENT
}

TEST(Shell, CommentsAndBlankLines) {
  const auto r = run_script("# just a comment\n\n   \necho visible # trailing\n");
  EXPECT_EQ(r.commands_run, 1);
  EXPECT_NE(r.transcript.find("visible"), std::string::npos);
}

TEST(Shell, MonitoringBuiltins) {
  const auto r = run_script("ps\nmeminfo\ncrashinfo");
  EXPECT_EQ(r.failures, 0);
  EXPECT_NE(r.transcript.find("pid 1"), std::string::npos);
  EXPECT_NE(r.transcript.find("pages free"), std::string::npos);
  EXPECT_NE(r.transcript.find("0 restarts"), std::string::npos);
}

TEST(Shell, SurvivesComponentRecovery) {
  // Profile a DS-heavy script, then rerun with a fail-stop fault planted in
  // DS: the shell reports the E_CRASH and finishes the script.
  fi::Registry::instance().disarm();
  fi::Registry::instance().reset_counts();
  const char* script =
      "publish crash.a 1\npublish crash.b 2\npublish crash.c 3\n"
      "publish crash.d 4\nretrieve crash.b\necho done";
  (void)run_script(script);
  fi::Site* site = nullptr;
  for (fi::Site* s : fi::Registry::instance().sites()) {
    if (std::strcmp(s->tag, "ds") == 0 && (site == nullptr || s->hits() > site->hits())) site = s;
  }
  ASSERT_NE(site, nullptr);
  const std::uint64_t trigger = site->hits() / 2;
  fi::Registry::instance().reset_counts();

  os::OsConfig cfg;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  os::register_shell_programs(inst.programs());
  inst.boot();
  fi::Registry::instance().arm(site, fi::FaultType::kNullDeref, trigger);
  ShellResult result;
  const auto outcome = inst.run([&result, script](ISys& sys) {
    result = run_shell_script(sys, script);
  });
  fi::Registry::instance().disarm();

  ASSERT_EQ(outcome, os::OsInstance::Outcome::kCompleted);
  EXPECT_EQ(result.commands_run, 6);
  EXPECT_NE(result.transcript.find("done"), std::string::npos);  // script finished
  if (inst.engine().recoveries_of(kernel::kDsEp) > 0) {
    EXPECT_GE(result.crash_errors + result.failures, 1);
  }
}
