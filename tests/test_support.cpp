// Unit tests: support substrate (rng, fixed strings, virtual clock, stats,
// table printer).
#include <gtest/gtest.h>

#include <cmath>

#include "support/clock.hpp"
#include "support/fixed_string.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table_printer.hpp"

using namespace osiris;

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo && saw_hi);
}

TEST(Rng, ForkIsIndependent) {
  Rng a(11);
  Rng child = a.fork();
  EXPECT_NE(a.next(), child.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(FixedString, BasicAssignAndCompare) {
  FixedString<16> s;
  EXPECT_TRUE(s.empty());
  s.assign("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.view(), "hello");
  EXPECT_TRUE(s == "hello");
  EXPECT_STREQ(s.c_str(), "hello");
}

TEST(FixedString, TruncatesAtCapacity) {
  FixedString<8> s;  // capacity 7 + NUL
  s.assign("0123456789");
  EXPECT_EQ(s.size(), 7u);
  EXPECT_EQ(s.view(), "0123456");
}

TEST(FixedString, TriviallyCopyable) {
  static_assert(std::is_trivially_copyable_v<FixedString<32>>);
  FixedString<32> a("abc");
  FixedString<32> b = a;
  EXPECT_EQ(b.view(), "abc");
}

TEST(VirtualClock, CallbacksFireInDeadlineOrder) {
  VirtualClock clock;
  std::vector<int> order;
  clock.call_at(30, [&] { order.push_back(3); });
  clock.call_at(10, [&] { order.push_back(1); });
  clock.call_at(20, [&] { order.push_back(2); });
  while (clock.advance_to_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now(), 30u);
}

TEST(VirtualClock, CallAfterIsRelative) {
  VirtualClock clock;
  clock.spin(100);
  bool fired = false;
  clock.call_after(5, [&] { fired = true; });
  EXPECT_TRUE(clock.advance_to_next());
  EXPECT_TRUE(fired);
  EXPECT_EQ(clock.now(), 105u);
}

TEST(VirtualClock, CallbackCanReschedule) {
  VirtualClock clock;
  int fires = 0;
  std::function<void()> tick = [&] {
    if (++fires < 3) clock.call_after(10, tick);
  };
  clock.call_after(10, tick);
  while (clock.advance_to_next()) {
  }
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(clock.now(), 30u);
}

TEST(VirtualClock, SpinSkipsWithoutRunning) {
  VirtualClock clock;
  bool fired = false;
  clock.call_at(5, [&] { fired = true; });
  clock.spin(10);
  EXPECT_FALSE(fired);  // spin does not run callbacks
  clock.run_due();
  EXPECT_TRUE(fired);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(stats::median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(stats::median({4, 1, 3, 2}), 2.5);
}

TEST(Stats, GeomeanOfRatios) {
  EXPECT_NEAR(stats::geomean({1.0, 4.0}), 2.0, 1e-9);
  EXPECT_NEAR(stats::geomean({2.0, 2.0, 2.0}), 2.0, 1e-9);
}

TEST(Stats, StddevZeroForConstant) {
  EXPECT_DOUBLE_EQ(stats::stddev({5, 5, 5}), 0.0);
  EXPECT_NEAR(stats::stddev({1, 3}), std::sqrt(2.0), 1e-9);
}

TEST(Stats, MinMax) {
  EXPECT_DOUBLE_EQ(stats::min({3, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(stats::max({3, 1, 2}), 3.0);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"A", "Longer"});
  t.add_row({"xxxx", "y"});
  const std::string out = t.str();
  EXPECT_NE(out.find("| A    | Longer |"), std::string::npos);
  EXPECT_NE(out.find("| xxxx | y      |"), std::string::npos);
}

TEST(TablePrinter, PercentFormatting) {
  EXPECT_EQ(TablePrinter::pct(0.684), "68.4%");
  EXPECT_EQ(TablePrinter::fmt(1.2345, 2), "1.23");
}
