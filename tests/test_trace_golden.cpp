// Golden-trace tests: one per escalation-ladder rung, plus trace determinism.
//
// Each test drives a fault scenario through the full OS stack with tracing
// enabled, filters the merged timeline down to the recovery landmarks
// (window / fault / crash / ladder events), and then asserts twice:
//   1. subsequence patterns — the semantic contract, robust to added
//      instrumentation elsewhere;
//   2. a byte-exact golden file under tests/golden/ — the regression tripwire
//      that catches any reordering or silent loss of recovery steps.
// After an *intentional* change to instrumentation or recovery sequencing,
// regenerate with: OSIRIS_REGOLDEN=1 ./osiris_trace_tests && git diff
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "fi/registry.hpp"
#include "os/instance.hpp"
#include "trace_matcher.hpp"
#include "workload/suite.hpp"

using namespace osiris;
using os::ISys;
using os::OsInstance;
using trace::EventKind;
using trace_test::expect_absent;
using trace_test::expect_subsequence;
using trace_test::Pat;

namespace {

const std::int32_t kPm = kernel::kPmEp.value;
const std::int32_t kDs = kernel::kDsEp.value;

struct FiGuard {
  FiGuard() {
    fi::Registry::instance().disarm();
    fi::Registry::instance().reset_counts();
  }
  ~FiGuard() { fi::Registry::instance().disarm(); }
};

fi::Site* busiest_site(const char* tag, const ISys::ProcBody& body) {
  fi::Registry::instance().disarm();
  fi::Registry::instance().reset_counts();
  os::OsConfig cfg;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  inst.run(body);
  fi::Site* best = nullptr;
  for (fi::Site* s : fi::Registry::instance().sites()) {
    if (std::strcmp(s->tag, tag) == 0 && (best == nullptr || s->hits() > best->hits())) best = s;
  }
  return best;
}

struct TraceRun {
  OsInstance::Outcome outcome = OsInstance::Outcome::kCompleted;
  std::vector<trace::Event> events;    // full merged timeline
  std::vector<trace::Event> landmarks; // recovery landmarks only
  std::string landmarks_text;          // unsequenced text of the landmarks
  std::string full_text;               // sequenced text of everything
  std::string ipc_text;                // unsequenced text of the IPC events
};

/// Boot a traced instance (after `tweak`), arm via `arm`, run `body`.
TraceRun run_traced(const std::function<void(os::OsConfig&)>& tweak,
                    const std::function<void(fi::Registry&)>& arm, ISys::ProcBody body) {
  fi::Registry::instance().reset_counts();
  os::OsConfig cfg;
  cfg.trace_enabled = true;
  // Golden comparisons need full retention: no landmark may fall out of a
  // wrapped ring, so these runs use far more than the cache-sized default.
  cfg.trace_ring_capacity = 1u << 16;
  if (tweak) tweak(cfg);
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  if (arm) arm(fi::Registry::instance());

  TraceRun r;
  r.outcome = inst.run(std::move(body));
  fi::Registry::instance().disarm();

  const trace::Tracer& tracer = *inst.tracer();
  r.events = tracer.merged();
  r.landmarks = trace_test::recovery_landmarks(r.events);
  r.landmarks_text = trace::format_text_unsequenced(r.landmarks, tracer);
  r.full_text = trace::format_text(r.events, tracer);
  const auto ipc = trace_test::filter_events(
      r.events, {EventKind::kIpcSend, EventKind::kIpcNotify, EventKind::kIpcCall,
                 EventKind::kIpcDeliver});
  r.ipc_text = trace::format_text_unsequenced(ipc, tracer);
  return r;
}

}  // namespace

// --- Rung 0a: transient crash under the stateless policy -> plain microreboot
TEST(TraceGolden, TransientStatelessRestart) {
  FiGuard guard;
  const auto profile = [](ISys& sys) {
    for (int i = 0; i < 30; ++i) sys.ds_publish("g.key", 1);
  };
  fi::Site* site = busiest_site("ds", profile);
  ASSERT_NE(site, nullptr);

  const TraceRun r = run_traced(
      [](os::OsConfig& cfg) { cfg.policy = seep::Policy::kStateless; },
      [&](fi::Registry& reg) { reg.arm(site, fi::FaultType::kNullDeref, 2); },
      [](ISys& sys) {
        for (int i = 0; i < 20; ++i) sys.ds_publish("g.key", static_cast<std::uint64_t>(i));
      });

  EXPECT_TRUE(expect_subsequence(r.landmarks, {
                  Pat{EventKind::kFaultFire, kDs},
                  Pat{EventKind::kCrash, kDs, 0, 0},  // not a hang, not recurring
                  Pat{EventKind::kRecoveryStateless, kDs}.with_a0(0).with_a1(0),  // rung 0
                  Pat{EventKind::kRecoveryRestart, kDs},
              }));
  // The stateless policy never uses windows, and rung 0 never quarantines.
  EXPECT_TRUE(expect_absent(r.landmarks, Pat{EventKind::kWindowOpen}));
  EXPECT_TRUE(expect_absent(r.landmarks, Pat{EventKind::kRecoveryQuarantine}));
  EXPECT_TRUE(trace_test::check_golden("transient_stateless.trace", r.landmarks_text));
}

// --- Rung 0b: transient in-window crash under enhanced -> restart + rollback
TEST(TraceGolden, TransientRollbackAndErrorVirtualization) {
  FiGuard guard;
  const auto profile = [](ISys& sys) {
    for (int i = 0; i < 30; ++i) sys.getpid();
  };
  fi::Site* site = busiest_site("pm", profile);
  ASSERT_NE(site, nullptr);

  const TraceRun r = run_traced(
      nullptr, [&](fi::Registry& reg) { reg.arm(site, fi::FaultType::kNullDeref, 15); },
      [](ISys& sys) {
        for (int i = 0; i < 30; ++i) sys.setuid(0);
      });

  EXPECT_EQ(r.outcome, OsInstance::Outcome::kCompleted);
  EXPECT_TRUE(expect_subsequence(r.landmarks, {
                  Pat{EventKind::kWindowOpen, kPm},
                  Pat{EventKind::kFaultFire, kPm},
                  Pat{EventKind::kCrash, kPm, 0, 0},
                  Pat{EventKind::kRecoveryRestart, kPm},   // phase 1: clone transfer
                  Pat{EventKind::kRecoveryRollback, kPm},  // phase 2: undo-log replay
              }));
  // The window was still open at the crash (that is what made the rollback
  // consistent); recovery closes it via the end-of-request path.
  EXPECT_TRUE(trace_test::expect_window_closed_by(r.events, kPm,
                                                  trace::CloseCause::kEndOfRequest));
  EXPECT_TRUE(expect_absent(r.landmarks, Pat{EventKind::kRecoveryQuarantine}));
  EXPECT_TRUE(trace_test::check_golden("transient_rollback.trace", r.landmarks_text));
}

// --- Rung 1: recurring crashes -> stateless restart with exponential backoff
TEST(TraceGolden, LadderStatelessBackoffAndReadmit) {
  FiGuard guard;
  const auto profile = [](ISys& sys) {
    for (int i = 0; i < 30; ++i) sys.ds_publish("g.key", 1);
  };
  fi::Site* site = busiest_site("ds", profile);
  ASSERT_NE(site, nullptr);

  const TraceRun r = run_traced(
      [](os::OsConfig& cfg) {
        cfg.ladder.backoff_base_ticks = 50;
        cfg.ladder.quarantine_cooldown_ticks = 400;
      },
      [&](fi::Registry& reg) { reg.arm_persistent(site, fi::FaultType::kNullDeref, 2); },
      [](ISys& sys) {
        for (int i = 0; i < 120; ++i) sys.ds_publish("g.key", static_cast<std::uint64_t>(i));
      });

  EXPECT_EQ(r.outcome, OsInstance::Outcome::kCompleted);
  EXPECT_TRUE(expect_subsequence(r.landmarks, {
                  Pat{EventKind::kCrash, kDs}.with_a1(1),  // classified recurring
                  Pat{EventKind::kRecoveryStateless, kDs}.with_a0(50).with_a1(1),  // base park
                  Pat{EventKind::kRecoveryReadmit, kDs}.with_a0(1),   // back from rung 1
                  Pat{EventKind::kRecoveryStateless, kDs}.with_a0(100).with_a1(1),  // doubled
              }));
  EXPECT_TRUE(trace_test::check_golden("ladder_stateless_backoff.trace", r.landmarks_text));
}

// --- Rung 2: backoff exhausted -> quarantine, then readmission after cooldown
TEST(TraceGolden, LadderQuarantineParkAndReadmit) {
  FiGuard guard;
  const auto profile = [](ISys& sys) {
    for (int i = 0; i < 30; ++i) sys.ds_publish("g.key", 1);
  };
  fi::Site* site = busiest_site("ds", profile);
  ASSERT_NE(site, nullptr);

  const TraceRun r = run_traced(
      [](os::OsConfig& cfg) {
        cfg.ladder.backoff_base_ticks = 50;
        cfg.ladder.quarantine_cooldown_ticks = 400;  // short: readmission is observable
      },
      [&](fi::Registry& reg) { reg.arm_persistent(site, fi::FaultType::kNullDeref, 2); },
      [](ISys& sys) {
        for (int i = 0; i < 200; ++i) sys.ds_publish("g.key", static_cast<std::uint64_t>(i));
      });

  EXPECT_EQ(r.outcome, OsInstance::Outcome::kCompleted);
  EXPECT_TRUE(expect_subsequence(r.landmarks, {
                  Pat{EventKind::kRecoveryStateless, kDs}.with_a1(1),        // rung 1 first
                  Pat{EventKind::kRecoveryQuarantine, kDs}.with_a1(0),       // then rung 2
                  Pat{EventKind::kRecoveryReadmit, kDs}.with_a0(2),          // park ended
              }));
  EXPECT_TRUE(trace_test::check_golden("ladder_quarantine_readmit.trace", r.landmarks_text));
}

// --- Budget exhaustion: recovery budget drained -> straight to quarantine
TEST(TraceGolden, BudgetExhaustionSkipsStraightToQuarantine) {
  FiGuard guard;
  const auto profile = [](ISys& sys) {
    for (int i = 0; i < 30; ++i) sys.ds_publish("g.key", 1);
  };
  fi::Site* site = busiest_site("ds", profile);
  ASSERT_NE(site, nullptr);

  const TraceRun r = run_traced(
      [](os::OsConfig& cfg) {
        cfg.max_recoveries = 1;  // one free recovery, then the budget is gone
        cfg.ladder.quarantine_cooldown_ticks = 100000;  // parked to the end
      },
      [&](fi::Registry& reg) { reg.arm_persistent(site, fi::FaultType::kNullDeref, 2); },
      [](ISys& sys) {
        for (int i = 0; i < 60; ++i) sys.ds_publish("g.key", static_cast<std::uint64_t>(i));
      });

  EXPECT_EQ(r.outcome, OsInstance::Outcome::kCompleted);
  EXPECT_TRUE(expect_subsequence(r.landmarks, {
                  Pat{EventKind::kCrash, kDs},
                  Pat{EventKind::kRecoveryQuarantine, kDs}.with_a1(1),  // budget exhaustion
              }));
  // Over budget, the ladder must NOT spend time on rung-1 stateless parks.
  EXPECT_TRUE(expect_absent(r.landmarks, Pat{EventKind::kRecoveryStateless, kDs}.with_a1(1)));
  EXPECT_TRUE(expect_absent(r.landmarks, Pat{EventKind::kRecoveryReadmit, kDs}));
  EXPECT_TRUE(trace_test::check_golden("ladder_budget_quarantine.trace", r.landmarks_text));
}

// --- Storm rung: fever onset -> throttle -> escalation -> quarantine --------
// The liveness counterpart of the crash rungs: a handler-spin storm never
// crashes or hangs, so the only landmarks are the physiological ones — the
// kernel's FeverOnset, the ladder's RecoveryThrottle (carrying the detection
// latency), and the escalation to quarantine that disarms the storm fault.
TEST(TraceGolden, StormDetectionFeverThrottleQuarantine) {
  FiGuard guard;
  const auto profile = [](ISys& sys) {
    for (int i = 0; i < 30; ++i) sys.ds_publish("g.key", 1);
  };
  fi::Site* site = busiest_site("ds", profile);
  ASSERT_NE(site, nullptr);

  const TraceRun r = run_traced(
      [](os::OsConfig& cfg) { cfg.health.enabled = true; },
      [&](fi::Registry& reg) {
        reg.set_storm_plan(/*victim=*/-1, /*burst=*/4);
        reg.arm_persistent(site, fi::FaultType::kHandlerSpin, 10);
      },
      [](ISys& sys) {
        for (int i = 0; i < 200; ++i) sys.ds_publish("g.key", static_cast<std::uint64_t>(i));
      });

  EXPECT_TRUE(expect_subsequence(r.landmarks, {
                  Pat{EventKind::kFaultFire, kDs},
                  Pat{EventKind::kFeverOnset}.with_a0(static_cast<std::uint64_t>(kDs))
                      .with_a2(0),                          // onset, not escalation
                  Pat{EventKind::kRecoveryThrottle, kDs},   // rung 1.5: throttle
                  Pat{EventKind::kFeverOnset}.with_a0(static_cast<std::uint64_t>(kDs))
                      .with_a2(1),                          // still hot under throttle
                  Pat{EventKind::kRecoveryQuarantine, kDs}, // rung 2 + fault disarm
                  Pat{EventKind::kRecoveryRestart, kDs},    // reset to boot image
              }));
  // The storm is invisible to the crash/hang rungs: no crash landmark and no
  // stateless backoff park anywhere in the run.
  EXPECT_TRUE(expect_absent(r.landmarks, Pat{EventKind::kCrash}));
  EXPECT_TRUE(expect_absent(r.landmarks, Pat{EventKind::kRecoveryStateless}));
  EXPECT_TRUE(trace_test::check_golden("storm_detect.trace", r.landmarks_text));
}

// --- Zero false positives: the monitor must not perturb the crash goldens ---
// Re-run the rung-2 ladder scenario with health monitoring ON: the landmark
// stream must match the same golden byte-for-byte (no FeverOnset, no
// Throttle), proving legitimate crash-recovery churn never reads as a storm.
TEST(TraceGolden, HealthMonitorIsSilentThroughLadderScenario) {
  FiGuard guard;
  const auto profile = [](ISys& sys) {
    for (int i = 0; i < 30; ++i) sys.ds_publish("g.key", 1);
  };
  fi::Site* site = busiest_site("ds", profile);
  ASSERT_NE(site, nullptr);

  const TraceRun r = run_traced(
      [](os::OsConfig& cfg) {
        cfg.health.enabled = true;  // the only delta vs LadderQuarantineParkAndReadmit
        cfg.ladder.backoff_base_ticks = 50;
        cfg.ladder.quarantine_cooldown_ticks = 400;
      },
      [&](fi::Registry& reg) { reg.arm_persistent(site, fi::FaultType::kNullDeref, 2); },
      [](ISys& sys) {
        for (int i = 0; i < 200; ++i) sys.ds_publish("g.key", static_cast<std::uint64_t>(i));
      });

  EXPECT_EQ(r.outcome, OsInstance::Outcome::kCompleted);
  EXPECT_TRUE(expect_absent(r.landmarks, Pat{EventKind::kFeverOnset}));
  EXPECT_TRUE(expect_absent(r.landmarks, Pat{EventKind::kRecoveryThrottle}));
  EXPECT_TRUE(trace_test::check_golden("ladder_quarantine_readmit.trace", r.landmarks_text));
}

// --- Symbolic IPC golden: the spec-driven trace naming layer ----------------
// A fault-free run, filtered to the IPC events, pins the protocol by *name*
// (PM_FORK, VFS_OPEN, RS_PING+notify, ...) end to end: a renamed, renumbered
// or misrouted spec row surfaces as a golden diff here, and an unregistered
// type would render as bare hex.
TEST(TraceGolden, SymbolicIpcNamesInFaultFreeRun) {
  FiGuard guard;
  const TraceRun r = run_traced(nullptr, nullptr, [](ISys& sys) {
    const std::int64_t fd = sys.open("/tmp/gold", servers::O_CREAT | servers::O_RDWR);
    sys.write_str(fd, "x");
    sys.close(fd);
    (void)sys.getpid();
    sys.ds_publish("g.key", 7);
  });
  ASSERT_EQ(r.outcome, OsInstance::Outcome::kCompleted);
  ASSERT_FALSE(r.ipc_text.empty());

  // Every IPC event resolved through the spec registry: the trace text names
  // the messages symbolically and never falls back to a hex literal.
  EXPECT_NE(r.ipc_text.find("VFS_OPEN"), std::string::npos);
  EXPECT_NE(r.ipc_text.find("PM_GETPID"), std::string::npos);
  EXPECT_NE(r.ipc_text.find("DS_PUBLISH"), std::string::npos);
  EXPECT_EQ(r.ipc_text.find(" 0x"), std::string::npos);
  EXPECT_TRUE(trace_test::check_golden("ipc_symbolic.trace", r.ipc_text));
}

// --- Determinism: the full (sequenced) trace is byte-identical across runs
TEST(TraceGolden, IdenticalScenarioProducesByteIdenticalFullTrace) {
  FiGuard guard;
  const auto profile = [](ISys& sys) {
    for (int i = 0; i < 30; ++i) sys.getpid();
  };
  fi::Site* site = busiest_site("pm", profile);
  ASSERT_NE(site, nullptr);

  const auto scenario = [&] {
    return run_traced(
        nullptr, [&](fi::Registry& reg) { reg.arm(site, fi::FaultType::kNullDeref, 15); },
        [](ISys& sys) {
          for (int i = 0; i < 30; ++i) sys.setuid(0);
        });
  };
  const TraceRun a = scenario();
  const TraceRun b = scenario();
  ASSERT_FALSE(a.full_text.empty());
  EXPECT_EQ(a.full_text, b.full_text);
}
