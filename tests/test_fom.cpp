// FOM executor tests (DESIGN.md §16): the state-machine lifecycle, the
// per-request undo sub-log (mark/rollback_to), mid-flight checkpoint/rollback
// equivalence against the serial fiber path, and the recovery arcs with live
// FOMs (rollback, boot-image restart, quarantine).
//
// The interleaving harness at the bottom is the pin for the tentpole claim:
// any schedule of concurrent VFS requests — parks and resumes interleaving
// arbitrarily many requests mid-flight — must leave the filesystem in the
// state the serial reference schedule produces.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/undo_log.hpp"
#include "core/metrics.hpp"
#include "fi/registry.hpp"
#include "os/instance.hpp"
#include "servers/fom.hpp"
#include "workload/suite.hpp"

using namespace osiris;
using os::ISys;
using os::OsInstance;
using servers::FomCore;
using servers::FomState;

namespace {

struct FiGuard {
  FiGuard() {
    fi::Registry::instance().disarm();
    fi::Registry::instance().reset_counts();
  }
  ~FiGuard() { fi::Registry::instance().disarm(); }
};

kernel::Message req(std::uint32_t type) {
  kernel::Message m{};
  m.type = type;
  m.sender = kernel::Endpoint{77};
  return m;
}

/// Find the site of `tag` whose per-run hits are maximal after a profiling
/// run of `body` under `cfg` (FOM runs profile with the executor ON so the
/// probe sites seen match the faulted run).
fi::Site* busiest_site(const char* tag, const os::OsConfig& cfg, const ISys::ProcBody& body) {
  fi::Registry::instance().disarm();
  fi::Registry::instance().reset_counts();
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  inst.run(body);
  fi::Site* best = nullptr;
  for (fi::Site* s : fi::Registry::instance().sites()) {
    if (std::strcmp(s->tag, tag) == 0 && (best == nullptr || s->hits() > best->hits())) best = s;
  }
  return best;
}

std::int64_t write_all(ISys& sys, std::int64_t fd, const std::vector<std::byte>& data) {
  return sys.write(fd, std::span<const std::byte>(data.data(), data.size()));
}

/// Find the "vfs" probe sites executed on every *attempt* of every
/// worker-path operation (the top of run_fs_op, plus the executor's own
/// admission probe). Only an in-attempt site can fire inside a RESUMED
/// attempt — dispatch-entry probes run before fom_run and inline-op probes
/// never run under the executor at all. Identified by differential
/// profiling: hit by a stat, a read and a write alike, and not at all by
/// inline fd bookkeeping (lseek). Sites re-hit by a cold read's resumed
/// attempts sort first, so front() is the true per-attempt site and the
/// admission probe (one hit per request, resumes invisible) comes later.
std::vector<fi::Site*> attempt_sites(const os::OsConfig& cfg) {
  fi::Registry::instance().disarm();
  fi::Registry::instance().reset_counts();
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  std::vector<fi::Site*> sites;
  const auto snap = [&sites] {
    std::vector<std::uint64_t> v;
    v.reserve(sites.size());
    for (fi::Site* s : sites) v.push_back(s->hits());
    return v;
  };
  std::vector<std::uint64_t> base, after_lseek, after_stat, after_read, after_write;
  std::vector<std::uint64_t> cold_base, after_cold;
  inst.run([&](ISys& sys) {
    const std::vector<std::byte> data(1024, std::byte{9});
    std::vector<std::byte> sink(data.size());
    const std::int64_t fd = sys.open("/tmp/fom-cal", servers::O_CREAT | servers::O_RDWR);
    write_all(sys, fd, data);
    sys.lseek(fd, 0, 0);
    sys.read(fd, std::span<std::byte>(sink.data(), sink.size()));  // warm every block
    // Collect the candidate list only now: sites register on first
    // execution, so the worker-path probes exist only after the warm-up ops
    // above have actually run once in this process.
    for (fi::Site* s : fi::Registry::instance().sites()) {
      if (std::strcmp(s->tag, "vfs") == 0) sites.push_back(s);
    }
    base = snap();
    sys.lseek(fd, 0, 0);
    after_lseek = snap();
    os::StatResult st{};
    sys.stat("/tmp/fom-cal", &st);
    after_stat = snap();
    sys.read(fd, std::span<std::byte>(sink.data(), sink.size()));
    after_read = snap();
    sys.lseek(fd, 0, 0);
    write_all(sys, fd, data);
    after_write = snap();
    // Cold phase: evict everything, then re-read. Per-attempt sites collect
    // one hit per park/resume cycle here; per-request ones exactly one.
    const std::vector<std::byte> filler(32 * 1024, std::byte{0xAA});
    const std::int64_t sfd = sys.open("/tmp/fom-cal-scratch",
                                      servers::O_CREAT | servers::O_RDWR | servers::O_TRUNC);
    write_all(sys, sfd, filler);
    std::vector<std::byte> ssink(filler.size());
    sys.lseek(sfd, 0, 0);
    sys.read(sfd, std::span<std::byte>(ssink.data(), ssink.size()));
    sys.close(sfd);
    cold_base = snap();
    sys.lseek(fd, 0, 0);
    sys.read(fd, std::span<std::byte>(sink.data(), sink.size()));
    after_cold = snap();
    sys.close(fd);
  });
  std::vector<std::pair<std::uint64_t, fi::Site*>> matches;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (after_lseek[i] == base[i] && after_stat[i] > after_lseek[i] &&
        after_read[i] > after_stat[i] && after_write[i] > after_read[i]) {
      matches.emplace_back(after_cold[i] - cold_base[i], sites[i]);
    }
  }
  std::stable_sort(matches.begin(), matches.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<fi::Site*> out;
  out.reserve(matches.size());
  for (const auto& [hits, s] : matches) out.push_back(s);
  return out;
}

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>(static_cast<std::uint8_t>(seed + i * 7));
  }
  return v;
}

/// Write `path` full of `data`, then evict it from the block cache by
/// streaming a scratch file through the (small) cache.
void write_and_evict(ISys& sys, const std::string& path, const std::vector<std::byte>& data,
                     const std::string& scratch) {
  std::int64_t fd = sys.open(path, servers::O_CREAT | servers::O_RDWR | servers::O_TRUNC);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(write_all(sys, fd, data), static_cast<std::int64_t>(data.size()));
  ASSERT_EQ(sys.close(fd), kernel::OK);
  const std::vector<std::byte> filler = pattern(32 * 1024, 0xAA);
  fd = sys.open(scratch, servers::O_CREAT | servers::O_RDWR | servers::O_TRUNC);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(write_all(sys, fd, filler), static_cast<std::int64_t>(filler.size()));
  std::vector<std::byte> sink(filler.size());
  ASSERT_EQ(sys.lseek(fd, 0, 0), 0);
  ASSERT_EQ(sys.read(fd, std::span<std::byte>(sink.data(), sink.size())),
            static_cast<std::int64_t>(sink.size()));
  ASSERT_EQ(sys.close(fd), kernel::OK);
}

std::vector<std::byte> read_back(ISys& sys, const std::string& path, std::size_t n) {
  std::vector<std::byte> v(n);
  const std::int64_t fd = sys.open(path, servers::O_RDONLY);
  if (fd < 0) return {};
  std::size_t got = 0;
  while (got < n) {
    const std::int64_t r =
        sys.read(fd, std::span<std::byte>(v.data() + got, n - got));
    if (r <= 0) break;
    got += static_cast<std::size_t>(r);
  }
  sys.close(fd);
  v.resize(got);
  return v;
}

}  // namespace

// --- FomCore: the state machine in isolation --------------------------------

TEST(FomCore, LifecycleAdmitParkResumeFinish) {
  FomCore core;
  const std::uint64_t id = core.admit(req(10));
  EXPECT_EQ(id, 1u);
  EXPECT_EQ(core.in_flight(), 1u);
  EXPECT_EQ(core.get(id).state, FomState::kRunning);
  EXPECT_FALSE(core.get(id).resumed);

  core.park(id, /*now=*/100);
  EXPECT_EQ(core.get(id).state, FomState::kParked);
  EXPECT_EQ(core.get(id).retries, 1u);
  EXPECT_EQ(core.get(id).parked_at, 100u);

  core.resume(id, /*now=*/140);
  EXPECT_EQ(core.get(id).state, FomState::kRunning);
  EXPECT_TRUE(core.get(id).resumed);
  EXPECT_EQ(core.stats().wait_ticks_total, 40u);

  core.finish(id);
  EXPECT_EQ(core.in_flight(), 0u);
  EXPECT_FALSE(core.contains(id));
  EXPECT_EQ(core.stats().admitted, 1u);
  EXPECT_EQ(core.stats().parks, 1u);
  EXPECT_EQ(core.stats().resumes, 1u);
  EXPECT_EQ(core.stats().retries, 1u);
  EXPECT_EQ(core.stats().completed, 1u);
  EXPECT_EQ(core.stats().aborts, 0u);
}

TEST(FomCore, AbortDropsLiveRecord) {
  FomCore core;
  const std::uint64_t a = core.admit(req(1));
  const std::uint64_t b = core.admit(req(2));
  core.park(a, 10);
  core.abort(a);
  EXPECT_FALSE(core.contains(a));
  EXPECT_TRUE(core.contains(b));
  EXPECT_EQ(core.stats().aborts, 1u);
  EXPECT_EQ(core.stats().completed, 0u);
}

TEST(FomCore, HighWaterTracksConcurrentFoms) {
  FomCore core;
  const std::uint64_t a = core.admit(req(1));
  core.park(a, 0);
  const std::uint64_t b = core.admit(req(2));
  core.park(b, 0);
  const std::uint64_t c = core.admit(req(3));
  EXPECT_EQ(core.stats().in_flight_high_water, 3u);
  core.finish(c);
  core.resume(a, 5);
  core.finish(a);
  core.resume(b, 5);
  core.finish(b);
  EXPECT_EQ(core.in_flight(), 0u);
  EXPECT_EQ(core.stats().in_flight_high_water, 3u);
}

TEST(FomCore, LiveIterationIsAdmissionOrdered) {
  // Determinism rule: abort sweeps walk live FOMs in admission order, never
  // in pointer or hash order.
  FomCore core;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(core.admit(req(static_cast<std::uint32_t>(i))));
  std::vector<std::uint64_t> seen;
  for (const auto& [id, rec] : core.live()) seen.push_back(id);
  EXPECT_EQ(seen, ids);
}

// --- UndoLog: the per-request sub-log ---------------------------------------

TEST(UndoLog, RollbackToMarkRestoresSuffixOnly) {
  // The park-time sub-rollback: entries past the mark are undone (LIFO),
  // entries before it stay live for the full-log rollback to use later.
  ckpt::UndoLog log;
  std::uint64_t early = 1, late = 10;
  log.record(&early, sizeof early);
  early = 2;
  const ckpt::UndoLog::Mark m = log.mark();
  log.record(&late, sizeof late);
  late = 20;
  log.rollback_to(m);
  EXPECT_EQ(late, 10u);   // the attempt's store was undone...
  EXPECT_EQ(early, 2u);   // ...the pre-mark store was not
  EXPECT_EQ(log.entry_count(), 1u);
  EXPECT_EQ(log.stats().partial_rollbacks, 1u);
  log.rollback();
  EXPECT_EQ(early, 1u);   // the surviving prefix still rolls back fully
}

TEST(UndoLog, RollbackToMarkIsLifoWithinTheSuffix) {
  ckpt::UndoLog log;
  std::uint64_t v = 1;
  const ckpt::UndoLog::Mark m = log.mark();
  log.record(&v, sizeof v);
  v = 2;
  char buf[8];
  std::memset(buf, 'a', sizeof buf);
  log.record(buf, sizeof buf);
  std::memset(buf, 'b', sizeof buf);
  log.rollback_to(m);
  EXPECT_EQ(v, 1u);
  for (char c : buf) EXPECT_EQ(c, 'a');
  EXPECT_TRUE(log.empty());
}

TEST(UndoLog, RollbackToMarkResetsFirstWriteFilter) {
  // After a sub-rollback the same range must be re-capturable: the re-run
  // of a parked request writes the same cells again, and rollback needs the
  // NEW capture, not a stale duplicate-elision.
  ckpt::UndoLog log;
  std::uint64_t v = 1;
  const ckpt::UndoLog::Mark m = log.mark();
  log.record(&v, sizeof v);
  v = 2;
  log.rollback_to(m);
  EXPECT_EQ(v, 1u);
  log.record(&v, sizeof v);  // must not be elided as a duplicate
  v = 3;
  EXPECT_EQ(log.entry_count(), 1u);
  log.rollback();
  EXPECT_EQ(v, 1u);
}

TEST(UndoLog, RollbackToCurrentMarkIsNoop) {
  ckpt::UndoLog log;
  std::uint64_t v = 7;
  log.record(&v, sizeof v);
  v = 8;
  const ckpt::UndoLog::Mark m = log.mark();
  log.rollback_to(m);  // zero-request case: nothing past the mark
  EXPECT_EQ(v, 8u);
  EXPECT_EQ(log.entry_count(), 1u);
}

// --- executor end-to-end ----------------------------------------------------

TEST(FomExecutor, ColdCacheReadParksAndResumes) {
  FiGuard guard;
  os::OsConfig cfg;
  cfg.vfs_fom = true;
  cfg.cache_blocks = 4;  // far below the working set: reads must miss
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  const std::vector<std::byte> data = pattern(8 * 1024, 3);
  std::vector<std::byte> got;
  const auto outcome = inst.run([&](ISys& sys) {
    write_and_evict(sys, "/tmp/fom-a", data, "/tmp/fom-scratch");
    got = read_back(sys, "/tmp/fom-a", data.size());
  });
  EXPECT_EQ(outcome, OsInstance::Outcome::kCompleted);
  EXPECT_EQ(got, data);
  const servers::FomStats& fs = *inst.vfs().fom_stats();
  EXPECT_GT(fs.admitted, 0u);
  EXPECT_GT(fs.parks, 0u);         // cold reads suspended mid-flight...
  EXPECT_EQ(fs.resumes, fs.parks);  // ...and every park was resumed
  EXPECT_GT(fs.wait_ticks_total, 0u);
  EXPECT_EQ(fs.completed, fs.admitted);
  EXPECT_EQ(fs.aborts, 0u);
  EXPECT_EQ(inst.vfs().fom_core().in_flight(), 0u);
  // Window accounting matched the executor's: every park suspended a window.
  const seep::WindowStats& ws = inst.vfs().window().stats();
  EXPECT_EQ(ws.fom_parks, fs.parks);
  EXPECT_EQ(ws.fom_resumes, fs.resumes);
}

TEST(FomExecutor, SuiteMatchesFiberPath) {
  // The whole 89-program suite is the serial reference model: the executor
  // must pass exactly what the fiber path passes.
  FiGuard guard;
  workload::SuiteResult fiber{};
  {
    os::OsConfig cfg;
    os::OsInstance inst(cfg);
    workload::register_suite_programs(inst.programs());
    inst.boot();
    fiber = workload::run_suite(inst);
  }
  workload::SuiteResult fom{};
  os::OsConfig cfg;
  cfg.vfs_fom = true;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  fom = workload::run_suite(inst);
  EXPECT_EQ(fiber.failed, 0);
  EXPECT_EQ(fom.failed, 0);
  EXPECT_EQ(fom.passed, fiber.passed);
}

TEST(FomExecutor, ConcurrentColdReadsOverlapInFlight) {
  // The non-blocking claim itself: while one request waits on the disk, the
  // server keeps serving others — multiple requests live simultaneously.
  FiGuard guard;
  os::OsConfig cfg;
  cfg.vfs_fom = true;
  cfg.cache_blocks = 4;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  constexpr int kClients = 3;
  const std::size_t kBytes = 6 * 1024;
  const auto outcome = inst.run([&](ISys& sys) {
    for (int c = 0; c < kClients; ++c) {
      write_and_evict(sys, "/tmp/fom-c" + std::to_string(c),
                      pattern(kBytes, static_cast<std::uint8_t>(c)), "/tmp/fom-scratch");
    }
    std::vector<std::int64_t> pids;
    for (int c = 0; c < kClients; ++c) {
      const std::int64_t pid = sys.fork([c, kBytes](ISys& child) {
        const std::vector<std::byte> got =
            read_back(child, "/tmp/fom-c" + std::to_string(c), kBytes);
        child.exit(got == pattern(kBytes, static_cast<std::uint8_t>(c)) ? 0 : 1);
      });
      ASSERT_GT(pid, 0);
      pids.push_back(pid);
    }
    for (const std::int64_t pid : pids) {
      std::int64_t status = -1;
      ASSERT_EQ(sys.wait_pid(pid, &status), pid);
      EXPECT_EQ(status, 0) << "child data mismatch";
    }
  });
  EXPECT_EQ(outcome, OsInstance::Outcome::kCompleted);
  const servers::FomStats& fs = *inst.vfs().fom_stats();
  EXPECT_GT(fs.parks, 0u);
  EXPECT_GE(fs.in_flight_high_water, 2u);  // requests genuinely overlapped
  EXPECT_EQ(fs.completed, fs.admitted);
  EXPECT_EQ(fs.aborts, 0u);
}

TEST(FomExecutor, MetricsSurfaceExecutorCounters) {
  FiGuard guard;
  os::OsConfig cfg;
  cfg.vfs_fom = true;
  cfg.cache_blocks = 4;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  const std::vector<std::byte> data = pattern(8 * 1024, 9);
  inst.run([&](ISys& sys) {
    write_and_evict(sys, "/tmp/fom-m", data, "/tmp/fom-scratch");
    read_back(sys, "/tmp/fom-m", data.size());
  });
  const core::SystemMetrics m = core::collect_metrics(inst);
  const servers::FomStats& fs = *inst.vfs().fom_stats();
  bool found = false;
  for (const core::ComponentMetrics& c : m.components) {
    if (c.name != "vfs") continue;
    found = true;
    EXPECT_EQ(c.fom_admitted, fs.admitted);
    EXPECT_EQ(c.fom_parks, fs.parks);
    EXPECT_EQ(c.fom_resumes, fs.resumes);
    EXPECT_EQ(c.fom_in_flight_high_water, fs.in_flight_high_water);
  }
  EXPECT_TRUE(found);
  EXPECT_NE(m.report().find("fom[vfs]:"), std::string::npos);
}

// --- interleaving property harness ------------------------------------------
//
// N clients each run a deterministic script of writes and reads against a
// PRIVATE file (disjoint working sets), generated from a seeded RNG. Run the
// scripts (a) serially in one process — the reference schedule — and (b) as
// concurrent forked processes whose requests park and interleave mid-flight.
// Disjoint files mean every schedule must produce the reference contents.

namespace {

struct ScriptOp {
  enum Kind : std::uint8_t { kWrite, kRead, kStat } kind;
  std::uint32_t off;
  std::uint32_t len;
  std::uint8_t fill;
};

std::vector<ScriptOp> make_script(std::mt19937& rng, std::uint32_t file_bytes) {
  std::uniform_int_distribution<std::uint32_t> off_d(0, file_bytes - 1);
  std::uniform_int_distribution<std::uint32_t> len_d(1, 2048);
  std::uniform_int_distribution<int> kind_d(0, 2);
  std::vector<ScriptOp> ops;
  for (int i = 0; i < 12; ++i) {
    ScriptOp op{};
    op.kind = static_cast<ScriptOp::Kind>(kind_d(rng));
    op.off = off_d(rng);
    op.len = std::min(len_d(rng), file_bytes - op.off);
    op.fill = static_cast<std::uint8_t>(rng() & 0xFF);
    ops.push_back(op);
  }
  return ops;
}

void run_script(ISys& sys, const std::string& path, const std::vector<ScriptOp>& ops) {
  const std::int64_t fd = sys.open(path, servers::O_RDWR);
  if (fd < 0) {
    sys.exit(2);
  }
  for (const ScriptOp& op : ops) {
    if (sys.lseek(fd, op.off, 0) != op.off) sys.exit(3);
    if (op.kind == ScriptOp::kWrite) {
      const std::vector<std::byte> buf(op.len, static_cast<std::byte>(op.fill));
      if (sys.write(fd, std::span<const std::byte>(buf.data(), buf.size())) !=
          static_cast<std::int64_t>(op.len)) {
        sys.exit(4);
      }
    } else if (op.kind == ScriptOp::kRead) {
      std::vector<std::byte> buf(op.len);
      if (sys.read(fd, std::span<std::byte>(buf.data(), buf.size())) < 0) sys.exit(5);
    } else {
      os::StatResult st{};
      if (sys.fstat(fd, &st) != kernel::OK) sys.exit(6);
    }
  }
  sys.close(fd);
}

/// Final contents of every client file after running all scripts under `cfg`.
/// `concurrent` forks one process per client; otherwise one process runs the
/// scripts back to back (the serial reference schedule).
std::vector<std::vector<std::byte>> interleave_run(
    const os::OsConfig& cfg, const std::vector<std::vector<ScriptOp>>& scripts,
    std::uint32_t file_bytes, bool concurrent, servers::FomStats* stats_out = nullptr) {
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  std::vector<std::vector<std::byte>> contents(scripts.size());
  const auto outcome = inst.run([&](ISys& sys) {
    for (std::size_t c = 0; c < scripts.size(); ++c) {
      write_and_evict(sys, "/tmp/il" + std::to_string(c),
                      pattern(file_bytes, static_cast<std::uint8_t>(c * 31)),
                      "/tmp/il-scratch");
    }
    if (concurrent) {
      std::vector<std::int64_t> pids;
      for (std::size_t c = 0; c < scripts.size(); ++c) {
        const std::int64_t pid = sys.fork([c, &scripts](ISys& child) {
          run_script(child, "/tmp/il" + std::to_string(c), scripts[c]);
          child.exit(0);
        });
        if (pid <= 0) sys.exit(9);
        pids.push_back(pid);
      }
      for (const std::int64_t pid : pids) {
        std::int64_t status = -1;
        if (sys.wait_pid(pid, &status) != pid || status != 0) sys.exit(10);
      }
    } else {
      for (std::size_t c = 0; c < scripts.size(); ++c) {
        run_script(sys, "/tmp/il" + std::to_string(c), scripts[c]);
      }
    }
    for (std::size_t c = 0; c < scripts.size(); ++c) {
      contents[c] = read_back(sys, "/tmp/il" + std::to_string(c), file_bytes);
    }
  });
  EXPECT_EQ(outcome, OsInstance::Outcome::kCompleted);
  if (stats_out != nullptr) *stats_out = *inst.vfs().fom_stats();
  return contents;
}

}  // namespace

TEST(FomInterleaving, RandomSchedulesMatchSerialReference) {
  FiGuard guard;
  constexpr std::uint32_t kFileBytes = 6 * 1024;
  constexpr std::size_t kClients = 3;
  for (const std::uint32_t seed : {1u, 2u, 3u}) {
    std::mt19937 rng(seed);
    std::vector<std::vector<ScriptOp>> scripts;
    for (std::size_t c = 0; c < kClients; ++c) scripts.push_back(make_script(rng, kFileBytes));

    os::OsConfig serial_cfg;
    serial_cfg.cache_blocks = 4;
    const auto reference =
        interleave_run(serial_cfg, scripts, kFileBytes, /*concurrent=*/false);

    os::OsConfig fom_cfg = serial_cfg;
    fom_cfg.vfs_fom = true;
    servers::FomStats stats{};
    const auto interleaved =
        interleave_run(fom_cfg, scripts, kFileBytes, /*concurrent=*/true, &stats);

    EXPECT_EQ(interleaved, reference) << "seed " << seed;
    EXPECT_GT(stats.parks, 0u) << "seed " << seed << ": schedule never interleaved";
    EXPECT_EQ(stats.completed, stats.admitted) << "seed " << seed;

    // The fiber path run concurrently is a second reference: the executor
    // changes scheduling, never filesystem semantics.
    os::OsConfig fiber_cfg = serial_cfg;
    const auto fiber =
        interleave_run(fiber_cfg, scripts, kFileBytes, /*concurrent=*/true);
    EXPECT_EQ(fiber, reference) << "seed " << seed;
  }
}

// --- recovery with live FOMs ------------------------------------------------

TEST(FomRecovery, RollbackWithParkedFomsCompletesEveryRequest) {
  // A fail-stop fault while N requests are parked: rollback recovery restores
  // the checkpoint, the crashed request is error-virtualized, and — the
  // epoch-occupancy invariant made real — every parked FOM still completes
  // from its queued disk completion.
  FiGuard guard;
  os::OsConfig cfg;
  cfg.vfs_fom = true;
  cfg.cache_blocks = 4;
  constexpr int kClients = 3;
  const std::size_t kBytes = 6 * 1024;
  const auto workload = [&](ISys& sys) {
    for (int c = 0; c < kClients; ++c) {
      write_and_evict(sys, "/tmp/fr" + std::to_string(c),
                      pattern(kBytes, static_cast<std::uint8_t>(c + 1)), "/tmp/fr-scratch");
    }
    std::vector<std::int64_t> pids;
    for (int c = 0; c < kClients; ++c) {
      const std::int64_t pid = sys.fork([c, kBytes](ISys& child) {
        // Tolerate one E_CRASH (the error-virtualized request) and retry.
        for (int attempt = 0; attempt < 3; ++attempt) {
          const std::vector<std::byte> got =
              read_back(child, "/tmp/fr" + std::to_string(c), kBytes);
          if (got == pattern(kBytes, static_cast<std::uint8_t>(c + 1))) child.exit(0);
        }
        child.exit(1);
      });
      if (pid <= 0) sys.exit(9);
      pids.push_back(pid);
    }
    for (const std::int64_t pid : pids) {
      std::int64_t status = -1;
      if (sys.wait_pid(pid, &status) != pid || status != 0) sys.exit(10);
    }
  };
  fi::Site* site = busiest_site("vfs", cfg, workload);
  ASSERT_NE(site, nullptr);
  ASSERT_GT(site->hits(), 3u);
  const std::uint64_t mid_run = site->hits() / 2;

  fi::Registry::instance().reset_counts();
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  // Fire mid-run: by then the concurrent readers keep several FOMs in flight.
  fi::Registry::instance().arm(site, fi::FaultType::kNullDeref, mid_run);
  const auto outcome = inst.run(workload);
  if (outcome != OsInstance::Outcome::kCompleted) {
    // The chosen site can land outside the window (post-mutation); that arm
    // is covered by OutOfWindowCrashShutsDownConsistently. Here we only
    // accept the controlled form.
    EXPECT_EQ(outcome, OsInstance::Outcome::kShutdown);
    return;
  }
  EXPECT_EQ(inst.engine().recoveries_of(kernel::kVfsEp), 1u);
  EXPECT_EQ(inst.engine().stats().rollbacks, 1u);
  const servers::FomStats& fs = *inst.vfs().fom_stats();
  // The crashed request was dropped (≤1 abort); everything else completed.
  EXPECT_LE(fs.aborts, 1u);
  EXPECT_EQ(fs.completed + fs.aborts, fs.admitted);
  EXPECT_EQ(inst.vfs().fom_core().in_flight(), 0u);
}

TEST(FomRecovery, ResumedAttemptCrashIsReconciledByExecutor) {
  // A crash during a RESUMED attempt arrives via the disk-completion notify,
  // which the engine cannot answer — without the executor's self-
  // reconciliation this arc was a controlled shutdown. Now the executor
  // sends E_CRASH to the parked request's real requester and the system
  // keeps running.
  //
  // Aiming the fault: arm *mid-run* (the body shares the registry's thread)
  // just before a guaranteed-cold read, two hits past the live counter of an
  // in-attempt site. Hit +1 is the read's initial attempt — it parks on the
  // miss — and hit +2 is the first resumed attempt. The executor's own
  // admission probe shares the calibration signature but is never re-hit on
  // resume; sweeping the candidates finds the true per-attempt site (a
  // no-fire candidate just completes cleanly).
  FiGuard guard;
  os::OsConfig cfg;
  cfg.vfs_fom = true;
  cfg.cache_blocks = 4;
  const std::size_t kBytes = 6 * 1024;
  const std::vector<fi::Site*> candidates = attempt_sites(cfg);
  ASSERT_FALSE(candidates.empty());

  bool reconciled = false;
  for (fi::Site* site : candidates) {
    if (reconciled) break;
    fi::Registry::instance().disarm();
    fi::Registry::instance().reset_counts();
    os::OsInstance inst(cfg);
    workload::register_suite_programs(inst.programs());
    inst.boot();
    std::int64_t read_ret = 0;
    bool ok = false;
    const auto outcome = inst.run([&](ISys& sys) {
      write_and_evict(sys, "/tmp/rc", pattern(kBytes, 5), "/tmp/rc-scratch");
      const std::int64_t fd = sys.open("/tmp/rc", servers::O_RDONLY);
      if (fd < 0) {
        read_ret = fd;
        return;
      }
      fi::Registry::instance().arm(site, fi::FaultType::kNullDeref, site->hits() + 2);
      std::vector<std::byte> buf(kBytes);
      read_ret = sys.read(fd, std::span<std::byte>(buf.data(), buf.size()));
      ok = read_ret == static_cast<std::int64_t>(kBytes) && buf == pattern(kBytes, 5);
      sys.close(fd);
    });
    if (outcome != OsInstance::Outcome::kCompleted) continue;
    if (inst.engine().stats().fom_reconciles > 0) {
      reconciled = true;
      // The requester observed plain error virtualization: E_CRASH, not a hang.
      EXPECT_EQ(read_ret, kernel::E_CRASH);
      EXPECT_FALSE(ok);
      EXPECT_EQ(inst.engine().stats().rollbacks, 1u);
      EXPECT_EQ(inst.vfs().fom_stats()->aborts, 1u);
      EXPECT_EQ(inst.vfs().fom_core().in_flight(), 0u);
    } else if (inst.engine().stats().crashes_seen > 0 && !ok) {
      // Fault fired in the initial attempt instead: ordinary reconciliation.
      EXPECT_EQ(read_ret, kernel::E_CRASH);
    }
  }
  EXPECT_TRUE(reconciled) << "no candidate site landed the fault inside a resumed attempt";
}

TEST(FomRecovery, QuarantineWithLiveFomsAbortsThemAndSystemSurvives) {
  // Persistent VFS fault under concurrent cold readers: the ladder climbs to
  // quarantine while requests are parked mid-flight. Live FOMs of every
  // boot-image restart are aborted with E_CRASH (no requester may hang on a
  // request the reborn server never heard of), and the machine completes.
  FiGuard guard;
  os::OsConfig cfg;
  cfg.vfs_fom = true;
  cfg.cache_blocks = 4;
  cfg.ladder.backoff_base_ticks = 50;
  cfg.ladder.quarantine_cooldown_ticks = 1000000;  // parked to the end
  constexpr int kClients = 3;
  const std::size_t kBytes = 6 * 1024;
  // Target an in-attempt site: a dispatch-entry probe would also crash the
  // PM fork/exit bookkeeping messages, killing the clients before a single
  // read runs. The in-attempt probes fire only for worker-path operations.
  const std::vector<fi::Site*> candidates = attempt_sites(cfg);
  ASSERT_FALSE(candidates.empty());
  fi::Site* site = candidates.front();

  fi::Registry::instance().disarm();
  fi::Registry::instance().reset_counts();
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  int failures = 0;
  const auto outcome = inst.run([&](ISys& sys) {
    for (int c = 0; c < kClients; ++c) {
      write_and_evict(sys, "/tmp/q" + std::to_string(c),
                      pattern(kBytes, static_cast<std::uint8_t>(c)), "/tmp/q-scratch");
    }
    std::vector<std::int64_t> pids;
    for (int c = 0; c < kClients; ++c) {
      const std::int64_t pid = sys.fork([c, kBytes](ISys& child) {
        // Enough iterations to carry the virtual clock through the rung-1
        // backoff parks: readmission must happen (and re-crash) twice before
        // the ladder gives up on microreboots and quarantines.
        int errors = 0;
        for (int i = 0; i < 100; ++i) {
          const std::vector<std::byte> got =
              read_back(child, "/tmp/q" + std::to_string(c), kBytes);
          if (got.size() != kBytes) ++errors;
        }
        child.exit(errors);
      });
      if (pid <= 0) sys.exit(99);
      pids.push_back(pid);
    }
    // Arm mid-run, once the forks are done (the body shares the registry's
    // thread, so the live counter aims the trigger exactly): hit +1 is the
    // first reader attempt — cold, so it parks — and from +2 on every
    // attempt crashes, with parked FOMs live across the ladder's climb.
    fi::Registry::instance().arm_persistent(site, fi::FaultType::kNullDeref,
                                            site->hits() + 2);
    for (const std::int64_t pid : pids) {
      std::int64_t status = -1;
      sys.wait_pid(pid, &status);
      failures += static_cast<int>(status);
    }
  });
  // Degraded, never wedged: every reader ran its loop to completion.
  EXPECT_EQ(outcome, OsInstance::Outcome::kCompleted);
  EXPECT_GT(failures, 0);  // the fault really did take VFS down
  const auto& stats = inst.engine().stats();
  EXPECT_GE(stats.recurring_crashes, 1u);
  EXPECT_GE(stats.quarantines, 1u);
  EXPECT_TRUE(inst.engine().is_parked(kernel::kVfsEp));
  const servers::FomStats& fs = *inst.vfs().fom_stats();
  // Live FOMs really were aborted — and none leaked: every admitted request
  // either completed or was aborted (boot-image restarts answer parked
  // requesters with E_CRASH).
  EXPECT_GT(fs.aborts, 0u);
  EXPECT_EQ(fs.completed + fs.aborts, fs.admitted);
  EXPECT_EQ(inst.vfs().fom_core().in_flight(), 0u);
}
