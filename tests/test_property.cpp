// Property-based tests (parameterized over seeds):
//
//  1. Differential equivalence — a seeded random syscall scenario produces
//     the *same observable trace* on the OSIRIS multiserver system and on
//     the monolithic baseline. This pins the semantics of every syscall the
//     unixbench comparison (Table IV) relies on.
//
//  2. Recovery transparency — for a seeded choice of fault site, if an
//     enhanced-policy run completes after an in-window recovery, the
//     machine's resource accounting is intact: no leaked VM frames, no
//     leaked process slots, no leaked open files.
//
//  3. Rollback soundness — random mutation sequences against an
//     instrumented state struct always roll back to the checkpoint image.
#include <gtest/gtest.h>

#include <cstring>

#include "ckpt/cell.hpp"
#include "fi/registry.hpp"
#include "os/instance.hpp"
#include "os/mono.hpp"
#include "support/rng.hpp"
#include "workload/suite.hpp"

using namespace osiris;
using os::ISys;

namespace {

/// A deterministic random scenario: a mix of fs, pipe, process, ds and vm
/// syscalls driven by a seed; every observable result is appended to a trace.
void random_scenario(ISys& sys, std::uint64_t seed, std::string* trace) {
  Rng rng(seed);
  auto note = [trace](const std::string& s) { *trace += s + ";"; };

  std::vector<std::int64_t> fds;
  std::vector<std::int64_t> regions;
  for (int step = 0; step < 60; ++step) {
    switch (rng.below(10)) {
      case 0: {  // open/create
        const std::string path = "/tmp/p" + std::to_string(rng.below(4));
        const std::int64_t fd = sys.open(path, servers::O_CREAT | servers::O_RDWR);
        note("open=" + std::to_string(fd >= 0 ? 0 : fd));
        if (fd >= 0) fds.push_back(fd);
        break;
      }
      case 1: {  // write
        if (fds.empty()) break;
        const std::string data(1 + rng.below(64), 'w');
        const std::int64_t n = sys.write_str(fds[rng.below(fds.size())], data);
        note("write=" + std::to_string(n));
        break;
      }
      case 2: {  // read
        if (fds.empty()) break;
        char buf[64];
        const std::int64_t fd = fds[rng.below(fds.size())];
        sys.lseek(fd, 0, 0);
        const std::int64_t n =
            sys.read(fd, std::as_writable_bytes(std::span<char>(buf, sizeof buf)));
        note("read=" + std::to_string(n));
        break;
      }
      case 3: {  // close
        if (fds.empty()) break;
        const std::size_t i = rng.below(fds.size());
        note("close=" + std::to_string(sys.close(fds[i])));
        fds.erase(fds.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      case 4: {  // fork/exit/wait
        const std::int64_t code = static_cast<std::int64_t>(rng.below(100));
        const std::int64_t pid = sys.fork([code](ISys& c) { c.exit(code); });
        std::int64_t status = -1;
        const std::int64_t got = sys.wait_pid(pid > 0 ? pid : 0, &status);
        note("spawn=" + std::to_string(pid > 0 && got == pid ? status : -1));
        break;
      }
      case 5: {  // ds round trip
        const std::string key = "k" + std::to_string(rng.below(8));
        const std::uint64_t v = rng.next() % 1000;
        sys.ds_publish(key, v);
        std::uint64_t back = 0;
        sys.ds_retrieve(key, &back);
        note("ds=" + std::to_string(back == v));
        break;
      }
      case 6: {  // stat
        os::StatResult st{};
        const std::int64_t r = sys.stat("/tmp/p0", &st);
        note("stat=" + std::to_string(r == kernel::OK ? static_cast<std::int64_t>(st.size) : r));
        break;
      }
      case 7: {  // pipe ping
        std::int64_t p[2];
        if (sys.pipe(p) != kernel::OK) break;
        sys.write_str(p[1], "x");
        char b = 0;
        sys.read(p[0], std::as_writable_bytes(std::span<char>(&b, 1)));
        sys.close(p[0]);
        sys.close(p[1]);
        note(std::string("pipe=") + b);
        break;
      }
      case 8: {  // unlink
        const std::string path = "/tmp/p" + std::to_string(rng.below(4));
        note("unlink=" + std::to_string(sys.unlink(path)));
        break;
      }
      case 9: {  // getpid/uid sanity
        note("pid=" + std::to_string(sys.getpid() > 0));
        break;
      }
    }
  }
  for (std::int64_t fd : fds) sys.close(fd);
}

class DifferentialP : public ::testing::TestWithParam<std::uint64_t> {};

}  // namespace

TEST_P(DifferentialP, MicrokernelAndMonoProduceSameTrace) {
  const std::uint64_t seed = GetParam();

  std::string micro_trace;
  {
    fi::Registry::instance().disarm();
    os::OsConfig cfg;
    os::OsInstance inst(cfg);
    workload::register_suite_programs(inst.programs());
    inst.boot();
    const auto outcome =
        inst.run([&](ISys& sys) { random_scenario(sys, seed, &micro_trace); });
    ASSERT_EQ(outcome, os::OsInstance::Outcome::kCompleted);
  }

  std::string mono_trace;
  {
    os::MonoOs mono;
    workload::register_suite_programs(mono.programs());
    mono.boot();
    mono.run([&](ISys& sys) {
      random_scenario(sys, seed, &mono_trace);
      sys.exit(0);
    });
  }

  EXPECT_EQ(micro_trace, mono_trace) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialP,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233));

// --- recovery transparency -----------------------------------------------

namespace {
class RecoveryTransparencyP : public ::testing::TestWithParam<std::uint64_t> {};
}  // namespace

TEST_P(RecoveryTransparencyP, CompletedRunsLeaveAccountingIntact) {
  const std::uint64_t seed = GetParam();

  // Profile once to learn the triggered sites of this scenario.
  fi::Registry::instance().disarm();
  fi::Registry::instance().reset_counts();
  std::uint64_t baseline_free = 0;
  {
    os::OsConfig cfg;
    os::OsInstance inst(cfg);
    workload::register_suite_programs(inst.programs());
    inst.boot();
    std::string trace;
    inst.run([&](ISys& sys) {
      random_scenario(sys, seed, &trace);
      sys.getmeminfo(&baseline_free, nullptr);
    });
  }
  std::vector<fi::Site*> candidates;
  for (fi::Site* s : fi::Registry::instance().sites()) {
    if (s->hits() > 0) candidates.push_back(s);
  }
  ASSERT_FALSE(candidates.empty());

  // Inject a fail-stop fault at a seeded site/hit and rerun.
  Rng rng(seed * 7919);
  fi::Site* site = candidates[rng.below(candidates.size())];
  const std::uint64_t trigger = rng.range(1, site->hits());
  fi::Registry::instance().reset_counts();

  os::OsConfig cfg;
  cfg.policy = seep::Policy::kEnhanced;
  os::OsInstance inst(cfg);
  workload::register_suite_programs(inst.programs());
  inst.boot();
  fi::Registry::instance().arm(site, fi::FaultType::kNullDeref, trigger);
  std::string trace;
  std::uint64_t free_after = 0;
  const auto outcome = inst.run([&](ISys& sys) {
    random_scenario(sys, seed, &trace);
    sys.getmeminfo(&free_after, nullptr);
  });
  fi::Registry::instance().disarm();

  if (outcome != os::OsInstance::Outcome::kCompleted) {
    // Shutdown is a legitimate consistent outcome; nothing more to check.
    EXPECT_EQ(outcome, os::OsInstance::Outcome::kShutdown) << "site " << site->tag << ":"
                                                           << site->line;
    return;
  }
  // The run completed (recovery was transparent or error-virtualized):
  // resource accounting must be exactly as in the fault-free run.
  if (free_after != 0) {  // 0 = the meminfo call itself was the failed op
    EXPECT_EQ(free_after, baseline_free)
        << "VM frames leaked after recovery at " << site->tag << ":" << site->line;
  }
  // All children were reaped: only init remains.
  EXPECT_EQ(inst.pm().pid_of_endpoint(kernel::Endpoint{-1}), -1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryTransparencyP,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// --- rollback soundness -----------------------------------------------------

namespace {

struct PropState {
  ckpt::Cell<std::uint64_t> scalars[4];
  ckpt::Array<std::uint32_t, 32> words;
  ckpt::Table<std::uint64_t, 8> slots;
  ckpt::Str<24> label;
};

class RollbackP : public ::testing::TestWithParam<std::uint64_t> {};

}  // namespace

TEST_P(RollbackP, RandomMutationsAlwaysRollBack) {
  Rng rng(GetParam());
  ckpt::Context ctx(ckpt::Mode::kAlways);
  ckpt::Context::Scope scope(&ctx);
  PropState state{};

  // Build an arbitrary committed state first.
  for (int i = 0; i < 20; ++i) {
    state.scalars[rng.below(4)] = rng.next();
    state.words.set(rng.below(32), static_cast<std::uint32_t>(rng.next()));
    if (rng.chance(1, 2)) state.slots.alloc();
  }
  ctx.log().checkpoint();  // top of the loop

  PropState snapshot{};
  std::memcpy(&snapshot, &state, sizeof state);

  // Random mutation storm (the "request processing" that will crash).
  for (int i = 0; i < 50; ++i) {
    switch (rng.below(5)) {
      case 0: state.scalars[rng.below(4)] += rng.below(100); break;
      case 1: state.words.set(rng.below(32), static_cast<std::uint32_t>(rng.next())); break;
      case 2: {
        const std::size_t s = state.slots.alloc();
        if (s != decltype(state.slots)::npos) state.slots.mutate(s) = rng.next();
        break;
      }
      case 3: {
        const std::size_t s =
            state.slots.find([](const std::uint64_t&) { return true; });
        if (s != decltype(state.slots)::npos) state.slots.free(s);
        break;
      }
      case 4: state.label = std::to_string(rng.next()); break;
    }
  }

  ctx.log().rollback();
  EXPECT_EQ(std::memcmp(&snapshot, &state, sizeof state), 0)
      << "rollback failed to restore the checkpoint image";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RollbackP,
                         ::testing::Range<std::uint64_t>(1000, 1030));
