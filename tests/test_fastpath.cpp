// IPC fast-path tests (DESIGN.md §14): arena queue FIFO/backpressure
// properties, batched dispatch equivalence, grant-span zero-copy round trips
// over the spec table's bulk rows, the MiniFs borrow path, and the lazy
// checkpoint / metrics surfacing that ride along.
#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "kernel/kernel.hpp"
#include "os/instance.hpp"
#include "servers/msg_spec.hpp"
#include "servers/protocol.hpp"
#include "support/clock.hpp"
#include "support/rng.hpp"

using namespace osiris;
using kernel::Access;
using kernel::Endpoint;
using kernel::FastPath;
using kernel::Kernel;
using kernel::make_msg;
using kernel::make_reply;
using kernel::Message;
using os::ISys;
using os::OsInstance;

namespace {

/// Server that records the arg[0] of every delivered message, in order.
class RecordingServer : public kernel::IServer {
 public:
  [[nodiscard]] std::string_view name() const override { return "rec"; }
  std::optional<Message> dispatch(const Message& m) override {
    delivered.push_back(m.arg[0]);
    return std::nullopt;  // fire-and-forget: no replies back into the queue
  }
  std::vector<std::uint64_t> delivered;
};

class NullClient : public kernel::IClient {
 public:
  void on_reply(const Message&) override {}
  void on_notify(const Message&) override {}
};

struct ArenaFixture : ::testing::Test {
  VirtualClock clock;
  Kernel kern{clock};
  RecordingServer server;
  NullClient client;
  Endpoint client_ep;

  void SetUp() override {
    kern.register_server(kernel::kPmEp, &server);
    client_ep = kern.register_client(&client);
  }

  void send_seq(std::uint64_t from, std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      kern.send(client_ep, kernel::kPmEp, make_msg(0x42, from + i));
    }
  }
};

}  // namespace

// --- arena ring: wraparound / overflow properties ---------------------------

TEST_F(ArenaFixture, RingWraparoundPreservesFifoAcrossManyDrains) {
  FastPath fp;
  fp.arena_queue = true;
  fp.ring_capacity = 8;
  kern.set_fastpath(fp);

  // Many rounds of enqueue-then-drain advance ring_head_ through dozens of
  // wraparounds; delivery order must equal send order every round.
  std::uint64_t next = 0;
  Rng rng(1234);
  std::vector<std::uint64_t> expect;
  for (int round = 0; round < 200; ++round) {
    const std::uint64_t burst = 1 + rng.below(7);  // never exceeds the ring
    for (std::uint64_t i = 0; i < burst; ++i) expect.push_back(next + i);
    send_seq(next, burst);
    next += burst;
    kern.dispatch_pending();
  }
  EXPECT_EQ(server.delivered, expect);
  EXPECT_EQ(kern.stats().arena_spills, 0u) << "bursts within capacity must not touch the heap";
  EXPECT_EQ(kern.stats().messages_queued, next);
}

TEST_F(ArenaFixture, OverflowSpillsAreCountedAndDrainInFifoOrder) {
  FastPath fp;
  fp.arena_queue = true;
  fp.ring_capacity = 4;
  kern.set_fastpath(fp);

  send_seq(0, 20);  // 4 into the ring, 16 spilled
  EXPECT_EQ(kern.stats().arena_spills, 16u);
  EXPECT_EQ(kern.stats().queue_high_water, 20u);

  EXPECT_TRUE(kern.dispatch_pending());
  std::vector<std::uint64_t> expect(20);
  for (std::uint64_t i = 0; i < 20; ++i) expect[i] = i;
  EXPECT_EQ(server.delivered, expect);
  EXPECT_TRUE(kern.queue_empty());

  // Backpressure released: the next in-capacity burst stays in the arena.
  send_seq(100, 3);
  EXPECT_EQ(kern.stats().arena_spills, 16u);
}

TEST_F(ArenaFixture, RandomizedBurstsMatchDequeReferenceModel) {
  FastPath fp;
  fp.arena_queue = true;
  fp.ring_capacity = 8;
  kern.set_fastpath(fp);

  // Property: under arbitrary burst sizes (including far beyond capacity,
  // forcing spill + promote-on-pop), the kernel delivers exactly what a
  // plain FIFO deque would.
  std::deque<std::uint64_t> model;
  std::vector<std::uint64_t> model_delivered;
  std::uint64_t next = 0;
  Rng rng(99);
  for (int round = 0; round < 100; ++round) {
    const std::uint64_t burst = rng.below(30);  // up to ~4x ring capacity
    send_seq(next, burst);
    for (std::uint64_t i = 0; i < burst; ++i) model.push_back(next + i);
    next += burst;
    kern.dispatch_pending();
    while (!model.empty()) {
      model_delivered.push_back(model.front());
      model.pop_front();
    }
  }
  EXPECT_EQ(server.delivered, model_delivered);
  EXPECT_GT(kern.stats().arena_spills, 0u) << "bursts beyond capacity must exercise the spill";
  EXPECT_GE(kern.stats().queue_high_water, fp.ring_capacity);
}

TEST_F(ArenaFixture, TogglingArenaMidStreamKeepsFifoOrder) {
  // Plain deque first, then the arena turned on mid-stream, then off again
  // with residue in the ring: order must survive both transitions.
  send_seq(0, 5);
  FastPath fp;
  fp.arena_queue = true;
  fp.ring_capacity = 8;
  kern.set_fastpath(fp);
  send_seq(5, 5);
  kern.dispatch_pending();

  send_seq(10, 4);           // lives in the ring now
  kern.set_fastpath(FastPath{});  // drains ring residue back into the deque
  send_seq(14, 3);
  kern.dispatch_pending();

  std::vector<std::uint64_t> expect(17);
  for (std::uint64_t i = 0; i < 17; ++i) expect[i] = i;
  EXPECT_EQ(server.delivered, expect);
}

// --- batching: declarative eligibility + delivery-order equivalence ---------

namespace {

/// Run the same send script against a kernel with the given fast path;
/// returns the delivered arg[0] order observed by the server.
std::vector<std::uint64_t> run_script(const FastPath& fp) {
  VirtualClock clock;
  Kernel kern(clock);
  RecordingServer server;
  NullClient client;
  kern.register_server(kernel::kVfsEp, &server);
  const Endpoint cli = kern.register_client(&client);
  kern.set_fastpath(fp);
  kern.set_batch_eligible(servers::is_batch_eligible);

  // Interleave batch-eligible NSM requests (VFS_FSTAT) with ineligible SM
  // ones (VFS_CLOSE) in bursts, so batches form and break mid-queue.
  std::uint64_t seq = 0;
  Rng rng(7);
  for (int round = 0; round < 40; ++round) {
    const std::uint64_t burst = 1 + rng.below(10);
    for (std::uint64_t i = 0; i < burst; ++i) {
      const bool eligible = rng.below(4) != 0;  // 3:1 eligible:ineligible
      kern.send(cli, kernel::kVfsEp,
                make_msg(eligible ? servers::VFS_FSTAT : servers::VFS_CLOSE, seq++));
    }
    kern.dispatch_pending();
  }
  EXPECT_EQ(server.delivered.size(), seq);
  if (fp.batching) {
    EXPECT_GT(kern.stats().batches, 0u);
    EXPECT_GT(kern.stats().batched_messages, 0u);
    EXPECT_GT(kern.stats().batch_hist[0], 0u);  // the 3:1 mix always leaves singletons
  } else {
    EXPECT_EQ(kern.stats().batches, 0u);
  }
  return server.delivered;
}

}  // namespace

TEST(Batching, DeliveryOrderIdenticalToUnbatched) {
  FastPath off;
  FastPath on;
  on.batching = true;
  EXPECT_EQ(run_script(off), run_script(on));
}

TEST(Batching, MaxBatchCapsDispatchGroups) {
  VirtualClock clock;
  Kernel kern(clock);
  RecordingServer server;
  NullClient client;
  kern.register_server(kernel::kVfsEp, &server);
  const Endpoint cli = kern.register_client(&client);
  FastPath fp;
  fp.batching = true;
  fp.max_batch = 4;
  kern.set_fastpath(fp);
  kern.set_batch_eligible(servers::is_batch_eligible);

  for (std::uint64_t i = 0; i < 10; ++i) {
    kern.send(cli, kernel::kVfsEp, make_msg(servers::VFS_FSTAT, i));
  }
  kern.dispatch_pending();
  EXPECT_EQ(server.delivered.size(), 10u);
  // 10 eligible messages under max_batch=4 -> groups of 4+4+2.
  EXPECT_EQ(kern.stats().batch_hist[3], 2u);
  EXPECT_EQ(kern.stats().batch_hist[1], 1u);
  EXPECT_EQ(kern.stats().batches, 3u);
  EXPECT_EQ(kern.stats().batched_messages, 10u);
}

TEST(Batching, SpecTableDecidesEligibility) {
  // NSM requests batch; notifications, replies, and SM requests never do.
  EXPECT_TRUE(servers::is_batch_eligible(servers::VFS_FSTAT));
  EXPECT_TRUE(servers::is_batch_eligible(servers::PM_GETPID));
  EXPECT_TRUE(servers::is_batch_eligible(servers::DS_RETRIEVE));
  EXPECT_FALSE(servers::is_batch_eligible(servers::VFS_WRITE));   // SM
  EXPECT_FALSE(servers::is_batch_eligible(servers::PM_FORK));     // SM
  EXPECT_FALSE(servers::is_batch_eligible(servers::RS_PING));     // notify kind
  EXPECT_FALSE(servers::is_batch_eligible(servers::VFS_FSTAT | kernel::kReplyBit));
  EXPECT_FALSE(servers::is_batch_eligible(servers::RS_SWEEP | kernel::kNotifyBit));
  EXPECT_FALSE(servers::is_batch_eligible(0xdeadu));  // unknown type
}

// --- grant spans: zero-copy semantics match safecopy ------------------------

namespace {

struct GrantFixture : ::testing::Test {
  VirtualClock clock;
  Kernel kern{clock};
  RecordingServer server;
  NullClient client;
  Endpoint client_ep;

  void SetUp() override {
    kern.register_server(kernel::kVfsEp, &server);
    client_ep = kern.register_client(&client);
  }
};

}  // namespace

TEST_F(GrantFixture, SpanIsDirectViewOfGrantRegion) {
  std::byte buf[256] = {};
  const kernel::GrantId g =
      kern.make_grant(client_ep, kernel::kVfsEp, buf, sizeof buf, Access::kWrite);
  std::int64_t err = kernel::OK;
  std::byte* span = kern.grant_span(kernel::kVfsEp, g, 16, 64, Access::kWrite, &err);
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(err, kernel::OK);
  EXPECT_EQ(span, buf + 16) << "span must alias the granted memory, not a copy";
  std::memset(span, 0x7f, 64);
  EXPECT_EQ(buf[16], std::byte{0x7f});
  EXPECT_EQ(buf[79], std::byte{0x7f});
  EXPECT_EQ(kern.stats().grant_spans, 1u);

  kern.note_grant_bypass(kernel::kVfsEp, 64, /*dir=*/1);
  EXPECT_EQ(kern.stats().grant_bypass_bytes, 64u);
  EXPECT_EQ(kern.stats().safecopy_bytes, 0u) << "bypass must not masquerade as a safecopy";
}

TEST_F(GrantFixture, SpanRejectsExactlyWhatSafecopyRejects) {
  std::byte buf[64] = {};
  const kernel::GrantId g =
      kern.make_grant(client_ep, kernel::kVfsEp, buf, sizeof buf, Access::kRead);
  std::byte tmp[128] = {};

  // Grant smaller than the request: span fails with the same error safecopy
  // returns, which is what lets callers fall back to the staging path.
  std::int64_t span_err = kernel::OK;
  EXPECT_EQ(kern.grant_span(kernel::kVfsEp, g, 0, 128, Access::kRead, &span_err), nullptr);
  EXPECT_EQ(span_err, kern.safecopy_from(kernel::kVfsEp, g, 0, tmp, 128));

  // Wrong access direction.
  span_err = kernel::OK;
  EXPECT_EQ(kern.grant_span(kernel::kVfsEp, g, 0, 16, Access::kWrite, &span_err), nullptr);
  EXPECT_EQ(span_err, kern.safecopy_to(kernel::kVfsEp, g, 0, tmp, 16));

  // Wrong grantee.
  span_err = kernel::OK;
  EXPECT_EQ(kern.grant_span(kernel::kPmEp, g, 0, 16, Access::kRead, &span_err), nullptr);
  EXPECT_EQ(span_err, kern.safecopy_from(kernel::kPmEp, g, 0, tmp, 16));

  // Revoked grant.
  kern.revoke_grant(g);
  span_err = kernel::OK;
  EXPECT_EQ(kern.grant_span(kernel::kVfsEp, g, 0, 16, Access::kRead, &span_err), nullptr);
  EXPECT_EQ(span_err, kern.safecopy_from(kernel::kVfsEp, g, 0, tmp, 16));
  EXPECT_EQ(kern.stats().grant_spans, 0u) << "failed spans must not count as handouts";
}

// --- zero-copy through the OS stack: every bulk-eligible spec row -----------

namespace {

/// Spec rows that carry a grant argument — the bulk-eligible surface. Driven
/// from the table so a future bulk message type fails this test until it is
/// covered below.
std::vector<std::string> bulk_rows() {
  std::vector<std::string> rows;
  for (const servers::MsgSpec& s : servers::kMsgSpecTable) {
    if (std::strstr(s.doc, "grant") != nullptr) rows.emplace_back(s.name);
  }
  return rows;
}

}  // namespace

TEST(ZeroCopy, EveryBulkEligibleSpecRowRoundTripsThroughGrantSpans) {
  // If this assertion fires, a new grant-carrying row joined the table:
  // extend the body below to exercise it end to end.
  EXPECT_EQ(bulk_rows(), (std::vector<std::string>{"VFS_READ", "VFS_WRITE"}));

  os::OsConfig cfg;
  cfg.fastpath.zero_copy = true;
  OsInstance inst(cfg);
  inst.boot();
  const std::size_t bulk = 3 * kernel::kMsgTextCap;  // above the inline threshold

  std::uint64_t bypass_after_write = 0;
  const auto outcome = inst.run([&](ISys& sys) {
    const std::int64_t fd = sys.open("/tmp/zc", servers::O_CREAT | servers::O_RDWR);
    ASSERT_GE(fd, 0);

    // VFS_WRITE: payload travels grant -> cache with no staging copy.
    std::vector<std::byte> out(bulk);
    for (std::size_t i = 0; i < bulk; ++i) out[i] = static_cast<std::byte>(i * 7 + 3);
    ASSERT_EQ(sys.write(fd, out), static_cast<std::int64_t>(bulk));
    bypass_after_write = inst.kern().stats().grant_bypass_bytes;
    EXPECT_GE(bypass_after_write, bulk) << "VFS_WRITE did not take the zero-copy path";

    // VFS_READ: payload travels cache -> grant with no staging copy.
    ASSERT_EQ(sys.lseek(fd, 0, 0), 0);
    std::vector<std::byte> back(bulk);
    ASSERT_EQ(sys.read(fd, back), static_cast<std::int64_t>(bulk));
    EXPECT_EQ(back, out);
    EXPECT_GE(inst.kern().stats().grant_bypass_bytes, bypass_after_write + bulk)
        << "VFS_READ did not take the zero-copy path";
    EXPECT_EQ(sys.close(fd), kernel::OK);
  });
  EXPECT_EQ(outcome, OsInstance::Outcome::kCompleted);
  EXPECT_GT(inst.kern().stats().grant_spans, 0u);
}

TEST(ZeroCopy, InlineSizedPayloadsSkipTheBypass) {
  os::OsConfig cfg;
  cfg.fastpath.zero_copy = true;
  OsInstance inst(cfg);
  inst.boot();
  const auto outcome = inst.run([&](ISys& sys) {
    const std::int64_t fd = sys.open("/tmp/small", servers::O_CREAT | servers::O_RDWR);
    ASSERT_GE(fd, 0);
    // At the threshold, the staging copy is cheaper than the grant check.
    std::vector<std::byte> buf(kernel::kMsgTextCap, std::byte{0x11});
    ASSERT_EQ(sys.write(fd, buf), static_cast<std::int64_t>(buf.size()));
    EXPECT_EQ(inst.kern().stats().grant_bypass_bytes, 0u);
    EXPECT_GT(inst.kern().stats().safecopy_bytes, 0u);
  });
  EXPECT_EQ(outcome, OsInstance::Outcome::kCompleted);
}

TEST(ZeroCopy, FlagOffNeverBypasses) {
  OsInstance inst{os::OsConfig{}};
  inst.boot();
  const std::size_t bulk = 3 * kernel::kMsgTextCap;
  const auto outcome = inst.run([&](ISys& sys) {
    const std::int64_t fd = sys.open("/tmp/off", servers::O_CREAT | servers::O_RDWR);
    ASSERT_GE(fd, 0);
    std::vector<std::byte> buf(bulk, std::byte{0x22});
    ASSERT_EQ(sys.write(fd, buf), static_cast<std::int64_t>(bulk));
    std::vector<std::byte> back(bulk);
    ASSERT_EQ(sys.lseek(fd, 0, 0), 0);
    ASSERT_EQ(sys.read(fd, back), static_cast<std::int64_t>(bulk));
    EXPECT_EQ(back, buf);
  });
  EXPECT_EQ(outcome, OsInstance::Outcome::kCompleted);
  EXPECT_EQ(inst.kern().stats().grant_bypass_bytes, 0u);
  EXPECT_EQ(inst.kern().stats().grant_spans, 0u);
}

// --- MiniFs borrow path: contents identical across the flag -----------------

TEST(ZeroCopy, RandomizedFileOpsMatchReferenceModelAcrossFlag) {
  // Random read/write/lseek sequences, mirrored against an in-memory byte
  // model, once per flag setting. This exercises the MiniFs peek path:
  // indirect-block borrows, partial-block RMW, full-block write-through,
  // holes from sparse lseek, and the borrow-invalidates-on-store rule.
  for (const bool zero_copy : {false, true}) {
    os::OsConfig cfg;
    cfg.fastpath.zero_copy = zero_copy;
    OsInstance inst(cfg);
    inst.boot();
    const auto outcome = inst.run([&](ISys& sys) {
      // Big enough that block 10+ goes through the indirect block.
      constexpr std::size_t kMax = 48 * 1024;
      std::vector<std::byte> model(kMax, std::byte{0});
      std::size_t model_size = 0;

      const std::int64_t fd = sys.open("/tmp/prop", servers::O_CREAT | servers::O_RDWR);
      ASSERT_GE(fd, 0);
      Rng rng(zero_copy ? 21u : 22u);
      std::uint8_t tint = 1;
      for (int op = 0; op < 150; ++op) {
        const std::size_t pos = rng.below(kMax);
        const std::size_t len = 1 + rng.below(std::min<std::uint64_t>(kMax - pos, 5000));
        ASSERT_EQ(sys.lseek(fd, static_cast<std::int64_t>(pos), 0),
                  static_cast<std::int64_t>(pos));
        if (rng.below(2) == 0) {
          std::vector<std::byte> w(len, static_cast<std::byte>(tint++));
          ASSERT_EQ(sys.write(fd, w), static_cast<std::int64_t>(len));
          std::memcpy(model.data() + pos, w.data(), len);
          model_size = std::max(model_size, pos + len);
        } else {
          std::vector<std::byte> r(len, std::byte{0xee});
          const std::int64_t n = sys.read(fd, r);
          const std::size_t expect_n = pos >= model_size ? 0 : std::min(len, model_size - pos);
          ASSERT_EQ(n, static_cast<std::int64_t>(expect_n)) << "op " << op;
          ASSERT_EQ(std::memcmp(r.data(), model.data() + pos, expect_n), 0)
              << "op " << op << " at pos " << pos;
        }
      }
      EXPECT_EQ(sys.close(fd), kernel::OK);
    });
    EXPECT_EQ(outcome, OsInstance::Outcome::kCompleted) << "zero_copy=" << zero_copy;
  }
}

// --- lazy checkpoints + metrics surfacing -----------------------------------

TEST(FastPathMetrics, LazyCheckpointsAndCountersSurfaceInCollectMetrics) {
  os::OsConfig cfg;
  cfg.fastpath = FastPath::all_on();
  OsInstance inst(cfg);
  inst.boot();
  const std::size_t bulk = 3 * kernel::kMsgTextCap;
  const auto outcome = inst.run([&](ISys& sys) {
    const std::int64_t fd = sys.open("/tmp/metrics", servers::O_CREAT | servers::O_RDWR);
    std::vector<std::byte> buf(bulk, std::byte{0x33});
    sys.write(fd, buf);
    // NSM-heavy tail: consecutive eligible requests batch, and every window
    // open after the first finds a clean undo log for the lazy skip.
    for (int i = 0; i < 40; ++i) {
      (void)sys.getpid();
      std::uint64_t v = 0;
      (void)sys.ds_retrieve("nope", &v);
    }
    sys.close(fd);
  });
  ASSERT_EQ(outcome, OsInstance::Outcome::kCompleted);

  const core::SystemMetrics m = core::collect_metrics(inst);
  EXPECT_GT(m.queue_high_water, 0u);
  EXPECT_GT(m.grant_bypass_bytes, 0u);
  EXPECT_GT(m.grant_spans, 0u);
  EXPECT_GT(m.batch_hist[0], 0u);

  std::uint64_t skipped = 0;
  for (const core::ComponentMetrics& c : m.components) skipped += c.checkpoints_skipped;
  EXPECT_GT(skipped, 0u) << "lazy checkpointing never elided a clean-log reset";

  const std::string report = m.report();
  EXPECT_NE(report.find("fastpath:"), std::string::npos);
  EXPECT_NE(report.find("zero-copy"), std::string::npos);
}

TEST(FastPathMetrics, QueueHighWaterTracksWithoutFlags) {
  // The high-water mark is substrate accounting, live even with every fast-
  // path flag off — a clean run must still report a sane depth.
  OsInstance inst{os::OsConfig{}};
  inst.boot();
  const auto outcome = inst.run([](ISys& sys) {
    for (int i = 0; i < 10; ++i) (void)sys.getpid();
  });
  ASSERT_EQ(outcome, OsInstance::Outcome::kCompleted);
  const core::SystemMetrics m = core::collect_metrics(inst);
  EXPECT_GT(m.queue_high_water, 0u);
  EXPECT_EQ(m.batches, 0u);
  EXPECT_EQ(m.grant_bypass_bytes, 0u);
}
