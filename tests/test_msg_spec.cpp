// The declarative protocol spec (servers/msg_spec.hpp): registry
// completeness, typed marshalling round-trips, schema validation at the
// dispatch boundary (malformed / unregistered -> fail-stop, paper SII-E),
// handler-table coverage, and the classification default-lookup counter.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "core/metrics.hpp"
#include "kernel/faults.hpp"
#include "kernel/kernel.hpp"
#include "os/instance.hpp"
#include "servers/protocol.hpp"

using namespace osiris;
using kernel::make_msg;
using kernel::Message;
using servers::MsgSpec;

namespace {

/// Build a schema-exact message for a spec row with recognizable arg values.
Message encode_row(const MsgSpec& s) {
  constexpr std::uint64_t v0 = 11, v1 = 22, v2 = 33, v3 = 44;
  if (s.text) {
    switch (s.args) {
      case 0: return servers::encode_text(s.type, "payload");
      case 1: return servers::encode_text(s.type, "payload", v0);
      case 2: return servers::encode_text(s.type, "payload", v0, v1);
      case 3: return servers::encode_text(s.type, "payload", v0, v1, v2);
      case 4: return servers::encode_text(s.type, "payload", v0, v1, v2, v3);
    }
  } else {
    switch (s.args) {
      case 0: return servers::encode(s.type);
      case 1: return servers::encode(s.type, v0);
      case 2: return servers::encode(s.type, v0, v1);
      case 3: return servers::encode(s.type, v0, v1, v2);
      case 4: return servers::encode(s.type, v0, v1, v2, v3);
    }
  }
  ADD_FAILURE() << s.name << " declares " << int(s.args) << " args; widen encode_row";
  return Message{};
}

class StubClient : public kernel::IClient {
 public:
  void on_reply(const Message& reply) override {
    ++replies;
    last_reply = reply;
  }
  void on_notify(const Message&) override {}
  int replies = 0;
  Message last_reply;
};

}  // namespace

TEST(MsgSpec, RegistryIsCompleteAndUnique) {
  const std::set<std::string> owners = {"pm", "vm", "vfs", "ds", "rs", "sys", "client", "any"};
  std::set<std::uint32_t> values;
  std::set<std::string> names;
  for (const MsgSpec& s : servers::kMsgSpecTable) {
    EXPECT_TRUE(values.insert(s.type).second) << "duplicate value for " << s.name;
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate name " << s.name;
    EXPECT_TRUE(owners.count(s.server)) << s.name << " has unknown owner " << s.server;
    // The flat index resolves every row, with delivery-bit qualifiers
    // stripped, straight back to the row itself.
    EXPECT_EQ(servers::find_msg_spec(s.type), &s);
    EXPECT_EQ(servers::find_msg_spec(s.type | kernel::kNotifyBit), &s);
    EXPECT_EQ(servers::find_msg_spec(s.type | kernel::kReplyBit), &s);
    EXPECT_STREQ(servers::msg_name(s.type), s.name);
  }
  EXPECT_EQ(values.size(), servers::kMsgSpecCount);
  EXPECT_EQ(servers::find_msg_spec(0x7777), nullptr);
  EXPECT_EQ(servers::msg_name(0x7777), nullptr);
}

TEST(MsgSpec, SymbolicLabels) {
  EXPECT_EQ(servers::msg_label(servers::PM_FORK), "PM_FORK");
  EXPECT_EQ(servers::msg_label(servers::RS_PING | kernel::kNotifyBit), "RS_PING+notify");
  EXPECT_EQ(servers::msg_label(servers::PM_FORK | kernel::kReplyBit), "PM_FORK+reply");
  EXPECT_EQ(servers::msg_label(0x7777), "0x7777");
}

TEST(MsgSpec, EncodeDecodeRoundTripsEveryRow) {
  constexpr std::uint64_t want[4] = {11, 22, 33, 44};
  for (const MsgSpec& s : servers::kMsgSpecTable) {
    ASSERT_LE(int(s.args), 4) << s.name << ": widen the round-trip driver";
    const Message m = encode_row(s);
    EXPECT_EQ(m.type, s.type);

    const servers::MsgView view(m);
    EXPECT_EQ(&view.spec(), &s);
    for (int i = 0; i < int(s.args); ++i) {
      EXPECT_EQ(view.u(i), want[i]) << s.name << " arg " << i;
    }
    // Reads outside the schema are malformed-request fail-stops.
    if (s.args < 6) {
      EXPECT_THROW((void)view.u(s.args), kernel::FailStopFault) << s.name;
    }
    EXPECT_THROW((void)view.u(-1), kernel::FailStopFault) << s.name;
    if (s.text) {
      EXPECT_EQ(view.text(), "payload") << s.name;
    } else {
      EXPECT_THROW((void)view.text(), kernel::FailStopFault) << s.name;
    }
    // Args beyond the schema stay zero: dispatch validates exactly this.
    for (int i = int(s.args); i < 6; ++i) EXPECT_EQ(m.arg[i], 0u) << s.name;
  }
  EXPECT_THROW(servers::MsgView(make_msg(0x7777)), kernel::FailStopFault);
}

TEST(MsgSpec, EveryOwnedRowHasARegisteredHandler) {
  os::OsInstance inst;
  inst.boot();
  const std::map<std::string, servers::ServerCommon*> by_owner = {
      {"pm", &inst.pm()}, {"vm", &inst.vm()}, {"vfs", &inst.vfs()},
      {"ds", &inst.ds()}, {"rs", &inst.rs()}, {"sys", &inst.sys_task()}};
  for (const MsgSpec& s : servers::kMsgSpecTable) {
    const auto it = by_owner.find(s.server);
    if (it == by_owner.end()) continue;  // "client"/"any": no single dispatcher
    EXPECT_TRUE(it->second->has_handler(s.type))
        << s.name << " is owned by " << s.server << " but has no handler";
  }
  // And the cross-server reply continuations the protocol depends on.
  EXPECT_TRUE(inst.pm().has_reply_handler(servers::VFS_PM_EXEC));
  EXPECT_TRUE(inst.rs().has_reply_handler(servers::DS_PUBLISH));
}

TEST(MsgSpec, UnregisteredTypeFailStopsAtDispatch) {
  os::OsInstance inst;
  inst.boot();
  StubClient client;
  const kernel::Endpoint ep = inst.kern().register_client(&client);

  const std::uint64_t crashes_before = inst.kern().stats().crashes;
  inst.kern().send(ep, kernel::kDsEp, make_msg(0x7777));

  // The receiver fail-stops instead of guessing (SII-E). The validation runs
  // before the top-of-loop checkpoint, so the window is closed and the
  // windowed policies answer the unreconcilable crash with a controlled
  // shutdown rather than limping on.
  EXPECT_THROW(inst.kern().dispatch_pending(), kernel::ControlledShutdown);
  EXPECT_EQ(inst.kern().stats().crashes, crashes_before + 1);
  EXPECT_GE(inst.engine().stats().shutdowns, 1u);
}

TEST(MsgSpec, MalformedRequestsFailStopAtDispatch) {
  struct Case {
    const char* what;
    Message m;
    kernel::Endpoint dst;
  };
  // Args outside the schema, text on a textless message, and a delivery
  // kind contradicting the spec (RS_PONG is NOTE but sent as a plain
  // request) must each fail-stop the receiving server.
  Message textless = make_msg(servers::PM_GETPID);
  textless.text.assign("sneaky");
  const Case cases[] = {
      {"args outside schema", make_msg(servers::PM_GETPID, 5), kernel::kPmEp},
      {"text on textless", textless, kernel::kPmEp},
      {"kind mismatch", make_msg(servers::RS_PONG), kernel::kRsEp},
  };
  for (const Case& c : cases) {
    os::OsInstance inst;
    inst.boot();
    StubClient client;
    const kernel::Endpoint ep = inst.kern().register_client(&client);
    const std::uint64_t crashes_before = inst.kern().stats().crashes;
    inst.kern().send(ep, c.dst, c.m);
    EXPECT_THROW(inst.kern().dispatch_pending(), kernel::ControlledShutdown) << c.what;
    EXPECT_EQ(inst.kern().stats().crashes, crashes_before + 1) << c.what;
  }
}

TEST(MsgSpec, ClassificationCountsDefaultLookups) {
  const seep::Classification c = servers::build_classification();
  EXPECT_EQ(c.size(), servers::kMsgSpecCount);
  EXPECT_EQ(c.default_lookups(), 0u);
  (void)c.get(servers::PM_FORK);
  EXPECT_EQ(c.default_lookups(), 0u);  // declared type: no fallback
  (void)c.get(0x9999);
  (void)c.get(0x9999);
  EXPECT_EQ(c.default_lookups(), 2u);  // every fallback counts
  const seep::MsgTraits t = c.get(0xdead);
  EXPECT_EQ(t.seep, seep::SeepClass::kStateModifying);  // conservative default
  EXPECT_TRUE(t.replyable);
}

TEST(MsgSpec, MetricsExposeClassificationDefaults) {
  os::OsInstance inst;
  inst.boot();
  const auto outcome = inst.run([](os::ISys& sys) { (void)sys.getpid(); });
  ASSERT_EQ(outcome, os::OsInstance::Outcome::kCompleted);

  // A clean run never leaves the spec table: the boot + syscall traffic all
  // resolves explicitly.
  core::SystemMetrics m = core::collect_metrics(inst);
  EXPECT_EQ(m.classification_defaults, 0u);
  EXPECT_NE(m.report().find("default-trait lookups"), std::string::npos);

  // Probing an undeclared type is visible in the next snapshot.
  (void)inst.classification().get(0x9999);
  m = core::collect_metrics(inst);
  EXPECT_EQ(m.classification_defaults, 1u);
}
